module pfuzzer

go 1.22
