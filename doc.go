// Package pfuzzer is a Go reproduction of "Parser-Directed Fuzzing"
// (Mathis, Gopinath, Mera, Kampmann, Höschele, Zeller — PLDI 2019).
//
// The library synthesizes syntactically valid inputs for a program
// given only its instrumented parser: it tracks the comparisons the
// parser makes against each input character (through dynamic taint),
// satisfies the comparisons that led to rejection, and appends
// characters whenever the parser reads past the end of the input.
//
// Campaigns run on one of two engines behind core.Config.Workers: the
// serial engine (deterministic under a fixed seed, the paper's
// Algorithm 1 verbatim) or the concurrent engine, an executor pool
// feeding a central scheduler over a sharded priority queue.
//
// Layout:
//
//	internal/core     the fuzzing algorithm (paper Algorithm 1):
//	                  serial engine, parallel scheduler + executors
//	internal/taint    dynamic taint tracking for input characters
//	internal/trace    the instrumentation runtime parsers run against
//	internal/pqueue   the search's priority queue, exact and sharded
//	internal/subjects the five evaluation subjects (ini, csv, cJSON,
//	                  tinyC, mjs) plus the §2/§3 demo parsers
//	internal/afl      the AFL-style coverage-guided baseline
//	internal/klee     the KLEE-style symbolic-execution baseline
//	internal/eval     the evaluation harness (Figures 2-3, Tables 1-4)
//	cmd/...           pfuzzer, bafl, bklee, evaluate
//	examples/...      runnable walkthroughs of the public API
//
// The benchmarks in bench_test.go regenerate every table and figure
// of the paper's evaluation; see DESIGN.md for the experiment index
// and EXPERIMENTS.md for measured-vs-paper results.
package pfuzzer
