// Command pfuzzer runs parser-directed fuzzing on one of the built-in
// subjects and streams the valid inputs it synthesizes, the way the
// paper's prototype prints every accepted input that covers new code.
//
// Usage:
//
//	pfuzzer -subject cjson [-execs 100000] [-seed 1] [-workers 4] [-quiet]
//	        [-mine] [-mine-budget n] [-mine-tokens n] [-mine-cadence n]
//
// Subjects: ini, csv, cjson, tinyc, mjs, expr, paren.
//
// With -workers 1 (the default) campaigns are deterministic under
// -seed; more workers run candidate executions in parallel. -mine
// enables the hybrid campaign (paper §7.4): a token grammar is mined
// from the valid corpus and used to generate longer candidates, which
// are validated through the same engine and fed back into the miner.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pfuzzer/internal/core"
	"pfuzzer/internal/registry"
)

func main() {
	var (
		subjectName = flag.String("subject", "expr", "subject to fuzz")
		execs       = flag.Int("execs", 100000, "execution budget")
		seed        = flag.Int64("seed", 1, "RNG seed")
		maxValids   = flag.Int("valids", 0, "stop after N valid inputs (0 = run out the budget)")
		workers     = flag.Int("workers", 1, "parallel executors (1 = deterministic serial engine)")
		quiet       = flag.Bool("quiet", false, "print only the summary")
		minePhase   = flag.Bool("mine", false, "hybrid campaign: mine a grammar from the valid corpus and validate generated candidates (§7.4)")
		mineBudget  = flag.Int("mine-budget", 0, "executions reserved for mined candidates (0 = execs/4)")
		mineTokens  = flag.Int("mine-tokens", 0, "max tokens per generated candidate (0 = 30)")
		mineCadence = flag.Int("mine-cadence", 0, "exploration executions between mining bursts (0 = four interleavings)")
	)
	flag.Parse()

	entry, ok := registry.Get(*subjectName)
	if !ok {
		fmt.Fprintf(os.Stderr, "pfuzzer: unknown subject %q (have %s)\n",
			*subjectName, strings.Join(registry.Names(), ", "))
		os.Exit(2)
	}

	cfg := core.Config{
		Seed: *seed, MaxExecs: *execs, MaxValids: *maxValids, Workers: *workers,
		MinePhase: *minePhase, MineBudget: *mineBudget,
		MineMaxTokens: *mineTokens, MineCadence: *mineCadence,
		MineLexer: entry.Lexer,
	}
	if !*quiet {
		cfg.OnValid = func(input []byte, execs int) {
			fmt.Printf("%8d  %q\n", execs, input)
		}
	}
	res := core.New(entry.New(), cfg).Run()

	prog := entry.New()
	fmt.Printf("\nsubject=%s execs=%d valids=%d coverage=%d/%d (%.1f%%) elapsed=%v\n",
		entry.Name, res.Execs, len(res.Valids), len(res.Coverage), prog.Blocks(),
		100*float64(len(res.Coverage))/float64(prog.Blocks()), res.Elapsed.Round(1000000))

	found := map[string]bool{}
	for _, v := range res.Valids {
		for tok := range entry.Tokenize(v.Input) {
			found[tok] = true
		}
	}
	var names []string
	for _, tok := range entry.Inventory {
		if found[tok.Name] {
			names = append(names, tok.Name)
		}
	}
	fmt.Printf("tokens covered (%d/%d): %s\n", len(names), entry.Inventory.Count(),
		strings.Join(names, " "))
}
