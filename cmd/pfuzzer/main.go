// Command pfuzzer runs parser-directed fuzzing on one of the built-in
// subjects and streams the valid inputs it synthesizes, the way the
// paper's prototype prints every accepted input that covers new code.
//
// Usage:
//
//	pfuzzer -subject cjson [-execs 100000] [-seed 1] [-workers 4]
//	        [-batch n] [-spec-depth n] [-quiet] [-cache=false] [-mine]
//	        [-mine-budget n] [-mine-tokens n] [-mine-cadence n] [-out file]
//	        [-resume file] [-snap-every n] [-mine-from file] [-shim bin]
//	pfuzzer -list
//
// Subjects: ini, csv, cjson, tinyc, mjs, expr, paren, urlp, sexpr,
// httpreq, dotg (-list prints them with block counts and
// token-inventory sizes).
//
// Campaigns are deterministic under -seed at every -workers count:
// extra workers speculatively prefetch the executions the campaign
// trajectory is about to need (DESIGN.md §11), which changes
// wall-clock only, never the corpus. -batch caps how many upcoming
// executions each trajectory iteration announces to the workers
// (0 auto-tunes from the observed execution latency). -mine
// enables the hybrid campaign (paper §7.4): a token grammar is mined
// from the valid corpus and used to generate longer candidates, which
// are validated through the same engine and fed back into the miner.
//
// -out journals the campaign into a persistent corpus store
// (internal/corpus): every valid input as it is found, plus an engine
// snapshot every -snap-every executions. A campaign killed mid-run
// resumes with -resume from the journal's last snapshot; on the
// serial engine the resumed campaign re-finds exactly the valids lost
// after that snapshot, so the journal converges to the uninterrupted
// run's corpus at the same total budget. -mine-from seeds the -mine
// grammar from a previously saved corpus without resuming it — the
// §7.4 chain (fuzz, mine, generate) across process restarts.
//
// -shim drives the subject out of process through a child binary
// speaking the shim protocol (DESIGN.md §14) — cmd/pshim serves every
// built-in subject that way. Child crashes and hangs become
// recoverable per-execution outcomes instead of campaign aborts; the
// summary reports what was lost.
//
// SIGINT or SIGTERM interrupts the campaign gracefully: the current
// slice finishes, a final snapshot lands in the journal, the summary
// prints, shim children are killed, and pfuzzer exits 130. A second
// signal forces immediate exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pfuzzer/internal/core"
	"pfuzzer/internal/corpus"
	"pfuzzer/internal/registry"
	"pfuzzer/internal/shim"
	"pfuzzer/internal/subject"
)

func main() {
	var (
		subjectName = flag.String("subject", "expr", "subject to fuzz")
		execs       = flag.Int("execs", 100000, "execution budget")
		seed        = flag.Int64("seed", 1, "RNG seed")
		maxValids   = flag.Int("valids", 0, "stop after N valid inputs (0 = run out the budget)")
		workers     = flag.Int("workers", 1, "engine concurrency: 1 = serial, more add speculative executors; the corpus is bit-identical at every count")
		batch       = flag.Int("batch", 0, "speculation batch size per trajectory iteration (0 = auto-tune from execution latency); wall-clock knob only")
		specDepth   = flag.Int("spec-depth", 0, "shadow-simulation lookahead: iterations of the trajectory simulated ahead per publish (0 = default, negative = off); wall-clock knob only")
		cache       = flag.Bool("cache", true, "prefix-decided execution cache (adaptive; identical output either way, see DESIGN.md §10); with -resume an explicitly passed value overrides the snapshot and true forces the cache on, retirement disabled")
		quiet       = flag.Bool("quiet", false, "print only the summary")
		list        = flag.Bool("list", false, "list registered subjects and exit")
		minePhase   = flag.Bool("mine", false, "hybrid campaign: mine a grammar from the valid corpus and validate generated candidates (§7.4)")
		mineBudget  = flag.Int("mine-budget", 0, "executions reserved for mined candidates (0 = execs/4)")
		mineTokens  = flag.Int("mine-tokens", 0, "max tokens per generated candidate (0 = 30)")
		mineCadence = flag.Int("mine-cadence", 0, "exploration executions between mining bursts (0 = four interleavings)")
		mineFrom    = flag.String("mine-from", "", "seed the -mine grammar from a saved corpus journal")
		outPath     = flag.String("out", "", "journal the campaign (valids + snapshots) to this file")
		resumePath  = flag.String("resume", "", "resume the campaign journaled at this file")
		snapEvery   = flag.Int("snap-every", 10000, "executions between journal snapshots")
		shimBin     = flag.String("shim", "", "drive the subject out of process through this shim binary (e.g. a built cmd/pshim); child crashes and hangs become recoverable per-exec outcomes")
	)
	flag.Parse()

	if *list {
		listSubjects()
		return
	}
	if flag.NArg() != 0 {
		fail("unexpected arguments: %s", strings.Join(flag.Args(), " "))
	}
	if *resumePath != "" && *outPath != "" && *resumePath != *outPath {
		fail("use either -resume (which keeps journaling to the same file) or -out, not both")
	}

	trapSignals()

	var run *campaignRun
	if *resumePath != "" {
		warnIgnoredOnResume()
		run = resume(*resumePath, *execs, *maxValids, cacheMode(*cache), *quiet, *shimBin)
	} else {
		cfg := flagConfig(*subjectName, *seed, *execs, *maxValids, *workers,
			*minePhase, *mineBudget, *mineTokens, *mineCadence, *mineFrom)
		cfg.BatchSize = *batch
		cfg.SpecDepth = *specDepth
		if !*cache {
			cfg.Cache = core.CacheOff
		}
		run = fresh(cfg, *subjectName, *outPath, *quiet, *shimBin)
	}

	drive(run.camp, run.store, *snapEvery)
	run.summarize()
	if interrupted.Load() {
		exit(130)
	}
	exit(0)
}

// campaignRun bundles one invocation's campaign, journal and subject.
// The subject Program is constructed once and shared between the
// engine and the summary.
type campaignRun struct {
	camp  *core.Campaign
	store *corpus.Store
	entry registry.Entry
	prog  subject.Program
	host  *shim.Host
}

// The cleanup stack: every resource that must not be abandoned on any
// exit path — the corpus journal, shim child processes — registers
// here, and every exit (normal completion, fail, forced signal) runs
// the stack exactly once, LIFO. This is what guarantees a flag error
// after -out opened the journal still flushes and closes it.
var (
	cleanupMu   sync.Mutex
	cleanups    []func()
	cleanupDone bool

	// interrupted flips on the first SIGINT/SIGTERM; drive checks it
	// between slices so the campaign stops at a snapshot boundary.
	interrupted atomic.Bool
)

// onExit pushes a cleanup to run at process exit.
func onExit(f func()) {
	cleanupMu.Lock()
	defer cleanupMu.Unlock()
	cleanups = append(cleanups, f)
}

// runCleanups runs the stack LIFO, once.
func runCleanups() {
	cleanupMu.Lock()
	defer cleanupMu.Unlock()
	if cleanupDone {
		return
	}
	cleanupDone = true
	for i := len(cleanups) - 1; i >= 0; i-- {
		cleanups[i]()
	}
}

// exit is the single exit path: cleanups, then the status code.
func exit(code int) {
	runCleanups()
	os.Exit(code)
}

func fail(msg string, args ...any) {
	fmt.Fprintf(os.Stderr, "pfuzzer: "+msg+"\n", args...)
	exit(2)
}

// trapSignals installs the graceful-shutdown handler: the first
// SIGINT/SIGTERM asks the drive loop to stop at the next snapshot
// boundary (final snapshot + summary still happen), the second forces
// an immediate exit through the cleanup stack, so shim children are
// killed and the journal is closed either way.
func trapSignals() {
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		interrupted.Store(true)
		fmt.Fprintln(os.Stderr, "pfuzzer: interrupted — finishing the current slice, cutting a final snapshot (signal again to force exit)")
		<-sigc
		fmt.Fprintln(os.Stderr, "pfuzzer: forced exit")
		exit(130)
	}()
}

// explicit reports whether a flag was set on the command line.
func explicit(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// warnIgnoredOnResume flags the knobs a resumed campaign takes from
// its snapshot, so an explicitly passed value does not silently do
// nothing. -execs, -valids, -cache and -shim are the supported
// overrides (the shim is an execution vehicle, not campaign state).
func warnIgnoredOnResume() {
	ignored := map[string]bool{
		"subject": true, "seed": true, "workers": true, "batch": true,
		"spec-depth": true,
		"mine":       true, "mine-budget": true, "mine-tokens": true,
		"mine-cadence": true, "mine-from": true,
	}
	flag.Visit(func(f *flag.Flag) {
		if ignored[f.Name] {
			fmt.Fprintf(os.Stderr, "pfuzzer: -%s is ignored with -resume (the snapshot carries it)\n", f.Name)
		}
	})
}

// listSubjects prints the registry: every subject with its
// instrumented block count and token-inventory size.
func listSubjects() {
	fmt.Printf("%-8s %8s %8s\n", "subject", "blocks", "tokens")
	for _, e := range registry.All() {
		fmt.Printf("%-8s %8d %8d\n", e.Name, e.New().Blocks(), e.Inventory.Count())
	}
}

func lookup(name string) registry.Entry {
	entry, ok := registry.Get(name)
	if !ok {
		fail("unknown subject %q (have %s)", name, strings.Join(registry.Names(), ", "))
	}
	return entry
}

// shimWrap swaps an entry's execution vehicle for an out-of-process
// host driving shimBin children, registering the kill-all cleanup.
func shimWrap(entry registry.Entry, shimBin string) (registry.Entry, *shim.Host) {
	host, err := shim.NewHost(shim.CmdLauncher{Path: shimBin}, shim.Options{Subject: entry.Name})
	if err != nil {
		fail("%v", err)
	}
	onExit(host.Close)
	return shim.WrapEntry(entry, host), host
}

func flagConfig(subject string, seed int64, execs, maxValids, workers int,
	mine bool, mineBudget, mineTokens, mineCadence int, mineFrom string) core.Config {
	cfg := core.Config{
		Seed: seed, MaxExecs: execs, MaxValids: maxValids, Workers: workers,
		MinePhase: mine, MineBudget: mineBudget,
		MineMaxTokens: mineTokens, MineCadence: mineCadence,
	}
	if mineFrom != "" {
		if !mine {
			fail("-mine-from needs -mine")
		}
		prev, err := corpus.Open(mineFrom)
		if err != nil {
			fail("%v", err)
		}
		if prev.Meta().Subject != subject {
			fail("-mine-from %s holds a %s corpus, but -subject is %s: a foreign-language grammar would only generate invalid candidates",
				mineFrom, prev.Meta().Subject, subject)
		}
		cfg.MineSeeds = prev.ValidInputs()
		if err := prev.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "seeding grammar from %d valids in %s\n",
			len(cfg.MineSeeds), mineFrom)
	}
	return cfg
}

// events wires the campaign's event stream to stdout and the journal.
func events(store *corpus.Store, quiet bool) func(core.Event) {
	return func(ev core.Event) {
		if ev.Kind != core.EventValid {
			return
		}
		if store != nil {
			if err := store.AppendValid(ev.Execs, ev.Input); err != nil {
				fail("%v", err)
			}
		}
		if !quiet {
			fmt.Printf("%8d  %q\n", ev.Execs, ev.Input)
		}
	}
}

// fresh builds a new campaign from flags, creating the journal if
// -out was given.
func fresh(cfg core.Config, subjectName, outPath string, quiet bool, shimBin string) *campaignRun {
	entry := lookup(subjectName)
	cfg.MineLexer = entry.Lexer
	var host *shim.Host
	if shimBin != "" {
		entry, host = shimWrap(entry, shimBin)
	}
	var store *corpus.Store
	if outPath != "" {
		var err error
		store, err = corpus.Create(outPath, corpus.Meta{
			Subject: entry.Name, Tool: "pFuzzer", Seed: cfg.Seed, MaxExecs: cfg.MaxExecs,
		})
		if err != nil {
			fail("%v", err)
		}
		onExit(func() {
			if err := store.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "pfuzzer: closing journal: %v\n", err)
			}
		})
	}
	cfg.Events = events(store, quiet)
	prog := entry.New()
	return &campaignRun{camp: core.NewCampaign(prog, cfg), store: store, entry: entry, prog: prog, host: host}
}

// cacheMode maps the -cache flag to a Restore override: only an
// explicitly passed flag overrides the snapshot's saved mode.
func cacheMode(on bool) core.CacheMode {
	if !explicit("cache") {
		return core.CacheAuto // keep what the snapshot says
	}
	if on {
		return core.CacheOn
	}
	return core.CacheOff
}

// resume reopens a journal (recovering a torn tail if the previous
// run was killed mid-write), restores the engine from its last
// snapshot, and re-journals into the same file. Explicit -execs,
// -valids and -cache override the saved values; everything else comes
// from the snapshot.
func resume(path string, execs, maxValids int, cache core.CacheMode, quiet bool, shimBin string) *campaignRun {
	store, err := corpus.Open(path)
	if err != nil {
		fail("%v", err)
	}
	onExit(func() {
		if err := store.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "pfuzzer: closing journal: %v\n", err)
		}
	})
	if n := store.TruncatedBytes(); n > 0 {
		fmt.Fprintf(os.Stderr, "recovered journal %s: dropped %d bytes of torn tail\n", path, n)
	}
	blob := store.Snapshot()
	if blob == nil {
		fail("journal %s holds no snapshot to resume from", path)
	}
	snap, err := core.UnmarshalSnapshot(blob)
	if err != nil {
		fail("%v", err)
	}
	entry := lookup(store.Meta().Subject)
	var host *shim.Host
	if shimBin != "" {
		entry, host = shimWrap(entry, shimBin)
	}
	over := core.Config{
		Events:    events(store, quiet),
		MineLexer: entry.Lexer,
		Cache:     cache,
	}
	if explicit("execs") {
		over.MaxExecs = execs
	}
	if explicit("valids") {
		over.MaxValids = maxValids
	}
	prog := entry.New()
	camp, err := core.Restore(prog, over, snap)
	if err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "resuming %s at %d execs, %d valids\n",
		entry.Name, camp.Result().Execs, len(camp.Result().Valids))
	return &campaignRun{camp: camp, store: store, entry: entry, prog: prog, host: host}
}

// drive steps the campaign to completion, snapshotting into the
// journal between slices so a kill at any point loses at most one
// slice of work. An interrupt stops the loop at a snapshot boundary,
// after the final snapshot has landed.
func drive(camp *core.Campaign, store *corpus.Store, snapEvery int) {
	if snapEvery < 1 {
		snapEvery = 10000
	}
	for {
		spent, more := camp.Step(snapEvery)
		if store != nil {
			blob, err := camp.Snapshot().Marshal()
			if err != nil {
				fail("%v", err)
			}
			if err := store.AppendSnapshot(blob); err != nil {
				fail("%v", err)
			}
		}
		// spent == 0 with more: a stuck engine. Treat as terminal like
		// Fuzzer.Run and the fleet do, instead of journaling snapshots
		// forever.
		if !more || spent == 0 || interrupted.Load() {
			return
		}
	}
}

func (r *campaignRun) summarize() {
	res, entry := r.camp.Result(), r.entry
	if interrupted.Load() {
		fmt.Printf("\ninterrupted — partial results:")
	}
	fmt.Printf("\nsubject=%s execs=%d valids=%d coverage=%d/%d (%.1f%%) elapsed=%v\n",
		entry.Name, res.Execs, len(res.Valids), len(res.Coverage), r.prog.Blocks(),
		100*float64(len(res.Coverage))/float64(r.prog.Blocks()), res.Elapsed.Round(time.Millisecond))
	if res.CacheHits+res.CacheMisses > 0 {
		state := ""
		if res.CacheRetired {
			state = " (adaptively retired)"
		}
		fmt.Printf("cache: %d hits / %d misses (%.1f%% hit rate)%s, exec layer %v\n",
			res.CacheHits, res.CacheMisses, 100*res.CacheHitRate(), state,
			res.ExecElapsed.Round(time.Millisecond))
	}
	if r.host != nil {
		st := r.host.Stats()
		trip := ""
		if st.Tripped {
			trip = " — circuit breaker tripped"
		}
		fmt.Printf("shim: %d execs over %d children, lost %d crashed / %d hung / %d protocol / %d unavailable%s\n",
			st.Execs, st.Spawns, st.Crashes, st.Hangs, st.Protocol, st.Unavailable, trip)
	}

	found := map[string]bool{}
	for _, v := range res.Valids {
		for tok := range entry.Tokenize(v.Input) {
			found[tok] = true
		}
	}
	var names []string
	for _, tok := range entry.Inventory {
		if found[tok.Name] {
			names = append(names, tok.Name)
		}
	}
	fmt.Printf("tokens covered (%d/%d): %s\n", len(names), entry.Inventory.Count(),
		strings.Join(names, " "))
}
