// Command bklee runs the KLEE-style symbolic-execution baseline on
// one of the built-in subjects (paper §5: KLEE configured to emit
// only inputs that cover new code).
//
// Usage:
//
//	bklee -subject cjson [-execs 100000] [-states 200000] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pfuzzer/internal/klee"
	"pfuzzer/internal/registry"
)

func main() {
	var (
		subjectName = flag.String("subject", "expr", "subject to explore")
		execs       = flag.Int("execs", 100000, "execution budget")
		states      = flag.Int("states", 200000, "frontier bound")
		quiet       = flag.Bool("quiet", false, "print only the summary")
	)
	flag.Parse()

	entry, ok := registry.Get(*subjectName)
	if !ok {
		fmt.Fprintf(os.Stderr, "bklee: unknown subject %q (have %s)\n",
			*subjectName, strings.Join(registry.Names(), ", "))
		os.Exit(2)
	}

	cfg := klee.Config{MaxExecs: *execs, MaxStates: *states}
	if !*quiet {
		cfg.OnValid = func(input []byte, execs int) {
			fmt.Printf("%8d  %q\n", execs, input)
		}
	}
	res := klee.New(entry.New(), cfg).Run()

	prog := entry.New()
	fmt.Printf("\nsubject=%s execs=%d valids=%d states=%d dropped=%d exhausted=%v coverage=%d/%d (%.1f%%) elapsed=%v\n",
		entry.Name, res.Execs, len(res.Valids), res.States, res.Dropped, res.Exhausted,
		len(res.Coverage), prog.Blocks(),
		100*float64(len(res.Coverage))/float64(prog.Blocks()), res.Elapsed.Round(1000000))
}
