// Command pdlint runs the project's static-analysis suite: five
// analyzers that enforce the determinism and subject contracts
// DESIGN.md §12 documents, over the package scopes where each contract
// binds. CI runs `go run ./cmd/pdlint ./...` and fails on any
// unsuppressed finding.
//
//	pdlint [-json] [-fix] [packages]
//
// -json emits every finding (suppressed ones included, with their
// justifications) as a JSON array, so suppression debt stays
// reviewable. -fix applies suggested fixes (currently maprange's
// sort-keys rewrite) in place; fixed findings do not fail the run.
// Exit status: 0 clean, 1 unsuppressed findings, 2 load or type errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pfuzzer/internal/analysis/atomicfield"
	"pfuzzer/internal/analysis/enginerand"
	"pfuzzer/internal/analysis/maprange"
	"pfuzzer/internal/analysis/pdlint"
	"pfuzzer/internal/analysis/subjecttrace"
	"pfuzzer/internal/analysis/walltime"
)

// walltimeSinks are the declared diagnostics-only clock readers
// (walltime's escape hatch, DESIGN.md §12): execFacts stamps
// Result.ExecElapsed and speculate feeds the EWMA batch auto-tuner;
// neither duration influences campaign decisions or fingerprints.
var walltimeSinks = []string{
	"(*pfuzzer/internal/core.Fuzzer).execFacts",
	"(*pfuzzer/internal/core.specPool).speculate",
}

// scopes maps each analyzer to the package-path prefixes its contract
// binds. Scoping lives here, not in the analyzers, so the same
// analyzer runs unchanged on its testdata.
//
// engineScope is where campaign results are produced: the determinism
// contract (no order leaks, no wall clocks, no uncounted RNG draws)
// applies in full. The campaign package is deliberately outside
// walltime's scope — fleet progress reporting is wall-clock by nature
// and never feeds back into results — as is stepclock, which is the
// sanctioned timing module.
var engineScope = []string{
	"pfuzzer/internal/core",
	"pfuzzer/internal/mine",
	"pfuzzer/internal/eval",
	"pfuzzer/internal/pcache",
	"pfuzzer/internal/pqueue",
	"pfuzzer/internal/corpus",
	"pfuzzer/internal/subjects",
	"pfuzzer/internal/afl",
	"pfuzzer/internal/klee",
}

var scopes = map[string][]string{
	"maprange":     engineScope,
	"walltime":     engineScope,
	"enginerand":   engineScope,
	"atomicfield":  {"pfuzzer"},
	"subjecttrace": {"pfuzzer/internal/subjects"},
}

func inScope(name, pkgPath string) bool {
	for _, p := range scopes[name] {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

func main() { os.Exit(run(os.Stdout, os.Stderr, os.Args[1:])) }

func run(stdout, stderr *os.File, args []string) int {
	flags := flag.NewFlagSet("pdlint", flag.ExitOnError)
	jsonOut := flags.Bool("json", false, "emit all findings (suppressed included) as JSON")
	fix := flags.Bool("fix", false, "apply suggested fixes in place; fixed findings do not fail the run")
	flags.Parse(args)
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := pdlint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "pdlint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "pdlint: no packages matched", strings.Join(patterns, " "))
		return 2
	}

	suite := []*pdlint.Analyzer{
		maprange.Analyzer,
		walltime.New(walltimeSinks...),
		enginerand.Analyzer,
		atomicfield.Analyzer,
		subjecttrace.Analyzer,
	}
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.Name
	}

	code := 0
	var all []pdlint.Finding
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "pdlint: %s: %v\n", pkg.PkgPath, e)
			code = 2
		}
		var active []*pdlint.Analyzer
		for _, a := range suite {
			if inScope(a.Name, pkg.PkgPath) {
				active = append(active, a)
			}
		}
		// Out-of-scope packages still get their directives checked.
		all = append(all, pdlint.Run(pkg, active, names...)...)
	}
	if code != 0 {
		return code
	}

	if *fix {
		fixedFiles, err := pdlint.ApplyFixes(pkgs[0].Fset, all)
		if err != nil {
			fmt.Fprintln(stderr, "pdlint: applying fixes:", err)
			return 2
		}
		files := make([]string, 0, len(fixedFiles))
		for file := range fixedFiles {
			files = append(files, file)
		}
		sort.Strings(files)
		for _, file := range files {
			if err := os.WriteFile(file, fixedFiles[file], 0o644); err != nil {
				fmt.Fprintln(stderr, "pdlint:", err)
				return 2
			}
			fmt.Fprintf(stderr, "pdlint: fixed %s\n", rel(file))
		}
	}

	failing := 0
	suppressed := 0
	for _, f := range all {
		switch {
		case f.Suppressed:
			suppressed++
		case *fix && len(f.Fixes) > 0:
			// Just rewritten; no longer a finding.
		default:
			failing++
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []pdlint.Finding{}
		}
		for i := range all {
			all[i].File = rel(all[i].File)
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "pdlint:", err)
			return 2
		}
	} else {
		for _, f := range all {
			if f.Suppressed || (*fix && len(f.Fixes) > 0) {
				continue
			}
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", rel(f.File), f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	fmt.Fprintf(stderr, "pdlint: %d packages, %d findings, %d suppressed\n",
		len(pkgs), failing, suppressed)
	if failing > 0 {
		return 1
	}
	return 0
}

// rel shortens an absolute file name to a working-directory-relative
// one for display.
func rel(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	if r, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return path
}
