// Command bench measures the campaign engine's execution throughput
// with the prefix-decided execution cache (core.Config.Cache) off,
// forced on, and in its adaptive default, and writes the results as
// the perf-trajectory file BENCH_pr5.json. It is the measured half of
// the cache's contract: the conformance kit proves the cache changes
// nothing about a campaign's output, this harness records what it
// does to wall-clock.
//
// Usage:
//
//	bench [-quick] [-subjects all] [-execs n] [-reps n] [-seed n]
//	      [-out BENCH_pr5.json] [-cpuprofile f] [-memprofile f]
//	bench -workers-sweep 1,2,4,8 [-spec-depths -1,0,16] [-quick]
//	      [-subjects all] [-execs n] [-reps n] [-seed n]
//	      [-out BENCH_pr8.json] [-cpuprofile f] [-memprofile f]
//
// The second form measures the speculative pipeline engine instead of
// the cache: the same campaign at each (worker count, spec depth) grid
// point — Workers=1 runs once, the depth knob being inert there —
// recording campaign and exec-layer throughput, allocation rates
// (allocs/bytes per execution, the hot-path diet's trajectory), and
// the speedup over Workers=1 (sweep.go). Workers<=1 points keep the
// fingerprint-divergence gate; Workers>1 points are gated on
// valid-corpus set-equivalence with Workers=1; and on a runner with
// two or more cores the sweep demands a 1.3x campaign speedup at
// Workers=2 on at least three subjects, and fails loudly if any
// Workers>1 point ran zero speculative executions (a dead pipeline).
//
// -cpuprofile / -memprofile capture the whole bench run with
// runtime/pprof — the supported way to see where campaign time and
// steady-state retention actually go.
//
// For every subject of the matrix the harness runs the same serial
// campaign under the three cache modes (-reps repetitions, keeping
// each mode's best wall time) and reports two throughput levels:
//
//   - campaign: executions per second of the whole campaign — search
//     bookkeeping included — the end-to-end number;
//   - exec layer: executions per second of the execution layer alone
//     (subject runs, fact distillation, cache traffic; see
//     core.Result.ExecElapsed), which isolates the layer the cache
//     actually operates on from the engine's queue and scoring costs.
//
// Campaigns across modes must emit identical corpora: any
// fingerprint divergence makes bench exit non-zero, which is the CI
// gate against an unsound cache entry. The JSON also records each
// subject's hit rate and whether the adaptive mode retired the cache,
// so the trajectory file documents where the optimisation pays
// (saturating grammars reach near-total hit rates and 2-6x) and where
// the adaptive default steps aside.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"pfuzzer/internal/core"
	"pfuzzer/internal/registry"
)

// Mode is one measured cache configuration.
type Mode struct {
	NS          int64   `json:"ns"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	ExecNS      int64   `json:"exec_layer_ns"`
	ExecPerSec  float64 `json:"exec_layer_execs_per_sec"`
}

// SubjectReport is one subject's row in the trajectory file.
type SubjectReport struct {
	Subject     string  `json:"subject"`
	Execs       int     `json:"execs"`
	Valids      int     `json:"valids"`
	Fingerprint string  `json:"fingerprint"`
	Match       bool    `json:"fingerprint_match"`
	HitRate     float64 `json:"cache_hit_rate"`
	Hits        int     `json:"cache_hits"`
	Misses      int     `json:"cache_misses"`
	AutoRetired bool    `json:"auto_retired"`

	Off  Mode `json:"cache_off"`
	On   Mode `json:"cache_on"`
	Auto Mode `json:"cache_auto"`

	CampaignSpeedupOn   float64 `json:"campaign_speedup_on"`
	CampaignSpeedupAuto float64 `json:"campaign_speedup_auto"`
	ExecLayerSpeedupOn  float64 `json:"exec_layer_speedup_on"`
}

// Report is the whole trajectory file.
type Report struct {
	Bench      string          `json:"bench"`
	Quick      bool            `json:"quick"`
	Execs      int             `json:"execs"`
	Reps       int             `json:"reps"`
	Seed       int64           `json:"seed"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Subjects   []SubjectReport `json:"subjects"`

	// CampaignGe13 / ExecLayerGe13 list the subjects whose cache-on
	// campaign (resp. exec-layer) throughput improved by at least 1.3x
	// over cache-off.
	CampaignGe13  []string `json:"campaign_speedup_ge_1.3"`
	ExecLayerGe13 []string `json:"exec_layer_speedup_ge_1.3"`
	Diverged      []string `json:"fingerprint_divergence,omitempty"`
}

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced budget and repetitions (CI smoke)")
		subjects = flag.String("subjects", "all", `comma-separated subjects, or "all"`)
		execs    = flag.Int("execs", 50000, "execution budget per campaign")
		reps     = flag.Int("reps", 3, "repetitions per mode; best wall time kept")
		seed     = flag.Int64("seed", 1, "campaign RNG seed")
		outPath  = flag.String("out", "BENCH_pr5.json", "output JSON path")
		sweep    = flag.String("workers-sweep", "", `worker counts to sweep (e.g. "1,2,4,8"); writes the scaling curve instead of the cache matrix`)
		depths   = flag.String("spec-depths", "0", `spec-depth axis for -workers-sweep (e.g. "-1,0,16"): every Workers>1 count runs once per depth`)
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole bench run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (after the final campaign) to this file")
	)
	flag.Parse()

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(2)
	}
	defer stopProf()

	if *quick {
		if !explicit("execs") {
			*execs = 12000
		}
		if !explicit("reps") {
			*reps = 2
		}
	}
	if *reps < 1 {
		*reps = 1
	}
	if *sweep != "" && !explicit("out") {
		*outPath = "BENCH_pr8.json"
	}

	var entries []registry.Entry
	if strings.TrimSpace(*subjects) == "all" {
		entries = registry.All()
	} else {
		for _, name := range strings.Split(*subjects, ",") {
			e, ok := registry.Get(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "bench: unknown subject %q (have %s)\n", name, strings.Join(registry.Names(), ", "))
				os.Exit(2)
			}
			entries = append(entries, e)
		}
	}

	if *sweep != "" {
		workers, err := parseWorkers(*sweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		ds, err := parseDepths(*depths)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		runSweep(entries, *seed, *execs, *reps, workers, ds, *quick, *outPath)
		return
	}

	rep := Report{
		Bench:      "pfuzzer prefix-decided execution cache",
		Quick:      *quick,
		Execs:      *execs,
		Reps:       *reps,
		Seed:       *seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	for _, e := range entries {
		row := benchSubject(e, *seed, *execs, *reps)
		rep.Subjects = append(rep.Subjects, row)
		if !row.Match {
			rep.Diverged = append(rep.Diverged, row.Subject)
		}
		if row.CampaignSpeedupOn >= 1.3 {
			rep.CampaignGe13 = append(rep.CampaignGe13, row.Subject)
		}
		if row.ExecLayerSpeedupOn >= 1.3 {
			rep.ExecLayerGe13 = append(rep.ExecLayerGe13, row.Subject)
		}
		fmt.Fprintf(os.Stderr, "  %-8s hit=%5.1f%%  campaign %0.2fx (auto %0.2fx)  exec-layer %0.2fx%s\n",
			row.Subject, 100*row.HitRate, row.CampaignSpeedupOn, row.CampaignSpeedupAuto,
			row.ExecLayerSpeedupOn, retiredTag(row))
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		benchExit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		benchExit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)

	if len(rep.Diverged) > 0 {
		fmt.Fprintf(os.Stderr, "bench: FINGERPRINT DIVERGENCE with cache enabled on: %s\n",
			strings.Join(rep.Diverged, ", "))
		benchExit(1)
	}
}

func retiredTag(r SubjectReport) string {
	if r.AutoRetired {
		return "  [auto retired]"
	}
	return ""
}

func explicit(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// run executes one campaign and returns its result plus wall time.
func run(e registry.Entry, cfg core.Config) (*core.Result, time.Duration) {
	t0 := time.Now()
	res := core.New(e.New(), cfg).Run()
	return res, time.Since(t0)
}

// benchSubject measures one subject under the three cache modes. The
// modes are interleaved across repetitions so drift on a shared box
// hits all three alike, and each mode keeps its best time.
func benchSubject(e registry.Entry, seed int64, execs, reps int) SubjectReport {
	base := core.Config{Seed: seed, MaxExecs: execs}
	modes := []core.CacheMode{core.CacheOff, core.CacheOn, core.CacheAuto}
	best := make([]time.Duration, len(modes))
	bestExec := make([]time.Duration, len(modes))
	results := make([]*core.Result, len(modes))

	for r := 0; r < reps; r++ {
		for i, m := range modes {
			cfg := base
			cfg.Cache = m
			res, d := run(e, cfg)
			if results[i] == nil || d < best[i] {
				best[i] = d
				bestExec[i] = res.ExecElapsed
				results[i] = res
			}
		}
	}

	off, on, auto := results[0], results[1], results[2]
	row := SubjectReport{
		Subject:     e.Name,
		Execs:       on.Execs,
		Valids:      len(on.Valids),
		Fingerprint: fmt.Sprintf("%#x", on.Fingerprint()),
		Match:       on.Fingerprint() == off.Fingerprint() && auto.Fingerprint() == off.Fingerprint(),
		HitRate:     on.CacheHitRate(),
		Hits:        on.CacheHits,
		Misses:      on.CacheMisses,
		AutoRetired: auto.CacheRetired,
		Off:         mode(off.Execs, best[0], bestExec[0]),
		On:          mode(on.Execs, best[1], bestExec[1]),
		Auto:        mode(auto.Execs, best[2], bestExec[2]),
	}
	row.CampaignSpeedupOn = ratio(best[0], best[1])
	row.CampaignSpeedupAuto = ratio(best[0], best[2])
	row.ExecLayerSpeedupOn = ratio(bestExec[0], bestExec[1])
	return row
}

func mode(execs int, wall, exec time.Duration) Mode {
	return Mode{
		NS:          wall.Nanoseconds(),
		ExecsPerSec: perSec(execs, wall),
		ExecNS:      exec.Nanoseconds(),
		ExecPerSec:  perSec(execs, exec),
	}
}

func perSec(execs int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(execs) / d.Seconds()
}

func ratio(off, on time.Duration) float64 {
	if on <= 0 {
		return 0
	}
	return float64(off) / float64(on)
}
