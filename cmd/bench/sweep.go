package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"pfuzzer/internal/core"
	"pfuzzer/internal/registry"
)

// The -workers-sweep mode measures the speculative pipeline engine's
// scaling curve: the same campaign at each requested worker count,
// reporting campaign and exec-layer throughput per count and the
// speedup over Workers=1. Correctness gates ride along with the
// measurement — Workers<=1 points keep the fingerprint-divergence
// gate against the serial baseline, and Workers>1 points must emit a
// valid corpus set-equal to Workers=1 (the engine actually delivers
// bit-identical corpora, which the sweep records per point). On a
// runner with at least two cores the sweep additionally gates on the
// scaling result itself: at least minGe13 subjects must reach a 1.3x
// campaign speedup at Workers=2. On a single-core box the throughput
// numbers are recorded but the speedup gate does not apply — there is
// nothing for a second worker to run on.
const sweepMinGe13Subjects = 3

// WorkerPoint is one worker count's measurement for one subject.
type WorkerPoint struct {
	Workers int `json:"workers"`
	Mode
	CampaignSpeedup  float64 `json:"campaign_speedup_vs_w1"`
	ExecLayerSpeedup float64 `json:"exec_layer_speedup_vs_w1"`
	SetEqual         bool    `json:"corpus_set_equal"`
	BitIdentical     bool    `json:"fingerprint_match"`
	SpecExecs        int     `json:"spec_execs"`
	SpecHits         int     `json:"spec_hits"`
}

// SweepSubject is one subject's scaling curve.
type SweepSubject struct {
	Subject     string        `json:"subject"`
	Execs       int           `json:"execs"`
	Valids      int           `json:"valids"`
	Fingerprint string        `json:"fingerprint"`
	Points      []WorkerPoint `json:"points"`
}

// SweepReport is the whole BENCH_pr6.json trajectory file.
type SweepReport struct {
	Bench      string         `json:"bench"`
	Quick      bool           `json:"quick"`
	Execs      int            `json:"execs"`
	Reps       int            `json:"reps"`
	Seed       int64          `json:"seed"`
	GoMaxProcs int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Workers    []int          `json:"workers"`
	Subjects   []SweepSubject `json:"subjects"`

	// Ge13AtW2 lists the subjects whose Workers=2 campaign reached a
	// 1.3x speedup over Workers=1; GateApplied records whether the
	// multicore gate was in force (NumCPU >= 2).
	Ge13AtW2    []string `json:"campaign_speedup_ge_1.3_at_w2"`
	GateApplied bool     `json:"speedup_gate_applied"`
	Diverged    []string `json:"corpus_divergence,omitempty"`
}

// parseWorkers parses the -workers-sweep list ("1,2,4,8").
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// validSet collapses a result's emission record to the set the
// Workers>1 equivalence gate compares.
func validSet(res *core.Result) map[string]bool {
	m := make(map[string]bool, len(res.Valids))
	for _, v := range res.Valids {
		m[string(v.Input)] = true
	}
	return m
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// sweepSubject measures one subject across every worker count. Worker
// counts are interleaved across repetitions, like the cache modes in
// benchSubject, and each count keeps its best wall time.
func sweepSubject(e registry.Entry, seed int64, execs, reps int, workers []int) SweepSubject {
	best := make([]time.Duration, len(workers))
	bestExec := make([]time.Duration, len(workers))
	results := make([]*core.Result, len(workers))

	for r := 0; r < reps; r++ {
		for i, w := range workers {
			cfg := core.Config{Seed: seed, MaxExecs: execs, Workers: w}
			res, d := run(e, cfg)
			if results[i] == nil || d < best[i] {
				best[i] = d
				bestExec[i] = res.ExecElapsed
				results[i] = res
			}
		}
	}

	// The serial campaign is the correctness baseline for every point:
	// Workers<=1 points must fingerprint-match it, Workers>1 points
	// must be corpus set-equal to it.
	baseRes := core.New(e.New(), core.Config{Seed: seed, MaxExecs: execs, Workers: 1}).Run()
	baseSet := validSet(baseRes)
	var baseWall, baseExecNS time.Duration
	for i, w := range workers {
		if w == 1 {
			baseWall, baseExecNS = best[i], bestExec[i]
			break
		}
	}

	row := SweepSubject{
		Subject:     e.Name,
		Execs:       baseRes.Execs,
		Valids:      len(baseRes.Valids),
		Fingerprint: fmt.Sprintf("%#x", baseRes.Fingerprint()),
	}
	for i, w := range workers {
		res := results[i]
		pt := WorkerPoint{
			Workers:      w,
			Mode:         mode(res.Execs, best[i], bestExec[i]),
			SetEqual:     setsEqual(validSet(res), baseSet),
			BitIdentical: res.Fingerprint() == baseRes.Fingerprint(),
			SpecExecs:    res.SpecExecs,
			SpecHits:     res.SpecHits,
		}
		if baseWall > 0 {
			pt.CampaignSpeedup = ratio(baseWall, best[i])
			pt.ExecLayerSpeedup = ratio(baseExecNS, bestExec[i])
		}
		row.Points = append(row.Points, pt)
	}
	return row
}

// pointOK applies the per-point correctness gate: the fingerprint gate
// at Workers<=1, set-equivalence at Workers>1.
func pointOK(pt WorkerPoint) bool {
	if pt.Workers <= 1 {
		return pt.BitIdentical
	}
	return pt.SetEqual
}

// runSweep is the -workers-sweep entry point.
func runSweep(entries []registry.Entry, seed int64, execs, reps int, workers []int, quick bool, outPath string) {
	rep := SweepReport{
		Bench:      "pfuzzer speculative pipeline engine: worker sweep",
		Quick:      quick,
		Execs:      execs,
		Reps:       reps,
		Seed:       seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    workers,
	}
	rep.GateApplied = rep.NumCPU >= 2

	for _, e := range entries {
		row := sweepSubject(e, seed, execs, reps, workers)
		rep.Subjects = append(rep.Subjects, row)
		var parts []string
		for _, pt := range row.Points {
			if !pointOK(pt) {
				rep.Diverged = append(rep.Diverged, fmt.Sprintf("%s@w%d", row.Subject, pt.Workers))
			}
			if pt.Workers == 2 && pt.CampaignSpeedup >= 1.3 {
				rep.Ge13AtW2 = append(rep.Ge13AtW2, row.Subject)
			}
			parts = append(parts, fmt.Sprintf("w%d %0.2fx", pt.Workers, pt.CampaignSpeedup))
		}
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", row.Subject, strings.Join(parts, "  "))
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)

	if len(rep.Diverged) > 0 {
		fmt.Fprintf(os.Stderr, "bench: CORPUS DIVERGENCE across worker counts on: %s\n",
			strings.Join(rep.Diverged, ", "))
		os.Exit(1)
	}
	if rep.GateApplied && len(rep.Ge13AtW2) < sweepMinGe13Subjects {
		fmt.Fprintf(os.Stderr, "bench: only %d subject(s) reached 1.3x at Workers=2 (need %d on a %d-core runner)\n",
			len(rep.Ge13AtW2), sweepMinGe13Subjects, rep.NumCPU)
		os.Exit(1)
	}
}
