package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"pfuzzer/internal/core"
	"pfuzzer/internal/registry"
)

// The -workers-sweep mode measures the speculative pipeline engine's
// scaling curve: the same campaign at each requested worker count,
// reporting campaign and exec-layer throughput per count and the
// speedup over Workers=1. Correctness gates ride along with the
// measurement — Workers<=1 points keep the fingerprint-divergence
// gate against the serial baseline, and Workers>1 points must emit a
// valid corpus set-equal to Workers=1 (the engine actually delivers
// bit-identical corpora, which the sweep records per point). On a
// runner with at least two cores the sweep additionally gates on the
// scaling result itself: at least minGe13 subjects must reach a 1.3x
// campaign speedup at Workers=2. On a single-core box the throughput
// numbers are recorded but the speedup gate does not apply — there is
// nothing for a second worker to run on.
const sweepMinGe13Subjects = 3

// WorkerPoint is one (worker count, spec depth) measurement for one
// subject. SpecDepth is the shadow-simulation lookahead the point ran
// at (-1 = off, 0 = engine default); Workers=1 points carry the knob
// they were launched with, on which it is inert.
type WorkerPoint struct {
	Workers   int `json:"workers"`
	SpecDepth int `json:"spec_depth"`
	Mode
	CampaignSpeedup  float64 `json:"campaign_speedup_vs_w1"`
	ExecLayerSpeedup float64 `json:"exec_layer_speedup_vs_w1"`
	SetEqual         bool    `json:"corpus_set_equal"`
	BitIdentical     bool    `json:"fingerprint_match"`
	SpecExecs        int     `json:"spec_execs"`
	SpecHits         int     `json:"spec_hits"`
	// Allocation rate of the whole campaign process during the point's
	// best repetition (runtime.MemStats deltas over the campaign run):
	// the measured half of the hot-path allocation diet.
	AllocsPerExec float64 `json:"allocs_per_exec"`
	BytesPerExec  float64 `json:"bytes_per_exec"`
}

// SweepSubject is one subject's scaling curve.
type SweepSubject struct {
	Subject     string        `json:"subject"`
	Execs       int           `json:"execs"`
	Valids      int           `json:"valids"`
	Fingerprint string        `json:"fingerprint"`
	Points      []WorkerPoint `json:"points"`
}

// SweepReport is the whole BENCH_pr6.json trajectory file.
type SweepReport struct {
	Bench      string         `json:"bench"`
	Quick      bool           `json:"quick"`
	Execs      int            `json:"execs"`
	Reps       int            `json:"reps"`
	Seed       int64          `json:"seed"`
	GoMaxProcs int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Workers    []int          `json:"workers"`
	Subjects   []SweepSubject `json:"subjects"`

	// Ge13AtW2 lists the subjects whose Workers=2 campaign reached a
	// 1.3x speedup over Workers=1; GateApplied records whether the
	// multicore gate was in force (NumCPU >= 2).
	Ge13AtW2    []string `json:"campaign_speedup_ge_1.3_at_w2"`
	GateApplied bool     `json:"speedup_gate_applied"`
	Diverged    []string `json:"corpus_divergence,omitempty"`
	// NoSpec lists Workers>1 points that ran zero speculative
	// executions on a multicore runner — a dead pipeline the speedup
	// numbers would otherwise hide; any entry fails the bench.
	NoSpec []string `json:"no_speculation,omitempty"`
	// SpecDepths is the sweep's lookahead axis (Workers>1 points run
	// once per depth).
	SpecDepths []int `json:"spec_depths"`
}

// parseWorkers parses the -workers-sweep list ("1,2,4,8").
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// parseDepths parses the -spec-depths list ("-1,0,8"); negatives (off)
// and 0 (engine default) are meaningful values.
func parseDepths(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad spec depth %q", f)
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// sweepCombo is one (workers, spec depth) point of the sweep grid.
// Workers=1 runs once — the depth knob is inert on the serial engine —
// while every Workers>1 count runs once per requested depth.
type sweepCombo struct{ workers, depth int }

func sweepCombos(workers, depths []int) []sweepCombo {
	var out []sweepCombo
	for _, w := range workers {
		if w <= 1 {
			out = append(out, sweepCombo{w, depths[0]})
			continue
		}
		for _, d := range depths {
			out = append(out, sweepCombo{w, d})
		}
	}
	return out
}

// validSet collapses a result's emission record to the set the
// Workers>1 equivalence gate compares.
func validSet(res *core.Result) map[string]bool {
	m := make(map[string]bool, len(res.Valids))
	for _, v := range res.Valids {
		m[string(v.Input)] = true
	}
	return m
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// sweepSubject measures one subject across the (workers, spec depth)
// grid. Combos are interleaved across repetitions, like the cache
// modes in benchSubject, and each combo keeps its best wall time —
// along with the allocation-rate deltas of that best repetition.
func sweepSubject(e registry.Entry, seed int64, execs, reps int, combos []sweepCombo) SweepSubject {
	best := make([]time.Duration, len(combos))
	bestExec := make([]time.Duration, len(combos))
	bestAllocs := make([]uint64, len(combos))
	bestBytes := make([]uint64, len(combos))
	results := make([]*core.Result, len(combos))

	var m1, m2 runtime.MemStats
	for r := 0; r < reps; r++ {
		for i, c := range combos {
			cfg := core.Config{Seed: seed, MaxExecs: execs, Workers: c.workers, SpecDepth: c.depth}
			runtime.ReadMemStats(&m1)
			res, d := run(e, cfg)
			runtime.ReadMemStats(&m2)
			if results[i] == nil || d < best[i] {
				best[i] = d
				bestExec[i] = res.ExecElapsed
				bestAllocs[i] = m2.Mallocs - m1.Mallocs
				bestBytes[i] = m2.TotalAlloc - m1.TotalAlloc
				results[i] = res
			}
		}
	}

	// The serial campaign is the correctness baseline for every point:
	// Workers<=1 points must fingerprint-match it, Workers>1 points
	// must be corpus set-equal to it.
	baseRes := core.New(e.New(), core.Config{Seed: seed, MaxExecs: execs, Workers: 1}).Run()
	baseSet := validSet(baseRes)
	var baseWall, baseExecNS time.Duration
	for i, c := range combos {
		if c.workers == 1 {
			baseWall, baseExecNS = best[i], bestExec[i]
			break
		}
	}

	row := SweepSubject{
		Subject:     e.Name,
		Execs:       baseRes.Execs,
		Valids:      len(baseRes.Valids),
		Fingerprint: fmt.Sprintf("%#x", baseRes.Fingerprint()),
	}
	for i, c := range combos {
		res := results[i]
		pt := WorkerPoint{
			Workers:      c.workers,
			SpecDepth:    c.depth,
			Mode:         mode(res.Execs, best[i], bestExec[i]),
			SetEqual:     setsEqual(validSet(res), baseSet),
			BitIdentical: res.Fingerprint() == baseRes.Fingerprint(),
			SpecExecs:    res.SpecExecs,
			SpecHits:     res.SpecHits,
		}
		if res.Execs > 0 {
			pt.AllocsPerExec = float64(bestAllocs[i]) / float64(res.Execs)
			pt.BytesPerExec = float64(bestBytes[i]) / float64(res.Execs)
		}
		if baseWall > 0 {
			pt.CampaignSpeedup = ratio(baseWall, best[i])
			pt.ExecLayerSpeedup = ratio(baseExecNS, bestExec[i])
		}
		row.Points = append(row.Points, pt)
	}
	return row
}

// appendUnique appends s if absent — one subject can reach the Workers=2
// speedup bar at several depths, and the gate counts subjects, not
// points.
func appendUnique(list []string, s string) []string {
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}

// pointOK applies the per-point correctness gate: the fingerprint gate
// at Workers<=1, set-equivalence at Workers>1.
func pointOK(pt WorkerPoint) bool {
	if pt.Workers <= 1 {
		return pt.BitIdentical
	}
	return pt.SetEqual
}

// runSweep is the -workers-sweep entry point.
func runSweep(entries []registry.Entry, seed int64, execs, reps int, workers, depths []int, quick bool, outPath string) {
	rep := SweepReport{
		Bench:      "pfuzzer speculative pipeline engine: worker sweep",
		Quick:      quick,
		Execs:      execs,
		Reps:       reps,
		Seed:       seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    workers,
		SpecDepths: depths,
	}
	rep.GateApplied = rep.NumCPU >= 2
	combos := sweepCombos(workers, depths)

	for _, e := range entries {
		row := sweepSubject(e, seed, execs, reps, combos)
		rep.Subjects = append(rep.Subjects, row)
		var parts []string
		for _, pt := range row.Points {
			tag := fmt.Sprintf("%s@w%d/d%d", row.Subject, pt.Workers, pt.SpecDepth)
			if !pointOK(pt) {
				rep.Diverged = append(rep.Diverged, tag)
			}
			// A Workers>1 campaign on a multicore runner must actually
			// speculate: zero speculative executions means the pipeline
			// is dead and the sweep is measuring nothing.
			if rep.NumCPU >= 2 && pt.Workers > 1 && pt.SpecExecs == 0 {
				rep.NoSpec = append(rep.NoSpec, tag)
			}
			if pt.Workers == 2 && pt.CampaignSpeedup >= 1.3 {
				rep.Ge13AtW2 = appendUnique(rep.Ge13AtW2, row.Subject)
			}
			parts = append(parts, fmt.Sprintf("w%d/d%d %0.2fx %.0fa", pt.Workers, pt.SpecDepth, pt.CampaignSpeedup, pt.AllocsPerExec))
		}
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", row.Subject, strings.Join(parts, "  "))
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		benchExit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		benchExit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)

	if len(rep.Diverged) > 0 {
		fmt.Fprintf(os.Stderr, "bench: CORPUS DIVERGENCE across worker counts on: %s\n",
			strings.Join(rep.Diverged, ", "))
		benchExit(1)
	}
	if len(rep.NoSpec) > 0 {
		fmt.Fprintf(os.Stderr, "bench: NO SPECULATION on a %d-core runner at: %s\n",
			rep.NumCPU, strings.Join(rep.NoSpec, ", "))
		benchExit(1)
	}
	if rep.GateApplied && len(rep.Ge13AtW2) < sweepMinGe13Subjects {
		fmt.Fprintf(os.Stderr, "bench: only %d subject(s) reached 1.3x at Workers=2 (need %d on a %d-core runner)\n",
			len(rep.Ge13AtW2), sweepMinGe13Subjects, rep.NumCPU)
		benchExit(1)
	}
}
