package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profMemPath defers the heap profile to flush time: the interesting
// picture is live retention after the campaigns, not at startup.
var profMemPath string

var profStopped bool

// startProfiles wires the -cpuprofile/-memprofile flags. The CPU
// profile covers the whole bench run (campaigns of every mode/point);
// the heap profile is written at flush time, after a forced GC, so it
// shows steady-state retention rather than transient garbage. The
// returned stop is also reachable through benchExit for the failure
// paths that bypass defers.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
	}
	profMemPath = memPath
	return stopProfiles, nil
}

func stopProfiles() {
	if profStopped {
		return
	}
	profStopped = true
	pprof.StopCPUProfile()
	if profMemPath != "" {
		f, err := os.Create(profMemPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		}
	}
}

// benchExit flushes the profiles before exiting — the gate failures
// exit non-zero, and a truncated CPU profile would be useless exactly
// when one wants to see what the failing run did.
func benchExit(code int) {
	stopProfiles()
	os.Exit(code)
}
