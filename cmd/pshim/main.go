// pshim serves any registered in-process subject over the shim
// protocol on stdin/stdout: a self-shim. It exists so the whole
// out-of-process stack — framing, handshake, trace replay, deadline
// and restart policy — can be conformance-tested against known-good
// subjects, and it doubles as the reference implementation for
// shimming a parser we didn't write.
//
// Usage:
//
//	pfuzzer -shim ./pshim ...        # any engine, any subject
//
// The subject to serve arrives in the parent's handshake, so one
// binary serves the whole registry. The -crash-at/-hang-at/-garbage-at
// flags deterministically inject faults at the Nth execution, for
// fault-injection tests and recovery demos.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"pfuzzer/internal/registry"
	"pfuzzer/internal/shim"
)

func main() {
	crashAt := flag.Int("crash-at", 0, "die mid-frame at the Nth execution (0 = never)")
	hangAt := flag.Int("hang-at", 0, "stop responding at the Nth execution (0 = never)")
	garbageAt := flag.Int("garbage-at", 0, "answer the Nth execution with garbage bytes (0 = never)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: pshim [flags]\n\nServes registered subjects (%v)\nover the shim protocol on stdin/stdout.\n\n",
			registry.Names())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	err := shim.Serve(os.Stdin, os.Stdout, shim.ServeConfig{
		Lookup: registry.NewProgram,
		Fault: shim.FaultPlan{
			CrashAt:   *crashAt,
			HangAt:    *hangAt,
			GarbageAt: *garbageAt,
		},
	})
	if errors.Is(err, shim.ErrCrashFault) {
		// Exit like the crash we are simulating: abruptly and nonzero.
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pshim:", err)
		os.Exit(1)
	}
}
