// Command bafl runs the AFL-style coverage-guided baseline on one of
// the built-in subjects (paper §5: AFL with a single space character
// as seed corpus; validity decided by the exit code).
//
// Usage:
//
//	bafl -subject cjson [-execs 1000000] [-seed 1] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pfuzzer/internal/afl"
	"pfuzzer/internal/registry"
)

func main() {
	var (
		subjectName = flag.String("subject", "expr", "subject to fuzz")
		execs       = flag.Int("execs", 1000000, "execution budget")
		seed        = flag.Int64("seed", 1, "RNG seed")
		quiet       = flag.Bool("quiet", false, "print only the summary")
	)
	flag.Parse()

	entry, ok := registry.Get(*subjectName)
	if !ok {
		fmt.Fprintf(os.Stderr, "bafl: unknown subject %q (have %s)\n",
			*subjectName, strings.Join(registry.Names(), ", "))
		os.Exit(2)
	}

	cfg := afl.Config{Seed: *seed, MaxExecs: *execs}
	if !*quiet {
		cfg.OnValid = func(input []byte, execs int) {
			fmt.Printf("%8d  %q\n", execs, input)
		}
	}
	res := afl.New(entry.New(), cfg).Run()

	prog := entry.New()
	fmt.Printf("\nsubject=%s execs=%d valids=%d queue=%d coverage=%d/%d (%.1f%%) elapsed=%v\n",
		entry.Name, res.Execs, len(res.Valids), res.QueueLen, len(res.Coverage), prog.Blocks(),
		100*float64(len(res.Coverage))/float64(prog.Blocks()), res.Elapsed.Round(1000000))
}
