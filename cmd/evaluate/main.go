// Command evaluate regenerates every table and figure of the paper's
// evaluation (§5): Table 1 (subjects), Figure 2 (branch coverage per
// subject and tool), Tables 2–4 (token inventories), Figure 3 (tokens
// generated per token length), and the §5.3 token-coverage
// aggregates — plus the pFuzzer+Mine column reproducing the §7.4
// experiment: pFuzzer exploration extended with grammar mining over
// the valid corpus (its exploration is seed-identical to the pFuzzer
// column, so the delta is exactly what mining adds).
//
// Usage:
//
//	evaluate [-scale f] [-seed n] [-runs n] [-workers n] [-parallel n]
//	         [-subjects a,b,c] [-mine-execs n] [-out dir] [-table1]
//	         [-fig2] [-fig3] [-tables] [-summary]
//
// Without selector flags everything is produced. -subjects defaults
// to the paper's five; pass "all" (or an explicit list) to include
// the grammar-zoo subjects urlp, sexpr, httpreq and dotg in the
// matrix — the 11-subject run of EXPERIMENTS.md §8. -scale multiplies
// the execution budgets (1.0 ≈ one minute; the paper ran 48 hours per
// tool and subject, so expect shape, not absolute numbers). -workers
// runs the pFuzzer campaigns on that many parallel executors; keep it
// at 1 to reproduce the deterministic paper numbers.
//
// -parallel n runs the whole matrix — every subject, tool and
// repetition — as a fleet of n concurrently advancing campaigns over
// one shared worker pool (internal/campaign), with a live progress
// line on stderr. Unlike -workers it changes nothing about the
// results: serial campaigns are slice-invariant under fleet
// multiplexing, so the parallel matrix is bit-identical to the serial
// one, just faster on multicore hosts.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pfuzzer/internal/core"
	"pfuzzer/internal/eval"
	"pfuzzer/internal/registry"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1.0, "multiply execution budgets")
		seed     = flag.Int64("seed", 1, "base RNG seed")
		runs     = flag.Int("runs", 3, "repetitions per campaign; best run reported")
		workers  = flag.Int("workers", 1, "parallel executors per pFuzzer campaign")
		cache    = flag.Bool("cache", true, "pFuzzer execution cache (identical numbers either way; changes wall-clock and the hit-rate column only)")
		parallel = flag.Int("parallel", 1, "campaigns advanced concurrently (fleet mode; results identical to serial)")
		mineEx   = flag.Int("mine-execs", 0, "pFuzzer+Mine extra mining executions (0 = pFuzzer budget / 4)")
		subjects = flag.String("subjects", "ini,csv,cjson,tinyc,mjs", `comma-separated subjects, or "all" for every registered subject`)
		outDir   = flag.String("out", "", "directory for CSV results (optional)")
		table1   = flag.Bool("table1", false, "print Table 1 only")
		fig2     = flag.Bool("fig2", false, "print Figure 2 only")
		fig3     = flag.Bool("fig3", false, "print Figure 3 only")
		tables   = flag.Bool("tables", false, "print Tables 2-4 only")
		summary  = flag.Bool("summary", false, "print the §5.3 summary only")
	)
	flag.Parse()

	all := !*table1 && !*fig2 && !*fig3 && !*tables && !*summary

	var entries []registry.Entry
	if strings.TrimSpace(*subjects) == "all" {
		entries = registry.All()
	} else {
		for _, name := range strings.Split(*subjects, ",") {
			e, ok := registry.Get(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "evaluate: unknown subject %q (have %s or \"all\")\n",
					name, strings.Join(registry.Names(), ", "))
				os.Exit(2)
			}
			entries = append(entries, e)
		}
	}

	if all || *table1 {
		fmt.Println(eval.Table1(entries))
	}
	if all || *tables {
		for _, e := range entries {
			switch e.Name {
			case "cjson":
				fmt.Println(eval.TokenTable("Table 2. json tokens per length.", e.Inventory))
			case "tinyc":
				fmt.Println(eval.TokenTable("Table 3. tinyC tokens per length.", e.Inventory))
			case "mjs":
				fmt.Println(eval.TokenTable("Table 4. mjs tokens per length.", e.Inventory))
			}
		}
	}

	needRuns := all || *fig2 || *fig3 || *summary
	if !needRuns {
		return
	}

	budget := eval.DefaultBudget().Scale(*scale)
	budget.Seed = *seed
	budget.Runs = *runs
	budget.Workers = *workers
	budget.Fleet = *parallel
	budget.MineExecs = *mineEx
	if !*cache {
		budget.Cache = core.CacheOff
	}
	mode := "serial schedule"
	if budget.Fleet > 1 {
		mode = fmt.Sprintf("fleet of %d", budget.Fleet)
	}
	// Progress chatter goes to stderr: stdout carries only the report
	// tables, so `evaluate -summary > results.txt` (and the -parallel
	// live progress line, which internal/eval already sends to stderr)
	// stays pipeline-clean.
	fmt.Fprintf(os.Stderr, "Running campaigns (%s): pFuzzer=%d execs, AFL=%d execs, KLEE=%d execs, pFuzzer+Mine=+%d execs, %d run(s) each...\n\n",
		mode, budget.PFuzzerExecs, budget.AFLExecs, budget.KLEEExecs, budget.EffectiveMineExecs(), budget.Runs)

	results := eval.Matrix(entries, budget)

	if all || *fig2 {
		fmt.Println(eval.Figure2(results))
	}
	if all || *fig3 {
		fmt.Println(eval.Figure3(results))
	}
	if all || *summary {
		fmt.Println(eval.SummaryReport(results))
		fmt.Println(eval.ExecsReport(results))
	}

	if *outDir != "" {
		if err := writeCSV(filepath.Join(*outDir, "results.csv"), eval.CSV(results)); err != nil {
			fmt.Fprintf(os.Stderr, "evaluate: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "Wrote %s\n", filepath.Join(*outDir, "results.csv"))
	}
}

func writeCSV(path string, rows [][]string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}
