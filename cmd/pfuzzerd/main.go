// Command pfuzzerd is the fuzzing-as-a-service daemon: a long-running
// HTTP server multiplexing many tenant campaigns over one shared
// worker pool, with per-campaign durable corpora and per-tenant
// execution budgets (DESIGN.md §15).
//
// Usage:
//
//	pfuzzerd -root state/ [-addr 127.0.0.1:7997] [-fleet-workers 4] [-slice n]
//	         [-snap-every n] [-tenant-budget n] [-allow-shim path]...
//
// Trust model: the API has no authentication, so whoever can reach it
// controls the daemon. The listener therefore defaults to loopback;
// binding a non-loopback -addr hands campaign control to every
// network peer and must only be done on a trusted network. The
// submission's shim field is an argv the daemon executes, so it is
// rejected unless its binary is allowlisted with -allow-shim
// (repeatable, one binary path per flag) — with no -allow-shim flags,
// shim submissions are refused outright.
//
// API (JSON over HTTP):
//
//	POST /campaigns              submit: {"subject":"cjson","tenant":"acme","execs":200000,...}
//	GET  /campaigns              list all campaigns
//	GET  /campaigns/{id}         one campaign's status
//	POST /campaigns/{id}/cancel  stop a campaign at its next slice boundary
//	GET  /campaigns/{id}/events  live SSE event stream (valids, phases, cache)
//	GET  /metrics                Prometheus text metrics
//	GET  /healthz                liveness probe
//
// Every campaign journals its corpus under -root/<id>/ as it runs and
// snapshots its engine every -snap-every executions, so a daemon
// killed at any point — kill -9 included — restarts with the same
// -root and resumes every in-flight campaign from its last snapshot.
// Campaign engines are deterministic under their seed, and the
// journal deduplicates by input, so a resumed campaign's corpus
// converges to exactly what an uninterrupted run would have produced.
//
// SIGINT or SIGTERM shuts down gracefully: in-flight step slices
// finish, every live campaign cuts a final snapshot and closes its
// journal with its spec left running (the next start resumes it), and
// the HTTP listener drains. A second signal forces immediate exit
// through the same cleanup stack.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"pfuzzer/internal/daemon"
)

func main() {
	var (
		root         = flag.String("root", "", "state directory: one subdirectory per campaign (required)")
		addr         = flag.String("addr", "127.0.0.1:7997", "HTTP listen address; the API is unauthenticated, bind beyond loopback only on a trusted network")
		fleetWorkers = flag.Int("fleet-workers", 4, "fleet worker count: campaigns advanced concurrently")
		slice        = flag.Int("slice", 0, "per-step execution slice (0 = fleet default); smaller interleaves tenants more fairly")
		snapEvery    = flag.Int("snap-every", 10000, "default executions between journal snapshots (campaigns can override)")
		tenantBudget = flag.Int("tenant-budget", 0, "default total execution budget per tenant across its campaigns (0 = unlimited)")
		allowShims   []string
	)
	flag.Func("allow-shim", "shim binary `path` submissions may execute (repeatable; none = shim submissions rejected)", func(v string) error {
		allowShims = append(allowShims, v)
		return nil
	})
	flag.Parse()
	if *root == "" {
		fail("-root is required")
	}
	if flag.NArg() != 0 {
		fail("unexpected arguments")
	}

	trapSignals()

	srv, err := daemon.New(daemon.Config{
		Root: *root, Workers: *fleetWorkers, Slice: *slice,
		SnapEvery: *snapEvery, TenantBudget: *tenantBudget,
		AllowShims: allowShims,
	})
	if err != nil {
		fail("%v", err)
	}
	// LIFO: the HTTP listener (registered later) drains first, then
	// the daemon parks its campaigns.
	onExit(func() {
		if err := srv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "pfuzzerd: shutdown: %v\n", err)
		}
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	onExit(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close() //nolint:errcheck // the hard close is best-effort after a failed drain
		}
	})

	fmt.Fprintf(os.Stderr, "pfuzzerd: serving on %s, state in %s\n", ln.Addr(), *root)
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail("%v", err)
	}
	<-shutdownDone // Serve returned because a signal started the shutdown
}

// The cleanup stack, mirroring cmd/pfuzzer: every resource that must
// not be abandoned on any exit path registers here, and every exit
// runs the stack exactly once, LIFO.
var (
	cleanupMu   sync.Mutex
	cleanups    []func()
	cleanupDone bool

	// shutdownDone closes when a signal-initiated shutdown has
	// finished its cleanups, releasing main to exit.
	shutdownDone = make(chan struct{})
)

// onExit pushes a cleanup to run at process exit.
func onExit(f func()) {
	cleanupMu.Lock()
	defer cleanupMu.Unlock()
	cleanups = append(cleanups, f)
}

// runCleanups runs the stack LIFO, once.
func runCleanups() {
	cleanupMu.Lock()
	defer cleanupMu.Unlock()
	if cleanupDone {
		return
	}
	cleanupDone = true
	for i := len(cleanups) - 1; i >= 0; i-- {
		cleanups[i]()
	}
}

// exit is the single exit path: cleanups, then the status code.
func exit(code int) {
	runCleanups()
	os.Exit(code)
}

func fail(msg string, args ...any) {
	fmt.Fprintf(os.Stderr, "pfuzzerd: "+msg+"\n", args...)
	exit(2)
}

// trapSignals installs the graceful-shutdown handler: the first
// SIGINT/SIGTERM runs the cleanup stack (HTTP drain, final snapshots,
// journal closes) and exits 0; a second signal during that drain
// forces an immediate exit.
func trapSignals() {
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "pfuzzerd: shutting down — parking campaigns at their next slice boundary (signal again to force exit)")
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "pfuzzerd: forced exit")
			os.Exit(130)
		}()
		runCleanups()
		close(shutdownDone)
		os.Exit(0)
	}()
}
