// Jsonfuzz fuzzes the cJSON subject and shows the paper's central
// claim on a real format: parser-directed fuzzing discovers the json
// keywords true, false and null through the parser's own strncmp
// calls — the tokens AFL misses entirely (paper §5.3, Table 2) — and
// fills the Table 2 token inventory as it goes.
//
// Run with: go run ./examples/jsonfuzz
package main

import (
	"fmt"
	"strings"

	"pfuzzer/internal/core"
	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/tokens"
)

func main() {
	prog := cjson.New()
	found := map[string]bool{}

	fmt.Println("Fuzzing the cJSON parser; watch the token inventory fill:")
	fuzzer := core.New(prog, core.Config{
		Seed:     1,
		MaxExecs: 60000,
		Events: func(ev core.Event) {
			if ev.Kind != core.EventValid {
				return
			}
			newTokens := []string{}
			for tok := range cjson.Tokenize(ev.Input) {
				if !found[tok] {
					found[tok] = true
					newTokens = append(newTokens, tok)
				}
			}
			if len(newTokens) > 0 {
				fmt.Printf("  exec %6d: %-24q new tokens: %s\n",
					ev.Execs, string(ev.Input), strings.Join(newTokens, " "))
			}
		},
	})
	fuzzer.Run()

	cov := tokens.Cover(cjson.Inventory, found)
	fmt.Println("\nToken coverage by length (paper Table 2 / Figure 3):")
	for _, n := range cjson.Inventory.Lengths() {
		fmt.Printf("  length %d: %d/%d\n", n, cov.FoundLen(n), cjson.Inventory.CountLen(n))
	}
	if missing := cov.Missing(); len(missing) > 0 {
		fmt.Printf("  missing: %s\n", strings.Join(missing, " "))
	} else {
		fmt.Println("  all tokens covered — including the keywords AFL cannot guess.")
	}
}
