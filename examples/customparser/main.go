// Customparser shows how to bring your own parser: write it against
// the instrumentation runtime (trace.Tracer for input access and
// comparisons, Block for coverage, StrEq for keyword matching) and
// pFuzzer will synthesize valid inputs for it — here, a small network
// "wire command" protocol with keyword commands and decimal
// arguments:
//
//	command := ("GET" | "SET" | "DEL" | "PING") ' ' key [' ' number] '\n'
//	key     := letter+
//
// Run with: go run ./examples/customparser
package main

import (
	"fmt"

	"pfuzzer/internal/core"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/taint"
	"pfuzzer/internal/trace"
)

// Block IDs for the wire-command parser.
const (
	blkStart = iota
	blkGet
	blkSet
	blkDel
	blkPing
	blkSpace
	blkKey
	blkArg
	blkEnd
	blkReject
	numBlocks
)

// wireProto is the custom subject: it implements subject.Program.
type wireProto struct{}

func (wireProto) Name() string { return "wire" }
func (wireProto) Blocks() int  { return numBlocks }

func (wireProto) Run(t *trace.Tracer) int {
	p := &parser{t: t}
	t.Block(blkStart)
	if !p.command() {
		return subject.ExitReject
	}
	return subject.ExitOK
}

type parser struct {
	t   *trace.Tracer
	pos int
}

// word reads letters into a tainted string for keyword matching.
func (p *parser) word() taint.String {
	var w taint.String
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			return w
		}
		if !p.t.CharRange(c, 'A', 'Z') && !p.t.CharRange(c, 'a', 'z') {
			return w
		}
		w = w.Append(c)
		p.pos++
	}
}

func (p *parser) command() bool {
	verb := p.word()
	needArg := false
	switch {
	case p.t.StrEq(verb, "GET"):
		p.t.Block(blkGet)
	case p.t.StrEq(verb, "DEL"):
		p.t.Block(blkDel)
	case p.t.StrEq(verb, "SET"):
		p.t.Block(blkSet)
		needArg = true
	case p.t.StrEq(verb, "PING"):
		p.t.Block(blkPing)
		return p.newline() // PING takes no key
	default:
		p.t.Block(blkReject)
		return false
	}
	if !p.space() {
		return false
	}
	if key := p.word(); len(key) == 0 {
		p.t.Block(blkReject)
		return false
	}
	p.t.Block(blkKey)
	if needArg {
		if !p.space() {
			return false
		}
		if !p.number() {
			return false
		}
		p.t.Block(blkArg)
	}
	return p.newline()
}

func (p *parser) space() bool {
	c, ok := p.t.At(p.pos)
	if !ok || !p.t.CharEq(c, ' ') {
		p.t.Block(blkReject)
		return false
	}
	p.t.Block(blkSpace)
	p.pos++
	return true
}

func (p *parser) number() bool {
	n := 0
	for {
		c, ok := p.t.At(p.pos)
		if !ok || !p.t.CharRange(c, '0', '9') {
			break
		}
		n++
		p.pos++
	}
	if n == 0 {
		p.t.Block(blkReject)
		return false
	}
	return true
}

func (p *parser) newline() bool {
	c, ok := p.t.At(p.pos)
	if !ok || !p.t.CharEq(c, '\n') {
		p.t.Block(blkReject)
		return false
	}
	p.pos++
	if p.pos != p.t.Len() {
		p.t.Block(blkReject)
		return false // trailing garbage
	}
	p.t.Block(blkEnd)
	return true
}

func main() {
	fmt.Println("Fuzzing a custom wire protocol — no grammar, no seeds:")
	fuzzer := core.New(wireProto{}, core.Config{
		Seed:     7,
		MaxExecs: 50000,
		Events: func(ev core.Event) {
			if ev.Kind == core.EventValid {
				fmt.Printf("  exec %6d: %q\n", ev.Execs, ev.Input)
			}
		},
	})
	res := fuzzer.Run()
	fmt.Printf("\n%d valid commands in %d executions; coverage %d/%d blocks.\n",
		len(res.Valids), res.Execs, len(res.Coverage), numBlocks)
	fmt.Println("The GET/SET/DEL/PING verbs came from the parser's own strcmp calls.")
}
