// Minegrammar runs the tool chain the paper proposes as future work
// (§7.4): parser-directed fuzzing explores the input language
// shallowly but validly; a grammar miner generalizes the valid inputs
// into a token-level grammar; and the mined grammar generates longer,
// more repetitive inputs than the fuzzer would reach on its own.
//
// Run with: go run ./examples/minegrammar
package main

import (
	"fmt"
	"math/rand"

	"pfuzzer/internal/core"
	"pfuzzer/internal/mine"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/tinyc"
	"pfuzzer/internal/trace"
)

func main() {
	// Phase 1: parser-directed fuzzing produces the seed corpus.
	fmt.Println("Phase 1: fuzzing Tiny-C for a corpus of valid inputs...")
	res := core.New(tinyc.New(), core.Config{Seed: 1, MaxExecs: 60000}).Run()
	longest := 0
	for _, v := range res.Valids {
		fmt.Printf("  %q\n", v.Input)
		if len(v.Input) > longest {
			longest = len(v.Input)
		}
	}

	// Phase 2: mine a token-level grammar from the corpus.
	g := mine.Mine(res.ValidInputs(), mine.SimpleLexer([]string{"if", "do", "else", "while"}))
	s := g.Stats()
	fmt.Printf("\nPhase 2: mined grammar: %d token classes, %d spellings, %d bigrams\n",
		s.Classes, s.Spellings, s.Bigrams)
	for _, c := range g.Classes() {
		fmt.Printf("  %-12q may be followed by %v\n", c, g.Follows(c))
	}

	// Phase 3: generate longer inputs from the mined grammar and
	// validate them against the parser.
	fmt.Println("\nPhase 3: generating longer inputs from the mined grammar:")
	rng := rand.New(rand.NewSource(2))
	accepted, total, longer := 0, 0, 0
	var samples [][]byte
	for i := 0; i < 500; i++ {
		gen := g.Generate(rng, 30)
		if len(gen) == 0 {
			continue
		}
		total++
		if len(gen) > longest {
			longer++
		}
		rec := subject.Execute(tinyc.New(), gen, trace.Options{})
		if rec.Accepted() {
			accepted++
			if len(gen) > longest && len(samples) < 5 {
				samples = append(samples, gen)
			}
		}
	}
	for _, s := range samples {
		fmt.Printf("  valid and longer than the corpus: %q\n", s)
	}
	fmt.Printf("\n%d/%d generated inputs valid; %d longer than anything the fuzzer emitted (max %d bytes).\n",
		accepted, total, longer, longest)
	fmt.Println("A regular (bigram) approximation cannot balance brackets — the gap full")
	fmt.Println("grammar mining (AutoGram) closes, as §7.4 of the paper proposes.")
}
