// Quickstart reproduces the paper's §2 walkthrough: given nothing but
// an instrumented arithmetic-expression parser (the mystery program
// P), parser-directed fuzzing synthesizes valid inputs like "1",
// "+1", "1+1" and "(2-94)" character by character, by satisfying the
// comparisons the parser makes before rejecting each attempt.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"pfuzzer/internal/core"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/trace"
)

func main() {
	prog := expr.New()

	// First, watch what the fuzzer sees: run the parser on "A" and
	// print the comparisons made before rejection (paper Figure 1).
	rec := subject.Execute(prog, []byte("A"), trace.Full())
	fmt.Println(`What the parser compares 'A' against before rejecting it:`)
	for _, c := range rec.Comparisons {
		fmt.Printf("  index %d: %q compared against %q (%s)\n",
			c.Index, c.Actual, c.Expected, c.Kind)
	}
	fmt.Println()

	// Now let the fuzzer use those comparisons to build valid inputs.
	fmt.Println("Valid inputs, synthesized from scratch:")
	fuzzer := core.New(prog, core.Config{
		Seed:      2019, // the year of the paper
		MaxExecs:  20000,
		MaxValids: 12,
		Events: func(ev core.Event) {
			if ev.Kind == core.EventValid {
				fmt.Printf("  after %5d executions: %q\n", ev.Execs, ev.Input)
			}
		},
	})
	res := fuzzer.Run()

	fmt.Printf("\n%d valid inputs in %d executions; %d/%d blocks covered.\n",
		len(res.Valids), res.Execs, len(res.Coverage), prog.Blocks())
	fmt.Println("Every input above was accepted by the parser — by construction.")
}
