// Tinycfuzz fuzzes the Tiny-C subject and focuses on the paper's
// keyword challenge (§5.3): generating "while" by random choice from
// letters alone has odds of 1 in 26^5 ≈ 11 million, but the parser's
// own string comparisons hand the fuzzer the keyword directly. The
// example also contrasts pFuzzer with the AFL-style baseline at an
// equal execution budget.
//
// Run with: go run ./examples/tinycfuzz
package main

import (
	"fmt"
	"sort"
	"strings"

	"pfuzzer/internal/afl"
	"pfuzzer/internal/core"
	"pfuzzer/internal/subjects/tinyc"
)

const budget = 200000

func main() {
	fmt.Printf("Fuzzing Tiny-C with pFuzzer and the AFL baseline, %d execs each...\n\n", budget)

	pfValids := [][]byte{}
	pf := core.New(tinyc.New(), core.Config{
		Seed:     1,
		MaxExecs: budget,
		Events: func(ev core.Event) {
			if ev.Kind == core.EventValid {
				pfValids = append(pfValids, append([]byte{}, ev.Input...))
			}
		},
	})
	pf.Run()

	aflRes := afl.New(tinyc.New(), afl.Config{Seed: 1, MaxExecs: budget}).Run()

	show("pFuzzer", pfValids)
	show("AFL    ", aflRes.ValidInputs())
}

func show(name string, valids [][]byte) {
	found := map[string]bool{}
	for _, v := range valids {
		for tok := range tinyc.Tokenize(v) {
			found[tok] = true
		}
	}
	var keywords, short []string
	for tok := range found {
		if len(tok) > 1 && tok != "identifier" && tok != "number" {
			keywords = append(keywords, tok)
		} else {
			short = append(short, tok)
		}
	}
	sort.Strings(keywords)
	sort.Strings(short)
	fmt.Printf("%s: %3d valid inputs; keywords found: [%s]\n",
		name, len(valids), strings.Join(keywords, " "))
	fmt.Printf("         short tokens: %s\n", strings.Join(short, " "))
	for i, v := range valids {
		if i >= 5 {
			break
		}
		fmt.Printf("         e.g. %q\n", v)
	}
	fmt.Println()
}
