// Benchmarks regenerating the paper's tables and figures (see the
// experiment index in DESIGN.md). Campaign benchmarks use reduced
// execution budgets so `go test -bench=.` completes in minutes; run
// cmd/evaluate for paper-scale campaigns. Custom metrics carry the
// reproduced quantities: coverage_pct (Figure 2), tokens_found /
// short_pct / long_pct (Figure 3 and the §5.3 aggregates).
package pfuzzer_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"pfuzzer/internal/core"
	"pfuzzer/internal/dyck"
	"pfuzzer/internal/eval"
	"pfuzzer/internal/registry"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

// benchInputs is one representative valid input per subject, used to
// measure parse+execute throughput (Table 1's subjects as workloads).
var benchInputs = map[string]string{
	"ini":   "[section]\nkey = value\n; comment\n",
	"csv":   "a,b,\"c,d\"\ne,f,g\n",
	"cjson": `{"k":[1,2.5,true,false,null,"s"]}`,
	"tinyc": "{a=0;while(a<10)a=a+1;if(a<5){b=1;}else{b=2;}}",
	"mjs":   "var n = 0; while (n < 10) { n = n + 1; } if (n === 10) { n = Math.floor(n / 3); }",
}

// BenchmarkTable1_Subjects measures each subject's instrumented
// parse(+execute) throughput on a representative valid input.
func BenchmarkTable1_Subjects(b *testing.B) {
	for _, e := range registry.Paper() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			prog := e.New()
			input := []byte(benchInputs[e.Name])
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				rec := subject.Execute(prog, input, trace.Full())
				if !rec.Accepted() {
					b.Fatalf("benchmark input rejected by %s", e.Name)
				}
			}
		})
	}
}

// benchBudget is the reduced per-iteration campaign budget.
var benchBudget = eval.Budget{
	PFuzzerExecs: 4000,
	AFLExecs:     40000,
	KLEEExecs:    4000,
	Runs:         1,
	Seed:         1,
}

// BenchmarkFigure2_Coverage reproduces Figure 2: branch coverage of
// the valid inputs per subject and tool, reported as coverage_pct.
func BenchmarkFigure2_Coverage(b *testing.B) {
	for _, e := range registry.Paper() {
		for _, tool := range eval.Tools {
			e, tool := e, tool
			b.Run(e.Name+"/"+string(tool), func(b *testing.B) {
				var last eval.SubjectResult
				for i := 0; i < b.N; i++ {
					last = eval.Run(e, tool, benchBudget)
				}
				b.ReportMetric(last.CoveragePct, "coverage_pct")
				b.ReportMetric(float64(len(last.Valids)), "valids")
			})
		}
	}
}

// BenchmarkFigure3_TokenCoverage reproduces Figure 3: inventory
// tokens found in the valid inputs, split at token length 3.
func BenchmarkFigure3_TokenCoverage(b *testing.B) {
	for _, e := range registry.Paper() {
		for _, tool := range eval.Tools {
			e, tool := e, tool
			b.Run(e.Name+"/"+string(tool), func(b *testing.B) {
				var last eval.SubjectResult
				for i := 0; i < b.N; i++ {
					last = eval.Run(e, tool, benchBudget)
				}
				sf, st, lf, lt := last.TokenCov.Split(3)
				b.ReportMetric(float64(last.TokenCov.FoundCount()), "tokens_found")
				b.ReportMetric(tokens.Percent(sf, st), "short_pct")
				b.ReportMetric(tokens.Percent(lf, lt), "long_pct")
			})
		}
	}
}

// tokenTableBench measures token extraction over a subject's corpus
// and asserts the inventory matches the paper's per-length counts.
func tokenTableBench(b *testing.B, name string, counts map[int]int, corpus []string) {
	e, ok := registry.Get(name)
	if !ok {
		b.Fatalf("unknown subject %s", name)
	}
	for n, want := range counts {
		if got := e.Inventory.CountLen(n); got != want {
			b.Fatalf("%s inventory length %d: %d tokens, paper says %d", name, n, got, want)
		}
	}
	for i := 0; i < b.N; i++ {
		found := map[string]bool{}
		for _, in := range corpus {
			for tok := range e.Tokenize([]byte(in)) {
				found[tok] = true
			}
		}
		cov := tokens.Cover(e.Inventory, found)
		if cov.FoundCount() != e.Inventory.Count() {
			b.Fatalf("%s corpus covers %d/%d tokens", name, cov.FoundCount(), e.Inventory.Count())
		}
	}
}

// BenchmarkTable2_JSONTokens checks and measures the Table 2
// inventory (8/1/2/1 tokens at lengths 1/2/4/5).
func BenchmarkTable2_JSONTokens(b *testing.B) {
	tokenTableBench(b, "cjson",
		map[int]int{1: 8, 2: 1, 4: 2, 5: 1},
		[]string{`{"a":[-1,2],"b":true}`, `false`, `null`, `"s"`, `3`})
}

// BenchmarkTable3_TinyCTokens checks and measures the Table 3
// inventory (11/2/1/1 tokens at lengths 1/2/4/5).
func BenchmarkTable3_TinyCTokens(b *testing.B) {
	tokenTableBench(b, "tinyc",
		map[int]int{1: 11, 2: 2, 4: 1, 5: 1},
		[]string{"{a=1;}", "if(a<2)b=a+3;else b=a-1;", "do;while(0);", "(9);"})
}

// BenchmarkTable4_MJSTokens checks and measures the Table 4 inventory
// (27/24/13/10/9/7/3/3/2/1 tokens at lengths 1..10).
func BenchmarkTable4_MJSTokens(b *testing.B) {
	tokenTableBench(b, "mjs",
		map[int]int{1: 27, 2: 24, 3: 13, 4: 10, 5: 9, 6: 7, 7: 3, 8: 3, 9: 2, 10: 1},
		[]string{
			"x = {a: 1}; y = x.a + 2 - 3 * 4 / 5 % 6; z = [7]; y ? !z : ~0; 'q';",
			"a < b; a > c; a = 1; a & 2; a | 3; a ^ 4; q.r; (f)(g, h); j[0];",
			"a == b; a != c; a <= d; a >= e; a += 1; a -= 2; a *= 3; a /= 4;",
			"a %= 5; a &= 6; a |= 7; a ^= 8; a << 1; a >> 2; a && b; a || c;",
			"a++; a--; if (x) ; in2 = 'y' in q; do ; while (0); // line\n/* blk */;",
			"a === b; a !== c; a <<= 1; a >>= 2; a >>> 3; a >>>= 4;",
			"for (;;) break; let l = NaN; new F(); try { throw 1; } catch (e) {} var v;",
			"Math.min(1, 2); Math.max(3, 4); Math.floor(5.5); JSON.parse('1');",
			"true; null; void 0; with (o) ; else2 = 0; if (1) ; else ; this; ",
			"switch (x) { case 1: break; default: continue; }",
			"false; while (0) ; const c = 1; print('p'); JSON.stringify(2);",
			"return; delete o.p; typeof t; Object.keys({}); String(1); Number('2');",
			"function f() { debugger; } 'str'.indexOf('t'); undefined; x instanceof F;",
			"finally2 = 0; try {} finally {}",
		})
}

// BenchmarkSummary_TokenAggregates reproduces the §5.3 headline: the
// pooled short/long token coverage per tool across all subjects.
func BenchmarkSummary_TokenAggregates(b *testing.B) {
	entries := registry.Paper()
	var summaries []eval.Summary
	for i := 0; i < b.N; i++ {
		summaries = eval.Summarize(eval.Matrix(entries, benchBudget))
	}
	for _, s := range summaries {
		b.ReportMetric(s.ShortPct(), string(s.Tool)+"_short_pct")
		b.ReportMetric(s.LongPct(), string(s.Tool)+"_long_pct")
	}
}

// BenchmarkDyck_ClosingProbability reproduces the §3 footnote: the
// simulated probability of randomly closing a 100-step bracket walk
// against the closed form 1/(n+1) ≈ 1%.
func BenchmarkDyck_ClosingProbability(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var p float64
	for i := 0; i < b.N; i++ {
		p = dyck.SimulateClosing(100, 20000, rng)
	}
	b.ReportMetric(p*100, "simulated_pct")
	b.ReportMetric(dyck.ClosingProbability(100)*100, "formula_pct")
}

// ablations pairs each DESIGN.md ablation with its configuration.
var ablations = []struct {
	name string
	cfg  core.Config
}{
	{"Full", core.Config{}},
	{"NoLengthTerm", core.Config{NoLengthTerm: true}},
	{"NoReplacementBonus", core.Config{NoReplacementBonus: true}},
	{"NoStackTerm", core.Config{NoStackTerm: true}},
	{"NoParentsTerm", core.Config{NoParentsTerm: true}},
	{"NoPathNovelty", core.Config{NoPathNovelty: true}},
	{"CoverageOnlyDFS", core.Config{CoverageOnly: true}},
	{"BFS", core.Config{BFS: true}},
}

// BenchmarkAblation_Heuristic compares heuristic variants (§3
// design choices) on tinyC at a fixed budget: valids and coverage
// show what each term buys.
func BenchmarkAblation_Heuristic(b *testing.B) {
	e, _ := registry.Get("tinyc")
	for _, a := range ablations {
		a := a
		b.Run(a.name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				cfg := a.cfg
				cfg.Seed = 1
				cfg.MaxExecs = 8000
				res = core.New(e.New(), cfg).Run()
			}
			prog := e.New()
			b.ReportMetric(float64(len(res.Valids)), "valids")
			b.ReportMetric(tokens.Percent(len(res.Coverage), prog.Blocks()), "coverage_pct")
		})
	}
}

// BenchmarkAblation_Paren runs the same ablations on the bracket
// language, where closing behaviour (§3.2) dominates.
func BenchmarkAblation_Paren(b *testing.B) {
	e, _ := registry.Get("paren")
	for _, a := range ablations {
		a := a
		b.Run(a.name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				cfg := a.cfg
				cfg.Seed = 1
				cfg.MaxExecs = 8000
				res = core.New(e.New(), cfg).Run()
			}
			b.ReportMetric(float64(len(res.Valids)), "valids")
		})
	}
}

// BenchmarkCampaignParallel tracks the concurrent campaign engine's
// scaling on the cjson subject: executions per second at 1 worker
// (the plain serial loop), 4 workers, and GOMAXPROCS workers. The
// speedup over workers=1 is the perf-trajectory number the
// speculative pipeline is accountable for (DESIGN.md §11); the full
// per-subject curve lives in BENCH_pr6.json (cmd/bench
// -workers-sweep). Every worker count emits the identical corpus.
func BenchmarkCampaignParallel(b *testing.B) {
	e, ok := registry.Get("cjson")
	if !ok {
		b.Fatal("cjson subject not registered")
	}
	workerCounts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		workerCounts = append(workerCounts, p)
	}
	const campaignExecs = 20000
	for _, w := range workerCounts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			execs, elapsed := 0, time.Duration(0)
			for i := 0; i < b.N; i++ {
				res := core.New(e.New(), core.Config{
					Seed:     1,
					MaxExecs: campaignExecs,
					Workers:  w,
				}).Run()
				execs += res.Execs
				elapsed += res.Elapsed
			}
			b.ReportMetric(float64(execs)/elapsed.Seconds(), "execs/s")
		})
	}
}

// BenchmarkHybridCampaign tracks the §7.4 grammar-feedback campaign
// (core.Config.MinePhase) against the pure parser-directed campaign
// on tinyc: same seed and execution budget, reporting valid-input
// counts and the longest emitted valid input. The hybrid's headline
// quantity is max_valid_len — deep, recursive inputs the pure
// campaign's last-character substitution does not reach.
func BenchmarkHybridCampaign(b *testing.B) {
	e, ok := registry.Get("tinyc")
	if !ok {
		b.Fatal("tinyc subject not registered")
	}
	const campaignExecs = 20000
	for _, mined := range []bool{false, true} {
		name := "pure"
		if mined {
			name = "hybrid"
		}
		b.Run(name, func(b *testing.B) {
			var res *core.Result
			execs, elapsed := 0, time.Duration(0)
			for i := 0; i < b.N; i++ {
				res = core.New(e.New(), core.Config{
					Seed:      1,
					MaxExecs:  campaignExecs,
					MinePhase: mined,
					MineLexer: e.Lexer,
				}).Run()
				execs += res.Execs
				elapsed += res.Elapsed
			}
			maxLen := 0
			for _, v := range res.Valids {
				if len(v.Input) > maxLen {
					maxLen = len(v.Input)
				}
			}
			b.ReportMetric(float64(execs)/elapsed.Seconds(), "execs/s")
			b.ReportMetric(float64(len(res.Valids)), "valids")
			b.ReportMetric(float64(maxLen), "max_valid_len")
		})
	}
}

// BenchmarkExecsPerValid measures pFuzzer's defining efficiency
// claim: valid inputs per execution (the paper: orders of magnitude
// fewer tests than AFL).
func BenchmarkExecsPerValid(b *testing.B) {
	for _, name := range []string{"expr", "cjson", "tinyc"} {
		e, _ := registry.Get(name)
		b.Run(name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.New(e.New(), core.Config{Seed: 1, MaxExecs: 4000}).Run()
			}
			if len(res.Valids) > 0 {
				b.ReportMetric(float64(res.Execs)/float64(len(res.Valids)), "execs_per_valid")
			}
		})
	}
}
