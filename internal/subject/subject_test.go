package subject_test

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/trace"
)

func TestExecuteSealsRecord(t *testing.T) {
	rec := subject.Execute(expr.New(), []byte("1+2"), trace.Full())
	if !rec.Accepted() {
		t.Fatal("1+2 rejected")
	}
	if string(rec.Input) != "1+2" {
		t.Errorf("Input = %q", rec.Input)
	}
	if len(rec.BlockFirst) == 0 {
		t.Error("no blocks recorded")
	}
	if len(rec.Comparisons) == 0 {
		t.Error("no comparisons recorded")
	}
}

func TestExecuteRespectsOptions(t *testing.T) {
	rec := subject.Execute(expr.New(), []byte("1+2"), trace.Options{})
	if len(rec.Comparisons) != 0 || len(rec.Blocks) != 0 {
		t.Error("events recorded with everything disabled")
	}
	rec = subject.Execute(expr.New(), []byte("1+2"), trace.Options{Edges: true})
	nonzero := 0
	for _, b := range rec.Edges {
		if b != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("edge map empty with Edges enabled")
	}
}
