// Package subject defines the interface between the fuzzers and the
// programs under test. A Program is an instrumented parser (paper
// Table 1 lists the originals) that reads its input through a
// trace.Tracer and reports acceptance through its exit status, exactly
// like the paper's subjects, which were set up to "read from standard
// input and to abort parsing with a non-zero exit code on the first
// error" (§5.1).
package subject

import "pfuzzer/internal/trace"

// Exit statuses shared by all subjects.
const (
	ExitOK     = 0 // input accepted by the parser
	ExitReject = 1 // parse error
)

// Harness-reported exit statuses. Subjects themselves only ever
// return ExitOK or ExitReject; execution harnesses that drive a
// subject they cannot fully observe — the out-of-process shim
// (internal/shim) — report these when an execution's real verdict was
// lost. All are non-zero, so every engine treats them as rejections
// and the campaign continues; harnesses must pair them with
// trace.Tracer.MarkUndecided so the substitute verdict is never
// memoised as a deciding prefix.
const (
	ExitCrash       = 3 // the child process died mid-execution
	ExitHang        = 4 // the execution overran its deadline and was killed
	ExitUnavailable = 5 // no child could be obtained (breaker open or spawn failure)
)

// Program is one instrumented subject.
type Program interface {
	// Name returns the subject's short name (e.g. "cjson").
	Name() string
	// Run parses (and, for tinyC and mjs, executes) the tracer's
	// input, reporting instrumentation events through t. It returns
	// ExitOK if the input was accepted.
	Run(t *trace.Tracer) int
	// Blocks returns the total number of instrumented basic blocks,
	// the denominator for coverage percentages (Figure 2).
	Blocks() int
}

// Execute runs p once on input with the given tracing options and
// returns the sealed record.
func Execute(p Program, input []byte, opts trace.Options) *trace.Record {
	t := trace.New(input, opts)
	exit := p.Run(t)
	return t.Finish(exit)
}

// ExecuteInto runs p once on input, recording into sink's reusable
// buffers instead of allocating fresh ones. The returned record
// aliases the sink and is valid only until the sink's next use; it is
// the hot-path variant the campaign engine's executors run, one sink
// per worker.
func ExecuteInto(p Program, input []byte, opts trace.Options, sink *trace.Sink) *trace.Record {
	t := sink.New(input, opts)
	exit := p.Run(t)
	return t.Finish(exit)
}
