// Package walltime flags wall-clock reads — time.Now, time.Since,
// time.Sleep — in functions reachable from a package's exported entry
// points, which for the engine packages are the step/score/emit paths.
// Campaign results must be a pure function of (subject, seed, budget);
// a wall-clock read on a result path is how elapsed-time heuristics
// and timing-dependent batching silently break bit-reproducibility.
//
// Timing that is genuinely diagnostic — Result.ExecElapsed, the EWMA
// batch auto-tuner — lives in declared sinks: functions allowlisted by
// the driver (New's sinks argument, full types.Func names). Everything
// else should route through the stepclock package, whose whole job is
// campaign timekeeping.
package walltime

import (
	"go/ast"
	"go/types"

	"pfuzzer/internal/analysis/pdlint"
)

// flagged lists the time package functions that read or wait on the
// wall clock.
var flagged = map[string]bool{"Now": true, "Since": true, "Sleep": true}

// New returns the walltime analyzer with the given declared sinks:
// fully qualified function names (types.Func.FullName, e.g.
// "(*pfuzzer/internal/core.Fuzzer).execFacts") whose wall-clock reads
// are accepted as diagnostics-only.
func New(sinks ...string) *pdlint.Analyzer {
	sinkSet := map[string]bool{}
	for _, s := range sinks {
		sinkSet[s] = true
	}
	return &pdlint.Analyzer{
		Name: "walltime",
		Doc: "flags time.Now/Since/Sleep reachable from exported entry points, " +
			"outside declared diagnostics sinks",
		Run: func(pass *pdlint.Pass) error { return run(pass, sinkSet) },
	}
}

func run(pass *pdlint.Pass, sinks map[string]bool) error {
	g := pdlint.BuildCallGraph(pass)
	var roots []*types.Func
	for _, fn := range g.Funcs() {
		if ast.IsExported(fn.Name()) || fn.Name() == "main" {
			roots = append(roots, fn)
		}
	}
	reachable := g.Reachable(roots)
	for _, fn := range g.Funcs() {
		if !reachable[fn] || sinks[fn.FullName()] {
			continue
		}
		decl := g.Decl(fn)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := pdlint.CalleeOf(pass.Info, call)
			if callee == nil || callee.Pkg() == nil ||
				callee.Pkg().Path() != "time" || !flagged[callee.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"calls time.%s on a path reachable from exported %s; campaign results "+
					"must not depend on the wall clock — use the stepclock package, or "+
					"declare %s a diagnostics sink in cmd/pdlint",
				callee.Name(), rootName(g, roots, fn), fn.FullName())
			return true
		})
	}
	return nil
}

// rootName names one exported root that reaches fn, for the message.
func rootName(g *pdlint.CallGraph, roots []*types.Func, fn *types.Func) string {
	for _, r := range roots {
		if g.Reachable([]*types.Func{r})[fn] {
			return r.Name()
		}
	}
	return "entry points"
}
