package walltime_test

import (
	"testing"

	"pfuzzer/internal/analysis/pdtest"
	"pfuzzer/internal/analysis/walltime"
)

func TestBad(t *testing.T) {
	pdtest.Run(t, walltime.New(), "testdata/bad")
}

// TestClean declares elapsed a sink, mirroring how cmd/pdlint
// allowlists the engine's diagnostics timers.
func TestClean(t *testing.T) {
	pdtest.Run(t, walltime.New(
		"pfuzzer/internal/analysis/walltime/testdata/clean.elapsed",
	), "testdata/clean")
}

// TestCleanWithoutSink proves the sink declaration is load-bearing:
// with no sinks, the same package has findings.
func TestCleanWithoutSink(t *testing.T) {
	_, findings := pdtest.Findings(t, walltime.New(), "testdata/clean")
	n := 0
	for _, f := range findings {
		if !f.Suppressed {
			n++
		}
	}
	if n == 0 {
		t.Fatal("expected findings in testdata/clean when elapsed is not a declared sink")
	}
}
