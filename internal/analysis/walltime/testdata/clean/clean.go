// Package clean exercises walltime's two escape hatches: declared
// sinks and unreachable diagnostics helpers.
package clean

import "time"

// elapsed is declared a diagnostics sink by the test driver, mirroring
// how cmd/pdlint allowlists Result.ExecElapsed's producer.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Run reaches elapsed, but elapsed is a sink.
func Run() time.Duration {
	return elapsed(time.Time{})
}

// debugDump is unexported and unreachable from any exported function,
// so its clock read cannot influence campaign results.
func debugDump() time.Duration {
	return time.Since(time.Time{})
}
