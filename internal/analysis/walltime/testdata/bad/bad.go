// Package bad exercises the walltime analyzer: wall-clock reads
// reachable from exported entry points.
package bad

import "time"

// Step reads the clock directly on an exported path.
func Step() time.Duration {
	start := time.Now() // want `calls time\.Now`
	work()
	return time.Since(start) // want `calls time\.Since`
}

// work is unexported but reachable from Step.
func work() {
	time.Sleep(time.Millisecond) // want `calls time\.Sleep`
}
