// Package pdtest is the pdlint analog of
// golang.org/x/tools/go/analysis/analysistest: it loads a testdata
// package, runs one analyzer (plus the directive checker that always
// rides along), and compares the unsuppressed findings against
// expectations written as trailing comments in the testdata itself:
//
//	for k := range m { // want `map range`
//
// Each `// want` comment holds one or more quoted regular expressions
// that must match findings on that line; findings without a matching
// want, and wants without a matching finding, fail the test. Findings
// suppressed by a justified //pdlint: directive are not matched — a
// clean-code package demonstrates both analyzer silence and working
// suppressions by containing no want comments at all.
package pdtest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pfuzzer/internal/analysis/pdlint"
)

// Findings loads the single package in dir and returns the analyzer's
// findings (suppressed ones included). It fails the test on load or
// type-check errors: testdata must compile.
func Findings(t *testing.T, a *pdlint.Analyzer, dir string) (*pdlint.Package, []pdlint.Finding) {
	t.Helper()
	pkgs, err := pdlint.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading %s: got %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]
	for _, e := range pkg.TypeErrors {
		t.Errorf("%s: type error: %v", dir, e)
	}
	if t.Failed() {
		t.FailNow()
	}
	return pkg, pdlint.Run(pkg, []*pdlint.Analyzer{a})
}

// Run checks the analyzer against the want comments in dir.
func Run(t *testing.T, a *pdlint.Analyzer, dir string) {
	t.Helper()
	pkg, findings := Findings(t, a, dir)
	wants := parseWants(t, pkg)

	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		if !consumeWant(wants, f) {
			t.Errorf("%s:%d: unexpected %s finding: %s", f.File, f.Line, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re.String())
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func consumeWant(wants []*want, f pdlint.Finding) bool {
	for _, w := range wants {
		if !w.hit && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// parseWants extracts the `// want "re" ...` expectations from the
// package's comments. The expectation applies to the comment's line.
func parseWants(t *testing.T, pkg *pdlint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, file := range pkg.Syntax {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parsePatterns(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, re := range res {
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parsePatterns parses a space-separated sequence of quoted or
// backquoted regexps.
func parsePatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		var quoted string
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			quoted, s = unq, s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			quoted, s = s[1:end+1], s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted pattern, got %q", s)
		}
		re, err := regexp.Compile(quoted)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
	}
	return out, nil
}
