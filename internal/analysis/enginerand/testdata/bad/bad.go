// Package bad exercises enginerand's flagged shapes: RNG draws that
// bypass the draw-counting source.
package bad

import "math/rand"

// Pick draws from the shared global RNG: nobody counts those draws.
func Pick(n int) int {
	return rand.Intn(n) // want `global math/rand RNG`
}

// NewRNG builds an engine RNG over an uncounted source.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `uncounted source` `not counted`
}

// Drain reads a source directly, bypassing any counting wrapper.
func Drain(src rand.Source) int64 {
	return src.Int63() // want `bypassing the countedSource draw counter`
}
