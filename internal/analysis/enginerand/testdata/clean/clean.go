// Package clean mirrors core's countedSource plumbing: the one RNG
// construction pattern enginerand accepts.
package clean

import "math/rand"

// countedSource mirrors the engine's draw-counting source: every draw
// increments the counter snapshot/resume replays.
type countedSource struct {
	src   rand.Source
	draws uint64
}

func newCounted(seed int64) *countedSource {
	return &countedSource{src: rand.NewSource(seed)}
}

func (c *countedSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countedSource) Seed(seed int64) {
	c.draws = 0
	c.src.Seed(seed)
}

// reseed exercises the assignment form of countedSource initialization.
func (c *countedSource) reseed(seed int64) {
	c.draws = 0
	c.src = rand.NewSource(seed)
}

// New threads the counted source into rand.New: the clean pattern.
func New(seed int64) *rand.Rand {
	return rand.New(newCounted(seed))
}
