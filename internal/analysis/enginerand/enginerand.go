// Package enginerand enforces the counted-RNG invariant behind
// snapshot/resume (DESIGN.md §8): every random draw a campaign makes
// must pass through the draw-counting source (core's countedSource),
// or a restored campaign fast-forwards to the wrong stream position
// and silently diverges from the original run.
//
// Flagged shapes:
//   - calls to math/rand package-level functions (the global RNG:
//     draws nobody counts, shared across goroutines);
//   - rand.New with a source that is not the counted source;
//   - rand.NewSource outside countedSource initialization;
//   - direct Int63/Uint64/Seed calls on a rand.Source value outside
//     the counted source's own methods (bypassing the counter).
//
// Threading a *rand.Rand built over the counted source — or passing
// one as a parameter, as the mining generator does — is always clean:
// the invariant is about construction, not use.
package enginerand

import (
	"go/ast"
	"go/types"

	"pfuzzer/internal/analysis/pdlint"
)

// countedSourceName is the canonical draw-counting source type. The
// analyzer recognizes it by name so its testdata (and a future second
// engine) can declare its own.
const countedSourceName = "countedSource"

// Analyzer is the enginerand check.
var Analyzer = &pdlint.Analyzer{
	Name: "enginerand",
	Doc: "flags math/rand global functions and RNG plumbing that bypasses the " +
		"draw-counting source the snapshot/resume invariant depends on",
	Run: run,
}

// globalFns are the math/rand package-level functions that draw from
// the shared global RNG.
var globalFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func run(pass *pdlint.Pass) error {
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call, stack)
			return true
		})
	}
	return nil
}

func checkCall(pass *pdlint.Pass, call *ast.CallExpr, stack []ast.Node) {
	callee := pdlint.CalleeOf(pass.Info, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	switch callee.Pkg().Path() {
	case "math/rand", "math/rand/v2":
	default:
		return
	}
	switch name := callee.Name(); {
	case globalFns[name] && callee.Type().(*types.Signature).Recv() == nil:
		pass.Reportf(call.Pos(),
			"rand.%s draws from the global math/rand RNG; campaign draws must go "+
				"through the draw-counting source (core's countedSource) so "+
				"snapshot/resume can replay the stream", name)
	case name == "New":
		if len(call.Args) == 1 && isCountedSource(pass.Info.TypeOf(call.Args[0])) {
			return
		}
		pass.Reportf(call.Pos(),
			"rand.New over an uncounted source; wrap it in the draw-counting "+
				"countedSource so snapshot/resume can replay the stream")
	case name == "NewSource":
		if initializesCountedSource(pass, stack) {
			return
		}
		pass.Reportf(call.Pos(),
			"rand.NewSource outside countedSource initialization; draws from this "+
				"source are not counted and break snapshot/resume")
	default:
		// Constructors like NewZipf take an explicit *rand.Rand, and
		// method calls on a threaded *rand.Rand are the clean pattern.
	}
	if callee.Type().(*types.Signature).Recv() != nil {
		checkSourceMethod(pass, call, callee, stack)
	}
}

// checkSourceMethod flags Int63/Uint64/Seed invoked directly on a
// rand.Source-typed value outside countedSource's own methods.
func checkSourceMethod(pass *pdlint.Pass, call *ast.CallExpr, callee *types.Func, stack []ast.Node) {
	recv := callee.Type().(*types.Signature).Recv()
	named, ok := recv.Type().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	p := named.Obj().Pkg().Path()
	if (p != "math/rand" && p != "math/rand/v2") ||
		(named.Obj().Name() != "Source" && named.Obj().Name() != "Source64") {
		return
	}
	if fn := enclosingFunc(pass, stack); fn != nil && isCountedSourceMethod(fn) {
		return
	}
	pass.Reportf(call.Pos(),
		"draws from a rand.Source directly, bypassing the countedSource draw "+
			"counter; snapshot/resume will replay the wrong stream position")
}

// initializesCountedSource reports whether the innermost enclosing
// expression places the call's result into a countedSource: a
// composite-literal field, or an assignment to a countedSource's src
// field.
func initializesCountedSource(pass *pdlint.Pass, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.KeyValueExpr:
			continue // the composite literal is one level up
		case *ast.CompositeLit:
			return isCountedSource(pass.Info.TypeOf(n))
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && isCountedSource(pass.Info.TypeOf(sel.X)) {
					return true
				}
			}
			return false
		case *ast.CallExpr:
			return false // an argument to some other call (e.g. rand.New)
		}
	}
	return false
}

// enclosingFunc returns the declared function the innermost node lives
// in, from the traversal stack.
func enclosingFunc(pass *pdlint.Pass, stack []ast.Node) *types.Func {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			return fn
		}
	}
	return nil
}

// isCountedSourceMethod reports whether fn is a method of the counted
// source type.
func isCountedSourceMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && isCountedSource(recv.Type())
}

// isCountedSource reports whether t is (a pointer to) the canonical
// counted source type.
func isCountedSource(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == countedSourceName
}
