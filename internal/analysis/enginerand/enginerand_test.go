package enginerand_test

import (
	"testing"

	"pfuzzer/internal/analysis/enginerand"
	"pfuzzer/internal/analysis/pdtest"
)

func TestBad(t *testing.T) {
	pdtest.Run(t, enginerand.Analyzer, "testdata/bad")
}

func TestClean(t *testing.T) {
	pdtest.Run(t, enginerand.Analyzer, "testdata/clean")
}
