// Package directives exercises the //pdlint: directive grammar: every
// malformed directive here must surface as a "directive" finding, and
// none of them may suppress the map-range finding they sit above.
package directives

// Malformed reuses one flagged loop shape under each broken directive.
func Malformed(m map[string]int) string {
	s := ""
	//pdlint:ordered
	for k := range m {
		s += k
	}
	//pdlint:ignore maprange
	for k := range m {
		s += k
	}
	//pdlint:frobnicate -- because
	for k := range m {
		s += k
	}
	//pdlint:ignore nosuch -- it sounded plausible
	for k := range m {
		s += k
	}
	//pdlint:ordered maprange -- ordered takes no list
	for k := range m {
		s += k
	}
	return s
}

// Justified is the one well-formed suppression: its finding must be
// recorded as suppressed, carrying the justification.
func Justified(m map[string]int) int {
	n := 0
	//pdlint:ordered -- commutative count; every visit order yields the same n
	for range m {
		n++
	}
	return n
}
