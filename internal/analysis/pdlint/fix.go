package pdlint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// ApplyFixes applies the first suggested fix of every unsuppressed
// finding that carries one and returns the rewritten contents, keyed
// by file name. Files without fixes are absent. Overlapping edits are
// an error — with the sort-keys rewrite being the only fix producer
// today, two findings never share a range.
func ApplyFixes(fset *token.FileSet, findings []Finding) (map[string][]byte, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	for _, f := range findings {
		if f.Suppressed || len(f.Fixes) == 0 {
			continue
		}
		for _, te := range f.Fixes[0].TextEdits {
			start := fset.Position(te.Pos)
			end := fset.Position(te.End)
			if start.Filename == "" || start.Filename != end.Filename {
				return nil, fmt.Errorf("%s: fix edit spans files", f.Analyzer)
			}
			perFile[start.Filename] = append(perFile[start.Filename],
				edit{start.Offset, end.Offset, te.NewText})
		}
	}
	out := map[string][]byte{}
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		// Identical edits collapse: every fixed finding in a file wants
		// the same `import "sort"` insertion.
		deduped := edits[:1]
		for _, e := range edits[1:] {
			prev := deduped[len(deduped)-1]
			if e.start == prev.start && e.end == prev.end && string(e.text) == string(prev.text) {
				continue
			}
			deduped = append(deduped, e)
		}
		edits = deduped
		for i := 1; i < len(edits); i++ {
			if edits[i].end > edits[i-1].start {
				return nil, fmt.Errorf("%s: overlapping fix edits", file)
			}
		}
		for _, e := range edits {
			if e.start < 0 || e.end > len(src) || e.start > e.end {
				return nil, fmt.Errorf("%s: fix edit out of range", file)
			}
			src = append(src[:e.start:e.start], append(e.text, src[e.end:]...)...)
		}
		out[file] = src
	}
	return out, nil
}
