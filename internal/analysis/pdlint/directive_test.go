package pdlint_test

import (
	"strings"
	"testing"

	"pfuzzer/internal/analysis/maprange"
	"pfuzzer/internal/analysis/pdlint"
)

// TestMalformedDirectivesAreFindings pins the directive contract: an
// unjustified or otherwise broken //pdlint: directive is itself a
// diagnostic, and it suppresses nothing.
func TestMalformedDirectivesAreFindings(t *testing.T) {
	pkgs, err := pdlint.Load("testdata/directives", ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	for _, e := range pkg.TypeErrors {
		t.Fatalf("testdata must type-check: %v", e)
	}

	findings := pdlint.Run(pkg, []*pdlint.Analyzer{maprange.Analyzer})

	var directive []pdlint.Finding
	var unsuppressed, suppressed []pdlint.Finding
	for _, f := range findings {
		switch {
		case f.Analyzer == pdlint.DirectiveAnalyzer:
			directive = append(directive, f)
		case f.Suppressed:
			suppressed = append(suppressed, f)
		default:
			unsuppressed = append(unsuppressed, f)
		}
	}

	wantMsgs := []string{
		"requires a justification",       // //pdlint:ordered
		"requires a justification",       // //pdlint:ignore maprange
		"unknown pdlint directive",       // //pdlint:frobnicate
		"unknown analyzer",               // //pdlint:ignore nosuch
		"ordered takes no analyzer list", // //pdlint:ordered maprange
	}
	if len(directive) != len(wantMsgs) {
		t.Fatalf("got %d directive findings, want %d: %+v", len(directive), len(wantMsgs), directive)
	}
	for i, want := range wantMsgs {
		if !strings.Contains(directive[i].Message, want) {
			t.Errorf("directive finding %d: %q does not mention %q", i, directive[i].Message, want)
		}
	}

	// All five loops under malformed directives stay unsuppressed.
	if len(unsuppressed) != 5 {
		t.Errorf("got %d unsuppressed maprange findings, want 5 (malformed directives must not suppress): %+v",
			len(unsuppressed), unsuppressed)
	}

	// The one justified directive suppresses and records why.
	if len(suppressed) != 1 {
		t.Fatalf("got %d suppressed findings, want 1: %+v", len(suppressed), suppressed)
	}
	if want := "commutative count"; !strings.Contains(suppressed[0].Justification, want) {
		t.Errorf("justification %q does not mention %q", suppressed[0].Justification, want)
	}
}
