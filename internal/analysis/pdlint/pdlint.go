// Package pdlint is the project's static-analysis framework: a small,
// dependency-free re-implementation of the go/analysis vocabulary
// (Analyzer, Pass, Diagnostic, SuggestedFix) plus the package loader,
// suppression-directive handling and call-graph helper the pFuzzer
// analyzers share.
//
// The framework exists because the determinism contract the engine's
// golden tests pin dynamically — Workers>1 bit-identical to serial,
// cache transparency, snapshot/resume exactness — is violated by a
// handful of *syntactic* shapes (map-range order, wall-clock reads in
// result paths, uncounted RNG draws, mixed atomic/plain access,
// untraced subject comparisons) that can be rejected at CI time,
// before any campaign runs. DESIGN.md §12 documents the contract as
// the analyzers enforce it.
//
// It is built on the standard library alone (go/ast, go/types,
// go/importer, `go list -export`) so the repository keeps its
// zero-dependency go.mod.
package pdlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check. Scoping — which packages a
// check applies to — is the driver's business (cmd/pdlint), not the
// analyzer's, so the same analyzer runs unchanged on its testdata.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //pdlint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description `cmd/pdlint -help` prints.
	Doc string
	// Run analyzes one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Report delivers one finding. Suppression directives are applied
	// by the runner after the analyzer returns.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, optionally carrying a machine-applicable
// fix.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	Fixes   []SuggestedFix
}

// A SuggestedFix is one self-contained rewrite that resolves the
// diagnostic; cmd/pdlint -fix applies the first fix of each finding.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source in [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// A Finding is one runner-level result: a diagnostic attributed to its
// analyzer and position, with suppression resolved.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	// Suppressed marks findings silenced by a justified //pdlint:
	// directive; they are kept (and shown under -json) so suppression
	// debt stays visible.
	Suppressed    bool   `json:"suppressed,omitempty"`
	Justification string `json:"justification,omitempty"`

	Fixes []SuggestedFix `json:"-"`
}

// DirectiveAnalyzer is the name findings about malformed //pdlint:
// directives are attributed to. It is a reserved name: directives
// cannot suppress directive findings.
const DirectiveAnalyzer = "directive"

// Run applies analyzers to one loaded package and returns its
// findings, sorted by position. Directives are honoured: a justified
// //pdlint:ignore (or //pdlint:ordered) on or directly above a finding
// marks it Suppressed; malformed directives become findings of the
// reserved "directive" analyzer. known lists additional analyzer names
// directives may legitimately reference — drivers that scope analyzers
// per package pass the full suite here so a suppression for an
// analyzer not running on this package still parses.
func Run(pkg *Package, analyzers []*Analyzer, known ...string) []Finding {
	knownSet := map[string]bool{"maprange": true} // the ordered alias target
	for _, a := range analyzers {
		knownSet[a.Name] = true
	}
	for _, n := range known {
		knownSet[n] = true
	}
	var out []Finding
	dirs := scanDirectives(pkg, knownSet, func(pos token.Pos, msg string) {
		p := pkg.Fset.Position(pos)
		out = append(out, Finding{
			Analyzer: DirectiveAnalyzer, Pos: p,
			File: p.Filename, Line: p.Line, Col: p.Column, Message: msg,
		})
	})
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Syntax,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			p := pkg.Fset.Position(d.Pos)
			f := Finding{
				Analyzer: name, Pos: p,
				File: p.Filename, Line: p.Line, Col: p.Column,
				Message: d.Message, Fixes: d.Fixes,
			}
			if j, ok := dirs.suppresses(name, p); ok {
				f.Suppressed = true
				f.Justification = j
			}
			out = append(out, f)
		}
		if err := a.Run(pass); err != nil {
			p := token.Position{Filename: pkg.PkgPath}
			out = append(out, Finding{
				Analyzer: name, Pos: p, File: pkg.PkgPath,
				Message: fmt.Sprintf("internal error: %v", err),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
