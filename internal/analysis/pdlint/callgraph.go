package pdlint

import (
	"go/ast"
	"go/types"
)

// CallGraph is a static, package-local call graph: edges are direct
// calls whose callee resolves statically (plain functions, methods on
// concrete receivers, qualified identifiers). Calls through interface
// values, function values and method values are not resolved — for
// the reachability questions the analyzers ask (is this helper on an
// engine step path? does this subject helper run under Run?) the
// static graph is the conservative-enough answer, and the repo's
// engine and subjects call their helpers directly.
//
// Calls made inside a function literal are attributed to the enclosing
// declared function: reachability is about code that executes on a
// path, not about closure identity.
type CallGraph struct {
	calls map[*types.Func][]*types.Func
	decls map[*types.Func]*ast.FuncDecl
}

// BuildCallGraph builds the call graph of pass's package.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		calls: map[*types.Func][]*types.Func{},
		decls: map[*types.Func]*ast.FuncDecl{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[caller] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := CalleeOf(pass.Info, call); callee != nil {
					g.calls[caller] = append(g.calls[caller], callee)
				}
				return true
			})
		}
	}
	return g
}

// CalleeOf resolves the statically known callee of call, or nil.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// No selection: a qualified identifier (pkg.Func).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// Decl returns the declaration of fn within the analyzed package, or
// nil for imported or body-less functions.
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Funcs returns every declared function in the package, in file order.
func (g *CallGraph) Funcs() []*types.Func {
	out := make([]*types.Func, 0, len(g.decls))
	for fn := range g.decls {
		out = append(out, fn)
	}
	// Deterministic order for deterministic diagnostics.
	sortFuncs(out)
	return out
}

func sortFuncs(fns []*types.Func) {
	for i := 1; i < len(fns); i++ {
		for j := i; j > 0 && fns[j].Pos() < fns[j-1].Pos(); j-- {
			fns[j], fns[j-1] = fns[j-1], fns[j]
		}
	}
}

// Reachable returns the set of declared functions reachable from roots
// (roots included, when declared in the package).
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if fn == nil || seen[fn] {
			return
		}
		seen[fn] = true
		for _, callee := range g.calls[fn] {
			if _, declared := g.decls[callee]; declared {
				visit(callee)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}
