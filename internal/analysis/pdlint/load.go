package pdlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package: the unit Run analyzes.
// Only non-test GoFiles are loaded — the determinism contract binds
// the shipped engine, and test files exercise wall clocks and ad-hoc
// RNGs legitimately.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	GoFiles []string

	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info

	// TypeErrors holds type-checking problems. Analyzers still run on
	// a partially checked package, but drivers should surface these:
	// findings may be incomplete.
	TypeErrors []error
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes
// the JSON stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding output: %v", strings.Join(args, " "), err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// ExportData compiles the given packages (and their dependencies) and
// returns import path → export-data file, the map a gc importer needs
// to resolve imports without source.
func ExportData(dir string, patterns ...string) (map[string]string, error) {
	args := append([]string{"-deps", "-export", "-json=ImportPath,Export,Standard"}, patterns...)
	entries, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// NewImporter returns a types.Importer resolving import paths through
// the export-data files in exports.
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Load lists, parses and type-checks the packages matching the go-list
// patterns, with dir as the working directory (anywhere inside the
// module). Imports resolve through compiled export data, so loading
// needs nothing beyond the go toolchain. Packages that fail to parse
// or type-check are returned with TypeErrors set rather than dropped.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath,Name,Dir,GoFiles,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports, err := ExportData(dir, patterns...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := NewImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if t.Standard {
			continue
		}
		p := &Package{
			PkgPath: t.ImportPath,
			Name:    t.Name,
			Dir:     t.Dir,
			Fset:    fset,
		}
		for _, f := range t.GoFiles {
			path := f
			if !filepath.IsAbs(path) {
				path = filepath.Join(t.Dir, f)
			}
			p.GoFiles = append(p.GoFiles, path)
			file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				p.TypeErrors = append(p.TypeErrors, err)
				continue
			}
			p.Syntax = append(p.Syntax, file)
		}
		p.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				p.TypeErrors = append(p.TypeErrors, err)
			},
		}
		tp, _ := conf.Check(t.ImportPath, fset, p.Syntax, p.Info)
		p.Types = tp
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
