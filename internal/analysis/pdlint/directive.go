package pdlint

import (
	"fmt"
	"go/token"
	"os"
	"strings"
)

// Suppression-directive grammar (DESIGN.md §12):
//
//	//pdlint:ignore <analyzer>[,<analyzer>...] -- <justification>
//	//pdlint:ordered -- <justification>
//
// The justification is mandatory: a suppression without a reason is
// itself a finding. //pdlint:ordered is shorthand for
// //pdlint:ignore maprange, matching the analyzer's own vocabulary
// ("this iteration is order-insensitive, and here is why").
//
// A directive placed at the end of a code line suppresses findings on
// that line; a directive alone on its line suppresses findings on the
// next line. Directives must start the comment exactly ("//pdlint:",
// no space), like //go:build.

const directivePrefix = "//pdlint:"

type directive struct {
	analyzers     map[string]bool
	justification string
	file          string
	lines         [2]int // the lines this directive covers (0 = unused)
}

type directiveSet struct {
	dirs []directive
}

// suppresses reports whether a directive covers a finding of the named
// analyzer at pos, returning its justification.
func (s *directiveSet) suppresses(name string, pos token.Position) (string, bool) {
	for i := range s.dirs {
		d := &s.dirs[i]
		if d.file != pos.Filename || !d.analyzers[name] {
			continue
		}
		if d.lines[0] == pos.Line || d.lines[1] == pos.Line {
			return d.justification, true
		}
	}
	return "", false
}

// scanDirectives parses every //pdlint: directive in pkg, reporting
// malformed ones (unknown verb, unknown analyzer, missing
// justification) through report. known lists the analyzer names
// directives may reference.
func scanDirectives(pkg *Package, known map[string]bool, report func(token.Pos, string)) *directiveSet {
	set := &directiveSet{}
	for _, file := range pkg.Syntax {
		tf := pkg.Fset.File(file.Pos())
		if tf == nil {
			continue
		}
		src, err := os.ReadFile(tf.Name())
		if err != nil {
			src = nil // fall back to treating every directive as trailing
		}
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d, msg := parseDirective(strings.TrimPrefix(c.Text, directivePrefix), known)
				if msg != "" {
					report(c.Pos(), msg)
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d.file = pos.Filename
				d.lines[0] = pos.Line
				if standsAlone(src, tf, c.Pos()) {
					d.lines[1] = pos.Line + 1
				}
				set.dirs = append(set.dirs, d)
			}
		}
	}
	return set
}

// standsAlone reports whether only whitespace precedes the comment on
// its line.
func standsAlone(src []byte, tf *token.File, pos token.Pos) bool {
	if src == nil {
		return false
	}
	off := tf.Offset(pos)
	start := tf.Offset(tf.LineStart(tf.Line(pos)))
	if start < 0 || off > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:off])) == ""
}

// parseDirective parses the directive body after "//pdlint:". It
// returns either a directive or a problem message.
func parseDirective(body string, known map[string]bool) (directive, string) {
	verb := body
	rest := ""
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		verb, rest = body[:i], strings.TrimSpace(body[i:])
	}
	args, justification, hasReason := splitReason(rest)
	d := directive{analyzers: map[string]bool{}, justification: justification}

	switch verb {
	case "ordered":
		if args != "" {
			return d, fmt.Sprintf("pdlint:ordered takes no analyzer list (got %q); write //pdlint:ordered -- <reason>", args)
		}
		d.analyzers["maprange"] = true
	case "ignore":
		if args == "" {
			return d, "pdlint:ignore needs an analyzer list: //pdlint:ignore <analyzer>[,...] -- <reason>"
		}
		for _, name := range strings.Split(args, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				return d, fmt.Sprintf("pdlint:ignore names unknown analyzer %q", name)
			}
			d.analyzers[name] = true
		}
	default:
		return d, fmt.Sprintf("unknown pdlint directive %q (want ignore or ordered)", verb)
	}
	if !hasReason || justification == "" {
		return d, fmt.Sprintf("pdlint:%s requires a justification: //pdlint:%s ... -- <reason>", verb, verb)
	}
	return d, ""
}

// splitReason splits "args -- reason", reporting whether the " -- "
// separator was present at all.
func splitReason(s string) (args, reason string, ok bool) {
	if i := strings.Index(s, "--"); i >= 0 {
		return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+2:]), true
	}
	return strings.TrimSpace(s), "", false
}
