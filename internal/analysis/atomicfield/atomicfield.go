// Package atomicfield flags memory that is accessed both through
// sync/atomic package functions and by plain reads or writes — the
// mixed-access bug class where a refactor quietly turns a lock-free
// reader into a data race. Two granularities are tracked:
//
//   - struct fields: a field whose address (or element address) feeds
//     a sync/atomic call anywhere in the package must not be read or
//     written plainly anywhere else in the package;
//   - function-local slices: within one function, a slice whose
//     elements are atomically accessed must not have elements
//     accessed plainly.
//
// For element-granular targets (slices), whole-value assignments like
// `c.words = make([]uint64, n)` are not flagged: the atomic unit is
// the element, and replacing the whole slice is the publish pattern
// that goes through its own atomic.Pointer. Struct-literal
// initialization is likewise exempt — construction precedes
// publication. Typed atomics (atomic.Int64, atomic.Pointer) make this
// analyzer structurally unnecessary; it exists for the word-array
// cases (bloom filters, bitsets) where typed atomics cannot express
// the layout.
package atomicfield

import (
	"go/ast"
	"go/types"
	"pfuzzer/internal/analysis/pdlint"
)

// Analyzer is the atomicfield check.
var Analyzer = &pdlint.Analyzer{
	Name: "atomicfield",
	Doc: "flags struct fields and local slices accessed both via sync/atomic " +
		"and by plain read/write",
	Run: run,
}

// target records how one object is atomically accessed.
type target struct {
	obj  types.Object
	elem bool        // atomic ops address elements (obj[i]), not obj itself
	fn   *types.Func // non-nil: a function-local var, checked only within fn
}

func run(pass *pdlint.Pass) error {
	targets := collectTargets(pass)
	if len(targets) == 0 {
		return nil
	}
	reportPlainAccesses(pass, targets)
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic
// package-level function.
func isAtomicCall(pass *pdlint.Pass, call *ast.CallExpr) bool {
	callee := pdlint.CalleeOf(pass.Info, call)
	return callee != nil && callee.Pkg() != nil &&
		callee.Pkg().Path() == "sync/atomic" &&
		callee.Type().(*types.Signature).Recv() == nil
}

// collectTargets finds every object whose address reaches a
// sync/atomic call: directly as &x.f / &x.f[i] / &w[i], or through a
// single-assignment pointer local (w := &c.words[i]; atomic.Load(w)).
func collectTargets(pass *pdlint.Pass) map[types.Object]*target {
	targets := map[types.Object]*target{}
	add := func(expr ast.Expr, fn *types.Func) {
		switch x := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			if obj := fieldObj(pass, x); obj != nil {
				mergeTarget(targets, &target{obj: obj})
			}
		case *ast.IndexExpr:
			switch base := ast.Unparen(x.X).(type) {
			case *ast.SelectorExpr:
				if obj := fieldObj(pass, base); obj != nil {
					mergeTarget(targets, &target{obj: obj, elem: true})
				}
			case *ast.Ident:
				if obj := pass.Info.ObjectOf(base); obj != nil {
					if _, isVar := obj.(*types.Var); isVar {
						mergeTarget(targets, &target{obj: obj, elem: true, fn: fn})
					}
				}
			}
		}
	}
	forEachFunc(pass, func(fn *types.Func, body *ast.BlockStmt) {
		// Pointer locals bound once to an address-of expression.
		ptrTo := map[types.Object]ast.Expr{}
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(as.Rhs) {
					continue
				}
				if un, ok := ast.Unparen(as.Rhs[i]).(*ast.UnaryExpr); ok && un.Op.String() == "&" {
					ptrTo[pass.Info.ObjectOf(id)] = un.X
				}
			}
			return true
		})
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			switch arg := ast.Unparen(call.Args[0]).(type) {
			case *ast.UnaryExpr:
				if arg.Op.String() == "&" {
					add(arg.X, fn)
				}
			case *ast.Ident:
				if pointee, ok := ptrTo[pass.Info.ObjectOf(arg)]; ok {
					add(pointee, fn)
				}
			}
			return true
		})
	})
	return targets
}

// mergeTarget records t, widening an existing record: element-level
// and object-level atomic access to the same object leaves the
// stricter object-level record.
func mergeTarget(targets map[types.Object]*target, t *target) {
	if prev, ok := targets[t.obj]; ok {
		prev.elem = prev.elem && t.elem
		return
	}
	targets[t.obj] = t
}

// reportPlainAccesses walks every function and flags non-atomic
// accesses to the collected targets.
func reportPlainAccesses(pass *pdlint.Pass, targets map[types.Object]*target) {
	forEachFunc(pass, func(fn *types.Func, body *ast.BlockStmt) {
		var stack []ast.Node
		ast.Inspect(body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			var obj types.Object
			var node ast.Node
			switch x := n.(type) {
			case *ast.SelectorExpr:
				obj, node = fieldObj(pass, x), x
			case *ast.Ident:
				o := pass.Info.ObjectOf(x)
				if t, ok := targets[o]; ok && t.fn != nil {
					obj, node = o, x
				}
			}
			if obj == nil {
				return true
			}
			t, ok := targets[obj]
			if !ok || (t.fn != nil && t.fn != fn) {
				return true
			}
			if insideAtomicArg(pass, stack) || insideAddrOf(stack) {
				return true
			}
			if t.elem && !isElementAccess(stack) {
				return true // len/cap/range/whole-value replacement
			}
			if inCompositeLit(stack) {
				return true // construction precedes publication
			}
			pass.Reportf(node.Pos(),
				"%s is accessed via sync/atomic elsewhere in this package; this plain "+
					"%s is a data race with the atomic readers — use atomic access here too",
				accessName(pass, t), accessKind(t))
			return true
		})
	})
}

// isElementAccess reports whether the innermost expression (top of
// stack) is the operand of an index expression.
func isElementAccess(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	idx, ok := stack[len(stack)-2].(*ast.IndexExpr)
	return ok && idx.X == stack[len(stack)-1]
}

// insideAddrOf reports whether the node sits under an address-of
// operator: taking the address is not a read or write — what matters
// is how the resulting pointer is used, and pointer uses that reach
// sync/atomic are collected as targets separately.
func insideAddrOf(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if un, ok := stack[i].(*ast.UnaryExpr); ok && un.Op.String() == "&" {
			return true
		}
	}
	return false
}

// insideAtomicArg reports whether the node at the top of the stack
// sits inside the arguments of a sync/atomic call.
func insideAtomicArg(pass *pdlint.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if call, ok := stack[i].(*ast.CallExpr); ok && isAtomicCall(pass, call) {
			return true
		}
	}
	return false
}

// inCompositeLit reports whether the node sits inside a composite
// literal (struct construction).
func inCompositeLit(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.CompositeLit); ok {
			return true
		}
	}
	return false
}

// fieldObj resolves sel to a struct field object, or nil.
func fieldObj(pass *pdlint.Pass, sel *ast.SelectorExpr) types.Object {
	if s, ok := pass.Info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// forEachFunc visits every declared function body.
func forEachFunc(pass *pdlint.Pass, visit func(*types.Func, *ast.BlockStmt)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			visit(fn, fd.Body)
		}
	}
}

// accessName renders the target for the message.
func accessName(pass *pdlint.Pass, t *target) string {
	name := t.obj.Name()
	if v, ok := t.obj.(*types.Var); ok && v.IsField() {
		name = "field " + name
	} else {
		name = "local " + name
	}
	if t.elem {
		name += " (elements)"
	}
	return name
}

// accessKind names the flagged operation.
func accessKind(t *target) string {
	if t.elem {
		return "element access"
	}
	return "read/write"
}
