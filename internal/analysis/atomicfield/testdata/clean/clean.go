// Package clean exercises the access patterns atomicfield accepts:
// uniformly atomic access, whole-value replacement of element-atomic
// slices, and composite-literal construction.
package clean

import "sync/atomic"

type gauge struct {
	n     uint64
	words []uint64
}

func (g *gauge) inc() {
	atomic.AddUint64(&g.n, 1)
}

func (g *gauge) read() uint64 {
	return atomic.LoadUint64(&g.n)
}

func (g *gauge) mark(i int) {
	atomic.AddUint64(&g.words[i], 1)
}

// grow replaces the whole slice: the atomic unit is the element, and
// swapping the backing array is the publish pattern.
func (g *gauge) grow(n int) {
	g.words = make([]uint64, n)
}

// newGauge constructs before publication.
func newGauge(n int) *gauge {
	return &gauge{words: make([]uint64, n)}
}
