// Package bad exercises atomicfield's mixed-access shapes.
package bad

import "sync/atomic"

type counter struct {
	n     uint64
	words []uint64
}

// inc establishes n as an atomically accessed field.
func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
}

// read races with inc: plain read of an atomic field.
func (c *counter) read() uint64 {
	return c.n // want `field n`
}

// mark establishes words as element-atomic.
func (c *counter) mark(i int) {
	atomic.AddUint64(&c.words[i], 1)
}

// clear races with mark: plain element write.
func (c *counter) clear(i int) {
	c.words[i] = 0 // want `field words`
}

// Flip mixes atomic and plain element access to a local slice within
// one function, through a pointer local.
func Flip(words []uint64) {
	w := &words[0]
	atomic.AddUint64(w, 1)
	words[1] = 2 // want `local words`
}
