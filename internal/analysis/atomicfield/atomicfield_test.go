package atomicfield_test

import (
	"testing"

	"pfuzzer/internal/analysis/atomicfield"
	"pfuzzer/internal/analysis/pdtest"
)

func TestBad(t *testing.T) {
	pdtest.Run(t, atomicfield.Analyzer, "testdata/bad")
}

func TestClean(t *testing.T) {
	pdtest.Run(t, atomicfield.Analyzer, "testdata/clean")
}
