package subjecttrace_test

import (
	"testing"

	"pfuzzer/internal/analysis/pdtest"
	"pfuzzer/internal/analysis/subjecttrace"
)

func TestBad(t *testing.T) {
	pdtest.Run(t, subjecttrace.Analyzer, "testdata/bad")
}

func TestClean(t *testing.T) {
	pdtest.Run(t, subjecttrace.Analyzer, "testdata/clean")
}

// TestSuppressionRecorded checks that the deliberate taint break in
// testdata/clean is suppressed (not absent): the finding exists, is
// marked, and carries its justification.
func TestSuppressionRecorded(t *testing.T) {
	_, findings := pdtest.Findings(t, subjecttrace.Analyzer, "testdata/clean")
	for _, f := range findings {
		if f.Analyzer == "subjecttrace" && f.Suppressed {
			if f.Justification == "" {
				t.Fatalf("suppressed finding at %s:%d has no justification", f.File, f.Line)
			}
			return
		}
	}
	t.Fatal("expected a suppressed subjecttrace finding in testdata/clean (the jsonLike taint break)")
}
