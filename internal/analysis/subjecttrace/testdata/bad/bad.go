// Package bad exercises subjecttrace's flagged shapes: comparisons
// against input-derived bytes that bypass the trace shim.
package bad

import (
	"strings"

	"pfuzzer/internal/analysis/subjecttrace/testdata/src/taint"
	"pfuzzer/internal/analysis/subjecttrace/testdata/src/trace"
)

// Parse carries the tracer: it and everything it reaches must compare
// through the shim.
func Parse(t *trace.Tracer, cs []taint.Char) bool {
	if cs[0].B == '(' { // want `compares an input-derived byte`
		return true
	}
	b := cs[1].B
	if b >= 'a' && b <= 'z' { // want `compares an input-derived byte` `compares an input-derived byte`
		return true
	}
	switch cs[2].B { // want `switches on an input-derived byte`
	case ')':
		return false
	}
	return isOpen(t, cs[3].B) || prefix(cs)
}

// isOpen receives a raw .B byte from Parse: the comparison inside is
// just as invisible to the feedback loop as one at the call site.
func isOpen(t *trace.Tracer, b byte) bool {
	return b == '(' || b == '[' // want `compares an input-derived byte` `compares an input-derived byte`
}

// prefix flattens the tainted input and compares it wholesale.
func prefix(cs []taint.Char) bool {
	s := make([]byte, len(cs))
	for i, c := range cs {
		s[i] = c.B
	}
	return strings.HasPrefix(string(s), "#!") // want `strings\.HasPrefix compares input-derived data`
}
