// Package trace is a stub of the repo's comparison-trace shim, just
// enough for subjecttrace testdata: the analyzer matches Tracer by
// name and package-path suffix.
package trace

import "pfuzzer/internal/analysis/subjecttrace/testdata/src/taint"

// Tracer records character comparisons.
type Tracer struct{}

// CharEq compares one input character against a literal, recording it.
func (t *Tracer) CharEq(c taint.Char, b byte) bool { return c.B == b }

// CharRange compares one input character against a range, recording it.
func (t *Tracer) CharRange(c taint.Char, lo, hi byte) bool {
	return c.B >= lo && c.B <= hi
}

// StrEq compares an input run against a literal string, recording it.
func (t *Tracer) StrEq(cs []taint.Char, s string) bool {
	if len(cs) < len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !t.CharEq(cs[i], s[i]) {
			return false
		}
	}
	return true
}
