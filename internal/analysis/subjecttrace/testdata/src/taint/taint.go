// Package taint is a stub of the repo's taint package, just enough
// for subjecttrace testdata: the analyzer matches Char by name and
// package-path suffix.
package taint

// Char is one input byte with its origin offset.
type Char struct {
	B      byte
	Origin int
}
