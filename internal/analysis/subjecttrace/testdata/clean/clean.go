// Package clean exercises what subjecttrace accepts: comparisons
// through the shim, plain-string helpers outside any traced path, and
// a justified suppression for a deliberate taint break.
package clean

import (
	"pfuzzer/internal/analysis/subjecttrace/testdata/src/taint"
	"pfuzzer/internal/analysis/subjecttrace/testdata/src/trace"
)

// Parse compares only through the tracer.
func Parse(t *trace.Tracer, cs []taint.Char) bool {
	if len(cs) == 0 {
		return false
	}
	if t.CharEq(cs[0], '(') {
		return true
	}
	return t.CharRange(cs[0], 'a', 'z')
}

// Tokenize post-processes plain strings and is not reachable from any
// tracer-carrying function.
func Tokenize(s string) bool {
	return len(s) > 0 && s[0] == '#'
}

// jsonLike models mjs's runtime re-parse: the taint break is
// deliberate and documented where it happens.
func jsonLike(t *trace.Tracer, cs []taint.Char) bool {
	if len(cs) == 0 {
		return false
	}
	//pdlint:ignore subjecttrace -- runtime value re-parse; the taint break at tokenization is deliberate
	return cs[0].B == '{'
}
