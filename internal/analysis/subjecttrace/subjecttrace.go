// Package subjecttrace is the paper-specific analyzer: inside subject
// parsers, every comparison against input-derived bytes must go
// through the trace shim (trace.Tracer's CharEq/CharRange/CharSet/
// StrEq), because an untraced comparison is invisible to the
// parser-directed feedback loop — the fuzzer never learns the
// comparison happened, so it can never satisfy it (Mathis et al.,
// PLDI 2019, §2: the approach depends on observing *all* comparisons
// of input characters).
//
// The analyzer restricts itself to functions reachable from a
// tracer-carrying entry point (any function with a *trace.Tracer
// parameter — a subject's Run and its traced helpers), so inventory
// and Tokenize helpers that post-process plain strings do not fire.
// Within that region it flags:
//
//   - ==, !=, <, <=, >, >= where an operand is the raw .B byte of a
//     taint.Char (directly, via a local copy, or via a byte parameter
//     some call site feeds a .B value);
//   - switch statements whose tag is such a byte;
//   - calls to the bytes/strings comparison helpers (Equal, Compare,
//     HasPrefix, HasSuffix, Contains, EqualFold), which bypass the
//     shim wholesale.
//
// Deliberately taint-breaking code — paren's pair-table lookahead,
// mjs's runtime JSON re-parse — carries //pdlint:ignore subjecttrace
// directives whose justifications double as documentation of where
// the paper's taint model loses track.
package subjecttrace

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pfuzzer/internal/analysis/pdlint"
)

// Analyzer is the subjecttrace check.
var Analyzer = &pdlint.Analyzer{
	Name: "subjecttrace",
	Doc: "flags comparisons against input-derived bytes that bypass the trace " +
		"shim inside subject parsers",
	Run: run,
}

// stringCompareFns are the bytes/strings helpers that compare whole
// sequences outside the shim.
var stringCompareFns = map[string]bool{
	"Equal": true, "Compare": true, "HasPrefix": true,
	"HasSuffix": true, "Contains": true, "EqualFold": true,
}

func run(pass *pdlint.Pass) error {
	g := pdlint.BuildCallGraph(pass)
	var roots []*types.Func
	for _, fn := range g.Funcs() {
		if hasTracerParam(fn) {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	reachable := g.Reachable(roots)

	// Byte parameters that some reachable call site feeds a raw .B
	// value: the interprocedural step that catches helpers like
	// paren's isOpen(c.B).
	taintedParams := map[types.Object]bool{}
	for fn := range reachable {
		decl := g.Decl(fn)
		if decl == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := pdlint.CalleeOf(pass.Info, call)
			cd := g.Decl(callee)
			if cd == nil || cd.Type.Params == nil {
				return true
			}
			params := flattenParams(pass, cd)
			for i, arg := range call.Args {
				if i < len(params) && isRawTaintByte(pass, arg, nil) {
					taintedParams[params[i]] = true
				}
			}
			return true
		})
	}

	for fn := range reachable {
		decl := g.Decl(fn)
		if decl == nil {
			continue
		}
		checkFunc(pass, decl, taintedParams)
	}
	return nil
}

func checkFunc(pass *pdlint.Pass, decl *ast.FuncDecl, taintedParams map[types.Object]bool) {
	// Locals assigned from a tainted byte; grown in source order,
	// twice, so a use before a later re-assignment still resolves.
	tainted := map[types.Object]bool{}
	for obj := range taintedParams {
		tainted[obj] = true
	}
	for pass2 := 0; pass2 < 2; pass2++ {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(as.Rhs) {
					continue
				}
				if isRawTaintByte(pass, as.Rhs[i], tainted) {
					tainted[pass.Info.ObjectOf(id)] = true
				}
			}
			return true
		})
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			switch x.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			default:
				return true
			}
			if isRawTaintByte(pass, x.X, tainted) || isRawTaintByte(pass, x.Y, tainted) {
				pass.Reportf(x.Pos(),
					"compares an input-derived byte outside the trace shim; use "+
						"t.CharEq/t.CharRange/t.CharSet so the parser-directed feedback "+
						"loop observes the comparison")
			}
		case *ast.SwitchStmt:
			if x.Tag != nil && isRawTaintByte(pass, x.Tag, tainted) {
				pass.Reportf(x.Pos(),
					"switches on an input-derived byte outside the trace shim; compare "+
						"through t.CharEq/t.CharSet so the feedback loop observes each case")
			}
		case *ast.CallExpr:
			callee := pdlint.CalleeOf(pass.Info, x)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			p := callee.Pkg().Path()
			if (p == "bytes" || p == "strings") && stringCompareFns[callee.Name()] &&
				callee.Type().(*types.Signature).Recv() == nil {
				pass.Reportf(x.Pos(),
					"%s.%s compares input-derived data outside the trace shim; use "+
						"t.StrEq (or per-character trace calls) so the comparison feeds "+
						"the heuristic", p, callee.Name())
			}
		}
		return true
	})
}

// isRawTaintByte reports whether e is a raw input byte: a .B selector
// on a taint.Char, or an identifier known to hold one.
func isRawTaintByte(pass *pdlint.Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if x.Sel.Name != "B" {
			return false
		}
		return isTaintChar(pass.Info.TypeOf(x.X))
	case *ast.Ident:
		return tainted != nil && tainted[pass.Info.ObjectOf(x)]
	}
	return false
}

// isTaintChar reports whether t is the taint.Char value type (matched
// by name and package suffix so testdata can carry its own stub).
func isTaintChar(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	p := named.Obj().Pkg().Path()
	return named.Obj().Name() == "Char" &&
		(p == "pfuzzer/internal/taint" || strings.HasSuffix(p, "/taint"))
}

// hasTracerParam reports whether fn takes a *trace.Tracer.
func hasTracerParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		ptr, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			continue
		}
		p := named.Obj().Pkg().Path()
		if named.Obj().Name() == "Tracer" &&
			(p == "pfuzzer/internal/trace" || strings.HasSuffix(p, "/trace")) {
			return true
		}
	}
	return false
}

// flattenParams returns the parameter objects of a declared function
// in positional order.
func flattenParams(pass *pdlint.Pass, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, pass.Info.Defs[name])
		}
	}
	return out
}
