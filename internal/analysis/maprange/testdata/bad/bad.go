// Package bad exercises the maprange analyzer's flagged shapes.
package bad

// Keys collects map keys without sorting them: the classic snapshot
// drift shape. Fix-eligible (string key, plain map identifier).
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `iterates over a map`
		out = append(out, k)
	}
	return out
}

// Join folds keys into a string: order leaks straight into the result.
func Join(m map[string]int) string {
	s := ""
	for k, v := range m { // want `iterates over a map`
		if v > 0 {
			s += k
		}
	}
	return s
}

// Count is order-insensitive and says so; the suppressed finding does
// not surface.
func Count(m map[string]int) int {
	n := 0
	//pdlint:ordered -- commutative count; every visit order yields the same n
	for range m {
		n++
	}
	return n
}
