// Package clean exercises the shapes maprange accepts without a
// directive.
package clean

import "sort"

// Keys is the repo's snapshot idiom: collect, then sort.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// IDs collects conditionally (guarded appends and counters are fine)
// and sorts with sort.Slice.
func IDs(m map[uint32]bool) []uint32 {
	var ids []uint32
	n := 0
	for id, ok := range m {
		if ok {
			ids = append(ids, id)
		}
		n++
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Snapshot is the struct-field form of the idiom: the append target
// is a field selector, sorted before the snapshot is returned.
type Snapshot struct{ Seen []string }

func Snap(m map[string]bool) Snapshot {
	var s Snapshot
	for k := range m {
		s.Seen = append(s.Seen, k)
	}
	sort.Strings(s.Seen)
	return s
}

// Sum ranges over a slice, which is ordered; no map involved.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
