package maprange_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"testing"

	"pfuzzer/internal/analysis/maprange"
	"pfuzzer/internal/analysis/pdlint"
	"pfuzzer/internal/analysis/pdtest"
)

func TestBad(t *testing.T) {
	pdtest.Run(t, maprange.Analyzer, "testdata/bad")
}

func TestClean(t *testing.T) {
	pdtest.Run(t, maprange.Analyzer, "testdata/clean")
}

// TestFixCompiles applies the sort-keys suggested fix to the bad
// testdata and type-checks the result: the -fix output must be valid,
// compilable Go.
func TestFixCompiles(t *testing.T) {
	pkg, findings := pdtest.Findings(t, maprange.Analyzer, "testdata/bad")

	fixable := 0
	for _, f := range findings {
		if !f.Suppressed && len(f.Fixes) > 0 {
			fixable++
		}
	}
	if fixable == 0 {
		t.Fatal("no fixable findings in testdata/bad; the sort-keys fix never triggered")
	}

	fixed, err := pdlint.ApplyFixes(pkg.Fset, findings)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	if len(fixed) == 0 {
		t.Fatal("ApplyFixes rewrote no files")
	}

	// Re-parse the rewritten package and type-check it against export
	// data for its imports (the fix adds "sort").
	exports, err := pdlint.ExportData("testdata/bad", "sort")
	if err != nil {
		t.Fatalf("compiling sort for export data: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range pkg.GoFiles {
		src, ok := fixed[path]
		if !ok {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src = b
		}
		file, err := parser.ParseFile(fset, path, src, 0)
		if err != nil {
			t.Fatalf("fixed source does not parse: %v\n%s", err, src)
		}
		files = append(files, file)
	}
	conf := types.Config{Importer: pdlint.NewImporter(fset, exports)}
	if _, err := conf.Check(pkg.PkgPath, fset, files, nil); err != nil {
		t.Fatalf("fixed source does not type-check: %v", err)
	}
}
