// Package maprange flags `for range` statements over maps in
// result-affecting packages. Go randomizes map iteration order, so any
// map range whose effects depend on visit order is a nondeterminism
// bug — the exact class behind snapshot drift and fingerprint
// divergence. Two shapes are recognized as clean:
//
//   - collect-then-sort: the loop body only appends to slices that
//     are later passed to a sort call in the same function (the
//     repo's pervasive snapshot idiom);
//   - a justified //pdlint:ordered directive on or above the loop,
//     for iterations that are provably order-insensitive (commutative
//     reductions, unordered deletes).
//
// For flagged loops over plain map variables the analyzer offers the
// sort-keys rewrite as a suggested fix (cmd/pdlint -fix).
package maprange

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strings"

	"pfuzzer/internal/analysis/pdlint"
)

// Analyzer is the maprange check.
var Analyzer = &pdlint.Analyzer{
	Name: "maprange",
	Doc: "flags map iteration whose order can leak into results; " +
		"clean shapes: collect-keys-then-sort, or //pdlint:ordered -- <reason>",
	Run: run,
}

func run(pass *pdlint.Pass) error {
	src := map[string][]byte{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv := pass.Info.TypeOf(rs.X)
				if tv == nil {
					return true
				}
				if _, isMap := tv.Underlying().(*types.Map); !isMap {
					return true
				}
				if collectThenSort(pass, fd, rs) {
					return true
				}
				d := pdlint.Diagnostic{
					Pos: rs.Pos(),
					Message: "iterates over a map; visit order is randomized — collect and sort " +
						"the keys before use, or justify with //pdlint:ordered -- <reason>",
				}
				if fix, ok := sortKeysFix(pass, file, rs, src); ok {
					d.Fixes = []pdlint.SuggestedFix{fix}
				}
				pass.Report(d)
				return true
			})
		}
	}
	return nil
}

// refKey identifies an append/sort target: a plain identifier, or a
// field selector over one (the snapshot idiom appends to s.Seen). The
// two-object key keeps x.f distinct from y.f.
func refKey(pass *pdlint.Pass, e ast.Expr) ([2]types.Object, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.Info.ObjectOf(x); obj != nil {
			return [2]types.Object{obj, nil}, true
		}
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(x.X).(*ast.Ident)
		if !ok {
			break
		}
		bo, fo := pass.Info.ObjectOf(base), pass.Info.ObjectOf(x.Sel)
		if bo != nil && fo != nil {
			return [2]types.Object{bo, fo}, true
		}
	}
	return [2]types.Object{}, false
}

// collectThenSort reports whether rs is the clean snapshot idiom: a
// body that only appends to slices, each of which reaches a recognized
// sort call later in the same function.
func collectThenSort(pass *pdlint.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	targets := map[[2]types.Object]bool{}
	if !onlyAppends(pass, rs.Body.List, targets) || len(targets) == 0 {
		return false
	}
	for key := range targets {
		if !sortedAfter(pass, fd, rs, key) {
			return false
		}
	}
	return true
}

// onlyAppends reports whether stmts consist solely of
// `s = append(s, ...)` assignments (optionally guarded by if
// statements and interleaved with counters), collecting the append
// targets.
func onlyAppends(pass *pdlint.Pass, stmts []ast.Stmt, targets map[[2]types.Object]bool) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 || s.Tok != token.ASSIGN {
				return false
			}
			lhsKey, ok := refKey(pass, s.Lhs[0])
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return false
			}
			if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
				return false
			}
			arg0Key, ok := refKey(pass, call.Args[0])
			if !ok || arg0Key != lhsKey {
				return false
			}
			targets[lhsKey] = true
		case *ast.IfStmt:
			if s.Init != nil || s.Else != nil {
				return false
			}
			if !onlyAppends(pass, s.Body.List, targets) {
				return false
			}
		case *ast.IncDecStmt:
			// Counters are commutative.
		default:
			return false
		}
	}
	return true
}

// sortCalls maps recognized sorting functions (package path, name).
var sortCalls = map[[2]string]bool{
	{"sort", "Slice"}:            true,
	{"sort", "SliceStable"}:      true,
	{"sort", "Sort"}:             true,
	{"sort", "Stable"}:           true,
	{"sort", "Strings"}:          true,
	{"sort", "Ints"}:             true,
	{"sort", "Float64s"}:         true,
	{"slices", "Sort"}:           true,
	{"slices", "SortFunc"}:       true,
	{"slices", "SortStableFunc"}: true,
}

// sortedAfter reports whether obj is the first argument of a
// recognized sort call after rs within fd (a conversion wrapper like
// sort.Sort(bySeq(s)) counts).
func sortedAfter(pass *pdlint.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, key [2]types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found || len(call.Args) == 0 {
			return true
		}
		callee := pdlint.CalleeOf(pass.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if !sortCalls[[2]string{callee.Pkg().Path(), callee.Name()}] {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			arg = ast.Unparen(conv.Args[0])
		}
		if k, ok := refKey(pass, arg); ok && k == key {
			found = true
		}
		return true
	})
	return found
}

// sortKeysFix builds the sort-keys rewrite for a flagged range over a
// plain map expression:
//
//	for k, v := range m { body }
//
// becomes
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)            // or a sort.Slice for ordered kinds
//	for _, k := range keys {
//		v := m[k]
//		body
//	}
//
// plus a `"sort"` import when missing. Offered only when the shape is
// safe to rewrite: the map is an identifier or field selector (so
// evaluating it twice is effect-free), the key is a named identifier,
// and the key type is a string or ordered numeric kind.
func sortKeysFix(pass *pdlint.Pass, file *ast.File, rs *ast.RangeStmt, srcCache map[string][]byte) (pdlint.SuggestedFix, bool) {
	var none pdlint.SuggestedFix
	switch ast.Unparen(rs.X).(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return none, false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Tok != token.DEFINE {
		return none, false
	}
	mt, ok := pass.Info.TypeOf(rs.X).Underlying().(*types.Map)
	if !ok {
		return none, false
	}
	sortStmt, ok := sortStmtFor(pass, mt.Key())
	if !ok {
		return none, false
	}

	pos := pass.Fset.Position(rs.Pos())
	src := srcCache[pos.Filename]
	if src == nil {
		b, err := os.ReadFile(pos.Filename)
		if err != nil {
			return none, false
		}
		srcCache[pos.Filename] = b
		src = b
	}
	text := func(n ast.Node) string {
		s, e := pass.Fset.Position(n.Pos()).Offset, pass.Fset.Position(n.End()).Offset
		if s < 0 || e > len(src) || s > e {
			return ""
		}
		return string(src[s:e])
	}
	mExpr, bodyText := text(rs.X), text(rs.Body)
	if mExpr == "" || bodyText == "" {
		return none, false
	}

	keys := freshName(pass, rs, "keys")
	indent := strings.Repeat("\t", pos.Column-1)
	keyType := types.TypeString(mt.Key(), types.RelativeTo(pass.Pkg))

	var b strings.Builder
	fmt.Fprintf(&b, "%s := make([]%s, 0, len(%s))\n", keys, keyType, mExpr)
	fmt.Fprintf(&b, "%sfor %s := range %s {\n", indent, key.Name, mExpr)
	fmt.Fprintf(&b, "%s\t%s = append(%s, %s)\n%s}\n", indent, keys, keys, key.Name, indent)
	fmt.Fprintf(&b, "%s%s\n", indent, fmt.Sprintf(sortStmt, keys))
	fmt.Fprintf(&b, "%sfor _, %s := range %s ", indent, key.Name, keys)
	if val, ok := rs.Value.(*ast.Ident); ok && val.Name != "_" {
		// Re-bind the value inside the rewritten body.
		inner := strings.TrimPrefix(bodyText, "{")
		fmt.Fprintf(&b, "{\n%s\t%s := %s[%s]%s", indent, val.Name, mExpr, key.Name, inner)
	} else {
		b.WriteString(bodyText)
	}

	fix := pdlint.SuggestedFix{
		Message:   "collect the keys into a sorted slice and iterate that",
		TextEdits: []pdlint.TextEdit{{Pos: rs.Pos(), End: rs.End(), NewText: []byte(b.String())}},
	}
	if imp, ok := importEdit(pass, file, "sort"); ok {
		fix.TextEdits = append(fix.TextEdits, imp)
	}
	return fix, true
}

// sortStmtFor returns a format string (one %s: the keys slice) that
// sorts a slice of the given key type, or ok=false for unordered key
// types.
func sortStmtFor(pass *pdlint.Pass, key types.Type) (string, bool) {
	basic, ok := key.Underlying().(*types.Basic)
	if !ok {
		return "", false
	}
	switch {
	case basic.Info()&types.IsString != 0:
		if basic.Kind() == types.String && key == key.Underlying() {
			return "sort.Strings(%s)", true
		}
		return "sort.Slice(%[1]s, func(i, j int) bool { return %[1]s[i] < %[1]s[j] })", true
	case basic.Info()&(types.IsInteger|types.IsFloat) != 0:
		return "sort.Slice(%[1]s, func(i, j int) bool { return %[1]s[i] < %[1]s[j] })", true
	}
	return "", false
}

// freshName returns base, suffixed if anything of that name is in
// scope at rs.
func freshName(pass *pdlint.Pass, rs *ast.RangeStmt, base string) string {
	scope := pass.Pkg.Scope().Innermost(rs.Pos())
	name := base
	for i := 2; ; i++ {
		if scope == nil {
			return name
		}
		if _, obj := scope.LookupParent(name, rs.Pos()); obj == nil {
			return name
		}
		name = fmt.Sprintf("%s%d", base, i)
	}
}

// importEdit returns an edit adding the named import to file, or
// ok=false when it is already imported.
func importEdit(pass *pdlint.Pass, file *ast.File, path string) (pdlint.TextEdit, bool) {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return pdlint.TextEdit{}, false
		}
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Rparen.IsValid() {
			// Insert before the closing paren of the import block.
			return pdlint.TextEdit{Pos: gd.Rparen, End: gd.Rparen,
				NewText: []byte(fmt.Sprintf("\t%q\n", path))}, true
		}
		// Single unparenthesized import: add another import line.
		return pdlint.TextEdit{Pos: gd.End(), End: gd.End(),
			NewText: []byte(fmt.Sprintf("\nimport %q", path))}, true
	}
	// No imports at all: after the package clause.
	return pdlint.TextEdit{Pos: file.Name.End(), End: file.Name.End(),
		NewText: []byte(fmt.Sprintf("\n\nimport %q", path))}, true
}
