package dyck

import (
	"math"
	"math/rand"
	"testing"
)

func TestCatalan(t *testing.T) {
	want := []uint64{1, 1, 2, 5, 14, 42, 132, 429, 1430, 4862}
	for n, w := range want {
		if got := Catalan(n); got != w {
			t.Errorf("Catalan(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestClosingProbabilityFormula(t *testing.T) {
	// The paper's concrete example: after 100 steps (n = 100) the
	// probability is about 1%.
	if got := ClosingProbability(100); math.Abs(got-0.0099) > 0.0002 {
		t.Errorf("ClosingProbability(100) = %v, want ~0.0099", got)
	}
}

// TestSimulationMatchesFormula checks the Monte-Carlo estimate against
// 1/(n+1) for small n.
func TestSimulationMatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 4, 8, 16} {
		got := SimulateClosing(n, 200000, rng)
		want := ClosingProbability(n)
		if math.Abs(got-want) > 0.15*want+0.01 {
			t.Errorf("n=%d: simulated %v, formula %v", n, got, want)
		}
	}
}

// TestClosingProbabilityDecreases verifies the paper's point: the
// chance of randomly closing decreases as prefixes grow.
func TestClosingProbabilityDecreases(t *testing.T) {
	prev := 1.0
	for n := 1; n <= 128; n *= 2 {
		p := ClosingProbability(n)
		if p >= prev {
			t.Fatalf("probability did not decrease at n=%d", n)
		}
		prev = p
	}
}
