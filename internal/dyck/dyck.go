// Package dyck reproduces the combinatorial argument of the paper's
// §3 (footnote 2): a random walk over open/close brackets that stays
// non-negative for 2n steps ends balanced with probability only
// 1/(n+1) — the n-th Catalan number over the positive-path count.
// This is why purely random choice between '(' and ')' almost never
// closes a long prefix, motivating pFuzzer's heuristic search.
package dyck

import "math/rand"

// Catalan returns the n-th Catalan number C(n) = (2n choose n)/(n+1),
// computed exactly with the product formula (valid up to n = 33 in
// uint64).
func Catalan(n int) uint64 {
	// C(0) = 1; C(k+1) = C(k) * 2(2k+1)/(k+2).
	c := uint64(1)
	for k := 0; k < n; k++ {
		c = c * 2 * (2*uint64(k) + 1) / (uint64(k) + 2)
	}
	return c
}

// ClosingProbability returns the paper's closed-form probability
// 1/(n+1) that a positive bracket walk of 2n steps ends balanced.
func ClosingProbability(n int) float64 {
	return 1 / float64(n+1)
}

// SimulateClosing estimates, by Monte-Carlo over trials random walks,
// the probability that a walk of 2n fair open/close steps stays
// non-negative and ends at zero — the event whose probability the
// paper bounds by 1/(n+1). Walks that would go negative are
// conditioned away, as in the paper's Dyck-path argument (paths that
// "stay positive").
func SimulateClosing(n, trials int, rng *rand.Rand) float64 {
	if trials <= 0 {
		return 0
	}
	stayed := 0
	closed := 0
	for t := 0; t < trials; t++ {
		depth := 0
		ok := true
		for s := 0; s < 2*n; s++ {
			if rng.Intn(2) == 0 {
				depth++
			} else {
				depth--
			}
			if depth < 0 {
				ok = false
				break
			}
		}
		if ok {
			stayed++
			if depth == 0 {
				closed++
			}
		}
	}
	if stayed == 0 {
		return 0
	}
	return float64(closed) / float64(stayed)
}
