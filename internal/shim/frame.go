// Package shim executes subjects out of process: a parent-side Host
// drives a child over a compact CRC-framed stdio protocol (the same
// [type][len][payload][crc] framing the corpus journal uses), and a
// parent-side Subject adapter replays the child's streamed trace
// events through the public trace.Tracer API so the resulting Record
// — comparisons, EOF accesses, block order, path hash, stack depths,
// sequence numbers and the prefix-decided verdict — is bit-identical
// to running the subject in process. Child crashes, hangs and
// protocol garbage become recoverable per-execution outcomes
// (subject.ExitCrash/ExitHang/ExitUnavailable, each force-marked
// undecided) instead of campaign aborts; internal/conformance is the
// acceptance gate for the whole stack via the cmd/pshim self-shim.
package shim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic is the 8-byte stream preamble each side writes before its
// first frame, so a parent talking to a non-shim binary (or a child
// launched by a non-shim parent) fails fast instead of misparsing.
const Magic = "PFSHIM1\n"

// Version is the protocol version exchanged in the hello frames.
const Version = 1

// Frame types. The child answers one fExec with any number of fCmp /
// fEOF / fBlocks frames (in trace order) terminated by exactly one
// fResult. fFail replaces the child's hello when it cannot serve the
// requested subject.
const (
	fHello  = 'H'
	fExec   = 'X'
	fCmp    = 'C'
	fEOF    = 'E'
	fBlocks = 'B'
	fResult = 'R'
	fFail   = 'F'
)

// maxFrame bounds a single frame's payload; anything larger is
// treated as a framing error rather than an allocation request.
const maxFrame = 1 << 24

// errProto tags parent-side errors that mean the child spoke the
// protocol wrongly (bad CRC, malformed payload, unexpected frame)
// rather than dying: the Host counts the two separately.
var errProto = errors.New("shim: protocol error")

// protoErrf builds an error that errors.Is-matches errProto.
func protoErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errProto, fmt.Sprintf(format, args...))
}

// writeMagic writes the stream preamble.
func writeMagic(w io.Writer) error {
	_, err := io.WriteString(w, Magic)
	return err
}

// readMagic consumes and verifies the stream preamble.
func readMagic(r io.Reader) error {
	var got [len(Magic)]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("shim: stream closed before magic: %w", err)
		}
		return err
	}
	if string(got[:]) != Magic {
		return protoErrf("bad magic %q", got[:])
	}
	return nil
}

// writeFrame writes one frame: [type:1][len:4 LE][payload][crc32(payload):4 LE].
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("shim: frame payload %d exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(sum[:])
	return err
}

// readFrame reads one frame into *buf (grown as needed and reused
// across calls; the returned payload aliases it). A clean EOF at a
// frame boundary is returned as io.EOF; EOF anywhere inside a frame
// becomes io.ErrUnexpectedEOF, and a CRC or size violation a
// protocol error.
func readFrame(r io.Reader, buf *[]byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err // io.EOF here is a clean close
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, protoErrf("frame payload %d exceeds limit", n)
	}
	need := int(n) + 4
	if cap(*buf) < need {
		*buf = make([]byte, need)
	}
	b := (*buf)[:need]
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	payload = b[:n]
	want := binary.LittleEndian.Uint32(b[n:])
	if crc32.ChecksumIEEE(payload) != want {
		return 0, nil, protoErrf("frame %q CRC mismatch", hdr[0])
	}
	return hdr[0], payload, nil
}
