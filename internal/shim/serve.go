// Child side of the protocol: Serve speaks the shim protocol over a
// pair of byte streams, running a real in-process subject per EXEC
// frame and streaming its trace back in event order. cmd/pshim wraps
// Serve around the subject registry; tests wrap it around io.Pipe
// pairs for subprocess-free determinism.
package shim

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

// FaultPlan injects deterministic failures into a serving child, for
// fault-injection tests and demos. Each field names the 1-based
// ordinal of the execution at which the fault fires (0 = never):
// CrashAt dies mid-frame after running the subject, HangAt stops
// responding until the peer closes the connection, GarbageAt replaces
// the execution's response with bytes that parse as no frame.
type FaultPlan struct {
	CrashAt   int
	HangAt    int
	GarbageAt int
}

// ErrCrashFault is returned by Serve when FaultPlan.CrashAt fired, so
// the wrapping binary can exit nonzero like a genuine crash would.
var ErrCrashFault = errors.New("shim: injected crash")

// ServeConfig configures a serving child.
type ServeConfig struct {
	// Lookup resolves the subject name from the parent's hello.
	// cmd/pshim wires registry.NewProgram here.
	Lookup func(name string) (subject.Program, error)
	// Fault optionally injects deterministic failures.
	Fault FaultPlan
}

// Serve runs the child side of the protocol until the peer closes the
// connection (returned as nil) or a fatal error occurs. It performs
// the magic + hello handshake, then answers EXEC frames forever. A
// failed subject lookup or version mismatch is reported to the peer
// in a FAIL frame before returning the error.
func Serve(r io.Reader, w io.Writer, cfg ServeConfig) error {
	if cfg.Lookup == nil {
		return fmt.Errorf("shim: ServeConfig.Lookup is nil")
	}
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	// The parent speaks first (magic + hello), the child responds
	// (magic + hello or fail). The strict turn order matters: with
	// unbuffered in-memory pipes two sides that both open by writing
	// would deadlock flushing at each other.
	if err := readMagic(br); err != nil {
		return err
	}
	var buf []byte
	typ, payload, err := readFrame(br, &buf)
	if err != nil {
		return err
	}
	if typ != fHello {
		return protoErrf("expected hello, got frame %q", typ)
	}
	hello, err := parseHello(payload)
	if err != nil {
		return err
	}
	if err := writeMagic(bw); err != nil {
		return err
	}
	if hello.Version != Version {
		return serveFail(bw, fmt.Errorf("shim: protocol version %d, want %d", hello.Version, Version))
	}
	prog, err := cfg.Lookup(hello.Name)
	if err != nil {
		return serveFail(bw, err)
	}
	var enc []byte
	enc = appendHello(enc[:0], helloMsg{
		Version: Version,
		Blocks:  uint32(prog.Blocks()),
		Name:    prog.Name(),
	})
	if err := writeFrame(bw, fHello, enc); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	execN := 0
	for {
		typ, payload, err := readFrame(br, &buf)
		if err == io.EOF {
			return nil // clean shutdown: parent closed our stdin
		}
		if err != nil {
			return err
		}
		if typ != fExec {
			return protoErrf("expected exec, got frame %q", typ)
		}
		ex, err := parseExec(payload)
		if err != nil {
			return err
		}
		execN++
		if cfg.Fault.HangAt == execN {
			// Stop responding: drain the connection until the parent
			// gives up and closes it (its deadline will kill us).
			if err := bw.Flush(); err != nil {
				return err
			}
			io.Copy(io.Discard, br) //nolint:errcheck // draining a doomed pipe
			return nil
		}
		if cfg.Fault.GarbageAt == execN {
			// Replace the response with bytes that cannot parse as a
			// frame, then keep serving: the parent will discard us.
			if _, err := bw.WriteString("\xff\xfe!!garbage!!\x00\x01"); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			continue
		}
		// The child always records everything: the parent filters by
		// replaying through its own tracer options.
		rec := subject.Execute(prog, ex.Input, trace.Options{
			Comparisons: true,
			Blocks:      true,
			ExecSteps:   int(ex.ExecSteps),
		})
		if cfg.Fault.CrashAt == execN {
			// Die mid-frame: announce a payload, deliver a fragment.
			var hdr [5]byte
			hdr[0] = fCmp
			hdr[1] = 100 // little-endian 100-byte payload, never delivered
			if _, err := bw.Write(hdr[:]); err != nil {
				return err
			}
			if _, err := bw.WriteString("\x01\x02\x03"); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			return ErrCrashFault
		}
		if err := writeRecord(bw, rec, &enc); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// serveFail reports err to the peer in a FAIL frame and returns it.
func serveFail(bw *bufio.Writer, err error) error {
	if werr := writeFrame(bw, fFail, []byte(err.Error())); werr != nil {
		return werr
	}
	if werr := bw.Flush(); werr != nil {
		return werr
	}
	return err
}

// writeRecord streams rec's events in sequence order — comparisons
// and EOF accesses as single frames, runs of consecutive block hits
// batched into one BLOCKS frame — followed by the RESULT frame. The
// three event lists each carry strictly increasing Seq numbers, so a
// three-way merge reproduces the exact interleaving; the parent
// replays it in frame order and recovers the same numbering without
// Seq ever being transmitted.
func writeRecord(bw *bufio.Writer, rec *trace.Record, enc *[]byte) error {
	ci, ei, bi := 0, 0, 0
	var ids []uint32
	for ci < len(rec.Comparisons) || ei < len(rec.EOFs) || bi < len(rec.Blocks) {
		// The smallest next sequence number among the non-block heads
		// bounds how far a block batch may run.
		limit := int(^uint(0) >> 1)
		if ci < len(rec.Comparisons) {
			limit = rec.Comparisons[ci].Seq
		}
		if ei < len(rec.EOFs) && rec.EOFs[ei].Seq < limit {
			limit = rec.EOFs[ei].Seq
		}
		if bi < len(rec.Blocks) && rec.Blocks[bi].Seq < limit {
			ids = ids[:0]
			for bi < len(rec.Blocks) && rec.Blocks[bi].Seq < limit {
				ids = append(ids, rec.Blocks[bi].ID)
				bi++
			}
			*enc = appendBlocks((*enc)[:0], ids)
			if err := writeFrame(bw, fBlocks, *enc); err != nil {
				return err
			}
			continue
		}
		if ci < len(rec.Comparisons) && (ei >= len(rec.EOFs) || rec.Comparisons[ci].Seq < rec.EOFs[ei].Seq) {
			c := &rec.Comparisons[ci]
			ci++
			*enc = appendCmp((*enc)[:0], cmpMsg{
				Kind:     c.Kind,
				Matched:  c.Matched,
				Stack:    uint32(c.Stack),
				Index:    uint32(c.Index),
				Last:     uint32(c.Last),
				Actual:   c.Actual,
				Expected: c.Expected,
			})
			if err := writeFrame(bw, fCmp, *enc); err != nil {
				return err
			}
			continue
		}
		e := &rec.EOFs[ei]
		ei++
		*enc = appendEOF((*enc)[:0], eofMsg{Stack: uint32(e.Stack), Index: int64(e.Index)})
		if err := writeFrame(bw, fEOF, *enc); err != nil {
			return err
		}
	}
	*enc = appendResult((*enc)[:0], resultMsg{
		Exit:      int32(rec.Exit),
		MaxAccess: int64(rec.MaxAccess),
		LenUsed:   rec.LenUsed,
		MaxDepth:  uint32(rec.MaxDepth),
	})
	return writeFrame(bw, fResult, *enc)
}
