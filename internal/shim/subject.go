// Subject adapts a Host to the subject.Program contract, so every
// engine — serial, concurrent, speculative pipeline — drives an
// out-of-process subject through the interface it already knows. The
// trace replay goes through the public trace.Tracer methods only:
// sequence numbers, the path hash, block first-hit order, stack
// depths and the prefix-decided verdict are recomputed by the
// parent's own tracer under the parent's own recording options, which
// is what makes the result bit-identical to an in-process run for
// any option set (engines record comparisons only, the conformance
// kit records everything, the AFL baseline records edges only).
package shim

import (
	"pfuzzer/internal/registry"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/taint"
	"pfuzzer/internal/trace"
)

// Subject is the parent-side stand-in for the out-of-process program.
// It is stateless; concurrent Run calls each acquire their own child
// from the shared Host, satisfying the registry's concurrent-Program
// contract.
type Subject struct {
	h *Host
}

// Subject returns the host's subject.Program adapter.
func (h *Host) Subject() *Subject { return &Subject{h: h} }

// Name returns the subject name the children echoed.
func (s *Subject) Name() string { return s.h.SubjectName() }

// Blocks returns the instrumented block count the children reported.
func (s *Subject) Blocks() int { return s.h.Blocks() }

// Run executes the input in a child process and replays the returned
// trace into t. A lost execution — crash, hang, no child available —
// marks the run undecided (so no deciding prefix can be memoised
// from the substitute verdict) and returns the corresponding harness
// exit status; every engine treats those as rejections and the
// campaign continues.
func (s *Subject) Run(t *trace.Tracer) int {
	// RawInput, not Input: the parent harness forwarding bytes must
	// not mark the run length-dependent — only the child's own reads
	// decide that, and the result frame carries the verdict back.
	p, outcome := s.h.exec(t.RawInput(), t.ExecSteps(0))
	switch outcome {
	case OutcomeCrash:
		t.MarkUndecided()
		return subject.ExitCrash
	case OutcomeHang:
		t.MarkUndecided()
		return subject.ExitHang
	case OutcomeUnavailable:
		t.MarkUndecided()
		return subject.ExitUnavailable
	}
	replay(t, p)
	exit := int(p.res.Exit)
	s.h.release(p)
	return exit
}

// setStack adjusts the tracer's instrumented stack depth to d with
// Enter/Leave calls, so each replayed event records the stack the
// child observed.
func setStack(t *trace.Tracer, d int) {
	for t.Depth() < d {
		t.Enter()
	}
	for t.Depth() > d {
		t.Leave()
	}
}

// replay feeds the buffered events through t's public API in child
// order. Comparisons are re-performed, not transcribed: the tracer
// recomputes Matched, re-arenas the payload bytes, and assigns
// sequence numbers under its own options, exactly as an in-process
// subject would have.
func replay(t *trace.Tracer, p *proc) {
	var ts taint.String
	for i := range p.ops {
		o := &p.ops[i]
		switch o.kind {
		case opBlocks:
			for _, id := range o.blocks {
				t.Block(id)
			}
		case opEOF:
			setStack(t, int(o.eof.Stack))
			t.At(int(o.eof.Index))
		case opCmp:
			m := &o.cmp
			setStack(t, int(m.Stack))
			switch m.Kind {
			case trace.CmpCharEq:
				t.CharEq(taint.Char{B: m.Actual[0], Origin: int(m.Index)}, m.Expected[0])
			case trace.CmpCharRange:
				t.CharRange(taint.Char{B: m.Actual[0], Origin: int(m.Index)}, m.Expected[0], m.Expected[1])
			case trace.CmpCharSet:
				t.CharSet(taint.Char{B: m.Actual[0], Origin: int(m.Index)}, string(m.Expected))
			case trace.CmpStrEq:
				// Reconstruct a taint.String whose FirstOrigin and
				// LastOrigin are the transmitted span; the middle
				// characters' origins are not recorded by StrEq, so
				// NoOrigin reproduces the identical comparison.
				ts = ts[:0]
				for _, b := range m.Actual {
					ts = append(ts, taint.Char{B: b, Origin: taint.NoOrigin})
				}
				ts[0].Origin = int(m.Index)
				ts[len(ts)-1].Origin = int(m.Last)
				t.StrEq(ts, string(m.Expected))
			}
		}
	}
	res := &p.res
	// Reproduce the deciding-prefix inputs: one in-bounds read at the
	// child's high-water offset, one length consultation if the child
	// made any.
	if res.MaxAccess >= 0 {
		t.At(int(res.MaxAccess))
	}
	if res.LenUsed {
		t.Len()
	}
	// Raise the high-water stack mark to the child's, then unwind.
	for t.Depth() < int(res.MaxDepth) {
		t.Enter()
	}
	setStack(t, 0)
}

// WrapEntry returns a copy of base whose constructor yields the
// host's out-of-process adapter instead of the in-process program.
// Inventory, tokenizer and mining lexer are kept: they describe the
// input language, not the execution vehicle. The conformance kit run
// over a wrapped entry is the acceptance test for the whole shim
// stack.
func WrapEntry(base registry.Entry, h *Host) registry.Entry {
	out := base
	out.New = func() subject.Program { return h.Subject() }
	return out
}
