package shim

import (
	"testing"
	"time"

	"pfuzzer/internal/core"
	"pfuzzer/internal/registry"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

// execOnce runs one traced execution of s and returns the record.
func execOnce(s *Subject, input string) *trace.Record {
	return subject.Execute(s, []byte(input), trace.Full())
}

// TestCrashRecovery: a child dying mid-frame costs exactly the
// execution it was running — reported as ExitCrash, force-undecided,
// with an empty trace — and the next execution transparently runs on
// a freshly spawned child.
func TestCrashRecovery(t *testing.T) {
	h := newPipeHost(t, "expr", FaultPlan{CrashAt: 2},
		Options{RestartBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	s := h.Subject()
	var exits []int
	for i := 0; i < 6; i++ {
		rec := execOnce(s, "1+1")
		exits = append(exits, rec.Exit)
		if rec.Exit == subject.ExitCrash {
			if len(rec.Comparisons) != 0 || len(rec.Blocks) != 0 {
				t.Errorf("exec %d: crashed execution leaked %d comparisons, %d blocks",
					i, len(rec.Comparisons), len(rec.Blocks))
			}
			if _, ok := rec.DecidedPrefix(); ok {
				t.Errorf("exec %d: crashed execution claims a deciding prefix — cache poison", i)
			}
		}
	}
	// Every child crashes at its 2nd execution: ok, crash, ok, crash...
	want := []int{0, subject.ExitCrash, 0, subject.ExitCrash, 0, subject.ExitCrash}
	for i := range want {
		if exits[i] != want[i] {
			t.Fatalf("exit sequence %v, want %v", exits, want)
		}
	}
	st := h.Stats()
	if st.Crashes != 3 || st.Spawns < 3 || st.Tripped {
		t.Errorf("stats after alternating crashes: %+v", st)
	}
}

// TestHangRecovery: a child that stops answering is killed at the
// per-exec deadline, the execution reports ExitHang, and the campaign
// position after it runs on a fresh child.
func TestHangRecovery(t *testing.T) {
	h := newPipeHost(t, "expr", FaultPlan{HangAt: 2},
		Options{ExecTimeout: 100 * time.Millisecond, RestartBackoff: time.Millisecond})
	s := h.Subject()
	if rec := execOnce(s, "1+1"); rec.Exit != 0 {
		t.Fatalf("healthy exec: exit %d", rec.Exit)
	}
	rec := execOnce(s, "1+1")
	if rec.Exit != subject.ExitHang {
		t.Fatalf("hanging exec: exit %d, want ExitHang", rec.Exit)
	}
	if _, ok := rec.DecidedPrefix(); ok {
		t.Errorf("hung execution claims a deciding prefix")
	}
	if rec := execOnce(s, "1+1"); rec.Exit != 0 {
		t.Fatalf("exec after hang: exit %d", rec.Exit)
	}
	st := h.Stats()
	if st.Hangs != 1 || st.Crashes != 0 {
		t.Errorf("stats after one hang: %+v", st)
	}
}

// TestGarbageFrames: undecodable bytes from the child are a protocol
// loss, not a misparse — the execution fails recoverably and the
// child is replaced.
func TestGarbageFrames(t *testing.T) {
	h := newPipeHost(t, "expr", FaultPlan{GarbageAt: 2},
		Options{RestartBackoff: time.Millisecond})
	s := h.Subject()
	if rec := execOnce(s, "1+1"); rec.Exit != 0 {
		t.Fatalf("healthy exec: exit %d", rec.Exit)
	}
	rec := execOnce(s, "1+1")
	if rec.Exit != subject.ExitCrash {
		t.Fatalf("garbage exec: exit %d, want ExitCrash", rec.Exit)
	}
	if rec := execOnce(s, "1+1"); rec.Exit != 0 {
		t.Fatalf("exec after garbage: exit %d", rec.Exit)
	}
	st := h.Stats()
	if st.Protocol == 0 {
		t.Errorf("garbage frames not counted as protocol losses: %+v", st)
	}
}

// TestCircuitBreaker: consecutive failures trip the breaker after
// MaxFailures; afterwards executions fail fast as unavailable, with
// no further spawn attempts.
func TestCircuitBreaker(t *testing.T) {
	h := newPipeHost(t, "expr", FaultPlan{CrashAt: 1},
		Options{MaxFailures: 4, RestartBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	s := h.Subject()
	var crashes, unavailable int
	for i := 0; i < 10; i++ {
		switch rec := execOnce(s, "1+1"); rec.Exit {
		case subject.ExitCrash:
			crashes++
		case subject.ExitUnavailable:
			unavailable++
		default:
			t.Fatalf("exec %d: exit %d", i, rec.Exit)
		}
	}
	if crashes != 4 || unavailable != 6 {
		t.Errorf("4 crashes then 6 unavailable expected, got %d and %d", crashes, unavailable)
	}
	st := h.Stats()
	if !st.Tripped {
		t.Errorf("breaker did not trip: %+v", st)
	}
	if st.Spawns != 4 {
		t.Errorf("breaker kept spawning: %d spawns, want 4", st.Spawns)
	}
}

// TestCampaignSurvivesCrashes is the recovery half of the acceptance
// criteria: with every child dying at its 7th execution, a full
// campaign keeps restarting children, keeps making progress, and
// still emits valid inputs.
func TestCampaignSurvivesCrashes(t *testing.T) {
	e, ok := registry.Get("expr")
	if !ok {
		t.Fatal("expr not registered")
	}
	h := newPipeHost(t, "expr", FaultPlan{CrashAt: 7},
		Options{RestartBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	res := core.New(WrapEntry(e, h).New(), core.Config{Seed: 1, MaxExecs: 500}).Run()
	st := h.Stats()
	if st.Crashes == 0 || st.Spawns < 2 {
		t.Fatalf("fault plan did not fire: %+v", st)
	}
	if st.Tripped {
		t.Errorf("interleaved crashes tripped the breaker: %+v", st)
	}
	if len(res.Valids) == 0 {
		t.Errorf("campaign made no progress through %d crashes (%d execs)", st.Crashes, res.Execs)
	}
}

// TestCampaignSurvivesHangs: same acceptance for the deadline path.
func TestCampaignSurvivesHangs(t *testing.T) {
	e, ok := registry.Get("expr")
	if !ok {
		t.Fatal("expr not registered")
	}
	h := newPipeHost(t, "expr", FaultPlan{HangAt: 9},
		Options{ExecTimeout: 50 * time.Millisecond, RestartBackoff: time.Millisecond})
	res := core.New(WrapEntry(e, h).New(), core.Config{Seed: 1, MaxExecs: 60}).Run()
	st := h.Stats()
	if st.Hangs == 0 {
		t.Fatalf("fault plan did not fire: %+v", st)
	}
	if len(res.Valids) == 0 {
		t.Errorf("campaign made no progress through %d hangs (%d execs)", st.Hangs, res.Execs)
	}
}

// TestCampaignSurvivesBreakerTrip: even a permanently broken subject
// — every execution crashes until the breaker opens — ends the
// campaign cleanly instead of aborting or hanging it.
func TestCampaignSurvivesBreakerTrip(t *testing.T) {
	e, ok := registry.Get("expr")
	if !ok {
		t.Fatal("expr not registered")
	}
	h := newPipeHost(t, "expr", FaultPlan{CrashAt: 1},
		Options{MaxFailures: 4, RestartBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	res := core.New(WrapEntry(e, h).New(), core.Config{Seed: 1, MaxExecs: 100}).Run()
	if !h.Stats().Tripped {
		t.Fatalf("breaker never tripped: %+v", h.Stats())
	}
	if len(res.Valids) != 0 {
		t.Errorf("campaign emitted %d valids from a subject that never answered", len(res.Valids))
	}
}

// TestSubprocessCrashRecovery: the crash path against a real child
// process — the reexec'd test binary writes a partial frame and
// exits — exercising OS pipes, process death detection and reaping.
func TestSubprocessCrashRecovery(t *testing.T) {
	h, err := NewHost(reexecLauncher(t, FaultPlan{CrashAt: 2}),
		Options{Subject: "expr", RestartBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	defer h.Close()
	s := h.Subject()
	if rec := execOnce(s, "1+1"); rec.Exit != 0 {
		t.Fatalf("healthy exec: exit %d", rec.Exit)
	}
	if rec := execOnce(s, "1+1"); rec.Exit != subject.ExitCrash {
		t.Fatalf("crashing exec: exit %d, want ExitCrash", rec.Exit)
	}
	if rec := execOnce(s, "1+1"); rec.Exit != 0 {
		t.Fatalf("exec after subprocess crash: exit %d", rec.Exit)
	}
	if st := h.Stats(); st.Crashes != 1 || st.Spawns != 2 {
		t.Errorf("stats after one subprocess crash: %+v", st)
	}
}
