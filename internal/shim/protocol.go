// Message payload encoding. All integers are little-endian;
// variable-length byte strings are length-prefixed. Sequence numbers
// are never transmitted: the trace's event order is the frame order,
// and the parent reproduces the exact sequence numbering by replaying
// the events through the public trace.Tracer API under its own
// recording options.
package shim

import (
	"encoding/binary"

	"pfuzzer/internal/trace"
)

// helloMsg opens the session in both directions: the parent announces
// the protocol version and the subject it wants, the child echoes the
// version and name and reports the subject's instrumented block
// count (zero in the parent's direction).
type helloMsg struct {
	Version uint32
	Blocks  uint32
	Name    string
}

// execMsg asks the child to run one execution. ExecSteps forwards the
// parent tracer's interpreter-step budget (0 = subject default).
type execMsg struct {
	ExecSteps uint32
	Input     []byte
}

// cmpMsg is one recorded comparison. Matched is transmitted only so
// the parent can cross-check the replayed recomputation; a mismatch
// is a protocol error, never a silent divergence.
type cmpMsg struct {
	Kind     trace.CmpKind
	Matched  bool
	Stack    uint32
	Index    uint32
	Last     uint32
	Actual   []byte
	Expected []byte
}

// eofMsg is one attempted read at or past the end of the input.
// Index is signed: subjects may probe negative offsets.
type eofMsg struct {
	Stack uint32
	Index int64
}

// resultMsg closes one execution: the exit status plus the
// deciding-prefix inputs (largest in-bounds offset read, whether the
// total length was consulted) and the maximum instrumented stack
// depth, which the parent replays so Record.Decided and MaxDepth come
// out bit-identical.
type resultMsg struct {
	Exit      int32
	MaxAccess int64
	LenUsed   bool
	MaxDepth  uint32
}

// limits the parent enforces while decoding, so a berserk child can
// cost at most bounded memory and replay time.
const (
	maxStack  = 1 << 20
	maxDepthL = 1 << 20
	maxOps    = 1 << 22
)

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

// cursor is a bounds-checked little-endian payload reader. The first
// short read latches err; every later read returns zero values.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = protoErrf("truncated payload")
	}
}

func (c *cursor) u8() byte {
	if c.err != nil || len(c.b) < 1 {
		c.fail()
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil || len(c.b) < 4 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || len(c.b) < 8 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

func (c *cursor) bytes() []byte {
	n := c.u32()
	if c.err != nil || uint32(len(c.b)) < n {
		c.fail()
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

// done checks that the payload was consumed exactly.
func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return protoErrf("%d trailing payload bytes", len(c.b))
	}
	return nil
}

func appendHello(dst []byte, m helloMsg) []byte {
	dst = appendU32(dst, m.Version)
	dst = appendU32(dst, m.Blocks)
	return appendBytes(dst, []byte(m.Name))
}

func parseHello(p []byte) (helloMsg, error) {
	c := cursor{b: p}
	m := helloMsg{Version: c.u32(), Blocks: c.u32(), Name: string(c.bytes())}
	return m, c.done()
}

func appendExec(dst []byte, m execMsg) []byte {
	dst = appendU32(dst, m.ExecSteps)
	return appendBytes(dst, m.Input)
}

func parseExec(p []byte) (execMsg, error) {
	c := cursor{b: p}
	m := execMsg{ExecSteps: c.u32(), Input: c.bytes()}
	return m, c.done()
}

func appendCmp(dst []byte, m cmpMsg) []byte {
	dst = append(dst, byte(m.Kind))
	var flags byte
	if m.Matched {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = appendU32(dst, m.Stack)
	dst = appendU32(dst, m.Index)
	dst = appendU32(dst, m.Last)
	dst = appendBytes(dst, m.Actual)
	return appendBytes(dst, m.Expected)
}

func parseCmp(p []byte) (cmpMsg, error) {
	c := cursor{b: p}
	m := cmpMsg{
		Kind:    trace.CmpKind(c.u8()),
		Matched: c.u8()&1 != 0,
		Stack:   c.u32(),
		Index:   c.u32(),
		Last:    c.u32(),
	}
	m.Actual = c.bytes()
	m.Expected = c.bytes()
	if err := c.done(); err != nil {
		return m, err
	}
	return m, validateCmp(&m)
}

// validateCmp enforces the invariants the replay relies on, including
// that the transmitted Matched bit agrees with the comparison the
// parent is about to recompute — any disagreement means the trace
// could not have come from the comparison it claims to be.
func validateCmp(m *cmpMsg) error {
	if m.Stack > maxStack {
		return protoErrf("comparison stack %d exceeds limit", m.Stack)
	}
	var matched bool
	switch m.Kind {
	case trace.CmpCharEq, trace.CmpCharRange, trace.CmpCharSet:
		if len(m.Actual) != 1 {
			return protoErrf("%v comparison with %d actual bytes", m.Kind, len(m.Actual))
		}
		if m.Last != m.Index {
			return protoErrf("%v comparison spanning %d..%d", m.Kind, m.Index, m.Last)
		}
		b := m.Actual[0]
		switch m.Kind {
		case trace.CmpCharEq:
			if len(m.Expected) != 1 {
				return protoErrf("char== with %d expected bytes", len(m.Expected))
			}
			matched = b == m.Expected[0]
		case trace.CmpCharRange:
			if len(m.Expected) != 2 {
				return protoErrf("range with %d expected bytes", len(m.Expected))
			}
			matched = b >= m.Expected[0] && b <= m.Expected[1]
		default: // CmpCharSet
			for _, s := range m.Expected {
				if s == b {
					matched = true
					break
				}
			}
		}
	case trace.CmpStrEq:
		if len(m.Actual) == 0 {
			return protoErrf("strcmp with empty actual")
		}
		if m.Last < m.Index {
			return protoErrf("strcmp spanning %d..%d", m.Index, m.Last)
		}
		if len(m.Actual) == 1 && m.Last != m.Index {
			return protoErrf("single-char strcmp spanning %d..%d", m.Index, m.Last)
		}
		matched = string(m.Actual) == string(m.Expected)
	default:
		return protoErrf("unknown comparison kind %d", m.Kind)
	}
	if matched != m.Matched {
		return protoErrf("%v comparison claims matched=%v, recomputes %v", m.Kind, m.Matched, matched)
	}
	return nil
}

func appendEOF(dst []byte, m eofMsg) []byte {
	dst = appendU32(dst, m.Stack)
	return appendU64(dst, uint64(m.Index))
}

func parseEOF(p []byte) (eofMsg, error) {
	c := cursor{b: p}
	m := eofMsg{Stack: c.u32(), Index: int64(c.u64())}
	if err := c.done(); err != nil {
		return m, err
	}
	if m.Stack > maxStack {
		return m, protoErrf("EOF stack %d exceeds limit", m.Stack)
	}
	return m, nil
}

func appendBlocks(dst []byte, ids []uint32) []byte {
	dst = appendU32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = appendU32(dst, id)
	}
	return dst
}

// parseBlocks appends the batch's block IDs to dst and returns the
// extended slice, so the caller can arena the IDs without an
// intermediate allocation.
func parseBlocks(p []byte, dst []uint32) ([]uint32, error) {
	c := cursor{b: p}
	n := c.u32()
	if c.err == nil && uint32(len(c.b)) != 4*n {
		c.fail()
	}
	for i := uint32(0); i < n && c.err == nil; i++ {
		dst = append(dst, c.u32())
	}
	return dst, c.err
}

func appendResult(dst []byte, m resultMsg) []byte {
	dst = appendU32(dst, uint32(m.Exit))
	dst = appendU64(dst, uint64(m.MaxAccess))
	var flags byte
	if m.LenUsed {
		flags |= 1
	}
	dst = append(dst, flags)
	return appendU32(dst, m.MaxDepth)
}

func parseResult(p []byte) (resultMsg, error) {
	c := cursor{b: p}
	m := resultMsg{Exit: int32(c.u32()), MaxAccess: int64(c.u64())}
	m.LenUsed = c.u8()&1 != 0
	m.MaxDepth = c.u32()
	if err := c.done(); err != nil {
		return m, err
	}
	if m.MaxDepth > maxDepthL {
		return m, protoErrf("result max depth %d exceeds limit", m.MaxDepth)
	}
	return m, nil
}
