// Parent side of the protocol: a Host owns a pool of connected
// children and turns their failures — crash, hang, garbage, refusal
// to spawn — into per-execution outcomes the engines already know how
// to absorb. One Host serves any number of concurrent workers (the
// concurrent campaign engine shares one Program across its executor
// pool), growing the child pool on demand and retiring children
// beyond MaxIdle.
package shim

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies one out-of-process execution attempt.
type Outcome uint8

const (
	// OutcomeOK: the child answered with a complete trace and result.
	OutcomeOK Outcome = iota
	// OutcomeCrash: the child died or spoke garbage mid-execution.
	OutcomeCrash
	// OutcomeHang: the execution overran ExecTimeout and was killed.
	OutcomeHang
	// OutcomeUnavailable: no child could be obtained (circuit breaker
	// open, spawn failure, or host closed).
	OutcomeUnavailable
)

// Options configures a Host. The zero value of every field except
// Subject picks a sensible default.
type Options struct {
	// Subject is the subject name requested in the handshake. Required.
	Subject string
	// ExecTimeout bounds one execution round-trip; a child that takes
	// longer is killed and the execution reported as a hang.
	// Default 2s.
	ExecTimeout time.Duration
	// HandshakeTimeout bounds spawn-to-hello. Default 5s.
	HandshakeTimeout time.Duration
	// RestartBackoff is the delay before the first respawn after a
	// failure; it doubles per consecutive failure up to MaxBackoff.
	// Defaults 10ms and 1s.
	RestartBackoff time.Duration
	MaxBackoff     time.Duration
	// MaxFailures trips the circuit breaker: after this many
	// consecutive failed executions or spawns the Host stops spawning
	// and reports every execution unavailable. Default 16.
	MaxFailures int
	// MaxIdle caps the pool of connected idle children. Default 8.
	MaxIdle int
}

func (o *Options) fill() {
	if o.ExecTimeout <= 0 {
		o.ExecTimeout = 2 * time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.RestartBackoff <= 0 {
		o.RestartBackoff = 10 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.MaxFailures <= 0 {
		o.MaxFailures = 16
	}
	if o.MaxIdle <= 0 {
		o.MaxIdle = 8
	}
}

// Stats is a snapshot of a Host's lifetime counters.
type Stats struct {
	// Execs counts execution attempts that reached a child.
	Execs uint64
	// Crashes counts executions lost to a dying child, Protocol those
	// lost to undecodable frames, Hangs those killed at the deadline,
	// Unavailable those refused without reaching a child.
	Crashes     uint64
	Protocol    uint64
	Hangs       uint64
	Unavailable uint64
	// Spawns and SpawnFails count child launches.
	Spawns     uint64
	SpawnFails uint64
	// Tripped reports whether the circuit breaker has opened.
	Tripped bool
}

var (
	errClosed  = errors.New("shim: host closed")
	errTripped = errors.New("shim: circuit breaker open")
)

// opKind discriminates buffered trace events.
type opKind uint8

const (
	opCmp opKind = iota
	opEOF
	opBlocks
)

// op is one decoded trace event, buffered until the full execution
// has arrived: a child that dies mid-stream must leave the parent's
// tracer untouched, not holding a pipe-buffering-dependent partial
// trace.
type op struct {
	kind   opKind
	cmp    cmpMsg
	eof    eofMsg
	blocks []uint32
}

// proc is one connected child plus the parent-side per-execution
// scratch. A proc is owned by exactly one worker between acquire and
// release, so none of this needs locking.
type proc struct {
	conn *Conn
	bw   *bufio.Writer
	br   *bufio.Reader

	frameBuf []byte
	enc      []byte
	ops      []op
	arena    []byte   // backs the buffered comparisons' Actual/Expected
	idArena  []uint32 // backs the buffered block batches
	res      resultMsg

	// fired is set by the watchdog just before it kills the child, so
	// a failed round-trip can be classified hang vs crash. dead marks
	// a proc whose deadline fired concurrently with a successful
	// result: the reply is valid but the child is gone.
	fired atomic.Bool
	dead  bool
}

// arenaCopy copies b into the proc's byte arena and returns a stable
// view. Growth reallocates the backing array but previously returned
// views keep pointing into the old one, so they stay valid until the
// next execution resets the arena.
func (p *proc) arenaCopy(b []byte) []byte {
	n := len(p.arena)
	p.arena = append(p.arena, b...)
	return p.arena[n : n+len(b) : n+len(b)]
}

// roundTrip sends one EXEC and buffers the child's decoded, validated
// reply into the proc's scratch. On any error the scratch must be
// considered garbage; the tracer has not been touched.
func (p *proc) roundTrip(input []byte, execSteps int) error {
	p.ops = p.ops[:0]
	p.arena = p.arena[:0]
	p.idArena = p.idArena[:0]
	p.enc = appendExec(p.enc[:0], execMsg{ExecSteps: uint32(execSteps), Input: input})
	if err := writeFrame(p.bw, fExec, p.enc); err != nil {
		return err
	}
	if err := p.bw.Flush(); err != nil {
		return err
	}
	nops := 0
	for {
		typ, payload, err := readFrame(p.br, &p.frameBuf)
		if err != nil {
			if err == io.EOF {
				// Clean close mid-execution is still a lost execution.
				return io.ErrUnexpectedEOF
			}
			return err
		}
		if nops++; nops > maxOps {
			return protoErrf("more than %d trace events in one execution", maxOps)
		}
		switch typ {
		case fCmp:
			m, err := parseCmp(payload)
			if err != nil {
				return err
			}
			if int64(m.Last) >= int64(len(input)) {
				return protoErrf("comparison offset %d beyond input length %d", m.Last, len(input))
			}
			m.Actual = p.arenaCopy(m.Actual)
			m.Expected = p.arenaCopy(m.Expected)
			p.ops = append(p.ops, op{kind: opCmp, cmp: m})
		case fEOF:
			m, err := parseEOF(payload)
			if err != nil {
				return err
			}
			if m.Index >= 0 && m.Index < int64(len(input)) {
				return protoErrf("EOF access at in-bounds offset %d", m.Index)
			}
			p.ops = append(p.ops, op{kind: opEOF, eof: m})
		case fBlocks:
			n := len(p.idArena)
			ids, err := parseBlocks(payload, p.idArena)
			if err != nil {
				return err
			}
			p.idArena = ids
			p.ops = append(p.ops, op{kind: opBlocks, blocks: p.idArena[n:len(p.idArena):len(p.idArena)]})
		case fResult:
			m, err := parseResult(payload)
			if err != nil {
				return err
			}
			if m.MaxAccess < -1 || m.MaxAccess >= int64(len(input)) {
				return protoErrf("result max access %d outside input length %d", m.MaxAccess, len(input))
			}
			p.res = m
			return nil
		case fFail:
			return protoErrf("child failed: %s", payload)
		default:
			return protoErrf("unexpected frame %q", typ)
		}
	}
}

// Host manages the child pool for one shimmed subject.
type Host struct {
	launcher Launcher
	opts     Options

	mu       sync.Mutex
	name     string
	blocks   int
	idle     []*proc
	procs    map[*proc]bool // every live child, for Close
	closed   bool
	tripped  bool
	failures int // consecutive, reset on success
	backoff  time.Duration
	stats    Stats
}

// NewHost connects to one child eagerly — learning the subject's
// echoed name and block count, and failing fast on a launcher or
// handshake problem — and returns a Host ready for concurrent use.
func NewHost(l Launcher, opts Options) (*Host, error) {
	if opts.Subject == "" {
		return nil, fmt.Errorf("shim: Options.Subject is empty")
	}
	opts.fill()
	h := &Host{launcher: l, opts: opts, procs: map[*proc]bool{}}
	p, err := h.spawn()
	if err != nil {
		return nil, fmt.Errorf("shim: initial spawn: %w", err)
	}
	h.mu.Lock()
	h.stats.Spawns++
	h.procs[p] = true
	h.idle = append(h.idle, p)
	h.mu.Unlock()
	return h, nil
}

// SubjectName returns the subject name the children echoed.
func (h *Host) SubjectName() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.name
}

// Blocks returns the instrumented block count the children reported.
func (h *Host) Blocks() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.blocks
}

// Stats returns a snapshot of the lifetime counters.
func (h *Host) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// spawn launches and handshakes one child under HandshakeTimeout.
func (h *Host) spawn() (*proc, error) {
	conn, err := h.launcher.Launch()
	if err != nil {
		return nil, err
	}
	p := &proc{conn: conn, bw: bufio.NewWriter(conn.W), br: bufio.NewReader(conn.R)}
	tm := time.AfterFunc(h.opts.HandshakeTimeout, func() {
		p.fired.Store(true)
		conn.Kill()
	})
	err = h.handshake(p)
	tm.Stop()
	if err != nil {
		conn.Kill()
		conn.Wait() //nolint:errcheck // child already failed; reap only
		if p.fired.Load() {
			return nil, fmt.Errorf("shim: handshake timed out after %v", h.opts.HandshakeTimeout)
		}
		return nil, err
	}
	return p, nil
}

func (h *Host) handshake(p *proc) error {
	if err := writeMagic(p.bw); err != nil {
		return err
	}
	p.enc = appendHello(p.enc[:0], helloMsg{Version: Version, Name: h.opts.Subject})
	if err := writeFrame(p.bw, fHello, p.enc); err != nil {
		return err
	}
	if err := p.bw.Flush(); err != nil {
		return err
	}
	if err := readMagic(p.br); err != nil {
		return err
	}
	typ, payload, err := readFrame(p.br, &p.frameBuf)
	if err != nil {
		return err
	}
	if typ == fFail {
		return protoErrf("child refused: %s", payload)
	}
	if typ != fHello {
		return protoErrf("expected hello, got frame %q", typ)
	}
	m, err := parseHello(payload)
	if err != nil {
		return err
	}
	if m.Version != Version {
		return protoErrf("child protocol version %d, want %d", m.Version, Version)
	}
	if m.Name != h.opts.Subject {
		return protoErrf("child serves subject %q, want %q", m.Name, h.opts.Subject)
	}
	if m.Blocks == 0 {
		return protoErrf("child reports zero instrumented blocks")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.blocks == 0 {
		h.name, h.blocks = m.Name, int(m.Blocks)
	} else if h.blocks != int(m.Blocks) {
		return protoErrf("child reports %d blocks, earlier children reported %d", m.Blocks, h.blocks)
	}
	return nil
}

// acquire returns an exclusive child, spawning one (after the current
// backoff, when recovering from failures) if none is idle.
func (h *Host) acquire() (*proc, error) {
	h.mu.Lock()
	if h.closed {
		h.stats.Unavailable++
		h.mu.Unlock()
		return nil, errClosed
	}
	if h.tripped {
		h.stats.Unavailable++
		h.mu.Unlock()
		return nil, errTripped
	}
	if n := len(h.idle); n > 0 {
		p := h.idle[n-1]
		h.idle = h.idle[:n-1]
		h.mu.Unlock()
		return p, nil
	}
	var wait time.Duration
	if h.failures > 0 {
		wait = h.backoff
	}
	h.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
	p, err := h.spawn()
	h.mu.Lock()
	if err != nil {
		h.stats.SpawnFails++
		h.stats.Unavailable++
		h.noteFailureLocked()
		h.mu.Unlock()
		return nil, err
	}
	if h.closed {
		h.stats.Unavailable++
		h.mu.Unlock()
		p.conn.Kill()
		p.conn.Wait() //nolint:errcheck // reap only
		return nil, errClosed
	}
	h.stats.Spawns++
	h.procs[p] = true
	h.mu.Unlock()
	return p, nil
}

// noteFailureLocked advances the consecutive-failure counter, the
// restart backoff, and — at MaxFailures — trips the breaker.
func (h *Host) noteFailureLocked() {
	if h.failures == 0 {
		h.backoff = h.opts.RestartBackoff
	} else if h.backoff < h.opts.MaxBackoff {
		h.backoff *= 2
		if h.backoff > h.opts.MaxBackoff {
			h.backoff = h.opts.MaxBackoff
		}
	}
	h.failures++
	if h.failures >= h.opts.MaxFailures && !h.tripped {
		h.tripped = true
		h.stats.Tripped = true
	}
}

// release returns a child to the idle pool, or retires it when the
// pool is full, the host is closed, or its deadline fired.
func (h *Host) release(p *proc) {
	h.mu.Lock()
	if p.dead || h.closed || len(h.idle) >= h.opts.MaxIdle {
		delete(h.procs, p)
		h.mu.Unlock()
		p.conn.Kill()
		p.conn.Wait() //nolint:errcheck // reap only
		return
	}
	h.idle = append(h.idle, p)
	h.mu.Unlock()
}

// discard kills and reaps a failed child.
func (h *Host) discard(p *proc) {
	h.mu.Lock()
	delete(h.procs, p)
	h.mu.Unlock()
	p.conn.Kill()
	p.conn.Wait() //nolint:errcheck // reap only
}

// exec acquires a child and runs one execution on it under the
// per-exec deadline. On OutcomeOK the returned proc holds the decoded
// trace in its scratch; the caller must replay it and then release
// the proc. On any other outcome the proc has already been disposed
// of and the returned proc is nil.
func (h *Host) exec(input []byte, execSteps int) (*proc, Outcome) {
	p, err := h.acquire()
	if err != nil {
		return nil, OutcomeUnavailable
	}
	p.fired.Store(false)
	tm := time.AfterFunc(h.opts.ExecTimeout, func() {
		p.fired.Store(true)
		p.conn.Kill()
	})
	rerr := p.roundTrip(input, execSteps)
	stopped := tm.Stop()
	h.mu.Lock()
	h.stats.Execs++
	if rerr == nil {
		h.failures = 0
		h.mu.Unlock()
		// If the deadline fired concurrently with completion the
		// result is valid but the child is dying; release retires it.
		p.dead = !stopped
		return p, OutcomeOK
	}
	hang := p.fired.Load()
	switch {
	case hang:
		h.stats.Hangs++
	case errors.Is(rerr, errProto):
		h.stats.Protocol++
	default:
		h.stats.Crashes++
	}
	if !h.closed {
		h.noteFailureLocked()
	}
	h.mu.Unlock()
	h.discard(p)
	if hang {
		return nil, OutcomeHang
	}
	return nil, OutcomeCrash
}

// Close kills and reaps every child, idle or in flight. In-flight
// executions fail over to OutcomeCrash/OutcomeUnavailable without
// affecting the breaker. Close is idempotent.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	procs := make([]*proc, 0, len(h.procs))
	for p := range h.procs {
		procs = append(procs, p)
	}
	h.procs = map[*proc]bool{}
	h.idle = nil
	h.mu.Unlock()
	for _, p := range procs {
		p.conn.Kill()
	}
	for _, p := range procs {
		p.conn.Wait() //nolint:errcheck // reap only
	}
}
