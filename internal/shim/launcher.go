// Launchers produce connected children. CmdLauncher spawns a real
// subprocess (cmd/pshim or any binary speaking the protocol);
// PipeLauncher runs a Serve function over in-memory pipes, giving
// tests the full protocol path without fork/exec nondeterminism.
package shim

import (
	"io"
	"os"
	"os/exec"
	"sync"
)

// Conn is one connected child: the parent writes frames to W, reads
// frames from R, and can Kill the child at any time (idempotent,
// callable concurrently with reads — the watchdog uses it). Wait
// blocks until the child is fully reaped and returns its terminal
// error; it must only be called after Kill or after W is closed.
type Conn struct {
	W    io.WriteCloser
	R    io.Reader
	Kill func()
	Wait func() error
}

// Launcher produces connected children, one per Launch call.
type Launcher interface {
	Launch() (*Conn, error)
}

// CmdLauncher launches a subprocess and connects to its stdio.
type CmdLauncher struct {
	// Path is the binary to execute.
	Path string
	// Args are the command-line arguments (not including Path).
	Args []string
	// Env optionally replaces the child's environment.
	Env []string
	// Stderr receives the child's stderr (default os.Stderr).
	Stderr io.Writer
}

// Launch starts the subprocess.
func (l CmdLauncher) Launch() (*Conn, error) {
	cmd := exec.Command(l.Path, l.Args...)
	if l.Env != nil {
		cmd.Env = l.Env
	}
	if l.Stderr != nil {
		cmd.Stderr = l.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			stdin.Close()      //nolint:errcheck // already tearing down
			cmd.Process.Kill() //nolint:errcheck // already tearing down
		})
	}
	var waitOnce sync.Once
	var werr error
	wait := func() error {
		waitOnce.Do(func() { werr = cmd.Wait() })
		return werr
	}
	return &Conn{W: stdin, R: stdout, Kill: kill, Wait: wait}, nil
}

// PipeLauncher runs Serve in a goroutine over in-memory pipes. It is
// the deterministic stand-in for a subprocess: same protocol, same
// lifecycle (Kill closes both pipe ends, unblocking the goroutine),
// no fork/exec.
type PipeLauncher struct {
	Serve func(r io.Reader, w io.Writer) error
}

// Launch connects a new serving goroutine.
func (l PipeLauncher) Launch() (*Conn, error) {
	childR, parentW := io.Pipe()
	parentR, childW := io.Pipe()
	done := make(chan struct{})
	var serr error
	go func() {
		defer close(done)
		serr = l.Serve(childR, childW)
		childW.Close() //nolint:errcheck // io.Pipe Close never fails
		childR.Close() //nolint:errcheck // io.Pipe Close never fails
	}()
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			parentW.Close() //nolint:errcheck // io.Pipe Close never fails
			parentR.Close() //nolint:errcheck // io.Pipe Close never fails
		})
	}
	wait := func() error {
		<-done
		return serr
	}
	return &Conn{W: parentW, R: parentR, Kill: kill, Wait: wait}, nil
}
