package shim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"pfuzzer/internal/trace"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		var b bytes.Buffer
		if err := writeFrame(&b, fExec, p); err != nil {
			t.Fatalf("writeFrame(%d bytes): %v", len(p), err)
		}
		var buf []byte
		typ, got, err := readFrame(&b, &buf)
		if err != nil {
			t.Fatalf("readFrame(%d bytes): %v", len(p), err)
		}
		if typ != fExec || !bytes.Equal(got, p) {
			t.Errorf("round trip of %d bytes: type %q payload %q", len(p), typ, got)
		}
		if b.Len() != 0 {
			t.Errorf("round trip of %d bytes left %d trailing", len(p), b.Len())
		}
	}
}

// TestFrameTruncation cuts an encoded frame at every possible byte
// boundary: only the zero-length cut is a clean EOF, everything else
// must surface as an unexpected EOF, never a misparse.
func TestFrameTruncation(t *testing.T) {
	var b bytes.Buffer
	if err := writeFrame(&b, fCmp, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	whole := b.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		var buf []byte
		_, _, err := readFrame(bytes.NewReader(whole[:cut]), &buf)
		if cut == 0 {
			if err != io.EOF {
				t.Errorf("cut at 0: got %v, want io.EOF", err)
			}
			continue
		}
		if err != io.ErrUnexpectedEOF {
			t.Errorf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameBadCRC(t *testing.T) {
	var b bytes.Buffer
	if err := writeFrame(&b, fCmp, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	whole := b.Bytes()
	// Flip one bit in every payload and CRC position; each must fail
	// as a protocol error.
	for i := 5; i < len(whole); i++ {
		mut := append([]byte(nil), whole...)
		mut[i] ^= 0x40
		var buf []byte
		_, _, err := readFrame(bytes.NewReader(mut), &buf)
		if !errors.Is(err, errProto) {
			t.Errorf("bit flip at %d: got %v, want protocol error", i, err)
		}
	}
}

func TestFrameOversize(t *testing.T) {
	var hdr [5]byte
	hdr[0] = fExec
	binary.LittleEndian.PutUint32(hdr[1:], maxFrame+1)
	var buf []byte
	_, _, err := readFrame(bytes.NewReader(hdr[:]), &buf)
	if !errors.Is(err, errProto) {
		t.Errorf("oversize frame: got %v, want protocol error", err)
	}
	if err := writeFrame(io.Discard, fExec, make([]byte, maxFrame+1)); err == nil {
		t.Errorf("writeFrame accepted an oversize payload")
	}
}

func TestMagic(t *testing.T) {
	var b bytes.Buffer
	if err := writeMagic(&b); err != nil {
		t.Fatal(err)
	}
	if err := readMagic(&b); err != nil {
		t.Fatalf("readMagic: %v", err)
	}
	if err := readMagic(strings.NewReader("NOTSHIM\n")); !errors.Is(err, errProto) {
		t.Errorf("wrong magic: got %v, want protocol error", err)
	}
	if err := readMagic(strings.NewReader("PFS")); err == nil {
		t.Errorf("short magic: want error")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, m := range []helloMsg{
		{Version: 1, Blocks: 0, Name: "ini"},
		{Version: 7, Blocks: 4242, Name: ""},
		{Version: 1, Blocks: 1, Name: strings.Repeat("x", 300)},
	} {
		got, err := parseHello(appendHello(nil, m))
		if err != nil {
			t.Fatalf("parseHello(%+v): %v", m, err)
		}
		if got != m {
			t.Errorf("hello round trip: got %+v, want %+v", got, m)
		}
	}
}

func TestExecRoundTrip(t *testing.T) {
	for _, m := range []execMsg{
		{ExecSteps: 0, Input: nil},
		{ExecSteps: 1000, Input: []byte("while(1){}")},
	} {
		got, err := parseExec(appendExec(nil, m))
		if err != nil {
			t.Fatalf("parseExec(%+v): %v", m, err)
		}
		if got.ExecSteps != m.ExecSteps || !bytes.Equal(got.Input, m.Input) {
			t.Errorf("exec round trip: got %+v, want %+v", got, m)
		}
	}
}

func TestCmpRoundTrip(t *testing.T) {
	msgs := []cmpMsg{
		{Kind: trace.CmpCharEq, Matched: true, Stack: 3, Index: 7, Last: 7,
			Actual: []byte("a"), Expected: []byte("a")},
		{Kind: trace.CmpCharEq, Matched: false, Stack: 0, Index: 0, Last: 0,
			Actual: []byte("a"), Expected: []byte("b")},
		{Kind: trace.CmpCharRange, Matched: true, Stack: 1, Index: 2, Last: 2,
			Actual: []byte("5"), Expected: []byte("09")},
		{Kind: trace.CmpCharSet, Matched: false, Stack: 9, Index: 4, Last: 4,
			Actual: []byte("z"), Expected: []byte(" \t\n")},
		{Kind: trace.CmpCharSet, Matched: false, Stack: 0, Index: 0, Last: 0,
			Actual: []byte("q"), Expected: nil},
		{Kind: trace.CmpStrEq, Matched: true, Stack: 2, Index: 5, Last: 9,
			Actual: []byte("while"), Expected: []byte("while")},
		{Kind: trace.CmpStrEq, Matched: false, Stack: 2, Index: 5, Last: 5,
			Actual: []byte("w"), Expected: []byte("while")},
	}
	for _, m := range msgs {
		got, err := parseCmp(appendCmp(nil, m))
		if err != nil {
			t.Fatalf("parseCmp(%+v): %v", m, err)
		}
		if got.Kind != m.Kind || got.Matched != m.Matched || got.Stack != m.Stack ||
			got.Index != m.Index || got.Last != m.Last ||
			!bytes.Equal(got.Actual, m.Actual) || !bytes.Equal(got.Expected, m.Expected) {
			t.Errorf("cmp round trip: got %+v, want %+v", got, m)
		}
	}
}

// TestCmpValidation feeds structurally invalid comparisons through the
// parser; each must be rejected as a protocol error.
func TestCmpValidation(t *testing.T) {
	bad := []cmpMsg{
		// Lying about the outcome.
		{Kind: trace.CmpCharEq, Matched: false, Index: 1, Last: 1, Actual: []byte("a"), Expected: []byte("a")},
		{Kind: trace.CmpCharEq, Matched: true, Index: 1, Last: 1, Actual: []byte("a"), Expected: []byte("b")},
		{Kind: trace.CmpStrEq, Matched: false, Index: 1, Last: 2, Actual: []byte("ab"), Expected: []byte("ab")},
		// Structural violations.
		{Kind: trace.CmpCharEq, Index: 1, Last: 2, Actual: []byte("a"), Expected: []byte("a"), Matched: true},
		{Kind: trace.CmpCharEq, Index: 1, Last: 1, Actual: []byte("ab"), Expected: []byte("a")},
		{Kind: trace.CmpCharEq, Index: 1, Last: 1, Actual: []byte("a"), Expected: []byte("ab"), Matched: false},
		{Kind: trace.CmpCharRange, Index: 1, Last: 1, Actual: []byte("a"), Expected: []byte("abc")},
		{Kind: trace.CmpStrEq, Index: 1, Last: 1, Actual: nil, Expected: []byte("x")},
		{Kind: trace.CmpStrEq, Index: 3, Last: 1, Actual: []byte("ab"), Expected: []byte("ab")},
		{Kind: trace.CmpStrEq, Index: 1, Last: 4, Actual: []byte("a"), Expected: []byte("a"), Matched: true},
		{Kind: trace.CmpKind(9), Index: 1, Last: 1, Actual: []byte("a"), Expected: []byte("a")},
		{Kind: trace.CmpCharEq, Stack: maxStack + 1, Index: 1, Last: 1, Actual: []byte("a"), Expected: []byte("a"), Matched: true},
	}
	for i, m := range bad {
		if _, err := parseCmp(appendCmp(nil, m)); !errors.Is(err, errProto) {
			t.Errorf("bad cmp %d (%+v): got %v, want protocol error", i, m, err)
		}
	}
}

func TestEOFRoundTrip(t *testing.T) {
	for _, m := range []eofMsg{{Stack: 0, Index: 0}, {Stack: 12, Index: 1 << 40}, {Stack: 1, Index: -3}} {
		got, err := parseEOF(appendEOF(nil, m))
		if err != nil {
			t.Fatalf("parseEOF(%+v): %v", m, err)
		}
		if got != m {
			t.Errorf("eof round trip: got %+v, want %+v", got, m)
		}
	}
	if _, err := parseEOF(appendEOF(nil, eofMsg{Stack: maxStack + 1})); !errors.Is(err, errProto) {
		t.Errorf("oversize EOF stack: got %v, want protocol error", err)
	}
}

func TestBlocksRoundTrip(t *testing.T) {
	for _, ids := range [][]uint32{nil, {1}, {7, 7, 9, 1 << 30}} {
		got, err := parseBlocks(appendBlocks(nil, ids), nil)
		if err != nil {
			t.Fatalf("parseBlocks(%v): %v", ids, err)
		}
		if len(got) != len(ids) {
			t.Fatalf("blocks round trip: got %v, want %v", got, ids)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Errorf("blocks round trip: got %v, want %v", got, ids)
			}
		}
	}
	// A count that disagrees with the payload size must fail.
	enc := appendBlocks(nil, []uint32{1, 2, 3})
	if _, err := parseBlocks(enc[:len(enc)-2], nil); err == nil {
		t.Errorf("truncated blocks payload parsed")
	}
	binary.LittleEndian.PutUint32(enc, 99)
	if _, err := parseBlocks(enc, nil); err == nil {
		t.Errorf("inflated blocks count parsed")
	}
}

func TestResultRoundTrip(t *testing.T) {
	for _, m := range []resultMsg{
		{Exit: 0, MaxAccess: -1, LenUsed: false, MaxDepth: 0},
		{Exit: 1, MaxAccess: 41, LenUsed: true, MaxDepth: 17},
		{Exit: -7, MaxAccess: 0, LenUsed: false, MaxDepth: 1},
	} {
		got, err := parseResult(appendResult(nil, m))
		if err != nil {
			t.Fatalf("parseResult(%+v): %v", m, err)
		}
		if got != m {
			t.Errorf("result round trip: got %+v, want %+v", got, m)
		}
	}
	if _, err := parseResult(appendResult(nil, resultMsg{MaxDepth: maxDepthL + 1})); !errors.Is(err, errProto) {
		t.Errorf("oversize result depth: got %v, want protocol error", err)
	}
}

// TestParseTrailingBytes: every parser must reject payloads with
// trailing bytes rather than silently ignoring them.
func TestParseTrailingBytes(t *testing.T) {
	cases := []struct {
		name  string
		parse func([]byte) error
		enc   []byte
	}{
		{"hello", func(p []byte) error { _, err := parseHello(p); return err },
			appendHello(nil, helloMsg{Version: 1, Name: "x"})},
		{"exec", func(p []byte) error { _, err := parseExec(p); return err },
			appendExec(nil, execMsg{Input: []byte("y")})},
		{"cmp", func(p []byte) error { _, err := parseCmp(p); return err },
			appendCmp(nil, cmpMsg{Kind: trace.CmpCharEq, Matched: true, Index: 1, Last: 1, Actual: []byte("a"), Expected: []byte("a")})},
		{"eof", func(p []byte) error { _, err := parseEOF(p); return err },
			appendEOF(nil, eofMsg{Index: 9})},
		{"result", func(p []byte) error { _, err := parseResult(p); return err },
			appendResult(nil, resultMsg{MaxAccess: -1})},
	}
	for _, tc := range cases {
		if err := tc.parse(append(tc.enc, 0xEE)); err == nil {
			t.Errorf("%s: payload with trailing byte parsed", tc.name)
		}
		for cut := 0; cut < len(tc.enc); cut++ {
			if err := tc.parse(tc.enc[:cut]); err == nil {
				t.Errorf("%s: truncation at %d parsed", tc.name, cut)
			}
		}
	}
}
