package shim

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"testing"
	"time"

	"pfuzzer/internal/core"
	"pfuzzer/internal/registry"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

// TestMain doubles as the reexec child for the real-subprocess tests:
// with PFSHIM_CHILD set, the test binary serves the shim protocol on
// stdio exactly like cmd/pshim and never runs any tests.
func TestMain(m *testing.M) {
	if os.Getenv("PFSHIM_CHILD") != "" {
		err := Serve(os.Stdin, os.Stdout, ServeConfig{
			Lookup: registry.NewProgram,
			Fault: FaultPlan{
				CrashAt:   envInt("PFSHIM_CRASH_AT"),
				HangAt:    envInt("PFSHIM_HANG_AT"),
				GarbageAt: envInt("PFSHIM_GARBAGE_AT"),
			},
		})
		if err != nil {
			os.Exit(2)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func envInt(key string) int {
	n := 0
	for _, c := range []byte(os.Getenv(key)) {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// pipeLauncher serves the named registry subject over in-memory
// pipes, with optional deterministic faults per child.
func pipeLauncher(fault FaultPlan) PipeLauncher {
	return PipeLauncher{Serve: func(r io.Reader, w io.Writer) error {
		return Serve(r, w, ServeConfig{Lookup: registry.NewProgram, Fault: fault})
	}}
}

// reexecLauncher serves subjects from a real subprocess: the test
// binary re-executed in PFSHIM_CHILD mode.
func reexecLauncher(t *testing.T, fault FaultPlan) CmdLauncher {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	env := append(os.Environ(), "PFSHIM_CHILD=1")
	set := func(key string, v int) {
		if v > 0 {
			env = append(env, key+"="+string(rune('0'+v%10)))
		}
	}
	if fault.CrashAt > 9 || fault.HangAt > 9 || fault.GarbageAt > 9 {
		t.Fatalf("reexecLauncher fault ordinals must be single-digit")
	}
	set("PFSHIM_CRASH_AT", fault.CrashAt)
	set("PFSHIM_HANG_AT", fault.HangAt)
	set("PFSHIM_GARBAGE_AT", fault.GarbageAt)
	return CmdLauncher{Path: exe, Env: env, Stderr: io.Discard}
}

func newPipeHost(t *testing.T, name string, fault FaultPlan, opts Options) *Host {
	t.Helper()
	opts.Subject = name
	h, err := NewHost(pipeLauncher(fault), opts)
	if err != nil {
		t.Fatalf("NewHost(%s): %v", name, err)
	}
	t.Cleanup(h.Close)
	return h
}

// probesFor derives a deterministic probe set for a subject: a small
// in-process campaign's valids plus truncations, byte flips and fixed
// edge cases — rejecting probes matter as much as accepting ones.
func probesFor(t *testing.T, e registry.Entry) [][]byte {
	t.Helper()
	res := core.New(e.New(), core.Config{Seed: 1, MaxExecs: 300}).Run()
	rng := rand.New(rand.NewSource(7))
	probes := [][]byte{nil, []byte(" "), []byte("a"), []byte("=["), []byte("\x00\xff")}
	for _, v := range res.ValidInputs() {
		probes = append(probes, v)
		if len(v) > 0 {
			probes = append(probes, v[:rng.Intn(len(v))])
			flip := append([]byte(nil), v...)
			flip[rng.Intn(len(flip))] ^= 0x25
			probes = append(probes, flip)
		}
		if len(probes) > 60 {
			break
		}
	}
	return probes
}

func recordsIdentical(a, b *trace.Record) bool {
	if a.Exit != b.Exit || a.PathHash != b.PathHash || a.MaxDepth != b.MaxDepth ||
		a.Decided != b.Decided || a.MaxAccess != b.MaxAccess || a.LenUsed != b.LenUsed {
		return false
	}
	if len(a.Comparisons) != len(b.Comparisons) || len(a.EOFs) != len(b.EOFs) ||
		len(a.Blocks) != len(b.Blocks) || len(a.BlockFirst) != len(b.BlockFirst) {
		return false
	}
	for i := range a.Comparisons {
		x, y := &a.Comparisons[i], &b.Comparisons[i]
		if x.Kind != y.Kind || x.Index != y.Index || x.Last != y.Last ||
			x.Matched != y.Matched || x.Stack != y.Stack || x.Seq != y.Seq ||
			!bytes.Equal(x.Actual, y.Actual) || !bytes.Equal(x.Expected, y.Expected) {
			return false
		}
	}
	for i := range a.EOFs {
		if a.EOFs[i] != b.EOFs[i] {
			return false
		}
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			return false
		}
	}
	for id, seq := range a.BlockFirst {
		if b.BlockFirst[id] != seq {
			return false
		}
	}
	return !((a.Edges == nil) != (b.Edges == nil)) && bytes.Equal(a.Edges, b.Edges)
}

// TestTraceIdentity is the bit-identity core of the shim contract:
// for every probe and every recording-option combination an engine
// uses, the replayed out-of-process trace must equal the in-process
// one field for field — sequence numbers, path hash, stack depths,
// edges bitmap and the prefix-decided verdict included.
func TestTraceIdentity(t *testing.T) {
	optionSets := []trace.Options{
		trace.Full(),
		{Comparisons: true},
		{Edges: true},
		{Blocks: true},
		{},
		{Comparisons: true, MaxComparisons: 3},
		{Comparisons: true, Blocks: true, ExecSteps: 17},
	}
	for _, name := range []string{"expr", "paren", "ini"} {
		t.Run(name, func(t *testing.T) {
			e, ok := registry.Get(name)
			if !ok {
				t.Fatalf("subject %s not registered", name)
			}
			h := newPipeHost(t, name, FaultPlan{}, Options{})
			shimmed := h.Subject()
			if shimmed.Name() != name {
				t.Fatalf("shimmed subject is named %q", shimmed.Name())
			}
			if shimmed.Blocks() != e.New().Blocks() {
				t.Fatalf("shimmed subject reports %d blocks, in-process %d",
					shimmed.Blocks(), e.New().Blocks())
			}
			for _, in := range probesFor(t, e) {
				for _, opts := range optionSets {
					want := subject.Execute(e.New(), in, opts)
					got := subject.Execute(shimmed, in, opts)
					if !recordsIdentical(got, want) {
						t.Fatalf("input %q opts %+v: shimmed trace differs from in-process\n got: exit=%d decided=%d comps=%d eofs=%d blocks=%d hash=%#x\nwant: exit=%d decided=%d comps=%d eofs=%d blocks=%d hash=%#x",
							in, opts,
							got.Exit, got.Decided, len(got.Comparisons), len(got.EOFs), len(got.Blocks), got.PathHash,
							want.Exit, want.Decided, len(want.Comparisons), len(want.EOFs), len(want.Blocks), want.PathHash)
					}
				}
			}
		})
	}
}

// TestCampaignFingerprintIdentity drives full campaigns — serial and
// Workers=4 — through the shim and requires the emitted corpus to be
// bit-identical to the in-process campaign: same fingerprints, same
// valids at the same execution indices.
func TestCampaignFingerprintIdentity(t *testing.T) {
	budget := 800
	if testing.Short() {
		budget = 300
	}
	for _, name := range []string{"expr", "paren", "ini"} {
		t.Run(name, func(t *testing.T) {
			e, ok := registry.Get(name)
			if !ok {
				t.Fatalf("subject %s not registered", name)
			}
			h := newPipeHost(t, name, FaultPlan{}, Options{})
			wrapped := WrapEntry(e, h)

			cfg := core.Config{Seed: 1, MaxExecs: budget}
			want := core.New(e.New(), cfg).Run()
			got := core.New(wrapped.New(), cfg).Run()
			if got.Fingerprint() != want.Fingerprint() {
				t.Errorf("serial campaign fingerprint %#x through the shim, %#x in process (%d vs %d valids)",
					got.Fingerprint(), want.Fingerprint(), len(got.Valids), len(want.Valids))
			}

			par := cfg
			par.Workers = 4
			wantPar := core.New(e.New(), par).Run()
			gotPar := core.New(wrapped.New(), par).Run()
			if gotPar.Fingerprint() != wantPar.Fingerprint() {
				t.Errorf("Workers=4 campaign fingerprint %#x through the shim, %#x in process",
					gotPar.Fingerprint(), wantPar.Fingerprint())
			}
			if st := h.Stats(); st.Crashes+st.Hangs+st.Protocol+st.Unavailable != 0 {
				t.Errorf("healthy campaign reported losses: %+v", st)
			}
		})
	}
}

// TestUnknownSubject: a child that cannot serve the requested subject
// must refuse in-band and NewHost must surface it as an error.
func TestUnknownSubject(t *testing.T) {
	_, err := NewHost(pipeLauncher(FaultPlan{}), Options{Subject: "no-such-subject"})
	if err == nil {
		t.Fatalf("NewHost succeeded for an unregistered subject")
	}
}

// TestSubprocessTraceIdentity runs the identity check against a real
// child process (the reexec'd test binary), covering fork/exec, OS
// pipes and process reaping.
func TestSubprocessTraceIdentity(t *testing.T) {
	e, ok := registry.Get("expr")
	if !ok {
		t.Fatal("expr not registered")
	}
	h, err := NewHost(reexecLauncher(t, FaultPlan{}), Options{Subject: "expr"})
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	defer h.Close()
	shimmed := h.Subject()
	for _, in := range [][]byte{nil, []byte("1+2"), []byte("(3*4)+5"), []byte("1+"), []byte("((")} {
		want := subject.Execute(e.New(), in, trace.Full())
		got := subject.Execute(shimmed, in, trace.Full())
		if !recordsIdentical(got, want) {
			t.Errorf("input %q: subprocess trace differs from in-process", in)
		}
	}
}

// TestCloseKillsChildren: Close must reap every child, including ones
// acquired and never released (simulating shutdown mid-execution).
func TestCloseKillsChildren(t *testing.T) {
	h := newPipeHost(t, "expr", FaultPlan{}, Options{ExecTimeout: time.Minute})
	s := h.Subject()
	for i := 0; i < 3; i++ {
		if exit := subject.Execute(s, []byte("1+1"), trace.Full()).Exit; exit != 0 {
			t.Fatalf("exec %d: exit %d", i, exit)
		}
	}
	h.Close()
	rec := subject.Execute(s, []byte("1+1"), trace.Full())
	if rec.Exit != subject.ExitUnavailable {
		t.Errorf("exec after Close: exit %d, want ExitUnavailable", rec.Exit)
	}
	if d, ok := rec.DecidedPrefix(); ok {
		t.Errorf("exec after Close claims a deciding prefix of %d", d)
	}
	h.Close() // idempotent
}
