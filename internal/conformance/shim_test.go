package conformance

import (
	"io"
	"os"
	"testing"

	"pfuzzer/internal/registry"
	"pfuzzer/internal/shim"
)

// TestConformanceSelfShim is the acceptance gate for the whole
// out-of-process stack: the full conformance kit — determinism
// (including concurrent runs over one shared Program), prefix
// behaviour, engine and parallel agreement with bit-identical
// fingerprints, cache transparency, snapshot/resume — run over
// subjects served through the shim instead of in process. Every
// execution crosses the framed protocol and is replayed into the
// parent's tracer, so a single byte of divergence anywhere in the
// codec, lifecycle or replay fails the kit.
//
// With PSHIM_BIN set (CI builds cmd/pshim and points here), the
// children are real pshim subprocesses; otherwise the protocol runs
// over in-memory pipes, which exercises everything but fork/exec.
func TestConformanceSelfShim(t *testing.T) {
	if testing.Short() {
		t.Skip("full conformance kit over the shim is not a -short test")
	}
	launcher := func(t *testing.T) shim.Launcher {
		if bin := os.Getenv("PSHIM_BIN"); bin != "" {
			return shim.CmdLauncher{Path: bin}
		}
		return shim.PipeLauncher{Serve: func(r io.Reader, w io.Writer) error {
			return shim.Serve(r, w, shim.ServeConfig{Lookup: registry.NewProgram})
		}}
	}
	for _, name := range []string{"expr", "paren", "ini"} {
		t.Run(name, func(t *testing.T) {
			e, ok := registry.Get(name)
			if !ok {
				t.Fatalf("subject %s not registered", name)
			}
			h, err := shim.NewHost(launcher(t), shim.Options{Subject: name})
			if err != nil {
				t.Fatalf("NewHost(%s): %v", name, err)
			}
			defer h.Close()
			CheckWith(t, shim.WrapEntry(e, h), Options{
				CorpusExecs: 1500,
				EngineExecs: 900,
				MaxProbes:   120,
			})
			if st := h.Stats(); st.Crashes+st.Hangs+st.Protocol+st.Unavailable != 0 {
				t.Errorf("conformance run reported losses: %+v", st)
			}
		})
	}
}
