// Package conformance is a property-based test kit that machine-checks
// the contract every engine layer silently assumes of a registered
// subject. The fuzzer core substitutes characters at rejection
// offsets (Algorithm 1), the miner renders token streams back into
// inputs, the fleet orchestrator slices campaigns, and the corpus
// store resumes them from snapshots — each of those moves is only
// sound if the subject behaves like a deterministic, left-to-right,
// prefix-deciding parser with a round-trippable lexer. The kit turns
// those assumptions into checks:
//
//   - Determinism: the same input produces the identical trace
//     (comparisons, EOF accesses, block sequence, path hash) on every
//     run, including concurrent runs over one shared Program value —
//     the Config.Workers > 1 contract.
//   - Prefix behaviour: truncating an input changes the trace only
//     from the first EOF access on (trace-prefix agreement); the
//     rejection offset grows monotonically with the prefix length;
//     and a rejection recorded without any EOF access is final — no
//     appended suffix can change the comparisons or the verdict.
//   - Lexer round-trip: rendering a lexed token stream with the
//     miner's separator rule re-lexes to exactly the same stream
//     (Render ∘ lex = id), the identity grammar mining is built on.
//   - Engine agreement: at Workers <= 1 the serial engine, the
//     Workers=1 configuration, sliced stepping and the hybrid
//     campaign's exploration phase all emit the identical corpus, and
//     every engine only ever emits inputs the subject accepts.
//   - Parallel agreement: a Workers=4 campaign emits the same valid
//     corpus as Workers=1 at the same budget — set-equal by contract,
//     and bit-identical on the speculative pipeline engine.
//   - Snapshot/resume: a campaign cut mid-run, marshalled, restored
//     and driven to the same budget reproduces the uninterrupted
//     corpus bit for bit.
//
// Check runs the whole kit against one registry entry; the package's
// own test applies it to every registered subject, so a new subject
// is conformance-checked by registering it and nothing else.
package conformance

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"pfuzzer/internal/core"
	"pfuzzer/internal/mine"
	"pfuzzer/internal/registry"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

// Options tunes the kit's budgets. The zero value is ready to use.
type Options struct {
	// Seed drives probe generation and every campaign (default 1).
	Seed int64
	// CorpusExecs is the budget of the corpus-building campaign whose
	// valids seed the probe set (default 3000).
	CorpusExecs int
	// EngineExecs is the budget of the engine-agreement and
	// snapshot/resume campaigns (default 2000).
	EngineExecs int
	// MaxProbes caps the probe set (default 250).
	MaxProbes int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CorpusExecs == 0 {
		o.CorpusExecs = 3000
	}
	if o.EngineExecs == 0 {
		o.EngineExecs = 2000
	}
	if o.MaxProbes == 0 {
		o.MaxProbes = 250
	}
	return o
}

// Check runs the full conformance kit against e with default options.
func Check(t *testing.T, e registry.Entry) {
	CheckWith(t, e, Options{})
}

// CheckWith runs the full conformance kit against e.
func CheckWith(t *testing.T, e registry.Entry, o Options) {
	o = o.withDefaults()
	if err := registry.Validate(e); err != nil {
		t.Fatalf("entry fails registry validation: %v", err)
	}

	// One serial reference campaign supplies both the probe corpus
	// and the engine-agreement baseline.
	ref := core.New(e.New(), core.Config{Seed: o.Seed, MaxExecs: o.CorpusExecs}).Run()
	valids := ref.ValidInputs()
	probes := probeInputs(o, valids)

	t.Run("determinism", func(t *testing.T) { checkDeterminism(t, e, probes) })
	t.Run("prefix", func(t *testing.T) { checkPrefix(t, e, probes) })
	t.Run("lexer-roundtrip", func(t *testing.T) { checkLexerRoundTrip(t, e, valids) })
	t.Run("engine-agreement", func(t *testing.T) { checkEngineAgreement(t, e, o) })
	t.Run("parallel-agreement", func(t *testing.T) { checkParallelAgreement(t, e, o) })
	t.Run("snapshot-resume", func(t *testing.T) { checkSnapshotResume(t, e, o) })
	t.Run("cache-transparency", func(t *testing.T) { checkCacheTransparency(t, e, o) })
}

// probeInputs builds the deterministic probe set: campaign valids,
// mutations of them (truncations, byte flips, self-concatenations)
// and random printable strings — rejected inputs matter as much as
// accepted ones, since the prefix properties are about rejections.
func probeInputs(o Options, valids [][]byte) [][]byte {
	rng := rand.New(rand.NewSource(o.Seed * 31))
	probes := [][]byte{nil, []byte(" "), []byte("\n"), []byte("a"), []byte("0"), []byte("~")}
	mutate := valids
	if len(mutate) > 40 {
		mutate = mutate[:40]
	}
	probes = append(probes, mutate...)
	for _, v := range mutate {
		if len(v) == 0 {
			continue
		}
		probes = append(probes, v[:rng.Intn(len(v))])
		flip := append([]byte(nil), v...)
		flip[rng.Intn(len(flip))] = byte(0x20 + rng.Intn(95))
		probes = append(probes, flip)
		probes = append(probes, append(append([]byte(nil), v...), v...))
	}
	for i := 0; i < 32; i++ {
		b := make([]byte, 1+rng.Intn(12))
		for j := range b {
			b[j] = byte(0x20 + rng.Intn(95))
		}
		probes = append(probes, b)
	}
	if len(probes) > o.MaxProbes {
		probes = probes[:o.MaxProbes]
	}
	return probes
}

func execute(e registry.Entry, input []byte) *trace.Record {
	return subject.Execute(e.New(), input, trace.Full())
}

// compsEqual compares two comparison sequences field by field.
func compsEqual(a, b []trace.Comparison) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := &a[i], &b[i]
		if x.Kind != y.Kind || x.Index != y.Index || x.Last != y.Last ||
			x.Matched != y.Matched || x.Stack != y.Stack || x.Seq != y.Seq ||
			!bytes.Equal(x.Actual, y.Actual) || !bytes.Equal(x.Expected, y.Expected) {
			return false
		}
	}
	return true
}

func eofsEqual(a, b []trace.EOFAccess) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func blocksEqual(a, b []trace.BlockHit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func recordsEqual(a, b *trace.Record) bool {
	return a.Exit == b.Exit && a.PathHash == b.PathHash && a.MaxDepth == b.MaxDepth &&
		compsEqual(a.Comparisons, b.Comparisons) && eofsEqual(a.EOFs, b.EOFs) &&
		blocksEqual(a.Blocks, b.Blocks)
}

// checkDeterminism: same input, identical full trace — across fresh
// Program values and across goroutines sharing one value (the
// concurrent-engine contract; run under -race this also proves the
// subject keeps no hidden mutable state).
func checkDeterminism(t *testing.T, e registry.Entry, probes [][]byte) {
	refs := make([]*trace.Record, len(probes))
	for i, in := range probes {
		refs[i] = execute(e, in)
		again := execute(e, in)
		if !recordsEqual(refs[i], again) {
			t.Errorf("input %q: two fresh runs produced different traces", in)
		}
	}

	// Cap the concurrent phase at ~50 probes, but sample them with a
	// stride across the whole set: the tail probes (mutations, random
	// strings) are the rejecting ones, and rejection paths are the
	// bulk of what the parallel engine actually executes.
	shared := e.New()
	stride := 1
	if len(probes) > 50 {
		stride = (len(probes) + 49) / 50
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var bad [][]byte
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(probes); i += stride {
				rec := subject.Execute(shared, probes[i], trace.Full())
				if !recordsEqual(rec, refs[i]) {
					mu.Lock()
					bad = append(bad, probes[i])
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, in := range bad {
		t.Errorf("input %q: concurrent run over a shared Program diverged from the serial trace", in)
	}
}

// cuts samples proper truncation points of an input, always including
// 0. The full length is not a cut: the caller already holds the full
// run and closes the monotonicity chain against it directly.
func cuts(n int) []int {
	if n <= 16 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	step := n / 16
	var out []int
	for i := 0; i < n; i += step {
		out = append(out, i)
	}
	return out
}

// checkPrefix verifies the three left-to-right properties the search
// relies on.
func checkPrefix(t *testing.T, e registry.Entry, probes [][]byte) {
	for _, in := range probes {
		full := execute(e, in)

		prev := -1
		for _, cut := range cuts(len(in)) {
			rec := execute(e, in[:cut])

			// (a) Trace-prefix agreement: everything the truncated run
			// compared before its first EOF access must replay the full
			// run's comparisons exactly.
			firstEOF := int(^uint(0) >> 1)
			if len(rec.EOFs) > 0 {
				firstEOF = rec.EOFs[0].Seq
			}
			var pre []trace.Comparison
			for i := range rec.Comparisons {
				if rec.Comparisons[i].Seq < firstEOF {
					pre = append(pre, rec.Comparisons[i])
				}
			}
			if len(pre) > len(full.Comparisons) || !compsEqual(pre, full.Comparisons[:len(pre)]) {
				t.Errorf("input %q cut at %d: pre-EOF comparisons are not a prefix of the full run's", in, cut)
			}

			// (b) Monotone rejection offsets: feeding the parser a
			// longer prefix never moves the last *compared* offset —
			// the offset the fuzzer substitutes at — backwards. (EOF
			// probes are deliberately not counted: an accepted prefix
			// probes one past its end, which a trailing-garbage
			// rejection legitimately never compares.)
			r := rec.LastComparedIndex()
			if r < prev {
				t.Errorf("input %q cut at %d: last compared offset %d < %d at the previous cut", in, cut, r, prev)
			}
			prev = r
		}
		if r := full.LastComparedIndex(); r < prev {
			t.Errorf("input %q: full run's last compared offset %d < %d at the longest cut", in, r, prev)
		}

		// (c) Rejections without an EOF access are final: the parser
		// decided on what it read, so no suffix may change the verdict
		// or any part of the trace — comparisons, blocks, path hash,
		// stack depth. Full-record equivalence (not just comparison
		// equality) is what the prefix-decided execution cache
		// (core.Config.Cache) relies on when it replays a memoised
		// rejection for an extended input.
		if !full.Accepted() && len(full.EOFs) == 0 {
			for _, suffix := range []string{"0", "}~\n"} {
				ext := execute(e, append(append([]byte(nil), in...), suffix...))
				if ext.Accepted() {
					t.Errorf("input %q: non-EOF rejection was rescued by appending %q", in, suffix)
					continue
				}
				if !recordsEqual(full, ext) {
					t.Errorf("input %q: appending %q after a non-EOF rejection changed the trace", in, suffix)
				}
			}
		}
	}
}

// checkLexerRoundTrip: Render ∘ lex must be the identity on token
// streams — the invariant that makes mined-grammar generation emit
// candidates whose token structure the miner actually chose.
func checkLexerRoundTrip(t *testing.T, e registry.Entry, valids [][]byte) {
	g := mine.NewGrammar(e.Lexer)
	checked := 0
	for _, v := range valids {
		seq := e.Lexer(v)
		if again := e.Lexer(v); !lexemesEqual(seq, again) {
			t.Errorf("lexer is nondeterministic on %q", v)
		}
		if len(seq) == 0 {
			continue
		}
		rendered := g.Render(seq)
		if relexed := e.Lexer(rendered); !lexemesEqual(seq, relexed) {
			t.Errorf("round-trip broke on %q: rendered %q re-lexes differently", v, rendered)
		}
		checked++
	}
	if len(valids) > 0 && checked == 0 {
		t.Errorf("lexer produced no tokens for any of %d valid inputs", len(valids))
	}
}

func lexemesEqual(a, b []mine.Lexeme) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validsEqual compares two emission records entry by entry.
func validsEqual(a, b []core.Valid) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Input, b[i].Input) || a[i].Exec != b[i].Exec ||
			a[i].NewBlocks != b[i].NewBlocks {
			return false
		}
	}
	return true
}

// checkSound verifies emission soundness: every input an engine
// emitted as valid is accepted by a fresh subject instance.
func checkSound(t *testing.T, e registry.Entry, res *core.Result, label string) {
	for _, v := range res.Valids {
		if !execute(e, v.Input).Accepted() {
			t.Errorf("%s emitted %q as valid, but the subject rejects it", label, v.Input)
		}
	}
}

// checkEngineAgreement: Workers 0, Workers 1 and sliced stepping are
// bit-identical; the hybrid campaign's exploration reproduces the
// pure campaign's corpus as a prefix; and every engine — the parallel
// one included — emits only genuinely accepted inputs.
func checkEngineAgreement(t *testing.T, e registry.Entry, o Options) {
	base := core.Config{Seed: o.Seed, MaxExecs: o.EngineExecs}

	w0 := core.New(e.New(), base).Run()
	checkSound(t, e, w0, "serial engine")

	cfg1 := base
	cfg1.Workers = 1
	w1 := core.New(e.New(), cfg1).Run()
	if w0.Fingerprint() != w1.Fingerprint() || !validsEqual(w0.Valids, w1.Valids) {
		t.Errorf("Workers=0 and Workers=1 disagree: %d vs %d valids", len(w0.Valids), len(w1.Valids))
	}

	stepped := core.NewCampaign(e.New(), base)
	for {
		if spent, more := stepped.Step(337); !more || spent == 0 {
			break
		}
	}
	if stepped.Fingerprint() != w0.Fingerprint() {
		t.Errorf("sliced stepping diverged from the blocking run")
	}

	hybrid := base
	hybrid.MinePhase = true
	hybrid.MineLexer = e.Lexer
	hybrid.MineBudget = o.EngineExecs / 4
	hybrid.MaxExecs = o.EngineExecs + hybrid.MineBudget
	hybrid.MineCadence = o.EngineExecs // one uninterrupted exploration phase
	hy := core.New(e.New(), hybrid).Run()
	checkSound(t, e, hy, "hybrid engine")
	if len(hy.Valids) < len(w0.Valids) || !validsEqual(hy.Valids[:len(w0.Valids)], w0.Valids) {
		t.Errorf("hybrid exploration is not corpus-identical to the pure campaign (%d vs %d valids)",
			len(hy.Valids), len(w0.Valids))
	}

	par := base
	par.Workers = 4
	pres := core.New(e.New(), par).Run()
	checkSound(t, e, pres, "parallel engine")
}

// checkParallelAgreement: a Workers=4 campaign emits a valid corpus
// set-equal to the Workers=1 campaign at the same budget. The
// speculative pipeline engine actually guarantees more — the corpora
// are bit-identical, same inputs at the same execution indices with
// the same cache counters — so after establishing the set property
// the check pins the stronger one too; a subject for which only
// set-equality held would mean its executions are nondeterministic in
// a way the trajectory masks, which the earlier determinism property
// should have caught. Run under -race in CI, this is also the data-race
// proof for the board/memo hand-off against a real registered subject.
func checkParallelAgreement(t *testing.T, e registry.Entry, o Options) {
	base := core.Config{Seed: o.Seed, MaxExecs: o.EngineExecs}
	w1 := core.New(e.New(), base).Run()
	par := base
	par.Workers = 4
	w4 := core.New(e.New(), par).Run()

	set := func(vs []core.Valid) map[string]bool {
		m := make(map[string]bool, len(vs))
		for _, v := range vs {
			m[string(v.Input)] = true
		}
		return m
	}
	s1, s4 := set(w1.Valids), set(w4.Valids)
	for in := range s1 {
		if !s4[in] {
			t.Errorf("Workers=1 valid %q missing from the Workers=4 corpus", in)
		}
	}
	for in := range s4 {
		if !s1[in] {
			t.Errorf("Workers=4 emitted %q, which the Workers=1 campaign never found", in)
		}
	}

	if w4.Fingerprint() != w1.Fingerprint() || !validsEqual(w4.Valids, w1.Valids) {
		t.Errorf("Workers=4 corpus is set-equal but not bit-identical to Workers=1 (%d vs %d valids, fingerprints %#x vs %#x)",
			len(w4.Valids), len(w1.Valids), w4.Fingerprint(), w1.Fingerprint())
	}
	if w4.CacheHits != w1.CacheHits || w4.CacheMisses != w1.CacheMisses {
		t.Errorf("Workers=4 cache counters (%d hits, %d misses) diverge from Workers=1 (%d, %d)",
			w4.CacheHits, w4.CacheMisses, w1.CacheHits, w1.CacheMisses)
	}

	// The spec-depth axis: the w4 run above already exercises the
	// default shadow lookahead, so one deep-simulation run pins the
	// property that matters — shadow predictions announce executions
	// but can never admit one the serial schedule wouldn't, no matter
	// how far (and how wrongly) the simulator rolls ahead on this
	// subject's grammar. Cache counters ride along: a prediction that
	// leaked into the cache-admission order would surface there first.
	deep := par
	deep.SpecDepth = 16
	wd := core.New(e.New(), deep).Run()
	if wd.Fingerprint() != w1.Fingerprint() {
		t.Errorf("Workers=4 SpecDepth=16 fingerprint %#x diverges from Workers=1 %#x",
			wd.Fingerprint(), w1.Fingerprint())
	}
	if wd.CacheHits != w1.CacheHits || wd.CacheMisses != w1.CacheMisses {
		t.Errorf("Workers=4 SpecDepth=16 cache counters (%d hits, %d misses) diverge from Workers=1 (%d, %d)",
			wd.CacheHits, wd.CacheMisses, w1.CacheHits, w1.CacheMisses)
	}
}

// checkCacheTransparency: the prefix-decided execution cache
// (core.Config.Cache) must be invisible in every campaign observable —
// same corpus, same discovery indices, same coverage, same execution
// count — with the cache forced on versus off, on the plain serial
// engine and on the hybrid driver. This is the property that makes
// the cache's memoised rejections sound for this subject: a hit
// replays the facts a real execution would have produced, so only
// wall-clock changes. The counters themselves must account for every
// execution (hits + misses == execs with the cache on, both zero with
// it off).
func checkCacheTransparency(t *testing.T, e registry.Entry, o Options) {
	plain := core.Config{Seed: o.Seed, MaxExecs: o.EngineExecs, Cache: core.CacheOn}
	hybrid := plain
	hybrid.MinePhase = true
	hybrid.MineLexer = e.Lexer
	hybrid.MineBudget = o.EngineExecs / 4
	hybrid.MaxExecs = o.EngineExecs + hybrid.MineBudget

	for _, tc := range []struct {
		name string
		cfg  core.Config
	}{{"plain", plain}, {"hybrid", hybrid}} {
		t.Run(tc.name, func(t *testing.T) {
			on := core.New(e.New(), tc.cfg).Run()
			offCfg := tc.cfg
			offCfg.Cache = core.CacheOff
			off := core.New(e.New(), offCfg).Run()

			if on.Fingerprint() != off.Fingerprint() || !validsEqual(on.Valids, off.Valids) || on.Execs != off.Execs {
				t.Errorf("cache on/off campaigns diverged: %d valids / %d execs vs %d / %d (fingerprints %#x vs %#x)",
					len(on.Valids), on.Execs, len(off.Valids), off.Execs, on.Fingerprint(), off.Fingerprint())
			}
			if on.CacheHits+on.CacheMisses != on.Execs {
				t.Errorf("cache-on counters do not account for every execution: %d hits + %d misses != %d execs",
					on.CacheHits, on.CacheMisses, on.Execs)
			}
			if off.CacheHits != 0 || off.CacheMisses != 0 {
				t.Errorf("cache-off campaign reported cache traffic: %d hits, %d misses", off.CacheHits, off.CacheMisses)
			}
		})
	}
}

// checkSnapshotResume: cut, marshal, restore, finish — the combined
// corpus must be bit-identical to the uninterrupted run's, on the
// plain serial engine and on the hybrid driver.
func checkSnapshotResume(t *testing.T, e registry.Entry, o Options) {
	plain := core.Config{Seed: o.Seed, MaxExecs: o.EngineExecs}
	hybrid := plain
	hybrid.MinePhase = true
	hybrid.MineLexer = e.Lexer
	hybrid.MineBudget = o.EngineExecs / 4
	hybrid.MaxExecs = o.EngineExecs + hybrid.MineBudget
	hybrid.MineCadence = o.EngineExecs / 2 // interleaved, to cut mid-drive

	for _, tc := range []struct {
		name string
		cfg  core.Config
	}{{"plain", plain}, {"hybrid", hybrid}} {
		t.Run(tc.name, func(t *testing.T) {
			want := core.New(e.New(), tc.cfg).Run()

			first := core.NewCampaign(e.New(), tc.cfg)
			cutAt := tc.cfg.MaxExecs * 2 / 5
			for first.Result().Execs < cutAt {
				if _, more := first.Step(199); !more {
					t.Fatalf("campaign finished before the cut at %d execs", first.Result().Execs)
				}
			}
			blob, err := first.Snapshot().Marshal()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			snap, err := core.UnmarshalSnapshot(blob)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			resumed, err := core.Restore(e.New(), core.Config{MineLexer: e.Lexer}, snap)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			for {
				if spent, more := resumed.Step(173); !more || spent == 0 {
					break
				}
			}
			got := resumed.Result()
			if got.Fingerprint() != want.Fingerprint() || !validsEqual(got.Valids, want.Valids) {
				t.Errorf("resumed campaign is not corpus-identical: %d valids / %d execs, want %d / %d",
					len(got.Valids), got.Execs, len(want.Valids), want.Execs)
			}
		})
	}
}
