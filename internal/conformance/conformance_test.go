package conformance

import (
	"testing"

	"pfuzzer/internal/registry"
)

// TestConformanceAllSubjects runs the full kit against every
// registered subject — the matrix smoke CI runs on each push. A new
// subject gets all of this by registering; nothing else to write.
func TestConformanceAllSubjects(t *testing.T) {
	for _, e := range registry.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			Check(t, e)
		})
	}
}
