package conformance

import (
	"testing"

	"pfuzzer/internal/registry"
)

// TestConformanceAllSubjects runs the full kit against every
// registered subject — the matrix smoke CI runs on each push. A new
// subject gets all of this by registering; nothing else to write.
//
// Under -short the budgets are trimmed: that is the configuration the
// CI race job runs, where every property — the parallel-agreement
// campaigns included — executes under the race detector's ~10x
// slowdown, and where the point is the concurrency coverage rather
// than the search depth.
func TestConformanceAllSubjects(t *testing.T) {
	o := Options{}
	if testing.Short() {
		o = Options{CorpusExecs: 1200, EngineExecs: 800, MaxProbes: 120}
	}
	for _, e := range registry.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			CheckWith(t, e, o)
		})
	}
}
