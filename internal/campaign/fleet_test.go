package campaign

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pfuzzer/internal/core"
	"pfuzzer/internal/registry"
)

// fakeRunner consumes a fixed budget in whatever slices it is given,
// recording concurrent entry to prove the one-worker-per-job rule.
type fakeRunner struct {
	budget   int
	spent    int
	inStep   atomic.Int32
	overlaps atomic.Int32
	steps    int
}

func (r *fakeRunner) Step(n int) (int, bool) {
	if r.inStep.Add(1) > 1 {
		r.overlaps.Add(1)
	}
	defer r.inStep.Add(-1)
	r.steps++
	left := r.budget - r.spent
	if n > left {
		n = left
	}
	r.spent += n
	return n, r.spent < r.budget
}

// TestFleetRunsAllJobs: every job completes its own budget, no job is
// stepped by two workers at once, and the fleet's per-job accounting
// matches what the runners spent.
func TestFleetRunsAllJobs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var jobs []*Job
			var runners []*fakeRunner
			for i := 0; i < 9; i++ {
				r := &fakeRunner{budget: 10000 + 1000*i}
				runners = append(runners, r)
				jobs = append(jobs, &Job{Name: fmt.Sprintf("job%d", i), Runner: r})
			}
			fl := Fleet{Workers: workers, Slice: 1024}
			fl.Run(jobs)
			for i, r := range runners {
				if r.spent != r.budget {
					t.Errorf("job%d spent %d of %d", i, r.spent, r.budget)
				}
				if r.overlaps.Load() != 0 {
					t.Errorf("job%d was stepped concurrently %d times", i, r.overlaps.Load())
				}
				if !jobs[i].Done() {
					t.Errorf("job%d not marked done", i)
				}
				if jobs[i].Execs() != r.budget {
					t.Errorf("job%d fleet accounting %d, runner spent %d", i, jobs[i].Execs(), r.budget)
				}
				if r.steps < 2 {
					t.Errorf("job%d ran in %d steps; the fleet should be slicing", i, r.steps)
				}
			}
		})
	}
}

// TestFleetGlobalBudget: MaxTotalExecs cuts the fleet off and retires
// unfinished jobs instead of hanging on them.
func TestFleetGlobalBudget(t *testing.T) {
	var jobs []*Job
	var runners []*fakeRunner
	for i := 0; i < 4; i++ {
		r := &fakeRunner{budget: 1 << 30}
		runners = append(runners, r)
		jobs = append(jobs, &Job{Name: fmt.Sprintf("job%d", i), Runner: r})
	}
	fl := Fleet{Workers: 2, Slice: 500, MaxTotalExecs: 10000}
	fl.Run(jobs)
	total := 0
	for i, r := range runners {
		total += r.spent
		if !jobs[i].Done() {
			t.Errorf("job%d not retired at the global budget", i)
		}
	}
	if total != 10000 {
		t.Errorf("fleet spent %d execs, global budget is 10000", total)
	}
}

// trickleRunner spends far less than any slice it is offered, so its
// steps refund most of their budget reservation.
type trickleRunner struct {
	spent int
}

func (r *trickleRunner) Step(n int) (int, bool) {
	if n > 100 {
		n = 100
	}
	r.spent += n
	return n, true
}

// TestFleetBudgetRefunds pins that a transiently exhausted budget —
// fully reserved by in-flight steps that then refund most of it —
// does not retire jobs early: the fleet must spend the global budget
// exactly, not strand the refunded part.
func TestFleetBudgetRefunds(t *testing.T) {
	const budget = 1000
	var runners []*trickleRunner
	var jobs []*Job
	for i := 0; i < 2; i++ {
		r := &trickleRunner{}
		runners = append(runners, r)
		jobs = append(jobs, &Job{Name: fmt.Sprintf("j%d", i), Runner: r})
	}
	fl := Fleet{Workers: 2, Slice: 4096, MaxTotalExecs: budget}
	fl.Run(jobs)
	total := 0
	for _, r := range runners {
		total += r.spent
	}
	if total != budget {
		t.Errorf("fleet spent %d of the %d global budget; refunded reservations were stranded", total, budget)
	}
}

// TestFleetProgressSerialized: OnProgress fires once per step, is
// never called concurrently (the sink is deliberately unsynchronized
// under -race), and observes the final totals.
func TestFleetProgressSerialized(t *testing.T) {
	var events []Progress
	var mu sync.Mutex // only to silence the checker on the final read; calls are serialized by the fleet
	fl := Fleet{Workers: 4, Slice: 700, OnProgress: func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	}}
	var jobs []*Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, &Job{Name: fmt.Sprintf("j%d", i), Runner: &fakeRunner{budget: 3000}})
	}
	fl.Run(jobs)
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	last := events[len(events)-1]
	if last.Finished != 5 || last.Total != 5 {
		t.Errorf("final progress %d/%d, want 5/5", last.Finished, last.Total)
	}
	if last.Execs != 5*3000 {
		t.Errorf("final progress execs %d, want %d", last.Execs, 5*3000)
	}
}

// TestParallelCampaignSnapshotExact: the speculative pipeline engine
// rebuilds its worker pool per phase and drains it before every Step
// returns, so a Workers>1 campaign cut mid-run, marshalled, restored
// and driven to the same budget reproduces the uninterrupted run's
// corpus bit for bit — parallel snapshots are exact, not approximate,
// which is what lets the corpus store resume a multicore campaign.
func TestParallelCampaignSnapshotExact(t *testing.T) {
	e, _ := registry.Get("expr")
	cfg := core.Config{Seed: 11, MaxExecs: 4000, Workers: 4}
	want := core.New(e.New(), cfg).Run()

	serial := core.New(e.New(), core.Config{Seed: 11, MaxExecs: 4000}).Run()
	if want.Fingerprint() != serial.Fingerprint() {
		t.Fatalf("Workers=4 run diverges from serial before any snapshot (%#x vs %#x)",
			want.Fingerprint(), serial.Fingerprint())
	}

	first := core.NewCampaign(e.New(), cfg)
	for first.Result().Execs < 1600 {
		if _, more := first.Step(257); !more {
			t.Fatalf("campaign finished before the cut at %d execs", first.Result().Execs)
		}
	}
	blob, err := first.Snapshot().Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	snap, err := core.UnmarshalSnapshot(blob)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	resumed, err := core.Restore(e.New(), core.Config{}, snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	for {
		if spent, more := resumed.Step(173); !more || spent == 0 {
			break
		}
	}
	got := resumed.Result()
	if got.Fingerprint() != want.Fingerprint() {
		t.Errorf("resumed parallel campaign fingerprint %#x, uninterrupted %#x (%d vs %d valids)",
			got.Fingerprint(), want.Fingerprint(), len(got.Valids), len(want.Valids))
	}
}

// TestFleetCampaignSeedIdentical is the orchestration acceptance
// property: serial (Workers <= 1) pFuzzer campaigns multiplexed
// through a concurrent fleet emit exactly the sequences their
// standalone Runs do — slicing and interleaving perturb nothing.
func TestFleetCampaignSeedIdentical(t *testing.T) {
	subjects := []string{"expr", "cjson", "tinyc"}
	const execs = 3000

	want := map[string]*core.Result{}
	for _, name := range subjects {
		e, _ := registry.Get(name)
		want[name] = core.New(e.New(), core.Config{Seed: 42, MaxExecs: execs}).Run()
	}

	var jobs []*Job
	camps := map[string]*core.Campaign{}
	for _, name := range subjects {
		e, _ := registry.Get(name)
		c := core.NewCampaign(e.New(), core.Config{Seed: 42, MaxExecs: execs})
		camps[name] = c
		jobs = append(jobs, &Job{Name: name, Runner: c, Slice: 337})
	}
	fl := Fleet{Workers: 3}
	fl.Run(jobs)

	for _, name := range subjects {
		got, w := camps[name].Result(), want[name]
		if got.Execs != w.Execs || len(got.Valids) != len(w.Valids) {
			t.Fatalf("%s: fleet run execs=%d valids=%d, standalone execs=%d valids=%d",
				name, got.Execs, len(got.Valids), w.Execs, len(w.Valids))
		}
		for i := range w.Valids {
			if string(got.Valids[i].Input) != string(w.Valids[i].Input) {
				t.Errorf("%s: valid[%d] = %q, standalone %q", name, i, got.Valids[i].Input, w.Valids[i].Input)
			}
		}
	}
}
