// Package campaign orchestrates fleets of fuzzing campaigns: M
// resumable campaigns multiplexed over a fixed worker pool through
// the step-driven engine API (core.Campaign, afl.Fuzzer,
// klee.Explorer — anything satisfying Runner), under one optional
// global execution budget.
//
// The fleet is what turns the paper's strictly serial evaluation
// matrix (§5: tools × subjects × repetitions) into a saturating
// workload: each campaign advances in execution slices, workers pull
// the next runnable campaign round-robin, and a campaign that
// finishes frees its slot immediately instead of gating the rest of
// its row. Campaigns are never stepped by two workers at once, and a
// serial pFuzzer campaign is slice-invariant, so multiplexing does
// not perturb the deterministic golden sequences — the property
// internal/eval's fleet tests pin.
//
// Two run modes share one scheduling loop. Fleet.Run (and its
// cancellable sibling RunContext) takes a fixed job list and returns
// when it drains — the evaluation-matrix shape. Fleet.Start returns a
// Pool whose workers park when idle and accept jobs submitted over
// time — the long-running service shape internal/daemon multiplexes
// tenant campaigns on. In both modes a job can be cancelled
// (Job.Cancel) or bounded by its own execution budget (Job.MaxExecs),
// and retirement — for any reason — fires the job's OnRetire hook
// outside the fleet lock, so finalization work (final snapshots,
// journal closes) never stalls the scheduler.
package campaign

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Runner is one resumable campaign: Step advances it by up to n
// subject executions and reports how many were spent and whether the
// campaign can still make progress.
type Runner interface {
	Step(n int) (spent int, more bool)
}

// Job is one campaign under fleet control.
type Job struct {
	// Name labels the job in progress reports.
	Name string
	// Runner is the campaign to advance.
	Runner Runner
	// Slice overrides the fleet's per-step slice for this job
	// (0 = Fleet.Slice). A slice at least the campaign's own budget
	// runs it in one step — how internal/eval schedules the AFL and
	// KLEE baselines, whose mutation stages are not slice-invariant.
	Slice int
	// MaxExecs bounds this job's own executions (0 = none): the fleet
	// never hands its Runner more than the remainder and retires the
	// job when it is spent. This is the per-job half of tenant budget
	// enforcement — the daemon layers cross-campaign tenant accounting
	// on top inside its Runner.
	MaxExecs int
	// OnRetire, if non-nil, runs exactly once when the fleet retires
	// the job — finished, cancelled, budget-exhausted, or cut off by
	// the global budget. It is called on the retiring worker's
	// goroutine outside the fleet lock, so it may do IO (cut a final
	// snapshot, close a journal) without stalling other workers.
	OnRetire func(*Job)

	execs  atomic.Int64
	done   atomic.Bool
	cancel atomic.Bool
}

// Execs returns the executions the fleet observed this job spend. It
// is safe to call from any goroutine while the fleet runs.
func (j *Job) Execs() int { return int(j.execs.Load()) }

// Done reports whether the fleet retired the job: its campaign ran
// out of work, it was cancelled, its own or the global budget cut it
// off. Safe from any goroutine.
func (j *Job) Done() bool { return j.done.Load() }

// Cancel asks the fleet to retire the job: a queued job retires
// without stepping again, a job mid-step finishes the current slice
// first. Safe from any goroutine, idempotent; cancelling a retired
// job is a no-op.
func (j *Job) Cancel() { j.cancel.Store(true) }

// Cancelled reports whether Cancel was called.
func (j *Job) Cancelled() bool { return j.cancel.Load() }

// Progress is one fleet progress notification, delivered after every
// job step.
type Progress struct {
	Finished int           // jobs retired so far
	Total    int           // jobs overall (grows with Pool.Submit)
	Execs    int           // executions spent across the fleet
	Job      string        // the job that just advanced
	JobDone  bool          // whether that step retired it
	Elapsed  time.Duration // wall time since Run started, for display only
}

// Fleet runs jobs over a shared worker pool.
type Fleet struct {
	// Workers is the number of campaigns advanced concurrently
	// (<= 1: one at a time, in strict round-robin).
	Workers int
	// Slice is the default per-step execution slice (0 = 4096).
	// Smaller slices interleave campaigns more fairly; larger ones
	// amortize scheduling overhead.
	Slice int
	// MaxTotalExecs bounds executions across all jobs (0 = none).
	// Slices are reserved against it before stepping, so the fleet
	// overshoots by at most each engine's in-flight pair; jobs still
	// unfinished when it runs out are retired where they stand.
	MaxTotalExecs int
	// OnProgress, if non-nil, observes every job step. Calls are
	// serialized under the fleet's lock, so the sink needs no
	// synchronization of its own — and must not block: slow IO
	// belongs in Job.OnRetire, which runs outside the lock.
	OnProgress func(Progress)
}

// Run advances every job to completion (or to the global budget) and
// returns only when all workers have drained. Jobs are queued in the
// given order and re-queued after each step, so with one worker the
// schedule is a deterministic round-robin.
func (fl *Fleet) Run(jobs []*Job) {
	fl.RunContext(context.Background(), jobs)
}

// RunContext is Run with cancellation: when ctx is done, every worker
// finishes the step slice it is currently executing and returns
// without popping new work. Jobs not yet retired keep their state —
// their Runners hold it — and are not marked Done; the caller decides
// whether to snapshot or resume them. RunContext returns when all
// workers have drained, in-flight steps included.
func (fl *Fleet) RunContext(ctx context.Context, jobs []*Job) {
	if len(jobs) == 0 {
		return
	}
	workers := fl.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	s := newFleetState(fl, false)
	s.ready = append(s.ready, jobs...)
	s.total = len(jobs)

	stop := make(chan struct{})
	var watch sync.WaitGroup
	if ctx.Done() != nil {
		watch.Add(1)
		go func() {
			defer watch.Done()
			select {
			case <-ctx.Done():
				s.mu.Lock()
				s.stopping = true
				s.mu.Unlock()
				s.cond.Broadcast()
			case <-stop:
			}
		}()
	}

	s.runWorkers(workers).Wait()
	close(stop)
	watch.Wait()
}

// Start launches the fleet in dynamic mode and returns its Pool:
// workers park when no job is ready instead of exiting, and jobs
// arrive over time through Pool.Submit. The fixed-list semantics of
// Run — round-robin re-queueing, budget reservation, OnProgress —
// are identical.
func (fl *Fleet) Start() *Pool {
	s := newFleetState(fl, true)
	workers := fl.Workers
	p := &Pool{s: s}
	p.wg = s.runWorkers(workers)
	return p
}

// Pool is a running dynamic fleet (Fleet.Start).
type Pool struct {
	s  *fleetState
	wg *sync.WaitGroup
}

// ErrStopped is returned by Pool.Submit after Stop.
var ErrStopped = errors.New("campaign: pool is stopped")

// Submit hands a job to the pool. It returns ErrStopped once Stop has
// been called; otherwise the job runs until it finishes, is
// cancelled, or exhausts a budget, and then fires its OnRetire hook.
func (p *Pool) Submit(j *Job) error {
	s := p.s
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return ErrStopped
	}
	s.ready = append(s.ready, j)
	s.total++
	s.mu.Unlock()
	s.cond.Broadcast()
	return nil
}

// Stop shuts the pool down gracefully: workers finish the step slice
// they are executing, stop popping new work, and exit; Stop returns
// when all of them have. Jobs still queued or mid-step are NOT
// retired and keep their Runner state, so the caller can snapshot
// them for a later resume. Idempotent.
func (p *Pool) Stop() {
	s := p.s
	s.mu.Lock()
	s.stopping = true
	s.mu.Unlock()
	s.cond.Broadcast()
	p.wg.Wait()
}

// QueueDepth reports how many jobs are currently runnable: queued
// ready plus being stepped right now.
func (p *Pool) QueueDepth() int {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ready) + s.active
}

// Execs reports the executions spent across the pool's lifetime.
func (p *Pool) Execs() int {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execs
}

// fleetState is the orchestrator's shared scheduling state: a FIFO
// ready queue plus budget accounting, guarded by one mutex (steps do
// the heavy lifting outside it).
type fleetState struct {
	fl      *Fleet
	slice   int
	dynamic bool      // park idle workers instead of exiting (Pool mode)
	started time.Time // Run/Start entry, stamps Progress.Elapsed

	mu       sync.Mutex
	cond     *sync.Cond
	stopping bool // RunContext cancellation or Pool.Stop
	ready    []*Job
	total    int
	active   int // jobs being stepped right now
	finished int
	execs    int // executions spent across the fleet
	reserved int // execs + slices handed to in-flight steps
}

func newFleetState(fl *Fleet, dynamic bool) *fleetState {
	slice := fl.Slice
	if slice <= 0 {
		slice = 4096
	}
	s := &fleetState{fl: fl, slice: slice, dynamic: dynamic, started: time.Now()}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// runWorkers spawns the worker goroutines and returns their
// WaitGroup.
func (s *fleetState) runWorkers(workers int) *sync.WaitGroup {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.work()
		}()
	}
	return &wg
}

// budgetLeft returns how many executions may still be reserved, or -1
// for unlimited. Callers hold mu.
func (s *fleetState) budgetLeft() int {
	if s.fl.MaxTotalExecs <= 0 {
		return -1
	}
	left := s.fl.MaxTotalExecs - s.reserved
	if left < 0 {
		left = 0
	}
	return left
}

// work is one worker's loop: pop the next ready job, step it outside
// the lock, account the result, re-queue or retire.
func (s *fleetState) work() {
	for {
		s.mu.Lock()
		for !s.stopping && len(s.ready) == 0 && (s.dynamic || s.active > 0) {
			s.cond.Wait()
		}
		if s.stopping || len(s.ready) == 0 {
			// Stopping: leave remaining jobs un-retired (their Runners
			// hold their state). Otherwise: no ready work and nobody
			// stepping who could requeue any — the fleet is drained.
			s.mu.Unlock()
			s.cond.Broadcast()
			return
		}
		j := s.ready[0]
		s.ready = s.ready[1:]

		if j.cancel.Load() {
			s.retireLocked(j)
			s.mu.Unlock()
			s.afterRetire(j)
			s.cond.Broadcast()
			continue
		}

		n := s.slice
		if j.Slice > 0 {
			n = j.Slice
		}
		if j.MaxExecs > 0 {
			left := j.MaxExecs - int(j.execs.Load())
			if left <= 0 {
				// The job's own budget is spent: retire where it stands.
				s.retireLocked(j)
				s.mu.Unlock()
				s.afterRetire(j)
				s.cond.Broadcast()
				continue
			}
			if n > left {
				n = left
			}
		}
		if left := s.budgetLeft(); left >= 0 && n > left {
			n = left
		}
		if n == 0 {
			if s.active > 0 {
				// The budget is only transiently zero: in-flight steps
				// hold reservations they may partly refund. Requeue and
				// wait for one to settle rather than retiring a job
				// that refunded budget could still advance.
				s.ready = append(s.ready, j)
				s.cond.Wait()
				s.mu.Unlock()
				continue
			}
			// Global budget truly exhausted: retire the job where it
			// stands.
			s.retireLocked(j)
			s.mu.Unlock()
			s.afterRetire(j)
			s.cond.Broadcast()
			continue
		}
		s.active++
		s.reserved += n
		s.mu.Unlock()

		spent, more := j.Runner.Step(n)

		s.mu.Lock()
		s.active--
		s.reserved += spent - n // refund the unspent reservation
		s.execs += spent
		j.execs.Add(int64(spent))
		exhausted := j.MaxExecs > 0 && int(j.execs.Load()) >= j.MaxExecs
		if more && spent > 0 && !j.cancel.Load() && !exhausted {
			s.ready = append(s.ready, j)
			s.notify(j, false)
			s.mu.Unlock()
		} else {
			// Finished, cancelled, out of its own budget — or spinning
			// (spent == 0 with more): retire rather than loop forever
			// on a stuck campaign.
			s.retireLocked(j)
			s.mu.Unlock()
			s.afterRetire(j)
		}
		s.cond.Broadcast()
	}
}

// retireLocked marks j done and reports progress. Callers hold mu and
// must call afterRetire(j) once they have released it.
func (s *fleetState) retireLocked(j *Job) {
	j.done.Store(true)
	s.finished++
	s.notify(j, true)
}

// afterRetire fires the job's OnRetire hook. Callers must NOT hold
// mu: the hook may do IO (final snapshot, journal close) and must not
// stall the scheduler.
func (s *fleetState) afterRetire(j *Job) {
	if j.OnRetire != nil {
		j.OnRetire(j)
	}
}

// notify delivers a progress event. Callers hold mu.
func (s *fleetState) notify(j *Job, done bool) {
	if s.fl.OnProgress != nil {
		s.fl.OnProgress(Progress{
			Finished: s.finished, Total: s.total, Execs: s.execs,
			Job: j.Name, JobDone: done,
			Elapsed: time.Since(s.started),
		})
	}
}
