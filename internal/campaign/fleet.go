// Package campaign orchestrates fleets of fuzzing campaigns: M
// resumable campaigns multiplexed over a fixed worker pool through
// the step-driven engine API (core.Campaign, afl.Fuzzer,
// klee.Explorer — anything satisfying Runner), under one optional
// global execution budget.
//
// The fleet is what turns the paper's strictly serial evaluation
// matrix (§5: tools × subjects × repetitions) into a saturating
// workload: each campaign advances in execution slices, workers pull
// the next runnable campaign round-robin, and a campaign that
// finishes frees its slot immediately instead of gating the rest of
// its row. Campaigns are never stepped by two workers at once, and a
// serial pFuzzer campaign is slice-invariant, so multiplexing does
// not perturb the deterministic golden sequences — the property
// internal/eval's fleet tests pin.
package campaign

import (
	"sync"
	"time"
)

// Runner is one resumable campaign: Step advances it by up to n
// subject executions and reports how many were spent and whether the
// campaign can still make progress.
type Runner interface {
	Step(n int) (spent int, more bool)
}

// Job is one campaign under fleet control.
type Job struct {
	// Name labels the job in progress reports.
	Name string
	// Runner is the campaign to advance.
	Runner Runner
	// Slice overrides the fleet's per-step slice for this job
	// (0 = Fleet.Slice). A slice at least the campaign's own budget
	// runs it in one step — how internal/eval schedules the AFL and
	// KLEE baselines, whose mutation stages are not slice-invariant.
	Slice int

	execs int
	done  bool
}

// Execs returns the executions the fleet observed this job spend.
func (j *Job) Execs() int { return j.execs }

// Done reports whether the fleet retired the job: its campaign ran
// out of work, or the global budget cut it off.
func (j *Job) Done() bool { return j.done }

// Progress is one fleet progress notification, delivered after every
// job step.
type Progress struct {
	Finished int           // jobs retired so far
	Total    int           // jobs overall
	Execs    int           // executions spent across the fleet
	Job      string        // the job that just advanced
	JobDone  bool          // whether that step retired it
	Elapsed  time.Duration // wall time since Run started, for display only
}

// Fleet runs jobs over a shared worker pool.
type Fleet struct {
	// Workers is the number of campaigns advanced concurrently
	// (<= 1: one at a time, in strict round-robin).
	Workers int
	// Slice is the default per-step execution slice (0 = 4096).
	// Smaller slices interleave campaigns more fairly; larger ones
	// amortize scheduling overhead.
	Slice int
	// MaxTotalExecs bounds executions across all jobs (0 = none).
	// Slices are reserved against it before stepping, so the fleet
	// overshoots by at most each engine's in-flight pair; jobs still
	// unfinished when it runs out are retired where they stand.
	MaxTotalExecs int
	// OnProgress, if non-nil, observes every job step. Calls are
	// serialized under the fleet's lock, so the sink needs no
	// synchronization of its own.
	OnProgress func(Progress)
}

// Run advances every job to completion (or to the global budget) and
// returns only when all workers have drained. Jobs are queued in the
// given order and re-queued after each step, so with one worker the
// schedule is a deterministic round-robin.
func (fl *Fleet) Run(jobs []*Job) {
	workers := fl.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	slice := fl.Slice
	if slice <= 0 {
		slice = 4096
	}
	if len(jobs) == 0 {
		return
	}

	s := &fleetState{
		fl:       fl,
		slice:    slice,
		total:    len(jobs),
		ready:    append(make([]*Job, 0, len(jobs)), jobs...),
		reserved: 0,
		started:  time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.work()
		}()
	}
	wg.Wait()
}

// fleetState is the orchestrator's shared scheduling state: a FIFO
// ready queue plus budget accounting, guarded by one mutex (steps do
// the heavy lifting outside it).
type fleetState struct {
	fl      *Fleet
	slice   int
	total   int
	started time.Time // Run entry, stamps Progress.Elapsed

	mu       sync.Mutex
	cond     *sync.Cond
	ready    []*Job
	active   int // jobs being stepped right now
	finished int
	execs    int // executions spent across the fleet
	reserved int // execs + slices handed to in-flight steps
}

// budgetLeft returns how many executions may still be reserved, or -1
// for unlimited. Callers hold mu.
func (s *fleetState) budgetLeft() int {
	if s.fl.MaxTotalExecs <= 0 {
		return -1
	}
	left := s.fl.MaxTotalExecs - s.reserved
	if left < 0 {
		left = 0
	}
	return left
}

// work is one worker's loop: pop the next ready job, step it outside
// the lock, account the result, re-queue or retire.
func (s *fleetState) work() {
	for {
		s.mu.Lock()
		for len(s.ready) == 0 && s.active > 0 {
			s.cond.Wait()
		}
		if len(s.ready) == 0 {
			// No ready work and nobody stepping who could requeue any:
			// the fleet is drained.
			s.mu.Unlock()
			s.cond.Broadcast()
			return
		}
		j := s.ready[0]
		s.ready = s.ready[1:]

		n := s.slice
		if j.Slice > 0 {
			n = j.Slice
		}
		if left := s.budgetLeft(); left >= 0 && n > left {
			n = left
		}
		if n == 0 {
			if s.active > 0 {
				// The budget is only transiently zero: in-flight steps
				// hold reservations they may partly refund. Requeue and
				// wait for one to settle rather than retiring a job
				// that refunded budget could still advance.
				s.ready = append(s.ready, j)
				s.cond.Wait()
				s.mu.Unlock()
				continue
			}
			// Global budget truly exhausted: retire the job where it
			// stands.
			s.retire(j)
			s.mu.Unlock()
			s.cond.Broadcast()
			continue
		}
		s.active++
		s.reserved += n
		s.mu.Unlock()

		spent, more := j.Runner.Step(n)

		s.mu.Lock()
		s.active--
		s.reserved += spent - n // refund the unspent reservation
		s.execs += spent
		j.execs += spent
		if more && spent > 0 {
			s.ready = append(s.ready, j)
			s.notify(j, false)
		} else {
			// Finished — or spinning (spent == 0 with more): retire
			// rather than loop forever on a stuck campaign.
			s.retire(j)
		}
		s.mu.Unlock()
		s.cond.Broadcast()
	}
}

// retire marks j done and reports progress. Callers hold mu.
func (s *fleetState) retire(j *Job) {
	j.done = true
	s.finished++
	s.notify(j, true)
}

// notify delivers a progress event. Callers hold mu.
func (s *fleetState) notify(j *Job, done bool) {
	if s.fl.OnProgress != nil {
		s.fl.OnProgress(Progress{
			Finished: s.finished, Total: s.total, Execs: s.execs,
			Job: j.Name, JobDone: done,
			Elapsed: time.Since(s.started),
		})
	}
}
