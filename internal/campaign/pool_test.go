package campaign

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingRunner spends its slice only after being released, so tests
// can hold a step in flight deterministically.
type blockingRunner struct {
	entered chan struct{} // closed-ish: one token per Step entry
	release chan struct{} // one token releases one Step
	spent   atomic.Int64
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{
		entered: make(chan struct{}, 64),
		release: make(chan struct{}, 64),
	}
}

func (r *blockingRunner) Step(n int) (int, bool) {
	r.entered <- struct{}{}
	<-r.release
	r.spent.Add(int64(n))
	return n, true
}

// TestRunContextFinishesCurrentSlice: cancelling the context lets the
// in-flight step complete, then every worker returns without popping
// new work; un-retired jobs are not marked Done.
func TestRunContextFinishesCurrentSlice(t *testing.T) {
	r := newBlockingRunner()
	idle := &fakeRunner{budget: 1 << 30}
	jobs := []*Job{
		{Name: "blocked", Runner: r},
		{Name: "idle", Runner: idle},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	fl := Fleet{Workers: 1, Slice: 64}
	go func() {
		fl.RunContext(ctx, jobs)
		close(done)
	}()

	<-r.entered // the worker is inside Step
	cancel()
	select {
	case <-done:
		t.Fatal("RunContext returned while a step was still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	r.release <- struct{}{} // let the slice finish
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after the in-flight slice finished")
	}
	if got := r.spent.Load(); got != 64 {
		t.Errorf("blocked job spent %d execs, want exactly the one in-flight slice (64)", got)
	}
	if jobs[0].Done() {
		t.Error("cancelled-context job was marked Done; its state should stay resumable")
	}
}

// TestJobCancel: a cancelled queued job retires without another step,
// a job cancelled mid-step finishes that slice first, and OnRetire
// fires exactly once either way.
func TestJobCancel(t *testing.T) {
	r := newBlockingRunner()
	var retired [2]atomic.Int32
	queued := &fakeRunner{budget: 1 << 30}
	jobs := []*Job{
		{Name: "stepping", Runner: r, OnRetire: func(*Job) { retired[0].Add(1) }},
		{Name: "queued", Runner: queued, OnRetire: func(*Job) { retired[1].Add(1) }},
	}
	done := make(chan struct{})
	fl := Fleet{Workers: 1, Slice: 32}
	go func() {
		fl.Run(jobs)
		close(done)
	}()

	<-r.entered // job 0 is mid-step, job 1 queued
	jobs[0].Cancel()
	jobs[1].Cancel()
	r.release <- struct{}{}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fleet did not drain after cancelling both jobs")
	}
	if got := r.spent.Load(); got != 32 {
		t.Errorf("mid-step job spent %d, want exactly the in-flight slice (32)", got)
	}
	if queued.spent != 0 {
		t.Errorf("queued cancelled job was stepped: spent %d", queued.spent)
	}
	for i := range retired {
		if n := retired[i].Load(); n != 1 {
			t.Errorf("job%d OnRetire fired %d times, want 1", i, n)
		}
		if !jobs[i].Done() {
			t.Errorf("job%d not marked Done after cancel", i)
		}
	}
}

// TestJobMaxExecs: a job's own budget caps the slices handed to its
// Runner and retires it exactly at the boundary.
func TestJobMaxExecs(t *testing.T) {
	r := &fakeRunner{budget: 1 << 30}
	j := &Job{Name: "capped", Runner: r, MaxExecs: 10_000}
	fl := Fleet{Workers: 1, Slice: 4096}
	fl.Run([]*Job{j})
	if r.spent != 10_000 {
		t.Errorf("runner spent %d, want exactly the job budget 10000", r.spent)
	}
	if !j.Done() || j.Execs() != 10_000 {
		t.Errorf("job done=%v execs=%d, want done at 10000", j.Done(), j.Execs())
	}
}

// TestPoolDynamic: jobs submitted over time to a started pool all
// complete; Stop drains in-flight work; Submit after Stop fails.
func TestPoolDynamic(t *testing.T) {
	fl := Fleet{Workers: 4, Slice: 512}
	p := fl.Start()

	var runners []*fakeRunner
	var jobs []*Job
	var retired atomic.Int32
	for i := 0; i < 12; i++ {
		r := &fakeRunner{budget: 5000 + 100*i}
		runners = append(runners, r)
		j := &Job{Name: fmt.Sprintf("dyn%d", i), Runner: r, OnRetire: func(*Job) { retired.Add(1) }}
		jobs = append(jobs, j)
		if err := p.Submit(j); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if i == 5 {
			time.Sleep(time.Millisecond) // interleave submissions with running work
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for retired.Load() != 12 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/12 jobs retired", retired.Load())
		}
		time.Sleep(time.Millisecond)
	}
	for i, r := range runners {
		if r.spent != r.budget {
			t.Errorf("dyn%d spent %d of %d", i, r.spent, r.budget)
		}
		if r.overlaps.Load() != 0 {
			t.Errorf("dyn%d stepped concurrently", i)
		}
		if !jobs[i].Done() {
			t.Errorf("dyn%d not Done", i)
		}
	}
	if d := p.QueueDepth(); d != 0 {
		t.Errorf("drained pool QueueDepth = %d, want 0", d)
	}
	p.Stop()
	if err := p.Submit(&Job{Name: "late", Runner: &fakeRunner{budget: 1}}); err != ErrStopped {
		t.Errorf("Submit after Stop: err = %v, want ErrStopped", err)
	}
	p.Stop() // idempotent
}

// TestPoolStopLeavesStateResumable: Stop finishes the in-flight slice
// and leaves unfinished jobs un-retired, exactly like RunContext.
func TestPoolStopLeavesStateResumable(t *testing.T) {
	fl := Fleet{Workers: 2, Slice: 128}
	p := fl.Start()
	r := newBlockingRunner()
	j := &Job{Name: "inflight", Runner: r}
	if err := p.Submit(j); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-r.entered
	stopped := make(chan struct{})
	go func() {
		p.Stop()
		close(stopped)
	}()
	select {
	case <-stopped:
		t.Fatal("Stop returned while a step was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	r.release <- struct{}{}
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return after the in-flight slice finished")
	}
	if r.spent.Load() != 128 {
		t.Errorf("in-flight job spent %d, want exactly one slice (128)", r.spent.Load())
	}
	if j.Done() {
		t.Error("stopped-pool job marked Done; its state should stay resumable")
	}
}

// TestPoolConcurrentSubmitCancel hammers Submit/Cancel/QueueDepth
// from many goroutines — a -race workout for the dynamic pool.
func TestPoolConcurrentSubmitCancel(t *testing.T) {
	fl := Fleet{Workers: 4, Slice: 64}
	p := fl.Start()
	var wg sync.WaitGroup
	var retired atomic.Int32
	const n = 32
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				j := &Job{
					Name:     fmt.Sprintf("g%d-%d", g, i),
					Runner:   &fakeRunner{budget: 2000},
					MaxExecs: 1500,
					OnRetire: func(*Job) { retired.Add(1) },
				}
				if err := p.Submit(j); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if i%3 == 0 {
					j.Cancel()
				}
				p.QueueDepth()
			}
		}(g)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for retired.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs retired", retired.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
}
