package daemon

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Campaign lifecycle states, persisted in each campaign's spec.
const (
	StateRunning   = "running"   // submitted and owned by the fleet (or due a resume)
	StateDone      = "done"      // ran out of work or budget
	StateCancelled = "cancelled" // cancelled through the API
	StateFailed    = "failed"    // aborted on an internal error (journal IO, restore)
)

// Submission is one campaign request as posted to the API. The zero
// values defer to the daemon's defaults; Subject is the only required
// field (Tenant defaults to "default").
type Submission struct {
	// Tenant names the budget domain this campaign draws from.
	Tenant string `json:"tenant,omitempty"`
	// Subject is the registered subject to fuzz (required).
	Subject string `json:"subject"`
	// Seed seeds the campaign RNG (campaigns are deterministic under
	// it at every worker count).
	Seed int64 `json:"seed,omitempty"`
	// MaxExecs is the campaign's execution budget (0 = the engine
	// default, 100000).
	MaxExecs int `json:"execs,omitempty"`
	// Workers is the engine concurrency for this campaign (<= 1
	// serial; higher counts are bit-identical, just faster).
	Workers int `json:"workers,omitempty"`
	// Mine enables the hybrid grammar-mining campaign (§7.4).
	Mine bool `json:"mine,omitempty"`
	// Shim, when non-empty, drives the subject out of process through
	// this argv (binary + args) speaking the shim protocol
	// (DESIGN.md §14), one child pool per campaign.
	Shim []string `json:"shim,omitempty"`
	// SnapEvery overrides the daemon's snapshot cadence for this
	// campaign (0 = daemon default).
	SnapEvery int `json:"snap_every,omitempty"`
}

// Spec is the durable record of one campaign: the submission plus the
// daemon's bookkeeping, persisted as spec.json in the campaign's
// directory and rewritten (atomically, tmp+rename) on every state
// transition. A daemon restarted after kill -9 rebuilds its entire
// campaign table from these files plus the corpus journals beside
// them.
type Spec struct {
	ID string `json:"id"`
	Submission
	State string `json:"state"`
	// Error carries the failure cause for StateFailed.
	Error string `json:"error,omitempty"`
	// FinalExecs/FinalValids/FinalElapsedMS record the terminal
	// counters for finished campaigns, so listings and metrics after a
	// restart need not reopen (and re-lock) settled journals.
	FinalExecs     int   `json:"final_execs,omitempty"`
	FinalValids    int   `json:"final_valids,omitempty"`
	FinalElapsedMS int64 `json:"final_elapsed_ms,omitempty"`
}

const specFile = "spec.json"

// journalPath returns the corpus journal inside a campaign directory.
func journalPath(dir string) string { return filepath.Join(dir, "corpus") }

// writeSpec persists sp into dir atomically: a torn write can only
// affect the temp file, never the published spec, so a spec read back
// after any crash is either the previous state or the new one.
func writeSpec(dir string, sp *Spec) error {
	b, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return fmt.Errorf("daemon: encoding spec: %w", err)
	}
	tmp := filepath.Join(dir, specFile+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("daemon: writing spec: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, specFile)); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup of the failed publish
		return fmt.Errorf("daemon: publishing spec: %w", err)
	}
	return nil
}

// readSpec loads a campaign spec from dir.
func readSpec(dir string) (*Spec, error) {
	b, err := os.ReadFile(filepath.Join(dir, specFile))
	if err != nil {
		return nil, err
	}
	var sp Spec
	if err := json.Unmarshal(b, &sp); err != nil {
		return nil, fmt.Errorf("daemon: decoding %s: %w", filepath.Join(dir, specFile), err)
	}
	return &sp, nil
}

// scanSpecs loads every campaign spec under root, sorted by ID, and
// returns the highest numeric ID suffix seen so fresh IDs continue
// the sequence across restarts. Directories without a readable spec
// (a submission cut down by a crash before its spec was published)
// are skipped: no spec means no promises to keep.
func scanSpecs(root string) (specs []*Spec, maxSeq int, err error) {
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, 0, fmt.Errorf("daemon: scanning %s: %w", root, err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		sp, err := readSpec(filepath.Join(root, e.Name()))
		if err != nil {
			continue
		}
		if sp.ID != e.Name() {
			continue // a copied-in directory; its spec names another campaign
		}
		specs = append(specs, sp)
		if n, ok := seqOf(sp.ID); ok && n > maxSeq {
			maxSeq = n
		}
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].ID < specs[j].ID })
	return specs, maxSeq, nil
}

// seqOf parses the numeric suffix of a daemon-issued campaign ID.
func seqOf(id string) (int, bool) {
	if !strings.HasPrefix(id, "c") {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// formatID renders sequence n as a campaign ID. Zero-padding keeps
// lexical and numeric order identical, so sorted listings read in
// submission order.
func formatID(n int) string { return fmt.Sprintf("c%06d", n) }
