package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler returns the daemon's HTTP API:
//
//	POST /campaigns              submit a campaign (Submission JSON) -> Status
//	GET  /campaigns              list campaigns -> []Status
//	GET  /campaigns/{id}         one campaign -> Status
//	POST /campaigns/{id}/cancel  cancel a campaign -> Status
//	GET  /campaigns/{id}/events  live event stream (SSE)
//	GET  /metrics                Prometheus text exposition
//	GET  /healthz                liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleGet)
	mux.HandleFunc("POST /campaigns/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// maxSubmission bounds a submission body; campaign specs are small.
const maxSubmission = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sub Submission
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmission))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding submission: %w", err))
		return
	}
	if sub.Subject == "" {
		writeError(w, http.StatusBadRequest, errors.New("submission needs a subject"))
		return
	}
	st, err := s.Submit(sub)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrUnknownSubject), errors.Is(err, ErrBudgetExhausted):
			code = http.StatusUnprocessableEntity
		case errors.Is(err, ErrShimDenied):
			code = http.StatusForbidden
		case errors.Is(err, ErrShuttingDown):
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Campaigns())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Campaign(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no campaign %s", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		code := http.StatusConflict
		if errors.Is(err, ErrNoCampaign) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	st, _ := s.Campaign(id)
	writeJSON(w, http.StatusAccepted, st)
}

// handleEvents streams a campaign's events as SSE: one `data:` line
// per WireEvent, flushed immediately. The stream ends when the
// campaign retires (terminal "retired" event, then EOF) or the client
// goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, ok := s.subscribe(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no campaign %s", id))
		return
	}
	defer cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case b, live := <-ch:
			if !live {
				return // campaign retired (or daemon shutting down)
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}
