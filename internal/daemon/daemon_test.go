package daemon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pfuzzer/internal/core"
	"pfuzzer/internal/corpus"
	"pfuzzer/internal/registry"
)

// TestMain doubles as the reexec child for the crash-recovery test:
// with PFUZZERD_CHILD set, the test binary becomes a pfuzzerd — it
// serves the daemon API on a loopback port until it is killed, and
// never runs any tests.
func TestMain(m *testing.M) {
	if os.Getenv("PFUZZERD_CHILD") != "" {
		runChild()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// newTestServer starts a daemon over a fresh state directory.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Root == "" {
		cfg.Root = t.TempDir()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Slice == 0 {
		cfg.Slice = 1024
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

// waitState polls until the campaign reaches the wanted state.
func waitState(t *testing.T, s *Server, id, want string) Status {
	t.Helper()
	// Generous: the race detector slows the engine by an order of
	// magnitude.
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, ok := s.Campaign(id)
		if !ok {
			t.Fatalf("campaign %s vanished", id)
		}
		if st.State == want {
			return st
		}
		if st.State != StateRunning {
			t.Fatalf("campaign %s reached %q (error %q), want %q", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still %q after 120s, want %q", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// referenceValids runs the same campaign uninterrupted in-process and
// returns its valid inputs in discovery order — the corpus any
// daemon-run (or crash-resumed) journal must converge to.
func referenceValids(t *testing.T, sub Submission) [][]byte {
	t.Helper()
	entry, ok := registry.Get(sub.Subject)
	if !ok {
		t.Fatalf("unknown subject %q", sub.Subject)
	}
	var valids [][]byte
	cfg := core.Config{
		Seed: sub.Seed, MaxExecs: sub.MaxExecs, Workers: sub.Workers,
		MinePhase: sub.Mine, MineLexer: entry.Lexer,
		Events: func(ev core.Event) {
			if ev.Kind == core.EventValid {
				valids = append(valids, append([]byte(nil), ev.Input...))
			}
		},
	}
	camp := core.NewCampaign(entry.New(), cfg)
	for {
		spent, more := camp.Step(1 << 20)
		if !more || spent == 0 {
			break
		}
	}
	return valids
}

func sameCorpus(got [][]byte, want [][]byte) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			return false
		}
	}
	return true
}

func TestSubmitRunsToCompletion(t *testing.T) {
	s := newTestServer(t, Config{SnapEvery: 2000})
	sub := Submission{Subject: "expr", Seed: 3, MaxExecs: 20000}
	st, err := s.Submit(sub)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID == "" || st.State != StateRunning {
		t.Fatalf("initial status = %+v", st)
	}
	fin := waitState(t, s, st.ID, StateDone)
	if fin.Valids == 0 {
		t.Fatalf("campaign finished with no valids: %+v", fin)
	}
	if fin.Execs < sub.MaxExecs {
		t.Fatalf("campaign retired at %d execs, budget %d", fin.Execs, sub.MaxExecs)
	}

	// The journal is closed (lock released) and holds exactly the
	// corpus the uninterrupted reference run produces.
	store, err := corpus.Open(filepath.Join(s.cfg.Root, st.ID, "corpus"))
	if err != nil {
		t.Fatalf("Open journal: %v", err)
	}
	defer store.Close()
	if want := referenceValids(t, sub); !sameCorpus(store.ValidInputs(), want) {
		t.Fatalf("journal corpus diverged: %d valids, want %d", len(store.Valids()), len(want))
	}
	if store.Snapshot() == nil {
		t.Fatalf("no final snapshot in the journal")
	}
}

func TestCancelStopsAndJournals(t *testing.T) {
	s := newTestServer(t, Config{Slice: 256})
	st, err := s.Submit(Submission{Subject: "cjson", Seed: 1, MaxExecs: 50_000_000})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Let it actually run a bit so the cancel lands mid-campaign.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, _ := s.Campaign(st.ID)
		if cur.Execs > 2000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never advanced")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Cancel(st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	fin := waitState(t, s, st.ID, StateCancelled)
	if fin.Execs >= 50_000_000 {
		t.Fatalf("cancelled campaign ran out its whole budget")
	}
	if err := s.Cancel(st.ID); err == nil {
		t.Fatalf("cancelling a settled campaign succeeded")
	}
	// Its journal closed with a final snapshot: resumable by hand.
	store, err := corpus.Open(filepath.Join(s.cfg.Root, st.ID, "corpus"))
	if err != nil {
		t.Fatalf("Open journal: %v", err)
	}
	defer store.Close()
	if store.Snapshot() == nil {
		t.Fatalf("cancelled campaign left no snapshot")
	}
}

func TestTenantBudgetEnforced(t *testing.T) {
	s := newTestServer(t, Config{TenantBudget: 6000, Slice: 512})
	a, err := s.Submit(Submission{Tenant: "acme", Subject: "expr", Seed: 1, MaxExecs: 100000})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	b, err := s.Submit(Submission{Tenant: "acme", Subject: "paren", Seed: 2, MaxExecs: 100000})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	fa := waitState(t, s, a.ID, StateDone)
	fb := waitState(t, s, b.ID, StateDone)
	// Both campaigns drew from one 6000-exec budget; each engine may
	// overshoot its last granted slice by an in-flight pair only.
	if total := fa.Execs + fb.Execs; total > 6000+1024 {
		t.Fatalf("tenant spent %d execs against a budget of 6000", total)
	}
	if _, err := s.Submit(Submission{Tenant: "acme", Subject: "expr", MaxExecs: 1000}); err == nil {
		t.Fatalf("submit against an exhausted tenant budget succeeded")
	}
	// Other tenants are unaffected.
	c, err := s.Submit(Submission{Tenant: "globex", Subject: "expr", Seed: 1, MaxExecs: 3000})
	if err != nil {
		t.Fatalf("Submit for a fresh tenant: %v", err)
	}
	waitState(t, s, c.ID, StateDone)
}

func TestGracefulCloseResumes(t *testing.T) {
	root := t.TempDir()
	sub := Submission{Subject: "expr", Seed: 9, MaxExecs: 15000, SnapEvery: 1000}
	want := referenceValids(t, sub)

	s1, err := New(Config{Root: root, Workers: 2, Slice: 512})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := s1.Submit(sub)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Close mid-run: the campaign parks with a snapshot, spec still
	// running.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, _ := s1.Campaign(st.ID)
		if cur.Execs > 3000 || cur.State != StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never advanced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := New(Config{Root: root, Workers: 2, Slice: 512})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	defer s2.Close()
	cur, ok := s2.Campaign(st.ID)
	if !ok {
		t.Fatalf("restarted daemon lost campaign %s", st.ID)
	}
	if cur.State != StateRunning && cur.State != StateDone {
		t.Fatalf("resumed campaign in state %q", cur.State)
	}
	fin := waitState(t, s2, st.ID, StateDone)
	if fin.Execs < sub.MaxExecs {
		t.Fatalf("resumed campaign retired at %d execs, budget %d", fin.Execs, sub.MaxExecs)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	store, err := corpus.Open(filepath.Join(root, st.ID, "corpus"))
	if err != nil {
		t.Fatalf("Open journal: %v", err)
	}
	defer store.Close()
	if !sameCorpus(store.ValidInputs(), want) {
		t.Fatalf("resumed corpus diverged: %d valids, want %d", len(store.Valids()), len(want))
	}
}

// TestMetricsMultiTenant pins the acceptance shape: two tenants'
// campaigns running concurrently, with /metrics reporting execs,
// rates, cache hit ratio, valids, queue depth and per-tenant budget.
func TestMetricsMultiTenant(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, Slice: 512, TenantBudget: 40_000_000})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := make([]string, 2)
	for i, sub := range []Submission{
		{Tenant: "acme", Subject: "cjson", Seed: 1, MaxExecs: 20_000_000},
		{Tenant: "globex", Subject: "ini", Seed: 2, MaxExecs: 20_000_000},
	} {
		body, _ := json.Marshal(sub)
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /campaigns: %v", err)
		}
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /campaigns = %d: %+v", resp.StatusCode, st)
		}
		ids[i] = st.ID
	}

	// Wait until both are demonstrably running concurrently.
	deadline := time.Now().Add(30 * time.Second)
	for {
		a, _ := s.Campaign(ids[0])
		b, _ := s.Campaign(ids[1])
		if a.Execs > 0 && b.Execs > 0 && a.State == StateRunning && b.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaigns not concurrently running: %+v / %+v", a, b)
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{
		fmt.Sprintf("pfuzzerd_campaign_execs{campaign=%q,tenant=\"acme\",subject=\"cjson\"}", ids[0]),
		fmt.Sprintf("pfuzzerd_campaign_execs{campaign=%q,tenant=\"globex\",subject=\"ini\"}", ids[1]),
		fmt.Sprintf("pfuzzerd_campaign_execs_per_second{campaign=%q", ids[0]),
		fmt.Sprintf("pfuzzerd_campaign_cache_hit_ratio{campaign=%q", ids[0]),
		fmt.Sprintf("pfuzzerd_campaign_valids{campaign=%q", ids[1]),
		"pfuzzerd_campaigns{state=\"running\"} 2",
		"pfuzzerd_queue_depth",
		"pfuzzerd_tenant_budget_remaining{tenant=\"acme\"}",
		"pfuzzerd_tenant_budget_remaining{tenant=\"globex\"}",
		"pfuzzerd_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// Cancel both over HTTP; statuses and the list must settle.
	for _, id := range ids {
		resp, err := http.Post(ts.URL+"/campaigns/"+id+"/cancel", "", nil)
		if err != nil {
			t.Fatalf("POST cancel: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("cancel %s = %d", id, resp.StatusCode)
		}
		waitState(t, s, id, StateCancelled)
	}
	var listed []Status
	resp2, err := http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatalf("GET /campaigns: %v", err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&listed); err != nil {
		t.Fatalf("decoding list: %v", err)
	}
	if len(listed) != 2 {
		t.Fatalf("listed %d campaigns, want 2", len(listed))
	}
}

// TestEventStream drives the SSE endpoint end to end: a subscriber
// attached mid-campaign sees live events (every step of a
// cache-enabled campaign publishes a cache report, so the stream is
// guaranteed traffic), a cancel lands, and the stream ends with the
// terminal retired event, then EOF.
func TestEventStream(t *testing.T) {
	s := newTestServer(t, Config{Slice: 512})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, err := s.Submit(Submission{Subject: "cjson", Seed: 4, MaxExecs: 50_000_000})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events int
	var last WireEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev WireEvent
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		events++
		last = ev
		if events == 3 && last.Kind != "retired" {
			// Live traffic confirmed; now end the campaign under the
			// subscriber and expect the terminal event.
			if err := s.Cancel(st.ID); err != nil {
				t.Fatalf("Cancel: %v", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if events < 3 {
		t.Fatalf("stream carried only %d events", events)
	}
	if last.Kind != "retired" || last.State != StateCancelled {
		t.Fatalf("stream ended with %+v, want the retired event", last)
	}
	waitState(t, s, st.ID, StateCancelled)
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		body string
		code int
	}{
		{`{"subject":"nosuch"}`, http.StatusUnprocessableEntity},
		{`{}`, http.StatusBadRequest},
		{`{"subject":"expr","bogus":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Fatalf("submit %q = %d, want %d", tc.body, resp.StatusCode, tc.code)
		}
	}
	resp, err := http.Get(ts.URL + "/campaigns/c999999")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown campaign = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
}

// TestShimAllowlist pins the shim security gate: the shim field is an
// arbitrary argv the daemon executes on behalf of an unauthenticated
// client, so a binary the operator has not allowlisted must be
// rejected at submission — errors.Is-classifiable and HTTP 403 —
// while an allowlisted binary passes the gate.
func TestShimAllowlist(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.Submit(Submission{Subject: "expr", Shim: []string{"/bin/true"}}); !errors.Is(err, ErrShimDenied) {
		t.Fatalf("Submit with unlisted shim = %v, want ErrShimDenied", err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json",
		strings.NewReader(`{"subject":"expr","shim":["/bin/true"]}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("submit with unlisted shim = %d, want %d", resp.StatusCode, http.StatusForbidden)
	}

	// Allowlisted, the argv reaches the shim layer: /bin/true speaks
	// no shim protocol, so the submission fails at the handshake — any
	// error but a denial proves the gate opened.
	s2 := newTestServer(t, Config{AllowShims: []string{"/bin/true"}, Log: io.Discard})
	_, err = s2.Submit(Submission{Subject: "expr", Shim: []string{"/bin/true"}})
	if err == nil || errors.Is(err, ErrShimDenied) {
		t.Fatalf("Submit with allowlisted shim = %v, want a handshake failure, not a denial", err)
	}
}

// TestShimAllowlistGatesResume pins the restart half of the gate: a
// persisted running campaign whose shim is not in the (possibly
// tightened) allowlist of the daemon resuming it must fail loudly,
// never execute the argv.
func TestShimAllowlistGatesResume(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "c000001")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	sp := &Spec{ID: "c000001", State: StateRunning}
	sp.Subject = "expr"
	sp.Shim = []string{"/bin/true"}
	if err := writeSpec(dir, sp); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{Root: root, Log: io.Discard})
	st, ok := s.Campaign("c000001")
	if !ok {
		t.Fatal("persisted campaign missing from the table")
	}
	if st.State != StateFailed {
		t.Fatalf("resume with unlisted shim: state %q, want %q", st.State, StateFailed)
	}
	if !strings.Contains(st.Error, ErrShimDenied.Error()) {
		t.Fatalf("resume with unlisted shim: error %q does not record the denial", st.Error)
	}
}
