// Package daemon is the fuzzing-as-a-service layer: a long-running
// server that accepts campaign submissions, multiplexes many tenant
// campaigns over one campaign.Fleet worker pool under per-tenant
// execution budgets, persists every campaign's corpus through
// internal/corpus (journal + periodic snapshots, one directory per
// campaign), streams typed engine events to subscribers, and exposes
// Prometheus-style metrics (DESIGN.md §15).
//
// Durability is the load-bearing property: every valid input is
// journaled as the engine emits it and an engine snapshot is cut
// every SnapEvery executions, so a daemon killed at any point — power
// cut, kill -9 — restarts, rebuilds its campaign table from the
// per-campaign spec files, and resumes every in-flight campaign from
// its last snapshot. Campaign engines are bit-deterministic under
// their seed at every worker count, and the journal deduplicates by
// input, so a resumed campaign's corpus converges to exactly the
// corpus an uninterrupted run would have produced at the same budget
// (the crash-recovery e2e test pins this). The corpus layer's
// advisory journal locks keep a concurrent `pfuzzer -resume` on a
// still-owned directory from corrupting the journal under the daemon.
package daemon

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"pfuzzer/internal/campaign"
	"pfuzzer/internal/registry"
)

// Sentinel errors the HTTP layer classifies with errors.Is; handlers
// must never match on error text.
var (
	// ErrUnknownSubject rejects a submission naming a subject the
	// registry does not know.
	ErrUnknownSubject = errors.New("daemon: unknown subject")
	// ErrBudgetExhausted rejects a submission from a tenant whose
	// execution budget is spent.
	ErrBudgetExhausted = errors.New("daemon: no execution budget left")
	// ErrNoCampaign reports a campaign ID absent from the table.
	ErrNoCampaign = errors.New("daemon: no such campaign")
	// ErrShuttingDown rejects submissions once Close has begun.
	ErrShuttingDown = errors.New("daemon: server is shutting down")
	// ErrShimDenied rejects a submission whose shim argv names a
	// binary the daemon operator has not allowlisted.
	ErrShimDenied = errors.New("daemon: shim binary not allowlisted")
)

// Config configures a daemon Server.
type Config struct {
	// Root is the state directory: one subdirectory per campaign
	// holding its corpus journal, snapshot sidecar and spec. Created
	// if missing. Required.
	Root string
	// Workers is the fleet worker count — how many campaigns advance
	// concurrently (0 = 2).
	Workers int
	// Slice is the per-step execution slice campaigns are advanced by
	// (0 = the fleet default, 4096). Smaller slices interleave
	// tenants more fairly and tighten cancellation latency.
	Slice int
	// SnapEvery is the default execution count between journal
	// snapshots (0 = 10000); a campaign can override it at
	// submission. A kill loses at most this much work per campaign.
	SnapEvery int
	// TenantBudget is the default total execution budget per tenant
	// across all its campaigns (0 = unlimited).
	TenantBudget int
	// AllowShims is the allowlist of shim binary paths submissions may
	// name in their shim argv. The shim field is an arbitrary command
	// the daemon executes, so with an empty allowlist every shim
	// submission is rejected (ErrShimDenied) — the operator must opt
	// each binary in. The allowlist also gates resume: a persisted
	// campaign whose shim is no longer allowlisted fails loudly
	// instead of executing it.
	AllowShims []string
	// Log receives operational messages (nil = os.Stderr).
	Log io.Writer
}

// checkShim validates a submission's shim argv against the
// allowlist. Paths are compared cleaned, so /usr/bin//shim matches an
// allowlisted /usr/bin/shim; anything else is denied — a mismatch can
// only refuse execution, never grant it.
func (c *Config) checkShim(argv []string) error {
	if len(argv) == 0 {
		return nil
	}
	bin := filepath.Clean(argv[0])
	for _, a := range c.AllowShims {
		if filepath.Clean(a) == bin {
			return nil
		}
	}
	return fmt.Errorf("%w: %q (operator must pass -allow-shim)", ErrShimDenied, argv[0])
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.SnapEvery <= 0 {
		c.SnapEvery = 10000
	}
	if c.Log == nil {
		c.Log = os.Stderr
	}
}

// Status is one campaign's live status as reported by the API.
type Status struct {
	ID             string `json:"id"`
	Tenant         string `json:"tenant"`
	Subject        string `json:"subject"`
	State          string `json:"state"`
	Execs          int    `json:"execs"`
	MaxExecs       int    `json:"max_execs"`
	Valids         int    `json:"valids"`
	CoverageBlocks int    `json:"coverage_blocks"`
	CacheHits      int    `json:"cache_hits"`
	CacheMisses    int    `json:"cache_misses"`
	SpecExecs      int    `json:"spec_execs"`
	SpecHits       int    `json:"spec_hits"`
	ElapsedMS      int64  `json:"elapsed_ms"` // active engine time, the execs/sec denominator
	DroppedEvents  int    `json:"dropped_events,omitempty"`
	Error          string `json:"error,omitempty"`
}

// tenant is one budget domain. reserve/settle bracket each step the
// way the fleet brackets its global budget: the slice is reserved
// before stepping and the unspent part refunded after, so concurrent
// campaigns of one tenant can never jointly overshoot the budget by
// more than the engines' documented in-flight overshoot.
type tenant struct {
	name   string
	budget int // 0 = unlimited

	mu       sync.Mutex
	spent    int
	reserved int // spent + in-flight reservations
}

// reserve grants up to n executions against the budget.
func (t *tenant) reserve(n int) int {
	if t.budget <= 0 {
		return n
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	left := t.budget - t.reserved
	if left <= 0 {
		return 0
	}
	if n > left {
		n = left
	}
	t.reserved += n
	return n
}

// settle records what a reserve-granted step actually spent.
func (t *tenant) settle(granted, spent int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spent += spent
	if t.budget > 0 {
		t.reserved += spent - granted
	}
}

// charge records spending outside a reservation — the executions a
// resumed campaign had already run before the restart.
func (t *tenant) charge(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spent += n
	if t.budget > 0 {
		t.reserved += n
	}
}

// remaining returns the unreserved budget, or -1 for unlimited.
func (t *tenant) remaining() int {
	if t.budget <= 0 {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	left := t.budget - t.reserved
	if left < 0 {
		left = 0
	}
	return left
}

// Server is a running daemon: the campaign table, the tenant budget
// table, and the fleet pool advancing everything.
type Server struct {
	cfg     Config
	pool    *campaign.Pool
	started time.Time

	mu      sync.Mutex
	camps   map[string]*run
	order   []string // campaign IDs in submission order
	tenants map[string]*tenant
	seq     int
	closed  bool
}

// New opens (or creates) the state directory, resumes every campaign
// the previous daemon left running, and starts the fleet pool.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.Root == "" {
		return nil, errors.New("daemon: Config.Root is required")
	}
	if err := os.MkdirAll(cfg.Root, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: creating root: %w", err)
	}
	specs, maxSeq, err := scanSpecs(cfg.Root)
	if err != nil {
		return nil, err
	}
	fl := &campaign.Fleet{Workers: cfg.Workers, Slice: cfg.Slice}
	s := &Server{
		cfg:     cfg,
		pool:    fl.Start(),
		started: time.Now(),
		camps:   make(map[string]*run),
		tenants: make(map[string]*tenant),
		seq:     maxSeq,
	}
	for _, sp := range specs {
		if sp.State != StateRunning {
			s.adopt(newSettledRun(s, sp))
			continue
		}
		r, err := s.resumeRun(sp)
		if err != nil {
			// A campaign that cannot be resumed is failed loudly, not
			// silently dropped: the spec records why, the journal stays
			// on disk for inspection.
			fmt.Fprintf(cfg.Log, "pfuzzerd: resuming %s: %v\n", sp.ID, err)
			sp.State = StateFailed
			sp.Error = err.Error()
			if werr := writeSpec(filepath.Join(cfg.Root, sp.ID), sp); werr != nil {
				fmt.Fprintf(cfg.Log, "pfuzzerd: recording %s failure: %v\n", sp.ID, werr)
			}
			s.adopt(newSettledRun(s, sp))
			continue
		}
		s.adopt(r)
		if err := s.pool.Submit(r.job); err != nil {
			return nil, err // impossible: the pool was just started
		}
		fmt.Fprintf(cfg.Log, "pfuzzerd: resumed %s (%s/%s) at %d execs\n",
			sp.ID, sp.Tenant, sp.Subject, r.status().Execs)
	}
	return s, nil
}

// adopt registers a run in the campaign table. Callers must not hold
// s.mu.
func (s *Server) adopt(r *run) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.camps[r.id] = r
	s.order = append(s.order, r.id)
}

// tenantFor returns (creating if needed) the tenant record. Callers
// must not hold s.mu.
func (s *Server) tenantFor(name string) *tenant {
	if name == "" {
		name = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[name]
	if t == nil {
		t = &tenant{name: name, budget: s.cfg.TenantBudget}
		s.tenants[name] = t
	}
	return t
}

// Submit validates a submission, persists its spec, opens its journal
// and hands the campaign to the fleet. The returned Status is the
// campaign's initial state.
func (s *Server) Submit(sub Submission) (Status, error) {
	if sub.Tenant == "" {
		sub.Tenant = "default"
	}
	entry, ok := registry.Get(sub.Subject)
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownSubject, sub.Subject)
	}
	if err := s.cfg.checkShim(sub.Shim); err != nil {
		return Status{}, err
	}
	if sub.MaxExecs <= 0 {
		sub.MaxExecs = 100000
	}
	if sub.SnapEvery <= 0 {
		sub.SnapEvery = s.cfg.SnapEvery
	}
	ten := s.tenantFor(sub.Tenant)
	if ten.remaining() == 0 {
		return Status{}, fmt.Errorf("tenant %q: %w", sub.Tenant, ErrBudgetExhausted)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Status{}, ErrShuttingDown
	}
	s.seq++
	id := formatID(s.seq)
	s.mu.Unlock()

	sp := &Spec{ID: id, Submission: sub, State: StateRunning}
	dir := filepath.Join(s.cfg.Root, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Status{}, fmt.Errorf("daemon: creating campaign dir: %w", err)
	}
	r, err := s.freshRun(sp, entry, ten, dir)
	if err != nil {
		os.RemoveAll(dir) //nolint:errcheck // best-effort rollback of the empty dir
		return Status{}, err
	}
	// The spec is published only after the journal opened: a crash in
	// between leaves a spec-less directory the scanner ignores.
	if err := writeSpec(dir, sp); err != nil {
		r.closeStores()
		os.RemoveAll(dir) //nolint:errcheck // best-effort rollback
		return Status{}, err
	}
	// Adoption and pool handoff happen in one critical section with a
	// re-check of closed: Close sets closed and snapshots the table
	// under this same lock and only stops the pool after releasing it,
	// so a run adopted here is always either parked by Close or
	// accepted by a still-running pool — never adopted with an open
	// journal while its submitter is told the submission failed.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		r.closeStores()   //nolint:errcheck // rollback; nothing ran
		os.RemoveAll(dir) //nolint:errcheck // best-effort rollback
		return Status{}, ErrShuttingDown
	}
	s.camps[r.id] = r
	s.order = append(s.order, r.id)
	if err := s.pool.Submit(r.job); err != nil {
		delete(s.camps, r.id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		r.closeStores()   //nolint:errcheck // rollback; nothing ran
		os.RemoveAll(dir) //nolint:errcheck // best-effort rollback
		return Status{}, err
	}
	s.mu.Unlock()
	return r.status(), nil
}

// Cancel asks a campaign to stop: the current step slice finishes, a
// final snapshot lands in its journal, and its state becomes
// cancelled.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	r := s.camps[id]
	s.mu.Unlock()
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoCampaign, id)
	}
	r.mu.Lock()
	settled := r.settled
	r.mu.Unlock()
	if settled {
		return fmt.Errorf("daemon: campaign %s is already %s", id, r.status().State)
	}
	r.job.Cancel()
	return nil
}

// Campaign returns one campaign's status.
func (s *Server) Campaign(id string) (Status, bool) {
	s.mu.Lock()
	r := s.camps[id]
	s.mu.Unlock()
	if r == nil {
		return Status{}, false
	}
	return r.status(), true
}

// Campaigns returns every campaign's status in submission order.
func (s *Server) Campaigns() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.Campaign(id); ok {
			out = append(out, st)
		}
	}
	return out
}

// subscribe attaches to a campaign's event stream.
func (s *Server) subscribe(id string) (<-chan []byte, func(), bool) {
	s.mu.Lock()
	r := s.camps[id]
	s.mu.Unlock()
	if r == nil {
		return nil, nil, false
	}
	ch, cancel := r.hub.subscribe()
	return ch, cancel, true
}

// QueueDepth reports how many campaigns are currently runnable.
func (s *Server) QueueDepth() int { return s.pool.QueueDepth() }

// tenantsSorted snapshots the tenant table for metrics.
func (s *Server) tenantsSorted() []*tenant {
	s.mu.Lock()
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Close shuts the daemon down gracefully: the fleet finishes the step
// slices in flight and stops, then every still-live campaign cuts a
// final snapshot and closes its journal with its spec left in the
// running state — the next daemon resumes them. Campaigns that
// retired naturally were already finalized by their OnRetire hooks.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()

	s.pool.Stop()

	var errs []error
	for _, id := range ids {
		s.mu.Lock()
		r := s.camps[id]
		s.mu.Unlock()
		if err := r.park(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", id, err))
		}
	}
	return errors.Join(errs...)
}
