package daemon

import (
	"encoding/base64"
	"encoding/json"
	"sync"

	"pfuzzer/internal/core"
)

// WireEvent is one campaign event as streamed to SSE subscribers:
// the typed core.Event re-encoded for the wire. Input bytes travel
// base64-encoded (journal inputs are arbitrary bytes, not UTF-8).
// Queue pops are not forwarded — they are per-execution chatter that
// would dwarf everything else on the stream; subscribe to /metrics
// for rates instead.
type WireEvent struct {
	Kind      string `json:"kind"` // "valid" | "phase" | "cache" | "retired"
	Execs     int    `json:"execs"`
	InputB64  string `json:"input_b64,omitempty"`  // valid: the emitted input
	NewBlocks int    `json:"new_blocks,omitempty"` // valid: blocks covered first
	Mining    bool   `json:"mining,omitempty"`     // phase: entering/leaving a mining burst
	Hits      int    `json:"hits,omitempty"`       // cache: cumulative hits
	Misses    int    `json:"misses,omitempty"`     // cache: cumulative misses
	State     string `json:"state,omitempty"`      // retired: terminal state
}

// wireEvent converts a core event for the stream; ok is false for
// kinds that are not forwarded.
func wireEvent(ev core.Event) (WireEvent, bool) {
	switch ev.Kind {
	case core.EventValid:
		return WireEvent{
			Kind: "valid", Execs: ev.Execs,
			InputB64:  base64.StdEncoding.EncodeToString(ev.Input),
			NewBlocks: ev.NewBlocks,
		}, true
	case core.EventPhase:
		return WireEvent{Kind: "phase", Execs: ev.Execs, Mining: ev.Mining}, true
	case core.EventCache:
		return WireEvent{Kind: "cache", Execs: ev.Execs, Hits: ev.Hits, Misses: ev.Misses}, true
	}
	return WireEvent{}, false
}

// subBuffer is each subscriber's channel depth. A subscriber that
// falls further behind than this loses events (dropped, counted) —
// the campaign must never block on a slow reader.
const subBuffer = 256

// hub fans one campaign's event stream out to its SSE subscribers.
// publish is called from the fleet worker stepping the campaign;
// subscribe/cancel from HTTP handler goroutines.
type hub struct {
	mu      sync.Mutex
	subs    map[chan []byte]struct{}
	closed  bool
	dropped int // events lost to slow subscribers, for the status page
}

func newHub() *hub { return &hub{subs: make(map[chan []byte]struct{})} }

// publish marshals ev once and offers it to every subscriber without
// blocking: a full subscriber buffer drops the event for that
// subscriber only.
func (h *hub) publish(ev WireEvent) {
	b, err := json.Marshal(ev)
	if err != nil {
		return // a WireEvent always marshals; defensive only
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for ch := range h.subs {
		select {
		case ch <- b:
		default:
			h.dropped++
		}
	}
}

// droppedCount reports how many events were lost to slow subscribers.
func (h *hub) droppedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// subscribe registers a new subscriber and returns its channel plus a
// cancel function (idempotent). The channel is closed when the hub
// closes — the campaign retired — or on cancel.
func (h *hub) subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, subBuffer)
	h.mu.Lock()
	if h.closed {
		close(ch)
		h.mu.Unlock()
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			if _, live := h.subs[ch]; live {
				delete(h.subs, ch)
				close(ch)
			}
			h.mu.Unlock()
		})
	}
	return ch, cancel
}

// close ends the stream: every subscriber channel is closed and
// further publishes are dropped. Idempotent.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
	}
	h.subs = nil
}
