package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"pfuzzer/internal/corpus"
)

// runChild is the PFUZZERD_CHILD mode of the test binary: a real
// pfuzzerd process serving the daemon API over loopback, started (and
// SIGKILLed) by TestCrashRecovery. The bound address is published
// through a file because the port is picked by the kernel.
func runChild() {
	root := os.Getenv("PFUZZERD_ROOT")
	addrFile := os.Getenv("PFUZZERD_ADDRFILE")
	srv, err := New(Config{Root: root, Workers: 2, Slice: 512, SnapEvery: 1000})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(2)
	}
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(2)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(2)
	}
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(2)
	}
}

// daemonProc is one child daemon process under test control.
type daemonProc struct {
	cmd  *exec.Cmd
	addr string
}

func (p *daemonProc) url(path string) string { return "http://" + p.addr + path }

func (p *daemonProc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill() //nolint:errcheck // the process may already be gone
		p.cmd.Wait()         //nolint:errcheck // exit status of a killed child is noise
	}
}

// startDaemon launches the test binary in child mode over root and
// waits for it to publish its address.
func startDaemon(t *testing.T, root string) *daemonProc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"PFUZZERD_CHILD=1",
		"PFUZZERD_ROOT="+root,
		"PFUZZERD_ADDRFILE="+addrFile,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child daemon: %v", err)
	}
	p := &daemonProc{cmd: cmd}
	t.Cleanup(p.kill)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil {
			p.addr = string(b)
			return p
		}
		if time.Now().After(deadline) {
			t.Fatalf("child daemon never published its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func httpSubmit(t *testing.T, p *daemonProc, sub Submission) string {
	t.Helper()
	body, err := json.Marshal(sub)
	if err != nil {
		t.Fatalf("encoding submission: %v", err)
	}
	resp, err := http.Post(p.url("/campaigns"), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /campaigns: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /campaigns = %d: %+v", resp.StatusCode, st)
	}
	return st.ID
}

func httpStatus(t *testing.T, p *daemonProc, id string) Status {
	t.Helper()
	resp, err := http.Get(p.url("/campaigns/" + id))
	if err != nil {
		t.Fatalf("GET /campaigns/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

// TestCrashRecovery is the durability acceptance test: N campaigns
// are submitted to a real daemon process over HTTP, the daemon is
// SIGKILLed mid-run, a second daemon over the same state directory
// resumes them to completion, and each journal must hold exactly the
// corpus an uninterrupted run produces — the engine's determinism
// plus the journal's dedup-by-input convergence, end to end through
// kill -9.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	root := t.TempDir()
	subs := []Submission{
		{Tenant: "acme", Subject: "expr", Seed: 3, MaxExecs: 25000, SnapEvery: 2000},
		{Tenant: "acme", Subject: "paren", Seed: 5, MaxExecs: 25000, SnapEvery: 2000},
		{Tenant: "globex", Subject: "urlp", Seed: 7, MaxExecs: 25000, SnapEvery: 2000},
	}
	want := make([][][]byte, len(subs))
	for i, sub := range subs {
		want[i] = referenceValids(t, sub)
	}

	p1 := startDaemon(t, root)
	ids := make([]string, len(subs))
	for i, sub := range subs {
		ids[i] = httpSubmit(t, p1, sub)
	}

	// Let every campaign get past a few snapshots, then pull the plug.
	deadline := time.Now().Add(60 * time.Second)
	for {
		ready := true
		for _, id := range ids {
			if httpStatus(t, p1, id).Execs < 4000 {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaigns never reached the kill point")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p1.cmd.Process.Signal(os.Kill); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	p1.cmd.Wait() //nolint:errcheck // killed: the exit status is the point

	// Restart over the same root: every campaign must come back and
	// run out its budget.
	p2 := startDaemon(t, root)
	// Generous: a race-built child runs the engine an order of
	// magnitude slower.
	deadline = time.Now().Add(300 * time.Second)
	for {
		done := true
		for _, id := range ids {
			st := httpStatus(t, p2, id)
			if st.State == StateFailed {
				t.Fatalf("resumed campaign %s failed: %s", id, st.Error)
			}
			if st.State != StateDone {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed campaigns never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, id := range ids {
		st := httpStatus(t, p2, id)
		if st.Execs < subs[i].MaxExecs {
			t.Fatalf("campaign %s retired at %d execs, budget %d", id, st.Execs, subs[i].MaxExecs)
		}
	}
	p2.kill() // campaigns are settled; their journals are closed and unlocked

	for i, id := range ids {
		store, err := corpus.Open(filepath.Join(root, id, "corpus"))
		if err != nil {
			t.Fatalf("Open %s journal: %v", id, err)
		}
		got := store.ValidInputs()
		if !sameCorpus(got, want[i]) {
			t.Errorf("campaign %s (%s): corpus after kill -9 + resume has %d valids, uninterrupted run has %d",
				id, subs[i].Subject, len(got), len(want[i]))
		}
		store.Close() //nolint:errcheck // read-only comparison
	}
}
