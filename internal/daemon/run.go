package daemon

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"pfuzzer/internal/campaign"
	"pfuzzer/internal/core"
	"pfuzzer/internal/corpus"
	"pfuzzer/internal/registry"
	"pfuzzer/internal/shim"
)

// run is one campaign under daemon management: the engine, its
// journal, its event hub and its fleet job, wrapped behind the
// campaign.Runner interface so the shared pool can advance it.
//
// Concurrency contract: Step, the core event sink it triggers, and
// the OnRetire finalizer all execute on the fleet worker currently
// owning the job — never two at once — so the engine and the journal
// need no locking of their own. r.mu guards only what crosses
// goroutines: the published Status copy, the settled flag and the
// first internal error. park is called only after the pool has
// drained its workers.
type run struct {
	srv *Server
	id  string
	dir string
	ten *tenant
	sub Submission

	job   *campaign.Job
	hub   *hub
	camp  *core.Campaign
	store *corpus.Store
	host  *shim.Host

	sinceSnap int // execs since the last snapshot; owner-goroutine only

	mu      sync.Mutex
	st      Status
	settled bool  // finalized: retired naturally or parked by Close
	err     error // first journal/engine error; fails the campaign
}

// tenantName normalizes the empty tenant to the default domain.
func tenantName(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

// newRun builds the common shell of a run; the caller attaches the
// engine and stores.
func newRun(s *Server, sp *Spec, ten *tenant) *run {
	r := &run{
		srv: s, id: sp.ID, dir: filepath.Join(s.cfg.Root, sp.ID),
		ten: ten, sub: sp.Submission, hub: newHub(),
	}
	r.st = Status{
		ID: sp.ID, Tenant: tenantName(sp.Tenant), Subject: sp.Subject,
		State: StateRunning, MaxExecs: sp.MaxExecs,
	}
	r.job = &campaign.Job{Name: sp.ID, Runner: r, OnRetire: func(j *campaign.Job) { r.retire(j) }}
	return r
}

// newSettledRun rebuilds the table entry for a campaign that already
// finished in a previous daemon life: status comes from the spec's
// final counters, the journal stays closed (and unlockable by other
// tools), the event stream is already over.
func newSettledRun(s *Server, sp *Spec) *run {
	r := &run{
		srv: s, id: sp.ID, dir: filepath.Join(s.cfg.Root, sp.ID),
		sub: sp.Submission, hub: newHub(), settled: true,
	}
	r.hub.close()
	r.st = Status{
		ID: sp.ID, Tenant: tenantName(sp.Tenant), Subject: sp.Subject,
		State: sp.State, Execs: sp.FinalExecs, MaxExecs: sp.MaxExecs,
		Valids: sp.FinalValids, ElapsedMS: sp.FinalElapsedMS, Error: sp.Error,
	}
	s.tenantFor(sp.Tenant).charge(sp.FinalExecs)
	return r
}

// wrapShim swaps the entry's execution vehicle for an out-of-process
// host when the submission asks for one.
func (r *run) wrapShim(entry registry.Entry) (registry.Entry, error) {
	if len(r.sub.Shim) == 0 {
		return entry, nil
	}
	if r.sub.Shim[0] == "" {
		return entry, errors.New("daemon: empty shim binary path")
	}
	// Submit already vetted the argv, but resume must re-vet: the spec
	// on disk may predate this daemon's (possibly tightened) allowlist,
	// and an unlisted shim must fail the resume loudly, not execute.
	if err := r.srv.cfg.checkShim(r.sub.Shim); err != nil {
		return entry, err
	}
	host, err := shim.NewHost(
		shim.CmdLauncher{Path: r.sub.Shim[0], Args: r.sub.Shim[1:], Stderr: r.srv.cfg.Log},
		shim.Options{Subject: entry.Name})
	if err != nil {
		return entry, err
	}
	r.host = host
	return shim.WrapEntry(entry, host), nil
}

// coreEvents is the engine's event sink: valids go to the journal
// first (the corpus of record), then everything forwardable goes to
// the SSE hub. Runs on the stepping worker during camp.Step.
func (r *run) coreEvents(ev core.Event) {
	if ev.Kind == core.EventValid && r.store != nil {
		if err := r.store.AppendValid(ev.Execs, ev.Input); err != nil {
			r.setErr(err)
		}
	}
	if wev, ok := wireEvent(ev); ok {
		r.hub.publish(wev)
	}
}

// setErr records the first internal error; the next Step boundary
// fails the campaign with it.
func (r *run) setErr(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

// freshRun opens a new campaign: journal created, engine built from
// the submission, events wired.
func (s *Server) freshRun(sp *Spec, entry registry.Entry, ten *tenant, dir string) (*run, error) {
	r := newRun(s, sp, ten)
	entry, err := r.wrapShim(entry)
	if err != nil {
		return nil, err
	}
	store, err := corpus.Create(journalPath(dir), corpus.Meta{
		Subject: entry.Name, Tool: "pfuzzerd", Seed: sp.Seed, MaxExecs: sp.MaxExecs,
	})
	if err != nil {
		r.closeHost()
		return nil, err
	}
	r.store = store
	cfg := core.Config{
		Seed: sp.Seed, MaxExecs: sp.MaxExecs, Workers: sp.Workers,
		MinePhase: sp.Mine, MineLexer: entry.Lexer, Events: r.coreEvents,
	}
	r.camp = core.NewCampaign(entry.New(), cfg)
	return r, nil
}

// resumeRun reopens a campaign the previous daemon left running:
// journal recovery (torn tails dropped), engine restored from the
// last snapshot — or rebuilt from scratch when the campaign died
// before its first snapshot, which the journal's dedup-by-input
// convergence makes equivalent. Already-spent executions are
// re-charged to the tenant, since budget accounting does not survive
// the process.
func (s *Server) resumeRun(sp *Spec) (*run, error) {
	entry, ok := registry.Get(sp.Subject)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSubject, sp.Subject)
	}
	ten := s.tenantFor(sp.Tenant)
	r := newRun(s, sp, ten)
	entry, err := r.wrapShim(entry)
	if err != nil {
		return nil, err
	}
	store, err := corpus.Open(journalPath(r.dir))
	if err != nil {
		r.closeHost()
		return nil, err
	}
	r.store = store
	if n := store.TruncatedBytes(); n > 0 {
		fmt.Fprintf(s.cfg.Log, "pfuzzerd: recovered %s journal: dropped %d bytes of torn tail\n", sp.ID, n)
	}
	if blob := store.Snapshot(); blob != nil {
		snap, err := core.UnmarshalSnapshot(blob)
		if err != nil {
			r.closeStores()
			return nil, err
		}
		over := core.Config{Events: r.coreEvents, MineLexer: entry.Lexer}
		r.camp, err = core.Restore(entry.New(), over, snap)
		if err != nil {
			r.closeStores()
			return nil, err
		}
	} else {
		// Killed before the first snapshot: start the engine over. The
		// replayed prefix re-journals the same valids, which dedup
		// collapses, so the corpus still converges to the uninterrupted
		// run's.
		cfg := core.Config{
			Seed: sp.Seed, MaxExecs: sp.MaxExecs, Workers: sp.Workers,
			MinePhase: sp.Mine, MineLexer: entry.Lexer, Events: r.coreEvents,
		}
		r.camp = core.NewCampaign(entry.New(), cfg)
	}
	ten.charge(r.camp.Result().Execs)
	r.mu.Lock()
	r.refreshLocked()
	r.mu.Unlock()
	return r, nil
}

// Step implements campaign.Runner: reserve the slice against the
// tenant budget, advance the engine, settle what was actually spent,
// snapshot on cadence, publish fresh status. Returning more=false
// retires the job, which triggers retire below.
func (r *run) Step(n int) (spent int, more bool) {
	granted := r.ten.reserve(n)
	if granted == 0 {
		return 0, false // tenant budget exhausted: retire where it stands
	}
	spent, more = r.camp.Step(granted)
	r.ten.settle(granted, spent)

	r.mu.Lock()
	err := r.err
	r.mu.Unlock()
	if err != nil {
		return spent, false // a journal append failed mid-step; fail the campaign
	}

	r.sinceSnap += spent
	if r.sinceSnap >= r.sub.SnapEvery {
		// The retire hook cuts the final snapshot, so the cadence only
		// matters mid-flight.
		if err := r.cutSnapshot(); err != nil {
			r.setErr(err)
			return spent, false
		}
		r.sinceSnap = 0
	}
	r.mu.Lock()
	r.refreshLocked()
	r.mu.Unlock()
	return spent, more
}

// cutSnapshot publishes the engine's current state into the journal
// sidecar. Owner goroutine only (between Steps, or after the pool
// drained).
func (r *run) cutSnapshot() error {
	blob, err := r.camp.Snapshot().Marshal()
	if err != nil {
		return err
	}
	return r.store.AppendSnapshot(blob)
}

// refreshLocked re-derives the published Status from the engine
// result. Callers hold r.mu and own the engine (no concurrent Step).
func (r *run) refreshLocked() {
	res := r.camp.Result()
	r.st.Execs = res.Execs
	r.st.Valids = len(res.Valids)
	r.st.CoverageBlocks = len(res.Coverage)
	r.st.CacheHits = res.CacheHits
	r.st.CacheMisses = res.CacheMisses
	r.st.SpecExecs = res.SpecExecs
	r.st.SpecHits = res.SpecHits
	r.st.ElapsedMS = res.Elapsed.Milliseconds()
	r.st.DroppedEvents = r.hub.droppedCount()
}

// status returns the last published status copy.
func (r *run) status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st
}

// retire finalizes a campaign the fleet has retired: final snapshot,
// journal closed (releasing its lock), shim children killed, terminal
// state decided and persisted, the event stream closed with a
// terminal event. Runs on the retiring worker's goroutine, outside
// the fleet lock.
func (r *run) retire(j *campaign.Job) {
	r.mu.Lock()
	if r.settled {
		r.mu.Unlock()
		return
	}
	r.settled = true
	err := r.err
	r.mu.Unlock()

	state, msg := StateDone, ""
	switch {
	case err != nil:
		state, msg = StateFailed, err.Error()
	case j.Cancelled():
		state = StateCancelled
	}
	if serr := r.cutSnapshot(); serr != nil && state != StateFailed {
		state, msg = StateFailed, serr.Error()
	}
	if cerr := r.closeStores(); cerr != nil && state != StateFailed {
		state, msg = StateFailed, cerr.Error()
	}

	res := r.camp.Result()
	sp := &Spec{
		ID: r.id, Submission: r.sub, State: state, Error: msg,
		FinalExecs: res.Execs, FinalValids: len(res.Valids),
		FinalElapsedMS: res.Elapsed.Milliseconds(),
	}
	if werr := writeSpec(r.dir, sp); werr != nil {
		// The campaign state is only in memory now; the next restart
		// will re-resume it from the (intact) journal instead.
		fmt.Fprintf(r.srv.cfg.Log, "pfuzzerd: persisting %s terminal state: %v\n", r.id, werr)
	}

	r.mu.Lock()
	r.refreshLocked()
	r.st.State = state
	r.st.Error = msg
	r.mu.Unlock()
	r.hub.publish(WireEvent{Kind: "retired", Execs: res.Execs, State: state})
	r.hub.close()
}

// park is the graceful-shutdown finalizer for a campaign the pool
// stopped mid-flight: cut a final snapshot, close the journal and the
// shim host, leave the spec in the running state so the next daemon
// resumes it. Called only after Pool.Stop drained the workers.
func (r *run) park() error {
	r.mu.Lock()
	if r.settled {
		r.mu.Unlock()
		return nil
	}
	r.settled = true
	r.mu.Unlock()

	var errs []error
	if err := r.cutSnapshot(); err != nil {
		errs = append(errs, err)
	}
	if err := r.closeStores(); err != nil {
		errs = append(errs, err)
	}
	r.hub.close()
	return errors.Join(errs...)
}

// closeHost kills the run's shim children, if any.
func (r *run) closeHost() {
	if r.host != nil {
		r.host.Close()
		r.host = nil
	}
}

// closeStores closes the journal (releasing its advisory lock) and
// the shim host.
func (r *run) closeStores() error {
	var err error
	if r.store != nil {
		err = r.store.Close()
		r.store = nil
	}
	r.closeHost()
	return err
}
