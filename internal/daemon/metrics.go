package daemon

import (
	"fmt"
	"io"
	"time"
)

// writeMetrics renders the Prometheus text exposition (hand-rolled;
// the daemon takes no dependencies). Campaigns are emitted in
// submission order and tenants sorted by name, so consecutive scrapes
// diff cleanly.
//
// Per-campaign work totals (execs, valids, spec execs/hits) and
// per-tenant spend are typed gauge, not counter: a campaign killed
// before its first snapshot resumes from zero and re-climbs the
// replayed prefix, so the series is not monotonic across daemon
// restarts and rate()/increase() would double-count it.
func (s *Server) writeMetrics(w io.Writer) {
	sts := s.Campaigns()

	fmt.Fprintf(w, "# HELP pfuzzerd_uptime_seconds Seconds since the daemon started.\n")
	fmt.Fprintf(w, "# TYPE pfuzzerd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "pfuzzerd_uptime_seconds %.3f\n", time.Since(s.started).Seconds())

	fmt.Fprintf(w, "# HELP pfuzzerd_campaigns Campaigns known to the daemon, by state.\n")
	fmt.Fprintf(w, "# TYPE pfuzzerd_campaigns gauge\n")
	byState := map[string]int{}
	for _, st := range sts {
		byState[st.State]++
	}
	for _, state := range []string{StateRunning, StateDone, StateCancelled, StateFailed} {
		fmt.Fprintf(w, "pfuzzerd_campaigns{state=%q} %d\n", state, byState[state])
	}

	fmt.Fprintf(w, "# HELP pfuzzerd_queue_depth Runnable campaigns (queued plus being stepped).\n")
	fmt.Fprintf(w, "# TYPE pfuzzerd_queue_depth gauge\n")
	fmt.Fprintf(w, "pfuzzerd_queue_depth %d\n", s.QueueDepth())

	fmt.Fprintf(w, "# HELP pfuzzerd_campaign_execs Subject executions spent by a campaign (may regress after a crash-restart).\n")
	fmt.Fprintf(w, "# TYPE pfuzzerd_campaign_execs gauge\n")
	for _, st := range sts {
		fmt.Fprintf(w, "pfuzzerd_campaign_execs{campaign=%q,tenant=%q,subject=%q} %d\n",
			st.ID, st.Tenant, st.Subject, st.Execs)
	}

	fmt.Fprintf(w, "# HELP pfuzzerd_campaign_execs_per_second Execution rate over active engine time.\n")
	fmt.Fprintf(w, "# TYPE pfuzzerd_campaign_execs_per_second gauge\n")
	for _, st := range sts {
		rate := 0.0
		if st.ElapsedMS > 0 {
			rate = float64(st.Execs) / (float64(st.ElapsedMS) / 1000)
		}
		fmt.Fprintf(w, "pfuzzerd_campaign_execs_per_second{campaign=%q,tenant=%q} %.1f\n",
			st.ID, st.Tenant, rate)
	}

	fmt.Fprintf(w, "# HELP pfuzzerd_campaign_valids Valid inputs a campaign has journaled.\n")
	fmt.Fprintf(w, "# TYPE pfuzzerd_campaign_valids gauge\n")
	for _, st := range sts {
		fmt.Fprintf(w, "pfuzzerd_campaign_valids{campaign=%q,tenant=%q,subject=%q} %d\n",
			st.ID, st.Tenant, st.Subject, st.Valids)
	}

	fmt.Fprintf(w, "# HELP pfuzzerd_campaign_coverage_blocks Subject blocks covered by a campaign's valids.\n")
	fmt.Fprintf(w, "# TYPE pfuzzerd_campaign_coverage_blocks gauge\n")
	for _, st := range sts {
		fmt.Fprintf(w, "pfuzzerd_campaign_coverage_blocks{campaign=%q} %d\n", st.ID, st.CoverageBlocks)
	}

	fmt.Fprintf(w, "# HELP pfuzzerd_campaign_cache_hit_ratio Prefix-decided cache hit fraction (0 when the cache is off).\n")
	fmt.Fprintf(w, "# TYPE pfuzzerd_campaign_cache_hit_ratio gauge\n")
	for _, st := range sts {
		ratio := 0.0
		if total := st.CacheHits + st.CacheMisses; total > 0 {
			ratio = float64(st.CacheHits) / float64(total)
		}
		fmt.Fprintf(w, "pfuzzerd_campaign_cache_hit_ratio{campaign=%q} %.4f\n", st.ID, ratio)
	}

	fmt.Fprintf(w, "# HELP pfuzzerd_campaign_spec_execs Speculative executions run by a campaign's workers.\n")
	fmt.Fprintf(w, "# TYPE pfuzzerd_campaign_spec_execs gauge\n")
	for _, st := range sts {
		fmt.Fprintf(w, "pfuzzerd_campaign_spec_execs{campaign=%q} %d\n", st.ID, st.SpecExecs)
	}

	fmt.Fprintf(w, "# HELP pfuzzerd_campaign_spec_hits Speculative executions the trajectory consumed.\n")
	fmt.Fprintf(w, "# TYPE pfuzzerd_campaign_spec_hits gauge\n")
	for _, st := range sts {
		fmt.Fprintf(w, "pfuzzerd_campaign_spec_hits{campaign=%q} %d\n", st.ID, st.SpecHits)
	}

	fmt.Fprintf(w, "# HELP pfuzzerd_tenant_execs Executions spent by a tenant across its campaigns (may regress after a crash-restart).\n")
	fmt.Fprintf(w, "# TYPE pfuzzerd_tenant_execs gauge\n")
	tens := s.tenantsSorted()
	for _, t := range tens {
		t.mu.Lock()
		spent := t.spent
		t.mu.Unlock()
		fmt.Fprintf(w, "pfuzzerd_tenant_execs{tenant=%q} %d\n", t.name, spent)
	}

	fmt.Fprintf(w, "# HELP pfuzzerd_tenant_budget_remaining Unreserved execution budget (-1 = unlimited).\n")
	fmt.Fprintf(w, "# TYPE pfuzzerd_tenant_budget_remaining gauge\n")
	for _, t := range tens {
		fmt.Fprintf(w, "pfuzzerd_tenant_budget_remaining{tenant=%q} %d\n", t.name, t.remaining())
	}
}
