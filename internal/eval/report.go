package eval

import (
	"fmt"
	"strconv"
	"strings"

	"pfuzzer/internal/registry"
	"pfuzzer/internal/textplot"
	"pfuzzer/internal/tokens"
)

// Table1 renders the subject overview (paper Table 1), extended with
// this reproduction's block counts.
func Table1(entries []registry.Entry) string {
	rows := [][]string{{"Name", "Accessed", "Lines of Code (paper)", "Blocks (this repo)"}}
	for _, e := range entries {
		rows = append(rows, []string{
			e.Name, e.Accessed, strconv.Itoa(e.PaperLoC), strconv.Itoa(e.New().Blocks()),
		})
	}
	return textplot.Table("Table 1. The subjects used for the evaluation.", rows)
}

// Figure2 renders coverage per subject and tool as a bar chart.
func Figure2(results []SubjectResult) string {
	groups := groupBySubject(results, func(r SubjectResult) textplot.Bar {
		return textplot.Bar{Label: string(r.Tool), Value: r.CoveragePct}
	})
	return textplot.BarChart("Figure 2. Obtained coverage per subject and tool (valid inputs).", groups, 40, "%")
}

// Figure3 renders the token counts per token length, per subject and
// tool.
func Figure3(results []SubjectResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 3. Number of tokens generated, grouped by token length.\n")
	subjects := subjectOrder(results)
	for _, s := range subjects {
		var inv tokens.Inventory
		for _, r := range results {
			if r.Subject == s {
				inv = r.TokenCov.Inventory
				break
			}
		}
		lengths := inv.Lengths()
		rows := [][]string{append([]string{s, "total"}, lengthHeader(lengths)...)}
		totalRow := []string{"", ""}
		for _, n := range lengths {
			totalRow = append(totalRow, strconv.Itoa(inv.CountLen(n)))
		}
		rows = append(rows, totalRow)
		for _, tool := range Tools {
			for _, r := range results {
				if r.Subject != s || r.Tool != tool {
					continue
				}
				row := []string{"", string(tool)}
				for _, n := range lengths {
					row = append(row, strconv.Itoa(r.TokenCov.FoundLen(n)))
				}
				rows = append(rows, row)
			}
		}
		sb.WriteString(textplot.Table("", rows))
		sb.WriteString("\n")
	}
	return sb.String()
}

func lengthHeader(lengths []int) []string {
	out := make([]string, len(lengths))
	for i, n := range lengths {
		out[i] = "len" + strconv.Itoa(n)
	}
	return out
}

// TokenTable renders a subject's token inventory grouped by length
// (paper Tables 2, 3 and 4).
func TokenTable(title string, inv tokens.Inventory) string {
	rows := [][]string{{"Length", "#", "Examples"}}
	for _, n := range inv.Lengths() {
		var names []string
		for _, t := range inv {
			if t.Len == n {
				names = append(names, t.Name)
			}
		}
		example := strings.Join(names, " ")
		if len(example) > 60 {
			example = example[:57] + "..."
		}
		rows = append(rows, []string{strconv.Itoa(n), strconv.Itoa(len(names)), example})
	}
	return textplot.Table(title, rows)
}

// SummaryReport renders the §5.3 aggregates next to the paper's
// numbers.
func SummaryReport(results []SubjectResult) string {
	// The pFuzzer+Mine column has no paper counterpart: §7.4 sketches
	// the tool chain as future work, so its paper cells stay "-".
	paperShort := map[Tool]float64{AFL: 91.5, KLEE: 28.7, PFuzzer: 81.9}
	paperLong := map[Tool]float64{AFL: 5.0, KLEE: 7.5, PFuzzer: 52.5}
	paperPct := func(m map[Tool]float64, tool Tool) string {
		v, ok := m[tool]
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%.1f", v)
	}
	rows := [][]string{{"Tool", "len<=3 found", "len<=3 %", "paper %", "len>3 found", "len>3 %", "paper %"}}
	for _, s := range Summarize(results) {
		rows = append(rows, []string{
			string(s.Tool),
			fmt.Sprintf("%d/%d", s.ShortFound, s.ShortTotal),
			fmt.Sprintf("%.1f", s.ShortPct()),
			paperPct(paperShort, s.Tool),
			fmt.Sprintf("%d/%d", s.LongFound, s.LongTotal),
			fmt.Sprintf("%.1f", s.LongPct()),
			paperPct(paperLong, s.Tool),
		})
	}
	return textplot.Table("Token coverage across all subjects (paper §5.3).", rows)
}

// ExecsReport renders executions and valid-input counts per campaign,
// documenting the orders-of-magnitude gap between AFL and pFuzzer.
// The cache column reports the pFuzzer engines' execution-cache hit
// rate ("-" for the baselines, which have no cache).
func ExecsReport(results []SubjectResult) string {
	rows := [][]string{{"Subject", "Tool", "Execs", "Valid inputs", "Coverage %", "Cache hit %"}}
	for _, r := range results {
		cache := "-"
		if r.CacheHits+r.CacheMisses > 0 {
			cache = fmt.Sprintf("%.1f", 100*r.CacheHitRate())
		}
		rows = append(rows, []string{
			r.Subject, string(r.Tool),
			strconv.Itoa(r.Execs), strconv.Itoa(len(r.Valids)),
			fmt.Sprintf("%.1f", r.CoveragePct),
			cache,
		})
	}
	return textplot.Table("Campaign statistics.", rows)
}

// CSV renders the full result matrix as CSV rows (for results/).
func CSV(results []SubjectResult) [][]string {
	rows := [][]string{{"subject", "tool", "execs", "valids", "blocks", "covered", "coverage_pct",
		"tokens_found", "tokens_total", "short_found", "short_total", "long_found", "long_total",
		"cache_hits", "cache_misses"}}
	for _, r := range results {
		sf, st, lf, lt := r.TokenCov.Split(3)
		rows = append(rows, []string{
			r.Subject, string(r.Tool),
			strconv.Itoa(r.Execs), strconv.Itoa(len(r.Valids)),
			strconv.Itoa(r.Blocks), strconv.Itoa(len(r.Coverage)),
			fmt.Sprintf("%.2f", r.CoveragePct),
			strconv.Itoa(r.TokenCov.FoundCount()), strconv.Itoa(r.TokenCov.Inventory.Count()),
			strconv.Itoa(sf), strconv.Itoa(st), strconv.Itoa(lf), strconv.Itoa(lt),
			strconv.Itoa(r.CacheHits), strconv.Itoa(r.CacheMisses),
		})
	}
	return rows
}

func groupBySubject(results []SubjectResult, bar func(SubjectResult) textplot.Bar) []textplot.Group {
	var groups []textplot.Group
	for _, s := range subjectOrder(results) {
		g := textplot.Group{Name: s}
		for _, tool := range Tools {
			for _, r := range results {
				if r.Subject == s && r.Tool == tool {
					g.Bars = append(g.Bars, bar(r))
				}
			}
		}
		groups = append(groups, g)
	}
	return groups
}

func subjectOrder(results []SubjectResult) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range results {
		if !seen[r.Subject] {
			seen[r.Subject] = true
			out = append(out, r.Subject)
		}
	}
	return out
}
