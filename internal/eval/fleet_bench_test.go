package eval

import (
	"fmt"
	"os"
	"testing"
	"time"

	"pfuzzer/internal/registry"
)

// benchMatrix runs the full default matrix shape (all paper subjects,
// all four tools, best-of-3) at a reduced budget and reports its
// wall-clock seconds. The speedup of fleet=4 over fleet=1 is the
// orchestration-layer acceptance number (EXPERIMENTS.md §7): the
// fleet must complete the matrix at least 2x faster on 4 cores while
// producing bit-identical results (TestMatrixFleetMatchesSerial).
func benchMatrix(b *testing.B, fleet int) {
	budget := Budget{
		PFuzzerExecs: 2000,
		AFLExecs:     20000,
		KLEEExecs:    2000,
		Runs:         2,
		Seed:         1,
		Fleet:        fleet,
	}
	entries := registry.Paper()
	// Silence the per-cell progress lines; the benchmark output is
	// the metric.
	old := os.Stderr
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err == nil {
		os.Stderr = null
		defer func() { os.Stderr = old; null.Close() }()
	}
	start := time.Now()
	for i := 0; i < b.N; i++ {
		Matrix(entries, budget)
	}
	b.ReportMetric(time.Since(start).Seconds()/float64(b.N), "matrix_s")
}

func BenchmarkMatrixFleet(b *testing.B) {
	for _, fleet := range []int{1, 4} {
		b.Run(fmt.Sprintf("fleet=%d", fleet), func(b *testing.B) {
			benchMatrix(b, fleet)
		})
	}
}
