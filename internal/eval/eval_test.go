package eval

import (
	"strings"
	"testing"

	"pfuzzer/internal/core"
	"pfuzzer/internal/registry"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

func tinyBudget() Budget {
	return Budget{PFuzzerExecs: 1500, AFLExecs: 6000, KLEEExecs: 1500, Runs: 1, Seed: 1}
}

func TestRunProducesConsistentResult(t *testing.T) {
	e, _ := registry.Get("cjson")
	for _, tool := range Tools {
		r := Run(e, tool, tinyBudget())
		if r.Subject != "cjson" || r.Tool != tool {
			t.Fatalf("identity wrong: %+v", r)
		}
		if r.Blocks <= 0 {
			t.Fatalf("%s: no blocks", tool)
		}
		if r.CoveragePct < 0 || r.CoveragePct > 100 {
			t.Errorf("%s: coverage %v out of range", tool, r.CoveragePct)
		}
		for _, in := range r.Valids {
			rec := subject.Execute(e.New(), in, trace.Options{})
			if !rec.Accepted() {
				t.Errorf("%s: recorded valid input %q rejected", tool, in)
			}
		}
	}
}

func TestBestOfRunsNotWorseThanSingle(t *testing.T) {
	e, _ := registry.Get("expr")
	b := tinyBudget()
	single := Run(e, PFuzzer, b)
	b.Runs = 3
	best := Run(e, PFuzzer, b)
	if best.CoveragePct < single.CoveragePct {
		t.Errorf("best-of-3 coverage %v < single-run coverage %v", best.CoveragePct, single.CoveragePct)
	}
}

func TestSummarizePoolsCounts(t *testing.T) {
	entries := []registry.Entry{}
	for _, name := range []string{"expr", "paren"} {
		e, _ := registry.Get(name)
		entries = append(entries, e)
	}
	results := Matrix(entries, tinyBudget())
	sums := Summarize(results)
	if len(sums) != len(Tools) {
		t.Fatalf("summaries = %d, want %d", len(sums), len(Tools))
	}
	wantShort := 0
	for _, e := range entries {
		_, st, _, _ := tokens.Cover(e.Inventory, nil).Split(3)
		wantShort += st
	}
	for _, s := range sums {
		if s.ShortTotal != wantShort {
			t.Errorf("%s: short total %d, want %d", s.Tool, s.ShortTotal, wantShort)
		}
		if s.ShortPct() < 0 || s.ShortPct() > 100 {
			t.Errorf("%s: short pct %v out of range", s.Tool, s.ShortPct())
		}
	}
}

// TestMineColumnTokenCoverageSuperset pins the pFuzzer+Mine column's
// contract on every paper subject: with Workers <= 1 the hybrid's
// exploration phase reproduces the pFuzzer campaign exactly (same
// seed, same budget, deterministic serial engine), so its valid
// corpus extends pFuzzer's and its token coverage is a superset —
// never below the pFuzzer column.
func TestMineColumnTokenCoverageSuperset(t *testing.T) {
	b := Budget{PFuzzerExecs: 4000, Runs: 1, Seed: 1}
	for _, e := range registry.Paper() {
		p := Run(e, PFuzzer, b)
		m := Run(e, PFuzzerMine, b)
		if len(m.Valids) < len(p.Valids) {
			t.Fatalf("%s: pFuzzer+Mine emitted %d valids, pFuzzer %d", e.Name, len(m.Valids), len(p.Valids))
		}
		for i := range p.Valids {
			if string(m.Valids[i]) != string(p.Valids[i]) {
				t.Errorf("%s: valid[%d] = %q, want pFuzzer's %q (exploration must be prefix-identical)",
					e.Name, i, m.Valids[i], p.Valids[i])
				break
			}
		}
		for tok := range p.TokenCov.Found {
			if !m.TokenCov.Found[tok] {
				t.Errorf("%s: token %q covered by pFuzzer but not pFuzzer+Mine", e.Name, tok)
			}
		}
		if m.TokenCov.FoundCount() < p.TokenCov.FoundCount() {
			t.Errorf("%s: pFuzzer+Mine token coverage %d below pFuzzer's %d",
				e.Name, m.TokenCov.FoundCount(), p.TokenCov.FoundCount())
		}
	}
}

// TestBetterRanking is the table-driven contract of the best-of-N
// fold: coverage wins outright, token coverage breaks coverage ties,
// and a full tie keeps the incumbent — which is how the first
// repetition survives equal reruns.
func TestBetterRanking(t *testing.T) {
	cov := func(pct float64, toks int) SubjectResult {
		found := map[string]bool{}
		names := []string{"a", "b", "c"}
		for i := 0; i < toks; i++ {
			found[names[i]] = true
		}
		return SubjectResult{
			CoveragePct: pct,
			TokenCov:    tokens.Coverage{Found: found},
		}
	}
	cases := []struct {
		name string
		a, b SubjectResult
		want bool
	}{
		{"coverage win", cov(50, 0), cov(40, 3), true},
		{"coverage loss", cov(40, 3), cov(50, 0), false},
		{"token tie-break win", cov(50, 2), cov(50, 1), true},
		{"token tie-break loss", cov(50, 1), cov(50, 2), false},
		{"full tie keeps incumbent", cov(50, 2), cov(50, 2), false},
	}
	for _, tc := range cases {
		if got := better(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: better = %v, want %v", tc.name, got, tc.want)
		}
	}
	// The fold itself: on full ties foldGroup keeps the earliest
	// repetition.
	a, b2 := cov(50, 2), cov(50, 2)
	a.Execs, b2.Execs = 111, 222 // distinguish the incumbents
	c0 := &cell{collect: func() SubjectResult { return a }}
	c1 := &cell{collect: func() SubjectResult { return b2 }}
	if best, _ := foldGroup([]*cell{c0, c1}); best.Execs != 111 {
		t.Errorf("full tie kept repetition with Execs=%d, want the first (111)", best.Execs)
	}
}

// TestRepetitionSeedsVaryOutcomes pins that the repetition seeding
// Seed + r*7919 actually produces different campaigns — the best-of-N
// fold is meaningless if every repetition replays the same run.
func TestRepetitionSeedsVaryOutcomes(t *testing.T) {
	e, _ := registry.Get("cjson")
	b := tinyBudget()
	results := make([]SubjectResult, 3)
	for r := range results {
		cells := []*cell{newCell(e, PFuzzer, b, r)}
		runCells(cells, b, nil)
		results[r] = cells[0].collect()
	}
	// Repetition r must run under seed Seed + r*7919: rebuild r=1
	// directly with that seed and compare corpora.
	direct := core.New(e.New(), core.Config{Seed: b.Seed + 7919, MaxExecs: b.PFuzzerExecs}).Run()
	if len(direct.Valids) != len(results[1].Valids) {
		t.Fatalf("rep 1 emitted %d valids, direct seed+7919 run %d", len(results[1].Valids), len(direct.Valids))
	}
	for i := range direct.Valids {
		if string(direct.Valids[i].Input) != string(results[1].Valids[i]) {
			t.Fatalf("rep 1 corpus diverges from the seed+7919 run at %d", i)
		}
	}
	varied := false
	for r := 1; r < len(results); r++ {
		if len(results[r].Valids) != len(results[0].Valids) {
			varied = true
			break
		}
		for i := range results[0].Valids {
			if string(results[r].Valids[i]) != string(results[0].Valids[i]) {
				varied = true
				break
			}
		}
	}
	if !varied {
		t.Error("all repetitions produced identical corpora; repetition seeds do not vary outcomes")
	}
}

// TestMatrixFleetMatchesSerial is the orchestration acceptance test:
// the fleet-parallel matrix must reproduce the serial matrix exactly
// — same execs, same corpora, same coverage — for every subject,
// tool and repetition, because serial pFuzzer campaigns are
// slice-invariant and the baselines run as single steps.
func TestMatrixFleetMatchesSerial(t *testing.T) {
	entries := []registry.Entry{}
	for _, name := range []string{"expr", "cjson"} {
		e, _ := registry.Get(name)
		entries = append(entries, e)
	}
	b := tinyBudget()
	b.Runs = 2
	serial := Matrix(entries, b)
	b.Fleet = 4
	b.FleetSlice = 223 // odd slice: exercise mid-campaign pausing
	fleet := Matrix(entries, b)
	if len(serial) != len(fleet) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(fleet))
	}
	for i := range serial {
		s, f := serial[i], fleet[i]
		if s.Subject != f.Subject || s.Tool != f.Tool {
			t.Fatalf("cell %d identity mismatch: %s/%s vs %s/%s", i, s.Subject, s.Tool, f.Subject, f.Tool)
		}
		if s.Execs != f.Execs || len(s.Valids) != len(f.Valids) ||
			s.CoveragePct != f.CoveragePct || s.TokenCov.FoundCount() != f.TokenCov.FoundCount() {
			t.Errorf("%s/%s: serial (execs=%d valids=%d cov=%.2f tok=%d) != fleet (execs=%d valids=%d cov=%.2f tok=%d)",
				s.Subject, s.Tool, s.Execs, len(s.Valids), s.CoveragePct, s.TokenCov.FoundCount(),
				f.Execs, len(f.Valids), f.CoveragePct, f.TokenCov.FoundCount())
		}
		for j := range s.Valids {
			if string(s.Valids[j]) != string(f.Valids[j]) {
				t.Errorf("%s/%s: valid[%d] differs between serial and fleet", s.Subject, s.Tool, j)
				break
			}
		}
	}
}

func TestReportsRender(t *testing.T) {
	e, _ := registry.Get("expr")
	results := Matrix([]registry.Entry{e}, tinyBudget())
	for name, out := range map[string]string{
		"fig2":    Figure2(results),
		"fig3":    Figure3(results),
		"summary": SummaryReport(results),
		"execs":   ExecsReport(results),
		"table1":  Table1(registry.Paper()),
	} {
		if len(strings.TrimSpace(out)) == 0 {
			t.Errorf("%s report is empty", name)
		}
	}
	csv := CSV(results)
	if len(csv) != len(results)+1 {
		t.Errorf("CSV rows = %d, want %d", len(csv), len(results)+1)
	}
}

// TestGrammarZooSubjectsProduceValids: the four grammar-zoo subjects
// run through the same matrix machinery as the paper's five, and the
// pFuzzer campaign finds valid inputs on each of them at a small
// budget — the guarantee behind the 11-subject matrix row of
// EXPERIMENTS.md §8.
func TestGrammarZooSubjectsProduceValids(t *testing.T) {
	b := Budget{PFuzzerExecs: 20000, Runs: 1, Seed: 1}
	for _, name := range []string{"urlp", "sexpr", "httpreq", "dotg"} {
		e, ok := registry.Get(name)
		if !ok {
			t.Fatalf("subject %q not registered", name)
		}
		r := Run(e, PFuzzer, b)
		if len(r.Valids) == 0 {
			t.Errorf("%s: pFuzzer found no valid inputs in %d execs", name, b.PFuzzerExecs)
		}
		if r.TokenCov.FoundCount() == 0 {
			t.Errorf("%s: no inventory tokens covered", name)
		}
	}
}
