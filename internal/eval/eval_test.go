package eval

import (
	"strings"
	"testing"

	"pfuzzer/internal/registry"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

func tinyBudget() Budget {
	return Budget{PFuzzerExecs: 1500, AFLExecs: 6000, KLEEExecs: 1500, Runs: 1, Seed: 1}
}

func TestRunProducesConsistentResult(t *testing.T) {
	e, _ := registry.Get("cjson")
	for _, tool := range Tools {
		r := Run(e, tool, tinyBudget())
		if r.Subject != "cjson" || r.Tool != tool {
			t.Fatalf("identity wrong: %+v", r)
		}
		if r.Blocks <= 0 {
			t.Fatalf("%s: no blocks", tool)
		}
		if r.CoveragePct < 0 || r.CoveragePct > 100 {
			t.Errorf("%s: coverage %v out of range", tool, r.CoveragePct)
		}
		for _, in := range r.Valids {
			rec := subject.Execute(e.New(), in, trace.Options{})
			if !rec.Accepted() {
				t.Errorf("%s: recorded valid input %q rejected", tool, in)
			}
		}
	}
}

func TestBestOfRunsNotWorseThanSingle(t *testing.T) {
	e, _ := registry.Get("expr")
	b := tinyBudget()
	single := Run(e, PFuzzer, b)
	b.Runs = 3
	best := Run(e, PFuzzer, b)
	if best.CoveragePct < single.CoveragePct {
		t.Errorf("best-of-3 coverage %v < single-run coverage %v", best.CoveragePct, single.CoveragePct)
	}
}

func TestSummarizePoolsCounts(t *testing.T) {
	entries := []registry.Entry{}
	for _, name := range []string{"expr", "paren"} {
		e, _ := registry.Get(name)
		entries = append(entries, e)
	}
	results := Matrix(entries, tinyBudget())
	sums := Summarize(results)
	if len(sums) != len(Tools) {
		t.Fatalf("summaries = %d, want %d", len(sums), len(Tools))
	}
	wantShort := 0
	for _, e := range entries {
		_, st, _, _ := tokens.Cover(e.Inventory, nil).Split(3)
		wantShort += st
	}
	for _, s := range sums {
		if s.ShortTotal != wantShort {
			t.Errorf("%s: short total %d, want %d", s.Tool, s.ShortTotal, wantShort)
		}
		if s.ShortPct() < 0 || s.ShortPct() > 100 {
			t.Errorf("%s: short pct %v out of range", s.Tool, s.ShortPct())
		}
	}
}

// TestMineColumnTokenCoverageSuperset pins the pFuzzer+Mine column's
// contract on every paper subject: with Workers <= 1 the hybrid's
// exploration phase reproduces the pFuzzer campaign exactly (same
// seed, same budget, deterministic serial engine), so its valid
// corpus extends pFuzzer's and its token coverage is a superset —
// never below the pFuzzer column.
func TestMineColumnTokenCoverageSuperset(t *testing.T) {
	b := Budget{PFuzzerExecs: 4000, Runs: 1, Seed: 1}
	for _, e := range registry.Paper() {
		p := Run(e, PFuzzer, b)
		m := Run(e, PFuzzerMine, b)
		if len(m.Valids) < len(p.Valids) {
			t.Fatalf("%s: pFuzzer+Mine emitted %d valids, pFuzzer %d", e.Name, len(m.Valids), len(p.Valids))
		}
		for i := range p.Valids {
			if string(m.Valids[i]) != string(p.Valids[i]) {
				t.Errorf("%s: valid[%d] = %q, want pFuzzer's %q (exploration must be prefix-identical)",
					e.Name, i, m.Valids[i], p.Valids[i])
				break
			}
		}
		for tok := range p.TokenCov.Found {
			if !m.TokenCov.Found[tok] {
				t.Errorf("%s: token %q covered by pFuzzer but not pFuzzer+Mine", e.Name, tok)
			}
		}
		if m.TokenCov.FoundCount() < p.TokenCov.FoundCount() {
			t.Errorf("%s: pFuzzer+Mine token coverage %d below pFuzzer's %d",
				e.Name, m.TokenCov.FoundCount(), p.TokenCov.FoundCount())
		}
	}
}

func TestReportsRender(t *testing.T) {
	e, _ := registry.Get("expr")
	results := Matrix([]registry.Entry{e}, tinyBudget())
	for name, out := range map[string]string{
		"fig2":    Figure2(results),
		"fig3":    Figure3(results),
		"summary": SummaryReport(results),
		"execs":   ExecsReport(results),
		"table1":  Table1(registry.Paper()),
	} {
		if len(strings.TrimSpace(out)) == 0 {
			t.Errorf("%s report is empty", name)
		}
	}
	csv := CSV(results)
	if len(csv) != len(results)+1 {
		t.Errorf("CSV rows = %d, want %d", len(csv), len(results)+1)
	}
}
