// Package eval is the campaign harness behind the paper's evaluation
// (§5): it runs each tool on each subject under a budget, keeps the
// best of N repetitions (the paper runs every tool three times and
// reports the best run, §5.1), and derives the two metrics the paper
// reports — branch coverage of the valid inputs (Figure 2) and token
// coverage of the valid inputs grouped by token length (Figure 3,
// Tables 2–4, and the §5.3 aggregates).
//
// Every campaign of the matrix runs as a job of the fleet
// orchestrator (internal/campaign). With Budget.Fleet <= 1 the matrix
// is the paper's strictly serial schedule; with more fleet workers,
// campaigns across subjects, tools and repetitions advance
// concurrently over the shared pool. The numbers are identical either
// way: pFuzzer campaigns are slice-invariant on the serial engine,
// and the AFL/KLEE baselines run as single full-budget steps — the
// parity and seed-identity tests in eval_test.go pin both.
package eval

import (
	"fmt"
	"os"
	"sort"
	"time"

	"pfuzzer/internal/afl"
	"pfuzzer/internal/campaign"
	"pfuzzer/internal/core"
	"pfuzzer/internal/klee"
	"pfuzzer/internal/registry"
	"pfuzzer/internal/tokens"
)

// Tool identifies one of the compared test generators.
type Tool string

// The compared tools. PFuzzerMine is the §7.4 tool chain: a pFuzzer
// campaign extended with grammar mining over its valid corpus — with
// Workers <= 1 its exploration is bit-identical to the PFuzzer
// campaign under the same seed, so its token coverage is a superset
// by construction and the column isolates what mining adds.
const (
	PFuzzer     Tool = "pFuzzer"
	AFL         Tool = "AFL"
	KLEE        Tool = "KLEE"
	PFuzzerMine Tool = "pFuzzer+Mine"
)

// Tools lists the tools in the paper's presentation order, extended
// with the §7.4 hybrid column.
var Tools = []Tool{AFL, KLEE, PFuzzer, PFuzzerMine}

// Budget scales the campaigns. The paper gives every tool 48 hours;
// here executions are the budget currency, with AFL given roughly
// three orders of magnitude more executions than pFuzzer, matching
// the throughput ratio the paper reports ("generating 1,000 times
// more inputs than pFuzzer", §5.2).
type Budget struct {
	PFuzzerExecs int
	AFLExecs     int
	KLEEExecs    int
	// MineExecs is the extra execution budget the pFuzzer+Mine
	// campaign spends validating mined candidates on top of its
	// PFuzzerExecs exploration (0 = PFuzzerExecs/4). The paper's
	// §7.4 sketch layers mining on a finished campaign, so the
	// hybrid's exploration keeps the full pFuzzer budget and the
	// Execs column reports the overhead honestly.
	MineExecs int
	Runs      int   // repetitions; the best run is reported
	Seed      int64 // base RNG seed
	Deadline  time.Duration
	// Workers sets the pFuzzer campaign's executor count (see
	// core.Config.Workers). 0 or 1 keeps the deterministic serial
	// engine the paper numbers were produced with; more workers
	// regenerate the figures faster at the cost of run-to-run
	// ordering variation.
	Workers int
	// Fleet sets how many campaigns of the matrix advance
	// concurrently over the fleet orchestrator's worker pool (0 or 1
	// = one at a time). Unlike Workers it changes no campaign's
	// result: serial pFuzzer campaigns are slice-invariant and the
	// baselines run as single steps, so a parallel matrix reproduces
	// the serial one bit for bit, only faster.
	Fleet int
	// FleetSlice is the per-step execution slice pFuzzer campaigns
	// are multiplexed at (0 = the fleet default, 4096).
	FleetSlice int
	// Cache sets the pFuzzer campaigns' execution-cache mode
	// (core.Config.Cache). The zero value keeps the adaptive default;
	// the cache is semantically transparent, so every setting produces
	// identical numbers — only the campaign wall-clock and the
	// reported hit rates change.
	Cache core.CacheMode
}

// DefaultBudget approximates the paper's effective execution counts:
// pFuzzer ran through a ~100× instrumentation slowdown for 48 h
// (~10^5 executions) while AFL ran at native speed ("generating 1,000
// times more inputs than pFuzzer", §5.2). The full matrix at this
// budget takes some minutes; use Scale for quicker runs.
func DefaultBudget() Budget {
	return Budget{
		PFuzzerExecs: 100000,
		AFLExecs:     1000000,
		KLEEExecs:    100000,
		Runs:         3,
		Seed:         1,
	}
}

// Scale multiplies all execution budgets by f.
func (b Budget) Scale(f float64) Budget {
	b.PFuzzerExecs = int(float64(b.PFuzzerExecs) * f)
	b.AFLExecs = int(float64(b.AFLExecs) * f)
	b.KLEEExecs = int(float64(b.KLEEExecs) * f)
	b.MineExecs = int(float64(b.MineExecs) * f)
	return b
}

// EffectiveMineExecs returns the mining budget the pFuzzer+Mine
// campaign actually spends: MineExecs, defaulting to a quarter of the
// exploration budget.
func (b Budget) EffectiveMineExecs() int {
	if b.MineExecs > 0 {
		return b.MineExecs
	}
	return b.PFuzzerExecs / 4
}

// SubjectResult is the outcome of one tool on one subject (best run).
type SubjectResult struct {
	Subject     string
	Tool        Tool
	Execs       int
	Valids      [][]byte
	Coverage    map[uint32]bool
	Blocks      int     // subject block count (coverage denominator)
	CoveragePct float64 // Figure 2 value
	TokenCov    tokens.Coverage
	Elapsed     time.Duration

	// CacheHits / CacheMisses are the pFuzzer engines' execution-cache
	// counters (zero for the AFL and KLEE baselines, which have no
	// cache). They are throughput diagnostics: the cache never changes
	// a campaign's corpus or coverage.
	CacheHits   int
	CacheMisses int
}

// CacheHitRate returns the fraction of executions served from the
// execution cache.
func (r *SubjectResult) CacheHitRate() float64 {
	if r.Execs == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.Execs)
}

// Run executes one tool on one subject with the given budget and
// returns the best of budget.Runs repetitions, where "best" is the
// run with the highest valid-input branch coverage (ties broken by
// token coverage, with the earliest repetition kept on full ties).
// With Budget.Fleet > 1 the repetitions advance concurrently.
func Run(entry registry.Entry, tool Tool, budget Budget) SubjectResult {
	cells := groupCells(entry, tool, budget)
	runCells(cells, budget, nil)
	best, _ := foldGroup(cells)
	return best
}

func better(a, b SubjectResult) bool {
	if a.CoveragePct != b.CoveragePct {
		return a.CoveragePct > b.CoveragePct
	}
	return a.TokenCov.FoundCount() > b.TokenCov.FoundCount()
}

// cell is one campaign of the evaluation matrix — one (subject, tool,
// repetition) triple under fleet control. collect distills the
// finished campaign into a SubjectResult.
type cell struct {
	entry   registry.Entry
	tool    Tool
	rep     int
	job     *campaign.Job
	collect func() SubjectResult
}

// newCell builds the campaign for one matrix cell. The tool
// configurations are exactly the paper harness's; only the driving
// moved from blocking Runs to fleet-stepped jobs.
func newCell(entry registry.Entry, tool Tool, budget Budget, rep int) *cell {
	seed := budget.Seed + int64(rep)*7919
	prog := entry.New()
	c := &cell{entry: entry, tool: tool, rep: rep}
	name := fmt.Sprintf("%s/%s/r%d", entry.Name, tool, rep)
	finalize := func(execs int, valids [][]byte, cov map[uint32]bool, elapsed time.Duration) SubjectResult {
		out := SubjectResult{
			Subject: entry.Name, Tool: tool, Blocks: prog.Blocks(),
			Execs: execs, Valids: valids, Coverage: cov, Elapsed: elapsed,
		}
		out.CoveragePct = tokens.Percent(len(cov), out.Blocks)
		found := map[string]bool{}
		for _, in := range valids {
			toks := make([]string, 0, 8)
			for tok := range entry.Tokenize(in) {
				toks = append(toks, tok)
			}
			sort.Strings(toks)
			for _, tok := range toks {
				found[tok] = true
			}
		}
		out.TokenCov = tokens.Cover(entry.Inventory, found)
		return out
	}

	// Serial pFuzzer campaigns are slice-invariant, so they ride the
	// fleet's default slice for fine multiplexing. With Workers > 1
	// each Step spins a fresh executor generation, so those campaigns
	// — like AFL and KLEE below — run as one full-budget step instead
	// of paying pool startup per slice.
	pfSlice := budget.FleetSlice
	if budget.Workers > 1 {
		pfSlice = budget.PFuzzerExecs + budget.EffectiveMineExecs()
	}

	// collectCore distills a pFuzzer-engine campaign, carrying the
	// execution-cache counters along with the paper metrics.
	collectCore := func(f *core.Campaign) func() SubjectResult {
		return func() SubjectResult {
			r := f.Result()
			out := finalize(r.Execs, r.ValidInputs(), r.Coverage, r.Elapsed)
			out.CacheHits = r.CacheHits
			out.CacheMisses = r.CacheMisses
			return out
		}
	}

	switch tool {
	case PFuzzer:
		f := core.NewCampaign(prog, core.Config{
			Seed:     seed,
			MaxExecs: budget.PFuzzerExecs,
			Deadline: budget.Deadline,
			Workers:  budget.Workers,
			Cache:    budget.Cache,
		})
		c.job = &campaign.Job{Name: name, Runner: f, Slice: pfSlice}
		c.collect = collectCore(f)
	case PFuzzerMine:
		mineExecs := budget.EffectiveMineExecs()
		f := core.NewCampaign(prog, core.Config{
			Seed: seed,
			// Exploration gets the full pFuzzer budget and runs as
			// one uninterrupted phase (MineCadence >= exploration),
			// so with Workers <= 1 it reproduces the PFuzzer
			// campaign's corpus exactly; the mining phase then spends
			// its own budget on top, with the feedback loop running
			// round by round inside the phase.
			MaxExecs:    budget.PFuzzerExecs + mineExecs,
			MineBudget:  mineExecs,
			MineCadence: budget.PFuzzerExecs,
			MinePhase:   true,
			MineLexer:   entry.Lexer,
			Deadline:    budget.Deadline,
			Workers:     budget.Workers,
			Cache:       budget.Cache,
		})
		c.job = &campaign.Job{Name: name, Runner: f, Slice: pfSlice}
		c.collect = collectCore(f)
	case AFL:
		f := afl.New(prog, afl.Config{
			Seed:     seed,
			MaxExecs: budget.AFLExecs,
			Deadline: budget.Deadline,
		})
		// One full-budget step: AFL's mutation stages are not
		// slice-invariant, and a single step keeps the fleet matrix
		// bit-identical to the serial one.
		c.job = &campaign.Job{Name: name, Runner: f, Slice: budget.AFLExecs}
		c.collect = func() SubjectResult {
			r := f.Result()
			return finalize(r.Execs, r.ValidInputs(), r.Coverage, r.Elapsed)
		}
	case KLEE:
		e := klee.New(prog, klee.Config{
			MaxExecs: budget.KLEEExecs,
			Deadline: budget.Deadline,
		})
		c.job = &campaign.Job{Name: name, Runner: e, Slice: budget.KLEEExecs}
		c.collect = func() SubjectResult {
			r := e.Result()
			return finalize(r.Execs, r.ValidInputs(), r.Coverage, r.Elapsed)
		}
	}
	return c
}

// groupCells builds one cell per repetition of a (subject, tool)
// group.
func groupCells(entry registry.Entry, tool Tool, budget Budget) []*cell {
	runs := budget.Runs
	if runs <= 0 {
		runs = 1
	}
	cells := make([]*cell, runs)
	for r := 0; r < runs; r++ {
		cells[r] = newCell(entry, tool, budget, r)
	}
	return cells
}

// runCells drives the cells' campaigns to completion over the fleet.
func runCells(cells []*cell, budget Budget, onProgress func(campaign.Progress)) {
	jobs := make([]*campaign.Job, len(cells))
	for i, c := range cells {
		jobs[i] = c.job
	}
	fl := campaign.Fleet{
		Workers:    budget.Fleet,
		Slice:      budget.FleetSlice,
		OnProgress: onProgress,
	}
	fl.Run(jobs)
}

// foldGroup reduces one group's finished repetitions to the best run
// (repetition order decides full ties, like the serial harness) and
// the group's summed campaign time.
func foldGroup(cells []*cell) (SubjectResult, time.Duration) {
	var best SubjectResult
	var total time.Duration
	for i, c := range cells {
		res := c.collect()
		total += res.Elapsed
		if i == 0 || better(res, best) {
			best = res
		}
	}
	return best, total
}

// Matrix runs every tool on every given subject and reports progress
// on stderr. With Budget.Fleet > 1 the whole matrix — every subject,
// tool and repetition — runs as one fleet over the shared worker
// pool, with a live progress line; the reported numbers are identical
// to the serial schedule's.
func Matrix(entries []registry.Entry, budget Budget) []SubjectResult {
	line := func(r SubjectResult, d time.Duration) {
		fmt.Fprintf(os.Stderr, "  %-6s %-8s execs=%-8d valids=%-5d cov=%5.1f%%  (%v)\n",
			r.Subject, r.Tool, r.Execs, len(r.Valids), r.CoveragePct,
			d.Round(time.Millisecond))
	}

	if budget.Fleet <= 1 {
		// Serial schedule: one (subject, tool) group at a time, its
		// line printed as it completes — the paper's original pacing.
		var out []SubjectResult
		for _, e := range entries {
			for _, tool := range Tools {
				cells := groupCells(e, tool, budget)
				runCells(cells, budget, nil)
				best, took := foldGroup(cells)
				line(best, took)
				out = append(out, best)
			}
		}
		return out
	}

	// Fleet schedule: every campaign of the matrix in one pool.
	var all []*cell
	for _, e := range entries {
		for _, tool := range Tools {
			all = append(all, groupCells(e, tool, budget)...)
		}
	}
	progress := func(p campaign.Progress) {
		if p.JobDone {
			fmt.Fprintf(os.Stderr, "\r  fleet[%d]: %d/%d campaigns done, %d execs, %v   ",
				budget.Fleet, p.Finished, p.Total, p.Execs,
				p.Elapsed.Round(time.Second))
		}
	}
	runCells(all, budget, progress)
	fmt.Fprintln(os.Stderr)

	var out []SubjectResult
	i := 0
	runs := budget.Runs
	if runs <= 0 {
		runs = 1
	}
	for range entries {
		for range Tools {
			best, took := foldGroup(all[i : i+runs])
			line(best, took)
			out = append(out, best)
			i += runs
		}
	}
	return out
}

// Summary is the §5.3 aggregate: token coverage pooled over all
// subjects, split at token length 3.
type Summary struct {
	Tool       Tool
	ShortFound int
	ShortTotal int
	LongFound  int
	LongTotal  int
}

// ShortPct returns the percentage of tokens of length <= 3 found.
func (s Summary) ShortPct() float64 { return tokens.Percent(s.ShortFound, s.ShortTotal) }

// LongPct returns the percentage of tokens of length > 3 found.
func (s Summary) LongPct() float64 { return tokens.Percent(s.LongFound, s.LongTotal) }

// Summarize pools token coverage per tool across subjects.
func Summarize(results []SubjectResult) []Summary {
	byTool := map[Tool]*Summary{}
	var order []Tool
	for _, r := range results {
		s := byTool[r.Tool]
		if s == nil {
			s = &Summary{Tool: r.Tool}
			byTool[r.Tool] = s
			order = append(order, r.Tool)
		}
		sf, st, lf, lt := r.TokenCov.Split(3)
		s.ShortFound += sf
		s.ShortTotal += st
		s.LongFound += lf
		s.LongTotal += lt
	}
	out := make([]Summary, 0, len(order))
	for _, tool := range order {
		out = append(out, *byTool[tool])
	}
	return out
}
