// Package eval is the campaign harness behind the paper's evaluation
// (§5): it runs each tool on each subject under a budget, keeps the
// best of N repetitions (the paper runs every tool three times and
// reports the best run, §5.1), and derives the two metrics the paper
// reports — branch coverage of the valid inputs (Figure 2) and token
// coverage of the valid inputs grouped by token length (Figure 3,
// Tables 2–4, and the §5.3 aggregates).
package eval

import (
	"fmt"
	"os"
	"time"

	"pfuzzer/internal/afl"
	"pfuzzer/internal/core"
	"pfuzzer/internal/klee"
	"pfuzzer/internal/registry"
	"pfuzzer/internal/tokens"
)

// Tool identifies one of the compared test generators.
type Tool string

// The compared tools. PFuzzerMine is the §7.4 tool chain: a pFuzzer
// campaign extended with grammar mining over its valid corpus — with
// Workers <= 1 its exploration is bit-identical to the PFuzzer
// campaign under the same seed, so its token coverage is a superset
// by construction and the column isolates what mining adds.
const (
	PFuzzer     Tool = "pFuzzer"
	AFL         Tool = "AFL"
	KLEE        Tool = "KLEE"
	PFuzzerMine Tool = "pFuzzer+Mine"
)

// Tools lists the tools in the paper's presentation order, extended
// with the §7.4 hybrid column.
var Tools = []Tool{AFL, KLEE, PFuzzer, PFuzzerMine}

// Budget scales the campaigns. The paper gives every tool 48 hours;
// here executions are the budget currency, with AFL given roughly
// three orders of magnitude more executions than pFuzzer, matching
// the throughput ratio the paper reports ("generating 1,000 times
// more inputs than pFuzzer", §5.2).
type Budget struct {
	PFuzzerExecs int
	AFLExecs     int
	KLEEExecs    int
	// MineExecs is the extra execution budget the pFuzzer+Mine
	// campaign spends validating mined candidates on top of its
	// PFuzzerExecs exploration (0 = PFuzzerExecs/4). The paper's
	// §7.4 sketch layers mining on a finished campaign, so the
	// hybrid's exploration keeps the full pFuzzer budget and the
	// Execs column reports the overhead honestly.
	MineExecs int
	Runs      int   // repetitions; the best run is reported
	Seed      int64 // base RNG seed
	Deadline  time.Duration
	// Workers sets the pFuzzer campaign's executor count (see
	// core.Config.Workers). 0 or 1 keeps the deterministic serial
	// engine the paper numbers were produced with; more workers
	// regenerate the figures faster at the cost of run-to-run
	// ordering variation.
	Workers int
}

// DefaultBudget approximates the paper's effective execution counts:
// pFuzzer ran through a ~100× instrumentation slowdown for 48 h
// (~10^5 executions) while AFL ran at native speed ("generating 1,000
// times more inputs than pFuzzer", §5.2). The full matrix at this
// budget takes some minutes; use Scale for quicker runs.
func DefaultBudget() Budget {
	return Budget{
		PFuzzerExecs: 100000,
		AFLExecs:     1000000,
		KLEEExecs:    100000,
		Runs:         3,
		Seed:         1,
	}
}

// Scale multiplies all execution budgets by f.
func (b Budget) Scale(f float64) Budget {
	b.PFuzzerExecs = int(float64(b.PFuzzerExecs) * f)
	b.AFLExecs = int(float64(b.AFLExecs) * f)
	b.KLEEExecs = int(float64(b.KLEEExecs) * f)
	b.MineExecs = int(float64(b.MineExecs) * f)
	return b
}

// EffectiveMineExecs returns the mining budget the pFuzzer+Mine
// campaign actually spends: MineExecs, defaulting to a quarter of the
// exploration budget.
func (b Budget) EffectiveMineExecs() int {
	if b.MineExecs > 0 {
		return b.MineExecs
	}
	return b.PFuzzerExecs / 4
}

// SubjectResult is the outcome of one tool on one subject (best run).
type SubjectResult struct {
	Subject     string
	Tool        Tool
	Execs       int
	Valids      [][]byte
	Coverage    map[uint32]bool
	Blocks      int     // subject block count (coverage denominator)
	CoveragePct float64 // Figure 2 value
	TokenCov    tokens.Coverage
	Elapsed     time.Duration
}

// Run executes one tool on one subject with the given budget and
// returns the best of budget.Runs repetitions, where "best" is the
// run with the highest valid-input branch coverage (ties broken by
// token coverage).
func Run(entry registry.Entry, tool Tool, budget Budget) SubjectResult {
	runs := budget.Runs
	if runs <= 0 {
		runs = 1
	}
	var best SubjectResult
	for r := 0; r < runs; r++ {
		seed := budget.Seed + int64(r)*7919
		res := runOnce(entry, tool, budget, seed)
		if r == 0 || better(res, best) {
			best = res
		}
	}
	return best
}

func better(a, b SubjectResult) bool {
	if a.CoveragePct != b.CoveragePct {
		return a.CoveragePct > b.CoveragePct
	}
	return a.TokenCov.FoundCount() > b.TokenCov.FoundCount()
}

func runOnce(entry registry.Entry, tool Tool, budget Budget, seed int64) SubjectResult {
	out := SubjectResult{Subject: entry.Name, Tool: tool}
	prog := entry.New()
	out.Blocks = prog.Blocks()

	switch tool {
	case PFuzzer:
		f := core.New(prog, core.Config{
			Seed:     seed,
			MaxExecs: budget.PFuzzerExecs,
			Deadline: budget.Deadline,
			Workers:  budget.Workers,
		})
		res := f.Run()
		out.Execs = res.Execs
		out.Valids = res.ValidInputs()
		out.Coverage = res.Coverage
		out.Elapsed = res.Elapsed
	case PFuzzerMine:
		mineExecs := budget.EffectiveMineExecs()
		f := core.New(prog, core.Config{
			Seed: seed,
			// Exploration gets the full pFuzzer budget and runs as
			// one uninterrupted phase (MineCadence >= exploration),
			// so with Workers <= 1 it reproduces the PFuzzer
			// campaign's corpus exactly; the mining phase then spends
			// its own budget on top, with the feedback loop running
			// round by round inside the phase.
			MaxExecs:    budget.PFuzzerExecs + mineExecs,
			MineBudget:  mineExecs,
			MineCadence: budget.PFuzzerExecs,
			MinePhase:   true,
			MineLexer:   entry.Lexer,
			Deadline:    budget.Deadline,
			Workers:     budget.Workers,
		})
		res := f.Run()
		out.Execs = res.Execs
		out.Valids = res.ValidInputs()
		out.Coverage = res.Coverage
		out.Elapsed = res.Elapsed
	case AFL:
		f := afl.New(prog, afl.Config{
			Seed:     seed,
			MaxExecs: budget.AFLExecs,
			Deadline: budget.Deadline,
		})
		res := f.Run()
		out.Execs = res.Execs
		out.Valids = res.ValidInputs()
		out.Coverage = res.Coverage
		out.Elapsed = res.Elapsed
	case KLEE:
		e := klee.New(prog, klee.Config{
			MaxExecs: budget.KLEEExecs,
			Deadline: budget.Deadline,
		})
		res := e.Run()
		out.Execs = res.Execs
		out.Valids = res.ValidInputs()
		out.Coverage = res.Coverage
		out.Elapsed = res.Elapsed
	}

	out.CoveragePct = tokens.Percent(len(out.Coverage), out.Blocks)
	found := map[string]bool{}
	for _, in := range out.Valids {
		for tok := range entry.Tokenize(in) {
			found[tok] = true
		}
	}
	out.TokenCov = tokens.Cover(entry.Inventory, found)
	return out
}

// Matrix runs every tool on every given subject, reporting progress
// on stderr.
func Matrix(entries []registry.Entry, budget Budget) []SubjectResult {
	var out []SubjectResult
	for _, e := range entries {
		for _, tool := range Tools {
			start := time.Now()
			r := Run(e, tool, budget)
			fmt.Fprintf(os.Stderr, "  %-6s %-8s execs=%-8d valids=%-5d cov=%5.1f%%  (%v)\n",
				e.Name, tool, r.Execs, len(r.Valids), r.CoveragePct,
				time.Since(start).Round(time.Millisecond))
			out = append(out, r)
		}
	}
	return out
}

// Summary is the §5.3 aggregate: token coverage pooled over all
// subjects, split at token length 3.
type Summary struct {
	Tool       Tool
	ShortFound int
	ShortTotal int
	LongFound  int
	LongTotal  int
}

// ShortPct returns the percentage of tokens of length <= 3 found.
func (s Summary) ShortPct() float64 { return tokens.Percent(s.ShortFound, s.ShortTotal) }

// LongPct returns the percentage of tokens of length > 3 found.
func (s Summary) LongPct() float64 { return tokens.Percent(s.LongFound, s.LongTotal) }

// Summarize pools token coverage per tool across subjects.
func Summarize(results []SubjectResult) []Summary {
	byTool := map[Tool]*Summary{}
	var order []Tool
	for _, r := range results {
		s := byTool[r.Tool]
		if s == nil {
			s = &Summary{Tool: r.Tool}
			byTool[r.Tool] = s
			order = append(order, r.Tool)
		}
		sf, st, lf, lt := r.TokenCov.Split(3)
		s.ShortFound += sf
		s.ShortTotal += st
		s.LongFound += lf
		s.LongTotal += lt
	}
	out := make([]Summary, 0, len(order))
	for _, tool := range order {
		out = append(out, *byTool[tool])
	}
	return out
}
