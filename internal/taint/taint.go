// Package taint implements dynamic taint tracking for program inputs.
//
// pFuzzer (Mathis et al., PLDI 2019, §4) instruments the program under
// test so that every input character carries a unique identifier, and
// values derived from input characters accumulate the identifiers of
// the characters they were derived from. This package is the Go
// equivalent of that LLVM instrumentation: a Char is one byte of input
// together with the input offset it originated from, and a String is a
// derived sequence of such bytes (an accumulated token, a copied
// buffer, the result of a strcpy).
//
// Values that are not derived from the input (literals, table lookups,
// results of implicit flows) carry NoOrigin; comparisons against them
// are invisible to the fuzzer, which is exactly the taint-loss
// behaviour the paper describes for tokenization (§7.2) and implicit
// flows (§5.2).
package taint

// NoOrigin marks a value that is not derived from any input character.
const NoOrigin = -1

// Char is a single byte of program input with its taint: the offset in
// the input string it was read from, or NoOrigin.
type Char struct {
	B      byte
	Origin int
}

// Untainted returns a Char carrying byte b and no taint. Use it for
// values produced by implicit flows, where the byte's value depends on
// the input but no direct data flow exists.
func Untainted(b byte) Char { return Char{B: b, Origin: NoOrigin} }

// Tainted reports whether the character is derived from the input.
func (c Char) Tainted() bool { return c.Origin != NoOrigin }

// String is a sequence of tainted characters: a token buffer, a copied
// string, or any other value assembled from input characters. The zero
// value is an empty string ready to use.
type String []Char

// FromBytes builds an untainted String from b (for example, a string
// literal that later flows into tainted comparisons).
func FromBytes(b []byte) String {
	s := make(String, len(b))
	for i, c := range b {
		s[i] = Untainted(c)
	}
	return s
}

// FromInput builds a String whose i-th character is tainted with
// origin base+i. It models reading len(b) consecutive characters
// starting at input offset base.
func FromInput(b []byte, base int) String {
	s := make(String, len(b))
	for i, c := range b {
		s[i] = Char{B: c, Origin: base + i}
	}
	return s
}

// Append returns s with c appended, like the built-in append.
func (s String) Append(c Char) String { return append(s, c) }

// Concat returns the concatenation of s and t in a fresh String.
func (s String) Concat(t String) String {
	out := make(String, 0, len(s)+len(t))
	out = append(out, s...)
	return append(out, t...)
}

// Bytes returns the raw byte content of s.
func (s String) Bytes() []byte {
	b := make([]byte, len(s))
	for i, c := range s {
		b[i] = c.B
	}
	return b
}

// Text returns the content of s as a plain Go string.
func (s String) Text() string { return string(s.Bytes()) }

// Origins returns the origin offsets of all tainted characters in s,
// in order. Untainted characters contribute nothing.
func (s String) Origins() []int {
	var o []int
	for _, c := range s {
		if c.Tainted() {
			o = append(o, c.Origin)
		}
	}
	return o
}

// FirstOrigin returns the smallest origin offset in s, or NoOrigin if
// no character is tainted.
func (s String) FirstOrigin() int {
	min := NoOrigin
	for _, c := range s {
		if c.Tainted() && (min == NoOrigin || c.Origin < min) {
			min = c.Origin
		}
	}
	return min
}

// LastOrigin returns the largest origin offset in s, or NoOrigin if no
// character is tainted.
func (s String) LastOrigin() int {
	max := NoOrigin
	for _, c := range s {
		if c.Tainted() && c.Origin > max {
			max = c.Origin
		}
	}
	return max
}

// Tainted reports whether any character of s carries taint.
func (s String) Tainted() bool { return s.FirstOrigin() != NoOrigin }
