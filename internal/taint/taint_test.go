package taint

import (
	"testing"
	"testing/quick"
)

func TestUntainted(t *testing.T) {
	c := Untainted('x')
	if c.Tainted() {
		t.Error("Untainted char reports taint")
	}
	if c.B != 'x' {
		t.Errorf("B = %q, want 'x'", c.B)
	}
}

func TestFromInputOrigins(t *testing.T) {
	s := FromInput([]byte("abc"), 5)
	for i, c := range s {
		if c.Origin != 5+i {
			t.Errorf("origin[%d] = %d, want %d", i, c.Origin, 5+i)
		}
	}
	if got := s.Text(); got != "abc" {
		t.Errorf("Text = %q, want abc", got)
	}
}

func TestFromBytesHasNoTaint(t *testing.T) {
	s := FromBytes([]byte("lit"))
	if s.Tainted() {
		t.Error("FromBytes produced tainted string")
	}
	if s.FirstOrigin() != NoOrigin || s.LastOrigin() != NoOrigin {
		t.Error("origins of untainted string should be NoOrigin")
	}
}

func TestOriginBounds(t *testing.T) {
	s := String{
		{B: 'a', Origin: 7},
		Untainted('b'),
		{B: 'c', Origin: 3},
	}
	if got := s.FirstOrigin(); got != 3 {
		t.Errorf("FirstOrigin = %d, want 3", got)
	}
	if got := s.LastOrigin(); got != 7 {
		t.Errorf("LastOrigin = %d, want 7", got)
	}
	if got := len(s.Origins()); got != 2 {
		t.Errorf("len(Origins) = %d, want 2", got)
	}
}

func TestConcatPreservesContentAndTaint(t *testing.T) {
	a := FromInput([]byte("ab"), 0)
	b := FromInput([]byte("cd"), 2)
	c := a.Concat(b)
	if c.Text() != "abcd" {
		t.Errorf("Concat text = %q", c.Text())
	}
	if c.FirstOrigin() != 0 || c.LastOrigin() != 3 {
		t.Errorf("Concat origins = [%d,%d], want [0,3]", c.FirstOrigin(), c.LastOrigin())
	}
	// Concat must not alias its inputs.
	c[0].B = 'X'
	if a.Text() != "ab" {
		t.Error("Concat aliases its first argument")
	}
}

// Property: for any input bytes and base, FromInput round-trips the
// bytes and the origins are exactly base..base+len-1.
func TestFromInputRoundTrip(t *testing.T) {
	f := func(data []byte, base uint8) bool {
		s := FromInput(data, int(base))
		if string(s.Bytes()) != string(data) {
			return false
		}
		for i, c := range s {
			if c.Origin != int(base)+i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: concatenation is associative with respect to content and
// origin sequences.
func TestConcatAssociative(t *testing.T) {
	f := func(a, b, c []byte) bool {
		sa, sb, sc := FromInput(a, 0), FromInput(b, len(a)), FromInput(c, len(a)+len(b))
		l := sa.Concat(sb).Concat(sc)
		r := sa.Concat(sb.Concat(sc))
		if l.Text() != r.Text() {
			return false
		}
		lo, ro := l.Origins(), r.Origins()
		if len(lo) != len(ro) {
			return false
		}
		for i := range lo {
			if lo[i] != ro[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
