// Package textplot renders the paper's figures as ASCII bar charts so
// the evaluation harness can display them in a terminal.
package textplot

import (
	"fmt"
	"strings"
)

// Bar is one labelled value in a bar group.
type Bar struct {
	Label string
	Value float64
}

// Group is a named cluster of bars (e.g. one subject with one bar per
// tool).
type Group struct {
	Name string
	Bars []Bar
}

// BarChart renders grouped horizontal bars scaled to width, with the
// value printed after each bar.
func BarChart(title string, groups []Group, width int, unit string) string {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	labelW := 0
	nameW := 0
	for _, g := range groups {
		if len(g.Name) > nameW {
			nameW = len(g.Name)
		}
		for _, b := range g.Bars {
			if b.Value > max {
				max = b.Value
			}
			if len(b.Label) > labelW {
				labelW = len(b.Label)
			}
		}
	}
	if max == 0 {
		max = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for _, g := range groups {
		for i, b := range g.Bars {
			name := ""
			if i == 0 {
				name = g.Name
			}
			n := int(b.Value / max * float64(width))
			if b.Value > 0 && n == 0 {
				n = 1
			}
			fmt.Fprintf(&sb, "  %-*s %-*s %s %.1f%s\n",
				nameW, name, labelW, b.Label, strings.Repeat("#", n), b.Value, unit)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Table renders rows with aligned columns; the first row is the
// header, separated by a rule.
func Table(title string, rows [][]string) string {
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	if len(rows) == 0 {
		return sb.String()
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	render := func(row []string) {
		sb.WriteString(" ")
		for i, cell := range row {
			fmt.Fprintf(&sb, " %-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	render(rows[0])
	rule := make([]string, len(rows[0]))
	for i := range rule {
		if i < len(widths) {
			rule[i] = strings.Repeat("-", widths[i])
		}
	}
	render(rule)
	for _, row := range rows[1:] {
		render(row)
	}
	return sb.String()
}
