package textplot

import (
	"strings"
	"testing"
)

func TestBarChartScalesAndLabels(t *testing.T) {
	out := BarChart("title", []Group{
		{Name: "g1", Bars: []Bar{{Label: "a", Value: 100}, {Label: "b", Value: 50}}},
		{Name: "g2", Bars: []Bar{{Label: "a", Value: 0}}},
	}, 10, "%")
	if !strings.HasPrefix(out, "title\n") {
		t.Error("missing title")
	}
	lines := strings.Split(out, "\n")
	var aLine, bLine string
	for _, l := range lines {
		if strings.Contains(l, "100.0%") {
			aLine = l
		}
		if strings.Contains(l, "50.0%") {
			bLine = l
		}
	}
	if strings.Count(aLine, "#") != 10 {
		t.Errorf("max bar should use full width: %q", aLine)
	}
	if strings.Count(bLine, "#") != 5 {
		t.Errorf("half bar should use half width: %q", bLine)
	}
	if !strings.Contains(out, "g1") || !strings.Contains(out, "g2") {
		t.Error("group names missing")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	out := BarChart("t", []Group{{Name: "g", Bars: []Bar{{Label: "x", Value: 0}}}}, 10, "")
	if strings.Contains(out, "#") {
		t.Error("zero value drew a bar")
	}
}

func TestTableAlignsColumns(t *testing.T) {
	out := Table("hdr", [][]string{
		{"Name", "Value"},
		{"a", "1"},
		{"longer", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("missing rule: %q", lines[2])
	}
	if len(lines[3]) == 0 || len(lines[4]) == 0 {
		t.Error("rows missing")
	}
}

func TestTableEmpty(t *testing.T) {
	if out := Table("only", nil); !strings.Contains(out, "only") {
		t.Errorf("Table with no rows = %q", out)
	}
}
