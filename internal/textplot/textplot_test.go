package textplot

import (
	"strings"
	"testing"
)

func TestBarChartScalesAndLabels(t *testing.T) {
	out := BarChart("title", []Group{
		{Name: "g1", Bars: []Bar{{Label: "a", Value: 100}, {Label: "b", Value: 50}}},
		{Name: "g2", Bars: []Bar{{Label: "a", Value: 0}}},
	}, 10, "%")
	if !strings.HasPrefix(out, "title\n") {
		t.Error("missing title")
	}
	lines := strings.Split(out, "\n")
	var aLine, bLine string
	for _, l := range lines {
		if strings.Contains(l, "100.0%") {
			aLine = l
		}
		if strings.Contains(l, "50.0%") {
			bLine = l
		}
	}
	if strings.Count(aLine, "#") != 10 {
		t.Errorf("max bar should use full width: %q", aLine)
	}
	if strings.Count(bLine, "#") != 5 {
		t.Errorf("half bar should use half width: %q", bLine)
	}
	if !strings.Contains(out, "g1") || !strings.Contains(out, "g2") {
		t.Error("group names missing")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	out := BarChart("t", []Group{{Name: "g", Bars: []Bar{{Label: "x", Value: 0}}}}, 10, "")
	if strings.Contains(out, "#") {
		t.Error("zero value drew a bar")
	}
}

func TestTableAlignsColumns(t *testing.T) {
	out := Table("hdr", [][]string{
		{"Name", "Value"},
		{"a", "1"},
		{"longer", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("missing rule: %q", lines[2])
	}
	if len(lines[3]) == 0 || len(lines[4]) == 0 {
		t.Error("rows missing")
	}
}

func TestTableEmpty(t *testing.T) {
	if out := Table("only", nil); !strings.Contains(out, "only") {
		t.Errorf("Table with no rows = %q", out)
	}
}

func TestBarChartEmptySeries(t *testing.T) {
	// No groups at all: just the title, no panic.
	out := BarChart("empty", nil, 20, "%")
	if !strings.HasPrefix(out, "empty\n") {
		t.Errorf("empty chart lost its title: %q", out)
	}
	// A group with no bars renders its (empty) block without a panic.
	out = BarChart("t", []Group{{Name: "g"}}, 20, "")
	if strings.Contains(out, "#") {
		t.Errorf("bar drawn for a group with no bars: %q", out)
	}
}

func TestBarChartNonPositiveWidthDefaults(t *testing.T) {
	for _, w := range []int{0, -5} {
		out := BarChart("t", []Group{
			{Name: "g", Bars: []Bar{{Label: "a", Value: 10}}},
		}, w, "")
		if got := strings.Count(out, "#"); got != 40 {
			t.Errorf("width %d: max bar drew %d marks, want the 40-column default", w, got)
		}
	}
}

func TestBarChartTinyValueStillVisible(t *testing.T) {
	// A non-zero value that rounds to zero columns must still draw one
	// mark, or the chart silently hides data.
	out := BarChart("t", []Group{
		{Name: "g", Bars: []Bar{{Label: "big", Value: 1000}, {Label: "tiny", Value: 0.01}}},
	}, 10, "")
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "tiny") && strings.Count(l, "#") != 1 {
			t.Errorf("tiny value not drawn with one mark: %q", l)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	// Rows may have differing column counts; widths adapt, no panic.
	out := Table("", [][]string{
		{"a", "b", "c"},
		{"longer"},
		{"x", "y", "z", "extra"},
	})
	if !strings.Contains(out, "extra") || !strings.Contains(out, "longer") {
		t.Errorf("ragged rows dropped cells: %q", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	out := Table("", [][]string{{"h"}, {"v"}})
	if strings.HasPrefix(out, "\n") {
		t.Errorf("untitled table starts with a blank line: %q", out)
	}
	if !strings.Contains(out, "h") || !strings.Contains(out, "v") {
		t.Errorf("table dropped content: %q", out)
	}
}
