// Package registry wires every subject to its token inventory and
// tokenizer, so the evaluation harness, commands and benchmarks can
// iterate over the paper's Table 1 uniformly.
package registry

import (
	"pfuzzer/internal/mine"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/csvp"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/subjects/ini"
	"pfuzzer/internal/subjects/mjs"
	"pfuzzer/internal/subjects/paren"
	"pfuzzer/internal/subjects/tinyc"
	"pfuzzer/internal/tokens"
)

// Entry describes one subject.
type Entry struct {
	// Name is the subject's short name, matching Program.Name.
	Name string
	// New constructs the subject. Every registered constructor
	// returns a stateless value whose Run method is safe for
	// concurrent calls — the contract the concurrent campaign engine
	// (core.Config.Workers > 1) relies on when sharing one Program
	// across its executor pool.
	New func() subject.Program
	// Inventory is the subject's full token inventory.
	Inventory tokens.Inventory
	// Tokenize extracts inventory token names from an input.
	Tokenize func([]byte) map[string]bool
	// Lexer is the sequence-valued tokenizer the grammar miner uses
	// (core.Config.MineLexer): C-family subjects get a keyword-aware
	// SimpleLexer, the flat line formats a DelimLexer — so every
	// subject, not just the C-family ones, can be mined.
	Lexer mine.Lexer
	// PaperLoC is the subject's size in Table 1 (0 for extra subjects).
	PaperLoC int
	// Accessed is the version date in Table 1.
	Accessed string
}

// wordNames extracts the keyword-like names (letter-initial, length
// >= 2) from an inventory, the word set a mining lexer should treat
// as distinct token classes.
func wordNames(inv tokens.Inventory) []string {
	var out []string
	for _, t := range inv {
		if len(t.Name) >= 2 && (t.Name[0] >= 'a' && t.Name[0] <= 'z' ||
			t.Name[0] >= 'A' && t.Name[0] <= 'Z') {
			out = append(out, t.Name)
		}
	}
	return out
}

// Paper returns the five evaluation subjects in Table 1 order.
func Paper() []Entry {
	return []Entry{
		{Name: "ini", New: func() subject.Program { return ini.New() },
			Inventory: ini.Inventory, Tokenize: ini.Tokenize,
			Lexer:    mine.DelimLexer("[]=;\n", "text"),
			PaperLoC: 293, Accessed: "2018-10-25"},
		{Name: "csv", New: func() subject.Program { return csvp.New() },
			Inventory: csvp.Inventory, Tokenize: csvp.Tokenize,
			Lexer:    mine.DelimLexer(",\n", "field"),
			PaperLoC: 297, Accessed: "2018-10-25"},
		{Name: "cjson", New: func() subject.Program { return cjson.New() },
			Inventory: cjson.Inventory, Tokenize: cjson.Tokenize,
			Lexer:    mine.SimpleLexer(wordNames(cjson.Inventory)),
			PaperLoC: 2483, Accessed: "2018-10-25"},
		{Name: "tinyc", New: func() subject.Program { return tinyc.New() },
			Inventory: tinyc.Inventory, Tokenize: tinyc.Tokenize,
			Lexer:    mine.SimpleLexer(wordNames(tinyc.Inventory)),
			PaperLoC: 191, Accessed: "2018-10-25"},
		{Name: "mjs", New: func() subject.Program { return mjs.New() },
			Inventory: mjs.Inventory, Tokenize: mjs.Tokenize,
			Lexer:    mine.SimpleLexer(wordNames(mjs.Inventory)),
			PaperLoC: 10920, Accessed: "2018-06-21"},
	}
}

// Extra returns the additional subjects used by examples and tests:
// the §2 expression parser and the §3 bracket language.
func Extra() []Entry {
	return []Entry{
		{Name: "expr", New: func() subject.Program { return expr.New() },
			Inventory: expr.Inventory, Tokenize: expr.Tokenize,
			Lexer: mine.SimpleLexer(nil)},
		{Name: "paren", New: func() subject.Program { return paren.New() },
			Inventory: paren.Inventory, Tokenize: paren.Tokenize,
			Lexer: mine.SimpleLexer(nil)},
	}
}

// All returns every registered subject.
func All() []Entry { return append(Paper(), Extra()...) }

// Get returns the entry with the given name.
func Get(name string) (Entry, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Names returns the names of all registered subjects.
func Names() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.Name)
	}
	return out
}
