// Package registry wires every subject to its token inventory and
// tokenizer, so the evaluation harness, commands and benchmarks can
// iterate over the paper's Table 1 uniformly. Entries pass through
// Register, which validates the contract every engine layer assumes
// (see internal/conformance for the machine-checked half) and rejects
// duplicates instead of silently shadowing an existing subject; the
// built-in groups register at package init and an invalid built-in is
// a panic at startup, not a misbehaving campaign later.
package registry

import (
	"fmt"
	"sync"

	"pfuzzer/internal/mine"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/csvp"
	"pfuzzer/internal/subjects/dotg"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/subjects/httpreq"
	"pfuzzer/internal/subjects/ini"
	"pfuzzer/internal/subjects/mjs"
	"pfuzzer/internal/subjects/paren"
	"pfuzzer/internal/subjects/sexpr"
	"pfuzzer/internal/subjects/tinyc"
	"pfuzzer/internal/subjects/urlp"
	"pfuzzer/internal/tokens"
)

// Entry describes one subject.
type Entry struct {
	// Name is the subject's short name, matching Program.Name.
	Name string
	// New constructs the subject. Every registered constructor
	// returns a stateless value whose Run method is safe for
	// concurrent calls — the contract the concurrent campaign engine
	// (core.Config.Workers > 1) relies on when sharing one Program
	// across its executor pool.
	New func() subject.Program
	// Inventory is the subject's full token inventory.
	Inventory tokens.Inventory
	// Tokenize extracts inventory token names from an input.
	Tokenize func([]byte) map[string]bool
	// Lexer is the sequence-valued tokenizer the grammar miner uses
	// (core.Config.MineLexer): C-family subjects get a keyword-aware
	// SimpleLexer, the flat line formats a DelimLexer — so every
	// subject, not just the C-family ones, can be mined.
	Lexer mine.Lexer
	// PaperLoC is the subject's size in Table 1 (0 for extra subjects).
	PaperLoC int
	// Accessed is the version date in Table 1.
	Accessed string
}

// registered is the subject table: an insertion-ordered slice (the
// iteration order of All and the evaluation matrix) plus a name
// index. The mutex makes Register safe beside concurrent lookups —
// user code may register subjects lazily while fleet workers resolve
// entries.
var (
	mu         sync.RWMutex
	registered []Entry
	byName     = map[string]int{}
)

// Validate checks the parts of the registry contract a lookup can
// check: a non-empty name, a constructor whose Program echoes the
// entry's name and reports instrumented blocks, a non-empty token
// inventory, a tokenizer, and a mining lexer. The behavioural half of
// the contract — determinism, prefix rejection, lexer round-trip,
// engine agreement — is machine-checked by internal/conformance.
func Validate(e Entry) error {
	if e.Name == "" {
		return fmt.Errorf("registry: entry with empty name")
	}
	if e.New == nil {
		return fmt.Errorf("registry: %s: nil constructor", e.Name)
	}
	prog := e.New()
	if prog == nil {
		return fmt.Errorf("registry: %s: constructor returned nil", e.Name)
	}
	if prog.Name() != e.Name {
		return fmt.Errorf("registry: %s: constructor builds a program named %q", e.Name, prog.Name())
	}
	if prog.Blocks() <= 0 {
		return fmt.Errorf("registry: %s: no instrumented blocks", e.Name)
	}
	if e.Inventory.Count() == 0 {
		return fmt.Errorf("registry: %s: empty token inventory", e.Name)
	}
	if e.Tokenize == nil {
		return fmt.Errorf("registry: %s: nil tokenizer", e.Name)
	}
	if e.Lexer == nil {
		return fmt.Errorf("registry: %s: nil mining lexer", e.Name)
	}
	return nil
}

// Register validates e and adds it to the subject table. A duplicate
// name is an error — the previous behaviour of silently shadowing an
// entry hid wiring mistakes until a campaign ran the wrong parser.
func Register(e Entry) error {
	if err := Validate(e); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := byName[e.Name]; dup {
		return fmt.Errorf("registry: duplicate subject %q", e.Name)
	}
	byName[e.Name] = len(registered)
	registered = append(registered, e)
	return nil
}

// MustRegister is Register for init-time wiring: it panics on error.
func MustRegister(e Entry) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

func init() {
	for _, group := range [][]Entry{Paper(), Extra(), Grammar()} {
		for _, e := range group {
			MustRegister(e)
		}
	}
}

// wordNames extracts the keyword names (letter-initial literals of
// length >= 2) from an inventory, the word set a mining lexer should
// treat as distinct token classes. Open-class entries (identifier,
// number, string, …) are excluded — a Lit's Len always equals its
// spelling length while the Class entries count under a different
// length — so an input containing the literal word "number" does not
// collide with the lexer's own number class.
func wordNames(inv tokens.Inventory) []string {
	var out []string
	for _, t := range inv {
		if len(t.Name) >= 2 && t.Len == len(t.Name) &&
			(t.Name[0] >= 'a' && t.Name[0] <= 'z' ||
				t.Name[0] >= 'A' && t.Name[0] <= 'Z') {
			out = append(out, t.Name)
		}
	}
	return out
}

// Paper returns the five evaluation subjects in Table 1 order.
func Paper() []Entry {
	return []Entry{
		{Name: "ini", New: func() subject.Program { return ini.New() },
			Inventory: ini.Inventory, Tokenize: ini.Tokenize,
			Lexer:    mine.DelimLexer("[]=;\n", "text"),
			PaperLoC: 293, Accessed: "2018-10-25"},
		{Name: "csv", New: func() subject.Program { return csvp.New() },
			Inventory: csvp.Inventory, Tokenize: csvp.Tokenize,
			Lexer:    mine.DelimLexer(",\n", "field"),
			PaperLoC: 297, Accessed: "2018-10-25"},
		{Name: "cjson", New: func() subject.Program { return cjson.New() },
			Inventory: cjson.Inventory, Tokenize: cjson.Tokenize,
			Lexer:    mine.SimpleLexer(wordNames(cjson.Inventory)),
			PaperLoC: 2483, Accessed: "2018-10-25"},
		{Name: "tinyc", New: func() subject.Program { return tinyc.New() },
			Inventory: tinyc.Inventory, Tokenize: tinyc.Tokenize,
			Lexer:    mine.SimpleLexer(wordNames(tinyc.Inventory)),
			PaperLoC: 191, Accessed: "2018-10-25"},
		{Name: "mjs", New: func() subject.Program { return mjs.New() },
			Inventory: mjs.Inventory, Tokenize: mjs.Tokenize,
			Lexer:    mine.SimpleLexer(wordNames(mjs.Inventory)),
			PaperLoC: 10920, Accessed: "2018-06-21"},
	}
}

// Extra returns the additional subjects used by examples and tests:
// the §2 expression parser and the §3 bracket language.
func Extra() []Entry {
	return []Entry{
		{Name: "expr", New: func() subject.Program { return expr.New() },
			Inventory: expr.Inventory, Tokenize: expr.Tokenize,
			Lexer: mine.SimpleLexer(nil)},
		{Name: "paren", New: func() subject.Program { return paren.New() },
			Inventory: paren.Inventory, Tokenize: paren.Tokenize,
			Lexer: mine.SimpleLexer(nil)},
	}
}

// Grammar returns the grammar-zoo subjects added beyond the paper's
// evaluation: an RFC-3986-ish URL parser, a Lisp s-expression reader,
// an HTTP/1.1 request-head parser and a Graphviz DOT subset. They
// broaden the token vocabularies the engines are exercised against
// and all pass the internal/conformance kit.
func Grammar() []Entry {
	return []Entry{
		{Name: "urlp", New: func() subject.Program { return urlp.New() },
			Inventory: urlp.Inventory, Tokenize: urlp.Tokenize,
			Lexer: mine.SimpleLexer(wordNames(urlp.Inventory))},
		{Name: "sexpr", New: func() subject.Program { return sexpr.New() },
			Inventory: sexpr.Inventory, Tokenize: sexpr.Tokenize,
			Lexer: mine.SimpleLexer(wordNames(sexpr.Inventory))},
		{Name: "httpreq", New: func() subject.Program { return httpreq.New() },
			Inventory: httpreq.Inventory, Tokenize: httpreq.Tokenize,
			Lexer: mine.DelimLexer(" :/?=&\n", "text")},
		{Name: "dotg", New: func() subject.Program { return dotg.New() },
			Inventory: dotg.Inventory, Tokenize: dotg.Tokenize,
			Lexer: mine.SimpleLexer(wordNames(dotg.Inventory))},
	}
}

// All returns every registered subject in registration order.
func All() []Entry {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Entry, len(registered))
	copy(out, registered)
	return out
}

// Get returns the entry with the given name.
func Get(name string) (Entry, bool) {
	mu.RLock()
	defer mu.RUnlock()
	i, ok := byName[name]
	if !ok {
		return Entry{}, false
	}
	return registered[i], true
}

// NewProgram constructs a fresh Program for the named subject. It is
// the lookup the self-shim server (cmd/pshim) answers handshakes
// with: the child resolves the requested subject by name and serves
// it, or reports an error frame if the name is unknown.
func NewProgram(name string) (subject.Program, error) {
	e, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown subject %q", name)
	}
	return e.New(), nil
}

// Names returns the names of all registered subjects.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, len(registered))
	for i, e := range registered {
		out[i] = e.Name
	}
	return out
}
