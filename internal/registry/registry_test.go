package registry

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

func TestPaperMatchesTable1(t *testing.T) {
	entries := Paper()
	want := []struct {
		name string
		loc  int
	}{
		{"ini", 293}, {"csv", 297}, {"cjson", 2483}, {"tinyc", 191}, {"mjs", 10920},
	}
	if len(entries) != len(want) {
		t.Fatalf("Paper() has %d entries, want %d", len(entries), len(want))
	}
	for i, w := range want {
		if entries[i].Name != w.name || entries[i].PaperLoC != w.loc {
			t.Errorf("entry %d = %s/%d, want %s/%d",
				i, entries[i].Name, entries[i].PaperLoC, w.name, w.loc)
		}
	}
}

func TestEntriesAreComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.Name] {
			t.Errorf("duplicate subject %q", e.Name)
		}
		seen[e.Name] = true
		prog := e.New()
		if prog.Name() != e.Name {
			t.Errorf("entry %q constructs program named %q", e.Name, prog.Name())
		}
		if prog.Blocks() <= 0 {
			t.Errorf("%s: no instrumented blocks", e.Name)
		}
		if e.Inventory.Count() == 0 {
			t.Errorf("%s: empty token inventory", e.Name)
		}
		if e.Tokenize == nil {
			t.Errorf("%s: no tokenizer", e.Name)
		}
		// Every entry must be runnable through the common interface.
		rec := subject.Execute(prog, []byte("x"), trace.Full())
		_ = rec
	}
}

func TestGet(t *testing.T) {
	if _, ok := Get("cjson"); !ok {
		t.Error("Get(cjson) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) succeeded")
	}
	if len(Names()) != len(All()) {
		t.Error("Names() length mismatch")
	}
}
