package registry

import (
	"strings"
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

func TestPaperMatchesTable1(t *testing.T) {
	entries := Paper()
	want := []struct {
		name string
		loc  int
	}{
		{"ini", 293}, {"csv", 297}, {"cjson", 2483}, {"tinyc", 191}, {"mjs", 10920},
	}
	if len(entries) != len(want) {
		t.Fatalf("Paper() has %d entries, want %d", len(entries), len(want))
	}
	for i, w := range want {
		if entries[i].Name != w.name || entries[i].PaperLoC != w.loc {
			t.Errorf("entry %d = %s/%d, want %s/%d",
				i, entries[i].Name, entries[i].PaperLoC, w.name, w.loc)
		}
	}
}

func TestEntriesAreComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.Name] {
			t.Errorf("duplicate subject %q", e.Name)
		}
		seen[e.Name] = true
		prog := e.New()
		if prog.Name() != e.Name {
			t.Errorf("entry %q constructs program named %q", e.Name, prog.Name())
		}
		if prog.Blocks() <= 0 {
			t.Errorf("%s: no instrumented blocks", e.Name)
		}
		if e.Inventory.Count() == 0 {
			t.Errorf("%s: empty token inventory", e.Name)
		}
		if e.Tokenize == nil {
			t.Errorf("%s: no tokenizer", e.Name)
		}
		// Every entry must be runnable through the common interface.
		rec := subject.Execute(prog, []byte("x"), trace.Full())
		_ = rec
	}
}

// TestGrammarSubjectsRegistered pins the grammar-zoo group: the four
// extra subjects are registered, in order, after the paper and extra
// groups.
func TestGrammarSubjectsRegistered(t *testing.T) {
	names := Names()
	want := []string{"ini", "csv", "cjson", "tinyc", "mjs", "expr", "paren",
		"urlp", "sexpr", "httpreq", "dotg"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

// TestRegisterRejectsInvalidEntries: registration validates the
// lookup half of the subject contract instead of silently accepting
// a broken entry.
func TestRegisterRejectsInvalidEntries(t *testing.T) {
	valid := Extra()[0] // expr, a known-good entry
	// Validation runs before the duplicate check, so reusing the
	// valid entry's name still exercises each specific failure; the
	// name is only changed in the case that tests name agreement
	// itself.
	cases := []struct {
		name   string
		errHas string
		mutate func(e Entry) Entry
	}{
		{"empty name", "empty name", func(e Entry) Entry { e.Name = ""; return e }},
		{"nil constructor", "nil constructor", func(e Entry) Entry { e.New = nil; return e }},
		{"mismatched program name", "program named", func(e Entry) Entry { e.Name = "not-expr"; return e }},
		{"empty inventory", "inventory", func(e Entry) Entry { e.Inventory = nil; return e }},
		{"nil tokenizer", "tokenizer", func(e Entry) Entry { e.Tokenize = nil; return e }},
		{"nil lexer", "lexer", func(e Entry) Entry { e.Lexer = nil; return e }},
	}
	before := len(All())
	for _, c := range cases {
		e := c.mutate(valid)
		err := Register(e)
		if err == nil {
			t.Errorf("Register accepted entry with %s", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errHas) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.errHas)
		}
	}
	// The invalid attempts must not have leaked into the table.
	if got := len(All()); got != before {
		t.Errorf("rejected entries changed the table size: %d -> %d", before, got)
	}
}

// TestRegisterRejectsDuplicates: a second entry under an existing
// name is an error, not a silent overwrite.
func TestRegisterRejectsDuplicates(t *testing.T) {
	e := Extra()[0]
	if err := Register(e); err == nil {
		t.Fatalf("re-registering %q did not fail", e.Name)
	}
	// The original wiring must be intact.
	got, ok := Get(e.Name)
	if !ok || got.New().Name() != e.Name {
		t.Errorf("duplicate rejection disturbed the existing %q entry", e.Name)
	}
}

func TestValidateAcceptsAllBuiltins(t *testing.T) {
	for _, e := range All() {
		if err := Validate(e); err != nil {
			t.Errorf("built-in %s fails validation: %v", e.Name, err)
		}
	}
}

func TestGet(t *testing.T) {
	if _, ok := Get("cjson"); !ok {
		t.Error("Get(cjson) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) succeeded")
	}
	if len(Names()) != len(All()) {
		t.Error("Names() length mismatch")
	}
}
