package pcache

import (
	"math/rand"
	"testing"
)

// TestGetExtMatchesGet pins GetExt's contract: resumed from the miss
// Ref of a Get over p, a GetExt with tail answers bit-identically to a
// full Get over p+tail — same value, same verdict, and a miss Ref that
// admits the same exact entry — provided no prefix entry of length
// ≤ len(p) was admitted in between. The driver mimics the engine's
// candidate → extension probe sequence, including the candidate's own
// admissions between the two lookups.
func TestGetExtMatchesGet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := New[int](0)
	alphabet := []byte("abc")
	next := 0
	for iter := 0; iter < 5000; iter++ {
		p := make([]byte, rng.Intn(12))
		for i := range p {
			p[i] = alphabet[rng.Intn(len(alphabet))]
		}
		_, ref, ok := c.Get(p)
		if ok {
			continue // engine would consume the hit; no extension probe
		}
		// The candidate's own admission: an exact entry, or — mimicking
		// the maxDecidedPrefix path — a deciding prefix, in which case
		// the engine's hint short-circuit answers the extension and
		// GetExt is not consulted.
		admittedPrefix := false
		switch rng.Intn(3) {
		case 0:
			c.PutExactAt(ref, next)
			next++
		case 1:
			d := rng.Intn(len(p) + 1)
			admittedPrefix = c.PutPrefix(p[:d], next)
			next++
		}
		tail := []byte{alphabet[rng.Intn(len(alphabet))]}
		ext := append(append([]byte{}, p...), tail...)
		wantV, wantRef, wantOK := c.Get(ext)
		if admittedPrefix {
			continue
		}
		gotV, gotRef, gotOK := c.GetExt(ref, tail)
		if gotOK != wantOK || gotV != wantV || gotRef != wantRef {
			t.Fatalf("iter %d: GetExt(%q + %q) = (%v, %+v, %v), Get = (%v, %+v, %v)",
				iter, p, tail, gotV, gotRef, gotOK, wantV, wantRef, wantOK)
		}
		// The returned miss Ref must admit the extension's exact entry
		// exactly as Get's would.
		if !gotOK && rng.Intn(2) == 0 {
			c.PutExactAt(gotRef, next)
			next++
			if v, _, ok := c.Get(ext); !ok || v != next-1 {
				t.Fatalf("iter %d: exact entry admitted via GetExt ref not found (ok=%v v=%d)", iter, ok, v)
			}
		}
	}
}

// TestGetExtRetired pins the retired behaviour: like Get, a GetExt on
// a retired cache is an instant miss with the zero (inert) Ref.
func TestGetExtRetired(t *testing.T) {
	c := New[int](0)
	_, ref, _ := c.Get([]byte("abc"))
	c.Retire()
	if _, r, ok := c.GetExt(ref, []byte("d")); ok || r.Missed() {
		t.Fatalf("retired GetExt = (%+v, %v), want inert miss", r, ok)
	}
}
