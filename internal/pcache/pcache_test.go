package pcache

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// model is the reference implementation the cache must agree with:
// explicit byte-prefix semantics over plain maps, no hashing, no
// filters. Get returns the value of the shortest stored prefix of the
// input, else the exact entry; puts are first-write-wins and bounded
// by one shared entry limit.
type model struct {
	prefixes map[string]string
	exacts   map[string]string
	limit    int
}

func newModel(limit int) *model {
	return &model{prefixes: map[string]string{}, exacts: map[string]string{}, limit: limit}
}

func (m *model) size() int { return len(m.prefixes) + len(m.exacts) }

func (m *model) putPrefix(p, v string) bool {
	if m.size() >= m.limit {
		return false
	}
	if _, dup := m.prefixes[p]; dup {
		return false
	}
	m.prefixes[p] = v
	return true
}

func (m *model) putExact(k, v string) bool {
	if m.size() >= m.limit {
		return false
	}
	if _, dup := m.exacts[k]; dup {
		return false
	}
	m.exacts[k] = v
	return true
}

func (m *model) get(input string) (string, bool) {
	for l := 0; l <= len(input); l++ {
		if v, ok := m.prefixes[input[:l]]; ok {
			return v, true
		}
	}
	v, ok := m.exacts[input]
	return v, ok
}

// randKey draws a short string over a three-letter alphabet, so
// random keys collide, nest and extend each other constantly — the
// regime where prefix semantics can go wrong.
func randKey(rng *rand.Rand) string {
	n := rng.Intn(9)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('a' + rng.Intn(3)))
	}
	return sb.String()
}

// TestModelAgreement drives random interleavings of PutPrefix,
// PutExact and Get against the reference model: every put must admit
// or reject exactly like the model, every lookup must return the
// model's answer.
func TestModelAgreement(t *testing.T) {
	for _, limit := range []int{4, 64, 1 << 16} {
		t.Run(fmt.Sprintf("limit=%d", limit), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(limit)))
			c := New[string](limit)
			m := newModel(limit)
			for op := 0; op < 20000; op++ {
				k := randKey(rng)
				switch rng.Intn(4) {
				case 0:
					v := fmt.Sprintf("P%q#%d", k, op)
					got, want := c.PutPrefix([]byte(k), v), m.putPrefix(k, v)
					if got != want {
						t.Fatalf("op %d: PutPrefix(%q) = %v, model says %v", op, k, got, want)
					}
				case 1:
					v := fmt.Sprintf("E%q#%d", k, op)
					got, want := c.PutExact([]byte(k), v), m.putExact(k, v)
					if got != want {
						t.Fatalf("op %d: PutExact(%q) = %v, model says %v", op, k, got, want)
					}
				default:
					gotV, _, gotOK := c.Get([]byte(k))
					wantV, wantOK := m.get(k)
					if gotOK != wantOK || gotV != wantV {
						t.Fatalf("op %d: Get(%q) = (%q, %v), model says (%q, %v)",
							op, k, gotV, gotOK, wantV, wantOK)
					}
				}
			}
			if c.Len() != m.size() {
				t.Fatalf("Len() = %d, model holds %d", c.Len(), m.size())
			}
		})
	}
}

// TestShortestPrefixWins pins the nested-prefix contract directly.
func TestShortestPrefixWins(t *testing.T) {
	c := New[string](0)
	c.PutPrefix([]byte("abcd"), "long")
	c.PutPrefix([]byte("ab"), "short")
	c.PutExact([]byte("abcdef"), "exact")
	if v, _, ok := c.Get([]byte("abcdef")); !ok || v != "short" {
		t.Fatalf("Get = (%q, %v), want the shortest prefix entry", v, ok)
	}
	if v, _, ok := c.Get([]byte("a")); ok {
		t.Fatalf("Get(%q) = %q, want a miss (no stored prefix covers it)", "a", v)
	}
}

// TestExactDoesNotMatchExtensions: the exact tier must never answer
// for a proper extension or truncation of its input.
func TestExactDoesNotMatchExtensions(t *testing.T) {
	c := New[string](0)
	c.PutExact([]byte("abc"), "v")
	for _, probe := range []string{"ab", "abcd", "", "abca"} {
		if v, _, ok := c.Get([]byte(probe)); ok {
			t.Errorf("Get(%q) = %q, want miss", probe, v)
		}
	}
	if v, _, ok := c.Get([]byte("abc")); !ok || v != "v" {
		t.Errorf("Get(abc) = (%q, %v), want the exact entry", v, ok)
	}
}

// TestEmptyPrefixDecidesEverything: a deciding prefix of length zero
// answers every lookup, the degenerate reject-all parser.
func TestEmptyPrefixDecidesEverything(t *testing.T) {
	c := New[string](0)
	c.PutPrefix(nil, "all")
	for _, probe := range []string{"", "x", "abc"} {
		if v, _, ok := c.Get([]byte(probe)); !ok || v != "all" {
			t.Errorf("Get(%q) = (%q, %v), want the empty-prefix entry", probe, v, ok)
		}
	}
}

// TestRefRoundTrip: a missing Get's Ref admits the exact entry
// without re-hashing; a hit's Ref upgrades the entry in place; the
// zero Ref is inert.
func TestRefRoundTrip(t *testing.T) {
	c := New[string](0)
	_, ref, ok := c.Get([]byte("key"))
	if ok {
		t.Fatal("unexpected hit on empty cache")
	}
	if !c.PutExactAt(ref, "v1") {
		t.Fatal("PutExactAt on a missed Ref should store")
	}
	if c.PutExactAt(ref, "v2") {
		t.Fatal("PutExactAt is first-write-wins for a stale missed Ref")
	}
	v, ref2, ok := c.Get([]byte("key"))
	if !ok || v != "v1" {
		t.Fatalf("Get = (%q, %v), want the admitted entry", v, ok)
	}
	c.Set(ref2, "v3")
	if v, _, _ := c.Get([]byte("key")); v != "v3" {
		t.Fatalf("Set through a hit Ref did not overwrite: got %q", v)
	}
	c.Set(Ref{}, "nope") // must not panic or store anything
	if c.Len() != 1 {
		t.Fatalf("Len = %d after zero-Ref Set, want 1", c.Len())
	}
}

// TestRetire: a retired cache answers nothing, admits nothing, and
// reports empty.
func TestRetire(t *testing.T) {
	c := New[string](0)
	c.PutExact([]byte("k"), "v")
	c.PutPrefix([]byte("p"), "w")
	c.Retire()
	if !c.Retired() {
		t.Fatal("Retired() = false after Retire")
	}
	if _, _, ok := c.Get([]byte("k")); ok {
		t.Error("Get hit after Retire")
	}
	if c.PutExact([]byte("x"), "v") || c.PutPrefix([]byte("y"), "v") {
		t.Error("Put admitted an entry after Retire")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after Retire, want 0", c.Len())
	}
}

// TestConcurrentRetire retires the cache while readers are mid-Get:
// the read path must tolerate the storage vanishing between its
// retired-flag check and the lock (a nil-bloom panic lived exactly
// there), answering a clean miss instead.
func TestConcurrentRetire(t *testing.T) {
	for round := 0; round < 50; round++ {
		c := New[string](0)
		rng := rand.New(rand.NewSource(int64(round)))
		for i := 0; i < 200; i++ {
			k := randKey(rng)
			c.PutExact([]byte(k), "E:"+k)
			c.PutPrefix([]byte(k), "P:"+k)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < 500; i++ {
					c.Get([]byte(randKey(r)))
				}
			}(int64(round*10 + w))
		}
		c.Retire()
		wg.Wait()
		if _, _, ok := c.Get([]byte("a")); ok {
			t.Fatal("hit after Retire")
		}
	}
}

// TestConcurrentReaders hammers one cache from concurrent readers
// while a writer keeps inserting — the parallel engine's sharing
// pattern — under the invariant that any value returned for an input
// must be one that was actually stored for a prefix of it (values
// encode their own key). Run with -race this also proves the locking.
func TestConcurrentReaders(t *testing.T) {
	c := New[string](1 << 14)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 30000; i++ {
			k := randKey(rng)
			if rng.Intn(2) == 0 {
				c.PutPrefix([]byte(k), "P:"+k)
			} else {
				c.PutExact([]byte(k), "E:"+k)
			}
		}
		close(stop)
	}()

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := randKey(rng)
				v, _, ok := c.Get([]byte(k))
				if !ok {
					continue
				}
				switch {
				case strings.HasPrefix(v, "P:"):
					if !strings.HasPrefix(k, v[2:]) {
						t.Errorf("Get(%q) returned prefix entry %q that is not a prefix", k, v)
						return
					}
				case strings.HasPrefix(v, "E:"):
					if v[2:] != k {
						t.Errorf("Get(%q) returned exact entry %q for different bytes", k, v)
						return
					}
				default:
					t.Errorf("Get(%q) returned unknown value %q", k, v)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
}

// TestConcurrentModelAgreement is the model-based stress proof for the
// striped table: N mutator goroutines hammer PutPrefix/PutExact while
// readers Get concurrently, every goroutine recording which of its
// puts were admitted. First-write-wins serialises on the segment
// locks, so across all goroutines at most one put per (tier, key) can
// have returned true — the admitted set therefore defines a unique
// sequential model regardless of interleaving, and after quiescing
// the cache must agree with that model on every probe, with Len equal
// to the total number of admissions. Run with -race this is also the
// locking proof for the striped segments, the atomic length bitset
// and the CAS-published bloom filter.
func TestConcurrentModelAgreement(t *testing.T) {
	for _, limit := range []int{1 << 16, 97} {
		t.Run(fmt.Sprintf("limit=%d", limit), func(t *testing.T) {
			c := New[string](limit)
			type put struct {
				prefix bool
				k, v   string
			}
			const (
				mutators = 4
				readers  = 3
				opsPerM  = 8000
			)
			admitted := make([][]put, mutators)
			var mg, rg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < mutators; w++ {
				mg.Add(1)
				go func(w int) {
					defer mg.Done()
					rng := rand.New(rand.NewSource(int64(w + 1)))
					for i := 0; i < opsPerM; i++ {
						k := randKey(rng)
						v := fmt.Sprintf("%d#%d:%q", w, i, k)
						if rng.Intn(2) == 0 {
							if c.PutPrefix([]byte(k), "P"+v) {
								admitted[w] = append(admitted[w], put{true, k, "P" + v})
							}
						} else {
							if c.PutExact([]byte(k), "E"+v) {
								admitted[w] = append(admitted[w], put{false, k, "E" + v})
							}
						}
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				rg.Add(1)
				go func(r int) {
					defer rg.Done()
					rng := rand.New(rand.NewSource(int64(100 + r)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := randKey(rng)
						v, _, ok := c.Get([]byte(k))
						if !ok {
							continue
						}
						// Values encode their own key: any answer must
						// be a stored entry for a prefix of k (or k).
						body := v[strings.Index(v, ":")+2 : len(v)-1]
						switch v[0] {
						case 'P':
							if !strings.HasPrefix(k, body) {
								t.Errorf("Get(%q) = prefix entry %q: not a prefix", k, v)
								return
							}
						case 'E':
							if body != k {
								t.Errorf("Get(%q) = exact entry %q: wrong bytes", k, v)
								return
							}
						default:
							t.Errorf("Get(%q) = unknown value %q", k, v)
							return
						}
					}
				}(r)
			}
			mg.Wait()
			close(stop)
			rg.Wait()

			// Quiesced: rebuild the unique model from the admissions.
			m := newModel(1 << 30)
			total := 0
			for _, puts := range admitted {
				for _, p := range puts {
					total++
					var fresh bool
					if p.prefix {
						fresh = m.putPrefix(p.k, p.v)
					} else {
						fresh = m.putExact(p.k, p.v)
					}
					if !fresh {
						t.Fatalf("two admitted puts for the same slot (%v, %q)", p.prefix, p.k)
					}
				}
			}
			if total > limit {
				t.Fatalf("admitted %d entries, limit %d", total, limit)
			}
			if c.Len() != total {
				t.Fatalf("Len() = %d, admissions say %d", c.Len(), total)
			}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 20000; i++ {
				k := randKey(rng)
				gotV, _, gotOK := c.Get([]byte(k))
				wantV, wantOK := m.get(k)
				if gotOK != wantOK || gotV != wantV {
					t.Fatalf("Get(%q) = (%q, %v), model says (%q, %v)", k, gotV, gotOK, wantV, wantOK)
				}
			}
		})
	}
}
