// Package pcache is the prefix-decided execution cache behind
// core.Config.Cache: a memo table over subject executions that lets
// the campaign engines skip re-running inputs whose outcome is already
// known. It exploits the structure of parser-directed search — almost
// every candidate the engine executes shares a long, already-decided
// prefix with a previously executed input — through two tiers:
//
//   - *deciding prefixes*: when an execution was rejected on a prefix
//     alone (trace.Record.DecidedPrefix), any later input sharing that
//     prefix is rejected with the identical trace, so the memoised
//     outcome stands in for a real run;
//   - exact inputs for everything else (acceptances and EOF-decided
//     rejections), sound because subjects are deterministic:
//     re-executing the very same input — which the engines do on every
//     candidate re-pop — replays the same trace.
//
// Both tiers live in one table keyed by a 128-bit rolling hash of the
// bytes, with a bitset recording which prefix lengths hold entries. A
// lookup is a single arithmetic pass over the input that probes the
// table at each populated length and once more for the exact tier —
// no trie to chase and no stored key bytes to compare, which keeps the
// cache's memory footprint (and the cash-line traffic it steals from
// the engine's own hot loops) to ~40 bytes per entry. Keys are
// compared by hash only: with 128 independent bits the odds of any
// collision over a campaign's worth of entries are far below 1e-20,
// and the engine-level cache-transparency property
// (internal/conformance) would surface one as a fingerprint mismatch.
//
// The table is striped: entries spread over independently RW-locked
// segments selected by key hash, so the parallel engine's speculative
// workers and its scheduler probe and fill the shared cache without
// contending on one global lock. The routing structures in front of
// the segments — the prefix-length bitset and the negative bloom
// filter — are read lock-free with atomic word loads; writers publish
// bits with CAS (the filters are append-only, so a racing reader can
// at worst miss a just-added entry and fall back to a real execution,
// never return a wrong value).
//
// The cache is value-generic, safe for concurrent use, bounded, and
// deterministic: a full cache stops admitting entries instead of
// evicting, so a lookup's answer never depends on timing. Used from a
// single goroutine its observable behaviour — every admission bool,
// every lookup, Len, the retire point — is bit-identical to the
// pre-striping global-lock implementation.
//
// Contract for Get: a stored deciding prefix of the input wins over an
// exact entry, and among nested deciding prefixes the shortest wins.
// In the intended use these can never disagree — a deciding prefix and
// any executed extension of it carry identical facts by the subject
// contract — so the order only fixes which equivalent copy is
// returned.
package pcache

import (
	"sync"
	"sync/atomic"
)

// DefaultLimit is the entry bound used when New is given 0.
const DefaultLimit = 1 << 18

// key is the 128-bit identity of a stored byte string (plus tier tag).
type key [2]uint64

// Two independent 64-bit rolling hashes: FNV-1a and a
// multiply-shift-free variant with a splitmix-style odd multiplier.
// Both consume one byte per step, so prefix probes reuse the running
// state of a single left-to-right pass.
const (
	seed1  = 14695981039346656037
	prime1 = 1099511628211
	seed2  = 0x9e3779b97f4a7c15
	mult2  = 0xff51afd7ed558ccd
)

// exactTag separates the exact tier's keys from the prefix tier's, so
// an exact entry can never match a proper extension of its input.
const exactTag = 0x9ddfea08eb382d69

func step(h1, h2 uint64, b byte) (uint64, uint64) {
	return (h1 ^ uint64(b)) * prime1, (h2 + uint64(b) + 1) * mult2
}

// bloomWords sizes the negative filter in front of the table: 64 KiB
// (2^13 words, 2^19 bits), small enough to stay resident in L2 while
// the engine hammers it, large enough that even a full cache
// (DefaultLimit entries, two bits each) answers most absent probes
// with two loads of hot memory instead of a main-memory map probe.
// The filter is append-only like the cache itself, so false positives
// only cost a map probe — never a wrong answer.
const (
	bloomWords = 1 << 13
	bloomMask  = bloomWords*64 - 1
)

// stripeBits fixes the segment count at 16: enough that a scheduler
// plus a handful of speculative workers rarely collide on a segment
// lock, few enough that the per-segment maps stay dense. Segments are
// selected by the top hash bits, disjoint from the low bits the bloom
// filter consumes.
const (
	stripeBits  = 4
	stripeCount = 1 << stripeBits
)

// segment is one independently locked slice of the table. The live
// fields are padded to a 128-byte stride so two segments' locks never
// share a cache line.
type segment[V any] struct {
	mu sync.RWMutex
	m  map[key]V
	_  [96]byte
}

func segIdx(k key) int { return int(k[0] >> (64 - stripeBits)) }

// lenBits is the prefix-length bitset, read lock-free: the word slice
// hangs off an atomic pointer (it grows as longer prefixes appear) and
// individual words are loaded atomically. Writers serialise on mu and
// publish with atomic stores, so a racing reader sees either the bit
// or a benign false negative — never a torn word.
type lenBits struct {
	mu    sync.Mutex
	words atomic.Pointer[[]uint64]
}

func (b *lenBits) test(n int) bool {
	wp := b.words.Load()
	if wp == nil {
		return false
	}
	w := *wp
	i := n >> 6
	return i < len(w) && atomic.LoadUint64(&w[i])&(1<<(n&63)) != 0
}

func (b *lenBits) set(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	i := n >> 6
	var w []uint64
	if wp := b.words.Load(); wp != nil {
		w = *wp
	}
	if i >= len(w) {
		grown := make([]uint64, i+1)
		for j := range w {
			// Writers are serialised on mu, but lock-free testers load
			// these words concurrently — keep every cross-goroutine
			// access to the shared array on the same atomic ops.
			grown[j] = atomic.LoadUint64(&w[j])
		}
		grown[i] |= 1 << (n & 63)
		b.words.Store(&grown)
		return
	}
	atomic.StoreUint64(&w[i], atomic.LoadUint64(&w[i])|1<<(n&63))
}

// Cache is a bounded, concurrency-safe prefix/exact memo table.
type Cache[V any] struct {
	retired atomic.Bool  // Retire was called: all operations are no-ops
	size    atomic.Int64 // admitted entries across all segments
	limit   int64
	lens    lenBits
	bloom   []uint64 // negative filter over stored keys; atomic words
	segs    []segment[V]
}

// New returns an empty cache bounded to limit stored entries across
// both tiers (0 = DefaultLimit).
func New[V any](limit int) *Cache[V] {
	if limit <= 0 {
		limit = DefaultLimit
	}
	c := &Cache[V]{
		limit: int64(limit),
		bloom: make([]uint64, bloomWords),
		segs:  make([]segment[V], stripeCount),
	}
	for i := range c.segs {
		c.segs[i].m = make(map[key]V)
	}
	return c
}

// bloomBits derives the two filter bit positions of a key from
// independent halves of its 128 bits.
func bloomBits(k key) (uint64, uint64) {
	return k[0] & bloomMask, (k[0]>>32 ^ k[1]) & bloomMask
}

// mayContain reports whether k could be stored (false = definitely
// absent).
func (c *Cache[V]) mayContain(k key) bool {
	b1, b2 := bloomBits(k)
	return atomic.LoadUint64(&c.bloom[b1>>6])&(1<<(b1&63)) != 0 &&
		atomic.LoadUint64(&c.bloom[b2>>6])&(1<<(b2&63)) != 0
}

// orWord sets bit in *w with a CAS loop; concurrent setters under
// different segment locks make a plain RMW a race.
func orWord(w *uint64, bit uint64) {
	for {
		old := atomic.LoadUint64(w)
		if old&bit == bit {
			return
		}
		if atomic.CompareAndSwapUint64(w, old, old|bit) {
			return
		}
	}
}

func (c *Cache[V]) bloomAdd(k key) {
	b1, b2 := bloomBits(k)
	orWord(&c.bloom[b1>>6], 1<<(b1&63))
	orWord(&c.bloom[b2>>6], 1<<(b2&63))
}

// lookup probes k's segment under its read lock.
func (c *Cache[V]) lookup(k key) (V, bool) {
	seg := &c.segs[segIdx(k)]
	seg.mu.RLock()
	v, ok := seg.m[k] // reading a nil (retired) map is a clean miss
	seg.mu.RUnlock()
	return v, ok
}

// Ref identifies an entry slot returned by Get. After a hit it
// addresses the entry that answered, so a caller holding richer facts
// for the same bytes can upgrade it in place with Set; after a miss
// it addresses the input's (absent) exact slot, so PutExactAt can
// admit the fresh outcome without re-hashing the input — and it
// additionally carries the rolling-hash state at the input's end, so
// GetExt can probe an extension of the same input without repeating
// the pass over the shared prefix. The zero Ref is inert everywhere.
type Ref struct {
	k  key
	n  int  // input length the hash state covers (miss Refs only)
	ok bool // an entry exists at k
}

// Missed reports whether r is the resumable miss Ref of a completed
// lookup (as opposed to a hit Ref or the zero Ref of a retired cache).
func (r Ref) Missed() bool { return !r.ok && r.k != (key{}) }

// Get returns the memoised value for input: the value of the shortest
// stored deciding prefix of input, or failing that the input's exact
// entry. The rolling pass touches only the lock-free routing bits;
// a segment lock is taken per surviving probe, so concurrent lookups
// of unrelated inputs rarely share a lock.
func (c *Cache[V]) Get(input []byte) (V, Ref, bool) {
	if c.retired.Load() {
		var zero V
		return zero, Ref{}, false
	}
	h1, h2 := uint64(seed1), uint64(seed2)
	if c.lens.test(0) {
		if v, ok := c.lookup(key{h1, h2}); ok {
			return v, Ref{k: key{h1, h2}, ok: true}, true
		}
	}
	for i := 0; i < len(input); i++ {
		h1, h2 = step(h1, h2, input[i])
		if c.lens.test(i + 1) {
			if k := (key{h1, h2}); c.mayContain(k) {
				if v, ok := c.lookup(k); ok {
					return v, Ref{k: k, ok: true}, true
				}
			}
		}
	}
	k := key{h1, h2 ^ exactTag}
	if c.mayContain(k) {
		if v, ok := c.lookup(k); ok {
			return v, Ref{k: k, ok: true}, true
		}
	}
	var zero V
	return zero, Ref{k: k, n: len(input)}, false
}

// GetExt is Get for an extension of a previously missed input: r must
// be the miss Ref of a lookup over some byte string p, and tail the
// bytes appended to p. The rolling pass resumes from r's hash state,
// so only tail's bytes are hashed — for the engines' candidate →
// candidate+char probe sequence that is one step instead of a second
// full pass over the candidate.
//
// Soundness requires what Get's contract already promises plus one
// caller-side guarantee: no prefix entry of length ≤ len(p) may have
// been admitted since the lookup that produced r. Under that guarantee
// the skipped probes are all repeats of probes the original lookup
// already saw miss, so GetExt's answer — value, hit flag, and returned
// miss Ref — is bit-identical to Get(p+tail)'s. The campaign engines
// hold the guarantee structurally: all admissions happen on the
// trajectory goroutine, and the only admission between a candidate's
// lookup and its extension's is the candidate's own outcome, whose
// prefix form is handled separately (core's extension hint) and whose
// exact form lives in the tagged tier GetExt never probes for prefix
// lengths.
func (c *Cache[V]) GetExt(r Ref, tail []byte) (V, Ref, bool) {
	if c.retired.Load() || !r.Missed() {
		var zero V
		return zero, Ref{}, false
	}
	h1, h2 := r.k[0], r.k[1]^exactTag
	n := r.n
	for i := 0; i < len(tail); i++ {
		h1, h2 = step(h1, h2, tail[i])
		n++
		if c.lens.test(n) {
			if k := (key{h1, h2}); c.mayContain(k) {
				if v, ok := c.lookup(k); ok {
					return v, Ref{k: k, ok: true}, true
				}
			}
		}
	}
	k := key{h1, h2 ^ exactTag}
	if c.mayContain(k) {
		if v, ok := c.lookup(k); ok {
			return v, Ref{k: k, ok: true}, true
		}
	}
	var zero V
	return zero, Ref{k: k, n: n}, false
}

// Set overwrites the entry r addresses (a no-op for the zero Ref or a
// never-admitted entry). Concurrent Sets of the same entry are safe;
// in the intended use racing writers carry equivalent values, so
// either winning is fine.
func (c *Cache[V]) Set(r Ref, v V) {
	if !r.ok {
		return
	}
	seg := &c.segs[segIdx(r.k)]
	seg.mu.Lock()
	if _, exists := seg.m[r.k]; exists {
		seg.m[r.k] = v
	}
	seg.mu.Unlock()
}

// hash runs the rolling pass over all of b.
func hash(b []byte) (uint64, uint64) {
	h1, h2 := uint64(seed1), uint64(seed2)
	for _, c := range b {
		h1, h2 = step(h1, h2, c)
	}
	return h1, h2
}

// PutPrefix stores v as the outcome decided by prefix: any input
// starting with these bytes will Get v. It reports whether the entry
// was stored — false when the cache is full or the prefix already has
// a value (first write wins; in the intended use a second write could
// only carry the identical facts).
func (c *Cache[V]) PutPrefix(prefix []byte, v V) bool {
	h1, h2 := hash(prefix)
	return c.put(key{h1, h2}, len(prefix), v)
}

// PutExact stores v as the outcome of exactly input (no extension
// matches it). It reports whether the entry was stored — false when
// the cache is full or the input already has an exact entry.
func (c *Cache[V]) PutExact(input []byte, v V) bool {
	h1, h2 := hash(input)
	return c.put(key{h1, h2 ^ exactTag}, -1, v)
}

// PutExactAt is PutExact addressed by the Ref a missing Get returned,
// sparing the caller a second pass over the input's bytes — the
// normal way the engines admit a fresh outcome right after a missed
// lookup.
func (c *Cache[V]) PutExactAt(r Ref, v V) bool {
	if r.ok || r.k == (key{}) {
		return false // a present entry, or the zero Ref
	}
	return c.put(r.k, -1, v)
}

func (c *Cache[V]) put(k key, prefixLen int, v V) bool {
	seg := &c.segs[segIdx(k)]
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if seg.m == nil || c.size.Load() >= c.limit {
		return false
	}
	if _, dup := seg.m[k]; dup {
		return false
	}
	// Reserve a slot against the shared bound; under concurrent puts
	// the pre-check above can pass in several segments at once, so the
	// reservation is what actually enforces the limit.
	if c.size.Add(1) > c.limit {
		c.size.Add(-1)
		return false
	}
	seg.m[k] = v
	c.bloomAdd(k)
	if prefixLen >= 0 {
		c.lens.set(prefixLen)
	}
	return true
}

// Len returns the number of stored entries across both tiers.
func (c *Cache[V]) Len() int {
	if c.retired.Load() {
		return 0
	}
	return int(c.size.Load())
}

// Retire permanently idles the cache and releases the entry storage:
// every later Get misses in one atomic load and every Put is a no-op.
// The routing bits (length bitset, bloom filter) stay allocated — a
// fixed ~64 KiB — so lock-free readers racing with Retire never
// observe freed storage; only the per-segment maps, which carry the
// real footprint, are dropped under their locks. The campaign engines
// call Retire when the adaptive mode (core.CacheAuto) observes a hit
// rate too low to pay for the lookups — safe at any point, from any
// goroutine, because the cache is semantically transparent: losing it
// changes wall-clock, never results.
func (c *Cache[V]) Retire() {
	c.retired.Store(true)
	for i := range c.segs {
		seg := &c.segs[i]
		seg.mu.Lock()
		seg.m = nil
		seg.mu.Unlock()
	}
}

// Retired reports whether Retire was called.
func (c *Cache[V]) Retired() bool { return c.retired.Load() }
