// Package pcache is the prefix-decided execution cache behind
// core.Config.Cache: a memo table over subject executions that lets
// the campaign engines skip re-running inputs whose outcome is already
// known. It exploits the structure of parser-directed search — almost
// every candidate the engine executes shares a long, already-decided
// prefix with a previously executed input — through two tiers:
//
//   - *deciding prefixes*: when an execution was rejected on a prefix
//     alone (trace.Record.DecidedPrefix), any later input sharing that
//     prefix is rejected with the identical trace, so the memoised
//     outcome stands in for a real run;
//   - exact inputs for everything else (acceptances and EOF-decided
//     rejections), sound because subjects are deterministic:
//     re-executing the very same input — which the engines do on every
//     candidate re-pop — replays the same trace.
//
// Both tiers live in one flat table keyed by a 128-bit rolling hash of
// the bytes, with a bitset recording which prefix lengths hold
// entries. A lookup is a single arithmetic pass over the input that
// probes the table at each populated length and once more for the
// exact tier — no trie to chase and no stored key bytes to compare,
// which keeps the cache's memory footprint (and the cash-line traffic
// it steals from the engine's own hot loops) to ~40 bytes per entry.
// Keys are compared by hash only: with 128 independent bits the odds
// of any collision over a campaign's worth of entries are far below
// 1e-20, and the engine-level cache-transparency property
// (internal/conformance) would surface one as a fingerprint mismatch.
//
// The cache is value-generic, safe for concurrent use (the parallel
// engine's executors share one per campaign), bounded, and
// deterministic: a full cache stops admitting entries instead of
// evicting, so a lookup's answer never depends on timing.
//
// Contract for Get: a stored deciding prefix of the input wins over an
// exact entry, and among nested deciding prefixes the shortest wins.
// In the intended use these can never disagree — a deciding prefix and
// any executed extension of it carry identical facts by the subject
// contract — so the order only fixes which equivalent copy is
// returned.
package pcache

import (
	"sync"
	"sync/atomic"
)

// DefaultLimit is the entry bound used when New is given 0.
const DefaultLimit = 1 << 18

// key is the 128-bit identity of a stored byte string (plus tier tag).
type key [2]uint64

// Two independent 64-bit rolling hashes: FNV-1a and a
// multiply-shift-free variant with a splitmix-style odd multiplier.
// Both consume one byte per step, so prefix probes reuse the running
// state of a single left-to-right pass.
const (
	seed1  = 14695981039346656037
	prime1 = 1099511628211
	seed2  = 0x9e3779b97f4a7c15
	mult2  = 0xff51afd7ed558ccd
)

// exactTag separates the exact tier's keys from the prefix tier's, so
// an exact entry can never match a proper extension of its input.
const exactTag = 0x9ddfea08eb382d69

func step(h1, h2 uint64, b byte) (uint64, uint64) {
	return (h1 ^ uint64(b)) * prime1, (h2 + uint64(b) + 1) * mult2
}

// bloomWords sizes the negative filter in front of the table: 64 KiB
// (2^13 words, 2^19 bits), small enough to stay resident in L2 while
// the engine hammers it, large enough that even a full cache
// (DefaultLimit entries, two bits each) answers most absent probes
// with two loads of hot memory instead of a main-memory map probe.
// The filter is append-only like the cache itself, so false positives
// only cost a map probe — never a wrong answer.
const (
	bloomWords = 1 << 13
	bloomMask  = bloomWords*64 - 1
)

// Cache is a bounded, concurrency-safe prefix/exact memo table.
type Cache[V any] struct {
	retired atomic.Bool // Retire was called: all operations are no-ops
	mu      sync.RWMutex
	m       map[key]V
	lens    []uint64 // bitset: prefix lengths with at least one entry
	bloom   []uint64 // negative filter over stored keys
	limit   int
}

// New returns an empty cache bounded to limit stored entries across
// both tiers (0 = DefaultLimit).
func New[V any](limit int) *Cache[V] {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Cache[V]{m: make(map[key]V), bloom: make([]uint64, bloomWords), limit: limit}
}

// bloomBits derives the two filter bit positions of a key from
// independent halves of its 128 bits.
func bloomBits(k key) (uint64, uint64) {
	return k[0] & bloomMask, (k[0]>>32 ^ k[1]) & bloomMask
}

// mayContain reports whether k could be stored (false = definitely
// absent).
func (c *Cache[V]) mayContain(k key) bool {
	b1, b2 := bloomBits(k)
	return c.bloom[b1>>6]&(1<<(b1&63)) != 0 && c.bloom[b2>>6]&(1<<(b2&63)) != 0
}

func (c *Cache[V]) bloomAdd(k key) {
	b1, b2 := bloomBits(k)
	c.bloom[b1>>6] |= 1 << (b1 & 63)
	c.bloom[b2>>6] |= 1 << (b2 & 63)
}

func (c *Cache[V]) lenBit(n int) bool {
	w := n >> 6
	return w < len(c.lens) && c.lens[w]&(1<<(n&63)) != 0
}

func (c *Cache[V]) setLenBit(n int) {
	w := n >> 6
	for w >= len(c.lens) {
		c.lens = append(c.lens, 0)
	}
	c.lens[w] |= 1 << (n & 63)
}

// Ref identifies an entry slot returned by Get. After a hit it
// addresses the entry that answered, so a caller holding richer facts
// for the same bytes can upgrade it in place with Set; after a miss
// it addresses the input's (absent) exact slot, so PutExactAt can
// admit the fresh outcome without re-hashing the input. The zero Ref
// is inert in both.
type Ref struct {
	k  key
	ok bool // an entry exists at k
}

// Get returns the memoised value for input: the value of the shortest
// stored deciding prefix of input, or failing that the input's exact
// entry.
func (c *Cache[V]) Get(input []byte) (V, Ref, bool) {
	if c.retired.Load() {
		var zero V
		return zero, Ref{}, false
	}
	c.mu.RLock()
	if c.m == nil {
		// Retire won the race between the flag check above and the
		// lock: the storage (bloom included) is already gone.
		c.mu.RUnlock()
		var zero V
		return zero, Ref{}, false
	}
	h1, h2 := uint64(seed1), uint64(seed2)
	if c.lenBit(0) {
		if v, ok := c.m[key{h1, h2}]; ok {
			c.mu.RUnlock()
			return v, Ref{k: key{h1, h2}, ok: true}, true
		}
	}
	for i := 0; i < len(input); i++ {
		h1, h2 = step(h1, h2, input[i])
		if c.lenBit(i + 1) {
			if k := (key{h1, h2}); c.mayContain(k) {
				if v, ok := c.m[k]; ok {
					c.mu.RUnlock()
					return v, Ref{k: k, ok: true}, true
				}
			}
		}
	}
	k := key{h1, h2 ^ exactTag}
	if c.mayContain(k) {
		if v, ok := c.m[k]; ok {
			c.mu.RUnlock()
			return v, Ref{k: k, ok: true}, true
		}
	}
	c.mu.RUnlock()
	var zero V
	return zero, Ref{k: k}, false
}

// Set overwrites the entry r addresses (a no-op for the zero Ref or a
// never-admitted entry). Concurrent Sets of the same entry are safe;
// in the intended use racing writers carry equivalent values, so
// either winning is fine.
func (c *Cache[V]) Set(r Ref, v V) {
	if !r.ok {
		return
	}
	c.mu.Lock()
	if _, exists := c.m[r.k]; exists {
		c.m[r.k] = v
	}
	c.mu.Unlock()
}

// hash runs the rolling pass over all of b.
func hash(b []byte) (uint64, uint64) {
	h1, h2 := uint64(seed1), uint64(seed2)
	for _, c := range b {
		h1, h2 = step(h1, h2, c)
	}
	return h1, h2
}

// PutPrefix stores v as the outcome decided by prefix: any input
// starting with these bytes will Get v. It reports whether the entry
// was stored — false when the cache is full or the prefix already has
// a value (first write wins; in the intended use a second write could
// only carry the identical facts).
func (c *Cache[V]) PutPrefix(prefix []byte, v V) bool {
	h1, h2 := hash(prefix)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.put(key{h1, h2}, len(prefix), v)
}

// PutExact stores v as the outcome of exactly input (no extension
// matches it). It reports whether the entry was stored — false when
// the cache is full or the input already has an exact entry.
func (c *Cache[V]) PutExact(input []byte, v V) bool {
	h1, h2 := hash(input)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.put(key{h1, h2 ^ exactTag}, -1, v)
}

// PutExactAt is PutExact addressed by the Ref a missing Get returned,
// sparing the caller a second pass over the input's bytes — the
// normal way the engines admit a fresh outcome right after a missed
// lookup.
func (c *Cache[V]) PutExactAt(r Ref, v V) bool {
	if r.ok || r.k == (key{}) {
		return false // a present entry, or the zero Ref
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.put(r.k, -1, v)
}

func (c *Cache[V]) put(k key, prefixLen int, v V) bool {
	if c.m == nil || len(c.m) >= c.limit {
		return false
	}
	if _, dup := c.m[k]; dup {
		return false
	}
	c.m[k] = v
	c.bloomAdd(k)
	if prefixLen >= 0 {
		c.setLenBit(prefixLen)
	}
	return true
}

// Len returns the number of stored entries across both tiers.
func (c *Cache[V]) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Retire permanently idles the cache and releases its storage: every
// later Get misses in one atomic load and every Put is a no-op. The
// campaign engines call it when the adaptive mode (core.CacheAuto)
// observes a hit rate too low to pay for the lookups — safe at any
// point, from any goroutine, because the cache is semantically
// transparent: losing it changes wall-clock, never results.
func (c *Cache[V]) Retire() {
	c.retired.Store(true)
	c.mu.Lock()
	c.m = nil
	c.lens = nil
	c.bloom = nil
	c.mu.Unlock()
}

// Retired reports whether Retire was called.
func (c *Cache[V]) Retired() bool { return c.retired.Load() }
