package pcache

import (
	"math/rand"
	"testing"
)

// Probe-path allocation benchmarks: Get's rolling pass is on the
// trajectory's critical path twice per loop iteration (candidate and
// extension), so it must stay allocation-free in the steady state.

func benchInputs(n, maxLen int) [][]byte {
	rng := rand.New(rand.NewSource(1))
	in := make([][]byte, n)
	for i := range in {
		b := make([]byte, 1+rng.Intn(maxLen))
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		in[i] = b
	}
	return in
}

func BenchmarkProbeMiss(b *testing.B) {
	c := New[int](0)
	inputs := benchInputs(512, 48)
	for i, in := range inputs[:256] {
		n := 1 + i%8
		if n > len(in) {
			n = len(in)
		}
		c.PutPrefix(in[:n], i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(inputs[256+i%256])
	}
}

func BenchmarkProbeHit(b *testing.B) {
	c := New[int](0)
	inputs := benchInputs(256, 48)
	for i, in := range inputs {
		c.PutExact(in, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(inputs[i%256])
	}
}
