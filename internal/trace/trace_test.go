package trace

import (
	"testing"
	"testing/quick"

	"pfuzzer/internal/taint"
)

func TestAtRecordsEOF(t *testing.T) {
	tr := New([]byte("ab"), Full())
	if _, ok := tr.At(0); !ok {
		t.Fatal("At(0) failed on 2-byte input")
	}
	if _, ok := tr.At(2); ok {
		t.Fatal("At(2) succeeded past the end")
	}
	rec := tr.Finish(1)
	if len(rec.EOFs) != 1 || rec.EOFs[0].Index != 2 {
		t.Errorf("EOFs = %+v, want one at index 2", rec.EOFs)
	}
	if !rec.EOFAtEnd() {
		t.Error("EOFAtEnd = false, want true")
	}
}

func TestCharEqRecordsTaintedOnly(t *testing.T) {
	tr := New([]byte("x"), Full())
	c, _ := tr.At(0)
	if tr.CharEq(c, 'x') != true || tr.CharEq(c, 'y') != false {
		t.Fatal("CharEq outcome wrong")
	}
	tr.CharEq(taint.Untainted('x'), 'x') // must not record
	rec := tr.Finish(0)
	if len(rec.Comparisons) != 2 {
		t.Fatalf("recorded %d comparisons, want 2", len(rec.Comparisons))
	}
	if !rec.Comparisons[0].Matched || rec.Comparisons[1].Matched {
		t.Error("Matched flags wrong")
	}
}

func TestCharRangeCandidates(t *testing.T) {
	tr := New([]byte("z"), Full())
	c, _ := tr.At(0)
	tr.CharRange(c, '0', '3')
	rec := tr.Finish(1)
	cands := rec.Comparisons[0].Candidates()
	if len(cands) != 4 {
		t.Fatalf("range candidates = %d, want 4", len(cands))
	}
	if string(cands[0]) != "0" || string(cands[3]) != "3" {
		t.Errorf("candidates = %q", cands)
	}
}

func TestStrEqSpans(t *testing.T) {
	tr := New([]byte("whXle"), Full())
	var w taint.String
	for i := 0; i < 5; i++ {
		c, _ := tr.At(i)
		w = w.Append(c)
	}
	if tr.StrEq(w, "while") {
		t.Fatal("StrEq matched a mismatching word")
	}
	rec := tr.Finish(1)
	cmp := rec.Comparisons[0]
	if cmp.Index != 0 || cmp.Last != 4 {
		t.Errorf("span = [%d,%d], want [0,4]", cmp.Index, cmp.Last)
	}
	if string(cmp.Expected) != "while" {
		t.Errorf("expected = %q", cmp.Expected)
	}
	if got := rec.LastComparedIndex(); got != 4 {
		t.Errorf("LastComparedIndex = %d, want 4", got)
	}
}

func TestStrEqUntaintedNotRecorded(t *testing.T) {
	tr := New(nil, Full())
	if !tr.StrEq(taint.FromBytes([]byte("if")), "if") {
		t.Fatal("StrEq should match")
	}
	rec := tr.Finish(0)
	if len(rec.Comparisons) != 0 {
		t.Error("untainted StrEq was recorded")
	}
}

func TestBlocksAndPathHash(t *testing.T) {
	run := func(ids []uint32) uint64 {
		tr := New(nil, Full())
		for _, id := range ids {
			tr.Block(id)
		}
		return tr.Finish(0).PathHash
	}
	if run([]uint32{1, 2, 3}) != run([]uint32{1, 2, 3, 2, 1}) {
		t.Error("duplicate block hits changed the path hash")
	}
	if run([]uint32{1, 2, 3}) == run([]uint32{3, 2, 1}) {
		t.Error("different first-hit orders produced the same path hash")
	}
}

func TestBlocksBeforeSeq(t *testing.T) {
	tr := New([]byte("ab"), Full())
	tr.Block(1)
	c, _ := tr.At(0)
	tr.CharEq(c, 'a')
	tr.Block(2)
	c2, _ := tr.At(1)
	tr.CharEq(c2, 'x')
	tr.Block(3)
	rec := tr.Finish(1)

	seq := rec.FirstComparisonSeqAt(1)
	if seq < 0 {
		t.Fatal("no comparison at index 1")
	}
	blks := rec.BlocksBeforeSeq(seq)
	if !blks[1] || !blks[2] || blks[3] {
		t.Errorf("BlocksBeforeSeq = %v, want {1,2}", blks)
	}
}

func TestEdgesDiffer(t *testing.T) {
	run := func(ids []uint32) []byte {
		tr := New(nil, Options{Edges: true})
		for _, id := range ids {
			tr.Block(id)
		}
		return tr.Finish(0).Edges
	}
	a := run([]uint32{1, 2})
	b := run([]uint32{2, 1})
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different block orders produced identical edge maps")
	}
}

func TestStackDepth(t *testing.T) {
	tr := New([]byte("a"), Full())
	tr.Enter()
	tr.Enter()
	c, _ := tr.At(0)
	tr.CharEq(c, 'b')
	tr.Leave()
	c2, _ := tr.At(0)
	tr.CharEq(c2, 'c')
	tr.Leave()
	rec := tr.Finish(1)
	if rec.Comparisons[0].Stack != 2 || rec.Comparisons[1].Stack != 1 {
		t.Errorf("stacks = %d,%d want 2,1", rec.Comparisons[0].Stack, rec.Comparisons[1].Stack)
	}
	if got := rec.AvgStackLastTwo(); got != 1.5 {
		t.Errorf("AvgStackLastTwo = %v, want 1.5", got)
	}
	if rec.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d, want 2", rec.MaxDepth)
	}
}

func TestMaxComparisonsBound(t *testing.T) {
	tr := New([]byte("abc"), Options{Comparisons: true, MaxComparisons: 2})
	for i := 0; i < 3; i++ {
		c, _ := tr.At(i)
		tr.CharEq(c, 'z')
	}
	rec := tr.Finish(1)
	if len(rec.Comparisons) != 2 {
		t.Errorf("recorded %d comparisons, want 2 (bounded)", len(rec.Comparisons))
	}
}

// Property: CharSet agrees with a naive membership check and records
// the set as candidates.
func TestCharSetAgreesWithNaive(t *testing.T) {
	f := func(b byte, set string) bool {
		tr := New([]byte{b}, Full())
		c, _ := tr.At(0)
		got := tr.CharSet(c, set)
		want := false
		for i := 0; i < len(set); i++ {
			if set[i] == b {
				want = true
			}
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparison sequence numbers strictly increase.
func TestSeqMonotonic(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		tr := New(data, Full())
		for i := range data {
			c, _ := tr.At(i)
			tr.CharEq(c, 'q')
			tr.Block(uint32(i))
		}
		rec := tr.Finish(0)
		last := -1
		for _, c := range rec.Comparisons {
			if c.Seq <= last {
				return false
			}
			last = c.Seq
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
