package trace

import (
	"testing"

	"pfuzzer/internal/taint"
)

// runDemo drives a fixed little parser against t: two block hits, a
// char comparison, a set comparison, and an EOF probe.
func runDemo(t *Tracer) {
	t.Enter()
	t.Block(1)
	if c, ok := t.At(0); ok {
		t.CharEq(c, 'a')
		t.CharSet(c, "xyz")
	}
	t.Block(2)
	t.At(99) // EOF access
	t.Leave()
}

// TestSinkMatchesFreshTracer checks that a sink-backed execution
// records exactly what a freshly allocated tracer records.
func TestSinkMatchesFreshTracer(t *testing.T) {
	input := []byte("abc")
	fresh := New(input, Full())
	runDemo(fresh)
	want := fresh.Finish(0)

	var sink Sink
	st := sink.New(input, Full())
	runDemo(st)
	got := st.Finish(0)

	if got.PathHash != want.PathHash {
		t.Errorf("path hash %#x, want %#x", got.PathHash, want.PathHash)
	}
	if len(got.Comparisons) != len(want.Comparisons) {
		t.Fatalf("%d comparisons, want %d", len(got.Comparisons), len(want.Comparisons))
	}
	for i := range got.Comparisons {
		g, w := got.Comparisons[i], want.Comparisons[i]
		if g.Kind != w.Kind || g.Index != w.Index || g.Matched != w.Matched || g.Seq != w.Seq {
			t.Errorf("comparison %d = %+v, want %+v", i, g, w)
		}
	}
	if len(got.EOFs) != len(want.EOFs) || len(got.Blocks) != len(want.Blocks) {
		t.Errorf("eofs/blocks = %d/%d, want %d/%d",
			len(got.EOFs), len(got.Blocks), len(want.EOFs), len(want.Blocks))
	}
	if len(got.BlockFirst) != len(want.BlockFirst) {
		t.Errorf("%d first-hit blocks, want %d", len(got.BlockFirst), len(want.BlockFirst))
	}
}

// TestSinkReuseResetsState checks that a reused sink starts each
// execution from a clean slate: no events, blocks, or path state may
// leak from the previous run.
func TestSinkReuseResetsState(t *testing.T) {
	var sink Sink

	first := sink.New([]byte("abc"), Full())
	runDemo(first)
	recA := first.Finish(1)
	hashA := recA.PathHash
	if len(recA.Comparisons) == 0 || len(recA.BlockFirst) != 2 {
		t.Fatalf("unexpected first record: %d comps, %d blocks",
			len(recA.Comparisons), len(recA.BlockFirst))
	}

	// Second run on a different input: nothing from run A may remain.
	second := sink.New([]byte("x"), Full())
	second.Block(7)
	recB := second.Finish(0)
	if len(recB.Comparisons) != 0 || len(recB.EOFs) != 0 {
		t.Errorf("leaked events: %d comps, %d eofs", len(recB.Comparisons), len(recB.EOFs))
	}
	if len(recB.BlockFirst) != 1 || recB.BlockFirst[7] == 0 && len(recB.Blocks) != 1 {
		t.Errorf("block state leaked: %v", recB.BlockFirst)
	}
	if recB.PathHash == hashA {
		t.Errorf("path hash not reset across reuse")
	}

	// Third run identical to the first must reproduce it exactly.
	third := sink.New([]byte("abc"), Full())
	runDemo(third)
	recC := third.Finish(1)
	if recC.PathHash != hashA || len(recC.Comparisons) != len(recA.Comparisons) {
		t.Errorf("reused sink diverges from original run: hash %#x vs %#x, %d vs %d comps",
			recC.PathHash, hashA, len(recC.Comparisons), len(recA.Comparisons))
	}
}

// TestSinkEdgesReset checks the AFL edge bitmap is zeroed on reuse.
func TestSinkEdgesReset(t *testing.T) {
	var sink Sink
	opts := Options{Edges: true}

	a := sink.New(nil, opts)
	a.Block(1)
	a.Block(2)
	recA := a.Finish(0)
	hits := 0
	for _, v := range recA.Edges {
		if v > 0 {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no edges recorded")
	}

	b := sink.New(nil, opts)
	recB := b.Finish(0)
	for i, v := range recB.Edges {
		if v != 0 {
			t.Fatalf("edge %d not reset: %d", i, v)
		}
	}
}

// TestSinkTaintedOrigins sanity-checks that sink-backed tracers still
// taint input characters (guards against regressions in Sink.New's
// field wiring).
func TestSinkTaintedOrigins(t *testing.T) {
	var sink Sink
	tr := sink.New([]byte("q"), Full())
	c, ok := tr.At(0)
	if !ok || c.Origin != 0 || c.B != 'q' {
		t.Fatalf("At(0) = %+v, %v", c, ok)
	}
	if c.Origin == taint.NoOrigin {
		t.Fatal("input char lost its taint")
	}
}
