// Package trace is the instrumentation runtime that parsers under test
// are written against. It is the Go equivalent of pFuzzer's LLVM
// instrumentation (paper §4): it records
//
//  1. every comparison of tainted input data against expected values
//     (character equality, character ranges, character sets, and
//     wrapped strcmp-style string comparisons),
//  2. every attempted access past the end of the input (interpreted as
//     the program encountering EOF before processing is complete),
//  3. the sequence of basic blocks executed (branch coverage), and
//  4. the call-stack depth at each comparison.
//
// A Tracer is created per execution. Subjects read input through At
// and report control flow through Block/Enter/Leave; all comparison
// helpers both perform the comparison and record it.
package trace

import "pfuzzer/internal/taint"

// CmpKind classifies a recorded comparison.
type CmpKind uint8

const (
	// CmpCharEq is a single-character equality test, c == 'x'.
	CmpCharEq CmpKind = iota
	// CmpCharRange is a range test, lo <= c && c <= hi.
	CmpCharRange
	// CmpCharSet is a set-membership test, strchr(set, c) != NULL.
	CmpCharSet
	// CmpStrEq is a wrapped string comparison, strcmp(s, "while") == 0.
	CmpStrEq
)

// String returns a short human-readable name for the kind.
func (k CmpKind) String() string {
	switch k {
	case CmpCharEq:
		return "char=="
	case CmpCharRange:
		return "range"
	case CmpCharSet:
		return "set"
	case CmpStrEq:
		return "strcmp"
	}
	return "unknown"
}

// Comparison is one recorded comparison of tainted data against an
// expected value. Index is the input offset of the first compared
// character and Last the offset of the last one (they differ only for
// string comparisons). Expected holds the literal for CmpCharEq and
// CmpStrEq, the two bounds for CmpCharRange, and the member bytes for
// CmpCharSet.
type Comparison struct {
	Kind     CmpKind
	Index    int
	Last     int
	Actual   []byte
	Expected []byte
	Matched  bool
	Stack    int
	Seq      int
}

// Candidates returns the concrete replacement strings that would
// satisfy the comparison, for use as substitutions at Index. Character
// ranges and sets expand to one candidate per member byte.
func (c *Comparison) Candidates() [][]byte {
	switch c.Kind {
	case CmpCharEq, CmpStrEq:
		return [][]byte{c.Expected}
	case CmpCharRange:
		if len(c.Expected) != 2 || c.Expected[0] > c.Expected[1] {
			return nil
		}
		lo, hi := c.Expected[0], c.Expected[1]
		out := make([][]byte, 0, int(hi)-int(lo)+1)
		for b := int(lo); b <= int(hi); b++ {
			out = append(out, []byte{byte(b)})
		}
		return out
	case CmpCharSet:
		out := make([][]byte, 0, len(c.Expected))
		for _, b := range c.Expected {
			out = append(out, []byte{b})
		}
		return out
	}
	return nil
}

// EOFAccess records an attempted read at input offset Index, where
// Index is at or past the end of the input: the parser expected more
// characters.
type EOFAccess struct {
	Index int
	Stack int
	Seq   int
}

// BlockHit is one execution of an instrumented basic block.
type BlockHit struct {
	ID  uint32
	Seq int
}

// EdgeMapSize is the size of the AFL-style edge-coverage bitmap.
const EdgeMapSize = 1 << 16

// Options configures what a Tracer records. Recording comparisons and
// block sequences costs memory per event; the AFL baseline, which only
// consumes the edge bitmap, turns them off.
type Options struct {
	// Comparisons enables recording of comparison and EOF events.
	Comparisons bool
	// Blocks enables recording of the ordered block-hit sequence.
	Blocks bool
	// Edges enables the AFL-style bucketed edge bitmap.
	Edges bool
	// MaxComparisons bounds the number of recorded comparisons
	// (0 means no bound); excess comparisons still execute, they are
	// just not recorded.
	MaxComparisons int
	// ExecSteps bounds the number of interpreter steps subjects may
	// take after parsing (0 means the subject's default).
	ExecSteps int
}

// Tracer collects the instrumentation events of one execution of a
// subject on one input.
type Tracer struct {
	input []byte
	opts  Options
	sink  *Sink

	comps  []Comparison
	eofs   []EOFAccess
	blocks []BlockHit
	bytes  []byte // arena backing the comparisons' Actual/Expected

	blockSet  map[uint32]int // block ID -> seq of first hit
	pathHash  uint64
	edges     []byte
	prevBlock uint32

	depth    int
	maxDepth int
	seq      int

	// Deciding-prefix bookkeeping (Record.Decided). maxAccess is the
	// largest in-bounds offset the subject read through At; eofSeen
	// marks any out-of-bounds access (tracked independently of the
	// Comparisons option, which gates only the EOFs event list);
	// lenUsed marks consultation of Len or Input, after which the
	// run's behaviour may depend on the input's total length;
	// undecided force-disqualifies the run from prefix-decidedness
	// (MarkUndecided), for executions whose real behaviour could not
	// be observed.
	maxAccess int
	eofSeen   bool
	lenUsed   bool
	undecided bool
}

// New returns a Tracer for one execution on input, recording according
// to opts. It delegates to a single-use Sink so there is exactly one
// initialization path for both fresh and sink-backed tracers; the
// throwaway sink is never reused, so the resulting Record stays valid
// indefinitely.
func New(input []byte, opts Options) *Tracer {
	return new(Sink).New(input, opts)
}

// Sink is a reusable event buffer for executing many subjects in a
// row without re-allocating the per-execution slices and maps. Each
// executor of the concurrent campaign engine owns one Sink, making
// trace collection per-worker with zero shared state.
//
// A Sink must not be used by two Tracers at the same time: the Record
// produced by Finish aliases the sink's buffers — including every
// Comparison's Actual/Expected bytes, which live in the sink's arena,
// and the *Record itself, which is stored in the sink — and is valid
// only until the sink's next New call. Callers that need run facts
// beyond that point must copy them out first (the engine's factsOf
// deep-copies the comparison bytes it keeps).
type Sink struct {
	tracer   Tracer
	rec      Record
	comps    []Comparison
	eofs     []EOFAccess
	blocks   []BlockHit
	bytes    []byte
	blockSet map[uint32]int
	edges    []byte
}

// New returns a Tracer recording into s's reusable buffers.
func (s *Sink) New(input []byte, opts Options) *Tracer {
	t := &s.tracer
	*t = Tracer{
		input:     input,
		opts:      opts,
		sink:      s,
		comps:     s.comps[:0],
		eofs:      s.eofs[:0],
		blocks:    s.blocks[:0],
		bytes:     s.bytes[:0],
		pathHash:  fnvOffset,
		maxAccess: -1,
	}
	if opts.Blocks || opts.Comparisons {
		if s.blockSet == nil {
			s.blockSet = make(map[uint32]int)
		} else {
			clear(s.blockSet)
		}
		t.blockSet = s.blockSet
	}
	if opts.Edges {
		if s.edges == nil {
			s.edges = make([]byte, EdgeMapSize)
		} else {
			clear(s.edges)
		}
		t.edges = s.edges
	}
	return t
}

// Full returns recording options suitable for pFuzzer: everything on.
func Full() Options { return Options{Comparisons: true, Blocks: true, Edges: false} }

// Input returns the raw input under execution. Like Len it marks the
// run length-dependent for the deciding-prefix analysis: the caller
// saw the whole input at once.
func (t *Tracer) Input() []byte { t.lenUsed = true; return t.input }

// Len returns the input length, marking the run length-dependent for
// the deciding-prefix analysis (Record.Decided): a parser that has
// consulted the total length may behave differently on an extended
// input even when the extension's bytes are never read.
func (t *Tracer) Len() int { t.lenUsed = true; return len(t.input) }

// RawInput returns the input under execution without marking the run
// length-dependent for the deciding-prefix analysis. It is reserved
// for execution harnesses — the out-of-process shim (internal/shim)
// reads the input here to forward it to the real parser, whose own
// reads decide length-dependence. A subject must never use it: hiding
// a length consultation from the analysis would make prefix-decided
// cache replays unsound.
func (t *Tracer) RawInput() []byte { return t.input }

// MarkUndecided forces the run to be treated as not prefix-decided,
// whatever else was recorded. Execution harnesses call it when the
// subject's real behaviour could not be observed — a child process
// crashed, hung past its deadline, or spoke garbage — so the
// substitute verdict they return can never be memoised as a deciding
// prefix (an empty crash trace would otherwise read as "rejected
// after zero bytes", poisoning the cache for every input).
func (t *Tracer) MarkUndecided() { t.undecided = true }

// At reads the input character at offset i. If i is past the end of
// the input it records an EOF access and returns ok == false; this is
// how the fuzzer learns that the parser expected more input.
func (t *Tracer) At(i int) (taint.Char, bool) {
	if i >= len(t.input) || i < 0 {
		t.eofSeen = true
		if t.opts.Comparisons {
			t.seq++
			t.eofs = append(t.eofs, EOFAccess{Index: i, Stack: t.depth, Seq: t.seq})
		}
		return taint.Char{B: 0, Origin: taint.NoOrigin}, false
	}
	if i > t.maxAccess {
		t.maxAccess = i
	}
	return taint.Char{B: t.input[i], Origin: i}, true
}

// The arena helpers append comparison payload bytes to the tracer's
// reusable byte buffer and return a capacity-capped view. A later
// append may grow (reallocate) the buffer, but previously returned
// views keep pointing into the old backing array, so they stay valid;
// only the *next* execution's New call recycles the memory. Before the
// arena, every recorded comparison allocated its Actual and Expected
// slices individually — the dominant per-exec allocation source on
// comparison-dense subjects.

func (t *Tracer) arena1(b byte) []byte {
	t.bytes = append(t.bytes, b)
	return t.bytes[len(t.bytes)-1 : len(t.bytes) : len(t.bytes)]
}

func (t *Tracer) arena2(a, b byte) []byte {
	t.bytes = append(t.bytes, a, b)
	return t.bytes[len(t.bytes)-2 : len(t.bytes) : len(t.bytes)]
}

func (t *Tracer) arenaStr(s string) []byte {
	n := len(t.bytes)
	t.bytes = append(t.bytes, s...)
	return t.bytes[n : n+len(s) : n+len(s)]
}

// record appends a comparison if recording is enabled and within bounds.
func (t *Tracer) record(c Comparison) {
	if !t.opts.Comparisons {
		return
	}
	if t.opts.MaxComparisons > 0 && len(t.comps) >= t.opts.MaxComparisons {
		return
	}
	t.seq++
	c.Seq = t.seq
	c.Stack = t.depth
	t.comps = append(t.comps, c)
}

// CharEq compares c against want, recording the comparison when c is
// tainted. It returns the comparison outcome.
func (t *Tracer) CharEq(c taint.Char, want byte) bool {
	ok := c.B == want
	if c.Tainted() {
		t.record(Comparison{
			Kind:     CmpCharEq,
			Index:    c.Origin,
			Last:     c.Origin,
			Actual:   t.arena1(c.B),
			Expected: t.arena1(want),
			Matched:  ok,
		})
	}
	return ok
}

// CharRange compares lo <= c <= hi, recording the comparison when c is
// tainted.
func (t *Tracer) CharRange(c taint.Char, lo, hi byte) bool {
	ok := c.B >= lo && c.B <= hi
	if c.Tainted() {
		t.record(Comparison{
			Kind:     CmpCharRange,
			Index:    c.Origin,
			Last:     c.Origin,
			Actual:   t.arena1(c.B),
			Expected: t.arena2(lo, hi),
			Matched:  ok,
		})
	}
	return ok
}

// CharSet tests c for membership in set, recording the comparison when
// c is tainted.
func (t *Tracer) CharSet(c taint.Char, set string) bool {
	ok := false
	for i := 0; i < len(set); i++ {
		if set[i] == c.B {
			ok = true
			break
		}
	}
	if c.Tainted() {
		t.record(Comparison{
			Kind:     CmpCharSet,
			Index:    c.Origin,
			Last:     c.Origin,
			Actual:   t.arena1(c.B),
			Expected: t.arenaStr(set),
			Matched:  ok,
		})
	}
	return ok
}

// StrEq is the wrapped strcmp: it compares the accumulated (tainted)
// string s against the literal want and records a single comparison
// spanning all of s's origins. Substituting the whole literal at the
// span start is what lets the fuzzer synthesize keywords (paper §6.2,
// AFL-CTP discussion).
func (t *Tracer) StrEq(s taint.String, want string) bool {
	// Compare in place rather than via s.Text(), which would allocate a
	// byte slice and a string per call on the subject's hot path.
	ok := len(s) == len(want)
	if ok {
		for i := range s {
			if s[i].B != want[i] {
				ok = false
				break
			}
		}
	}
	if first := s.FirstOrigin(); first != taint.NoOrigin {
		last := s.LastOrigin()
		n := len(t.bytes)
		for i := range s {
			t.bytes = append(t.bytes, s[i].B)
		}
		t.record(Comparison{
			Kind:     CmpStrEq,
			Index:    first,
			Last:     last,
			Actual:   t.bytes[n : n+len(s) : n+len(s)],
			Expected: t.arenaStr(want),
			Matched:  ok,
		})
	}
	return ok
}

// fnv-1a constants for the 64-bit path hash.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Block records the execution of basic block id. Duplicate hits of the
// same block do not extend the path hash, implementing the paper's
// "non-duplicate branches" path identity (§3.2).
func (t *Tracer) Block(id uint32) {
	t.seq++
	if t.blockSet != nil {
		if _, seen := t.blockSet[id]; !seen {
			t.blockSet[id] = t.seq
			h := t.pathHash
			h ^= uint64(id)
			h *= fnvPrime
			t.pathHash = h
		}
	}
	if t.opts.Blocks {
		t.blocks = append(t.blocks, BlockHit{ID: id, Seq: t.seq})
	}
	if t.edges != nil {
		cur := mix32(id)
		e := (t.prevBlock >> 1) ^ cur
		i := e & (EdgeMapSize - 1)
		if t.edges[i] < 255 {
			t.edges[i]++
		}
		t.prevBlock = cur
	}
}

// mix32 spreads small block IDs over the edge map, mimicking AFL's
// random per-block location values.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// Enter records entry into a parser function (the stack grows).
func (t *Tracer) Enter() {
	t.depth++
	if t.depth > t.maxDepth {
		t.maxDepth = t.depth
	}
}

// Leave records return from a parser function.
func (t *Tracer) Leave() { t.depth-- }

// Depth returns the current instrumented call-stack depth.
func (t *Tracer) Depth() int { return t.depth }

// ExecSteps returns the configured interpreter step budget, or def if
// unset.
func (t *Tracer) ExecSteps(def int) int {
	if t.opts.ExecSteps > 0 {
		return t.opts.ExecSteps
	}
	return def
}

// Record is the outcome of one traced execution.
type Record struct {
	Input       []byte
	Exit        int
	Comparisons []Comparison
	EOFs        []EOFAccess
	Blocks      []BlockHit
	BlockFirst  map[uint32]int
	PathHash    uint64
	Edges       []byte
	MaxDepth    int

	// Decided is the length of the input prefix that fully decided
	// this execution's outcome, or -1 when the run was not
	// prefix-decided (see DecidedPrefix). It is what the execution
	// cache (internal/pcache) keys memoised rejections on.
	Decided int

	// MaxAccess and LenUsed expose the deciding-prefix inputs the
	// Decided verdict was computed from: the largest in-bounds offset
	// read through At (-1 if none) and whether the run consulted the
	// input's total length. The out-of-process shim forwards them in
	// its RESULT frame so a replayed trace reproduces Decided exactly.
	MaxAccess int
	LenUsed   bool
}

// Finish seals the tracer into a Record with exit status exit. The
// Record lives in the tracer's sink and aliases the sink's buffers:
// both are valid only until the sink's next New call. (Records from
// trace.New stay valid indefinitely — their single-use sink is never
// reused.)
func (t *Tracer) Finish(exit int) *Record {
	// Hand the possibly grown slices back so the sink retains their
	// capacity for the next execution.
	t.sink.comps = t.comps
	t.sink.eofs = t.eofs
	t.sink.blocks = t.blocks
	t.sink.bytes = t.bytes
	// A rejection is prefix-decided when the parser never probed past
	// the end of the input (an EOF access means the verdict hinged on
	// where the input stops, not on what it holds) and either never
	// consulted the total length, or read every byte through the final
	// one — in which case the deciding prefix is the whole input and
	// the subject contract's suffix-proof-rejection property
	// (internal/conformance, prefix check (c)) guarantees extensions
	// replay the identical trace. Acceptances are never prefix-decided:
	// accepting parsers probe for or measure the input's end, so their
	// verdict is inherently length-dependent.
	decided := -1
	if exit != 0 && !t.undecided && !t.eofSeen && (!t.lenUsed || t.maxAccess+1 == len(t.input)) {
		decided = t.maxAccess + 1
	}
	// The Record is sink-owned like every other per-execution buffer:
	// returning &sink.rec instead of a fresh allocation saves one heap
	// object per execution, and tightens no contract — the record
	// already aliased the sink's slices, so its lifetime was bounded by
	// the next New call regardless.
	t.sink.rec = Record{
		Input:       t.input,
		Exit:        exit,
		Comparisons: t.comps,
		EOFs:        t.eofs,
		Blocks:      t.blocks,
		BlockFirst:  t.blockSet,
		PathHash:    t.pathHash,
		Edges:       t.edges,
		MaxDepth:    t.maxDepth,
		Decided:     decided,
		MaxAccess:   t.maxAccess,
		LenUsed:     t.lenUsed,
	}
	return &t.sink.rec
}

// Accepted reports whether the execution accepted the input as valid.
func (r *Record) Accepted() bool { return r.Exit == 0 }

// DecidedPrefix returns the number of leading input bytes that fully
// determined this execution's outcome and trace, and whether the run
// was prefix-decided at all. When it reports (d, true), any input of
// length >= d sharing those d bytes is rejected with the identical
// comparisons, blocks and path hash — the property the prefix-decided
// execution cache rests on, machine-checked per subject by
// internal/conformance.
func (r *Record) DecidedPrefix() (int, bool) {
	if r.Decided < 0 {
		return 0, false
	}
	return r.Decided, true
}

// CoveredBlocks returns the set of block IDs hit during the run.
func (r *Record) CoveredBlocks() map[uint32]bool {
	out := make(map[uint32]bool, len(r.BlockFirst))
	for id := range r.BlockFirst {
		out[id] = true
	}
	return out
}

// LastComparedIndex returns the largest input offset touched by any
// comparison, or -1 if no tainted comparison was recorded.
func (r *Record) LastComparedIndex() int {
	last := -1
	for i := range r.Comparisons {
		if r.Comparisons[i].Last > last {
			last = r.Comparisons[i].Last
		}
	}
	return last
}

// EOFAtEnd reports whether the parser attempted to read at or past
// len(Input): it wanted more characters.
func (r *Record) EOFAtEnd() bool {
	for _, e := range r.EOFs {
		if e.Index >= len(r.Input) {
			return true
		}
	}
	return false
}

// ComparisonsAt returns the comparisons whose span ends at input
// offset idx — the comparisons made to the character the fuzzer will
// substitute.
func (r *Record) ComparisonsAt(idx int) []Comparison {
	var out []Comparison
	for i := range r.Comparisons {
		if r.Comparisons[i].Last == idx {
			out = append(out, r.Comparisons[i])
		}
	}
	return out
}

// BlocksBeforeSeq counts distinct blocks first hit strictly before
// event sequence number seq. The core uses it to ignore coverage that
// error-handling code contributes after the failing character was
// first examined (paper §3.1).
func (r *Record) BlocksBeforeSeq(seq int) map[uint32]bool {
	out := make(map[uint32]bool)
	for id, s := range r.BlockFirst {
		if s < seq {
			out[id] = true
		}
	}
	return out
}

// FirstComparisonSeqAt returns the sequence number of the first
// comparison touching input offset idx, or -1 if none.
func (r *Record) FirstComparisonSeqAt(idx int) int {
	best := -1
	for i := range r.Comparisons {
		c := &r.Comparisons[i]
		if c.Index <= idx && idx <= c.Last {
			if best == -1 || c.Seq < best {
				best = c.Seq
			}
		}
	}
	return best
}

// AvgStackLastTwo returns the mean instrumented stack depth of the
// last two comparisons (paper §3.1, avgStackSize). With fewer than two
// comparisons it degrades gracefully.
func (r *Record) AvgStackLastTwo() float64 {
	n := len(r.Comparisons)
	switch n {
	case 0:
		return 0
	case 1:
		return float64(r.Comparisons[0].Stack)
	}
	return float64(r.Comparisons[n-1].Stack+r.Comparisons[n-2].Stack) / 2
}
