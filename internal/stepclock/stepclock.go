// Package stepclock provides the active-time accounting shared by
// every resumable campaign engine (core, afl, klee): a campaign's
// Elapsed and Deadline count time spent inside Step — not wall-clock
// time parked between Steps in a fleet's ready queue, which would cut
// multiplexed campaigns short and misattribute scheduler wait to the
// engine.
package stepclock

import "time"

// Clock accumulates a campaign's active stepping time. The zero value
// is ready to use: nothing has accrued, so no deadline reads as
// exceeded before the first step.
type Clock struct {
	stepStart time.Time
	inStep    bool
	active    time.Duration
}

// StepBegin marks the start of one Step.
func (c *Clock) StepBegin() {
	c.stepStart = time.Now()
	c.inStep = true
}

// StepEnd marks the end of the running Step and returns the total
// active time, the value campaigns stamp into Result.Elapsed.
func (c *Clock) StepEnd() time.Duration {
	c.active += time.Since(c.stepStart)
	c.inStep = false
	return c.active
}

// Active returns accumulated active time, including the running
// Step's share.
func (c *Clock) Active() time.Duration {
	d := c.active
	if c.inStep {
		d += time.Since(c.stepStart)
	}
	return d
}

// Exceeded reports whether a deadline of active time is spent
// (deadline <= 0 never is).
func (c *Clock) Exceeded(deadline time.Duration) bool {
	return deadline > 0 && c.Active() > deadline
}

// Load seeds previously accumulated active time — the
// snapshot-restore path, so a resumed campaign continues its deadline
// clock instead of restarting it.
func (c *Clock) Load(active time.Duration) {
	c.active = active
}
