package stepclock

import (
	"testing"
	"time"
)

// TestZeroValueAccountsNothing: the zero Clock has no accrued time,
// so no deadline — however small — reads as exceeded before the first
// step. This is the regression surface of the zero-time deadline bug
// (a fresh campaign must actually run).
func TestZeroValueAccountsNothing(t *testing.T) {
	var c Clock
	if c.Active() != 0 {
		t.Errorf("zero clock Active = %v, want 0", c.Active())
	}
	if c.Exceeded(time.Nanosecond) {
		t.Error("zero clock exceeded a 1ns deadline before any step")
	}
	if c.Exceeded(time.Hour) {
		t.Error("zero clock exceeded a 1h deadline before any step")
	}
}

// TestZeroDeadlineNeverExceeded: deadline <= 0 means "no deadline",
// even after time has accrued.
func TestZeroDeadlineNeverExceeded(t *testing.T) {
	var c Clock
	c.Load(time.Hour)
	if c.Exceeded(0) {
		t.Error("deadline 0 read as exceeded")
	}
	if c.Exceeded(-time.Second) {
		t.Error("negative deadline read as exceeded")
	}
	if !c.Exceeded(time.Minute) {
		t.Error("1m deadline not exceeded after loading 1h of active time")
	}
}

// TestStepAccumulates: active time grows across steps, includes the
// running step's share, and StepEnd returns the running total.
func TestStepAccumulates(t *testing.T) {
	var c Clock
	c.StepBegin()
	time.Sleep(time.Millisecond)
	first := c.StepEnd()
	if first <= 0 {
		t.Fatalf("first StepEnd = %v, want > 0", first)
	}
	if got := c.Active(); got != first {
		t.Errorf("Active between steps = %v, want the StepEnd total %v", got, first)
	}

	c.StepBegin()
	time.Sleep(time.Millisecond)
	if got := c.Active(); got <= first {
		t.Errorf("Active during second step = %v, want > %v (running share counted)", got, first)
	}
	second := c.StepEnd()
	if second <= first {
		t.Errorf("second StepEnd = %v, want > first total %v", second, first)
	}
}

// TestParkedTimeDoesNotCount: a zero-duration step accrues (almost)
// nothing, and the time parked between StepEnd and the next StepBegin
// is never charged — the property that keeps fleet queue wait out of
// campaign deadlines.
func TestParkedTimeDoesNotCount(t *testing.T) {
	var c Clock
	c.StepBegin()
	base := c.StepEnd() // immediate: an (effectively) zero-duration step
	time.Sleep(2 * time.Millisecond)
	if got := c.Active(); got != base {
		t.Errorf("parked time leaked into Active: %v != %v", got, base)
	}
	c.StepBegin()
	total := c.StepEnd()
	if park := total - base; park > time.Millisecond {
		t.Errorf("second zero-duration step charged %v, parked time leaked", park)
	}
}

// TestLoadSeedsResumedCampaigns: Load replaces the accrued total (the
// snapshot-restore path) and subsequent steps extend it.
func TestLoadSeedsResumedCampaigns(t *testing.T) {
	var c Clock
	c.Load(3 * time.Second)
	if got := c.Active(); got != 3*time.Second {
		t.Errorf("Active after Load = %v, want 3s", got)
	}
	if !c.Exceeded(2 * time.Second) {
		t.Error("loaded time not counted against the deadline")
	}
	c.StepBegin()
	time.Sleep(time.Millisecond)
	if got := c.StepEnd(); got <= 3*time.Second {
		t.Errorf("StepEnd after Load = %v, want > 3s", got)
	}
}
