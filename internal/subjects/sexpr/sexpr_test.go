package sexpr

import (
	"math/rand"
	"strings"
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

func run(in string) *trace.Record {
	return subject.Execute(New(), []byte(in), trace.Full())
}

func TestNameAndBlocks(t *testing.T) {
	p := New()
	if p.Name() != "sexpr" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Blocks() <= 0 {
		t.Errorf("Blocks = %d", p.Blocks())
	}
}

func TestAcceptReject(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"a", true},
		{"42", true},
		{"()", true},
		{"(a b c)", true},
		{"(define (f x) (+ x 1))", true},
		{"'(quote a)", true},
		{"'()", true},
		{"\"str\"", true},
		{"\"es\\\"c\"", true},
		{"(lambda (x) x) (cond (a b))", true},
		{"  ( a  ( b 1 2 )\n\t\"s\" )  ", true},
		{"+", true},
		{"<=>", true},
		{"", false},
		{"   ", false},
		{"(", false},
		{")", false},
		{"(a", false},
		{"(a))", false},
		{"\"unterminated", false},
		{"\"esc at eof\\", false},
		{"#", false},
		{"(a . b)", false}, // no dotted pairs in this subset
	}
	for _, c := range cases {
		if got := run(c.in).Accepted(); got != c.ok {
			t.Errorf("%q accepted=%v, want %v", c.in, got, c.ok)
		}
	}
}

// TestRejectionLeavesEvidence: every rejected input must record a
// comparison or an EOF access for the fuzzer to act on.
func TestRejectionLeavesEvidence(t *testing.T) {
	for _, in := range []string{"", "(", "#", "\"x", "(a ."} {
		rec := run(in)
		if rec.Accepted() {
			t.Errorf("%q unexpectedly accepted", in)
			continue
		}
		if len(rec.Comparisons) == 0 && len(rec.EOFs) == 0 {
			t.Errorf("rejection of %q recorded no comparisons and no EOF accesses", in)
		}
	}
}

// TestSymbolComparisonsExposeKeywords: the strcmp wrapping must
// surface the special-form names as substitution candidates.
func TestSymbolComparisonsExposeKeywords(t *testing.T) {
	rec := run("d")
	var seen []string
	for _, c := range rec.Comparisons {
		if c.Kind == trace.CmpStrEq {
			seen = append(seen, string(c.Expected))
		}
	}
	joined := strings.Join(seen, " ")
	for _, want := range []string{"define", "lambda", "quote", "cond"} {
		if !strings.Contains(joined, want) {
			t.Errorf("keyword %q not exposed by strcmp (saw %q)", want, joined)
		}
	}
}

func genDatum(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return []string{"a", "xyz", "x1", "+", "-", "<=", "f?"}[rng.Intn(7)]
		case 1:
			return []string{"0", "7", "42", "1999"}[rng.Intn(4)]
		case 2:
			return `"s\"x"`
		case 3:
			return []string{"define", "lambda", "quote", "cond"}[rng.Intn(4)]
		default:
			return `""`
		}
	}
	switch rng.Intn(3) {
	case 0:
		n := rng.Intn(4)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = genDatum(rng, depth-1)
		}
		return "(" + strings.Join(parts, " ") + ")"
	case 1:
		return "'" + genDatum(rng, depth-1)
	default:
		return genDatum(rng, 0)
	}
}

func TestAcceptsGeneratedSexprs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 500; i++ {
		in := genDatum(rng, 1+rng.Intn(4))
		if !run(in).Accepted() {
			t.Fatalf("generated s-expression rejected: %q", in)
		}
	}
}

// TestTokenizeStaysInInventory: Tokenize must only report inventory
// names, and must see the planted keyword.
func TestTokenizeStaysInInventory(t *testing.T) {
	names := Inventory.Names()
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 200; i++ {
		in := genDatum(rng, 2)
		for tok := range Tokenize([]byte(in)) {
			if !names[tok] {
				t.Fatalf("tokenizer reported %q, not in inventory (input %q)", tok, in)
			}
		}
	}
	got := Tokenize([]byte(`(define f "s" 12)`))
	for _, want := range []string{"(", ")", "define", "symbol", "string", "number"} {
		if !got[want] {
			t.Errorf("Tokenize missed %q: %v", want, got)
		}
	}
}
