// Package sexpr is a Lisp s-expression reader subject: one or more
// data separated by whitespace, where a datum is a parenthesized
// list, a quoted datum ('x), a number, a double-quoted string with
// backslash escapes, or a symbol. Special-form names are recognized
// by wrapped strcmp over the accumulated symbol, exposing "define",
// "lambda", "quote" and "cond" to the fuzzer as whole-token
// substitutions (§6.2); every symbol stays accepted either way.
// Parsing aborts with a non-zero exit on the first malformed
// character (§5.1 setup).
package sexpr

import (
	"pfuzzer/internal/subject"
	"pfuzzer/internal/taint"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

const (
	blkStart = iota
	blkDatum
	blkList
	blkListItem
	blkListClose
	blkQuoteMark
	blkString
	blkStringChar
	blkStringEsc
	blkStringClose
	blkNumber
	blkNumberChar
	blkSymbol
	blkSymbolChar
	blkKwDefine
	blkKwLambda
	blkKwQuote
	blkKwCond
	blkAccept
	blkRejectEmpty
	blkRejectChar
	blkRejectEOF
	blkRejectString
	numBlocks
)

// Program is the sexpr subject.
type Program struct{}

// New returns the sexpr subject.
func New() *Program { return &Program{} }

// Name implements subject.Program.
func (*Program) Name() string { return "sexpr" }

// Blocks implements subject.Program.
func (*Program) Blocks() int { return numBlocks }

// Run parses the whole input as a sequence of data.
func (*Program) Run(t *trace.Tracer) int {
	p := &parser{t: t}
	t.Block(blkStart)
	p.skipWS()
	if p.pos >= t.Len() {
		// Force an EOF access so the fuzzer learns to append.
		t.At(p.pos)
		t.Block(blkRejectEmpty)
		return subject.ExitReject
	}
	for {
		if !p.datum() {
			return subject.ExitReject
		}
		p.skipWS()
		// Probe: EOF here also tells the fuzzer the input may grow.
		if _, ok := t.At(p.pos); !ok {
			break
		}
	}
	t.Block(blkAccept)
	return subject.ExitOK
}

type parser struct {
	t   *trace.Tracer
	pos int
}

// datum parses one list, quoted datum or atom.
func (p *parser) datum() bool {
	p.t.Enter()
	defer p.t.Leave()

	p.t.Block(blkDatum)
	c, ok := p.t.At(p.pos)
	if !ok {
		p.t.Block(blkRejectEOF)
		return false
	}
	switch {
	case p.t.CharEq(c, '('):
		p.t.Block(blkList)
		p.pos++
		return p.list()
	case p.t.CharEq(c, '\''):
		p.t.Block(blkQuoteMark)
		p.pos++
		p.skipWS()
		return p.datum()
	case p.t.CharEq(c, '"'):
		p.t.Block(blkString)
		p.pos++
		return p.str()
	case p.t.CharRange(c, '0', '9'):
		p.t.Block(blkNumber)
		p.pos++
		for {
			c, ok := p.t.At(p.pos)
			if !ok || !p.t.CharRange(c, '0', '9') {
				return true
			}
			p.t.Block(blkNumberChar)
			p.pos++
		}
	case p.symInitial(c):
		p.t.Block(blkSymbol)
		word := taint.String{}.Append(c)
		p.pos++
		for {
			c, ok := p.t.At(p.pos)
			if !ok || !p.symSubsequent(c) {
				break
			}
			p.t.Block(blkSymbolChar)
			word = word.Append(c)
			p.pos++
		}
		p.classify(word)
		return true
	default:
		p.t.Block(blkRejectChar)
		return false
	}
}

// list parses the remainder of "(" ws* (datum ws*)* ")".
func (p *parser) list() bool {
	p.t.Enter()
	defer p.t.Leave()

	for {
		p.skipWS()
		c, ok := p.t.At(p.pos)
		if !ok {
			p.t.Block(blkRejectEOF)
			return false // unterminated list
		}
		if p.t.CharEq(c, ')') {
			p.t.Block(blkListClose)
			p.pos++
			return true
		}
		p.t.Block(blkListItem)
		if !p.datum() {
			return false
		}
	}
}

// str parses the remainder of a double-quoted string.
func (p *parser) str() bool {
	p.t.Enter()
	defer p.t.Leave()

	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			p.t.Block(blkRejectString)
			return false // unterminated string
		}
		switch {
		case p.t.CharEq(c, '"'):
			p.t.Block(blkStringClose)
			p.pos++
			return true
		case p.t.CharEq(c, '\\'):
			p.t.Block(blkStringEsc)
			p.pos++
			if _, ok := p.t.At(p.pos); !ok {
				p.t.Block(blkRejectString)
				return false // escape at EOF
			}
			p.pos++
		default:
			p.t.Block(blkStringChar)
			p.pos++
		}
	}
}

// classify is the wrapped strcmp over the symbol (coverage only;
// unknown symbols stay accepted).
func (p *parser) classify(w taint.String) {
	switch {
	case p.t.StrEq(w, "define"):
		p.t.Block(blkKwDefine)
	case p.t.StrEq(w, "lambda"):
		p.t.Block(blkKwLambda)
	case p.t.StrEq(w, "quote"):
		p.t.Block(blkKwQuote)
	case p.t.StrEq(w, "cond"):
		p.t.Block(blkKwCond)
	}
}

func (p *parser) symInitial(c taint.Char) bool {
	return p.t.CharRange(c, 'a', 'z') || p.t.CharRange(c, 'A', 'Z') ||
		p.t.CharSet(c, "+-*/<>=!?_")
}

func (p *parser) symSubsequent(c taint.Char) bool {
	return p.symInitial(c) || p.t.CharRange(c, '0', '9')
}

// skipWS consumes whitespace without recording comparisons (a
// typical isspace() table lookup — an implicit flow).
func (p *parser) skipWS() {
	for {
		c, ok := p.t.At(p.pos)
		//pdlint:ignore subjecttrace -- whitespace skip models the C original's isspace() table lookup, an implicit flow the shim cannot observe
		if !ok || (c.B != ' ' && c.B != '\t' && c.B != '\n' && c.B != '\r') {
			return
		}
		p.pos++
	}
}

// Inventory lists the sexpr tokens: the three structural characters,
// the special-form names the reader recognizes by strcmp, and the
// open atom classes.
var Inventory = tokens.Inventory{
	tokens.Lit("("),
	tokens.Lit(")"),
	tokens.Lit("'"),
	tokens.Lit("define"),
	tokens.Lit("lambda"),
	tokens.Lit("quote"),
	tokens.Lit("cond"),
	tokens.Class("symbol", 1),
	tokens.Class("number", 1),
	tokens.Class("string", 2),
}

// Tokenize returns the inventory tokens present in input.
func Tokenize(input []byte) map[string]bool {
	out := map[string]bool{}
	i := 0
	for i < len(input) {
		b := input[i]
		switch {
		case b == '(' || b == ')' || b == '\'':
			out[string(b)] = true
			i++
		case b == '"':
			j := i + 1
			for j < len(input) && input[j] != '"' {
				if input[j] == '\\' {
					j++
				}
				j++
			}
			if j < len(input) {
				j++
			}
			out["string"] = true
			i = j
		case b >= '0' && b <= '9':
			out["number"] = true
			for i < len(input) && input[i] >= '0' && input[i] <= '9' {
				i++
			}
		case isSymByte(b):
			j := i
			for j < len(input) && (isSymByte(input[j]) || input[j] >= '0' && input[j] <= '9') {
				j++
			}
			switch w := string(input[i:j]); w {
			case "define", "lambda", "quote", "cond":
				out[w] = true
			default:
				out["symbol"] = true
			}
			i = j
		default:
			i++
		}
	}
	return out
}

func isSymByte(b byte) bool {
	if b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' {
		return true
	}
	switch b {
	case '+', '-', '*', '/', '<', '>', '=', '!', '?', '_':
		return true
	}
	return false
}
