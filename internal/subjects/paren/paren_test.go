package paren

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

func run(in string) *trace.Record {
	return subject.Execute(New(), []byte(in), trace.Full())
}

func TestNameAndBlocks(t *testing.T) {
	p := New()
	if p.Name() != "paren" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Blocks() <= 0 {
		t.Errorf("Blocks = %d", p.Blocks())
	}
}

func TestAcceptReject(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"{<>}", true},
		{"()[]{}<>", true},
		{"([{<()>}])", true},
		{"(<)>", false}, // crossing pairs
		{"]", false},
		{"{{}", false},
	}
	for _, c := range cases {
		if got := run(c.in).Accepted(); got != c.ok {
			t.Errorf("%q accepted=%v, want %v", c.in, got, c.ok)
		}
	}
}

func TestDeepNestingStackDepth(t *testing.T) {
	// The §3 heuristic relies on the instrumented stack depth growing
	// with bracket nesting; check the tracer actually observes it.
	shallow := run("()")
	deep := run("(((((((())))))))")
	if !shallow.Accepted() || !deep.Accepted() {
		t.Fatal("bracket inputs rejected")
	}
	if deep.MaxDepth <= shallow.MaxDepth {
		t.Errorf("deep nesting depth %d not greater than shallow %d",
			deep.MaxDepth, shallow.MaxDepth)
	}
}

func TestOpenBracketSignalsEOF(t *testing.T) {
	rec := run("([")
	if rec.Accepted() {
		t.Fatal("unclosed brackets accepted")
	}
	if !rec.EOFAtEnd() {
		t.Error("no EOF access recorded for the unclosed brackets")
	}
}

func TestTokenizeAllBrackets(t *testing.T) {
	got := Tokenize([]byte("()[]{}<>"))
	if len(got) < 8 {
		t.Errorf("expected all 8 bracket tokens, got %v", got)
	}
	if Inventory.Count() != 8 {
		t.Errorf("inventory has %d tokens, want 8", Inventory.Count())
	}
}
