// Package paren is the multi-bracket Dyck language the paper uses to
// motivate its search heuristic (§3, §3.2): a parser for well-balanced
// sequences over four bracket kinds. Random choice between opening and
// closing brackets closes a prefix of length 2n with probability only
// 1/(n+1), which is why pFuzzer needs the stack-size and input-length
// terms in its heuristic; this subject exists to demonstrate exactly
// that behaviour in tests and ablation benchmarks.
package paren

import (
	"pfuzzer/internal/subject"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

const (
	blkStart = iota
	blkSeq
	blkOpenRound
	blkCloseRound
	blkOpenSquare
	blkCloseSquare
	blkOpenCurly
	blkCloseCurly
	blkOpenAngle
	blkCloseAngle
	blkNested
	blkAccept
	blkRejectEOF
	blkRejectChar
	blkRejectEmpty
	blkRejectTrail
	numBlocks
)

// Program is the bracket-language subject.
type Program struct{}

// New returns the paren subject.
func New() *Program { return &Program{} }

// Name implements subject.Program.
func (*Program) Name() string { return "paren" }

// Blocks implements subject.Program.
func (*Program) Blocks() int { return numBlocks }

// Run accepts one or more balanced bracket groups.
func (*Program) Run(t *trace.Tracer) int {
	p := &parser{t: t}
	t.Block(blkStart)
	if t.Len() == 0 {
		// Force an EOF access so the fuzzer learns to append.
		t.At(0)
		t.Block(blkRejectEmpty)
		return subject.ExitReject
	}
	if !p.groups() {
		return subject.ExitReject
	}
	if p.pos != t.Len() {
		t.Block(blkRejectTrail)
		return subject.ExitReject
	}
	t.Block(blkAccept)
	return subject.ExitOK
}

type parser struct {
	t   *trace.Tracer
	pos int
}

var pairs = []struct {
	open, close byte
	openBlk     uint32
	closeBlk    uint32
}{
	{'(', ')', blkOpenRound, blkCloseRound},
	{'[', ']', blkOpenSquare, blkCloseSquare},
	{'{', '}', blkOpenCurly, blkCloseCurly},
	{'<', '>', blkOpenAngle, blkCloseAngle},
}

// groups := group+
func (p *parser) groups() bool {
	if !p.group() {
		return false
	}
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			return true
		}
		if !p.isOpen(c.B) {
			return true
		}
		p.t.Block(blkSeq)
		_ = c
		if !p.group() {
			return false
		}
	}
}

func (p *parser) isOpen(b byte) bool {
	for _, pr := range pairs {
		//pdlint:ignore subjecttrace -- pairs-table scan models an implicit array lookup; the closing-bracket match is traced at the consumption site
		if pr.open == b {
			return true
		}
	}
	return false
}

// group := open groups? close
func (p *parser) group() bool {
	p.t.Enter()
	defer p.t.Leave()

	c, ok := p.t.At(p.pos)
	if !ok {
		p.t.Block(blkRejectEOF)
		return false
	}
	for _, pr := range pairs {
		if p.t.CharEq(c, pr.open) {
			p.t.Block(pr.openBlk)
			p.pos++
			// Optional nested groups.
			if n, ok := p.t.At(p.pos); ok && p.isOpen(n.B) {
				p.t.Block(blkNested)
				if !p.groups() {
					return false
				}
			}
			cc, ok := p.t.At(p.pos)
			if !ok {
				p.t.Block(blkRejectEOF)
				return false
			}
			if !p.t.CharEq(cc, pr.close) {
				p.t.Block(blkRejectChar)
				return false
			}
			p.t.Block(pr.closeBlk)
			p.pos++
			return true
		}
	}
	p.t.Block(blkRejectChar)
	return false
}

// Inventory lists the eight bracket tokens.
var Inventory = tokens.Inventory{
	tokens.Lit("("), tokens.Lit(")"),
	tokens.Lit("["), tokens.Lit("]"),
	tokens.Lit("{"), tokens.Lit("}"),
	tokens.Lit("<"), tokens.Lit(">"),
}

// Tokenize returns the inventory tokens present in input.
func Tokenize(input []byte) map[string]bool {
	out := map[string]bool{}
	for _, b := range input {
		switch b {
		case '(', ')', '[', ']', '{', '}', '<', '>':
			out[string(b)] = true
		}
	}
	return out
}
