// Package urlp is an RFC-3986-flavoured URL parser subject: it
// accepts `scheme ":" hier-part ["?" query] ["#" fragment]`, where
// hier-part is either "//" authority path or a rootless path. Like
// every subject it rejects with a non-zero exit on the first
// malformed character (§5.1 setup). Well-known schemes are recognized
// by wrapped strcmp over the accumulated scheme word, which is what
// exposes "http", "https", "ftp" and "file" to the fuzzer as
// whole-token substitutions (§6.2). Percent-encoding and IP literals
// are out of scope for this subset.
package urlp

import (
	"pfuzzer/internal/subject"
	"pfuzzer/internal/taint"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

const (
	blkStart = iota
	blkSchemeFirst
	blkSchemeChar
	blkSchemeHTTP
	blkSchemeHTTPS
	blkSchemeFTP
	blkSchemeFILE
	blkColon
	blkAuthority
	blkUserinfo
	blkHostChar
	blkPortColon
	blkPortDigit
	blkSlash
	blkSegChar
	blkQuery
	blkQueryChar
	blkFragment
	blkFragChar
	blkAccept
	blkRejectEmpty
	blkRejectScheme
	blkRejectChar
	numBlocks
)

// Program is the urlp subject.
type Program struct{}

// New returns the urlp subject.
func New() *Program { return &Program{} }

// Name implements subject.Program.
func (*Program) Name() string { return "urlp" }

// Blocks implements subject.Program.
func (*Program) Blocks() int { return numBlocks }

// Run parses the whole input as one URL.
func (*Program) Run(t *trace.Tracer) int {
	p := &parser{t: t}
	t.Block(blkStart)
	if t.Len() == 0 {
		// Force an EOF access so the fuzzer learns to append.
		t.At(0)
		t.Block(blkRejectEmpty)
		return subject.ExitReject
	}
	if !p.url() {
		return subject.ExitReject
	}
	// Probe for more input so the fuzzer knows it may extend the URL.
	t.At(p.pos)
	t.Block(blkAccept)
	return subject.ExitOK
}

type parser struct {
	t   *trace.Tracer
	pos int
}

// url parses scheme ":" hier-part ["?" query] ["#" fragment].
func (p *parser) url() bool {
	p.t.Enter()
	defer p.t.Leave()

	if !p.scheme() {
		return false
	}
	if c, ok := p.t.At(p.pos); ok && p.t.CharEq(c, '/') {
		p.t.Block(blkSlash)
		p.pos++
		if c2, ok2 := p.t.At(p.pos); ok2 && p.t.CharEq(c2, '/') {
			p.t.Block(blkAuthority)
			p.pos++
			p.authority()
		}
		// A single '/' starts a path-absolute hier-part; the slash is
		// already consumed, path handles the rest either way.
	}
	if !p.path() {
		return false
	}
	if c, ok := p.t.At(p.pos); ok {
		if !p.t.CharEq(c, '?') {
			return p.fragment()
		}
		p.t.Block(blkQuery)
		p.pos++
		if !p.query() {
			return false
		}
	}
	return p.fragment()
}

// scheme parses ALPHA (ALPHA|DIGIT|"+"|"-"|".")* ":" and records which
// well-known scheme the accumulated word is.
func (p *parser) scheme() bool {
	p.t.Enter()
	defer p.t.Leave()

	c, ok := p.t.At(p.pos)
	if !ok {
		p.t.Block(blkRejectScheme)
		return false
	}
	if !p.t.CharRange(c, 'a', 'z') && !p.t.CharRange(c, 'A', 'Z') {
		p.t.Block(blkRejectScheme)
		return false
	}
	p.t.Block(blkSchemeFirst)
	word := taint.String{}.Append(c)
	p.pos++
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			p.t.Block(blkRejectScheme)
			return false // a URL needs the ':' after its scheme
		}
		if p.t.CharEq(c, ':') {
			p.classify(word)
			p.t.Block(blkColon)
			p.pos++
			return true
		}
		if p.t.CharRange(c, 'a', 'z') || p.t.CharRange(c, 'A', 'Z') ||
			p.t.CharRange(c, '0', '9') || p.t.CharSet(c, "+-.") {
			p.t.Block(blkSchemeChar)
			word = word.Append(c)
			p.pos++
			continue
		}
		p.t.Block(blkRejectScheme)
		return false
	}
}

// classify is the wrapped strcmp over the scheme word (coverage only;
// unknown schemes stay accepted).
func (p *parser) classify(w taint.String) {
	switch {
	case p.t.StrEq(w, "http"):
		p.t.Block(blkSchemeHTTP)
	case p.t.StrEq(w, "https"):
		p.t.Block(blkSchemeHTTPS)
	case p.t.StrEq(w, "ftp"):
		p.t.Block(blkSchemeFTP)
	case p.t.StrEq(w, "file"):
		p.t.Block(blkSchemeFILE)
	}
}

// authority parses [userinfo "@"] host [":" port]. It cannot fail:
// the first character that fits neither part is left for path, which
// decides whether it is legal.
func (p *parser) authority() {
	p.t.Enter()
	defer p.t.Leave()

	p.regName()
	if c, ok := p.t.At(p.pos); ok && p.t.CharEq(c, '@') {
		// What was read so far was userinfo; the host follows.
		p.t.Block(blkUserinfo)
		p.pos++
		p.regName()
	}
	if c, ok := p.t.At(p.pos); ok && p.t.CharEq(c, ':') {
		p.t.Block(blkPortColon)
		p.pos++
		for {
			c, ok := p.t.At(p.pos)
			if !ok || !p.t.CharRange(c, '0', '9') {
				return
			}
			p.t.Block(blkPortDigit)
			p.pos++
		}
	}
}

// regName consumes a run of unreserved host/userinfo characters.
func (p *parser) regName() {
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			return
		}
		if p.t.CharRange(c, 'a', 'z') || p.t.CharRange(c, 'A', 'Z') ||
			p.t.CharRange(c, '0', '9') || p.t.CharSet(c, "-._~") {
			p.t.Block(blkHostChar)
			p.pos++
			continue
		}
		return
	}
}

// path parses ("/" | pchar)* and stops at '?', '#' or EOF.
func (p *parser) path() bool {
	p.t.Enter()
	defer p.t.Leave()

	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			return true
		}
		switch {
		case p.t.CharEq(c, '/'):
			p.t.Block(blkSlash)
			p.pos++
		case p.t.CharEq(c, '?') || p.t.CharEq(c, '#'):
			return true
		case p.pchar(c):
			p.t.Block(blkSegChar)
			p.pos++
		default:
			p.t.Block(blkRejectChar)
			return false
		}
	}
}

// query parses qchar* and stops at '#' or EOF.
func (p *parser) query() bool {
	p.t.Enter()
	defer p.t.Leave()

	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			return true
		}
		if p.t.CharEq(c, '#') {
			return true
		}
		if p.qchar(c) {
			p.t.Block(blkQueryChar)
			p.pos++
			continue
		}
		p.t.Block(blkRejectChar)
		return false
	}
}

// fragment parses ["#" qchar*] at the end of the URL.
func (p *parser) fragment() bool {
	p.t.Enter()
	defer p.t.Leave()

	c, ok := p.t.At(p.pos)
	if !ok {
		return true
	}
	if !p.t.CharEq(c, '#') {
		p.t.Block(blkRejectChar)
		return false
	}
	p.t.Block(blkFragment)
	p.pos++
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			return true
		}
		if p.qchar(c) {
			p.t.Block(blkFragChar)
			p.pos++
			continue
		}
		p.t.Block(blkRejectChar)
		return false
	}
}

func (p *parser) pchar(c taint.Char) bool {
	return p.t.CharRange(c, 'a', 'z') || p.t.CharRange(c, 'A', 'Z') ||
		p.t.CharRange(c, '0', '9') || p.t.CharSet(c, "-._~!$&'()*+,;=:@")
}

func (p *parser) qchar(c taint.Char) bool {
	return p.pchar(c) || p.t.CharSet(c, "/?")
}

// Inventory lists the urlp tokens: the structural delimiters, the four
// well-known schemes the parser recognizes by strcmp, and the open
// classes for everything else.
var Inventory = tokens.Inventory{
	tokens.Lit(":"),
	tokens.Lit("/"),
	tokens.Lit("//"),
	tokens.Lit("?"),
	tokens.Lit("#"),
	tokens.Lit("@"),
	tokens.Lit("."),
	tokens.Lit("="),
	tokens.Lit("&"),
	tokens.Lit("http"),
	tokens.Lit("https"),
	tokens.Lit("ftp"),
	tokens.Lit("file"),
	tokens.Class("text", 1),
	tokens.Class("number", 1),
}

// Tokenize returns the inventory tokens present in input.
func Tokenize(input []byte) map[string]bool {
	out := map[string]bool{}
	i := 0
	for i < len(input) {
		b := input[i]
		switch {
		case b == '/':
			if i+1 < len(input) && input[i+1] == '/' {
				out["//"] = true
				i += 2
			} else {
				out["/"] = true
				i++
			}
		case b == ':' || b == '?' || b == '#' || b == '@' || b == '.' ||
			b == '=' || b == '&':
			out[string(b)] = true
			i++
		case b >= '0' && b <= '9':
			out["number"] = true
			for i < len(input) && input[i] >= '0' && input[i] <= '9' {
				i++
			}
		case isAlpha(b):
			j := i
			for j < len(input) && (isAlpha(input[j]) || input[j] >= '0' && input[j] <= '9') {
				j++
			}
			switch w := string(input[i:j]); w {
			case "http", "https", "ftp", "file":
				out[w] = true
			default:
				out["text"] = true
			}
			i = j
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			i++
		default:
			out["text"] = true
			i++
		}
	}
	return out
}

func isAlpha(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}
