package urlp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

func run(in string) *trace.Record {
	return subject.Execute(New(), []byte(in), trace.Full())
}

func TestNameAndBlocks(t *testing.T) {
	p := New()
	if p.Name() != "urlp" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Blocks() <= 0 {
		t.Errorf("Blocks = %d", p.Blocks())
	}
}

func TestAcceptReject(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"a:", true},
		{"a:b", true},
		{"mailto:someone", true},
		{"http://example.com/", true},
		{"http://", true},
		{"https://user@host.example:8080/a/b?x=1&y=2#frag", true},
		{"ftp://ftp.example.org/pub/file.txt", true},
		{"file:///etc/passwd", true},
		{"a+b-c.d:path", true},
		{"s:?q", true},
		{"s:#f", true},
		{"s:/rooted/path", true},
		{"", false},
		{"1:b", false},       // scheme must start with a letter
		{"nocolon", false},   // EOF before ':'
		{"a:b c", false},     // space is not a pchar
		{"a:%41", false},     // no percent-encoding in this subset
		{"a:b#f#g", false},   // '#' inside the fragment
		{"://x", false},      // empty scheme
		{"a:\x01", false},    // control character
		{"a:p#f\x7f", false}, // control character in fragment
	}
	for _, c := range cases {
		if got := run(c.in).Accepted(); got != c.ok {
			t.Errorf("%q accepted=%v, want %v", c.in, got, c.ok)
		}
	}
}

// TestRejectionLeavesEvidence: every rejected input must record a
// comparison or an EOF access for the fuzzer to act on.
func TestRejectionLeavesEvidence(t *testing.T) {
	for _, in := range []string{"", "1", "a", "a:b c", "a: ", "x:y#z#w"} {
		rec := run(in)
		if rec.Accepted() {
			t.Errorf("%q unexpectedly accepted", in)
			continue
		}
		if len(rec.Comparisons) == 0 && len(rec.EOFs) == 0 {
			t.Errorf("rejection of %q recorded no comparisons and no EOF accesses", in)
		}
	}
}

// TestSchemeComparisonsExposeLiterals: the strcmp wrapping must
// surface the well-known schemes as substitution candidates.
func TestSchemeComparisonsExposeLiterals(t *testing.T) {
	rec := run("x:")
	var seen []string
	for _, c := range rec.Comparisons {
		if c.Kind == trace.CmpStrEq {
			seen = append(seen, string(c.Expected))
		}
	}
	joined := strings.Join(seen, " ")
	for _, want := range []string{"http", "https", "ftp", "file"} {
		if !strings.Contains(joined, want) {
			t.Errorf("scheme %q not exposed by strcmp (saw %q)", want, joined)
		}
	}
}

func genURL(rng *rand.Rand) string {
	seg := func() string {
		return []string{"a", "bb", "c0", "x-y", "p.q", "~u", "z_1"}[rng.Intn(7)]
	}
	scheme := []string{"http", "https", "ftp", "file", "a", "x+y", "s.t-u"}[rng.Intn(7)]
	var sb strings.Builder
	sb.WriteString(scheme)
	sb.WriteString(":")
	if rng.Intn(2) == 0 {
		sb.WriteString("//")
		if rng.Intn(3) == 0 {
			sb.WriteString(seg())
			sb.WriteString("@")
		}
		sb.WriteString(seg())
		if rng.Intn(3) == 0 {
			sb.WriteString(".")
			sb.WriteString(seg())
		}
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&sb, ":%d", rng.Intn(65536))
		}
	}
	for n := rng.Intn(3); n > 0; n-- {
		sb.WriteString("/")
		sb.WriteString(seg())
	}
	if rng.Intn(2) == 0 {
		sb.WriteString("?")
		sb.WriteString(seg())
		sb.WriteString("=")
		sb.WriteString(seg())
		if rng.Intn(2) == 0 {
			sb.WriteString("&")
			sb.WriteString(seg())
			sb.WriteString("=")
			sb.WriteString(seg())
		}
	}
	if rng.Intn(3) == 0 {
		sb.WriteString("#")
		sb.WriteString(seg())
	}
	return sb.String()
}

func TestAcceptsGeneratedURLs(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 500; i++ {
		in := genURL(rng)
		if !run(in).Accepted() {
			t.Fatalf("generated URL rejected: %q", in)
		}
	}
}

// TestTokenizeStaysInInventory: Tokenize must only report inventory
// names, and must see at least one token in any non-empty URL.
func TestTokenizeStaysInInventory(t *testing.T) {
	names := Inventory.Names()
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 200; i++ {
		in := genURL(rng)
		got := Tokenize([]byte(in))
		if len(in) > 0 && len(got) == 0 {
			t.Fatalf("no tokens in %q", in)
		}
		for tok := range got {
			if !names[tok] {
				t.Fatalf("tokenizer reported %q, not in inventory (input %q)", tok, in)
			}
		}
	}
	got := Tokenize([]byte("https://h/p"))
	for _, want := range []string{"https", "//", "/", "text"} {
		if !got[want] {
			t.Errorf("Tokenize(https://h/p) missed %q: %v", want, got)
		}
	}
}
