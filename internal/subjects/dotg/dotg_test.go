package dotg

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

func run(in string) *trace.Record {
	return subject.Execute(New(), []byte(in), trace.Full())
}

func TestNameAndBlocks(t *testing.T) {
	p := New()
	if p.Name() != "dotg" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Blocks() <= 0 {
		t.Errorf("Blocks = %d", p.Blocks())
	}
}

func TestAcceptReject(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"graph{}", true},
		{"digraph{}", true},
		{"strict graph g {}", true},
		{"digraph g { a; }", true},
		{"digraph { a -> b; b -> c }", true},
		{"graph { a -- b -- c; }", true},
		{"digraph { n [label=x]; a -> b [w=2] }", true},
		{"graph g { node [shape=box, color=red]; edge [w=1]; a -- b }", true},
		{"digraph { 1 -> 2 }", true},
		{"  graph \n g \t { a } ", true},
		{"", false},
		{"graph", false},
		{"graph {", false},
		{"blah {}", false},          // unknown head keyword
		{"graph { a -> b }", false}, // directed edge in an undirected graph
		{"digraph { a -- b }", false},
		{"graph {} x", false},        // trailing garbage
		{"graph { a - b }", false},   // lone dash
		{"digraph { [x=y] }", false}, // attrs without a subject
		{"digraph { n [x] }", false}, // attr without '='
		{"graph g g {}", false},      // two graph names
	}
	for _, c := range cases {
		if got := run(c.in).Accepted(); got != c.ok {
			t.Errorf("%q accepted=%v, want %v", c.in, got, c.ok)
		}
	}
}

// TestRejectionLeavesEvidence: every rejected input must record a
// comparison or an EOF access for the fuzzer to act on.
func TestRejectionLeavesEvidence(t *testing.T) {
	for _, in := range []string{"", "g", "graph", "graph {", "graph { a -> b }", "#"} {
		rec := run(in)
		if rec.Accepted() {
			t.Errorf("%q unexpectedly accepted", in)
			continue
		}
		if len(rec.Comparisons) == 0 && len(rec.EOFs) == 0 {
			t.Errorf("rejection of %q recorded no comparisons and no EOF accesses", in)
		}
	}
}

// TestWordComparisonsExposeKeywords: the strcmp wrapping must surface
// the DOT keywords as substitution candidates.
func TestWordComparisonsExposeKeywords(t *testing.T) {
	rec := run("x")
	var seen []string
	for _, c := range rec.Comparisons {
		if c.Kind == trace.CmpStrEq {
			seen = append(seen, string(c.Expected))
		}
	}
	joined := strings.Join(seen, " ")
	for _, want := range []string{"strict", "graph", "digraph", "node", "edge"} {
		if !strings.Contains(joined, want) {
			t.Errorf("keyword %q not exposed by strcmp (saw %q)", want, joined)
		}
	}
}

func genID(rng *rand.Rand) string {
	if rng.Intn(4) == 0 {
		return fmt.Sprintf("%d", rng.Intn(100))
	}
	return []string{"a", "bb", "n1", "x_y", "Z"}[rng.Intn(5)]
}

func genGraph(rng *rand.Rand) string {
	directed := rng.Intn(2) == 0
	op, kw := " -- ", "graph"
	if directed {
		op, kw = " -> ", "digraph"
	}
	var sb strings.Builder
	if rng.Intn(3) == 0 {
		sb.WriteString("strict ")
	}
	sb.WriteString(kw)
	if rng.Intn(2) == 0 {
		sb.WriteString(" ")
		sb.WriteString(genID(rng))
	}
	sb.WriteString(" { ")
	attrs := func() string {
		n := rng.Intn(3)
		if n == 0 {
			return " []"
		}
		pairs := make([]string, n)
		for i := range pairs {
			pairs[i] = genID(rng) + "=" + genID(rng)
		}
		return " [" + strings.Join(pairs, ", ") + "]"
	}
	for n := rng.Intn(4); n > 0; n-- {
		switch rng.Intn(4) {
		case 0:
			sb.WriteString([]string{"node", "edge"}[rng.Intn(2)])
			sb.WriteString(attrs())
		case 1:
			sb.WriteString(genID(rng))
		default:
			sb.WriteString(genID(rng))
			for h := 1 + rng.Intn(2); h > 0; h-- {
				sb.WriteString(op)
				sb.WriteString(genID(rng))
			}
			if rng.Intn(3) == 0 {
				sb.WriteString(attrs())
			}
		}
		if rng.Intn(2) == 0 {
			sb.WriteString(";")
		}
		sb.WriteString(" ")
	}
	sb.WriteString("}")
	return sb.String()
}

func TestAcceptsGeneratedGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 500; i++ {
		in := genGraph(rng)
		if !run(in).Accepted() {
			t.Fatalf("generated graph rejected: %q", in)
		}
	}
}

// TestTokenizeStaysInInventory: Tokenize must only report inventory
// names, and must see planted keywords and edge operators.
func TestTokenizeStaysInInventory(t *testing.T) {
	names := Inventory.Names()
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 200; i++ {
		in := genGraph(rng)
		got := Tokenize([]byte(in))
		if len(got) == 0 {
			t.Fatalf("no tokens in %q", in)
		}
		for tok := range got {
			if !names[tok] {
				t.Fatalf("tokenizer reported %q, not in inventory (input %q)", tok, in)
			}
		}
	}
	got := Tokenize([]byte("digraph g { a -> b [x=1]; }"))
	for _, want := range []string{"digraph", "->", "{", "}", "[", "]", "=", ";", "id", "number"} {
		if !got[want] {
			t.Errorf("Tokenize missed %q: %v", want, got)
		}
	}
}
