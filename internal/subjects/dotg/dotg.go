// Package dotg is a Graphviz DOT subset parser subject:
//
//	graph   := ["strict"] ("graph" | "digraph") [id] "{" stmt* "}"
//	stmt    := ("node" | "edge") attrs [";"]
//	         | id (edgeop id)* [attrs] [";"]
//	attrs   := "[" [id "=" id {"," id "=" id}] "]"
//	edgeop  := "->" in a digraph, "--" in a graph
//	id      := (letter|"_") (letter|digit|"_")* | digit+
//
// The lexer runs interleaved with the parser, tinyC-style, and
// recognizes the five keywords by wrapped strcmp over the accumulated
// word (§7.2) — which is what exposes "strict", "graph", "digraph",
// "node" and "edge" to the fuzzer as whole-token substitutions. Using
// the undirected edge operator in a digraph (or vice versa) is an
// error, as in real DOT. Parsing aborts with a non-zero exit on the
// first malformed token (§5.1 setup).
package dotg

import (
	"pfuzzer/internal/subject"
	"pfuzzer/internal/taint"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

const (
	blkStart = iota
	blkLexSym
	blkLexArrow
	blkLexDash2
	blkLexNum
	blkLexWord
	blkLexID
	blkKwStrict
	blkKwGraph
	blkKwDigraph
	blkKwNode
	blkKwEdge
	blkGraphName
	blkBody
	blkNodeStmt
	blkEdgeHop
	blkDefaults
	blkAttrs
	blkAttrPair
	blkAttrComma
	blkAttrsClose
	blkSemi
	blkAccept
	blkRejectTok
	blkRejectHead
	blkRejectStmt
	blkRejectEdgeOp
	blkRejectAttr
	blkRejectTrail
	numBlocks
)

// Program is the dotg subject.
type Program struct{}

// New returns the dotg subject.
func New() *Program { return &Program{} }

// Name implements subject.Program.
func (*Program) Name() string { return "dotg" }

// Blocks implements subject.Program.
func (*Program) Blocks() int { return numBlocks }

// Run parses the whole input as one graph.
func (*Program) Run(t *trace.Tracer) int {
	p := &parser{t: t}
	t.Block(blkStart)
	p.next()
	if p.tok == tokStrict {
		t.Block(blkKwStrict)
		p.next()
	}
	directed := false
	switch p.tok {
	case tokDigraph:
		t.Block(blkKwDigraph)
		directed = true
		p.next()
	case tokGraph:
		t.Block(blkKwGraph)
		p.next()
	default:
		t.Block(blkRejectHead)
		return subject.ExitReject
	}
	if p.tok == tokID || p.tok == tokNum {
		t.Block(blkGraphName)
		p.next()
	}
	if p.tok != tokLbrace {
		t.Block(blkRejectHead)
		return subject.ExitReject
	}
	p.next()
	for p.tok != tokRbrace {
		if p.tok == tokEOF || p.tok == tokErr {
			t.Block(blkRejectStmt)
			return subject.ExitReject
		}
		t.Block(blkBody)
		if !p.stmt(directed) {
			return subject.ExitReject
		}
	}
	p.next() // consume '}'; at EOF this probes ahead for the fuzzer
	if p.tok != tokEOF {
		t.Block(blkRejectTrail)
		return subject.ExitReject
	}
	t.Block(blkAccept)
	return subject.ExitOK
}

// Token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokErr
	tokStrict
	tokGraph
	tokDigraph
	tokNode
	tokEdge
	tokID
	tokNum
	tokLbrace
	tokRbrace
	tokLbracket
	tokRbracket
	tokEq
	tokSemi
	tokComma
	tokArrow // ->
	tokDash2 // --
)

type parser struct {
	t   *trace.Tracer
	pos int
	tok tokKind
}

// next is the interleaved lexer.
func (p *parser) next() {
	// Skip whitespace (isspace-style table lookup, untracked).
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			p.tok = tokEOF
			return
		}
		//pdlint:ignore subjecttrace -- whitespace skip models the C original's isspace() table lookup, an implicit flow the shim cannot observe
		if c.B != ' ' && c.B != '\t' && c.B != '\n' && c.B != '\r' {
			break
		}
		p.pos++
	}
	c, _ := p.t.At(p.pos)
	switch {
	case p.t.CharEq(c, '{'):
		p.sym(tokLbrace)
	case p.t.CharEq(c, '}'):
		p.sym(tokRbrace)
	case p.t.CharEq(c, '['):
		p.sym(tokLbracket)
	case p.t.CharEq(c, ']'):
		p.sym(tokRbracket)
	case p.t.CharEq(c, '='):
		p.sym(tokEq)
	case p.t.CharEq(c, ';'):
		p.sym(tokSemi)
	case p.t.CharEq(c, ','):
		p.sym(tokComma)
	case p.t.CharEq(c, '-'):
		p.pos++
		c, ok := p.t.At(p.pos)
		if !ok {
			p.t.Block(blkRejectTok)
			p.tok = tokErr
			return
		}
		if p.t.CharEq(c, '>') {
			p.t.Block(blkLexArrow)
			p.pos++
			p.tok = tokArrow
			return
		}
		if p.t.CharEq(c, '-') {
			p.t.Block(blkLexDash2)
			p.pos++
			p.tok = tokDash2
			return
		}
		p.t.Block(blkRejectTok)
		p.tok = tokErr
	case p.t.CharRange(c, '0', '9'):
		p.t.Block(blkLexNum)
		for {
			c, ok := p.t.At(p.pos)
			if !ok || !p.t.CharRange(c, '0', '9') {
				break
			}
			p.pos++
		}
		p.tok = tokNum
	case p.t.CharRange(c, 'a', 'z') || p.t.CharRange(c, 'A', 'Z') || p.t.CharEq(c, '_'):
		p.t.Block(blkLexWord)
		var word taint.String
		word = word.Append(c)
		p.pos++
		for {
			c, ok := p.t.At(p.pos)
			if !ok {
				break
			}
			if !p.t.CharRange(c, 'a', 'z') && !p.t.CharRange(c, 'A', 'Z') &&
				!p.t.CharRange(c, '0', '9') && !p.t.CharEq(c, '_') {
				break
			}
			word = word.Append(c)
			p.pos++
		}
		p.word(word)
	default:
		p.t.Block(blkRejectTok)
		p.tok = tokErr
	}
}

func (p *parser) sym(k tokKind) {
	p.t.Block(blkLexSym)
	p.pos++
	p.tok = k
}

// word classifies an accumulated word: keyword via wrapped strcmp
// (DOT's case-insensitive keyword table, simplified to lowercase),
// else an identifier.
func (p *parser) word(w taint.String) {
	switch {
	case p.t.StrEq(w, "strict"):
		p.tok = tokStrict
	case p.t.StrEq(w, "graph"):
		p.tok = tokGraph
	case p.t.StrEq(w, "digraph"):
		p.tok = tokDigraph
	case p.t.StrEq(w, "node"):
		p.tok = tokNode
	case p.t.StrEq(w, "edge"):
		p.tok = tokEdge
	default:
		p.t.Block(blkLexID)
		p.tok = tokID
	}
}

// stmt parses one statement inside the braces.
func (p *parser) stmt(directed bool) bool {
	p.t.Enter()
	defer p.t.Leave()

	switch p.tok {
	case tokNode:
		p.t.Block(blkKwNode)
		p.t.Block(blkDefaults)
		p.next()
		if !p.attrs() {
			return false
		}
	case tokEdge:
		p.t.Block(blkKwEdge)
		p.t.Block(blkDefaults)
		p.next()
		if !p.attrs() {
			return false
		}
	case tokID, tokNum:
		p.t.Block(blkNodeStmt)
		p.next()
		for p.tok == tokArrow || p.tok == tokDash2 {
			if (directed && p.tok != tokArrow) || (!directed && p.tok != tokDash2) {
				p.t.Block(blkRejectEdgeOp)
				return false // wrong edge operator for the graph kind
			}
			p.t.Block(blkEdgeHop)
			p.next()
			if p.tok != tokID && p.tok != tokNum {
				p.t.Block(blkRejectStmt)
				return false
			}
			p.next()
		}
		if p.tok == tokLbracket {
			if !p.attrs() {
				return false
			}
		}
	default:
		p.t.Block(blkRejectStmt)
		return false
	}
	if p.tok == tokSemi {
		p.t.Block(blkSemi)
		p.next()
	}
	return true
}

// attrs parses "[" [id "=" id {"," id "=" id}] "]".
func (p *parser) attrs() bool {
	p.t.Enter()
	defer p.t.Leave()

	if p.tok != tokLbracket {
		p.t.Block(blkRejectAttr)
		return false
	}
	p.t.Block(blkAttrs)
	p.next()
	if p.tok == tokRbracket {
		p.t.Block(blkAttrsClose)
		p.next()
		return true
	}
	for {
		if p.tok != tokID && p.tok != tokNum {
			p.t.Block(blkRejectAttr)
			return false
		}
		p.next()
		if p.tok != tokEq {
			p.t.Block(blkRejectAttr)
			return false
		}
		p.next()
		if p.tok != tokID && p.tok != tokNum {
			p.t.Block(blkRejectAttr)
			return false
		}
		p.t.Block(blkAttrPair)
		p.next()
		if p.tok == tokComma {
			p.t.Block(blkAttrComma)
			p.next()
			continue
		}
		break
	}
	if p.tok != tokRbracket {
		p.t.Block(blkRejectAttr)
		return false
	}
	p.t.Block(blkAttrsClose)
	p.next()
	return true
}

// Inventory lists the dotg tokens: five keywords recognized by
// strcmp, the structural delimiters including the two edge operators,
// and the open identifier classes.
var Inventory = tokens.Inventory{
	tokens.Lit("strict"),
	tokens.Lit("graph"),
	tokens.Lit("digraph"),
	tokens.Lit("node"),
	tokens.Lit("edge"),
	tokens.Lit("{"),
	tokens.Lit("}"),
	tokens.Lit("["),
	tokens.Lit("]"),
	tokens.Lit("="),
	tokens.Lit(";"),
	tokens.Lit(","),
	tokens.Lit("->"),
	tokens.Lit("--"),
	tokens.Class("id", 1),
	tokens.Class("number", 1),
}

// Tokenize returns the inventory tokens present in input.
func Tokenize(input []byte) map[string]bool {
	out := map[string]bool{}
	kw := map[string]bool{"strict": true, "graph": true, "digraph": true,
		"node": true, "edge": true}
	i := 0
	for i < len(input) {
		b := input[i]
		switch {
		case b == '{' || b == '}' || b == '[' || b == ']' || b == '=' ||
			b == ';' || b == ',':
			out[string(b)] = true
			i++
		case b == '-':
			if i+1 < len(input) && input[i+1] == '>' {
				out["->"] = true
				i += 2
			} else if i+1 < len(input) && input[i+1] == '-' {
				out["--"] = true
				i += 2
			} else {
				i++
			}
		case b >= '0' && b <= '9':
			out["number"] = true
			for i < len(input) && input[i] >= '0' && input[i] <= '9' {
				i++
			}
		case isWordByte(b):
			j := i
			for j < len(input) && (isWordByte(input[j]) || input[j] >= '0' && input[j] <= '9') {
				j++
			}
			w := string(input[i:j])
			if kw[w] {
				out[w] = true
			} else {
				out["id"] = true
			}
			i = j
		default:
			i++
		}
	}
	return out
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b == '_'
}
