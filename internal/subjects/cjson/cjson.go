// Package cjson reproduces the paper's cJSON subject (Table 1:
// "cJSON 2018-10-25, 2,483 LoC"): an ANSI-C style JSON parser
// accepting any JSON value at top level — objects, arrays, strings,
// numbers, and the keywords true, false, and null (recognized through
// wrapped strcmp, which is what lets pFuzzer synthesize them).
//
// Like the original, the \uXXXX escape path converts UTF-16 literals
// through hex arithmetic with no direct data flow from the input
// characters; those comparisons are intentionally performed on
// untainted values, reproducing the implicit-flow taint loss the
// paper reports costs pFuzzer the UTF-16 feature set (§5.2).
package cjson

import (
	"pfuzzer/internal/subject"
	"pfuzzer/internal/taint"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

const (
	blkStart = iota
	blkValue
	blkTrue
	blkFalse
	blkNull
	blkStringOpen
	blkStringChar
	blkStringEscape
	blkEscQuote
	blkEscBackslash
	blkEscSlash
	blkEscB
	blkEscF
	blkEscN
	blkEscR
	blkEscT
	blkEscU
	blkEscU16Low
	blkEscU16Pair
	blkEscU16Done
	blkStringClose
	blkNumberMinus
	blkNumberZero
	blkNumberDigits
	blkNumberFrac
	blkNumberFracDigit
	blkNumberExp
	blkNumberExpSign
	blkNumberExpDigit
	blkArrayOpen
	blkArrayEmpty
	blkArrayItem
	blkArrayComma
	blkArrayClose
	blkObjectOpen
	blkObjectEmpty
	blkObjectKey
	blkObjectColon
	blkObjectValue
	blkObjectComma
	blkObjectClose
	blkAccept
	blkRejectValue
	blkRejectString
	blkRejectEscape
	blkRejectHex
	blkRejectNumber
	blkRejectArray
	blkRejectObject
	blkRejectTrail
	numBlocks
)

// Program is the cjson subject.
type Program struct{}

// New returns the cjson subject.
func New() *Program { return &Program{} }

// Name implements subject.Program.
func (*Program) Name() string { return "cjson" }

// Blocks implements subject.Program.
func (*Program) Blocks() int { return numBlocks }

// Run parses the input as one JSON value with optional surrounding
// whitespace.
func (*Program) Run(t *trace.Tracer) int {
	p := &parser{t: t}
	t.Block(blkStart)
	p.skipWS()
	if !p.value() {
		return subject.ExitReject
	}
	p.skipWS()
	if p.pos < t.Len() {
		t.Block(blkRejectTrail)
		return subject.ExitReject
	}
	t.At(p.pos) // EOF probe
	t.Block(blkAccept)
	return subject.ExitOK
}

type parser struct {
	t   *trace.Tracer
	pos int
}

// skipWS consumes JSON whitespace. cJSON does this with unsigned
// comparisons against ' '; model it as an (untracked) table check so
// whitespace does not flood the comparison log.
func (p *parser) skipWS() {
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			return
		}
		//pdlint:ignore subjecttrace -- whitespace skip models cJSON's isspace() table lookup, an implicit flow the shim cannot observe
		if c.B != ' ' && c.B != '\t' && c.B != '\n' && c.B != '\r' {
			return
		}
		p.pos++
	}
}

// value parses any JSON value (cJSON's parse_value).
func (p *parser) value() bool {
	p.t.Enter()
	defer p.t.Leave()
	p.t.Block(blkValue)

	c, ok := p.t.At(p.pos)
	if !ok {
		p.t.Block(blkRejectValue)
		return false
	}
	switch {
	case p.t.CharEq(c, 'n') || p.t.CharEq(c, 't') || p.t.CharEq(c, 'f'):
		return p.keyword()
	case p.t.CharEq(c, '"'):
		return p.str()
	case p.t.CharEq(c, '-') || p.t.CharRange(c, '0', '9'):
		return p.number()
	case p.t.CharEq(c, '['):
		return p.array()
	case p.t.CharEq(c, '{'):
		return p.object()
	}
	p.t.Block(blkRejectValue)
	return false
}

// keyword parses true, false or null via wrapped strcmp, the way
// cJSON uses strncmp(value, "null", 4).
func (p *parser) keyword() bool {
	p.t.Enter()
	defer p.t.Leave()

	// Like strncmp, the comparison also runs on a short prefix at the
	// end of the input: that partial comparison is what teaches the
	// fuzzer the full keyword.
	read := func(n int) taint.String {
		s := make(taint.String, 0, n)
		for i := 0; i < n; i++ {
			c, ok := p.t.At(p.pos + i)
			if !ok {
				break
			}
			s = s.Append(c)
		}
		return s
	}
	w4 := read(4)
	if p.t.StrEq(w4, "null") {
		p.t.Block(blkNull)
		p.pos += 4
		return true
	}
	if p.t.StrEq(w4, "true") {
		p.t.Block(blkTrue)
		p.pos += 4
		return true
	}
	if w5 := read(5); p.t.StrEq(w5, "false") {
		p.t.Block(blkFalse)
		p.pos += 5
		return true
	}
	p.t.Block(blkRejectValue)
	return false
}

// str parses a JSON string literal (cJSON's parse_string).
func (p *parser) str() bool {
	p.t.Enter()
	defer p.t.Leave()

	c, ok := p.t.At(p.pos)
	if !ok || !p.t.CharEq(c, '"') {
		p.t.Block(blkRejectString)
		return false
	}
	p.t.Block(blkStringOpen)
	p.pos++
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			p.t.Block(blkRejectString)
			return false // unterminated string
		}
		if p.t.CharEq(c, '"') {
			p.t.Block(blkStringClose)
			p.pos++
			return true
		}
		if p.t.CharEq(c, '\\') {
			p.t.Block(blkStringEscape)
			p.pos++
			if !p.escape() {
				return false
			}
			continue
		}
		//pdlint:ignore subjecttrace -- raw control-character guard mirrors cJSON's range check; its rejection carries no usable hint
		if c.B < 0x20 {
			p.t.Block(blkRejectString)
			return false // raw control character
		}
		p.t.Block(blkStringChar)
		p.pos++
	}
}

// escape parses one escape sequence after the backslash.
func (p *parser) escape() bool {
	c, ok := p.t.At(p.pos)
	if !ok {
		p.t.Block(blkRejectEscape)
		return false
	}
	switch {
	case p.t.CharEq(c, '"'):
		p.t.Block(blkEscQuote)
	case p.t.CharEq(c, '\\'):
		p.t.Block(blkEscBackslash)
	case p.t.CharEq(c, '/'):
		p.t.Block(blkEscSlash)
	case p.t.CharEq(c, 'b'):
		p.t.Block(blkEscB)
	case p.t.CharEq(c, 'f'):
		p.t.Block(blkEscF)
	case p.t.CharEq(c, 'n'):
		p.t.Block(blkEscN)
	case p.t.CharEq(c, 'r'):
		p.t.Block(blkEscR)
	case p.t.CharEq(c, 't'):
		p.t.Block(blkEscT)
	case p.t.CharEq(c, 'u'):
		p.t.Block(blkEscU)
		p.pos++
		return p.utf16()
	default:
		p.t.Block(blkRejectEscape)
		return false
	}
	p.pos++
	return true
}

// utf16 parses \uXXXX (and a following low-surrogate pair if needed).
// The hex digits are validated through parseHex4, which operates on
// the raw bytes with no taint flow — reproducing cJSON's implicit
// UTF-16 conversion that pFuzzer cannot see through (§5.2).
func (p *parser) utf16() bool {
	first, ok := p.parseHex4()
	if !ok {
		p.t.Block(blkRejectHex)
		return false
	}
	if first >= 0xDC00 && first <= 0xDFFF {
		p.t.Block(blkRejectHex)
		return false // lone low surrogate
	}
	if first >= 0xD800 && first <= 0xDBFF {
		p.t.Block(blkEscU16Pair)
		// Expect \uXXXX low surrogate.
		c1, ok1 := p.t.At(p.pos)
		//pdlint:ignore subjecttrace -- low-surrogate lookahead kept untraced to mirror cJSON's parse_hex4 structure (§5.2 limitation)
		if !ok1 || c1.B != '\\' {
			p.t.Block(blkRejectHex)
			return false
		}
		p.pos++
		c2, ok2 := p.t.At(p.pos)
		//pdlint:ignore subjecttrace -- low-surrogate lookahead kept untraced to mirror cJSON's parse_hex4 structure (§5.2 limitation)
		if !ok2 || c2.B != 'u' {
			p.t.Block(blkRejectHex)
			return false
		}
		p.pos++
		second, ok := p.parseHex4()
		if !ok || second < 0xDC00 || second > 0xDFFF {
			p.t.Block(blkRejectHex)
			return false
		}
		p.t.Block(blkEscU16Low)
	}
	p.t.Block(blkEscU16Done)
	return true
}

// parseHex4 consumes four hex digits using untainted comparisons
// (implicit flow: the characters are turned into a number through
// arithmetic, not copied).
func (p *parser) parseHex4() (uint32, bool) {
	var v uint32
	for i := 0; i < 4; i++ {
		c, ok := p.t.At(p.pos)
		if !ok {
			return 0, false
		}
		b := c.B // deliberate taint drop
		switch {
		case b >= '0' && b <= '9': //pdlint:ignore subjecttrace -- hex digits decode arithmetically off the deliberate taint drop above, the paper's §5.2 hex limitation
			v = v<<4 | uint32(b-'0')
		case b >= 'a' && b <= 'f': //pdlint:ignore subjecttrace -- hex digits decode arithmetically off the deliberate taint drop above, the paper's §5.2 hex limitation
			v = v<<4 | uint32(b-'a'+10)
		case b >= 'A' && b <= 'F': //pdlint:ignore subjecttrace -- hex digits decode arithmetically off the deliberate taint drop above, the paper's §5.2 hex limitation
			v = v<<4 | uint32(b-'A'+10)
		default:
			return 0, false
		}
		p.pos++
	}
	return v, true
}

// number parses a JSON number (cJSON's parse_number).
func (p *parser) number() bool {
	p.t.Enter()
	defer p.t.Leave()

	c, ok := p.t.At(p.pos)
	if !ok {
		p.t.Block(blkRejectNumber)
		return false
	}
	if p.t.CharEq(c, '-') {
		p.t.Block(blkNumberMinus)
		p.pos++
		c, ok = p.t.At(p.pos)
		if !ok {
			p.t.Block(blkRejectNumber)
			return false
		}
	}
	if !p.t.CharRange(c, '0', '9') {
		p.t.Block(blkRejectNumber)
		return false
	}
	//pdlint:ignore subjecttrace -- leading-zero branch on a char the CharRange above already traced; structural, not a new hint
	if c.B == '0' {
		p.t.Block(blkNumberZero)
		p.pos++
	} else {
		p.t.Block(blkNumberDigits)
		p.pos++
		p.digits(blkNumberDigits)
	}
	if c, ok := p.t.At(p.pos); ok && p.t.CharEq(c, '.') {
		p.t.Block(blkNumberFrac)
		p.pos++
		if !p.oneDigit() {
			p.t.Block(blkRejectNumber)
			return false
		}
		p.digits(blkNumberFracDigit)
	}
	if c, ok := p.t.At(p.pos); ok && (p.t.CharEq(c, 'e') || p.t.CharEq(c, 'E')) {
		p.t.Block(blkNumberExp)
		p.pos++
		if c, ok := p.t.At(p.pos); ok && (p.t.CharEq(c, '+') || p.t.CharEq(c, '-')) {
			p.t.Block(blkNumberExpSign)
			p.pos++
		}
		if !p.oneDigit() {
			p.t.Block(blkRejectNumber)
			return false
		}
		p.digits(blkNumberExpDigit)
	}
	return true
}

func (p *parser) oneDigit() bool {
	c, ok := p.t.At(p.pos)
	if !ok || !p.t.CharRange(c, '0', '9') {
		return false
	}
	p.pos++
	return true
}

func (p *parser) digits(blk uint32) {
	for {
		c, ok := p.t.At(p.pos)
		if !ok || !p.t.CharRange(c, '0', '9') {
			return
		}
		p.t.Block(blk)
		p.pos++
	}
}

// array parses a JSON array (cJSON's parse_array).
func (p *parser) array() bool {
	p.t.Enter()
	defer p.t.Leave()

	c, ok := p.t.At(p.pos)
	if !ok || !p.t.CharEq(c, '[') {
		p.t.Block(blkRejectArray)
		return false
	}
	p.t.Block(blkArrayOpen)
	p.pos++
	p.skipWS()
	if c, ok := p.t.At(p.pos); ok && p.t.CharEq(c, ']') {
		p.t.Block(blkArrayEmpty)
		p.pos++
		return true
	}
	for {
		p.t.Block(blkArrayItem)
		p.skipWS()
		if !p.value() {
			return false
		}
		p.skipWS()
		c, ok := p.t.At(p.pos)
		if !ok {
			p.t.Block(blkRejectArray)
			return false
		}
		if p.t.CharEq(c, ',') {
			p.t.Block(blkArrayComma)
			p.pos++
			continue
		}
		if p.t.CharEq(c, ']') {
			p.t.Block(blkArrayClose)
			p.pos++
			return true
		}
		p.t.Block(blkRejectArray)
		return false
	}
}

// object parses a JSON object (cJSON's parse_object).
func (p *parser) object() bool {
	p.t.Enter()
	defer p.t.Leave()

	c, ok := p.t.At(p.pos)
	if !ok || !p.t.CharEq(c, '{') {
		p.t.Block(blkRejectObject)
		return false
	}
	p.t.Block(blkObjectOpen)
	p.pos++
	p.skipWS()
	if c, ok := p.t.At(p.pos); ok && p.t.CharEq(c, '}') {
		p.t.Block(blkObjectEmpty)
		p.pos++
		return true
	}
	for {
		p.skipWS()
		p.t.Block(blkObjectKey)
		if !p.str() {
			return false
		}
		p.skipWS()
		c, ok := p.t.At(p.pos)
		if !ok || !p.t.CharEq(c, ':') {
			p.t.Block(blkRejectObject)
			return false
		}
		p.t.Block(blkObjectColon)
		p.pos++
		p.skipWS()
		p.t.Block(blkObjectValue)
		if !p.value() {
			return false
		}
		p.skipWS()
		c, ok = p.t.At(p.pos)
		if !ok {
			p.t.Block(blkRejectObject)
			return false
		}
		if p.t.CharEq(c, ',') {
			p.t.Block(blkObjectComma)
			p.pos++
			continue
		}
		if p.t.CharEq(c, '}') {
			p.t.Block(blkObjectClose)
			p.pos++
			return true
		}
		p.t.Block(blkRejectObject)
		return false
	}
}

// Inventory is the json token inventory of Table 2: eight length-1
// tokens, string (length 2), null and true (length 4), false
// (length 5).
var Inventory = tokens.Inventory{
	tokens.Lit("{"), tokens.Lit("}"),
	tokens.Lit("["), tokens.Lit("]"),
	tokens.Lit("-"), tokens.Lit(":"), tokens.Lit(","),
	tokens.Class("number", 1),
	tokens.Class("string", 2),
	tokens.Lit("null"), tokens.Lit("true"),
	tokens.Lit("false"),
}

// Tokenize lexes input and returns the inventory tokens present.
func Tokenize(input []byte) map[string]bool {
	out := map[string]bool{}
	i := 0
	for i < len(input) {
		b := input[i]
		switch {
		case b == '{' || b == '}' || b == '[' || b == ']' || b == ':' || b == ',':
			out[string(b)] = true
			i++
		case b == '-':
			out["-"] = true
			i++
		case b >= '0' && b <= '9':
			out["number"] = true
			i++
		case b == '"':
			out["string"] = true
			i++
			for i < len(input) && input[i] != '"' {
				if input[i] == '\\' {
					i++
				}
				i++
			}
			i++
		case hasPrefix(input[i:], "null"):
			out["null"] = true
			i += 4
		case hasPrefix(input[i:], "true"):
			out["true"] = true
			i += 4
		case hasPrefix(input[i:], "false"):
			out["false"] = true
			i += 5
		default:
			i++
		}
	}
	return out
}

func hasPrefix(b []byte, s string) bool {
	if len(b) < len(s) {
		return false
	}
	return string(b[:len(s)]) == s
}
