package cjson

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

func run(in string) *trace.Record {
	return subject.Execute(New(), []byte(in), trace.Full())
}

func TestNameAndBlocks(t *testing.T) {
	p := New()
	if p.Name() != "cjson" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Blocks() <= 0 {
		t.Errorf("Blocks = %d", p.Blocks())
	}
}

func TestAcceptReject(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{`{"nested":{"deep":[[[]]]}}`, true},
		{`[0e0, -0.5E+2]`, true},
		{`"é\t\/"`, true},
		{`{"a":1 ,"b" : null}`, true},
		{"-", false},
		{`{"a":1,}`, false},
		{`["\ud800"]`, false}, // lone high surrogate
		{`[1 2]`, false},
		{`{"a" 1}`, false},
	}
	for _, c := range cases {
		if got := run(c.in).Accepted(); got != c.ok {
			t.Errorf("%q accepted=%v, want %v", c.in, got, c.ok)
		}
	}
}

func TestTruncatedInputSignalsEOF(t *testing.T) {
	// A structurally incomplete input must record an EOF access at
	// the end: that is how the fuzzer learns to append (paper §2).
	for _, in := range []string{`{"a":`, `[1,`, `"ab`, `tru`} {
		rec := run(in)
		if rec.Accepted() {
			t.Errorf("%q unexpectedly accepted", in)
			continue
		}
		if !rec.EOFAtEnd() {
			t.Errorf("%q: no EOF access recorded at end", in)
		}
	}
}

func TestTokenizeFindsKeywords(t *testing.T) {
	got := Tokenize([]byte(`{"k":[true,false,null,1.5e2]}`))
	for _, want := range []string{"true", "false", "null", "{", "}", "[", "]", ":", ","} {
		if !got[want] {
			t.Errorf("token %q not found in %v", want, got)
		}
	}
	if Inventory.Count() != 12 {
		t.Errorf("inventory has %d tokens, Table 2 says 12", Inventory.Count())
	}
}
