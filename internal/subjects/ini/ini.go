// Package ini reproduces the paper's first subject, the inih .INI
// parser (Table 1: "inih 2018-10-25, 293 LoC"). It accepts sequences
// of lines: blank lines, ';' comments, '[section]' headers, and
// 'name = value' pairs. Parsing aborts with a non-zero exit on the
// first malformed line, the setup the paper requires of all subjects
// (§5.1).
package ini

import (
	"pfuzzer/internal/subject"
	"pfuzzer/internal/taint"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

const (
	blkStart = iota
	blkLine
	blkBlank
	blkComment
	blkCommentChar
	blkSectionOpen
	blkSectionName
	blkSectionClose
	blkSectionEnd
	blkKeyStart
	blkKeyChar
	blkEquals
	blkValueChar
	blkPairEnd
	blkAccept
	blkRejectSection
	blkRejectKey
	blkRejectNoEq
	blkEOL
	numBlocks
)

// Program is the ini subject.
type Program struct{}

// New returns the ini subject.
func New() *Program { return &Program{} }

// Name implements subject.Program.
func (*Program) Name() string { return "ini" }

// Blocks implements subject.Program.
func (*Program) Blocks() int { return numBlocks }

// Run parses the whole input as an INI file.
func (*Program) Run(t *trace.Tracer) int {
	p := &parser{t: t}
	t.Block(blkStart)
	for p.pos < t.Len() {
		t.Block(blkLine)
		if !p.line() {
			return subject.ExitReject
		}
	}
	// Probe for more input so the fuzzer knows it may extend the file.
	t.At(p.pos)
	t.Block(blkAccept)
	return subject.ExitOK
}

type parser struct {
	t   *trace.Tracer
	pos int
}

// line parses one line of any kind, consuming the trailing newline if
// present.
func (p *parser) line() bool {
	p.t.Enter()
	defer p.t.Leave()

	p.skipSpaces()
	c, ok := p.t.At(p.pos)
	if !ok {
		return true // trailing blank line at EOF
	}
	switch {
	case p.t.CharEq(c, '\n'):
		p.t.Block(blkBlank)
		p.pos++
		return true
	case p.t.CharEq(c, ';'):
		p.t.Block(blkComment)
		p.pos++
		p.skipToEOL(blkCommentChar)
		return true
	case p.t.CharEq(c, '['):
		p.t.Block(blkSectionOpen)
		p.pos++
		return p.section()
	default:
		p.t.Block(blkKeyStart)
		return p.pair(c)
	}
}

// section parses the remainder of a '[section]' header.
func (p *parser) section() bool {
	p.t.Enter()
	defer p.t.Leave()

	for {
		c, ok := p.t.At(p.pos)
		if !ok || p.t.CharEq(c, '\n') {
			p.t.Block(blkRejectSection)
			return false // unterminated section header
		}
		if p.t.CharEq(c, ']') {
			p.t.Block(blkSectionClose)
			p.pos++
			break
		}
		p.t.Block(blkSectionName)
		p.pos++
	}
	p.skipSpaces()
	c, ok := p.t.At(p.pos)
	if !ok {
		p.t.Block(blkSectionEnd)
		return true
	}
	if !p.t.CharEq(c, '\n') {
		p.t.Block(blkRejectSection)
		return false // garbage after ']'
	}
	p.t.Block(blkSectionEnd)
	p.pos++
	return true
}

// pair parses 'name = value' up to end of line. first is the already
// inspected first character of the name.
func (p *parser) pair(first taint.Char) bool {
	p.t.Enter()
	defer p.t.Leave()

	if p.t.CharEq(first, '=') {
		p.t.Block(blkRejectKey)
		return false // empty key
	}
	for {
		c, ok := p.t.At(p.pos)
		if !ok || p.t.CharEq(c, '\n') {
			p.t.Block(blkRejectNoEq)
			return false // line without '='
		}
		if p.t.CharEq(c, '=') {
			p.t.Block(blkEquals)
			p.pos++
			break
		}
		p.t.Block(blkKeyChar)
		p.pos++
	}
	p.skipToEOL(blkValueChar)
	return true
}

// skipSpaces consumes spaces and tabs without recording comparisons
// (inih uses isspace(), a table lookup — an implicit flow).
func (p *parser) skipSpaces() {
	for {
		c, ok := p.t.At(p.pos)
		//pdlint:ignore subjecttrace -- whitespace skip models inih's isspace() table lookup, an implicit flow the shim cannot observe
		if !ok || (c.B != ' ' && c.B != '\t') {
			return
		}
		p.pos++
	}
}

// skipToEOL consumes the rest of the line including the newline.
func (p *parser) skipToEOL(blk uint32) {
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			return
		}
		if p.t.CharEq(c, '\n') {
			p.t.Block(blkEOL)
			p.pos++
			return
		}
		p.t.Block(blk)
		p.pos++
	}
}

// Inventory lists the five ini tokens counted in Figure 3.
var Inventory = tokens.Inventory{
	tokens.Lit("["),
	tokens.Lit("]"),
	tokens.Lit("="),
	tokens.Lit(";"),
	tokens.Class("text", 1),
}

// Tokenize returns the inventory tokens present in input.
func Tokenize(input []byte) map[string]bool {
	out := map[string]bool{}
	for _, b := range input {
		switch {
		case b == '[':
			out["["] = true
		case b == ']':
			out["]"] = true
		case b == '=':
			out["="] = true
		case b == ';':
			out[";"] = true
		case b != ' ' && b != '\t' && b != '\n' && b != '\r':
			out["text"] = true
		}
	}
	return out
}
