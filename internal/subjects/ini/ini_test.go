package ini

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

func run(in string) *trace.Record {
	return subject.Execute(New(), []byte(in), trace.Full())
}

func TestNameAndBlocks(t *testing.T) {
	p := New()
	if p.Name() != "ini" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Blocks() <= 0 {
		t.Errorf("Blocks = %d", p.Blocks())
	}
}

func TestAcceptReject(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"[a]\n[b]\nk=v\n", true},
		{"; only a comment", true},
		{"k = spaced value\n", true},
		{"[sec]\n; c\nk=v", true},
		{"[", false},
		{"key\n", false},
		{"=v\n", false},
		{"[s]extra\n", false},
	}
	for _, c := range cases {
		if got := run(c.in).Accepted(); got != c.ok {
			t.Errorf("%q accepted=%v, want %v", c.in, got, c.ok)
		}
	}
}

func TestUnclosedSectionSignalsEOF(t *testing.T) {
	rec := run("[sect")
	if rec.Accepted() {
		t.Fatal("unclosed section accepted")
	}
	if !rec.EOFAtEnd() {
		t.Error("no EOF access recorded for the unclosed section")
	}
}

func TestTokenizeStructure(t *testing.T) {
	got := Tokenize([]byte("[s]\nk=v\n; c\n"))
	for _, want := range []string{"[", "]", "="} {
		if !got[want] {
			t.Errorf("token %q not found in %v", want, got)
		}
	}
	if Inventory.Count() == 0 {
		t.Error("empty inventory")
	}
}
