package expr

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

func run(in string) *trace.Record {
	return subject.Execute(New(), []byte(in), trace.Full())
}

func TestNameAndBlocks(t *testing.T) {
	p := New()
	if p.Name() != "expr" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Blocks() <= 0 {
		t.Errorf("Blocks = %d", p.Blocks())
	}
}

func TestAcceptReject(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"123", true},
		{"-42", true},
		{"(1+2)-3", true},
		{"((7))", true},
		{"1+-2", false},
		{"(1))", false},
		{"+", false},
		{"1(", false},
	}
	for _, c := range cases {
		if got := run(c.in).Accepted(); got != c.ok {
			t.Errorf("%q accepted=%v, want %v", c.in, got, c.ok)
		}
	}
}

func TestOpenParenSignalsEOF(t *testing.T) {
	// "(1" needs more input: the §2 walkthrough's append rule depends
	// on this EOF signal.
	rec := run("(1")
	if rec.Accepted() {
		t.Fatal("unclosed paren accepted")
	}
	if !rec.EOFAtEnd() {
		t.Error("no EOF access recorded for the unclosed paren")
	}
}

func TestRejectionRecordsComparisons(t *testing.T) {
	rec := run("1A")
	if rec.Accepted() {
		t.Fatal("\"1A\" accepted")
	}
	if len(rec.Comparisons) == 0 {
		t.Error("rejection left no comparisons for the fuzzer to correct")
	}
}

func TestTokenizeOperators(t *testing.T) {
	got := Tokenize([]byte("(1+2)-3"))
	for _, want := range []string{"(", ")", "+", "-", "number"} {
		if !got[want] {
			t.Errorf("token %q not found in %v", want, got)
		}
	}
	if Inventory.Count() == 0 {
		t.Error("empty inventory")
	}
}
