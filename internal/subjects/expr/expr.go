// Package expr is the arithmetic-expression parser used as the
// paper's running example (§2, Figure 1). It accepts inputs such as
// "1", "11", "+1", "-1", "1+1", "1-1", "(1)" and "(2-94)": optionally
// signed expressions over multi-digit numbers, '+', '-', and
// parenthesized subexpressions.
package expr

import (
	"pfuzzer/internal/subject"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

// Block IDs. Every branch arm of the parser reports one of these, so
// Blocks() is the coverage denominator.
const (
	blkStart = iota
	blkSignPlus
	blkSignMinus
	blkOperand
	blkNumber
	blkNumberMore
	blkParenOpen
	blkParenExpr
	blkParenClose
	blkOpPlus
	blkOpMinus
	blkExprLoop
	blkAccept
	blkRejectEOF
	blkRejectChar
	blkRejectTrail
	numBlocks
)

// Program is the expr subject.
type Program struct{}

// New returns the expr subject.
func New() *Program { return &Program{} }

// Name implements subject.Program.
func (*Program) Name() string { return "expr" }

// Blocks implements subject.Program.
func (*Program) Blocks() int { return numBlocks }

// Run parses the tracer's input as an arithmetic expression.
func (*Program) Run(t *trace.Tracer) int {
	p := &parser{t: t}
	p.t.Block(blkStart)
	if !p.expression() {
		return subject.ExitReject
	}
	if p.pos != t.Len() {
		// Trailing input after a complete expression.
		if _, ok := t.At(p.pos); ok {
			p.t.Block(blkRejectTrail)
			return subject.ExitReject
		}
	}
	p.t.Block(blkAccept)
	return subject.ExitOK
}

type parser struct {
	t   *trace.Tracer
	pos int
}

// expression := sign? operand (('+'|'-') operand)*
func (p *parser) expression() bool {
	p.t.Enter()
	defer p.t.Leave()

	c, ok := p.t.At(p.pos)
	if !ok {
		p.t.Block(blkRejectEOF)
		return false
	}
	if p.t.CharEq(c, '+') {
		p.t.Block(blkSignPlus)
		p.pos++
	} else if p.t.CharEq(c, '-') {
		p.t.Block(blkSignMinus)
		p.pos++
	}
	if !p.operand() {
		return false
	}
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			break // a complete expression may end here
		}
		if p.t.CharEq(c, '+') {
			p.t.Block(blkOpPlus)
			p.pos++
		} else if p.t.CharEq(c, '-') {
			p.t.Block(blkOpMinus)
			p.pos++
		} else {
			break
		}
		p.t.Block(blkExprLoop)
		if !p.operand() {
			return false
		}
	}
	return true
}

// operand := number | '(' expression ')'
func (p *parser) operand() bool {
	p.t.Enter()
	defer p.t.Leave()
	p.t.Block(blkOperand)

	c, ok := p.t.At(p.pos)
	if !ok {
		p.t.Block(blkRejectEOF)
		return false
	}
	if p.t.CharRange(c, '0', '9') {
		p.t.Block(blkNumber)
		p.pos++
		for {
			c, ok := p.t.At(p.pos)
			if !ok || !p.t.CharRange(c, '0', '9') {
				break
			}
			p.t.Block(blkNumberMore)
			p.pos++
		}
		return true
	}
	if p.t.CharEq(c, '(') {
		p.t.Block(blkParenOpen)
		p.pos++
		p.t.Block(blkParenExpr)
		if !p.expression() {
			return false
		}
		c, ok := p.t.At(p.pos)
		if !ok {
			p.t.Block(blkRejectEOF)
			return false
		}
		if !p.t.CharEq(c, ')') {
			p.t.Block(blkRejectChar)
			return false
		}
		p.t.Block(blkParenClose)
		p.pos++
		return true
	}
	p.t.Block(blkRejectChar)
	return false
}

// Inventory is the expr token inventory: brackets, operators, number.
var Inventory = tokens.Inventory{
	tokens.Lit("("),
	tokens.Lit(")"),
	tokens.Lit("+"),
	tokens.Lit("-"),
	tokens.Class("number", 1),
}

// Tokenize returns the set of inventory token names present in input.
func Tokenize(input []byte) map[string]bool {
	out := map[string]bool{}
	for _, b := range input {
		switch {
		case b == '(':
			out["("] = true
		case b == ')':
			out[")"] = true
		case b == '+':
			out["+"] = true
		case b == '-':
			out["-"] = true
		case b >= '0' && b <= '9':
			out["number"] = true
		}
	}
	return out
}
