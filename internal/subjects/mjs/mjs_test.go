package mjs

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

func run(t *testing.T, input string) *trace.Record {
	t.Helper()
	return subject.Execute(New(), []byte(input), trace.Full())
}

func accepts(t *testing.T, input string) {
	t.Helper()
	if rec := run(t, input); !rec.Accepted() {
		t.Errorf("input %q rejected, want accepted", input)
	}
}

func rejects(t *testing.T, input string) {
	t.Helper()
	if rec := run(t, input); rec.Accepted() {
		t.Errorf("input %q accepted, want rejected", input)
	}
}

func TestAcceptStatements(t *testing.T) {
	for _, in := range []string{
		"",
		";",
		"{}",
		"x = 1;",
		"var x = 1;",
		"let x = 1, y = 2;",
		"const z = 3;",
		"if (1) x = 2;",
		"if (x) { y = 1; } else { y = 2; }",
		"while (0) x = 1;",
		"do x = 1; while (0);",
		"for (;;) break;",
		"for (var i = 0; i < 3; i++) x = i;",
		"for (i = 0; i < 3; i = i + 1) { x = i; }",
		"for (var k in {a: 1, b: 2}) x = k;",
		"for (k in [1,2,3]) x = k;",
		"switch (1) { case 1: x = 1; break; default: x = 2; }",
		"switch (x) { default: ; }",
		"try { throw 1; } catch (e) { x = e; }",
		"try { x = 1; } finally { y = 2; }",
		"try { throw 1; } catch (e) {} finally {}",
		"with (x) y = 1;",
		"function f(a, b) { return a + b; } x = f(1, 2);",
		"debugger;",
		"return;", // top-level return parses as a statement here
	} {
		accepts(t, in)
	}
}

func TestAcceptExpressions(t *testing.T) {
	for _, in := range []string{
		"1;", "1.5;", "0x1f;", "1e3;", "2E-2;",
		`"str";`, `'str';`, `"a\nb";`, `'\'';`,
		"x;", "true;", "false;", "null;", "this;",
		"typeof x;", "void 0;", "delete x.a;",
		"x = y = 1;", "x += 1;", "x -= 1;", "x *= 2;", "x /= 2;", "x %= 2;",
		"x &= 1;", "x |= 1;", "x ^= 1;", "x <<= 1;", "x >>= 1;", "x >>>= 1;",
		"1 + 2 * 3;", "(1 + 2) * 3;", "1 - -2;", "!x;", "~x;", "+x;",
		"1 < 2;", "1 > 2;", "1 <= 2;", "1 >= 2;",
		"1 == 2;", "1 != 2;", "1 === 2;", "1 !== 2;",
		"1 & 2;", "1 | 2;", "1 ^ 2;", "1 << 2;", "1 >> 2;", "1 >>> 2;",
		"a && b;", "a || b;", "a ? b : c;",
		"++x;", "--x;", "x++;", "x--;",
		"[1, 2, 3];", "[];", "({});", // object literal needs parens as statement
		"x = {a: 1, 'b': 2, 3: 4};",
		"a.b;", "a.b.c;", "a[0];", "a['k'];",
		"f();", "f(1, 2);", "a.m(1);",
		"new F();", "new F(1, 2);", "x = new Object();",
		"x instanceof F;", "'a' in b;",
		"function g() {} g();",
		"x = function (n) { return n; };",
		"// comment\nx = 1;",
		"/* block */ x = 1;",
		"Math.floor(1.5);",
		"JSON.stringify([1, 2]);",
		"JSON.parse('[1,2]');",
		"'abc'.indexOf('b');",
		"'abc'.length;",
		"'abc'.charAt(1);",
		"print('hello');",
		"Object.keys({a: 1});",
		"String(1);", "Number('2');",
		"x = undefined;", "x = NaN;",
	} {
		accepts(t, in)
	}
}

func TestRejects(t *testing.T) {
	for _, in := range []string{
		"x", "x = 1", "1 +;", "if (", "if (1)", "if 1 x;", "while (1)",
		"do x = 1; while (1)", "{", "}", "for (;;", "var;", "var 1;",
		"let = 1;", "switch (1) {", "switch (1) { case: }", "try {}",
		"try {} catch {}", "function () {};", "function f {}",
		"x = {a};", `"unterminated`, "'", "0x;", "1.;", "1e;",
		"@;", "#;", "x ==== y;", "a.;", "a[1;", "f(1;", "new;",
		"/* unclosed", "1 === === 2;", "break", "continue",
		"switch (1) { default: ; default: ; }",
		"5 = 3;", "++1;", "1++;",
	} {
		rejects(t, in)
	}
}

func TestInterpreterTerminatesOnLoops(t *testing.T) {
	// These parse (so they are accepted) and must terminate via the
	// step budget rather than hanging — the paper's while(9) case.
	for _, in := range []string{
		"while (9) ;",
		"while (1) { x = x + 1; }",
		"do ; while (1);",
		"for (;;) ;",
		"function f() { return f(); } f();", // recursion capped
	} {
		accepts(t, in)
	}
}

func TestRuntimeComparisonsExposeBuiltins(t *testing.T) {
	// Evaluating an unknown identifier must strcmp it against the
	// builtin names, exposing "undefined", "Math", "JSON" etc. as
	// substitution candidates.
	rec := run(t, "q;")
	want := map[string]bool{"undefined": false, "NaN": false, "Math": false, "JSON": false}
	for _, c := range rec.Comparisons {
		if c.Kind == trace.CmpStrEq {
			if _, ok := want[string(c.Expected)]; ok {
				want[string(c.Expected)] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("identifier lookup did not compare against builtin %q", name)
		}
	}
}

func TestMemberComparisonsExposeMethodNames(t *testing.T) {
	rec := run(t, "''.a;")
	found := false
	for _, c := range rec.Comparisons {
		if c.Kind == trace.CmpStrEq && string(c.Expected) == "indexOf" {
			found = true
		}
	}
	if !found {
		t.Error(`string member lookup did not compare against "indexOf"`)
	}

	rec = run(t, "Math.x;")
	found = false
	for _, c := range rec.Comparisons {
		if c.Kind == trace.CmpStrEq && string(c.Expected) == "floor" {
			found = true
		}
	}
	if !found {
		t.Error(`Math member lookup did not compare against "floor"`)
	}
}

func TestKeywordChainExposesAllKeywords(t *testing.T) {
	rec := run(t, "zz;")
	seen := map[string]bool{}
	for _, c := range rec.Comparisons {
		if c.Kind == trace.CmpStrEq {
			seen[string(c.Expected)] = true
		}
	}
	for _, kw := range keywords {
		if !seen[kw.word] {
			t.Errorf("lexing an identifier did not strcmp against keyword %q", kw.word)
		}
	}
}

func TestTokenizeFindsInventoryTokens(t *testing.T) {
	got := Tokenize([]byte(`while (x instanceof F) { JSON.stringify(y); } // c`))
	for _, want := range []string{"while", "(", ")", "instanceof", "{", "}", ".", ";", "identifier", "stringify", "JSON", "//"} {
		if !got[want] {
			t.Errorf("Tokenize missed %q in %v", want, got)
		}
	}
	if got["c"] {
		t.Error("comment body leaked into tokens")
	}
}

func TestInventoryCountsMatchTable4(t *testing.T) {
	want := map[int]int{1: 27, 2: 24, 3: 13, 4: 10, 5: 9, 6: 7, 7: 3, 8: 3, 9: 2, 10: 1}
	for n, count := range want {
		if got := Inventory.CountLen(n); got != count {
			t.Errorf("length %d: inventory has %d tokens, Table 4 says %d", n, got, count)
		}
	}
	if got := Inventory.Count(); got != 99 {
		t.Errorf("total inventory = %d, want 99", got)
	}
}

// TestExecutionEffects checks a few end-to-end semantics by having
// programs that would diverge throw under the wrong semantics.
func TestExecutionEffects(t *testing.T) {
	// If semantics were wrong these would still be accepted (execution
	// cannot reject), so check coverage-visible behaviour instead:
	// the throw block must be hit only when the condition is true.
	recThrow := run(t, "if (1 < 2) { x = 1; } else { throw 'bad'; }")
	if !recThrow.Accepted() {
		t.Fatal("program rejected")
	}
	hitThrow := false
	for id := range recThrow.BlockFirst {
		if id == blkEThrow {
			hitThrow = true
		}
	}
	if hitThrow {
		t.Error("else branch executed although condition was true")
	}

	recCatch := run(t, "try { undefinedFn(); } catch (e) { x = e; }")
	if !recCatch.Accepted() {
		t.Fatal("try/catch program rejected")
	}
	if _, ok := recCatch.BlockFirst[blkECatch]; !ok {
		t.Error("calling a non-function did not reach the catch block")
	}
}
