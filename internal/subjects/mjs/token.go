package mjs

// tokKind enumerates mjs token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokErr

	// Literals and names.
	tokNumber
	tokString
	tokIdent

	// Punctuation, length 1.
	tokLbrace
	tokRbrace
	tokLparen
	tokRparen
	tokLbracket
	tokRbracket
	tokSemi
	tokComma
	tokDot
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokLess
	tokGreater
	tokAssign
	tokAmp
	tokPipe
	tokCaret
	tokNot
	tokTilde
	tokQuestion
	tokColon

	// Punctuation, length 2.
	tokEq   // ==
	tokNe   // !=
	tokLe   // <=
	tokGe   // >=
	tokAddA // +=
	tokSubA // -=
	tokMulA // *=
	tokDivA // /=
	tokModA // %=
	tokAndA // &=
	tokOrA  // |=
	tokXorA // ^=
	tokShl  // <<
	tokShr  // >>
	tokLand // &&
	tokLor  // ||
	tokInc  // ++
	tokDec  // --

	// Punctuation, length 3+.
	tokSeq   // ===
	tokSne   // !==
	tokShlA  // <<=
	tokShrA  // >>=
	tokUshr  // >>>
	tokUshrA // >>>=

	// Keywords.
	tokIf
	tokIn
	tokDo
	tokFor
	tokLet
	tokNew
	tokTry
	tokVar
	tokTrue
	tokNull
	tokVoid
	tokWith
	tokElse
	tokThis
	tokCase
	tokFalse
	tokThrow
	tokWhile
	tokBreak
	tokCatch
	tokConst
	tokReturn
	tokDelete
	tokTypeof
	tokSwitch
	tokDefault
	tokFinally
	tokContinue
	tokFunction
	tokDebugger
	tokInstanceof
)

// keywords lists the reserved words in the order the lexer's strcmp
// chain tests them, mirroring mjs's is_reserved_word_token.
var keywords = []struct {
	word string
	kind tokKind
}{
	{"if", tokIf},
	{"in", tokIn},
	{"do", tokDo},
	{"for", tokFor},
	{"let", tokLet},
	{"new", tokNew},
	{"try", tokTry},
	{"var", tokVar},
	{"true", tokTrue},
	{"null", tokNull},
	{"void", tokVoid},
	{"with", tokWith},
	{"else", tokElse},
	{"this", tokThis},
	{"case", tokCase},
	{"false", tokFalse},
	{"throw", tokThrow},
	{"while", tokWhile},
	{"break", tokBreak},
	{"catch", tokCatch},
	{"const", tokConst},
	{"return", tokReturn},
	{"delete", tokDelete},
	{"typeof", tokTypeof},
	{"switch", tokSwitch},
	{"default", tokDefault},
	{"finally", tokFinally},
	{"continue", tokContinue},
	{"function", tokFunction},
	{"debugger", tokDebugger},
	{"instanceof", tokInstanceof},
}
