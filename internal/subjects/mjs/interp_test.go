package mjs

import (
	"math"
	"testing"

	"pfuzzer/internal/trace"
)

// evalProgram parses and runs src, returning the interpreter's global
// scope for inspection.
func evalProgram(t *testing.T, src string) *env {
	t.Helper()
	tr := trace.New([]byte(src), trace.Full())
	p := newParser(tr)
	prog, ok := p.program()
	if !ok {
		t.Fatalf("program %q failed to parse", src)
	}
	ip := newInterp(tr, 100000)
	ip.run(prog)
	return ip.global
}

func wantNum(t *testing.T, sc *env, name string, want float64) {
	t.Helper()
	v, ok := sc.lookup(name)
	if !ok {
		t.Fatalf("%s not defined", name)
	}
	f, isNum := v.(float64)
	if !isNum {
		t.Fatalf("%s = %#v, want number", name, v)
	}
	if f != want && !(math.IsNaN(f) && math.IsNaN(want)) {
		t.Errorf("%s = %v, want %v", name, f, want)
	}
}

func wantStr(t *testing.T, sc *env, name, want string) {
	t.Helper()
	v, _ := sc.lookup(name)
	s, isStr := v.(string)
	if !isStr || s != want {
		t.Errorf("%s = %#v, want %q", name, v, want)
	}
}

func wantBool(t *testing.T, sc *env, name string, want bool) {
	t.Helper()
	v, _ := sc.lookup(name)
	b, isBool := v.(bool)
	if !isBool || b != want {
		t.Errorf("%s = %#v, want %v", name, v, want)
	}
}

func TestArithmetic(t *testing.T) {
	sc := evalProgram(t, `
		a = 1 + 2 * 3;
		b = (1 + 2) * 3;
		c = 10 / 4;
		d = 10 % 3;
		e = -5 + +2;
		f = 2 + 3 * 4 - 6 / 2;
	`)
	wantNum(t, sc, "a", 7)
	wantNum(t, sc, "b", 9)
	wantNum(t, sc, "c", 2.5)
	wantNum(t, sc, "d", 1)
	wantNum(t, sc, "e", -3)
	wantNum(t, sc, "f", 11)
}

func TestStringsAndConcat(t *testing.T) {
	sc := evalProgram(t, `
		s = "a" + "b" + 1;
		n = "abc".length;
		i = "hello".indexOf("ll");
		c = "xyz".charAt(1);
	`)
	wantStr(t, sc, "s", "ab1")
	wantNum(t, sc, "n", 3)
	wantNum(t, sc, "i", 2)
	wantStr(t, sc, "c", "y")
}

func TestComparisonsAndEquality(t *testing.T) {
	sc := evalProgram(t, `
		a = 1 < 2;
		b = "b" > "a";
		c = 1 == "1";
		d = 1 === 1;
		e = null == undefined;
		f = null === undefined;
		g = 1 !== 2;
	`)
	wantBool(t, sc, "a", true)
	wantBool(t, sc, "b", true)
	wantBool(t, sc, "c", true)
	wantBool(t, sc, "d", true)
	wantBool(t, sc, "e", true)
	wantBool(t, sc, "f", false)
	wantBool(t, sc, "g", true)
}

func TestBitwiseAndShifts(t *testing.T) {
	sc := evalProgram(t, `
		a = 6 & 3;
		b = 6 | 3;
		c = 6 ^ 3;
		d = 1 << 4;
		e = 256 >> 4;
		f = -1 >>> 28;
		g = ~5;
	`)
	wantNum(t, sc, "a", 2)
	wantNum(t, sc, "b", 7)
	wantNum(t, sc, "c", 5)
	wantNum(t, sc, "d", 16)
	wantNum(t, sc, "e", 16)
	wantNum(t, sc, "f", 15)
	wantNum(t, sc, "g", -6)
}

func TestControlFlow(t *testing.T) {
	sc := evalProgram(t, `
		n = 0;
		for (i = 0; i < 5; i++) { n = n + i; }
		m = 0;
		while (m < 7) { m++; }
		k = 0;
		do { k = k + 2; } while (k < 5);
		b = 0;
		for (j = 0; j < 100; j++) { if (j === 3) break; b = j; }
		c = 0;
		for (q = 0; q < 5; q++) { if (q % 2 === 0) continue; c = c + q; }
	`)
	wantNum(t, sc, "n", 10)
	wantNum(t, sc, "m", 7)
	wantNum(t, sc, "k", 6)
	wantNum(t, sc, "b", 2)
	wantNum(t, sc, "c", 4)
}

func TestSwitchFallthrough(t *testing.T) {
	sc := evalProgram(t, `
		r = 0;
		switch (2) {
		case 1: r = r + 1;
		case 2: r = r + 10;
		case 3: r = r + 100; break;
		case 4: r = r + 1000;
		default: r = r + 10000;
		}
		s = 0;
		switch ("zz") { default: s = 42; }
	`)
	wantNum(t, sc, "r", 110) // matches case 2, falls through 3, breaks
	wantNum(t, sc, "s", 42)
}

func TestFunctionsAndClosures(t *testing.T) {
	sc := evalProgram(t, `
		function add(a, b) { return a + b; }
		x = add(2, 3);
		function mkAdder(n) { return function (m) { return m + n; }; }
		y = mkAdder(10)(5);
		function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
		z = fib(10);
	`)
	wantNum(t, sc, "x", 5)
	wantNum(t, sc, "y", 15)
	wantNum(t, sc, "z", 55)
}

func TestObjectsAndArrays(t *testing.T) {
	sc := evalProgram(t, `
		o = {a: 1, b: {c: 2}};
		x = o.a + o.b.c;
		o.d = 9;
		y = o.d;
		arr = [1, 2, 3];
		l = arr.length;
		arr[3] = 10;
		m = arr[3] + arr[0];
		has = "a" in o;
		del = delete o.a;
		gone = "a" in o;
	`)
	wantNum(t, sc, "x", 3)
	wantNum(t, sc, "y", 9)
	wantNum(t, sc, "l", 3)
	wantNum(t, sc, "m", 11)
	wantBool(t, sc, "has", true)
	wantBool(t, sc, "del", true)
	wantBool(t, sc, "gone", false)
}

func TestForIn(t *testing.T) {
	sc := evalProgram(t, `
		sum = "";
		for (var k in {x: 1, y: 2}) { sum = sum + k; }
		n = 0;
		for (var i in [5, 6, 7]) { n = n + 1; }
	`)
	wantStr(t, sc, "sum", "xy") // deterministic (sorted) enumeration
	wantNum(t, sc, "n", 3)
}

func TestTryCatchFinallyThrow(t *testing.T) {
	sc := evalProgram(t, `
		r = 0; f = 0;
		try { throw 42; r = 1; } catch (e) { r = e; } finally { f = 1; }
		s = 0;
		try { s = 5; } finally { s = s + 1; }
		function g() { try { return 1; } finally { sideEffect = 7; } }
		t2 = g();
	`)
	wantNum(t, sc, "r", 42)
	wantNum(t, sc, "f", 1)
	wantNum(t, sc, "s", 6)
	wantNum(t, sc, "t2", 1)
	wantNum(t, sc, "sideEffect", 7)
}

func TestTypeofVoidTernaryLogical(t *testing.T) {
	sc := evalProgram(t, `
		a = typeof 1;
		b = typeof "s";
		c = typeof undefined;
		d = typeof null;
		e = typeof {};
		f = typeof print;
		g = 1 ? "yes" : "no";
		h = 0 || "fallback";
		i = 1 && 2;
	`)
	wantStr(t, sc, "a", "number")
	wantStr(t, sc, "b", "string")
	wantStr(t, sc, "c", "undefined")
	wantStr(t, sc, "d", "object")
	wantStr(t, sc, "e", "object")
	wantStr(t, sc, "f", "function")
	wantStr(t, sc, "g", "yes")
	wantStr(t, sc, "h", "fallback")
	wantNum(t, sc, "i", 2)
}

func TestBuiltins(t *testing.T) {
	sc := evalProgram(t, `
		a = Math.floor(3.9);
		b = Math.min(4, 2);
		c = Math.max(4, 2);
		d = Math.abs(-7);
		e = JSON.stringify([1, "x", true, null]);
		f = JSON.parse("[1,2,3]")[2];
		o = JSON.parse("{\"k\": 5}");
		g = o.k;
		h = String(12);
		i = Number("3.5");
		n = NaN;
		isNan = n != n;
	`)
	wantNum(t, sc, "a", 3)
	wantNum(t, sc, "b", 2)
	wantNum(t, sc, "c", 4)
	wantNum(t, sc, "d", 7)
	wantStr(t, sc, "e", `[1,"x",true,null]`)
	wantNum(t, sc, "f", 3)
	wantNum(t, sc, "g", 5)
	wantStr(t, sc, "h", "12")
	wantNum(t, sc, "i", 3.5)
	wantBool(t, sc, "isNan", true)
}

func TestNewAndInstanceof(t *testing.T) {
	sc := evalProgram(t, `
		function Point(x, y) { this.x = x; this.y = y; }
		p = new Point(3, 4);
		a = p.x + p.y;
		b = p instanceof Point;
		function Other() {}
		c = p instanceof Other;
	`)
	wantNum(t, sc, "a", 7)
	wantBool(t, sc, "b", true)
	wantBool(t, sc, "c", false)
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	sc := evalProgram(t, `
		a = 10; a += 5; a -= 3; a *= 2; a /= 4; a %= 4;
		b = 1; b <<= 3; b >>= 1; b |= 3; b &= 6; b ^= 1;
		x = 5; pre = ++x; post = x++; final = x;
	`)
	wantNum(t, sc, "a", 2)
	wantNum(t, sc, "b", 7)
	wantNum(t, sc, "pre", 6)
	wantNum(t, sc, "post", 6)
	wantNum(t, sc, "final", 7)
}

func TestHexAndFloatLiterals(t *testing.T) {
	sc := evalProgram(t, `
		a = 0x1F;
		b = 1.5e2;
		c = 2E-2;
		d = 0.125;
	`)
	wantNum(t, sc, "a", 31)
	wantNum(t, sc, "b", 150)
	wantNum(t, sc, "c", 0.02)
	wantNum(t, sc, "d", 0.125)
}

func TestVarScoping(t *testing.T) {
	sc := evalProgram(t, `
		x = 1;
		{ let x2 = 2; x = x2; }
		function f() { var y = 10; x = x + y; }
		f();
	`)
	wantNum(t, sc, "x", 12)
}

func TestObjectKeys(t *testing.T) {
	sc := evalProgram(t, `
		ks = Object.keys({b: 1, a: 2});
		n = ks.length;
		first = ks[0];
	`)
	wantNum(t, sc, "n", 2)
	wantStr(t, sc, "first", "a") // sorted for determinism
}

func TestStepBudgetAborts(t *testing.T) {
	tr := trace.New([]byte("while (1) { x = x + 1; }"), trace.Full())
	p := newParser(tr)
	prog, ok := p.program()
	if !ok {
		t.Fatal("parse failed")
	}
	ip := newInterp(tr, 500)
	ip.run(prog) // must return, not hang
	if ip.sig != ctlAbort {
		t.Errorf("sig = %v, want ctlAbort", ip.sig)
	}
}
