package mjs

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

func nan() float64 { return math.NaN() }

// truthy implements JS ToBoolean.
func truthy(v value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case undef:
		return false
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	case *object:
		return true
	}
	return false
}

// toNumber implements JS ToNumber (simplified).
func toNumber(v value) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case bool:
		if x {
			return 1
		}
		return 0
	case nil:
		return 0
	case undef:
		return nan()
	case string:
		s := strings.TrimSpace(x)
		if s == "" {
			return 0
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f
		}
		return nan()
	case *object:
		return nan()
	}
	return nan()
}

// toInt32 implements JS ToInt32.
func toInt32(v value) int32 {
	f := toNumber(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(int64(f))
}

// numToString renders a number the way JS does for common cases.
func numToString(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// toString implements JS ToString (simplified).
func toString(v value) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return numToString(x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case nil:
		return "null"
	case undef:
		return "undefined"
	case *object:
		if x.isArray {
			parts := make([]string, len(x.elems))
			for i, e := range x.elems {
				parts[i] = toString(e)
			}
			return strings.Join(parts, ",")
		}
		if x.fn != nil || x.builtin != "" || x.bmember != nil {
			return "function"
		}
		return "[object Object]"
	}
	return ""
}

// typeOf implements the typeof operator.
func typeOf(v value) string {
	switch x := v.(type) {
	case undef:
		return "undefined"
	case nil:
		return "object" // typeof null
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case *object:
		if x.fn != nil || x.builtin != "" || x.bmember != nil {
			return "function"
		}
		return "object"
	}
	return "undefined"
}

// strictEq implements ===.
func strictEq(a, b value) bool {
	switch x := a.(type) {
	case undef:
		_, ok := b.(undef)
		return ok
	case nil:
		return b == nil
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case *object:
		y, ok := b.(*object)
		return ok && x == y
	}
	return false
}

// looseEq implements == (simplified JS abstract equality).
func looseEq(a, b value) bool {
	if strictEq(a, b) {
		return true
	}
	_, aUndef := a.(undef)
	_, bUndef := b.(undef)
	if (a == nil && bUndef) || (aUndef && b == nil) {
		return true
	}
	switch a.(type) {
	case float64, string, bool:
		switch b.(type) {
		case float64, string, bool:
			return toNumber(a) == toNumber(b)
		}
	}
	return false
}

// compare implements < > <= >= with the string/number split.
func compare(op tokKind, l, r value) bool {
	ls, lok := l.(string)
	rs, rok := r.(string)
	if lok && rok {
		switch op {
		case tokLess:
			return ls < rs
		case tokGreater:
			return ls > rs
		case tokLe:
			return ls <= rs
		case tokGe:
			return ls >= rs
		}
	}
	ln, rn := toNumber(l), toNumber(r)
	if math.IsNaN(ln) || math.IsNaN(rn) {
		return false
	}
	switch op {
	case tokLess:
		return ln < rn
	case tokGreater:
		return ln > rn
	case tokLe:
		return ln <= rn
	case tokGe:
		return ln >= rn
	}
	return false
}

// enumKeys returns the for-in enumeration keys of v, deterministic
// (sorted) so campaigns replay exactly.
func enumKeys(v value) []string {
	o, ok := v.(*object)
	if !ok {
		return nil
	}
	var keys []string
	if o.isArray {
		for i := range o.elems {
			keys = append(keys, strconv.Itoa(i))
		}
		return keys
	}
	for k := range o.props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// jsonStringify serializes v as JSON (depth-limited).
func jsonStringify(v value, depth int) string {
	if depth > 8 {
		return "null"
	}
	switch x := v.(type) {
	case nil:
		return "null"
	case undef:
		return "null"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return "null"
		}
		return numToString(x)
	case string:
		return strconv.Quote(x)
	case *object:
		if x.fn != nil || x.builtin != "" || x.bmember != nil {
			return "null"
		}
		if x.isArray {
			parts := make([]string, len(x.elems))
			for i, e := range x.elems {
				parts[i] = jsonStringify(e, depth+1)
			}
			return "[" + strings.Join(parts, ",") + "]"
		}
		var keys []string
		for k := range x.props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, strconv.Quote(k)+":"+jsonStringify(x.props[k], depth+1))
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	return "null"
}

// jsonParse parses s as JSON into mjs values. The string content is a
// runtime value, so the parse is untainted — matching the taint break
// at tokenization the paper describes.
func jsonParse(s string) (value, bool) {
	p := &jparser{s: s}
	p.ws()
	v, ok := p.value()
	if !ok {
		return nil, false
	}
	p.ws()
	if p.i != len(p.s) {
		return nil, false
	}
	return v, true
}

type jparser struct {
	s string
	i int
}

func (p *jparser) ws() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t' || p.s[p.i] == '\n' || p.s[p.i] == '\r') {
		p.i++
	}
}

func (p *jparser) value() (value, bool) {
	if p.i >= len(p.s) {
		return nil, false
	}
	switch c := p.s[p.i]; {
	case c == 'n':
		//pdlint:ignore subjecttrace -- runtime value re-parse of an accepted lexeme; the taint break at tokenization is the one the paper describes
		if strings.HasPrefix(p.s[p.i:], "null") {
			p.i += 4
			return nil, true
		}
		return nil, false
	case c == 't':
		//pdlint:ignore subjecttrace -- runtime value re-parse of an accepted lexeme; the taint break at tokenization is the one the paper describes
		if strings.HasPrefix(p.s[p.i:], "true") {
			p.i += 4
			return true, true
		}
		return nil, false
	case c == 'f':
		//pdlint:ignore subjecttrace -- runtime value re-parse of an accepted lexeme; the taint break at tokenization is the one the paper describes
		if strings.HasPrefix(p.s[p.i:], "false") {
			p.i += 5
			return false, true
		}
		return nil, false
	case c == '"':
		return p.str()
	case c == '[':
		p.i++
		arr := &object{isArray: true}
		p.ws()
		if p.i < len(p.s) && p.s[p.i] == ']' {
			p.i++
			return arr, true
		}
		for {
			p.ws()
			v, ok := p.value()
			if !ok {
				return nil, false
			}
			arr.elems = append(arr.elems, v)
			p.ws()
			if p.i >= len(p.s) {
				return nil, false
			}
			if p.s[p.i] == ',' {
				p.i++
				continue
			}
			if p.s[p.i] == ']' {
				p.i++
				return arr, true
			}
			return nil, false
		}
	case c == '{':
		p.i++
		obj := &object{props: make(map[string]value)}
		p.ws()
		if p.i < len(p.s) && p.s[p.i] == '}' {
			p.i++
			return obj, true
		}
		for {
			p.ws()
			k, ok := p.str()
			if !ok {
				return nil, false
			}
			p.ws()
			if p.i >= len(p.s) || p.s[p.i] != ':' {
				return nil, false
			}
			p.i++
			p.ws()
			v, ok := p.value()
			if !ok {
				return nil, false
			}
			obj.props[k.(string)] = v
			p.ws()
			if p.i >= len(p.s) {
				return nil, false
			}
			if p.s[p.i] == ',' {
				p.i++
				continue
			}
			if p.s[p.i] == '}' {
				p.i++
				return obj, true
			}
			return nil, false
		}
	case c == '-' || (c >= '0' && c <= '9'):
		j := p.i
		if p.s[j] == '-' {
			j++
		}
		for j < len(p.s) && (p.s[j] >= '0' && p.s[j] <= '9' || p.s[j] == '.' ||
			p.s[j] == 'e' || p.s[j] == 'E' || p.s[j] == '+' || p.s[j] == '-') {
			j++
		}
		f, err := strconv.ParseFloat(p.s[p.i:j], 64)
		if err != nil {
			return nil, false
		}
		p.i = j
		return f, true
	}
	return nil, false
}

func (p *jparser) str() (value, bool) {
	if p.i >= len(p.s) || p.s[p.i] != '"' {
		return nil, false
	}
	p.i++
	var out []byte
	for p.i < len(p.s) {
		c := p.s[p.i]
		if c == '"' {
			p.i++
			return string(out), true
		}
		if c == '\\' {
			p.i++
			if p.i >= len(p.s) {
				return nil, false
			}
			switch p.s[p.i] {
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			case 'r':
				out = append(out, '\r')
			case '"':
				out = append(out, '"')
			case '\\':
				out = append(out, '\\')
			case '/':
				out = append(out, '/')
			default:
				return nil, false
			}
			p.i++
			continue
		}
		out = append(out, c)
		p.i++
	}
	return nil, false
}
