package mjs

import (
	"strconv"
	"strings"

	"pfuzzer/internal/taint"
	"pfuzzer/internal/trace"
)

// Runtime values: nil is JS null; undef is undefined; float64, string
// and bool map directly; *object covers objects, arrays and functions.
type value interface{}

type undef struct{}

var undefined = undef{}

// object is an mjs heap object.
type object struct {
	props   map[string]value
	elems   []value // array storage
	isArray bool
	fn      *closure                            // user-defined function
	builtin string                              // "Math", "JSON", "Object", "String", "Number", "print"
	bmember func(*interp, value, []value) value // native method
	ctor    *closure                            // constructor that produced this object
}

type closure struct {
	params []string
	body   []stmt
	env    *env
}

// env is a lexical scope chain.
type env struct {
	vars   map[string]value
	parent *env
}

func newEnv(parent *env) *env {
	return &env{vars: make(map[string]value), parent: parent}
}

func (e *env) lookup(name string) (value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// set assigns to an existing binding or creates a global one (the
// paper disables semantic checks, so assignment never errors).
func (e *env) set(name string, v value) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
		if s.parent == nil {
			s.vars[name] = v
			return
		}
	}
}

func (e *env) define(name string, v value) { e.vars[name] = v }

// ctl is the control-flow signal used to unwind break/continue/
// return/throw and the step-budget abort.
type ctl int

const (
	ctlNone ctl = iota
	ctlBreak
	ctlContinue
	ctlReturn
	ctlThrow
	ctlAbort
)

// interp executes a parsed mjs program with a step budget.
type interp struct {
	t      *trace.Tracer
	steps  int
	global *env
	sig    ctl
	sigVal value
	depth  int
}

const maxCallDepth = 64

func newInterp(t *trace.Tracer, steps int) *interp {
	return &interp{t: t, steps: steps, global: newEnv(nil)}
}

func (ip *interp) tick() bool {
	ip.steps--
	if ip.steps <= 0 {
		if ip.sig != ctlAbort {
			ip.t.Block(blkEBudget)
			ip.sig = ctlAbort
		}
		return false
	}
	return true
}

// run executes the program statements, swallowing any uncaught signal
// (an uncaught throw or budget abort does not affect acceptance).
func (ip *interp) run(prog []stmt) {
	// Hoist function declarations, as JS does.
	for _, s := range prog {
		if fd, ok := s.(funcDeclStmt); ok {
			ip.global.define(fd.name.Text(), &object{fn: &closure{params: fd.fn.params, body: fd.fn.body, env: ip.global}})
		}
	}
	for _, s := range prog {
		ip.exec(s, ip.global)
		if ip.sig != ctlNone {
			return
		}
	}
}

func (ip *interp) throw(v value) {
	ip.t.Block(blkEThrow)
	ip.sig = ctlThrow
	ip.sigVal = v
}

// exec executes one statement in scope sc.
func (ip *interp) exec(s stmt, sc *env) {
	if !ip.tick() {
		return
	}
	switch st := s.(type) {
	case emptyStmt, debuggerStmt:
		// no effect
	case blockStmt:
		inner := newEnv(sc)
		for _, s := range st.list {
			ip.exec(s, inner)
			if ip.sig != ctlNone {
				return
			}
		}
	case varStmt:
		for _, d := range st.decls {
			var v value = undefined
			if d.init != nil {
				v = ip.eval(d.init, sc)
				if ip.sig != ctlNone {
					return
				}
			}
			sc.define(d.name.Text(), v)
		}
	case exprStmt:
		ip.eval(st.e, sc)
	case ifStmt:
		c := ip.eval(st.cond, sc)
		if ip.sig != ctlNone {
			return
		}
		if truthy(c) {
			ip.t.Block(blkEIfTrue)
			ip.exec(st.then, sc)
		} else if st.els != nil {
			ip.t.Block(blkEElse)
			ip.exec(st.els, sc)
		} else {
			ip.t.Block(blkEIfFalse)
		}
	case whileStmt:
		for {
			c := ip.eval(st.cond, sc)
			if ip.sig != ctlNone || !truthy(c) {
				return
			}
			ip.t.Block(blkEWhileIter)
			ip.exec(st.body, sc)
			if !ip.loopSignal() {
				return
			}
			if !ip.tick() {
				return
			}
		}
	case doStmt:
		for {
			ip.t.Block(blkEDoIter)
			ip.exec(st.body, sc)
			if !ip.loopSignal() {
				return
			}
			c := ip.eval(st.cond, sc)
			if ip.sig != ctlNone || !truthy(c) {
				return
			}
			if !ip.tick() {
				return
			}
		}
	case forStmt:
		inner := newEnv(sc)
		if st.init != nil {
			ip.exec(st.init, inner)
			if ip.sig != ctlNone {
				return
			}
		}
		for {
			if st.cond != nil {
				c := ip.eval(st.cond, inner)
				if ip.sig != ctlNone || !truthy(c) {
					return
				}
			}
			ip.t.Block(blkEForIter)
			ip.exec(st.body, inner)
			if !ip.loopSignal() {
				return
			}
			if st.step != nil {
				ip.eval(st.step, inner)
				if ip.sig != ctlNone {
					return
				}
			}
			if !ip.tick() {
				return
			}
		}
	case forInStmt:
		obj := ip.eval(st.obj, sc)
		if ip.sig != ctlNone {
			return
		}
		inner := newEnv(sc)
		name := st.name.Text()
		if st.decl {
			inner.define(name, undefined)
		}
		for _, k := range enumKeys(obj) {
			ip.t.Block(blkEForInIter)
			if st.decl {
				inner.vars[name] = k
			} else {
				inner.set(name, k)
			}
			ip.exec(st.body, inner)
			if !ip.loopSignal() {
				return
			}
			if !ip.tick() {
				return
			}
		}
	case switchStmt:
		tag := ip.eval(st.tag, sc)
		if ip.sig != ctlNone {
			return
		}
		matched := -1
		for i, cl := range st.cases {
			if cl.test == nil {
				continue
			}
			tv := ip.eval(cl.test, sc)
			if ip.sig != ctlNone {
				return
			}
			if strictEq(tag, tv) {
				ip.t.Block(blkESwitchMatch)
				matched = i
				break
			}
		}
		if matched < 0 {
			for i, cl := range st.cases {
				if cl.test == nil {
					ip.t.Block(blkESwitchDefault)
					matched = i
					break
				}
			}
		}
		if matched < 0 {
			return
		}
		for _, cl := range st.cases[matched:] {
			for _, s := range cl.body {
				ip.exec(s, sc)
				if ip.sig == ctlBreak {
					ip.t.Block(blkEBreak)
					ip.sig = ctlNone
					return
				}
				if ip.sig != ctlNone {
					return
				}
			}
		}
	case tryStmt:
		ip.exec(st.block, sc)
		if ip.sig == ctlThrow && st.catch != nil {
			ip.t.Block(blkECatch)
			ip.sig = ctlNone
			inner := newEnv(sc)
			inner.define(st.catchName.Text(), ip.sigVal)
			ip.exec(st.catch, inner)
		}
		if st.finally != nil {
			ip.t.Block(blkEFinally)
			// Preserve a pending signal across the finally block.
			sig, sigVal := ip.sig, ip.sigVal
			ip.sig, ip.sigVal = ctlNone, nil
			ip.exec(st.finally, sc)
			if ip.sig == ctlNone {
				ip.sig, ip.sigVal = sig, sigVal
			}
		}
	case withStmt:
		ip.t.Block(blkEWith)
		ip.eval(st.obj, sc)
		if ip.sig != ctlNone {
			return
		}
		ip.exec(st.body, sc)
	case breakStmt:
		ip.sig = ctlBreak
	case continueStmt:
		ip.sig = ctlContinue
	case returnStmt:
		ip.t.Block(blkEReturn)
		var v value = undefined
		if st.val != nil {
			v = ip.eval(st.val, sc)
			if ip.sig != ctlNone {
				return
			}
		}
		ip.sig = ctlReturn
		ip.sigVal = v
	case throwStmt:
		v := ip.eval(st.val, sc)
		if ip.sig != ctlNone {
			return
		}
		ip.throw(v)
	case funcDeclStmt:
		sc.define(st.name.Text(), &object{fn: &closure{params: st.fn.params, body: st.fn.body, env: sc}})
	}
}

// loopSignal consumes break/continue inside a loop body. It returns
// false when the loop must stop.
func (ip *interp) loopSignal() bool {
	switch ip.sig {
	case ctlBreak:
		ip.t.Block(blkEBreak)
		ip.sig = ctlNone
		return false
	case ctlContinue:
		ip.t.Block(blkEContinue)
		ip.sig = ctlNone
		return true
	case ctlNone:
		return true
	}
	return false // return, throw, abort propagate
}

// eval evaluates an expression; on a non-nil signal the result is
// meaningless and callers must unwind.
func (ip *interp) eval(e expr, sc *env) value {
	if !ip.tick() {
		return undefined
	}
	switch ex := e.(type) {
	case numLit:
		return ex.v
	case strLit:
		return ex.v
	case boolLit:
		return ex.v
	case nullLit:
		return nil
	case thisLit:
		// this is bound in the scope by the calling convention;
		// at top level it is undefined.
		if v, ok := sc.lookup("this"); ok {
			return v
		}
		return undefined
	case identExpr:
		return ip.lookupIdent(ex.name, sc)
	case arrayLit:
		ip.t.Block(blkEArrayLit)
		arr := &object{isArray: true}
		for _, el := range ex.elems {
			v := ip.eval(el, sc)
			if ip.sig != ctlNone {
				return undefined
			}
			arr.elems = append(arr.elems, v)
		}
		return arr
	case objectLit:
		ip.t.Block(blkEObjectLit)
		obj := &object{props: make(map[string]value)}
		for i, k := range ex.keys {
			v := ip.eval(ex.vals[i], sc)
			if ip.sig != ctlNone {
				return undefined
			}
			obj.props[k] = v
		}
		return obj
	case funcLit:
		ip.t.Block(blkEFuncVal)
		return &object{fn: &closure{params: ex.params, body: ex.body, env: sc}}
	case unaryExpr:
		return ip.evalUnary(ex, sc)
	case incDecExpr:
		return ip.evalIncDec(ex, sc)
	case binaryExpr:
		return ip.evalBinary(ex, sc)
	case logicalExpr:
		ip.t.Block(blkELogical)
		l := ip.eval(ex.l, sc)
		if ip.sig != ctlNone {
			return undefined
		}
		if ex.op == tokLand {
			if !truthy(l) {
				return l
			}
		} else if truthy(l) {
			return l
		}
		return ip.eval(ex.r, sc)
	case condExpr:
		ip.t.Block(blkETernary)
		c := ip.eval(ex.c, sc)
		if ip.sig != ctlNone {
			return undefined
		}
		if truthy(c) {
			return ip.eval(ex.t, sc)
		}
		return ip.eval(ex.f, sc)
	case assignExpr:
		return ip.evalAssign(ex, sc)
	case callExpr:
		return ip.evalCall(ex, sc)
	case newExpr:
		return ip.evalNew(ex, sc)
	case memberExpr:
		return ip.evalMember(ex, sc)
	case preEvaluated:
		return ex.v
	}
	return undefined
}

// lookupIdent resolves an identifier: scope chain first, then the
// global built-ins through wrapped strcmp over the tainted name —
// the comparisons that let the fuzzer synthesize "undefined",
// "Object" or "JSON" (paper §5.3, Table 4).
func (ip *interp) lookupIdent(name taint.String, sc *env) value {
	if v, ok := sc.lookup(name.Text()); ok {
		ip.t.Block(blkEIdentEnv)
		return v
	}
	switch {
	case ip.t.StrEq(name, "undefined"):
		ip.t.Block(blkEIdentBuiltin)
		return undefined
	case ip.t.StrEq(name, "NaN"):
		ip.t.Block(blkEIdentBuiltin)
		return nan()
	case ip.t.StrEq(name, "print"):
		ip.t.Block(blkEIdentBuiltin)
		return &object{builtin: "print"}
	case ip.t.StrEq(name, "Object"):
		ip.t.Block(blkEIdentBuiltin)
		return &object{builtin: "Object"}
	case ip.t.StrEq(name, "String"):
		ip.t.Block(blkEIdentBuiltin)
		return &object{builtin: "String"}
	case ip.t.StrEq(name, "Number"):
		ip.t.Block(blkEIdentBuiltin)
		return &object{builtin: "Number"}
	case ip.t.StrEq(name, "Math"):
		ip.t.Block(blkEIdentBuiltin)
		return &object{builtin: "Math"}
	case ip.t.StrEq(name, "JSON"):
		ip.t.Block(blkEIdentBuiltin)
		return &object{builtin: "JSON"}
	}
	// Semantic checking disabled: unknown names are undefined.
	ip.t.Block(blkEIdentUndef)
	return undefined
}

func (ip *interp) evalUnary(ex unaryExpr, sc *env) value {
	if ex.op == tokDelete {
		ip.t.Block(blkEDelete)
		if m, ok := ex.x.(memberExpr); ok {
			obj := ip.eval(m.obj, sc)
			if ip.sig != ctlNone {
				return undefined
			}
			if o, ok := obj.(*object); ok && o.props != nil {
				key := m.name.Text()
				if m.computed {
					idx := ip.eval(m.idx, sc)
					if ip.sig != ctlNone {
						return undefined
					}
					key = toString(idx)
				}
				delete(o.props, key)
			}
			return true
		}
		ip.eval(ex.x, sc)
		return true
	}
	v := ip.eval(ex.x, sc)
	if ip.sig != ctlNone {
		return undefined
	}
	switch ex.op {
	case tokNot:
		ip.t.Block(blkENot)
		return !truthy(v)
	case tokTilde:
		ip.t.Block(blkEBitwise)
		return float64(^toInt32(v))
	case tokPlus:
		ip.t.Block(blkENeg)
		return toNumber(v)
	case tokMinus:
		ip.t.Block(blkENeg)
		return -toNumber(v)
	case tokTypeof:
		ip.t.Block(blkETypeof)
		return typeOf(v)
	case tokVoid:
		ip.t.Block(blkEVoid)
		return undefined
	}
	return undefined
}

func (ip *interp) evalIncDec(ex incDecExpr, sc *env) value {
	ip.t.Block(blkEIncDec)
	old := toNumber(ip.eval(ex.target, sc))
	if ip.sig != ctlNone {
		return undefined
	}
	delta := 1.0
	if ex.op == tokDec {
		delta = -1
	}
	ip.store(ex.target, old+delta, sc)
	if ip.sig != ctlNone {
		return undefined
	}
	if ex.prefix {
		return old + delta
	}
	return old
}

func (ip *interp) evalBinary(ex binaryExpr, sc *env) value {
	l := ip.eval(ex.l, sc)
	if ip.sig != ctlNone {
		return undefined
	}
	r := ip.eval(ex.r, sc)
	if ip.sig != ctlNone {
		return undefined
	}
	switch ex.op {
	case tokPlus:
		if ls, ok := l.(string); ok {
			ip.t.Block(blkEConcat)
			return ls + toString(r)
		}
		if rs, ok := r.(string); ok {
			ip.t.Block(blkEConcat)
			return toString(l) + rs
		}
		ip.t.Block(blkEAdd)
		return toNumber(l) + toNumber(r)
	case tokMinus:
		ip.t.Block(blkEArith)
		return toNumber(l) - toNumber(r)
	case tokStar:
		ip.t.Block(blkEArith)
		return toNumber(l) * toNumber(r)
	case tokSlash:
		ip.t.Block(blkEArith)
		return toNumber(l) / toNumber(r)
	case tokPercent:
		ip.t.Block(blkEArith)
		rn := toNumber(r)
		if rn == 0 {
			return nan()
		}
		return float64(int64(toNumber(l)) % int64(rn))
	case tokLess, tokGreater, tokLe, tokGe:
		ip.t.Block(blkECompare)
		return compare(ex.op, l, r)
	case tokEq:
		ip.t.Block(blkEEq)
		return looseEq(l, r)
	case tokNe:
		ip.t.Block(blkEEq)
		return !looseEq(l, r)
	case tokSeq:
		ip.t.Block(blkEStrictEq)
		return strictEq(l, r)
	case tokSne:
		ip.t.Block(blkEStrictEq)
		return !strictEq(l, r)
	case tokAmp:
		ip.t.Block(blkEBitwise)
		return float64(toInt32(l) & toInt32(r))
	case tokPipe:
		ip.t.Block(blkEBitwise)
		return float64(toInt32(l) | toInt32(r))
	case tokCaret:
		ip.t.Block(blkEBitwise)
		return float64(toInt32(l) ^ toInt32(r))
	case tokShl:
		ip.t.Block(blkEShift)
		return float64(toInt32(l) << (uint32(toInt32(r)) & 31))
	case tokShr:
		ip.t.Block(blkEShift)
		return float64(toInt32(l) >> (uint32(toInt32(r)) & 31))
	case tokUshr:
		ip.t.Block(blkEShift)
		return float64(uint32(toInt32(l)) >> (uint32(toInt32(r)) & 31))
	case tokInstanceof:
		ip.t.Block(blkEInstanceof)
		lo, lok := l.(*object)
		ro, rok := r.(*object)
		if lok && rok && ro.fn != nil && lo.ctor == ro.fn {
			return true
		}
		return false
	case tokIn:
		ip.t.Block(blkEInOp)
		if o, ok := r.(*object); ok {
			key := toString(l)
			if o.props != nil {
				if _, has := o.props[key]; has {
					return true
				}
			}
			if o.isArray {
				if i, err := strconv.Atoi(key); err == nil && i >= 0 && i < len(o.elems) {
					return true
				}
			}
		}
		return false
	}
	return undefined
}

func (ip *interp) evalAssign(ex assignExpr, sc *env) value {
	if ex.op == tokAssign {
		ip.t.Block(blkEAssign)
		v := ip.eval(ex.val, sc)
		if ip.sig != ctlNone {
			return undefined
		}
		ip.store(ex.target, v, sc)
		return v
	}
	ip.t.Block(blkECompound)
	old := ip.eval(ex.target, sc)
	if ip.sig != ctlNone {
		return undefined
	}
	rhs := ip.eval(ex.val, sc)
	if ip.sig != ctlNone {
		return undefined
	}
	var binOp tokKind
	switch ex.op {
	case tokAddA:
		binOp = tokPlus
	case tokSubA:
		binOp = tokMinus
	case tokMulA:
		binOp = tokStar
	case tokDivA:
		binOp = tokSlash
	case tokModA:
		binOp = tokPercent
	case tokAndA:
		binOp = tokAmp
	case tokOrA:
		binOp = tokPipe
	case tokXorA:
		binOp = tokCaret
	case tokShlA:
		binOp = tokShl
	case tokShrA:
		binOp = tokShr
	case tokUshrA:
		binOp = tokUshr
	}
	v := ip.applyBin(binOp, old, rhs)
	ip.store(ex.target, v, sc)
	return v
}

// applyBin applies a binary operator to already-evaluated operands.
func (ip *interp) applyBin(op tokKind, l, r value) value {
	return ip.evalBinary(binaryExpr{op: op, l: litOf(l), r: litOf(r)}, nil)
}

// litOf wraps an evaluated value as a literal for applyBin.
func litOf(v value) expr {
	switch x := v.(type) {
	case float64:
		return numLit{v: x}
	case string:
		return strLit{v: x}
	case bool:
		return boolLit{v: x}
	case nil:
		return nullLit{}
	}
	return preEvaluated{v: v}
}

// preEvaluated smuggles an arbitrary runtime value through eval.
type preEvaluated struct{ v value }

func (preEvaluated) isExpr() {}

// store writes v into an assignable target.
func (ip *interp) store(target expr, v value, sc *env) {
	switch tg := target.(type) {
	case identExpr:
		ip.t.Block(blkEGlobalSet)
		sc.set(tg.name.Text(), v)
	case memberExpr:
		obj := ip.eval(tg.obj, sc)
		if ip.sig != ctlNone {
			return
		}
		o, ok := obj.(*object)
		if !ok {
			return // writing a property of a primitive: ignored
		}
		key := tg.name.Text()
		if tg.computed {
			idx := ip.eval(tg.idx, sc)
			if ip.sig != ctlNone {
				return
			}
			if o.isArray {
				if i, isNum := idx.(float64); isNum {
					n := int(i)
					if n >= 0 && n < 4096 {
						for len(o.elems) <= n {
							o.elems = append(o.elems, undefined)
						}
						o.elems[n] = v
						return
					}
				}
			}
			key = toString(idx)
		}
		if o.props == nil {
			o.props = make(map[string]value)
		}
		o.props[key] = v
	}
}

func (ip *interp) evalCall(ex callExpr, sc *env) value {
	ip.t.Block(blkECall)
	var this value = undefined
	var fn value
	if m, ok := ex.fn.(memberExpr); ok {
		obj := ip.eval(m.obj, sc)
		if ip.sig != ctlNone {
			return undefined
		}
		this = obj
		fn = ip.memberOf(obj, m, sc)
	} else {
		fn = ip.eval(ex.fn, sc)
	}
	if ip.sig != ctlNone {
		return undefined
	}
	args := make([]value, 0, len(ex.args))
	for _, a := range ex.args {
		v := ip.eval(a, sc)
		if ip.sig != ctlNone {
			return undefined
		}
		args = append(args, v)
	}
	return ip.call(fn, this, args)
}

// call invokes fn. Calling a non-function throws, giving try/catch
// something realistic to catch.
func (ip *interp) call(fn value, this value, args []value) value {
	o, ok := fn.(*object)
	if !ok {
		ip.t.Block(blkECallNonFunc)
		ip.throw("TypeError: not a function")
		return undefined
	}
	if o.fn != nil {
		if ip.depth >= maxCallDepth {
			ip.throw("RangeError: call stack exceeded")
			return undefined
		}
		ip.depth++
		ip.t.Enter()
		inner := newEnv(o.fn.env)
		for i, p := range o.fn.params {
			if i < len(args) {
				inner.define(p, args[i])
			} else {
				inner.define(p, undefined)
			}
		}
		inner.define("this", this)
		for _, s := range o.fn.body {
			ip.exec(s, inner)
			if ip.sig != ctlNone {
				break
			}
		}
		ip.t.Leave()
		ip.depth--
		if ip.sig == ctlReturn {
			ip.sig = ctlNone
			return ip.sigVal
		}
		return undefined
	}
	if o.builtin != "" {
		ip.t.Block(blkECallBuiltin)
		return ip.callBuiltin(o, this, args)
	}
	if o.bmember != nil {
		ip.t.Block(blkECallBuiltin)
		return o.bmember(ip, this, args)
	}
	ip.t.Block(blkECallNonFunc)
	ip.throw("TypeError: not a function")
	return undefined
}

// callBuiltin invokes a global builtin called as a function.
func (ip *interp) callBuiltin(o *object, _ value, args []value) value {
	arg := func(i int) value {
		if i < len(args) {
			return args[i]
		}
		return undefined
	}
	switch o.builtin {
	case "print":
		ip.t.Block(blkEPrint)
		// Output is discarded; the paper's harness pipes it away.
		_ = toString(arg(0))
		return undefined
	case "Object":
		ip.t.Block(blkEObjectFn)
		return &object{props: make(map[string]value)}
	case "String":
		ip.t.Block(blkEStringFn)
		return toString(arg(0))
	case "Number":
		ip.t.Block(blkENumberFn)
		return toNumber(arg(0))
	}
	ip.throw("TypeError: not callable")
	return undefined
}

func (ip *interp) evalNew(ex newExpr, sc *env) value {
	ip.t.Block(blkENew)
	fn := ip.eval(ex.fn, sc)
	if ip.sig != ctlNone {
		return undefined
	}
	args := make([]value, 0, len(ex.args))
	for _, a := range ex.args {
		v := ip.eval(a, sc)
		if ip.sig != ctlNone {
			return undefined
		}
		args = append(args, v)
	}
	o, ok := fn.(*object)
	if !ok {
		ip.throw("TypeError: not a constructor")
		return undefined
	}
	if o.fn != nil {
		this := &object{props: make(map[string]value), ctor: o.fn}
		ret := ip.call(fn, this, args)
		if ip.sig != ctlNone {
			return undefined
		}
		if ro, isObj := ret.(*object); isObj {
			return ro
		}
		return this
	}
	// new Object(), new String(x), new Number(x)
	return ip.callBuiltin(o, undefined, args)
}

func (ip *interp) evalMember(ex memberExpr, sc *env) value {
	obj := ip.eval(ex.obj, sc)
	if ip.sig != ctlNone {
		return undefined
	}
	return ip.memberOf(obj, ex, sc)
}

// memberOf resolves obj.name or obj[idx]. Built-in member names are
// matched through wrapped strcmp over the tainted spelling, exposing
// "floor", "indexOf", "stringify" and friends to the fuzzer.
func (ip *interp) memberOf(obj value, ex memberExpr, sc *env) value {
	if ex.computed {
		ip.t.Block(blkEIndexExpr)
		idx := ip.eval(ex.idx, sc)
		if ip.sig != ctlNone {
			return undefined
		}
		switch o := obj.(type) {
		case *object:
			if o.isArray {
				if f, ok := idx.(float64); ok {
					i := int(f)
					if i >= 0 && i < len(o.elems) {
						return o.elems[i]
					}
					return undefined
				}
			}
			if o.props != nil {
				if v, ok := o.props[toString(idx)]; ok {
					return v
				}
			}
			return undefined
		case string:
			if f, ok := idx.(float64); ok {
				i := int(f)
				if i >= 0 && i < len(o) {
					return string(o[i])
				}
			}
			return undefined
		}
		return undefined
	}

	name := ex.name
	switch o := obj.(type) {
	case *object:
		switch o.builtin {
		case "Math":
			ip.t.Block(blkEMemberMath)
			switch {
			case ip.t.StrEq(name, "floor"):
				ip.t.Block(blkEMathFloor)
				return bmemberObj(func(ip *interp, _ value, a []value) value {
					return float64(int64(toNumber(argAt(a, 0))))
				})
			case ip.t.StrEq(name, "min"):
				ip.t.Block(blkEMathMin)
				return bmemberObj(func(ip *interp, _ value, a []value) value {
					x, y := toNumber(argAt(a, 0)), toNumber(argAt(a, 1))
					if x < y {
						return x
					}
					return y
				})
			case ip.t.StrEq(name, "max"):
				ip.t.Block(blkEMathMax)
				return bmemberObj(func(ip *interp, _ value, a []value) value {
					x, y := toNumber(argAt(a, 0)), toNumber(argAt(a, 1))
					if x > y {
						return x
					}
					return y
				})
			case ip.t.StrEq(name, "abs"):
				ip.t.Block(blkEMathAbs)
				return bmemberObj(func(ip *interp, _ value, a []value) value {
					x := toNumber(argAt(a, 0))
					if x < 0 {
						return -x
					}
					return x
				})
			}
			return undefined
		case "JSON":
			ip.t.Block(blkEMemberJSON)
			switch {
			case ip.t.StrEq(name, "stringify"):
				ip.t.Block(blkEJSONStringify)
				return bmemberObj(func(ip *interp, _ value, a []value) value {
					return jsonStringify(argAt(a, 0), 0)
				})
			case ip.t.StrEq(name, "parse"):
				ip.t.Block(blkEJSONParse)
				return bmemberObj(func(ip *interp, _ value, a []value) value {
					v, ok := jsonParse(toString(argAt(a, 0)))
					if !ok {
						ip.throw("SyntaxError: invalid JSON")
						return undefined
					}
					return v
				})
			}
			return undefined
		case "Object":
			ip.t.Block(blkEMemberObject)
			if ip.t.StrEq(name, "keys") {
				ip.t.Block(blkEObjectKeys)
				return bmemberObj(func(ip *interp, _ value, a []value) value {
					arr := &object{isArray: true}
					for _, k := range enumKeys(argAt(a, 0)) {
						arr.elems = append(arr.elems, k)
					}
					return arr
				})
			}
			return undefined
		}
		if o.isArray {
			ip.t.Block(blkEMemberArray)
			if ip.t.StrEq(name, "length") {
				return float64(len(o.elems))
			}
			return undefined
		}
		ip.t.Block(blkEMemberObject)
		if o.props != nil {
			if v, ok := o.props[name.Text()]; ok {
				return v
			}
		}
		return undefined

	case string:
		ip.t.Block(blkEMemberString)
		switch {
		case ip.t.StrEq(name, "length"):
			ip.t.Block(blkEStrLength)
			return float64(len(o))
		case ip.t.StrEq(name, "indexOf"):
			ip.t.Block(blkEStrIndexOf)
			return bmemberObj(func(ip *interp, this value, a []value) value {
				s, _ := this.(string)
				return float64(strings.Index(s, toString(argAt(a, 0))))
			})
		case ip.t.StrEq(name, "charAt"):
			ip.t.Block(blkEStrCharAt)
			return bmemberObj(func(ip *interp, this value, a []value) value {
				s, _ := this.(string)
				i := int(toNumber(argAt(a, 0)))
				if i >= 0 && i < len(s) {
					return string(s[i])
				}
				return ""
			})
		}
		return undefined
	}
	ip.t.Block(blkEMemberUndef)
	return undefined
}

func argAt(a []value, i int) value {
	if i < len(a) {
		return a[i]
	}
	return undefined
}

// bmemberObj wraps a native method as a callable object.
func bmemberObj(fn func(*interp, value, []value) value) *object {
	return &object{bmember: fn}
}
