// Package mjs reproduces the paper's largest subject (Table 1: "mjs
// 2018-06-21, 10,920 LoC"), an embedded JavaScript engine in the
// style of Cesanta's mJS: a hand-written, interleaved lexer and
// recursive-descent parser over a rich token set (Table 4: 99 tokens
// across lengths 1–10), plus a tree-walking interpreter with the
// built-in objects whose member names appear in the paper's token
// table (Object, String, Number, Math, JSON, indexOf, stringify, …).
//
// As in the paper's setup (§5.1), semantic checking is disabled:
// undeclared identifiers evaluate to undefined rather than raising
// errors, so syntactically valid inputs are accepted regardless of
// meaning. Accepted programs are executed under a step budget;
// execution contributes coverage and runtime string comparisons (the
// built-in name lookups) but never affects acceptance.
package mjs

import (
	"pfuzzer/internal/subject"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

// Instrumented basic blocks. One ID per branch arm across lexer,
// parser and interpreter; numBlocks is the Figure 2 denominator.
const (
	// Lexer.
	blkLexErr = iota
	blkLexLineComment
	blkLexBlockComment
	blkLexNumber
	blkLexHex
	blkLexFrac
	blkLexExp
	blkLexWord
	blkLexKeyword
	blkLexIdent
	blkLexString
	blkLexEscape
	blkLexPunct

	// Parser: statements.
	blkPProgram
	blkPBlock
	blkPVar
	blkPLet
	blkPConst
	blkPDeclInit
	blkPEmpty
	blkPIf
	blkPElse
	blkPWhile
	blkPDoWhile
	blkPFor
	blkPForClassic
	blkPForIn
	blkPSwitch
	blkPCase
	blkPDefault
	blkPTry
	blkPCatch
	blkPFinally
	blkPWith
	blkPBreak
	blkPContinue
	blkPReturn
	blkPReturnVal
	blkPThrow
	blkPDebugger
	blkPFuncDecl
	blkPExprStmt

	// Parser: expressions.
	blkPAssign
	blkPCompound
	blkPTernary
	blkPLor
	blkPLand
	blkPBitor
	blkPBitxor
	blkPBitand
	blkPEqOp
	blkPRelOp
	blkPInstanceof
	blkPInOp
	blkPShift
	blkPAdd
	blkPMul
	blkPUnary
	blkPPreIncDec
	blkPPostIncDec
	blkPTypeof
	blkPVoid
	blkPDelete
	blkPNew
	blkPCall
	blkPCallArg
	blkPMember
	blkPIndex
	blkPIdent
	blkPNumber
	blkPString
	blkPTrue
	blkPFalse
	blkPNull
	blkPThis
	blkPParen
	blkPArray
	blkPArrayElem
	blkPObject
	blkPObjectProp
	blkPFuncLit
	blkPParam
	blkPReject

	// Interpreter.
	blkEIfTrue
	blkEIfFalse
	blkEElse
	blkEWhileIter
	blkEDoIter
	blkEForIter
	blkEForInIter
	blkESwitchMatch
	blkESwitchDefault
	blkEBreak
	blkEContinue
	blkEReturn
	blkEThrow
	blkECatch
	blkEFinally
	blkEWith
	blkECall
	blkECallBuiltin
	blkECallNonFunc
	blkENew
	blkEAdd
	blkEConcat
	blkEArith
	blkECompare
	blkEEq
	blkEStrictEq
	blkEBitwise
	blkEShift
	blkELogical
	blkETernary
	blkEAssign
	blkECompound
	blkEIncDec
	blkETypeof
	blkEVoid
	blkEDelete
	blkEInstanceof
	blkEInOp
	blkENeg
	blkENot
	blkEIdentEnv
	blkEIdentBuiltin
	blkEIdentUndef
	blkEMemberMath
	blkEMemberJSON
	blkEMemberString
	blkEMemberArray
	blkEMemberObject
	blkEMemberUndef
	blkEIndexExpr
	blkEArrayLit
	blkEObjectLit
	blkEFuncVal
	blkEGlobalSet
	blkEBudget
	blkEPrint
	blkEMathFloor
	blkEMathMin
	blkEMathMax
	blkEMathAbs
	blkEJSONStringify
	blkEJSONParse
	blkEStrLength
	blkEStrIndexOf
	blkEStrCharAt
	blkEObjectFn
	blkEStringFn
	blkENumberFn
	blkEObjectKeys

	numBlocks
)

// defaultExecSteps bounds interpreter work per accepted input.
const defaultExecSteps = 8192

// Program is the mjs subject.
type Program struct{}

// New returns the mjs subject.
func New() *Program { return &Program{} }

// Name implements subject.Program.
func (*Program) Name() string { return "mjs" }

// Blocks implements subject.Program.
func (*Program) Blocks() int { return numBlocks }

// Run parses the input as an mjs program and, on success, executes it.
func (*Program) Run(t *trace.Tracer) int {
	p := newParser(t)
	prog, ok := p.program()
	if !ok {
		return subject.ExitReject
	}
	ip := newInterp(t, t.ExecSteps(defaultExecSteps))
	ip.run(prog)
	return subject.ExitOK
}

// Inventory is the mjs token inventory of Table 4: 27+24+13+10+9+7+
// 3+3+2+1 = 99 tokens. Where the paper prints only examples, the
// remaining members are drawn from the mjs grammar (see DESIGN.md).
var Inventory = tokens.Inventory{
	// Length 1 (27): 24 punctuation, the alternate string quote, and
	// the identifier and number classes.
	tokens.Lit("{"), tokens.Lit("}"), tokens.Lit("("), tokens.Lit(")"),
	tokens.Lit("["), tokens.Lit("]"), tokens.Lit(";"), tokens.Lit(","),
	tokens.Lit("."), tokens.Lit("+"), tokens.Lit("-"), tokens.Lit("*"),
	tokens.Lit("/"), tokens.Lit("%"), tokens.Lit("<"), tokens.Lit(">"),
	tokens.Lit("="), tokens.Lit("&"), tokens.Lit("|"), tokens.Lit("^"),
	tokens.Lit("!"), tokens.Lit("~"), tokens.Lit("?"), tokens.Lit(":"),
	tokens.Lit("'"),
	tokens.Class("identifier", 1), tokens.Class("number", 1),

	// Length 2 (24): 18 operators, 3 keywords, the string class and
	// the two comment openers.
	tokens.Lit("=="), tokens.Lit("!="), tokens.Lit("<="), tokens.Lit(">="),
	tokens.Lit("+="), tokens.Lit("-="), tokens.Lit("*="), tokens.Lit("/="),
	tokens.Lit("%="), tokens.Lit("&="), tokens.Lit("|="), tokens.Lit("^="),
	tokens.Lit("<<"), tokens.Lit(">>"), tokens.Lit("&&"), tokens.Lit("||"),
	tokens.Lit("++"), tokens.Lit("--"),
	tokens.Lit("if"), tokens.Lit("in"), tokens.Lit("do"),
	tokens.Class("string", 2),
	tokens.Lit("//"), tokens.Lit("/*"),

	// Length 3 (13).
	tokens.Lit("==="), tokens.Lit("!=="), tokens.Lit("<<="), tokens.Lit(">>="),
	tokens.Lit(">>>"),
	tokens.Lit("for"), tokens.Lit("let"), tokens.Lit("new"), tokens.Lit("try"),
	tokens.Lit("var"), tokens.Lit("NaN"), tokens.Lit("min"), tokens.Lit("max"),

	// Length 4 (10).
	tokens.Lit(">>>="),
	tokens.Lit("true"), tokens.Lit("null"), tokens.Lit("void"),
	tokens.Lit("with"), tokens.Lit("else"), tokens.Lit("this"),
	tokens.Lit("case"), tokens.Lit("Math"), tokens.Lit("JSON"),

	// Length 5 (9).
	tokens.Lit("false"), tokens.Lit("throw"), tokens.Lit("while"),
	tokens.Lit("break"), tokens.Lit("catch"), tokens.Lit("const"),
	tokens.Lit("floor"), tokens.Lit("parse"), tokens.Lit("print"),

	// Length 6 (7).
	tokens.Lit("return"), tokens.Lit("delete"), tokens.Lit("typeof"),
	tokens.Lit("switch"), tokens.Lit("Object"), tokens.Lit("String"),
	tokens.Lit("Number"),

	// Length 7 (3).
	tokens.Lit("default"), tokens.Lit("finally"), tokens.Lit("indexOf"),

	// Length 8 (3).
	tokens.Lit("continue"), tokens.Lit("function"), tokens.Lit("debugger"),

	// Length 9 (2).
	tokens.Lit("undefined"), tokens.Lit("stringify"),

	// Length 10 (1).
	tokens.Lit("instanceof"),
}

// wordTokens are the inventory entries recognized as whole words
// (keywords plus built-in and member names).
var wordTokens = map[string]bool{}

func init() {
	for _, t := range Inventory {
		if len(t.Name) >= 2 && isWordStart(t.Name[0]) {
			wordTokens[t.Name] = true
		}
	}
}

func isWordStart(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b == '_' || b == '$'
}

func isWordChar(b byte) bool {
	return isWordStart(b) || b >= '0' && b <= '9'
}

// Tokenize lexes input (uninstrumented) and returns the inventory
// tokens present.
func Tokenize(input []byte) map[string]bool {
	out := map[string]bool{}
	i := 0
	mark := func(s string) { out[s] = true }
	// ops lists punctuation tokens longest-first so maximal munch wins.
	ops := []string{
		">>>=", "===", "!==", "<<=", ">>=", ">>>", "==", "!=", "<=", ">=",
		"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "&&",
		"||", "++", "--", "//", "/*",
		"{", "}", "(", ")", "[", "]", ";", ",", ".", "+", "-", "*", "/",
		"%", "<", ">", "=", "&", "|", "^", "!", "~", "?", ":",
	}
	for i < len(input) {
		b := input[i]
		switch {
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			i++
		case b >= '0' && b <= '9':
			mark("number")
			for i < len(input) && (input[i] >= '0' && input[i] <= '9' ||
				input[i] == '.' || input[i] == 'x' || input[i] == 'X' ||
				input[i] >= 'a' && input[i] <= 'f' || input[i] >= 'A' && input[i] <= 'F') {
				i++
			}
		case isWordStart(b):
			j := i
			for j < len(input) && isWordChar(input[j]) {
				j++
			}
			w := string(input[i:j])
			if wordTokens[w] {
				mark(w)
			} else {
				mark("identifier")
			}
			i = j
		case b == '"' || b == '\'':
			mark("string")
			if b == '\'' {
				mark("'")
			}
			q := b
			i++
			for i < len(input) && input[i] != q {
				if input[i] == '\\' {
					i++
				}
				i++
			}
			i++
		default:
			matched := false
			for _, op := range ops {
				if len(input)-i >= len(op) && string(input[i:i+len(op)]) == op {
					mark(op)
					i += len(op)
					matched = true
					// Skip over comment bodies so their contents do
					// not count as tokens.
					if op == "//" {
						for i < len(input) && input[i] != '\n' {
							i++
						}
					}
					if op == "/*" {
						for i+1 < len(input) && !(input[i] == '*' && input[i+1] == '/') {
							i++
						}
						i += 2
					}
					break
				}
			}
			if !matched {
				i++
			}
		}
	}
	return out
}
