package mjs

import "pfuzzer/internal/taint"

// Statements. The empty interface style keeps node construction cheap;
// the interpreter dispatches with a type switch.
type stmt interface{ isStmt() }

type (
	blockStmt struct{ list []stmt }

	varStmt struct {
		kind  tokKind // tokVar, tokLet or tokConst
		decls []varDecl
	}

	emptyStmt struct{}

	ifStmt struct {
		cond expr
		then stmt
		els  stmt // nil when absent
	}

	whileStmt struct {
		cond expr
		body stmt
	}

	doStmt struct {
		body stmt
		cond expr
	}

	forStmt struct {
		init stmt // varStmt, exprStmt or nil
		cond expr // nil means true
		step expr // nil means none
		body stmt
	}

	forInStmt struct {
		decl bool // head had var/let/const
		name taint.String
		obj  expr
		body stmt
	}

	switchStmt struct {
		tag   expr
		cases []caseClause
	}

	tryStmt struct {
		block     stmt
		catchName taint.String // empty when no catch
		catch     stmt         // nil when no catch
		finally   stmt         // nil when no finally
	}

	withStmt struct {
		obj  expr
		body stmt
	}

	breakStmt    struct{}
	continueStmt struct{}

	returnStmt struct{ val expr } // val nil for bare return

	throwStmt struct{ val expr }

	debuggerStmt struct{}

	funcDeclStmt struct {
		name taint.String
		fn   *funcLit
	}

	exprStmt struct{ e expr }
)

type varDecl struct {
	name taint.String
	init expr // nil when absent
}

type caseClause struct {
	test expr // nil for default
	body []stmt
}

func (blockStmt) isStmt()    {}
func (varStmt) isStmt()      {}
func (emptyStmt) isStmt()    {}
func (ifStmt) isStmt()       {}
func (whileStmt) isStmt()    {}
func (doStmt) isStmt()       {}
func (forStmt) isStmt()      {}
func (forInStmt) isStmt()    {}
func (switchStmt) isStmt()   {}
func (tryStmt) isStmt()      {}
func (withStmt) isStmt()     {}
func (breakStmt) isStmt()    {}
func (continueStmt) isStmt() {}
func (returnStmt) isStmt()   {}
func (throwStmt) isStmt()    {}
func (debuggerStmt) isStmt() {}
func (funcDeclStmt) isStmt() {}
func (exprStmt) isStmt()     {}

// Expressions.
type expr interface{ isExpr() }

type (
	numLit  struct{ v float64 }
	strLit  struct{ v string }
	boolLit struct{ v bool }
	nullLit struct{}
	thisLit struct{}

	identExpr struct{ name taint.String }

	arrayLit struct{ elems []expr }

	objectLit struct {
		keys []string
		vals []expr
	}

	funcLit struct {
		params []string
		body   []stmt
	}

	unaryExpr struct {
		op tokKind // tokNot, tokTilde, tokPlus, tokMinus, tokTypeof, tokVoid, tokDelete
		x  expr
	}

	incDecExpr struct {
		op     tokKind // tokInc or tokDec
		target expr
		prefix bool
	}

	binaryExpr struct {
		op   tokKind
		l, r expr
	}

	logicalExpr struct {
		op   tokKind // tokLand or tokLor
		l, r expr
	}

	condExpr struct{ c, t, f expr }

	assignExpr struct {
		op     tokKind // tokAssign or a compound-assignment token
		target expr    // identExpr or memberExpr
		val    expr
	}

	callExpr struct {
		fn   expr
		args []expr
	}

	newExpr struct {
		fn   expr
		args []expr
	}

	memberExpr struct {
		obj      expr
		name     taint.String // for obj.name
		computed bool         // true for obj[idx]
		idx      expr
	}
)

func (numLit) isExpr()      {}
func (strLit) isExpr()      {}
func (boolLit) isExpr()     {}
func (nullLit) isExpr()     {}
func (thisLit) isExpr()     {}
func (identExpr) isExpr()   {}
func (arrayLit) isExpr()    {}
func (objectLit) isExpr()   {}
func (funcLit) isExpr()     {}
func (unaryExpr) isExpr()   {}
func (incDecExpr) isExpr()  {}
func (binaryExpr) isExpr()  {}
func (logicalExpr) isExpr() {}
func (condExpr) isExpr()    {}
func (assignExpr) isExpr()  {}
func (callExpr) isExpr()    {}
func (newExpr) isExpr()     {}
func (memberExpr) isExpr()  {}
