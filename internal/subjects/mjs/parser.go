package mjs

import (
	"pfuzzer/internal/taint"
	"pfuzzer/internal/trace"
)

// maxParseDepth guards the recursive-descent parser against stack
// exhaustion from deeply nested inputs.
const maxParseDepth = 200

// parser is the mjs recursive-descent parser. It pulls tokens from
// the interleaved lexer and reports reject decisions through blocks.
type parser struct {
	lx    *lexer
	t     *trace.Tracer
	depth int
	noIn  bool // suppress the 'in' operator inside a for-head init
}

func newParser(t *trace.Tracer) *parser {
	p := &parser{lx: &lexer{t: t}, t: t}
	p.lx.next()
	return p
}

func (p *parser) tok() tokKind { return p.lx.tok }

func (p *parser) next() { p.lx.next() }

// expect consumes tok k or fails.
func (p *parser) expect(k tokKind) bool {
	if p.lx.tok != k {
		p.t.Block(blkPReject)
		return false
	}
	p.next()
	return true
}

func (p *parser) enter() bool {
	p.t.Enter()
	p.depth++
	return p.depth <= maxParseDepth
}

func (p *parser) leave() {
	p.depth--
	p.t.Leave()
}

// program := stmt* EOF
func (p *parser) program() ([]stmt, bool) {
	p.t.Block(blkPProgram)
	var list []stmt
	for p.tok() != tokEOF {
		if p.tok() == tokErr {
			p.t.Block(blkPReject)
			return nil, false
		}
		s, ok := p.statement()
		if !ok {
			return nil, false
		}
		list = append(list, s)
	}
	return list, true
}

// statement parses one statement.
func (p *parser) statement() (stmt, bool) {
	if !p.enter() {
		p.leave()
		p.t.Block(blkPReject)
		return nil, false
	}
	defer p.leave()

	switch p.tok() {
	case tokLbrace:
		p.t.Block(blkPBlock)
		p.next()
		var list []stmt
		for p.tok() != tokRbrace {
			if p.tok() == tokEOF || p.tok() == tokErr {
				p.t.Block(blkPReject)
				return nil, false
			}
			s, ok := p.statement()
			if !ok {
				return nil, false
			}
			list = append(list, s)
		}
		p.next()
		return blockStmt{list: list}, true

	case tokVar, tokLet, tokConst:
		switch p.tok() {
		case tokVar:
			p.t.Block(blkPVar)
		case tokLet:
			p.t.Block(blkPLet)
		default:
			p.t.Block(blkPConst)
		}
		kind := p.tok()
		p.next()
		vs, ok := p.varDecls(kind)
		if !ok {
			return nil, false
		}
		if !p.expect(tokSemi) {
			return nil, false
		}
		return vs, true

	case tokSemi:
		p.t.Block(blkPEmpty)
		p.next()
		return emptyStmt{}, true

	case tokIf:
		p.t.Block(blkPIf)
		p.next()
		if !p.expect(tokLparen) {
			return nil, false
		}
		cond, ok := p.expression()
		if !ok {
			return nil, false
		}
		if !p.expect(tokRparen) {
			return nil, false
		}
		then, ok := p.statement()
		if !ok {
			return nil, false
		}
		var els stmt
		if p.tok() == tokElse {
			p.t.Block(blkPElse)
			p.next()
			els, ok = p.statement()
			if !ok {
				return nil, false
			}
		}
		return ifStmt{cond: cond, then: then, els: els}, true

	case tokWhile:
		p.t.Block(blkPWhile)
		p.next()
		if !p.expect(tokLparen) {
			return nil, false
		}
		cond, ok := p.expression()
		if !ok {
			return nil, false
		}
		if !p.expect(tokRparen) {
			return nil, false
		}
		body, ok := p.statement()
		if !ok {
			return nil, false
		}
		return whileStmt{cond: cond, body: body}, true

	case tokDo:
		p.t.Block(blkPDoWhile)
		p.next()
		body, ok := p.statement()
		if !ok {
			return nil, false
		}
		if !p.expect(tokWhile) || !p.expect(tokLparen) {
			return nil, false
		}
		cond, ok := p.expression()
		if !ok {
			return nil, false
		}
		if !p.expect(tokRparen) || !p.expect(tokSemi) {
			return nil, false
		}
		return doStmt{body: body, cond: cond}, true

	case tokFor:
		return p.forStatement()

	case tokSwitch:
		return p.switchStatement()

	case tokTry:
		return p.tryStatement()

	case tokWith:
		p.t.Block(blkPWith)
		p.next()
		if !p.expect(tokLparen) {
			return nil, false
		}
		obj, ok := p.expression()
		if !ok {
			return nil, false
		}
		if !p.expect(tokRparen) {
			return nil, false
		}
		body, ok := p.statement()
		if !ok {
			return nil, false
		}
		return withStmt{obj: obj, body: body}, true

	case tokBreak:
		p.t.Block(blkPBreak)
		p.next()
		if !p.expect(tokSemi) {
			return nil, false
		}
		return breakStmt{}, true

	case tokContinue:
		p.t.Block(blkPContinue)
		p.next()
		if !p.expect(tokSemi) {
			return nil, false
		}
		return continueStmt{}, true

	case tokReturn:
		p.t.Block(blkPReturn)
		p.next()
		if p.tok() == tokSemi {
			p.next()
			return returnStmt{}, true
		}
		p.t.Block(blkPReturnVal)
		v, ok := p.expression()
		if !ok {
			return nil, false
		}
		if !p.expect(tokSemi) {
			return nil, false
		}
		return returnStmt{val: v}, true

	case tokThrow:
		p.t.Block(blkPThrow)
		p.next()
		v, ok := p.expression()
		if !ok {
			return nil, false
		}
		if !p.expect(tokSemi) {
			return nil, false
		}
		return throwStmt{val: v}, true

	case tokDebugger:
		p.t.Block(blkPDebugger)
		p.next()
		if !p.expect(tokSemi) {
			return nil, false
		}
		return debuggerStmt{}, true

	case tokFunction:
		p.t.Block(blkPFuncDecl)
		p.next()
		if p.tok() != tokIdent {
			p.t.Block(blkPReject)
			return nil, false
		}
		name := p.lx.tokWord
		p.next()
		fn, ok := p.funcRest()
		if !ok {
			return nil, false
		}
		return funcDeclStmt{name: name, fn: fn}, true

	case tokEOF, tokErr:
		p.t.Block(blkPReject)
		return nil, false

	default:
		p.t.Block(blkPExprStmt)
		e, ok := p.expression()
		if !ok {
			return nil, false
		}
		if !p.expect(tokSemi) {
			return nil, false
		}
		return exprStmt{e: e}, true
	}
}

// varDecls parses "x = e, y, z = e" after var/let/const.
func (p *parser) varDecls(kind tokKind) (stmt, bool) {
	var decls []varDecl
	for {
		if p.tok() != tokIdent {
			p.t.Block(blkPReject)
			return nil, false
		}
		d := varDecl{name: p.lx.tokWord}
		p.next()
		if p.tok() == tokAssign {
			p.t.Block(blkPDeclInit)
			p.next()
			init, ok := p.assignment()
			if !ok {
				return nil, false
			}
			d.init = init
		}
		decls = append(decls, d)
		if p.tok() != tokComma {
			break
		}
		p.next()
	}
	return varStmt{kind: kind, decls: decls}, true
}

// forStatement parses both classic and for-in heads.
func (p *parser) forStatement() (stmt, bool) {
	p.t.Block(blkPFor)
	p.next()
	if !p.expect(tokLparen) {
		return nil, false
	}

	// for (var x in e) / for (x in e)
	declKind := tokKind(tokEOF)
	var name taint.String
	if p.tok() == tokVar || p.tok() == tokLet || p.tok() == tokConst {
		declKind = p.tok()
		p.next()
		if p.tok() != tokIdent {
			p.t.Block(blkPReject)
			return nil, false
		}
		name = p.lx.tokWord
		p.next()
		if p.tok() == tokIn {
			p.t.Block(blkPForIn)
			p.next()
			return p.forInRest(true, name)
		}
		// Classic for with declaration init: continue the decl list.
		var init stmt
		d := varDecl{name: name}
		if p.tok() == tokAssign {
			p.t.Block(blkPDeclInit)
			p.next()
			e, ok := p.assignment()
			if !ok {
				return nil, false
			}
			d.init = e
		}
		decls := []varDecl{d}
		for p.tok() == tokComma {
			p.next()
			if p.tok() != tokIdent {
				p.t.Block(blkPReject)
				return nil, false
			}
			d2 := varDecl{name: p.lx.tokWord}
			p.next()
			if p.tok() == tokAssign {
				p.next()
				e, ok := p.assignment()
				if !ok {
					return nil, false
				}
				d2.init = e
			}
			decls = append(decls, d2)
		}
		init = varStmt{kind: declKind, decls: decls}
		return p.forClassicRest(init)
	}

	if p.tok() == tokSemi {
		return p.forClassicRest(nil)
	}

	// Expression head: either "x in e" or an init expression. The
	// head is parsed with the 'in' operator suppressed (the NoIn
	// production) so "k in obj" is available to the for-in form.
	p.noIn = true
	e, ok := p.expression()
	p.noIn = false
	if !ok {
		return nil, false
	}
	if p.tok() == tokIn {
		id, isIdent := e.(identExpr)
		if !isIdent {
			p.t.Block(blkPReject)
			return nil, false
		}
		p.t.Block(blkPForIn)
		p.next()
		return p.forInRest(false, id.name)
	}
	return p.forClassicRest(exprStmt{e: e})
}

// forInRest parses "e) stmt" after "for (x in".
func (p *parser) forInRest(decl bool, name taint.String) (stmt, bool) {
	obj, ok := p.expression()
	if !ok {
		return nil, false
	}
	if !p.expect(tokRparen) {
		return nil, false
	}
	body, ok := p.statement()
	if !ok {
		return nil, false
	}
	return forInStmt{decl: decl, name: name, obj: obj, body: body}, true
}

// forClassicRest parses "; cond; step) stmt" after the init clause.
func (p *parser) forClassicRest(init stmt) (stmt, bool) {
	p.t.Block(blkPForClassic)
	if !p.expect(tokSemi) {
		return nil, false
	}
	var cond, step expr
	var ok bool
	if p.tok() != tokSemi {
		cond, ok = p.expression()
		if !ok {
			return nil, false
		}
	}
	if !p.expect(tokSemi) {
		return nil, false
	}
	if p.tok() != tokRparen {
		step, ok = p.expression()
		if !ok {
			return nil, false
		}
	}
	if !p.expect(tokRparen) {
		return nil, false
	}
	body, ok := p.statement()
	if !ok {
		return nil, false
	}
	return forStmt{init: init, cond: cond, step: step, body: body}, true
}

// switchStatement parses switch (e) { case e: stmts ... default: stmts }.
func (p *parser) switchStatement() (stmt, bool) {
	p.t.Block(blkPSwitch)
	p.next()
	if !p.expect(tokLparen) {
		return nil, false
	}
	tag, ok := p.expression()
	if !ok {
		return nil, false
	}
	if !p.expect(tokRparen) || !p.expect(tokLbrace) {
		return nil, false
	}
	var cases []caseClause
	sawDefault := false
	for p.tok() != tokRbrace {
		var cl caseClause
		switch p.tok() {
		case tokCase:
			p.t.Block(blkPCase)
			p.next()
			t, ok := p.expression()
			if !ok {
				return nil, false
			}
			cl.test = t
		case tokDefault:
			if sawDefault {
				p.t.Block(blkPReject)
				return nil, false
			}
			p.t.Block(blkPDefault)
			sawDefault = true
			p.next()
		default:
			p.t.Block(blkPReject)
			return nil, false
		}
		if !p.expect(tokColon) {
			return nil, false
		}
		for p.tok() != tokCase && p.tok() != tokDefault && p.tok() != tokRbrace {
			if p.tok() == tokEOF || p.tok() == tokErr {
				p.t.Block(blkPReject)
				return nil, false
			}
			s, ok := p.statement()
			if !ok {
				return nil, false
			}
			cl.body = append(cl.body, s)
		}
		cases = append(cases, cl)
	}
	p.next()
	return switchStmt{tag: tag, cases: cases}, true
}

// tryStatement parses try block catch/finally.
func (p *parser) tryStatement() (stmt, bool) {
	p.t.Block(blkPTry)
	p.next()
	if p.tok() != tokLbrace {
		p.t.Block(blkPReject)
		return nil, false
	}
	block, ok := p.statement()
	if !ok {
		return nil, false
	}
	out := tryStmt{block: block}
	if p.tok() == tokCatch {
		p.t.Block(blkPCatch)
		p.next()
		if !p.expect(tokLparen) {
			return nil, false
		}
		if p.tok() != tokIdent {
			p.t.Block(blkPReject)
			return nil, false
		}
		out.catchName = p.lx.tokWord
		p.next()
		if !p.expect(tokRparen) {
			return nil, false
		}
		if p.tok() != tokLbrace {
			p.t.Block(blkPReject)
			return nil, false
		}
		out.catch, ok = p.statement()
		if !ok {
			return nil, false
		}
	}
	if p.tok() == tokFinally {
		p.t.Block(blkPFinally)
		p.next()
		if p.tok() != tokLbrace {
			p.t.Block(blkPReject)
			return nil, false
		}
		out.finally, ok = p.statement()
		if !ok {
			return nil, false
		}
	}
	if out.catch == nil && out.finally == nil {
		p.t.Block(blkPReject)
		return nil, false // try requires catch or finally
	}
	return out, true
}

// funcRest parses "(params) { body }" after the function keyword and
// optional name.
func (p *parser) funcRest() (*funcLit, bool) {
	p.t.Block(blkPFuncLit)
	if !p.expect(tokLparen) {
		return nil, false
	}
	fn := &funcLit{}
	if p.tok() != tokRparen {
		for {
			if p.tok() != tokIdent {
				p.t.Block(blkPReject)
				return nil, false
			}
			p.t.Block(blkPParam)
			fn.params = append(fn.params, p.lx.tokWord.Text())
			p.next()
			if p.tok() != tokComma {
				break
			}
			p.next()
		}
	}
	if !p.expect(tokRparen) {
		return nil, false
	}
	if p.tok() != tokLbrace {
		p.t.Block(blkPReject)
		return nil, false
	}
	p.next()
	for p.tok() != tokRbrace {
		if p.tok() == tokEOF || p.tok() == tokErr {
			p.t.Block(blkPReject)
			return nil, false
		}
		s, ok := p.statement()
		if !ok {
			return nil, false
		}
		fn.body = append(fn.body, s)
	}
	p.next()
	return fn, true
}

// expression is the top of the expression grammar (no comma operator).
func (p *parser) expression() (expr, bool) {
	if !p.enter() {
		p.leave()
		p.t.Block(blkPReject)
		return nil, false
	}
	defer p.leave()
	return p.assignment()
}

// assignment := ternary (assignOp assignment)?
func (p *parser) assignment() (expr, bool) {
	lhs, ok := p.ternary()
	if !ok {
		return nil, false
	}
	op := p.tok()
	if op == tokAssign || op == tokAddA || op == tokSubA || op == tokMulA ||
		op == tokDivA || op == tokModA || op == tokAndA || op == tokOrA ||
		op == tokXorA || op == tokShlA || op == tokShrA || op == tokUshrA {
		if !isAssignable(lhs) {
			p.t.Block(blkPReject)
			return nil, false
		}
		if op == tokAssign {
			p.t.Block(blkPAssign)
		} else {
			p.t.Block(blkPCompound)
		}
		p.next()
		rhs, ok := p.assignment()
		if !ok {
			return nil, false
		}
		return assignExpr{op: op, target: lhs, val: rhs}, true
	}
	return lhs, true
}

func isAssignable(e expr) bool {
	switch e.(type) {
	case identExpr, memberExpr:
		return true
	}
	return false
}

// ternary := lor ('?' assignment ':' assignment)?
func (p *parser) ternary() (expr, bool) {
	c, ok := p.lor()
	if !ok {
		return nil, false
	}
	if p.tok() != tokQuestion {
		return c, true
	}
	p.t.Block(blkPTernary)
	p.next()
	t, ok := p.assignment()
	if !ok {
		return nil, false
	}
	if !p.expect(tokColon) {
		return nil, false
	}
	f, ok := p.assignment()
	if !ok {
		return nil, false
	}
	return condExpr{c: c, t: t, f: f}, true
}

// binaryLevel parses a left-associative level of binary operators.
func (p *parser) binaryLevel(blk uint32, sub func() (expr, bool), ops ...tokKind) (expr, bool) {
	l, ok := sub()
	if !ok {
		return nil, false
	}
	for {
		op := p.tok()
		found := false
		for _, o := range ops {
			if op == o {
				found = true
				break
			}
		}
		if !found {
			return l, true
		}
		p.t.Block(blk)
		p.next()
		r, ok := sub()
		if !ok {
			return nil, false
		}
		if op == tokLand || op == tokLor {
			l = logicalExpr{op: op, l: l, r: r}
		} else {
			l = binaryExpr{op: op, l: l, r: r}
		}
	}
}

func (p *parser) lor() (expr, bool) {
	return p.binaryLevel(blkPLor, p.land, tokLor)
}

func (p *parser) land() (expr, bool) {
	return p.binaryLevel(blkPLand, p.bitor, tokLand)
}

func (p *parser) bitor() (expr, bool) {
	return p.binaryLevel(blkPBitor, p.bitxor, tokPipe)
}

func (p *parser) bitxor() (expr, bool) {
	return p.binaryLevel(blkPBitxor, p.bitand, tokCaret)
}

func (p *parser) bitand() (expr, bool) {
	return p.binaryLevel(blkPBitand, p.equality, tokAmp)
}

func (p *parser) equality() (expr, bool) {
	return p.binaryLevel(blkPEqOp, p.relational, tokEq, tokNe, tokSeq, tokSne)
}

func (p *parser) relational() (expr, bool) {
	l, ok := p.shift()
	if !ok {
		return nil, false
	}
	for {
		switch p.tok() {
		case tokLess, tokGreater, tokLe, tokGe:
			p.t.Block(blkPRelOp)
			op := p.tok()
			p.next()
			r, ok := p.shift()
			if !ok {
				return nil, false
			}
			l = binaryExpr{op: op, l: l, r: r}
		case tokInstanceof:
			p.t.Block(blkPInstanceof)
			p.next()
			r, ok := p.shift()
			if !ok {
				return nil, false
			}
			l = binaryExpr{op: tokInstanceof, l: l, r: r}
		case tokIn:
			if p.noIn {
				return l, true
			}
			p.t.Block(blkPInOp)
			p.next()
			r, ok := p.shift()
			if !ok {
				return nil, false
			}
			l = binaryExpr{op: tokIn, l: l, r: r}
		default:
			return l, true
		}
	}
}

func (p *parser) shift() (expr, bool) {
	return p.binaryLevel(blkPShift, p.additive, tokShl, tokShr, tokUshr)
}

func (p *parser) additive() (expr, bool) {
	return p.binaryLevel(blkPAdd, p.multiplicative, tokPlus, tokMinus)
}

func (p *parser) multiplicative() (expr, bool) {
	return p.binaryLevel(blkPMul, p.unary, tokStar, tokSlash, tokPercent)
}

// unary := ('!'|'~'|'+'|'-'|typeof|void|delete) unary | '++'/'--' unary | postfix
func (p *parser) unary() (expr, bool) {
	if !p.enter() {
		p.leave()
		p.t.Block(blkPReject)
		return nil, false
	}
	defer p.leave()

	switch p.tok() {
	case tokNot, tokTilde, tokPlus, tokMinus:
		p.t.Block(blkPUnary)
		op := p.tok()
		p.next()
		x, ok := p.unary()
		if !ok {
			return nil, false
		}
		return unaryExpr{op: op, x: x}, true
	case tokTypeof:
		p.t.Block(blkPTypeof)
		p.next()
		x, ok := p.unary()
		if !ok {
			return nil, false
		}
		return unaryExpr{op: tokTypeof, x: x}, true
	case tokVoid:
		p.t.Block(blkPVoid)
		p.next()
		x, ok := p.unary()
		if !ok {
			return nil, false
		}
		return unaryExpr{op: tokVoid, x: x}, true
	case tokDelete:
		p.t.Block(blkPDelete)
		p.next()
		x, ok := p.unary()
		if !ok {
			return nil, false
		}
		return unaryExpr{op: tokDelete, x: x}, true
	case tokInc, tokDec:
		p.t.Block(blkPPreIncDec)
		op := p.tok()
		p.next()
		x, ok := p.unary()
		if !ok {
			return nil, false
		}
		if !isAssignable(x) {
			p.t.Block(blkPReject)
			return nil, false
		}
		return incDecExpr{op: op, target: x, prefix: true}, true
	}
	return p.postfix()
}

// postfix := callMember ('++'|'--')?
func (p *parser) postfix() (expr, bool) {
	e, ok := p.callMember(true)
	if !ok {
		return nil, false
	}
	if p.tok() == tokInc || p.tok() == tokDec {
		if !isAssignable(e) {
			p.t.Block(blkPReject)
			return nil, false
		}
		p.t.Block(blkPPostIncDec)
		op := p.tok()
		p.next()
		return incDecExpr{op: op, target: e, prefix: false}, true
	}
	return e, true
}

// callMember := primary ('.' ident | '[' expr ']' | '(' args ')')*
func (p *parser) callMember(allowCall bool) (expr, bool) {
	e, ok := p.primary()
	if !ok {
		return nil, false
	}
	for {
		switch p.tok() {
		case tokDot:
			p.t.Block(blkPMember)
			p.next()
			if p.tok() != tokIdent {
				p.t.Block(blkPReject)
				return nil, false
			}
			e = memberExpr{obj: e, name: p.lx.tokWord}
			p.next()
		case tokLbracket:
			p.t.Block(blkPIndex)
			p.next()
			idx, ok := p.expression()
			if !ok {
				return nil, false
			}
			if !p.expect(tokRbracket) {
				return nil, false
			}
			e = memberExpr{obj: e, computed: true, idx: idx}
		case tokLparen:
			if !allowCall {
				return e, true
			}
			p.t.Block(blkPCall)
			args, ok := p.arguments()
			if !ok {
				return nil, false
			}
			e = callExpr{fn: e, args: args}
		default:
			return e, true
		}
	}
}

// arguments parses "(a, b, c)".
func (p *parser) arguments() ([]expr, bool) {
	p.next() // consume '('
	var args []expr
	if p.tok() != tokRparen {
		for {
			p.t.Block(blkPCallArg)
			a, ok := p.assignment()
			if !ok {
				return nil, false
			}
			args = append(args, a)
			if p.tok() != tokComma {
				break
			}
			p.next()
		}
	}
	if !p.expect(tokRparen) {
		return nil, false
	}
	return args, true
}

// primary parses literals, identifiers, grouping, arrays, objects,
// functions and new-expressions.
func (p *parser) primary() (expr, bool) {
	switch p.tok() {
	case tokNumber:
		p.t.Block(blkPNumber)
		e := numLit{v: p.lx.tokNum}
		p.next()
		return e, true
	case tokString:
		p.t.Block(blkPString)
		e := strLit{v: p.lx.tokStr}
		p.next()
		return e, true
	case tokIdent:
		p.t.Block(blkPIdent)
		e := identExpr{name: p.lx.tokWord}
		p.next()
		return e, true
	case tokTrue:
		p.t.Block(blkPTrue)
		p.next()
		return boolLit{v: true}, true
	case tokFalse:
		p.t.Block(blkPFalse)
		p.next()
		return boolLit{v: false}, true
	case tokNull:
		p.t.Block(blkPNull)
		p.next()
		return nullLit{}, true
	case tokThis:
		p.t.Block(blkPThis)
		p.next()
		return thisLit{}, true
	case tokLparen:
		p.t.Block(blkPParen)
		p.next()
		e, ok := p.expression()
		if !ok {
			return nil, false
		}
		if !p.expect(tokRparen) {
			return nil, false
		}
		return e, true
	case tokLbracket:
		p.t.Block(blkPArray)
		p.next()
		var elems []expr
		if p.tok() != tokRbracket {
			for {
				p.t.Block(blkPArrayElem)
				e, ok := p.assignment()
				if !ok {
					return nil, false
				}
				elems = append(elems, e)
				if p.tok() != tokComma {
					break
				}
				p.next()
			}
		}
		if !p.expect(tokRbracket) {
			return nil, false
		}
		return arrayLit{elems: elems}, true
	case tokLbrace:
		return p.objectLiteral()
	case tokFunction:
		p.t.Block(blkPFuncDecl)
		p.next()
		// Function expressions may be named; the name is ignored.
		if p.tok() == tokIdent {
			p.next()
		}
		fn, ok := p.funcRest()
		if !ok {
			return nil, false
		}
		return *fn, true
	case tokNew:
		p.t.Block(blkPNew)
		p.next()
		callee, ok := p.callMember(false)
		if !ok {
			return nil, false
		}
		var args []expr
		if p.tok() == tokLparen {
			args, ok = p.arguments()
			if !ok {
				return nil, false
			}
		}
		return newExpr{fn: callee, args: args}, true
	default:
		p.t.Block(blkPReject)
		return nil, false
	}
}

// objectLiteral parses { key: value, ... } with identifier, string or
// number keys.
func (p *parser) objectLiteral() (expr, bool) {
	p.t.Block(blkPObject)
	p.next()
	var lit objectLit
	if p.tok() != tokRbrace {
		for {
			p.t.Block(blkPObjectProp)
			var key string
			switch p.tok() {
			case tokIdent:
				key = p.lx.tokWord.Text()
			case tokString:
				key = p.lx.tokStr
			case tokNumber:
				key = numToString(p.lx.tokNum)
			default:
				p.t.Block(blkPReject)
				return nil, false
			}
			p.next()
			if !p.expect(tokColon) {
				return nil, false
			}
			v, ok := p.assignment()
			if !ok {
				return nil, false
			}
			lit.keys = append(lit.keys, key)
			lit.vals = append(lit.vals, v)
			if p.tok() != tokComma {
				break
			}
			p.next()
		}
	}
	if !p.expect(tokRbrace) {
		return nil, false
	}
	return lit, true
}
