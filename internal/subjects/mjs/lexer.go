package mjs

import (
	"pfuzzer/internal/taint"
	"pfuzzer/internal/trace"
)

// lexer is the instrumented mjs scanner. It runs interleaved with the
// parser (the parser pulls one token at a time), as in the original
// mjs and as the paper describes for tokenizing subjects (§7.2).
type lexer struct {
	t   *trace.Tracer
	pos int

	tok     tokKind
	tokNum  float64
	tokStr  string       // decoded string literal value
	tokWord taint.String // tainted identifier spelling
}

func (lx *lexer) errTok() {
	lx.t.Block(blkLexErr)
	lx.tok = tokErr
}

// next scans one token.
func (lx *lexer) next() {
	lx.skipSpaceAndComments()
	if lx.tok == tokErr {
		return
	}
	c, ok := lx.t.At(lx.pos)
	if !ok {
		lx.tok = tokEOF
		return
	}
	switch {
	case lx.t.CharRange(c, '0', '9'):
		lx.number(c)
	case lx.t.CharRange(c, 'a', 'z') || lx.t.CharRange(c, 'A', 'Z') ||
		lx.t.CharEq(c, '_') || lx.t.CharEq(c, '$'):
		lx.word()
	case lx.t.CharEq(c, '"'):
		lx.str('"')
	case lx.t.CharEq(c, '\''):
		lx.str('\'')
	default:
		lx.punct(c)
	}
}

// skipSpaceAndComments consumes whitespace plus // and /* */ comments.
// Whitespace is an isspace() table lookup (untracked); comment
// delimiters are real comparisons.
func (lx *lexer) skipSpaceAndComments() {
	for {
		c, ok := lx.t.At(lx.pos)
		if !ok {
			return
		}
		//pdlint:ignore subjecttrace -- whitespace skip models mjs's isspace() table lookup, an implicit flow the shim cannot observe
		if c.B == ' ' || c.B == '\t' || c.B == '\n' || c.B == '\r' {
			lx.pos++
			continue
		}
		//pdlint:ignore subjecttrace -- comment lookahead peek; the decisive comparison on the following char is traced via CharEq below
		if c.B == '/' {
			n, ok2 := lx.t.At(lx.pos + 1)
			if ok2 && lx.t.CharEq(n, '/') {
				lx.t.Block(blkLexLineComment)
				lx.pos += 2
				for {
					c, ok := lx.t.At(lx.pos)
					if !ok {
						return
					}
					lx.pos++
					if lx.t.CharEq(c, '\n') {
						break
					}
				}
				continue
			}
			if ok2 && lx.t.CharEq(n, '*') {
				lx.t.Block(blkLexBlockComment)
				lx.pos += 2
				closed := false
				for {
					c, ok := lx.t.At(lx.pos)
					if !ok {
						break
					}
					lx.pos++
					if lx.t.CharEq(c, '*') {
						c2, ok := lx.t.At(lx.pos)
						if ok && lx.t.CharEq(c2, '/') {
							lx.pos++
							closed = true
							break
						}
					}
				}
				if !closed {
					lx.errTok()
					return
				}
				continue
			}
		}
		return
	}
}

// number scans integer, hex (0x...), fraction and exponent forms.
func (lx *lexer) number(c taint.Char) {
	lx.t.Block(blkLexNumber)
	start := lx.pos
	if lx.t.CharEq(c, '0') {
		if n, ok := lx.t.At(lx.pos + 1); ok && (lx.t.CharEq(n, 'x') || lx.t.CharEq(n, 'X')) {
			lx.t.Block(blkLexHex)
			lx.pos += 2
			digits := 0
			var v float64
			for {
				h, ok := lx.t.At(lx.pos)
				if !ok {
					break
				}
				var d int
				switch {
				case lx.t.CharRange(h, '0', '9'):
					d = int(h.B - '0')
				case lx.t.CharRange(h, 'a', 'f'):
					d = int(h.B-'a') + 10
				case lx.t.CharRange(h, 'A', 'F'):
					d = int(h.B-'A') + 10
				default:
					d = -1
				}
				if d < 0 {
					break
				}
				v = v*16 + float64(d)
				digits++
				lx.pos++
			}
			if digits == 0 {
				lx.errTok()
				return
			}
			lx.tok, lx.tokNum = tokNumber, v
			return
		}
	}
	v := 0.0
	for {
		d, ok := lx.t.At(lx.pos)
		if !ok || !lx.t.CharRange(d, '0', '9') {
			break
		}
		v = v*10 + float64(d.B-'0')
		lx.pos++
	}
	if dot, ok := lx.t.At(lx.pos); ok && lx.t.CharEq(dot, '.') {
		lx.t.Block(blkLexFrac)
		lx.pos++
		scale := 0.1
		digits := 0
		for {
			d, ok := lx.t.At(lx.pos)
			if !ok || !lx.t.CharRange(d, '0', '9') {
				break
			}
			v += float64(d.B-'0') * scale
			scale /= 10
			digits++
			lx.pos++
		}
		if digits == 0 {
			lx.errTok()
			return
		}
	}
	if e, ok := lx.t.At(lx.pos); ok && (lx.t.CharEq(e, 'e') || lx.t.CharEq(e, 'E')) {
		lx.t.Block(blkLexExp)
		lx.pos++
		neg := false
		if s, ok := lx.t.At(lx.pos); ok && (lx.t.CharEq(s, '+') || lx.t.CharEq(s, '-')) {
			//pdlint:ignore subjecttrace -- sign extraction from a char the CharEq('+')/CharEq('-') guard just traced
			neg = s.B == '-'
			lx.pos++
		}
		exp := 0
		digits := 0
		for {
			d, ok := lx.t.At(lx.pos)
			if !ok || !lx.t.CharRange(d, '0', '9') {
				break
			}
			exp = exp*10 + int(d.B-'0')
			if exp > 308 {
				exp = 308
			}
			digits++
			lx.pos++
		}
		if digits == 0 {
			lx.errTok()
			return
		}
		for i := 0; i < exp; i++ {
			if neg {
				v /= 10
			} else {
				v *= 10
			}
		}
	}
	_ = start
	lx.tok, lx.tokNum = tokNumber, v
}

// word scans an identifier and classifies it against the keyword
// table through wrapped strcmp, keeping the tainted spelling for
// runtime name lookups.
func (lx *lexer) word() {
	lx.t.Block(blkLexWord)
	var w taint.String
	for {
		c, ok := lx.t.At(lx.pos)
		if !ok {
			break
		}
		if lx.t.CharRange(c, 'a', 'z') || lx.t.CharRange(c, 'A', 'Z') ||
			lx.t.CharRange(c, '0', '9') || lx.t.CharEq(c, '_') || lx.t.CharEq(c, '$') {
			w = w.Append(c)
			lx.pos++
			continue
		}
		break
	}
	for _, kw := range keywords {
		if lx.t.StrEq(w, kw.word) {
			lx.t.Block(blkLexKeyword)
			lx.tok = kw.kind
			return
		}
	}
	lx.t.Block(blkLexIdent)
	lx.tok = tokIdent
	lx.tokWord = w
}

// str scans a quoted string literal with escapes.
func (lx *lexer) str(quote byte) {
	lx.t.Block(blkLexString)
	lx.pos++ // opening quote
	var out []byte
	for {
		c, ok := lx.t.At(lx.pos)
		if !ok {
			lx.errTok()
			return // unterminated
		}
		if lx.t.CharEq(c, quote) {
			lx.pos++
			lx.tok, lx.tokStr = tokString, string(out)
			return
		}
		if lx.t.CharEq(c, '\\') {
			lx.t.Block(blkLexEscape)
			lx.pos++
			e, ok := lx.t.At(lx.pos)
			if !ok {
				lx.errTok()
				return
			}
			switch {
			case lx.t.CharEq(e, 'n'):
				out = append(out, '\n')
			case lx.t.CharEq(e, 't'):
				out = append(out, '\t')
			case lx.t.CharEq(e, 'r'):
				out = append(out, '\r')
			case lx.t.CharEq(e, '\\'):
				out = append(out, '\\')
			case lx.t.CharEq(e, '\''):
				out = append(out, '\'')
			case lx.t.CharEq(e, '"'):
				out = append(out, '"')
			case lx.t.CharEq(e, '0'):
				out = append(out, 0)
			default:
				lx.errTok()
				return
			}
			lx.pos++
			continue
		}
		//pdlint:ignore subjecttrace -- newline-in-string guard mirrors mjs's raw check; the error path carries no hint
		if c.B == '\n' {
			lx.errTok()
			return // newline inside string literal
		}
		out = append(out, c.B)
		lx.pos++
	}
}

// punct scans operators and punctuation, longest match first.
func (lx *lexer) punct(c taint.Char) {
	lx.t.Block(blkLexPunct)
	peek := func(off int) (taint.Char, bool) { return lx.t.At(lx.pos + off) }
	two := func(second byte, long, short tokKind) {
		if n, ok := peek(1); ok && lx.t.CharEq(n, second) {
			lx.pos += 2
			lx.tok = long
			return
		}
		lx.pos++
		lx.tok = short
	}
	switch {
	case lx.t.CharEq(c, '{'):
		lx.one(tokLbrace)
	case lx.t.CharEq(c, '}'):
		lx.one(tokRbrace)
	case lx.t.CharEq(c, '('):
		lx.one(tokLparen)
	case lx.t.CharEq(c, ')'):
		lx.one(tokRparen)
	case lx.t.CharEq(c, '['):
		lx.one(tokLbracket)
	case lx.t.CharEq(c, ']'):
		lx.one(tokRbracket)
	case lx.t.CharEq(c, ';'):
		lx.one(tokSemi)
	case lx.t.CharEq(c, ','):
		lx.one(tokComma)
	case lx.t.CharEq(c, '.'):
		lx.one(tokDot)
	case lx.t.CharEq(c, '?'):
		lx.one(tokQuestion)
	case lx.t.CharEq(c, ':'):
		lx.one(tokColon)
	case lx.t.CharEq(c, '~'):
		lx.one(tokTilde)

	case lx.t.CharEq(c, '+'):
		if n, ok := peek(1); ok && lx.t.CharEq(n, '+') {
			lx.pos += 2
			lx.tok = tokInc
			return
		}
		two('=', tokAddA, tokPlus)
	case lx.t.CharEq(c, '-'):
		if n, ok := peek(1); ok && lx.t.CharEq(n, '-') {
			lx.pos += 2
			lx.tok = tokDec
			return
		}
		two('=', tokSubA, tokMinus)
	case lx.t.CharEq(c, '*'):
		two('=', tokMulA, tokStar)
	case lx.t.CharEq(c, '/'):
		two('=', tokDivA, tokSlash)
	case lx.t.CharEq(c, '%'):
		two('=', tokModA, tokPercent)
	case lx.t.CharEq(c, '^'):
		two('=', tokXorA, tokCaret)

	case lx.t.CharEq(c, '&'):
		if n, ok := peek(1); ok && lx.t.CharEq(n, '&') {
			lx.pos += 2
			lx.tok = tokLand
			return
		}
		two('=', tokAndA, tokAmp)
	case lx.t.CharEq(c, '|'):
		if n, ok := peek(1); ok && lx.t.CharEq(n, '|') {
			lx.pos += 2
			lx.tok = tokLor
			return
		}
		two('=', tokOrA, tokPipe)

	case lx.t.CharEq(c, '='):
		if n, ok := peek(1); ok && lx.t.CharEq(n, '=') {
			if n2, ok := peek(2); ok && lx.t.CharEq(n2, '=') {
				lx.pos += 3
				lx.tok = tokSeq
				return
			}
			lx.pos += 2
			lx.tok = tokEq
			return
		}
		lx.one(tokAssign)
	case lx.t.CharEq(c, '!'):
		if n, ok := peek(1); ok && lx.t.CharEq(n, '=') {
			if n2, ok := peek(2); ok && lx.t.CharEq(n2, '=') {
				lx.pos += 3
				lx.tok = tokSne
				return
			}
			lx.pos += 2
			lx.tok = tokNe
			return
		}
		lx.one(tokNot)

	case lx.t.CharEq(c, '<'):
		if n, ok := peek(1); ok && lx.t.CharEq(n, '<') {
			if n2, ok := peek(2); ok && lx.t.CharEq(n2, '=') {
				lx.pos += 3
				lx.tok = tokShlA
				return
			}
			lx.pos += 2
			lx.tok = tokShl
			return
		}
		two('=', tokLe, tokLess)
	case lx.t.CharEq(c, '>'):
		if n, ok := peek(1); ok && lx.t.CharEq(n, '>') {
			if n2, ok := peek(2); ok && lx.t.CharEq(n2, '>') {
				if n3, ok := peek(3); ok && lx.t.CharEq(n3, '=') {
					lx.pos += 4
					lx.tok = tokUshrA
					return
				}
				lx.pos += 3
				lx.tok = tokUshr
				return
			}
			if n2, ok := peek(2); ok && lx.t.CharEq(n2, '=') {
				lx.pos += 3
				lx.tok = tokShrA
				return
			}
			lx.pos += 2
			lx.tok = tokShr
			return
		}
		two('=', tokGe, tokGreater)

	default:
		lx.errTok()
	}
}

func (lx *lexer) one(k tokKind) {
	lx.pos++
	lx.tok = k
}
