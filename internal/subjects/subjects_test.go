// Package subjects_test exercises accept/reject behaviour of every
// subject through the common Program interface.
package subjects_test

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/csvp"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/subjects/ini"
	"pfuzzer/internal/subjects/paren"
	"pfuzzer/internal/subjects/tinyc"
	"pfuzzer/internal/trace"
)

func accepts(t *testing.T, p subject.Program, input string) {
	t.Helper()
	rec := subject.Execute(p, []byte(input), trace.Full())
	if !rec.Accepted() {
		t.Errorf("%s: input %q rejected, want accepted", p.Name(), input)
	}
}

func rejects(t *testing.T, p subject.Program, input string) {
	t.Helper()
	rec := subject.Execute(p, []byte(input), trace.Full())
	if rec.Accepted() {
		t.Errorf("%s: input %q accepted, want rejected", p.Name(), input)
	}
}

func TestExprAccepts(t *testing.T) {
	p := expr.New()
	// The paper's §2 examples.
	for _, in := range []string{"1", "11", "+1", "-1", "1+1", "1-1", "(1)", "(2-94)", "((3))", "1+2-3", "(1)+(2)"} {
		accepts(t, p, in)
	}
}

func TestExprRejects(t *testing.T) {
	p := expr.New()
	for _, in := range []string{"", "A", "(", "(1", "1)", "++", "1+", "()", "1 1", "2B"} {
		rejects(t, p, in)
	}
}

func TestParenAccepts(t *testing.T) {
	p := paren.New()
	for _, in := range []string{"()", "[]", "{}", "<>", "([]{})", "()()", "((((()))))", "<[{()}]>"} {
		accepts(t, p, in)
	}
}

func TestParenRejects(t *testing.T) {
	p := paren.New()
	for _, in := range []string{"", "(", ")", "(]", "([)]", "()x", "(()"} {
		rejects(t, p, in)
	}
}

func TestIniAccepts(t *testing.T) {
	p := ini.New()
	for _, in := range []string{
		"",
		"\n",
		"; comment\n",
		"[section]\n",
		"[section]",
		"key=value\n",
		"key=value",
		"[s]\nkey=value\n; done\n",
		"  key = value  \n",
		"[a][b]=c\n", // ']' then pair-like rest would fail; this line is a section followed by garbage
	} {
		if in == "[a][b]=c\n" {
			rejects(t, p, in)
			continue
		}
		accepts(t, p, in)
	}
}

func TestIniRejects(t *testing.T) {
	p := ini.New()
	for _, in := range []string{"[unclosed\n", "noequals\n", "=value\n", "[s] x\n"} {
		rejects(t, p, in)
	}
}

func TestCsvAccepts(t *testing.T) {
	p := csvp.New()
	for _, in := range []string{
		"",
		"a",
		"a,b,c",
		"a,b\nc,d\n",
		`"quoted"`,
		`"a,b","c""d"`,
		"a,,b",
		"\n",
	} {
		accepts(t, p, in)
	}
}

func TestCsvRejects(t *testing.T) {
	p := csvp.New()
	for _, in := range []string{`"unterminated`, `a"b`, `"x"y`} {
		rejects(t, p, in)
	}
}

func TestCjsonAccepts(t *testing.T) {
	p := cjson.New()
	for _, in := range []string{
		"1", "0", "-1", "3.14", "1e10", "2E-3", "0.5",
		`""`, `"abc"`, `"a\nb"`, `"A"`, `"😀"`,
		"true", "false", "null",
		"[]", "[1]", "[1,2,3]", `[true,false,null]`,
		"{}", `{"a":1}`, `{"a":1,"b":[2,3]}`,
		` { "x" : [ 1 , "y" ] } `,
	} {
		accepts(t, p, in)
	}
}

func TestCjsonRejects(t *testing.T) {
	p := cjson.New()
	for _, in := range []string{
		"", "tru", "truex", "nul", "+1", "01", "1.", "1e", `"`,
		`"\q"`, `"\u00g1"`, `"\ud800"`, "[1,]", "[1", "{", `{"a"}`,
		`{"a":}`, `{a:1}`, "1 2", "[] []",
	} {
		rejects(t, p, in)
	}
}

func TestTinycAccepts(t *testing.T) {
	p := tinyc.New()
	for _, in := range []string{
		";",
		"{}",
		"a=1;",
		"a=b=2;",
		"1+2;",
		"a<b;",
		"if(1)a=2;",
		"if(a<b)a=1;else a=2;",
		"while(a<3)a=a+1;",
		"do a=a+1; while(a<3);",
		"{a=1;b=2;{c=a+b;}}",
		"while(9);", // terminates via the step budget
		"if (1) { a = 2 ; } else { a = 3 ; }",
	} {
		accepts(t, p, in)
	}
}

func TestTinycRejects(t *testing.T) {
	p := tinyc.New()
	for _, in := range []string{
		"", "a", "a=1", "ab=1;", "if(1)", "if 1 a=2;", "while(1)",
		"do a=1; while(1)", "{a=1;", "1+;", "a==1;", "A=1;", "if(1);else",
	} {
		rejects(t, p, in)
	}
}

// TestTinycExecution checks interpreter effects indirectly: programs
// with loops and conditionals must still be accepted and terminate.
func TestTinycExecution(t *testing.T) {
	p := tinyc.New()
	accepts(t, p, "{a=0;while(a<100)a=a+1;}")
	accepts(t, p, "{i=0;do{i=i+1;}while(i<5);}")
}

// TestEveryRejectionRecordsComparisons: for the fuzzer to make
// progress, a rejected non-empty input must leave behind either a
// comparison or an EOF access.
func TestEveryRejectionRecordsComparisons(t *testing.T) {
	cases := map[string][]string{
		"expr":  {"A", "(", "1+"},
		"paren": {"x", "(", "(]"},
		"ini":   {"[x", "=v\n"},
		"csv":   {`"a`},
		"cjson": {"x", "tr", "[1;"},
		"tinyc": {"A", "if(", "whi"},
	}
	progs := map[string]subject.Program{
		"expr": expr.New(), "paren": paren.New(), "ini": ini.New(),
		"csv": csvp.New(), "cjson": cjson.New(), "tinyc": tinyc.New(),
	}
	for name, inputs := range cases {
		for _, in := range inputs {
			rec := subject.Execute(progs[name], []byte(in), trace.Full())
			if rec.Accepted() {
				t.Errorf("%s: %q unexpectedly accepted", name, in)
				continue
			}
			if len(rec.Comparisons) == 0 && len(rec.EOFs) == 0 {
				t.Errorf("%s: rejection of %q recorded no comparisons and no EOF accesses", name, in)
			}
		}
	}
}

// TestKeywordComparisonsExposeLiterals: the strcmp wrapping must
// surface keyword literals as substitution candidates.
func TestKeywordComparisonsExposeLiterals(t *testing.T) {
	rec := subject.Execute(tinyc.New(), []byte("w"), trace.Full())
	found := false
	for _, c := range rec.Comparisons {
		if c.Kind == trace.CmpStrEq && string(c.Expected) == "while" {
			found = true
		}
	}
	if !found {
		t.Error(`tinyc: input "w" produced no strcmp against "while"`)
	}

	rec = subject.Execute(cjson.New(), []byte("t"), trace.Full())
	found = false
	for _, c := range rec.Comparisons {
		if c.Kind == trace.CmpStrEq && string(c.Expected) == "true" {
			found = true
		}
	}
	if !found {
		t.Error(`cjson: input "t" produced no strcmp against "true"`)
	}
}

// TestUTF16EscapeIsInvisible: the \u hex digits must not appear in
// tainted comparisons (the implicit-flow taint loss of §5.2).
func TestUTF16EscapeIsInvisible(t *testing.T) {
	rec := subject.Execute(cjson.New(), []byte(`"\u00`), trace.Full())
	for _, c := range rec.Comparisons {
		if c.Index >= 3 && c.Kind != trace.CmpStrEq { // offsets of the hex digits
			t.Errorf("hex digit at offset %d leaked into comparison %v", c.Index, c)
		}
	}
}
