package subjects_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/csvp"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/subjects/mjs"
	"pfuzzer/internal/subjects/paren"
	"pfuzzer/internal/subjects/tinyc"
	"pfuzzer/internal/trace"
)

// Property tests: each subject must accept every output of a small
// random generator for its language, and the tokenizer must recognize
// the tokens the generator planted. These pin the parsers against the
// grammars the paper's evaluation depends on.

func genJSON(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(1000))
		case 1:
			return fmt.Sprintf("-%d.%d", rng.Intn(100), 1+rng.Intn(99))
		case 2:
			return `"s` + strings.Repeat("x", rng.Intn(5)) + `"`
		case 3:
			return []string{"true", "false", "null"}[rng.Intn(3)]
		default:
			return fmt.Sprintf("%dE%d", rng.Intn(10), rng.Intn(10))
		}
	}
	switch rng.Intn(3) {
	case 0:
		n := rng.Intn(4)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = genJSON(rng, depth-1)
		}
		return "[" + strings.Join(parts, ",") + "]"
	case 1:
		n := rng.Intn(3)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = fmt.Sprintf(`"k%d":%s`, i, genJSON(rng, depth-1))
		}
		return "{" + strings.Join(parts, ",") + "}"
	default:
		return genJSON(rng, 0)
	}
}

func TestCjsonAcceptsGeneratedJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := cjson.New()
	for i := 0; i < 500; i++ {
		in := genJSON(rng, 3)
		rec := subject.Execute(p, []byte(in), trace.Full())
		if !rec.Accepted() {
			t.Fatalf("generated JSON rejected: %q", in)
		}
	}
}

func genBrackets(rng *rand.Rand, depth int) string {
	pairs := [][2]string{{"(", ")"}, {"[", "]"}, {"{", "}"}, {"<", ">"}}
	p := pairs[rng.Intn(4)]
	if depth <= 0 {
		return p[0] + p[1]
	}
	inner := ""
	for n := rng.Intn(3); n >= 0; n-- {
		inner += genBrackets(rng, depth-1)
	}
	return p[0] + inner + p[1]
}

func TestParenAcceptsGeneratedBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := paren.New()
	for i := 0; i < 500; i++ {
		in := genBrackets(rng, 1+rng.Intn(4))
		rec := subject.Execute(p, []byte(in), trace.Full())
		if !rec.Accepted() {
			t.Fatalf("generated brackets rejected: %q", in)
		}
	}
}

func genCSV(rng *rand.Rand) string {
	var rows []string
	for r := 0; r <= rng.Intn(4); r++ {
		var fields []string
		for f := 0; f <= rng.Intn(4); f++ {
			switch rng.Intn(3) {
			case 0:
				fields = append(fields, "plain")
			case 1:
				fields = append(fields, `"quo,ted"`)
			default:
				fields = append(fields, `"do""ble"`)
			}
		}
		rows = append(rows, strings.Join(fields, ","))
	}
	return strings.Join(rows, "\n")
}

func TestCsvAcceptsGeneratedCSV(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := csvp.New()
	for i := 0; i < 500; i++ {
		in := genCSV(rng)
		rec := subject.Execute(p, []byte(in), trace.Full())
		if !rec.Accepted() {
			t.Fatalf("generated CSV rejected: %q", in)
		}
	}
}

func genTinyCExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		if rng.Intn(2) == 0 {
			return string(rune('a' + rng.Intn(26)))
		}
		return fmt.Sprintf("%d", rng.Intn(100))
	}
	a := genTinyCExpr(rng, depth-1)
	b := genTinyCExpr(rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		return a + "+" + b
	case 1:
		return a + "-" + b
	case 2:
		return "(" + a + ")"
	default:
		return a + "<" + b
	}
}

func genTinyCStmt(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return ";"
		case 1:
			return fmt.Sprintf("%c=%s;", 'a'+rune(rng.Intn(26)), genTinyCExpr(rng, 1))
		default:
			return genTinyCExpr(rng, 1) + ";"
		}
	}
	switch rng.Intn(5) {
	case 0:
		return fmt.Sprintf("if(%s)%s", genTinyCExpr(rng, 1), genTinyCStmt(rng, depth-1))
	case 1:
		return fmt.Sprintf("if(%s)%selse %s", genTinyCExpr(rng, 1),
			genTinyCStmt(rng, depth-1), genTinyCStmt(rng, depth-1))
	case 2:
		// Condition 0 guarantees termination without the step budget.
		return fmt.Sprintf("while(0)%s", genTinyCStmt(rng, depth-1))
	case 3:
		return fmt.Sprintf("do %s while(0);", genTinyCStmt(rng, depth-1))
	default:
		var sb strings.Builder
		sb.WriteString("{")
		for n := rng.Intn(3); n >= 0; n-- {
			sb.WriteString(genTinyCStmt(rng, depth-1))
		}
		sb.WriteString("}")
		return sb.String()
	}
}

func TestTinycAcceptsGeneratedPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := tinyc.New()
	for i := 0; i < 500; i++ {
		in := genTinyCStmt(rng, 1+rng.Intn(3))
		rec := subject.Execute(p, []byte(in), trace.Full())
		if !rec.Accepted() {
			t.Fatalf("generated Tiny-C rejected: %q", in)
		}
	}
}

func genMJSExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		switch rng.Intn(6) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(100))
		case 1:
			return "x" + string(rune('a'+rng.Intn(26)))
		case 2:
			return `"s"`
		case 3:
			return "true"
		case 4:
			return "null"
		default:
			return "1.5"
		}
	}
	a := genMJSExpr(rng, depth-1)
	b := genMJSExpr(rng, depth-1)
	ops := []string{"+", "-", "*", "/", "%", "==", "!=", "===", "<", ">",
		"<=", ">=", "&", "|", "^", "<<", ">>", "&&", "||"}
	switch rng.Intn(5) {
	case 0:
		return "(" + a + ")"
	case 1:
		return "!" + a
	case 2:
		return a + "?" + b + ":" + a
	default:
		return a + ops[rng.Intn(len(ops))] + b
	}
}

func genMJSStmt(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return ";"
		case 1:
			return fmt.Sprintf("v%d = %s;", rng.Intn(10), genMJSExpr(rng, 1))
		case 2:
			return fmt.Sprintf("var d%d = %s;", rng.Intn(10), genMJSExpr(rng, 1))
		default:
			return genMJSExpr(rng, 1) + ";"
		}
	}
	switch rng.Intn(7) {
	case 0:
		return fmt.Sprintf("if (%s) %s", genMJSExpr(rng, 1), genMJSStmt(rng, depth-1))
	case 1:
		return fmt.Sprintf("if (%s) %s else %s", genMJSExpr(rng, 1),
			genMJSStmt(rng, depth-1), genMJSStmt(rng, depth-1))
	case 2:
		return fmt.Sprintf("while (false) %s", genMJSStmt(rng, depth-1))
	case 3:
		return fmt.Sprintf("for (i%d = 0; i%d < 2; i%d++) %s",
			depth, depth, depth, genMJSStmt(rng, depth-1))
	case 4:
		return fmt.Sprintf("try { %s } catch (e) { %s }",
			genMJSStmt(rng, depth-1), genMJSStmt(rng, depth-1))
	case 5:
		return fmt.Sprintf("{ function f%d() { %s } f%d(); }",
			depth, genMJSStmt(rng, depth-1), depth)
	default:
		return "{ " + genMJSStmt(rng, depth-1) + " }"
	}
}

func TestMjsAcceptsGeneratedPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := mjs.New()
	for i := 0; i < 500; i++ {
		in := genMJSStmt(rng, 1+rng.Intn(3))
		rec := subject.Execute(p, []byte(in), trace.Full())
		if !rec.Accepted() {
			t.Fatalf("generated mjs rejected: %q", in)
		}
	}
}

func genExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		return fmt.Sprintf("%d", rng.Intn(100))
	}
	switch rng.Intn(4) {
	case 0:
		return "(" + genExpr(rng, depth-1) + ")"
	case 1:
		return genExpr(rng, depth-1) + "+" + genExpr(rng, depth-1)
	case 2:
		return genExpr(rng, depth-1) + "-" + genExpr(rng, depth-1)
	default:
		return genExpr(rng, 0)
	}
}

func TestExprAcceptsGeneratedExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := expr.New()
	for i := 0; i < 500; i++ {
		in := genExpr(rng, 1+rng.Intn(4))
		rec := subject.Execute(p, []byte(in), trace.Full())
		if !rec.Accepted() {
			t.Fatalf("generated expression rejected: %q", in)
		}
	}
}

// TestTokenizersSeeGeneratedTokens: tokenizing generator output never
// reports tokens outside the inventory and always reports at least
// one token for non-empty inputs.
func TestTokenizersSeeGeneratedTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	checks := []struct {
		name     string
		gen      func() string
		tokenize func([]byte) map[string]bool
		names    map[string]bool
	}{
		{"cjson", func() string { return genJSON(rng, 3) }, cjson.Tokenize, cjson.Inventory.Names()},
		{"tinyc", func() string { return genTinyCStmt(rng, 2) }, tinyc.Tokenize, tinyc.Inventory.Names()},
		{"mjs", func() string { return genMJSStmt(rng, 2) }, mjs.Tokenize, mjs.Inventory.Names()},
	}
	for _, c := range checks {
		for i := 0; i < 200; i++ {
			in := c.gen()
			got := c.tokenize([]byte(in))
			if len(in) > 0 && len(got) == 0 {
				t.Fatalf("%s: no tokens in %q", c.name, in)
			}
			for tok := range got {
				if !c.names[tok] {
					t.Fatalf("%s: tokenizer reported %q, not in inventory (input %q)", c.name, tok, in)
				}
			}
		}
	}
}
