// Package csvp reproduces the paper's csv_parser subject (Table 1:
// "csvparser 2018-10-25, 297 LoC"): comma-separated rows with
// optionally double-quoted fields ("" escapes a quote inside a quoted
// field). A quoted field must be followed by a comma, a newline, or
// the end of input; an unterminated quote is a parse error.
package csvp

import (
	"pfuzzer/internal/subject"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

const (
	blkStart = iota
	blkRow
	blkField
	blkQuotedOpen
	blkQuotedChar
	blkQuotedEscape
	blkQuotedClose
	blkRawChar
	blkComma
	blkNewline
	blkAccept
	blkRejectQuote
	blkRejectAfterQuote
	numBlocks
)

// Program is the csv subject.
type Program struct{}

// New returns the csv subject.
func New() *Program { return &Program{} }

// Name implements subject.Program.
func (*Program) Name() string { return "csv" }

// Blocks implements subject.Program.
func (*Program) Blocks() int { return numBlocks }

// Run parses the whole input as CSV.
func (*Program) Run(t *trace.Tracer) int {
	p := &parser{t: t}
	t.Block(blkStart)
	for {
		t.Block(blkRow)
		if !p.row() {
			return subject.ExitReject
		}
		if p.pos >= t.Len() {
			break
		}
	}
	// Probe for further input so extension is learnable.
	t.At(p.pos)
	t.Block(blkAccept)
	return subject.ExitOK
}

type parser struct {
	t   *trace.Tracer
	pos int
}

// row parses fields separated by commas up to a newline or EOF.
func (p *parser) row() bool {
	p.t.Enter()
	defer p.t.Leave()
	for {
		p.t.Block(blkField)
		if !p.field() {
			return false
		}
		c, ok := p.t.At(p.pos)
		if !ok {
			return true
		}
		if p.t.CharEq(c, ',') {
			p.t.Block(blkComma)
			p.pos++
			continue
		}
		if p.t.CharEq(c, '\n') {
			p.t.Block(blkNewline)
			p.pos++
			return true
		}
		// field() consumed everything that can extend a raw field,
		// so this is unreachable for raw fields and a parse error
		// after a closing quote.
		p.t.Block(blkRejectAfterQuote)
		return false
	}
}

// field parses one (possibly empty, possibly quoted) field.
func (p *parser) field() bool {
	p.t.Enter()
	defer p.t.Leave()

	c, ok := p.t.At(p.pos)
	if !ok {
		return true // empty trailing field
	}
	if p.t.CharEq(c, '"') {
		p.t.Block(blkQuotedOpen)
		p.pos++
		for {
			c, ok := p.t.At(p.pos)
			if !ok {
				p.t.Block(blkRejectQuote)
				return false // unterminated quote
			}
			if p.t.CharEq(c, '"') {
				p.pos++
				// A doubled quote is an escaped quote.
				if n, ok := p.t.At(p.pos); ok && p.t.CharEq(n, '"') {
					p.t.Block(blkQuotedEscape)
					p.pos++
					continue
				}
				p.t.Block(blkQuotedClose)
				return true
			}
			p.t.Block(blkQuotedChar)
			p.pos++
		}
	}
	// Raw field: anything except separator, newline, quote.
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			return true
		}
		if p.t.CharEq(c, ',') || p.t.CharEq(c, '\n') {
			return true
		}
		if p.t.CharEq(c, '"') {
			p.t.Block(blkRejectQuote)
			return false // stray quote inside a raw field
		}
		p.t.Block(blkRawChar)
		p.pos++
	}
}

// Inventory lists the two csv tokens counted in Figure 3.
var Inventory = tokens.Inventory{
	tokens.Lit(","),
	tokens.Class("field", 1),
}

// Tokenize returns the inventory tokens present in input.
func Tokenize(input []byte) map[string]bool {
	out := map[string]bool{}
	for _, b := range input {
		switch {
		case b == ',':
			out[","] = true
		case b != '\n' && b != '\r':
			out["field"] = true
		}
	}
	return out
}
