package csvp

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

func run(in string) *trace.Record {
	return subject.Execute(New(), []byte(in), trace.Full())
}

func TestNameAndBlocks(t *testing.T) {
	p := New()
	if p.Name() != "csv" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Blocks() <= 0 {
		t.Errorf("Blocks = %d", p.Blocks())
	}
}

func TestAcceptReject(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"x,y\r\nz,w\r\n", true},
		{`"",""`, true},
		{`"embedded ""quotes"" here"`, true},
		{"trailing,comma,\n", true},
		{`"a`, false},
		{`ab"cd`, false},
		{`"a"b`, false},
	}
	for _, c := range cases {
		if got := run(c.in).Accepted(); got != c.ok {
			t.Errorf("%q accepted=%v, want %v", c.in, got, c.ok)
		}
	}
}

func TestUnterminatedQuoteSignalsEOF(t *testing.T) {
	rec := run(`"abc`)
	if rec.Accepted() {
		t.Fatal("unterminated quote accepted")
	}
	if !rec.EOFAtEnd() {
		t.Error("no EOF access recorded for the unterminated quote")
	}
}

func TestTokenizeSeparators(t *testing.T) {
	got := Tokenize([]byte("a,b\n\"c\"\n"))
	for _, want := range []string{","} {
		if !got[want] {
			t.Errorf("token %q not found in %v", want, got)
		}
	}
	if Inventory.Count() == 0 {
		t.Error("empty inventory")
	}
}
