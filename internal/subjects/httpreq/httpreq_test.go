package httpreq

import (
	"math/rand"
	"strings"
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

func run(in string) *trace.Record {
	return subject.Execute(New(), []byte(in), trace.Full())
}

func TestNameAndBlocks(t *testing.T) {
	p := New()
	if p.Name() != "httpreq" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Blocks() <= 0 {
		t.Errorf("Blocks = %d", p.Blocks())
	}
}

func TestAcceptReject(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"GET / HTTP/1.1\n", true},
		{"GET / HTTP/1.0\r\n", true},
		{"POST /a/b?x=1&y=2 HTTP/1.1\nHost: example.com\n", true},
		{"PUT /up HTTP/1.1\nContent-Type: text/plain\nX-Empty:\n", true},
		{"DELETE /x HTTP/1.1\r\nHost: h\r\n\r\n", true},
		{"HEAD / HTTP/1.1\n\n", true},
		{"OPTIONS /%7Euser HTTP/1.1\n", true},
		{"GET / HTTP/1.1\nHost: truncated", true}, // value at EOF stays extendable
		{"", false},
		{"get / HTTP/1.1\n", false},               // methods are uppercase
		{"BREW / HTTP/1.1\n", false},              // unknown method
		{"GET", false},                            // EOF before the target
		{"GET  / HTTP/1.1\n", false},              // double space
		{"GET x HTTP/1.1\n", false},               // target must be origin-form
		{"GET / HTTP/2.0\n", false},               // unknown version
		{"GET / HTTP/1.1", false},                 // missing EOL
		{"GET / HTTP/1.1\n: v\n", false},          // empty header name
		{"GET / HTTP/1.1\nHost example\n", false}, // missing ':'
		{"GET / HTTP/1.1\n\nbody", false},         // bytes after the blank line
		{"GET / HTTP/1.1\nA: \x01\n", false},      // control char in value
	}
	for _, c := range cases {
		if got := run(c.in).Accepted(); got != c.ok {
			t.Errorf("%q accepted=%v, want %v", c.in, got, c.ok)
		}
	}
}

// TestRejectionLeavesEvidence: every rejected input must record a
// comparison or an EOF access for the fuzzer to act on.
func TestRejectionLeavesEvidence(t *testing.T) {
	for _, in := range []string{"", "G", "GET", "GET /", "GET / H", "BREW / HTTP/1.1\n"} {
		rec := run(in)
		if rec.Accepted() {
			t.Errorf("%q unexpectedly accepted", in)
			continue
		}
		if len(rec.Comparisons) == 0 && len(rec.EOFs) == 0 {
			t.Errorf("rejection of %q recorded no comparisons and no EOF accesses", in)
		}
	}
}

// TestComparisonsExposeLiterals: the strcmp wrapping must surface the
// methods and versions as substitution candidates.
func TestComparisonsExposeLiterals(t *testing.T) {
	collect := func(in string) string {
		var seen []string
		for _, c := range run(in).Comparisons {
			if c.Kind == trace.CmpStrEq {
				seen = append(seen, string(c.Expected))
			}
		}
		return strings.Join(seen, " ")
	}
	methods := collect("X / HTTP/1.1\n")
	for _, want := range []string{"GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS"} {
		if !strings.Contains(methods, want) {
			t.Errorf("method %q not exposed by strcmp (saw %q)", want, methods)
		}
	}
	versions := collect("GET / H\n")
	for _, want := range []string{"HTTP/1.1", "HTTP/1.0"} {
		if !strings.Contains(versions, want) {
			t.Errorf("version %q not exposed by strcmp (saw %q)", want, versions)
		}
	}
}

func genRequest(rng *rand.Rand) string {
	method := []string{"GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS"}[rng.Intn(6)]
	version := []string{"HTTP/1.1", "HTTP/1.0"}[rng.Intn(2)]
	eol := []string{"\n", "\r\n"}[rng.Intn(2)]
	var sb strings.Builder
	sb.WriteString(method)
	sb.WriteString(" /")
	for n := rng.Intn(3); n > 0; n-- {
		sb.WriteString([]string{"a", "b2", "c-d", "x.y", "p_q"}[rng.Intn(5)])
		if n > 1 {
			sb.WriteString("/")
		}
	}
	if rng.Intn(3) == 0 {
		sb.WriteString("?k=v&x=1")
	}
	sb.WriteString(" ")
	sb.WriteString(version)
	sb.WriteString(eol)
	for n := rng.Intn(3); n > 0; n-- {
		sb.WriteString([]string{"Host", "Accept", "X-Test-1"}[rng.Intn(3)])
		sb.WriteString(": ")
		sb.WriteString([]string{"example.com", "*/*", "a b c"}[rng.Intn(3)])
		sb.WriteString(eol)
	}
	if rng.Intn(2) == 0 {
		sb.WriteString(eol) // terminating blank line
	}
	return sb.String()
}

func TestAcceptsGeneratedRequests(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 500; i++ {
		in := genRequest(rng)
		if !run(in).Accepted() {
			t.Fatalf("generated request rejected: %q", in)
		}
	}
}

// TestTokenizeStaysInInventory: Tokenize must only report inventory
// names, and must see the planted method and version.
func TestTokenizeStaysInInventory(t *testing.T) {
	names := Inventory.Names()
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 200; i++ {
		in := genRequest(rng)
		got := Tokenize([]byte(in))
		if len(got) == 0 {
			t.Fatalf("no tokens in %q", in)
		}
		for tok := range got {
			if !names[tok] {
				t.Fatalf("tokenizer reported %q, not in inventory (input %q)", tok, in)
			}
		}
	}
	got := Tokenize([]byte("POST /p?a=b HTTP/1.0\nHost: h\n"))
	for _, want := range []string{"POST", "HTTP/1.0", "/", "?", "=", ":", "text"} {
		if !got[want] {
			t.Errorf("Tokenize missed %q: %v", want, got)
		}
	}
}
