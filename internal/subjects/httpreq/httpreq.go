// Package httpreq is an HTTP/1.1 request-head parser subject: a
// request line `METHOD SP origin-form-target SP HTTP-version EOL`
// followed by zero or more `Name: value EOL` header fields, optionally
// terminated by a blank line (which must end the input — bodies are
// out of scope). EOLs are LF with an optional preceding CR. Methods
// and the HTTP version are recognized by wrapped strcmp over the
// accumulated word — the comparisons that expose "GET", "DELETE",
// "OPTIONS" and "HTTP/1.1" to the fuzzer as whole-token substitutions
// (§6.2); unknown methods and versions are rejected. Parsing aborts
// with a non-zero exit on the first malformed character (§5.1 setup).
package httpreq

import (
	"pfuzzer/internal/subject"
	"pfuzzer/internal/taint"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

const (
	blkStart = iota
	blkMethodChar
	blkGet
	blkPost
	blkPut
	blkDelete
	blkHead
	blkOptions
	blkSpace1
	blkTargetSlash
	blkTargetChar
	blkSpace2
	blkVersionChar
	blkHTTP11
	blkHTTP10
	blkEOL
	blkHeader
	blkHeaderNameChar
	blkHeaderColon
	blkHeaderValueChar
	blkEnd
	blkAccept
	blkRejectEmpty
	blkRejectMethod
	blkRejectTarget
	blkRejectVersion
	blkRejectEOL
	blkRejectHeader
	blkRejectTrail
	numBlocks
)

// Program is the httpreq subject.
type Program struct{}

// New returns the httpreq subject.
func New() *Program { return &Program{} }

// Name implements subject.Program.
func (*Program) Name() string { return "httpreq" }

// Blocks implements subject.Program.
func (*Program) Blocks() int { return numBlocks }

// Run parses the whole input as one request head.
func (*Program) Run(t *trace.Tracer) int {
	p := &parser{t: t}
	t.Block(blkStart)
	if t.Len() == 0 {
		// Force an EOF access so the fuzzer learns to append.
		t.At(0)
		t.Block(blkRejectEmpty)
		return subject.ExitReject
	}
	if !p.requestLine() {
		return subject.ExitReject
	}
	for {
		c, ok := t.At(p.pos) // EOF here: head without terminator, extendable
		if !ok {
			break
		}
		if p.t.CharEq(c, '\r') || p.t.CharEq(c, '\n') {
			// Blank line: the header block's terminator, which must
			// end the input (no body support).
			if !p.eol() {
				return subject.ExitReject
			}
			if _, ok := t.At(p.pos); ok {
				t.Block(blkRejectTrail)
				return subject.ExitReject
			}
			t.Block(blkEnd)
			break
		}
		if !p.header() {
			return subject.ExitReject
		}
	}
	t.Block(blkAccept)
	return subject.ExitOK
}

type parser struct {
	t   *trace.Tracer
	pos int
}

// requestLine parses `method SP "/" target SP version EOL`.
func (p *parser) requestLine() bool {
	p.t.Enter()
	defer p.t.Leave()

	// Method: a run of uppercase letters, matched against the known
	// methods by wrapped strcmp.
	var word taint.String
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			break
		}
		if !p.t.CharRange(c, 'A', 'Z') {
			break
		}
		p.t.Block(blkMethodChar)
		word = word.Append(c)
		p.pos++
	}
	if len(word) == 0 {
		p.t.Block(blkRejectMethod)
		return false
	}
	switch {
	case p.t.StrEq(word, "GET"):
		p.t.Block(blkGet)
	case p.t.StrEq(word, "POST"):
		p.t.Block(blkPost)
	case p.t.StrEq(word, "PUT"):
		p.t.Block(blkPut)
	case p.t.StrEq(word, "DELETE"):
		p.t.Block(blkDelete)
	case p.t.StrEq(word, "HEAD"):
		p.t.Block(blkHead)
	case p.t.StrEq(word, "OPTIONS"):
		p.t.Block(blkOptions)
	default:
		p.t.Block(blkRejectMethod)
		return false
	}
	c, ok := p.t.At(p.pos)
	if !ok || !p.t.CharEq(c, ' ') {
		p.t.Block(blkRejectTarget)
		return false
	}
	p.t.Block(blkSpace1)
	p.pos++

	// Target: origin-form, "/" followed by path and query characters.
	c, ok = p.t.At(p.pos)
	if !ok || !p.t.CharEq(c, '/') {
		p.t.Block(blkRejectTarget)
		return false
	}
	p.t.Block(blkTargetSlash)
	p.pos++
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			p.t.Block(blkRejectTarget)
			return false // the version is still missing
		}
		if p.t.CharEq(c, ' ') {
			p.t.Block(blkSpace2)
			p.pos++
			break
		}
		if p.targetChar(c) {
			p.t.Block(blkTargetChar)
			p.pos++
			continue
		}
		p.t.Block(blkRejectTarget)
		return false
	}

	// Version: a run up to the EOL, matched by wrapped strcmp.
	var ver taint.String
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			break
		}
		if p.t.CharEq(c, '\r') || p.t.CharEq(c, '\n') {
			break
		}
		if p.verChar(c) {
			p.t.Block(blkVersionChar)
			ver = ver.Append(c)
			p.pos++
			continue
		}
		p.t.Block(blkRejectVersion)
		return false
	}
	switch {
	case p.t.StrEq(ver, "HTTP/1.1"):
		p.t.Block(blkHTTP11)
	case p.t.StrEq(ver, "HTTP/1.0"):
		p.t.Block(blkHTTP10)
	default:
		p.t.Block(blkRejectVersion)
		return false
	}
	return p.eol()
}

// header parses one `Name: value` field up to and including its EOL
// (or EOF, so a truncated head stays extendable).
func (p *parser) header() bool {
	p.t.Enter()
	defer p.t.Leave()

	p.t.Block(blkHeader)
	n := 0
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			p.t.Block(blkRejectHeader)
			return false // name without ':'
		}
		if p.t.CharEq(c, ':') {
			p.t.Block(blkHeaderColon)
			p.pos++
			break
		}
		if p.fieldChar(c) {
			p.t.Block(blkHeaderNameChar)
			p.pos++
			n++
			continue
		}
		p.t.Block(blkRejectHeader)
		return false
	}
	if n == 0 {
		p.t.Block(blkRejectHeader)
		return false // empty field name
	}
	p.skipOWS()
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			return true // value truncated at EOF: extendable
		}
		if p.t.CharEq(c, '\r') || p.t.CharEq(c, '\n') {
			return p.eol()
		}
		if p.t.CharRange(c, ' ', '~') || p.t.CharEq(c, '\t') {
			p.t.Block(blkHeaderValueChar)
			p.pos++
			continue
		}
		p.t.Block(blkRejectHeader)
		return false
	}
}

// eol consumes LF or CR LF.
func (p *parser) eol() bool {
	c, ok := p.t.At(p.pos)
	if !ok {
		p.t.Block(blkRejectEOL)
		return false
	}
	if p.t.CharEq(c, '\r') {
		p.pos++
		c, ok = p.t.At(p.pos)
		if !ok {
			p.t.Block(blkRejectEOL)
			return false
		}
	}
	if !p.t.CharEq(c, '\n') {
		p.t.Block(blkRejectEOL)
		return false
	}
	p.t.Block(blkEOL)
	p.pos++
	return true
}

// skipOWS consumes optional spaces and tabs after the header colon
// without recording comparisons (an isblank() table lookup).
func (p *parser) skipOWS() {
	for {
		c, ok := p.t.At(p.pos)
		//pdlint:ignore subjecttrace -- OWS skip models http-parser's isblank() table lookup, an implicit flow the shim cannot observe
		if !ok || (c.B != ' ' && c.B != '\t') {
			return
		}
		p.pos++
	}
}

func (p *parser) targetChar(c taint.Char) bool {
	return p.t.CharRange(c, 'a', 'z') || p.t.CharRange(c, 'A', 'Z') ||
		p.t.CharRange(c, '0', '9') || p.t.CharSet(c, "-._~/?=&%:@+,;!$'()*")
}

func (p *parser) verChar(c taint.Char) bool {
	return p.t.CharRange(c, 'A', 'Z') || p.t.CharRange(c, '0', '9') ||
		p.t.CharSet(c, "/.")
}

func (p *parser) fieldChar(c taint.Char) bool {
	return p.t.CharRange(c, 'a', 'z') || p.t.CharRange(c, 'A', 'Z') ||
		p.t.CharRange(c, '0', '9') || p.t.CharEq(c, '-')
}

// Inventory lists the httpreq tokens: the methods and versions the
// parser recognizes by strcmp, the structural delimiters, and the
// open class for names, paths and values.
var Inventory = tokens.Inventory{
	tokens.Lit("GET"),
	tokens.Lit("POST"),
	tokens.Lit("PUT"),
	tokens.Lit("DELETE"),
	tokens.Lit("HEAD"),
	tokens.Lit("OPTIONS"),
	tokens.Lit("HTTP/1.1"),
	tokens.Lit("HTTP/1.0"),
	tokens.Lit(":"),
	tokens.Lit("/"),
	tokens.Lit("?"),
	tokens.Lit("="),
	tokens.Lit("&"),
	tokens.Class("text", 1),
}

// Tokenize returns the inventory tokens present in input.
func Tokenize(input []byte) map[string]bool {
	out := map[string]bool{}
	i := 0
	for i < len(input) {
		b := input[i]
		switch {
		case b >= 'A' && b <= 'Z':
			j := i
			for j < len(input) && input[j] >= 'A' && input[j] <= 'Z' {
				j++
			}
			w := string(input[i:j])
			switch w {
			case "GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS":
				out[w] = true
			case "HTTP":
				if rest := string(input[j:min(j+4, len(input))]); rest == "/1.1" || rest == "/1.0" {
					out["HTTP"+rest] = true
					j += 4
				} else {
					out["text"] = true
				}
			default:
				out["text"] = true
			}
			i = j
		case b == ':' || b == '/' || b == '?' || b == '=' || b == '&':
			out[string(b)] = true
			i++
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			i++
		default:
			out["text"] = true
			i++
		}
	}
	return out
}
