// Package tinyc reproduces the paper's Tiny-C subject (Table 1:
// "tinyC 2018-10-25, 191 LoC"), a compiler/interpreter for a tiny
// subset of C:
//
//	<statement> ::= "if" <paren_expr> <statement> [ "else" <statement> ]
//	             | "while" <paren_expr> <statement>
//	             | "do" <statement> "while" <paren_expr> ";"
//	             | "{" { <statement> } "}"
//	             | <expr> ";" | ";"
//	<expr>      ::= <test> | <id> "=" <expr>
//	<test>      ::= <sum> [ "<" <sum> ]
//	<sum>       ::= <term> { ("+"|"-") <term> }
//	<term>      ::= <id> | <int> | <paren_expr>
//
// Variables are the single letters a–z. As in the original, the lexer
// runs interleaved with the parser and recognizes keywords by string
// comparison over the accumulated word (§7.2) — the wrapped strcmp is
// what exposes "if", "do", "else" and "while" to the fuzzer. Accepted
// programs are then executed by a step-bounded interpreter, as the
// paper's evaluation does ("tinyC and mjs also execute the program",
// §5.2).
package tinyc

import (
	"pfuzzer/internal/subject"
	"pfuzzer/internal/taint"
	"pfuzzer/internal/tokens"
	"pfuzzer/internal/trace"
)

const (
	blkStart = iota
	blkLexSym
	blkLexInt
	blkLexWord
	blkKwDo
	blkKwElse
	blkKwIf
	blkKwWhile
	blkLexID
	blkStmtIf
	blkStmtIfElse
	blkStmtWhile
	blkStmtDo
	blkStmtBlock
	blkStmtBlockItem
	blkStmtExpr
	blkStmtEmpty
	blkParenOpen
	blkParenClose
	blkExprAssign
	blkExprTest
	blkTestLess
	blkSumAdd
	blkSumSub
	blkTermID
	blkTermInt
	blkTermParen
	blkAccept
	blkRejectTok
	blkRejectStmt
	blkRejectExpr
	blkRejectTrail
	blkExecAssign
	blkExecIfTrue
	blkExecIfFalse
	blkExecElse
	blkExecWhileIter
	blkExecDoIter
	blkExecLess
	blkExecAdd
	blkExecSub
	blkExecVar
	blkExecConst
	blkExecBudget
	numBlocks
)

// defaultExecSteps bounds interpreter steps so inputs like "while(9);"
// terminate (the paper had to patch that input by hand; we cap
// execution instead, §5.2 footnote 6).
const defaultExecSteps = 4096

// Program is the tinyC subject.
type Program struct{}

// New returns the tinyC subject.
func New() *Program { return &Program{} }

// Name implements subject.Program.
func (*Program) Name() string { return "tinyc" }

// Blocks implements subject.Program.
func (*Program) Blocks() int { return numBlocks }

// Run parses the input as one Tiny-C statement and, on success,
// executes it.
func (*Program) Run(t *trace.Tracer) int {
	p := &parser{t: t}
	t.Block(blkStart)
	p.next()
	st, ok := p.statement()
	if !ok {
		return subject.ExitReject
	}
	if p.tok != tokEOF {
		t.Block(blkRejectTrail)
		return subject.ExitReject
	}
	t.Block(blkAccept)
	// Execution phase: coverage only, never affects acceptance.
	ip := &interp{t: t, steps: t.ExecSteps(defaultExecSteps)}
	ip.exec(st)
	return subject.ExitOK
}

// Token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokErr
	tokDo
	tokElse
	tokIf
	tokWhile
	tokLbrace
	tokRbrace
	tokLparen
	tokRparen
	tokPlus
	tokMinus
	tokLess
	tokSemi
	tokAssign
	tokInt
	tokID
)

// AST node kinds.
type nodeKind int

const (
	ndVar nodeKind = iota
	ndConst
	ndAdd
	ndSub
	ndLess
	ndAssign
	ndIf
	ndIfElse
	ndWhile
	ndDo
	ndEmpty
	ndSeq
	ndExprStmt
)

type node struct {
	kind nodeKind
	val  int // variable index or constant value
	kids []*node
}

type parser struct {
	t   *trace.Tracer
	pos int

	tok    tokKind
	tokVal int // variable index or integer value
}

// next is the interleaved lexer (Tiny-C's next_sym).
func (p *parser) next() {
	// Skip whitespace (isspace-style table lookup, untracked).
	for {
		c, ok := p.t.At(p.pos)
		if !ok {
			p.tok = tokEOF
			return
		}
		//pdlint:ignore subjecttrace -- whitespace skip models tinyc's isspace() table lookup, an implicit flow the shim cannot observe
		if c.B != ' ' && c.B != '\t' && c.B != '\n' && c.B != '\r' {
			break
		}
		p.pos++
	}
	c, _ := p.t.At(p.pos)
	switch {
	case p.t.CharEq(c, '{'):
		p.sym(tokLbrace)
	case p.t.CharEq(c, '}'):
		p.sym(tokRbrace)
	case p.t.CharEq(c, '('):
		p.sym(tokLparen)
	case p.t.CharEq(c, ')'):
		p.sym(tokRparen)
	case p.t.CharEq(c, '+'):
		p.sym(tokPlus)
	case p.t.CharEq(c, '-'):
		p.sym(tokMinus)
	case p.t.CharEq(c, '<'):
		p.sym(tokLess)
	case p.t.CharEq(c, ';'):
		p.sym(tokSemi)
	case p.t.CharEq(c, '='):
		p.sym(tokAssign)
	case p.t.CharRange(c, '0', '9'):
		p.t.Block(blkLexInt)
		v := 0
		for {
			c, ok := p.t.At(p.pos)
			if !ok || !p.t.CharRange(c, '0', '9') {
				break
			}
			v = v*10 + int(c.B-'0')
			if v > 1<<30 {
				v = 1 << 30
			}
			p.pos++
		}
		p.tok, p.tokVal = tokInt, v
	case p.t.CharRange(c, 'a', 'z'):
		p.t.Block(blkLexWord)
		var word taint.String
		for {
			c, ok := p.t.At(p.pos)
			if !ok || !p.t.CharRange(c, 'a', 'z') {
				break
			}
			word = word.Append(c)
			p.pos++
		}
		p.word(word)
	default:
		p.t.Block(blkRejectTok)
		p.tok = tokErr
	}
}

func (p *parser) sym(k tokKind) {
	p.t.Block(blkLexSym)
	p.pos++
	p.tok = k
}

// word classifies an accumulated lowercase word: keyword via wrapped
// strcmp (Tiny-C compares against its words[] table), else a
// single-letter variable.
func (p *parser) word(w taint.String) {
	switch {
	case p.t.StrEq(w, "do"):
		p.t.Block(blkKwDo)
		p.tok = tokDo
	case p.t.StrEq(w, "else"):
		p.t.Block(blkKwElse)
		p.tok = tokElse
	case p.t.StrEq(w, "if"):
		p.t.Block(blkKwIf)
		p.tok = tokIf
	case p.t.StrEq(w, "while"):
		p.t.Block(blkKwWhile)
		p.tok = tokWhile
	case len(w) == 1:
		p.t.Block(blkLexID)
		p.tok, p.tokVal = tokID, int(w[0].B-'a')
	default:
		p.t.Block(blkRejectTok)
		p.tok = tokErr
	}
}

// statement parses one <statement>.
func (p *parser) statement() (*node, bool) {
	p.t.Enter()
	defer p.t.Leave()

	switch p.tok {
	case tokIf:
		p.t.Block(blkStmtIf)
		p.next()
		cond, ok := p.parenExpr()
		if !ok {
			return nil, false
		}
		then, ok := p.statement()
		if !ok {
			return nil, false
		}
		if p.tok == tokElse {
			p.t.Block(blkStmtIfElse)
			p.next()
			els, ok := p.statement()
			if !ok {
				return nil, false
			}
			return &node{kind: ndIfElse, kids: []*node{cond, then, els}}, true
		}
		return &node{kind: ndIf, kids: []*node{cond, then}}, true

	case tokWhile:
		p.t.Block(blkStmtWhile)
		p.next()
		cond, ok := p.parenExpr()
		if !ok {
			return nil, false
		}
		body, ok := p.statement()
		if !ok {
			return nil, false
		}
		return &node{kind: ndWhile, kids: []*node{cond, body}}, true

	case tokDo:
		p.t.Block(blkStmtDo)
		p.next()
		body, ok := p.statement()
		if !ok {
			return nil, false
		}
		if p.tok != tokWhile {
			p.t.Block(blkRejectStmt)
			return nil, false
		}
		p.next()
		cond, ok := p.parenExpr()
		if !ok {
			return nil, false
		}
		if p.tok != tokSemi {
			p.t.Block(blkRejectStmt)
			return nil, false
		}
		p.next()
		return &node{kind: ndDo, kids: []*node{body, cond}}, true

	case tokLbrace:
		p.t.Block(blkStmtBlock)
		p.next()
		seq := &node{kind: ndSeq}
		for p.tok != tokRbrace {
			if p.tok == tokEOF || p.tok == tokErr {
				p.t.Block(blkRejectStmt)
				return nil, false
			}
			p.t.Block(blkStmtBlockItem)
			st, ok := p.statement()
			if !ok {
				return nil, false
			}
			seq.kids = append(seq.kids, st)
		}
		p.next()
		return seq, true

	case tokSemi:
		p.t.Block(blkStmtEmpty)
		p.next()
		return &node{kind: ndEmpty}, true

	case tokEOF, tokErr:
		p.t.Block(blkRejectStmt)
		return nil, false

	default:
		p.t.Block(blkStmtExpr)
		e, ok := p.expr()
		if !ok {
			return nil, false
		}
		if p.tok != tokSemi {
			p.t.Block(blkRejectStmt)
			return nil, false
		}
		p.next()
		return &node{kind: ndExprStmt, kids: []*node{e}}, true
	}
}

// parenExpr parses "(" <expr> ")".
func (p *parser) parenExpr() (*node, bool) {
	p.t.Enter()
	defer p.t.Leave()

	if p.tok != tokLparen {
		p.t.Block(blkRejectExpr)
		return nil, false
	}
	p.t.Block(blkParenOpen)
	p.next()
	e, ok := p.expr()
	if !ok {
		return nil, false
	}
	if p.tok != tokRparen {
		p.t.Block(blkRejectExpr)
		return nil, false
	}
	p.t.Block(blkParenClose)
	p.next()
	return e, true
}

// expr parses <expr> ::= <test> | <id> "=" <expr>. Like the original,
// it parses a test and rewrites to an assignment when an '=' follows a
// bare variable.
func (p *parser) expr() (*node, bool) {
	p.t.Enter()
	defer p.t.Leave()

	if p.tok != tokID {
		return p.test()
	}
	id := p.tokVal
	p.next()
	if p.tok == tokAssign {
		p.t.Block(blkExprAssign)
		p.next()
		rhs, ok := p.expr()
		if !ok {
			return nil, false
		}
		return &node{kind: ndAssign, val: id, kids: []*node{rhs}}, true
	}
	p.t.Block(blkExprTest)
	// Continue the test with the already-parsed variable.
	return p.testFrom(&node{kind: ndVar, val: id})
}

// test parses <test> ::= <sum> [ "<" <sum> ].
func (p *parser) test() (*node, bool) {
	p.t.Enter()
	defer p.t.Leave()

	lhs, ok := p.sum()
	if !ok {
		return nil, false
	}
	return p.testTail(lhs)
}

func (p *parser) testFrom(first *node) (*node, bool) {
	lhs, ok := p.sumFrom(first)
	if !ok {
		return nil, false
	}
	return p.testTail(lhs)
}

func (p *parser) testTail(lhs *node) (*node, bool) {
	if p.tok == tokLess {
		p.t.Block(blkTestLess)
		p.next()
		rhs, ok := p.sum()
		if !ok {
			return nil, false
		}
		return &node{kind: ndLess, kids: []*node{lhs, rhs}}, true
	}
	return lhs, true
}

// sum parses <sum> ::= <term> { ("+"|"-") <term> }.
func (p *parser) sum() (*node, bool) {
	p.t.Enter()
	defer p.t.Leave()

	lhs, ok := p.term()
	if !ok {
		return nil, false
	}
	return p.sumTail(lhs)
}

func (p *parser) sumFrom(first *node) (*node, bool) {
	return p.sumTail(first)
}

func (p *parser) sumTail(lhs *node) (*node, bool) {
	for p.tok == tokPlus || p.tok == tokMinus {
		kind := ndAdd
		blk := uint32(blkSumAdd)
		if p.tok == tokMinus {
			kind = ndSub
			blk = blkSumSub
		}
		p.t.Block(blk)
		p.next()
		rhs, ok := p.term()
		if !ok {
			return nil, false
		}
		lhs = &node{kind: kind, kids: []*node{lhs, rhs}}
	}
	return lhs, true
}

// term parses <term> ::= <id> | <int> | <paren_expr>.
func (p *parser) term() (*node, bool) {
	p.t.Enter()
	defer p.t.Leave()

	switch p.tok {
	case tokID:
		p.t.Block(blkTermID)
		n := &node{kind: ndVar, val: p.tokVal}
		p.next()
		return n, true
	case tokInt:
		p.t.Block(blkTermInt)
		n := &node{kind: ndConst, val: p.tokVal}
		p.next()
		return n, true
	case tokLparen:
		p.t.Block(blkTermParen)
		return p.parenExpr()
	default:
		p.t.Block(blkRejectExpr)
		return nil, false
	}
}

// interp executes the AST with a step budget.
type interp struct {
	t     *trace.Tracer
	vars  [26]int
	steps int
}

func (ip *interp) tick() bool {
	ip.steps--
	if ip.steps <= 0 {
		ip.t.Block(blkExecBudget)
		return false
	}
	return true
}

func (ip *interp) exec(n *node) bool {
	if !ip.tick() {
		return false
	}
	switch n.kind {
	case ndEmpty:
		return true
	case ndSeq:
		for _, k := range n.kids {
			if !ip.exec(k) {
				return false
			}
		}
		return true
	case ndExprStmt:
		_, ok := ip.eval(n.kids[0])
		return ok
	case ndIf:
		v, ok := ip.eval(n.kids[0])
		if !ok {
			return false
		}
		if v != 0 {
			ip.t.Block(blkExecIfTrue)
			return ip.exec(n.kids[1])
		}
		ip.t.Block(blkExecIfFalse)
		return true
	case ndIfElse:
		v, ok := ip.eval(n.kids[0])
		if !ok {
			return false
		}
		if v != 0 {
			ip.t.Block(blkExecIfTrue)
			return ip.exec(n.kids[1])
		}
		ip.t.Block(blkExecElse)
		return ip.exec(n.kids[2])
	case ndWhile:
		for {
			v, ok := ip.eval(n.kids[0])
			if !ok {
				return false
			}
			if v == 0 {
				return true
			}
			ip.t.Block(blkExecWhileIter)
			if !ip.exec(n.kids[1]) {
				return false
			}
			if !ip.tick() {
				return false
			}
		}
	case ndDo:
		for {
			ip.t.Block(blkExecDoIter)
			if !ip.exec(n.kids[0]) {
				return false
			}
			v, ok := ip.eval(n.kids[1])
			if !ok {
				return false
			}
			if v == 0 {
				return true
			}
			if !ip.tick() {
				return false
			}
		}
	}
	return true
}

func (ip *interp) eval(n *node) (int, bool) {
	if !ip.tick() {
		return 0, false
	}
	switch n.kind {
	case ndVar:
		ip.t.Block(blkExecVar)
		return ip.vars[n.val], true
	case ndConst:
		ip.t.Block(blkExecConst)
		return n.val, true
	case ndAdd:
		a, ok := ip.eval(n.kids[0])
		if !ok {
			return 0, false
		}
		b, ok := ip.eval(n.kids[1])
		if !ok {
			return 0, false
		}
		ip.t.Block(blkExecAdd)
		return a + b, true
	case ndSub:
		a, ok := ip.eval(n.kids[0])
		if !ok {
			return 0, false
		}
		b, ok := ip.eval(n.kids[1])
		if !ok {
			return 0, false
		}
		ip.t.Block(blkExecSub)
		return a - b, true
	case ndLess:
		a, ok := ip.eval(n.kids[0])
		if !ok {
			return 0, false
		}
		b, ok := ip.eval(n.kids[1])
		if !ok {
			return 0, false
		}
		ip.t.Block(blkExecLess)
		if a < b {
			return 1, true
		}
		return 0, true
	case ndAssign:
		v, ok := ip.eval(n.kids[0])
		if !ok {
			return 0, false
		}
		ip.t.Block(blkExecAssign)
		ip.vars[n.val] = v
		return v, true
	}
	return 0, true
}

// Inventory is the tinyC token inventory of Table 3: eleven length-1
// tokens, if and do, else, while.
var Inventory = tokens.Inventory{
	tokens.Lit("<"), tokens.Lit("+"), tokens.Lit("-"),
	tokens.Lit(";"), tokens.Lit("="),
	tokens.Lit("{"), tokens.Lit("}"),
	tokens.Lit("("), tokens.Lit(")"),
	tokens.Class("identifier", 1),
	tokens.Class("number", 1),
	tokens.Lit("if"), tokens.Lit("do"),
	tokens.Lit("else"),
	tokens.Lit("while"),
}

// Tokenize lexes input (uninstrumented) and returns the inventory
// tokens present.
func Tokenize(input []byte) map[string]bool {
	out := map[string]bool{}
	kw := map[string]bool{"if": true, "do": true, "else": true, "while": true}
	i := 0
	for i < len(input) {
		b := input[i]
		switch {
		case b == '<' || b == '+' || b == '-' || b == ';' || b == '=' ||
			b == '{' || b == '}' || b == '(' || b == ')':
			out[string(b)] = true
			i++
		case b >= '0' && b <= '9':
			out["number"] = true
			for i < len(input) && input[i] >= '0' && input[i] <= '9' {
				i++
			}
		case b >= 'a' && b <= 'z':
			j := i
			for j < len(input) && input[j] >= 'a' && input[j] <= 'z' {
				j++
			}
			w := string(input[i:j])
			if kw[w] {
				out[w] = true
			} else if len(w) == 1 {
				out["identifier"] = true
			}
			i = j
		default:
			i++
		}
	}
	return out
}
