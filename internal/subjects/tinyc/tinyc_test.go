package tinyc

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

func run(in string) *trace.Record {
	return subject.Execute(New(), []byte(in), trace.Full())
}

func TestNameAndBlocks(t *testing.T) {
	p := New()
	if p.Name() != "tinyc" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Blocks() <= 0 {
		t.Errorf("Blocks = %d", p.Blocks())
	}
}

func TestAcceptReject(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"{;}", true},
		{"if(a<b){a=b;}else{b=a;}", true},
		{"do{x=x+1;}while(x<2);", true},
		{"while(0){a=1;}", true},
		{"{a=(1+2)<3;}", true},
		{"else;", false},
		{"if(a<b{a=1;}", false},
		{"do{a=1;}", false}, // missing while
		{"a+;", false},
	}
	for _, c := range cases {
		if got := run(c.in).Accepted(); got != c.ok {
			t.Errorf("%q accepted=%v, want %v", c.in, got, c.ok)
		}
	}
}

func TestPartialKeywordSignalsProgress(t *testing.T) {
	// "whil" must leave either a strcmp-style comparison or an EOF
	// probe behind: the paper's keyword-synthesis mechanism (§6.2)
	// needs one of the two to extend the prefix to "while".
	rec := run("whil")
	if rec.Accepted() {
		t.Fatal("\"whil\" accepted")
	}
	if len(rec.Comparisons) == 0 && !rec.EOFAtEnd() {
		t.Error("partial keyword left neither comparisons nor an EOF access")
	}
}

func TestInterpreterTerminates(t *testing.T) {
	// The step budget must stop runaway loops; acceptance is still
	// expected because parsing succeeded.
	rec := run("while(1<2)a=a+1;")
	if !rec.Accepted() {
		t.Error("infinite loop program rejected instead of budget-stopped")
	}
}

func TestTokenizeKeywords(t *testing.T) {
	got := Tokenize([]byte("if(a<b){c=1;}else{do;while(0);}"))
	for _, want := range []string{"if", "else", "do", "while"} {
		if !got[want] {
			t.Errorf("token %q not found in %v", want, got)
		}
	}
	if Inventory.Count() != 15 {
		t.Errorf("inventory has %d tokens, Table 3 says 15", Inventory.Count())
	}
}
