// Package mine implements the tool-chain extension the paper proposes
// as future work (§7.4): parser-directed fuzzing is efficient at
// *shallow* exploration, so one should "rely on parser-directed
// fuzzing for initial exploration, use a tool to mine the grammar
// from the resulting sequences, and use the mined grammar for
// generating longer and more complex sequences that contain recursive
// structures".
//
// The miner learns a token-level regular approximation of the input
// language from the fuzzer's valid inputs: tokens become terminal
// classes, and the observed token bigrams (plus start and end sets)
// form an automaton. The generator random-walks the automaton to
// produce longer candidate inputs, which are validated against the
// subject — exactly the "stumbling block" experiment the paper
// sketches: without the valid and diverse seed inputs produced by
// pFuzzer there is nothing to mine from.
package mine

import (
	"math/rand"
	"sort"
	"strings"
)

// Token is one mined terminal: a token class and one or more concrete
// spellings observed for it.
type Token struct {
	Class     string
	Spellings []string
}

// Grammar is a token-bigram approximation of an input language.
type Grammar struct {
	tokens map[string]*Token          // class -> spellings
	start  map[string]bool            // classes observed first
	end    map[string]bool            // classes observed last
	follow map[string]map[string]bool // class -> classes observed after it
	empty  bool                       // the empty input was valid
}

// Lexer splits an input into (class, spelling) pairs; subjects'
// tokenizers are set-valued, so mining uses a sequence-valued lexer.
type Lexer func(input []byte) []Lexeme

// Lexeme is one token occurrence in an input.
type Lexeme struct {
	Class    string
	Spelling string
}

// Mine learns a grammar from a corpus of valid inputs.
func Mine(corpus [][]byte, lex Lexer) *Grammar {
	g := &Grammar{
		tokens: map[string]*Token{},
		start:  map[string]bool{},
		end:    map[string]bool{},
		follow: map[string]map[string]bool{},
	}
	for _, input := range corpus {
		seq := lex(input)
		if len(seq) == 0 {
			g.empty = true
			continue
		}
		g.start[seq[0].Class] = true
		g.end[seq[len(seq)-1].Class] = true
		for i, lx := range seq {
			tok := g.tokens[lx.Class]
			if tok == nil {
				tok = &Token{Class: lx.Class}
				g.tokens[lx.Class] = tok
			}
			if !contains(tok.Spellings, lx.Spelling) {
				tok.Spellings = append(tok.Spellings, lx.Spelling)
			}
			if i > 0 {
				prev := seq[i-1].Class
				if g.follow[prev] == nil {
					g.follow[prev] = map[string]bool{}
				}
				g.follow[prev][lx.Class] = true
			}
		}
	}
	return g
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Classes returns the mined token classes, sorted.
func (g *Grammar) Classes() []string {
	out := make([]string, 0, len(g.tokens))
	for c := range g.tokens {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Follows returns the classes observed after class, sorted.
func (g *Grammar) Follows(class string) []string {
	var out []string
	for c := range g.follow[class] {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Starts returns the classes observed at input start, sorted.
func (g *Grammar) Starts() []string {
	var out []string
	for c := range g.start {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Generate random-walks the bigram automaton for up to maxTokens
// tokens, preferring to stop at a class observed in end position. The
// outputs are candidates: longer and more repetitive than anything in
// the corpus, to be validated against the subject.
func (g *Grammar) Generate(rng *rand.Rand, maxTokens int) []byte {
	starts := g.Starts()
	if len(starts) == 0 {
		return nil
	}
	var sb strings.Builder
	class := starts[rng.Intn(len(starts))]
	for i := 0; i < maxTokens; i++ {
		tok := g.tokens[class]
		if tok == nil || len(tok.Spellings) == 0 {
			break
		}
		sb.WriteString(tok.Spellings[rng.Intn(len(tok.Spellings))])
		follows := g.Follows(class)
		if len(follows) == 0 {
			break
		}
		// Once past the minimum, stop early when an end class is
		// reached, so outputs tend to be well-formed.
		if g.end[class] && i >= maxTokens/2 {
			break
		}
		class = follows[rng.Intn(len(follows))]
	}
	return []byte(sb.String())
}

// Stats summarizes a mined grammar.
type Stats struct {
	Classes   int
	Spellings int
	Bigrams   int
	Starts    int
	Ends      int
}

// Stats returns size statistics for the grammar.
func (g *Grammar) Stats() Stats {
	s := Stats{Classes: len(g.tokens), Starts: len(g.start), Ends: len(g.end)}
	for _, t := range g.tokens {
		s.Spellings += len(t.Spellings)
	}
	for _, f := range g.follow {
		s.Bigrams += len(f)
	}
	return s
}
