// Package mine implements the tool-chain extension the paper proposes
// as future work (§7.4): parser-directed fuzzing is efficient at
// *shallow* exploration, so one should "rely on parser-directed
// fuzzing for initial exploration, use a tool to mine the grammar
// from the resulting sequences, and use the mined grammar for
// generating longer and more complex sequences that contain recursive
// structures".
//
// The miner learns a token-level regular approximation of the input
// language from the fuzzer's valid inputs: tokens become terminal
// classes, and the observed token bigrams (plus start and end sets)
// form a weighted automaton. The generator random-walks the automaton
// — biased towards frequently observed transitions and spellings — to
// produce longer candidate inputs, which are validated against the
// subject: exactly the "stumbling block" experiment the paper
// sketches, since without the valid and diverse seed inputs produced
// by pFuzzer there is nothing to mine from.
//
// The grammar is incremental: the hybrid campaign engine
// (internal/core, Config.MinePhase) feeds every newly emitted valid
// input back through Add, so the automaton grows as the corpus grows.
package mine

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
)

// Token is one mined terminal: a token class and the pool of concrete
// spellings observed for it, each weighted by its occurrence count.
type Token struct {
	Class     string
	Spellings []string // insertion-ordered spelling pool
	counts    []int    // occurrences per spelling, parallel to Spellings
	total     int      // sum of counts
}

// pick returns a spelling drawn proportionally to observed frequency,
// with add-one smoothing so rare spellings keep being exercised.
func (t *Token) pick(rng *rand.Rand) string {
	if len(t.Spellings) == 1 {
		return t.Spellings[0]
	}
	n := rng.Intn(t.total + len(t.Spellings))
	for i, c := range t.counts {
		if n < c+1 {
			return t.Spellings[i]
		}
		n -= c + 1
	}
	return t.Spellings[len(t.Spellings)-1]
}

// Grammar is a token-bigram approximation of an input language.
// Transitions and spellings carry observation counts, so generation
// follows the corpus distribution instead of treating a once-seen
// bigram the same as a dominant one.
type Grammar struct {
	lex         Lexer
	tokens      map[string]*Token
	start       map[string]int            // class -> times observed first
	startOrder  []string                  // insertion order (deterministic walks)
	end         map[string]int            // class -> times observed last
	follow      map[string]map[string]int // class -> class -> count
	followOrder map[string][]string       // insertion order per class
	emitted     map[string]bool           // candidate dedup for GenerateBatch
	sepCache    map[string]bool           // memoized needSep per spelling pair
	empty       bool                      // the empty input was valid
}

// Lexer splits an input into (class, spelling) pairs; subjects'
// tokenizers are set-valued, so mining uses a sequence-valued lexer.
type Lexer func(input []byte) []Lexeme

// Lexeme is one token occurrence in an input.
type Lexeme struct {
	Class    string
	Spelling string
}

// NewGrammar returns an empty grammar that lexes inputs with lex.
// Feed it inputs incrementally with Add or Seed.
func NewGrammar(lex Lexer) *Grammar {
	return &Grammar{
		lex:         lex,
		tokens:      map[string]*Token{},
		start:       map[string]int{},
		end:         map[string]int{},
		follow:      map[string]map[string]int{},
		followOrder: map[string][]string{},
		emitted:     map[string]bool{},
		sepCache:    map[string]bool{},
	}
}

// Mine learns a grammar from a corpus of valid inputs.
func Mine(corpus [][]byte, lex Lexer) *Grammar {
	g := NewGrammar(lex)
	g.Seed(corpus)
	return g
}

// Seed folds a corpus of valid inputs into the grammar. It is the
// incremental bulk API: calling Seed repeatedly with new corpora (or
// Add with single inputs) grows the same automaton.
func (g *Grammar) Seed(corpus [][]byte) {
	for _, input := range corpus {
		g.Add(input)
	}
}

// Add folds one valid input into the grammar, incrementing the
// weights of every spelling and bigram it exhibits.
func (g *Grammar) Add(input []byte) {
	seq := g.lex(input)
	if len(seq) == 0 {
		g.empty = true
		return
	}
	if g.start[seq[0].Class] == 0 {
		g.startOrder = append(g.startOrder, seq[0].Class)
	}
	g.start[seq[0].Class]++
	g.end[seq[len(seq)-1].Class]++
	for i, lx := range seq {
		tok := g.tokens[lx.Class]
		if tok == nil {
			tok = &Token{Class: lx.Class}
			g.tokens[lx.Class] = tok
		}
		tok.add(lx.Spelling)
		if i > 0 {
			prev := seq[i-1].Class
			if g.follow[prev] == nil {
				g.follow[prev] = map[string]int{}
			}
			if g.follow[prev][lx.Class] == 0 {
				g.followOrder[prev] = append(g.followOrder[prev], lx.Class)
			}
			g.follow[prev][lx.Class]++
		}
	}
}

func (t *Token) add(spelling string) {
	t.total++
	for i, s := range t.Spellings {
		if s == spelling {
			t.counts[i]++
			return
		}
	}
	t.Spellings = append(t.Spellings, spelling)
	t.counts = append(t.counts, 1)
}

// Ready reports whether the grammar has mined enough to generate:
// at least one observed start class.
func (g *Grammar) Ready() bool { return len(g.startOrder) > 0 }

// Classes returns the mined token classes, sorted.
func (g *Grammar) Classes() []string {
	out := make([]string, 0, len(g.tokens))
	for c := range g.tokens {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Follows returns the classes observed after class, sorted.
func (g *Grammar) Follows(class string) []string {
	var out []string
	for c := range g.follow[class] {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Starts returns the classes observed at input start, sorted.
func (g *Grammar) Starts() []string {
	var out []string
	for c := range g.start {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// weightedPick draws a key from order proportionally to weights, with
// add-one (Laplace) smoothing: frequent transitions dominate without
// starving the rare ones a small corpus has seen only once.
func weightedPick(rng *rand.Rand, order []string, weights map[string]int) string {
	if len(order) == 1 {
		return order[0]
	}
	total := 0
	for _, k := range order {
		total += weights[k] + 1
	}
	n := rng.Intn(total)
	for _, k := range order {
		if n < weights[k]+1 {
			return k
		}
		n -= weights[k] + 1
	}
	return order[len(order)-1]
}

// GenerateTokens random-walks the weighted bigram automaton for
// between minTokens and maxTokens tokens. Once past the minimum, the
// end set acts as a weighted ε-accept edge: the walk stops at a class
// in proportion to how often the corpus ended there versus continued,
// so outputs terminate the way observed inputs do. A walk that
// dead-ends (a class with no observed followers) before reaching
// minTokens returns nil — generation is rejection sampling towards
// walks that are both long and naturally terminated, which is what
// makes the candidates worth spending executions on.
//
// The returned sequence is the generation's ground truth: Render must
// re-lex back to exactly this sequence.
func (g *Grammar) GenerateTokens(rng *rand.Rand, minTokens, maxTokens int) []Lexeme {
	return g.walk(rng, minTokens, maxTokens, true)
}

func (g *Grammar) walk(rng *rand.Rand, minTokens, maxTokens int, strict bool) []Lexeme {
	if len(g.startOrder) == 0 {
		return nil
	}
	class := weightedPick(rng, g.startOrder, g.start)
	var seq []Lexeme
	for i := 0; i < maxTokens; i++ {
		tok := g.tokens[class]
		if tok == nil || len(tok.Spellings) == 0 {
			break
		}
		seq = append(seq, Lexeme{Class: class, Spelling: tok.pick(rng)})
		order := g.followOrder[class]
		if len(order) == 0 {
			if strict && len(seq) < minTokens {
				return nil // died before the minimum: reject the walk
			}
			break
		}
		if len(seq) >= minTokens && g.end[class] > 0 {
			cont := 0
			for _, k := range order {
				cont += g.follow[class][k]
			}
			if rng.Intn(g.end[class]+cont) < g.end[class] {
				break
			}
		}
		class = weightedPick(rng, order, g.follow[class])
	}
	return seq
}

// Render concatenates a token sequence into an input, inserting a
// separator wherever two adjacent spellings would otherwise re-lex as
// a single token (for example keyword "int" followed by identifier
// "x" must not fuse into identifier "intx"). The check is performed
// with the grammar's own lexer, so it adapts to whatever token rules
// the subject has.
func (g *Grammar) Render(seq []Lexeme) []byte {
	var sb strings.Builder
	for i, lx := range seq {
		if i > 0 && g.needSep(seq[i-1].Spelling, lx.Spelling) {
			sb.WriteByte(' ')
		}
		sb.WriteString(lx.Spelling)
	}
	return []byte(sb.String())
}

// needSep reports whether prev and next, written back-to-back, fail
// to re-lex as exactly the two original spellings. The answer depends
// only on the pair, and batch generation re-renders the same small
// vocabulary thousands of times per mining round, so it is memoized.
// (A Grammar, like the campaign state that owns it, is used from a
// single goroutine.)
func (g *Grammar) needSep(prev, next string) bool {
	key := prev + "\x00" + next
	if sep, ok := g.sepCache[key]; ok {
		return sep
	}
	relex := g.lex([]byte(prev + next))
	sep := len(relex) != 2 || relex[0].Spelling != prev || relex[1].Spelling != next
	g.sepCache[key] = sep
	return sep
}

// Generate random-walks the automaton and renders the result,
// aiming for at least maxTokens/2 tokens but keeping whatever a
// dead-ended walk produced. The outputs are candidates: longer and
// more repetitive than anything in the corpus, to be validated
// against the subject.
func (g *Grammar) Generate(rng *rand.Rand, maxTokens int) []byte {
	return g.Render(g.walk(rng, maxTokens/2, maxTokens, false))
}

// GenerateBatch produces up to n candidates none of which the grammar
// has handed out before (dedup persists across batches, so a growing
// corpus keeps yielding fresh candidates instead of re-validating old
// ones). It prefers long, naturally terminated walks — rejection
// sampling via GenerateTokens' strict mode — and halves the length
// floor whenever a sampling round yields nothing, so sparse automata
// (few observed bigrams, no cycles) still generate instead of
// starving the caller. It gives up after a bounded number of draws.
func (g *Grammar) GenerateBatch(rng *rand.Rand, maxTokens, n int) [][]byte {
	var out [][]byte
	for minTok := maxTokens / 4; len(out) == 0 && minTok >= 0; minTok = minTok/2 - 1 {
		for tries := 0; tries < 16*n && len(out) < n; tries++ {
			gen := g.Render(g.walk(rng, minTok, maxTokens, true))
			if len(gen) == 0 || g.emitted[string(gen)] {
				continue
			}
			g.emitted[string(gen)] = true
			out = append(out, gen)
		}
	}
	return out
}

// Emitted returns every candidate GenerateBatch has handed out, in
// lexicographic order. Together with the corpus fed through Add/Seed
// it makes a grammar fully reconstructible: counts replay from the
// corpus, and MarkEmitted reloads this set — which is generator
// state, not minable from the corpus — so a restored campaign's
// batches dedup against exactly what the original already produced.
func (g *Grammar) Emitted() [][]byte {
	out := make([][]byte, 0, len(g.emitted))
	for k := range g.emitted {
		out = append(out, []byte(k))
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out
}

// MarkEmitted marks candidates as already handed out by
// GenerateBatch (the snapshot-restore path; see Emitted).
func (g *Grammar) MarkEmitted(cands [][]byte) {
	for _, c := range cands {
		g.emitted[string(c)] = true
	}
}

// Stats summarizes a mined grammar.
type Stats struct {
	Classes   int
	Spellings int
	Bigrams   int
	Starts    int
	Ends      int
}

// Stats returns size statistics for the grammar. The sums are
// commutative, but iterating in sorted class order keeps every
// traversal of the grammar deterministic by construction.
func (g *Grammar) Stats() Stats {
	s := Stats{Classes: len(g.tokens), Starts: len(g.start), Ends: len(g.end)}
	for _, c := range g.Classes() {
		s.Spellings += len(g.tokens[c].Spellings)
	}
	follows := make([]string, 0, len(g.follow))
	for c := range g.follow {
		follows = append(follows, c)
	}
	sort.Strings(follows)
	for _, c := range follows {
		s.Bigrams += len(g.follow[c])
	}
	return s
}
