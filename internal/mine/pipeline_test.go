// External test package: it drives a real fuzzing campaign through
// internal/core, which itself imports mine for the hybrid engine's
// grammar-feedback phase, so this test cannot live in package mine.
package mine_test

import (
	"math/rand"
	"testing"

	"pfuzzer/internal/core"
	"pfuzzer/internal/mine"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/trace"
)

// TestPipelineOnExpr runs the full §7.4 tool chain: fuzz the expr
// parser, mine a grammar from the valid inputs, generate longer
// inputs, and measure the acceptance rate — the mined grammar must
// produce mostly valid inputs that are longer than the corpus.
func TestPipelineOnExpr(t *testing.T) {
	res := core.New(expr.New(), core.Config{Seed: 1, MaxExecs: 10000}).Run()
	if len(res.Valids) == 0 {
		t.Fatal("fuzzing produced no corpus to mine")
	}
	g := mine.Mine(res.ValidInputs(), mine.SimpleLexer(nil))

	rng := rand.New(rand.NewSource(9))
	longest := 0
	for _, v := range res.Valids {
		if len(v.Input) > longest {
			longest = len(v.Input)
		}
	}
	accepted, total, longer := 0, 0, 0
	for i := 0; i < 300; i++ {
		gen := g.Generate(rng, 40)
		if len(gen) == 0 {
			continue
		}
		total++
		if len(gen) > longest {
			longer++
		}
		rec := subject.Execute(expr.New(), gen, trace.Options{})
		if rec.Accepted() {
			accepted++
		}
	}
	if total == 0 {
		t.Fatal("generator produced nothing")
	}
	// A token-bigram automaton is a regular approximation: it cannot
	// balance parentheses, so a fraction of generations is invalid —
	// the gap real grammar mining (AutoGram, §7.4) would close.
	rate := float64(accepted) / float64(total)
	if rate < 0.15 {
		t.Errorf("mined-grammar acceptance rate %.2f too low (%d/%d)", rate, accepted, total)
	}
	if longer == 0 {
		t.Error("generator never exceeded the corpus length")
	}
	t.Logf("acceptance %.0f%%, %d/%d longer than corpus max %d", rate*100, longer, total, longest)
}
