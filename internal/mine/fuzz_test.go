package mine

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the mining lexers (go test -fuzz, seed
// corpora under testdata/fuzz/). These are crash hunts, not semantic
// oracles: the lexers are fed raw fuzzer output by the hybrid
// campaign, so arbitrary bytes must never panic or read out of
// bounds — the trailing-backslash slice-bounds crash fixed in PR 2 is
// exactly the class they guard against. The one cheap structural
// invariant asserted is that spellings are non-overlapping input
// substrings (their total length cannot exceed the input's), which
// holds for every lexer by construction and costs nothing to check.

// lexInvariants runs one lexer over data and checks the substring
// invariant; the real assertion is that lex neither panics nor slices
// out of bounds.
func lexInvariants(t *testing.T, lex Lexer, data []byte) {
	total := 0
	for _, tok := range lex(data) {
		if tok.Spelling == "" {
			t.Fatalf("lexer produced an empty spelling (class %q) on %q", tok.Class, data)
		}
		total += len(tok.Spelling)
	}
	if total > len(data) {
		t.Fatalf("lexer spellings cover %d bytes of a %d-byte input %q", total, len(data), data)
	}
}

func FuzzSimpleLexer(f *testing.F) {
	f.Add([]byte("while (a < 10) { a = a + 1; }"))
	f.Add([]byte(`{"key": "va\"lue", "n": [1, 2.5]}`))
	f.Add([]byte("\"unterminated \\"))
	f.Add([]byte("_id$ 007 x9"))
	f.Fuzz(func(t *testing.T, data []byte) {
		lex := SimpleLexer([]string{"while", "if", "else", "true", "false", "null"})
		lexInvariants(t, lex, data)
		// The miner's growth path must digest arbitrary corpora too.
		g := NewGrammar(lex)
		g.Add(data)
		g.Add(bytes.ToUpper(data))
	})
}

func FuzzDelimLexer(f *testing.F) {
	f.Add([]byte("[section]\nkey = value\n; comment\n"))
	f.Add([]byte("a,b,\"c,d\"\ne,f,g\n"))
	f.Add([]byte(",,\n,"))
	f.Add([]byte("==[ ]=\t\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		lexInvariants(t, DelimLexer("[]=;\n", "text"), data)
		lexInvariants(t, DelimLexer(",\n", "field"), data)
		g := NewGrammar(DelimLexer("[]=;\n", "text"))
		g.Add(data)
	})
}
