package mine

// SimpleLexer builds a sequence-valued Lexer suitable for the
// C-family subjects: punctuation characters are their own classes,
// maximal letter runs are keywords (when listed) or "identifier",
// digit runs are "number", and double-quoted strings are "string".
// Whitespace separates tokens and is dropped.
func SimpleLexer(keywords []string) Lexer {
	kw := map[string]bool{}
	for _, k := range keywords {
		kw[k] = true
	}
	return func(input []byte) []Lexeme {
		var out []Lexeme
		i := 0
		for i < len(input) {
			b := input[i]
			switch {
			case b == ' ' || b == '\t' || b == '\n' || b == '\r':
				i++
			case b >= '0' && b <= '9':
				j := i
				for j < len(input) && input[j] >= '0' && input[j] <= '9' {
					j++
				}
				out = append(out, Lexeme{Class: "number", Spelling: string(input[i:j])})
				i = j
			case isLetter(b):
				j := i
				for j < len(input) && (isLetter(input[j]) || input[j] >= '0' && input[j] <= '9') {
					j++
				}
				w := string(input[i:j])
				class := "identifier"
				if kw[w] {
					class = w
				}
				out = append(out, Lexeme{Class: class, Spelling: w})
				i = j
			case b == '"':
				j := i + 1
				for j < len(input) && input[j] != '"' {
					if input[j] == '\\' {
						j++ // skip the escaped character...
					}
					j++
				}
				if j < len(input) {
					j++ // consume the closing quote
				}
				// An unterminated string whose last byte is a
				// backslash leaves j == len(input)+1 (the escape skip
				// ran off the end); clamp before slicing. This lexer
				// is fed raw fuzzer output, so truncated strings are
				// routine, not exceptional.
				if j > len(input) {
					j = len(input)
				}
				out = append(out, Lexeme{Class: "string", Spelling: string(input[i:j])})
				i = j
			default:
				// Slice the input rather than converting the byte:
				// string(b) on a byte is a rune conversion, so 0x80..0xff
				// would UTF-8-encode into a two-byte spelling that is not
				// an input substring — found by FuzzSimpleLexer, and
				// fatal to the Render ∘ lex identity on non-ASCII bytes.
				s := string(input[i : i+1])
				out = append(out, Lexeme{Class: s, Spelling: s})
				i++
			}
		}
		return out
	}
}

func isLetter(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b == '_' || b == '$'
}

// DelimLexer builds a Lexer for flat, delimiter-structured formats
// (ini, csv): every byte of delims is its own single-character class,
// space, tab and carriage return separate tokens and are dropped, and
// maximal runs of anything else form one token of class text. It is
// what lets the non-C-family subjects be mined at all.
func DelimLexer(delims string, text string) Lexer {
	var isDelim [256]bool
	for i := 0; i < len(delims); i++ {
		isDelim[delims[i]] = true
	}
	return func(input []byte) []Lexeme {
		var out []Lexeme
		i := 0
		for i < len(input) {
			b := input[i]
			switch {
			case isDelim[b]:
				// input[i:i+1], not string(b): see SimpleLexer's default
				// case — a byte conversion would UTF-8-encode >= 0x80.
				s := string(input[i : i+1])
				out = append(out, Lexeme{Class: s, Spelling: s})
				i++
			case b == ' ' || b == '\t' || b == '\r':
				i++
			default:
				j := i
				for j < len(input) && !isDelim[input[j]] &&
					input[j] != ' ' && input[j] != '\t' && input[j] != '\r' {
					j++
				}
				out = append(out, Lexeme{Class: text, Spelling: string(input[i:j])})
				i = j
			}
		}
		return out
	}
}
