package mine

// SimpleLexer builds a sequence-valued Lexer suitable for the
// C-family subjects: punctuation characters are their own classes,
// maximal letter runs are keywords (when listed) or "identifier",
// digit runs are "number", and double-quoted strings are "string".
// Whitespace separates tokens and is dropped.
func SimpleLexer(keywords []string) Lexer {
	kw := map[string]bool{}
	for _, k := range keywords {
		kw[k] = true
	}
	return func(input []byte) []Lexeme {
		var out []Lexeme
		i := 0
		for i < len(input) {
			b := input[i]
			switch {
			case b == ' ' || b == '\t' || b == '\n' || b == '\r':
				i++
			case b >= '0' && b <= '9':
				j := i
				for j < len(input) && input[j] >= '0' && input[j] <= '9' {
					j++
				}
				out = append(out, Lexeme{Class: "number", Spelling: string(input[i:j])})
				i = j
			case isLetter(b):
				j := i
				for j < len(input) && (isLetter(input[j]) || input[j] >= '0' && input[j] <= '9') {
					j++
				}
				w := string(input[i:j])
				class := "identifier"
				if kw[w] {
					class = w
				}
				out = append(out, Lexeme{Class: class, Spelling: w})
				i = j
			case b == '"':
				j := i + 1
				for j < len(input) && input[j] != '"' {
					if input[j] == '\\' {
						j++
					}
					j++
				}
				if j < len(input) {
					j++
				}
				out = append(out, Lexeme{Class: "string", Spelling: string(input[i:j])})
				i = j
			default:
				out = append(out, Lexeme{Class: string(b), Spelling: string(b)})
				i++
			}
		}
		return out
	}
}

func isLetter(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b == '_' || b == '$'
}
