package mine

import (
	"math/rand"
	"testing"
)

func corpus(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestMineLearnsBigrams(t *testing.T) {
	lex := SimpleLexer(nil)
	g := Mine(corpus("1+2", "(3)", "1-2"), lex)

	classes := g.Classes()
	want := map[string]bool{"number": true, "+": true, "-": true, "(": true, ")": true}
	for _, c := range classes {
		if !want[c] {
			t.Errorf("unexpected class %q", c)
		}
		delete(want, c)
	}
	if len(want) > 0 {
		t.Errorf("missing classes: %v", want)
	}

	follows := g.Follows("number")
	if len(follows) == 0 {
		t.Fatal("number has no followers")
	}
	if !containsStr(follows, "+") || !containsStr(follows, "-") || !containsStr(follows, ")") {
		t.Errorf("number follows = %v", follows)
	}
	if !containsStr(g.Starts(), "number") || !containsStr(g.Starts(), "(") {
		t.Errorf("starts = %v", g.Starts())
	}
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestSimpleLexerKeywords(t *testing.T) {
	lex := SimpleLexer([]string{"while", "if"})
	seq := lex([]byte(`while(a<1)"s";ifx`))
	wantClasses := []string{"while", "(", "identifier", "<", "number", ")", "string", ";", "identifier"}
	if len(seq) != len(wantClasses) {
		t.Fatalf("lexemes = %v", seq)
	}
	for i, w := range wantClasses {
		if seq[i].Class != w {
			t.Errorf("lexeme %d = %q, want %q", i, seq[i].Class, w)
		}
	}
}

// TestSimpleLexerUnterminatedString is the regression test for the
// slice-bounds crash: an unterminated string whose last byte is a
// backslash used to advance the scan index to len(input)+1 and panic
// on the final slice. The lexer is fed raw fuzzer output, so these
// inputs occur in every campaign.
func TestSimpleLexerUnterminatedString(t *testing.T) {
	lex := SimpleLexer(nil)
	for _, in := range []string{
		`"ab\`,    // trailing backslash: the crashing input
		`"\`,      // escape as the only string content
		`"ab`,     // unterminated, no escape
		`"`,       // bare quote at end of input
		`x"a\"b\`, // escape mid-string, then trailing backslash
	} {
		seq := lex([]byte(in)) // must not panic
		if len(seq) == 0 {
			t.Errorf("lex(%q) produced no lexemes", in)
			continue
		}
		last := seq[len(seq)-1]
		if last.Class != "string" {
			t.Errorf("lex(%q) last lexeme = %+v, want a string", in, last)
		}
	}
	// A properly terminated escaped string still lexes as one token.
	seq := lex([]byte(`"a\"b"`))
	if len(seq) != 1 || seq[0].Spelling != `"a\"b"` {
		t.Errorf("escaped string lexed as %v", seq)
	}
}

func TestStats(t *testing.T) {
	g := Mine(corpus("1+2", "2+3"), SimpleLexer(nil))
	s := g.Stats()
	if s.Classes != 2 { // number, +
		t.Errorf("Classes = %d, want 2", s.Classes)
	}
	if s.Spellings != 4 { // 1, 2, 3 and "+"
		t.Errorf("Spellings = %d, want 4", s.Spellings)
	}
	if s.Bigrams != 2 { // number->+, +->number
		t.Errorf("Bigrams = %d, want 2", s.Bigrams)
	}
}

// TestIncrementalAddMatchesMine checks the Seed/Add incremental API:
// feeding a corpus input-by-input must yield the same automaton as
// mining it in one shot.
func TestIncrementalAddMatchesMine(t *testing.T) {
	c := corpus("1+2", "(3)", "1-2", "4+(5)")
	bulk := Mine(c, SimpleLexer(nil))
	inc := NewGrammar(SimpleLexer(nil))
	for _, in := range c {
		inc.Add(in)
	}
	if bulk.Stats() != inc.Stats() {
		t.Errorf("incremental stats %+v != bulk stats %+v", inc.Stats(), bulk.Stats())
	}
	for _, cl := range bulk.Classes() {
		bf, inf := bulk.Follows(cl), inc.Follows(cl)
		if len(bf) != len(inf) {
			t.Errorf("class %q: follows %v != %v", cl, inf, bf)
		}
	}
	if !inc.Ready() {
		t.Error("grammar with mined inputs reports not ready")
	}
	if NewGrammar(SimpleLexer(nil)).Ready() {
		t.Error("empty grammar reports ready")
	}
}

// TestRenderRoundTrip is the regression test for the token
// concatenation bug: rendering a generated token sequence and lexing
// it back must reproduce the sequence exactly. Without boundary
// separators, keyword "int" followed by identifier "x" fused into one
// identifier "intx", making generated candidates systematically
// invalid for keyword subjects.
func TestRenderRoundTrip(t *testing.T) {
	lex := SimpleLexer([]string{"int", "while"})
	g := Mine(corpus("int x ; while ( 1 ) y = 2 ;", "int y2 ;"), lex)
	rng := rand.New(rand.NewSource(3))
	checked := 0
	for i := 0; i < 200; i++ {
		seq := g.GenerateTokens(rng, 12, 24)
		if len(seq) == 0 {
			continue
		}
		out := g.Render(seq)
		relex := lex(out)
		if len(relex) != len(seq) {
			t.Fatalf("round trip changed token count: %q -> %d tokens, want %d (%v)",
				out, len(relex), len(seq), seq)
		}
		for j := range seq {
			if relex[j] != seq[j] {
				t.Fatalf("round trip changed token %d of %q: %+v, want %+v",
					j, out, relex[j], seq[j])
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("generator produced nothing to check")
	}
}

// TestRenderSeparatesFusingTokens pins the concrete fusion cases.
func TestRenderSeparatesFusingTokens(t *testing.T) {
	lex := SimpleLexer([]string{"int"})
	g := NewGrammar(lex)
	g.Add([]byte("int x ; 1 2"))
	for _, tc := range []struct {
		seq  []Lexeme
		want string
	}{
		{[]Lexeme{{"int", "int"}, {"identifier", "x"}}, "int x"},
		{[]Lexeme{{"number", "1"}, {"number", "2"}}, "1 2"},
		{[]Lexeme{{"identifier", "x"}, {";", ";"}}, "x;"},
		{[]Lexeme{{"(", "("}, {")", ")"}}, "()"},
	} {
		if got := string(g.Render(tc.seq)); got != tc.want {
			t.Errorf("Render(%v) = %q, want %q", tc.seq, got, tc.want)
		}
	}
}

// TestGenerateBatchDedups checks candidate dedup across batches.
func TestGenerateBatchDedups(t *testing.T) {
	g := Mine(corpus("1+2", "3-4"), SimpleLexer(nil))
	rng := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for round := 0; round < 4; round++ {
		for _, c := range g.GenerateBatch(rng, 10, 25) {
			if seen[string(c)] {
				t.Fatalf("duplicate candidate %q handed out twice", c)
			}
			seen[string(c)] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("GenerateBatch produced nothing")
	}
}

// TestWeightedGenerationFollowsCorpus checks that spelling choice is
// frequency-weighted: a spelling seen 9× as often should dominate the
// generated outputs.
func TestWeightedGenerationFollowsCorpus(t *testing.T) {
	var c [][]byte
	for i := 0; i < 9; i++ {
		c = append(c, []byte("1"))
	}
	c = append(c, []byte("2"))
	g := Mine(c, SimpleLexer(nil))
	rng := rand.New(rand.NewSource(5))
	ones := 0
	const n = 500
	for i := 0; i < n; i++ {
		if s := string(g.Generate(rng, 1)); s == "1" {
			ones++
		}
	}
	if ones < n*7/10 {
		t.Errorf("dominant spelling generated only %d/%d times", ones, n)
	}
}

func TestDelimLexer(t *testing.T) {
	lex := DelimLexer("[]=;\n", "text")
	seq := lex([]byte("[sec]\nkey = value\n"))
	wantClasses := []string{"[", "text", "]", "\n", "text", "=", "text", "\n"}
	if len(seq) != len(wantClasses) {
		t.Fatalf("lexemes = %v", seq)
	}
	for i, w := range wantClasses {
		if seq[i].Class != w {
			t.Errorf("lexeme %d = %q, want %q", i, seq[i].Class, w)
		}
	}
	if seq[4].Spelling != "key" || seq[6].Spelling != "value" {
		t.Errorf("text spellings = %q, %q", seq[4].Spelling, seq[6].Spelling)
	}
}
