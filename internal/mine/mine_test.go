package mine

import (
	"math/rand"
	"testing"

	"pfuzzer/internal/core"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/trace"
)

func corpus(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestMineLearnsBigrams(t *testing.T) {
	lex := SimpleLexer(nil)
	g := Mine(corpus("1+2", "(3)", "1-2"), lex)

	classes := g.Classes()
	want := map[string]bool{"number": true, "+": true, "-": true, "(": true, ")": true}
	for _, c := range classes {
		if !want[c] {
			t.Errorf("unexpected class %q", c)
		}
		delete(want, c)
	}
	if len(want) > 0 {
		t.Errorf("missing classes: %v", want)
	}

	follows := g.Follows("number")
	if len(follows) == 0 {
		t.Fatal("number has no followers")
	}
	if !containsStr(follows, "+") || !containsStr(follows, "-") || !containsStr(follows, ")") {
		t.Errorf("number follows = %v", follows)
	}
	if !containsStr(g.Starts(), "number") || !containsStr(g.Starts(), "(") {
		t.Errorf("starts = %v", g.Starts())
	}
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestSimpleLexerKeywords(t *testing.T) {
	lex := SimpleLexer([]string{"while", "if"})
	seq := lex([]byte(`while(a<1)"s";ifx`))
	wantClasses := []string{"while", "(", "identifier", "<", "number", ")", "string", ";", "identifier"}
	if len(seq) != len(wantClasses) {
		t.Fatalf("lexemes = %v", seq)
	}
	for i, w := range wantClasses {
		if seq[i].Class != w {
			t.Errorf("lexeme %d = %q, want %q", i, seq[i].Class, w)
		}
	}
}

func TestStats(t *testing.T) {
	g := Mine(corpus("1+2", "2+3"), SimpleLexer(nil))
	s := g.Stats()
	if s.Classes != 2 { // number, +
		t.Errorf("Classes = %d, want 2", s.Classes)
	}
	if s.Spellings != 4 { // 1, 2, 3 and "+"
		t.Errorf("Spellings = %d, want 4", s.Spellings)
	}
	if s.Bigrams != 2 { // number->+, +->number
		t.Errorf("Bigrams = %d, want 2", s.Bigrams)
	}
}

// TestPipelineOnExpr runs the full §7.4 tool chain: fuzz the expr
// parser, mine a grammar from the valid inputs, generate longer
// inputs, and measure the acceptance rate — the mined grammar must
// produce mostly valid inputs that are longer than the corpus.
func TestPipelineOnExpr(t *testing.T) {
	res := core.New(expr.New(), core.Config{Seed: 1, MaxExecs: 10000}).Run()
	if len(res.Valids) == 0 {
		t.Fatal("fuzzing produced no corpus to mine")
	}
	g := Mine(res.ValidInputs(), SimpleLexer(nil))

	rng := rand.New(rand.NewSource(9))
	longest := 0
	for _, v := range res.Valids {
		if len(v.Input) > longest {
			longest = len(v.Input)
		}
	}
	accepted, total, longer := 0, 0, 0
	for i := 0; i < 300; i++ {
		gen := g.Generate(rng, 40)
		if len(gen) == 0 {
			continue
		}
		total++
		if len(gen) > longest {
			longer++
		}
		rec := subject.Execute(expr.New(), gen, trace.Options{})
		if rec.Accepted() {
			accepted++
		}
	}
	if total == 0 {
		t.Fatal("generator produced nothing")
	}
	// A token-bigram automaton is a regular approximation: it cannot
	// balance parentheses, so a fraction of generations is invalid —
	// the gap real grammar mining (AutoGram, §7.4) would close.
	rate := float64(accepted) / float64(total)
	if rate < 0.15 {
		t.Errorf("mined-grammar acceptance rate %.2f too low (%d/%d)", rate, accepted, total)
	}
	if longer == 0 {
		t.Error("generator never exceeded the corpus length")
	}
	t.Logf("acceptance %.0f%%, %d/%d longer than corpus max %d", rate*100, longer, total, longest)
}
