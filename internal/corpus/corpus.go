// Package corpus implements the persistent campaign store: an
// append-only journal of valid inputs and engine snapshots with
// crash-tolerant recovery.
//
// A store backs cmd/pfuzzer's -out/-resume flags and the §7.4 chain
// across process restarts: valids are journaled as the engine emits
// them (so the corpus of record survives a kill at any point), and
// periodic snapshots carry the full engine state (core.Snapshot) so a
// resumed campaign continues exactly where the last snapshot was
// taken. A later campaign can also mine a previously saved corpus
// (core.Config.MineSeeds) without resuming it — the reusable
// token-level corpus that Token-Level Fuzzing shows carrying value
// across campaigns.
//
// On disk a store is two files. The journal at path is a magic
// header followed by framed records:
//
//	[type:1][len:4 LE][payload][crc32(payload):4 LE]
//
// Record types: 'M' campaign metadata (JSON, first record), 'V' one
// valid input ([exec:4 LE][input]). Appends go straight to the file
// descriptor (no userspace buffering); a crash can therefore lose at
// most the tail record, which recovery detects by frame length or
// checksum and truncates away. Everything before the last intact
// record is preserved.
//
// The latest engine snapshot lives beside the journal at path+".snap"
// (gzip-compressed), replaced atomically on every save: the journal
// is fsynced first (a snapshot at exec N implies the corpus through N
// is durable), then the new snapshot is written to a temp file,
// fsynced, and renamed over the old one. Only the latest snapshot is
// ever needed, so superseded ones occupy no space and recovery never
// re-reads history; a torn write can only affect the temp file, never
// the published snapshot, and external corruption is caught by gzip's
// own checksum.
//
// A journal is single-writer across processes: Create and Open take
// an exclusive advisory flock on it and fail with ErrLocked while
// another Store holds it, so a daemon and a concurrent
// `pfuzzer -resume` on the same file cannot interleave appends. The
// lock dies with the holding process — even kill -9 releases it.
package corpus

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

const magic = "PFCORP1\n"

const (
	recMeta  = 'M'
	recValid = 'V'
)

// maxRecord bounds a single record's payload; larger frames are
// treated as corruption during recovery.
const maxRecord = 1 << 30

// Meta identifies the campaign a store belongs to.
type Meta struct {
	Subject  string `json:"subject"`
	Tool     string `json:"tool,omitempty"`
	Seed     int64  `json:"seed"`
	MaxExecs int    `json:"max_execs,omitempty"`
}

// Valid is one journaled valid input.
type Valid struct {
	Exec  int
	Input []byte
}

// Store is an open campaign journal. It is not safe for concurrent
// use; the campaign loop owns it.
type Store struct {
	f    *os.File
	path string
	meta Meta

	valids []Valid
	seen   map[string]struct{} // dedup: the journal is the corpus of record
	snap   []byte              // latest snapshot payload, decompressed

	truncated int // bytes of corrupt tail dropped by Open
}

// SnapPath returns the sidecar file holding a journal's latest
// snapshot.
func SnapPath(path string) string { return path + ".snap" }

// ErrLocked reports that another process (or another Store in this
// one) holds the journal's advisory lock. Wrapped by Create and Open;
// test with errors.Is.
var ErrLocked = errors.New("corpus: journal is locked by another process")

// lockJournal takes the journal's advisory lock: an exclusive
// non-blocking flock on the journal fd. Exactly one Store — across
// all processes on this machine — may hold a journal open, which is
// what keeps a daemon and a concurrent `pfuzzer -resume` on the same
// directory from interleaving appends and corrupting the frame
// stream. The lock rides the open file description, so it is released
// automatically when the Store closes — or when the owning process
// dies, however abruptly: a kill -9'd daemon never leaves a stale
// lock behind.
func lockJournal(f *os.File, path string) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
			return fmt.Errorf("%w: %s", ErrLocked, path)
		}
		return fmt.Errorf("corpus: locking %s: %w", path, err)
	}
	return nil
}

// Create creates (or truncates) a journal at path, removing any stale
// snapshot sidecar, and writes the metadata header. The header is
// fsynced — and so is the directory, so the journal entry itself
// survives a crash right after Create returns. Create takes the
// journal's advisory lock before truncating anything: creating over a
// journal another process holds open fails with ErrLocked and leaves
// that journal untouched.
func Create(path string, meta Meta) (*Store, error) {
	// No O_TRUNC here: the truncate must wait until the lock is held,
	// or a failed Create would have already destroyed the journal the
	// lock holder is appending to.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("corpus: create %s: %w", path, err)
	}
	if err := lockJournal(f, path); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	if err := f.Truncate(0); err != nil {
		return nil, errors.Join(fmt.Errorf("corpus: truncating %s: %w", path, err), f.Close())
	}
	// A previous campaign's snapshot must not resume this one. Failing
	// to remove it (other than it not existing) is fatal: silently
	// leaving it behind would make a later -resume restore a foreign
	// campaign's engine over this journal.
	if err := os.Remove(SnapPath(path)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, errors.Join(fmt.Errorf("corpus: removing stale snapshot: %w", err), f.Close())
	}
	s := &Store{f: f, path: path, meta: meta, seen: map[string]struct{}{}}
	if _, err := f.WriteString(magic); err != nil {
		return nil, errors.Join(fmt.Errorf("corpus: writing header: %w", err), f.Close())
	}
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, errors.Join(fmt.Errorf("corpus: encoding meta: %w", err), f.Close())
	}
	if err := s.append(recMeta, mb); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	if err := f.Sync(); err != nil {
		return nil, errors.Join(fmt.Errorf("corpus: sync: %w", err), f.Close())
	}
	if err := syncDir(path); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return s, nil
}

// Open opens an existing journal for reading and appending, running
// crash recovery: records are scanned front to back, and the first
// truncated or checksum-corrupt record — the possible remains of a
// write cut short by a crash — and everything after it are dropped by
// truncating the file there. TruncatedBytes reports how much was
// dropped. Open fails with ErrLocked when another process holds the
// journal: resuming a campaign a live daemon is still appending to
// would interleave the two writers' frames.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("corpus: open %s: %w", path, err)
	}
	if err := lockJournal(f, path); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, errors.Join(fmt.Errorf("corpus: reading %s: %w", path, err), f.Close())
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, errors.Join(fmt.Errorf("corpus: %s is not a corpus journal", path), f.Close())
	}
	s := &Store{f: f, path: path, seen: map[string]struct{}{}}
	off := len(magic)
	sawMeta := false
	for off < len(data) {
		typ, payload, next, ok := parseRecord(data, off)
		if !ok {
			break
		}
		switch typ {
		case recMeta:
			if err := json.Unmarshal(payload, &s.meta); err != nil {
				ok = false
			} else {
				sawMeta = true
			}
		case recValid:
			if len(payload) < 4 {
				ok = false
				break
			}
			in := append([]byte(nil), payload[4:]...)
			s.valids = append(s.valids, Valid{Exec: int(binary.LittleEndian.Uint32(payload)), Input: in})
			s.seen[string(in)] = struct{}{}
		default:
			ok = false
		}
		if !ok {
			break
		}
		off = next
	}
	if !sawMeta {
		return nil, errors.Join(fmt.Errorf("corpus: %s has no intact metadata record", path), f.Close())
	}
	if off < len(data) {
		s.truncated = len(data) - off
		if err := f.Truncate(int64(off)); err != nil {
			return nil, errors.Join(fmt.Errorf("corpus: truncating corrupt tail: %w", err), f.Close())
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		return nil, errors.Join(fmt.Errorf("corpus: seeking append position: %w", err), f.Close())
	}
	// The sidecar always holds a complete previous snapshot (writes
	// go through temp+rename); gzip's own checksum catches external
	// corruption, which reads as "no snapshot" rather than bad state.
	if data, err := os.ReadFile(SnapPath(path)); err == nil {
		if blob, err := gunzip(data); err == nil {
			s.snap = blob
		}
	}
	return s, nil
}

// parseRecord decodes the record at data[off:]; ok is false when the
// frame is truncated, oversized or fails its checksum.
func parseRecord(data []byte, off int) (typ byte, payload []byte, next int, ok bool) {
	if off+5 > len(data) {
		return 0, nil, 0, false
	}
	typ = data[off]
	n := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
	if n < 0 || n > maxRecord || off+5+n+4 > len(data) {
		return 0, nil, 0, false
	}
	payload = data[off+5 : off+5+n]
	sum := binary.LittleEndian.Uint32(data[off+5+n : off+9+n])
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, 0, false
	}
	return typ, payload, off + 9 + n, true
}

// append frames and writes one record.
func (s *Store) append(typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	buf := make([]byte, 0, len(hdr)+len(payload)+len(sum))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	buf = append(buf, sum[:]...)
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("corpus: appending record: %w", err)
	}
	return nil
}

// AppendValid journals one valid input. Duplicates (by input bytes)
// are skipped: a resumed campaign re-discovers the valids found
// between its snapshot and the crash, and deduplication makes the
// journal converge to exactly the uninterrupted run's corpus.
func (s *Store) AppendValid(exec int, input []byte) error {
	if _, dup := s.seen[string(input)]; dup {
		return nil
	}
	in := append([]byte(nil), input...)
	s.seen[string(in)] = struct{}{}
	s.valids = append(s.valids, Valid{Exec: exec, Input: in})
	payload := make([]byte, 4+len(in))
	binary.LittleEndian.PutUint32(payload, uint32(exec))
	copy(payload[4:], in)
	return s.append(recValid, payload)
}

// AppendSnapshot publishes an opaque engine snapshot: the journal is
// fsynced first (a snapshot at exec N implies the corpus through N is
// durable), then the gzip-compressed blob is written to a temp file,
// fsynced, renamed over the sidecar at SnapPath, and the directory is
// fsynced so the rename itself is durable. Superseded snapshots
// occupy no space, a crash at any point leaves either the previous or
// the new snapshot intact (never a torn one), and a failed publish
// removes its temp file instead of littering the directory.
func (s *Store) AppendSnapshot(blob []byte) error {
	if s.f == nil {
		return errors.New("corpus: store is closed")
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("corpus: sync: %w", err)
	}
	var z bytes.Buffer
	zw := gzip.NewWriter(&z)
	if _, err := zw.Write(blob); err != nil {
		return fmt.Errorf("corpus: compressing snapshot: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("corpus: compressing snapshot: %w", err)
	}
	snapPath := SnapPath(s.path)
	tmp := snapPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("corpus: writing snapshot: %w", err)
	}
	if _, err := f.Write(z.Bytes()); err != nil {
		return removeTmp(tmp, errors.Join(fmt.Errorf("corpus: writing snapshot: %w", err), f.Close()))
	}
	if err := f.Sync(); err != nil {
		return removeTmp(tmp, errors.Join(fmt.Errorf("corpus: writing snapshot: %w", err), f.Close()))
	}
	if err := f.Close(); err != nil {
		return removeTmp(tmp, fmt.Errorf("corpus: writing snapshot: %w", err))
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		return removeTmp(tmp, fmt.Errorf("corpus: publishing snapshot: %w", err))
	}
	if err := syncDir(snapPath); err != nil {
		return err
	}
	s.snap = append([]byte(nil), blob...)
	return nil
}

// removeTmp cleans up a failed snapshot's temp file, folding a
// removal failure into the original error.
func removeTmp(tmp string, err error) error {
	if rerr := os.Remove(tmp); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
		return errors.Join(err, rerr)
	}
	return err
}

// syncDir fsyncs the directory containing path, making a just-created
// or just-renamed directory entry durable. Filesystems that refuse
// fsync on directories (EINVAL on some network mounts) are treated as
// best-effort, matching what databases do.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("corpus: opening directory for sync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil && !errors.Is(serr, syscall.EINVAL) && !errors.Is(serr, syscall.ENOTSUP) {
		return fmt.Errorf("corpus: syncing directory: %w", errors.Join(serr, cerr))
	}
	if cerr != nil {
		return fmt.Errorf("corpus: syncing directory: %w", cerr)
	}
	return nil
}

func gunzip(b []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Meta returns the campaign metadata.
func (s *Store) Meta() Meta { return s.meta }

// Path returns the journal's path.
func (s *Store) Path() string { return s.path }

// Valids returns the journaled valid inputs in append order,
// deduplicated. The slices are owned by the store.
func (s *Store) Valids() []Valid { return s.valids }

// ValidInputs returns just the input bytes of Valids — the corpus in
// the shape core.Config.MineSeeds and mine.Grammar.Seed consume.
func (s *Store) ValidInputs() [][]byte {
	out := make([][]byte, len(s.valids))
	for i := range s.valids {
		out[i] = s.valids[i].Input
	}
	return out
}

// Snapshot returns the latest intact snapshot blob, or nil if none
// was published.
func (s *Store) Snapshot() []byte { return s.snap }

// TruncatedBytes reports how many bytes of corrupt tail Open dropped
// (0 for a clean journal).
func (s *Store) TruncatedBytes() int { return s.truncated }

// Close syncs and closes the journal. Both failures are reported: a
// failed sync means the tail may not be durable, and a failed close
// can surface deferred write errors on some filesystems.
func (s *Store) Close() error {
	if s.f == nil {
		return errors.New("corpus: store already closed")
	}
	err := errors.Join(s.f.Sync(), s.f.Close())
	s.f = nil
	return err
}
