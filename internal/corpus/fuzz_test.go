package corpus

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRecovery feeds arbitrary bytes to the journal's crash
// recovery (go test -fuzz, seed corpus under testdata/fuzz/): Open
// must either reject the file with an error or recover a consistent
// store — never panic, never slice out of bounds — and a recovered
// store must still accept appends. The seeds include an intact
// journal and torn/corrupt variants of it, so mutation explores the
// frame-parsing edges (truncated headers, oversized lengths, bad
// checksums) the recovery path exists for.
func FuzzJournalRecovery(f *testing.F) {
	// An intact journal built through the package's own writer.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed")
	s, err := Create(path, Meta{Subject: "expr", Tool: "pFuzzer", Seed: 1, MaxExecs: 100})
	if err != nil {
		f.Fatal(err)
	}
	s.AppendValid(3, []byte("7"))
	s.AppendValid(9, []byte("(1+2)"))
	s.AppendSnapshot([]byte(`{"version":1}`))
	s.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(intact)
	f.Add(intact[:len(intact)-3]) // torn tail
	f.Add(intact[:9])             // header only
	mangled := append([]byte(nil), intact...)
	mangled[len(mangled)/2] ^= 0x40 // checksum corruption mid-file
	f.Add(mangled)
	f.Add([]byte("PFCORP1\n"))
	f.Add([]byte("not a journal"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "j")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(p)
		if err != nil {
			return // rejected cleanly
		}
		// A recovered store must be consistent and appendable.
		if got := len(st.ValidInputs()); got != len(st.Valids()) {
			t.Fatalf("ValidInputs()=%d entries, Valids()=%d", got, len(st.Valids()))
		}
		if err := st.AppendValid(1, []byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		st.Close()

		// Reopening after the append must replay every valid.
		st2, err := Open(p)
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		st2.Close()
	})
}
