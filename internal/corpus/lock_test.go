package corpus

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestJournalLockBothOrders pins the single-writer contract in both
// acquisition orders: a journal held by one Store rejects both a
// concurrent Open (resume racing a daemon) and a concurrent Create
// (fresh campaign racing a daemon) — and the failed Create must leave
// the locked journal's contents untouched, since truncation is the
// whole corruption hazard.
func TestJournalLockBothOrders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")

	// Order 1: Create holds, Open must fail.
	s, err := Create(path, Meta{Subject: "expr", Seed: 1})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := s.AppendValid(7, []byte("held")); err != nil {
		t.Fatalf("AppendValid: %v", err)
	}
	if _, err := Open(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("Open of a held journal: err = %v, want ErrLocked", err)
	}

	// Create over a held journal must fail too — without truncating.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if _, err := Create(path, Meta{Subject: "expr", Seed: 2}); !errors.Is(err, ErrLocked) {
		t.Fatalf("Create over a held journal: err = %v, want ErrLocked", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(before) != string(after) {
		t.Fatalf("failed Create modified the held journal: %d bytes -> %d bytes", len(before), len(after))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Order 2: Open holds, both Open and Create must fail; Close
	// releases the lock and the next Open succeeds.
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	if _, err := Open(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open: err = %v, want ErrLocked", err)
	}
	if _, err := Create(path, Meta{Subject: "expr", Seed: 3}); !errors.Is(err, ErrLocked) {
		t.Fatalf("Create while Open holds: err = %v, want ErrLocked", err)
	}
	if got := len(s2.Valids()); got != 1 {
		t.Fatalf("reopened journal has %d valids, want 1", got)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s3, err := Open(path)
	if err != nil {
		t.Fatalf("Open after lock release: %v", err)
	}
	if err := s3.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
