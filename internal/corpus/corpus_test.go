package corpus

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign.pfc")
}

// TestRoundTrip pins the journal's basic contract: meta, valids and
// the latest snapshot survive a close/reopen cycle with order and
// bytes intact.
func TestRoundTrip(t *testing.T) {
	path := tempJournal(t)
	meta := Meta{Subject: "cjson", Tool: "pFuzzer", Seed: 42, MaxExecs: 1000}
	s, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	valids := []Valid{
		{Exec: 3, Input: []byte("true")},
		{Exec: 17, Input: []byte(`{"a":[null]}`)},
		{Exec: 99, Input: []byte{0x00, 0xff, 0x7f}}, // non-UTF-8 survives
	}
	for _, v := range valids {
		if err := s.AppendValid(v.Exec, v.Input); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendSnapshot([]byte(`{"execs":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSnapshot([]byte(`{"execs":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Meta() != meta {
		t.Errorf("meta = %+v, want %+v", r.Meta(), meta)
	}
	if r.TruncatedBytes() != 0 {
		t.Errorf("clean journal reports %d truncated bytes", r.TruncatedBytes())
	}
	got := r.Valids()
	if len(got) != len(valids) {
		t.Fatalf("valids = %d, want %d", len(got), len(valids))
	}
	for i := range valids {
		if got[i].Exec != valids[i].Exec || !bytes.Equal(got[i].Input, valids[i].Input) {
			t.Errorf("valid[%d] = (%d, %q), want (%d, %q)",
				i, got[i].Exec, got[i].Input, valids[i].Exec, valids[i].Input)
		}
	}
	if string(r.Snapshot()) != `{"execs":2}` {
		t.Errorf("snapshot = %q, want the latest one", r.Snapshot())
	}
}

// TestAppendValidDedups: the journal is the corpus of record, so a
// resumed campaign re-journaling the valids it re-discovers must not
// duplicate them.
func TestAppendValidDedups(t *testing.T) {
	s, err := Create(tempJournal(t), Meta{Subject: "expr", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		if err := s.AppendValid(10+i, []byte("same")); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.Valids()); n != 1 {
		t.Errorf("journal holds %d valids, want 1", n)
	}
	if s.Valids()[0].Exec != 10 {
		t.Errorf("dedup kept exec %d, want the first occurrence 10", s.Valids()[0].Exec)
	}
}

// TestRecoveryFromTruncatedTail is the crash-tolerance contract: a
// journal cut anywhere inside its final record reopens with every
// record before the cut intact and the partial tail dropped.
func TestRecoveryFromTruncatedTail(t *testing.T) {
	path := tempJournal(t)
	s, err := Create(path, Meta{Subject: "tinyc", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendValid(1, []byte("{a=1;}")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSnapshot([]byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	mark, err := s.f.Seek(0, 1) // offset of the record about to be cut
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendValid(2, []byte("{while(1);}")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Cut the file at every offset inside the final record, including
	// one byte past the header (a torn frame) and one byte short of
	// complete (a torn checksum).
	for cut := int(mark) + 1; cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if r.TruncatedBytes() == 0 {
			t.Errorf("cut at %d: no truncation reported", cut)
		}
		if n := len(r.Valids()); n != 1 {
			t.Errorf("cut at %d: %d valids survive, want 1", cut, n)
		}
		if string(r.Snapshot()) != `{"ok":true}` {
			t.Errorf("cut at %d: snapshot lost", cut)
		}
		// The recovered journal must be appendable and reopen clean.
		if err := r.AppendValid(3, []byte("{b=2;}")); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		r2, err := Open(path)
		if err != nil {
			t.Fatalf("cut at %d, reopen after repair: %v", cut, err)
		}
		if n := len(r2.Valids()); n != 2 {
			t.Errorf("cut at %d: repaired journal holds %d valids, want 2", cut, n)
		}
		if r2.TruncatedBytes() != 0 {
			t.Errorf("cut at %d: repaired journal still reports truncation", cut)
		}
		r2.Close()
	}
}

// TestRecoveryFromCorruptTail: a flipped byte in the final record's
// payload fails its checksum and the record is dropped, not returned
// as data.
func TestRecoveryFromCorruptTail(t *testing.T) {
	path := tempJournal(t)
	s, err := Create(path, Meta{Subject: "ini", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendValid(1, []byte("[s]\n")); err != nil {
		t.Fatal(err)
	}
	mark, _ := s.f.Seek(0, 1)
	if err := s.AppendValid(2, []byte("k=v\n")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	data, _ := os.ReadFile(path)
	data[int(mark)+6] ^= 0xff // a payload byte of the final record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := len(r.Valids()); n != 1 {
		t.Errorf("%d valids survive a corrupt tail, want 1", n)
	}
	if r.TruncatedBytes() == 0 {
		t.Error("corruption not reported")
	}
}

// TestSnapshotSidecarCorrupt: external corruption of the sidecar is
// caught by gzip's checksum and reads as "no snapshot", never as bad
// engine state; the next publish repairs it.
func TestSnapshotSidecarCorrupt(t *testing.T) {
	path := tempJournal(t)
	s, err := Create(path, Meta{Subject: "expr", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSnapshot([]byte(`{"execs":7}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if err := os.WriteFile(SnapPath(path), []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Errorf("corrupt sidecar returned a snapshot: %q", r.Snapshot())
	}
	if err := r.AppendSnapshot([]byte(`{"execs":8}`)); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if string(r2.Snapshot()) != `{"execs":8}` {
		t.Errorf("repaired sidecar holds %q", r2.Snapshot())
	}
}

// TestCreateRemovesStaleSidecar: re-creating a journal must not leave
// a previous campaign's snapshot where -resume would find it.
func TestCreateRemovesStaleSidecar(t *testing.T) {
	path := tempJournal(t)
	s, err := Create(path, Meta{Subject: "expr", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSnapshot([]byte(`{"old":true}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Create(path, Meta{Subject: "expr", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Snapshot() != nil {
		t.Errorf("stale sidecar survived Create: %q", r.Snapshot())
	}
}

// TestOpenRejectsForeignFile: not-a-journal files fail loudly instead
// of recovering to an empty corpus.
func TestOpenRejectsForeignFile(t *testing.T) {
	path := tempJournal(t)
	if err := os.WriteFile(path, []byte("#!/bin/sh\necho no\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("Open accepted a non-journal file")
	}
}

// TestSnapshotTmpCleanup: a snapshot publish that fails mid-write must
// not litter the directory with its temp file — and must leave the
// previously published snapshot untouched.
func TestSnapshotTmpCleanup(t *testing.T) {
	path := tempJournal(t)
	s, err := Create(path, Meta{Subject: "expr"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendSnapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	// Force the rename to fail by replacing the sidecar path with a
	// non-empty directory.
	snap := SnapPath(path)
	if err := os.Remove(snap); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(snap, "block"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSnapshot([]byte("new")); err == nil {
		t.Fatal("AppendSnapshot succeeded renaming over a non-empty directory")
	}
	if _, err := os.Stat(snap + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("failed publish left temp file behind: stat err %v", err)
	}
}

// TestCloseIsSingleShot: the second Close must report the store is
// already closed instead of double-closing the descriptor, and
// appends after Close must fail instead of panicking.
func TestCloseIsSingleShot(t *testing.T) {
	path := tempJournal(t)
	s, err := Create(path, Meta{Subject: "expr"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err == nil {
		t.Error("second Close did not error")
	}
	if err := s.AppendSnapshot([]byte("x")); err == nil {
		t.Error("AppendSnapshot on a closed store did not error")
	}
}

// TestCreateFailsOnUnremovableSidecar: if a stale snapshot sidecar
// cannot be removed, Create must fail loudly — silently keeping it
// would let a later -resume restore a foreign campaign's engine.
func TestCreateFailsOnUnremovableSidecar(t *testing.T) {
	path := tempJournal(t)
	// A non-empty directory at the sidecar path cannot be os.Remove'd.
	if err := os.MkdirAll(filepath.Join(SnapPath(path), "block"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(path, Meta{Subject: "expr"}); err == nil {
		t.Fatal("Create succeeded with an unremovable stale sidecar")
	}
}
