package pqueue

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPopOrder(t *testing.T) {
	var q Queue[string]
	q.Push("low", 1)
	q.Push("high", 10)
	q.Push("mid", 5)
	for _, want := range []string{"high", "mid", "low"} {
		got, _, ok := q.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %q, want %q", got, want)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue succeeded")
	}
}

func TestFIFOAmongEqualScores(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(i, 1)
	}
	for i := 0; i < 10; i++ {
		got, _, _ := q.Pop()
		if got != i {
			t.Fatalf("equal-score pop %d = %d, want FIFO", i, got)
		}
	}
}

func TestReorder(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 5; i++ {
		q.Push(i, float64(i))
	}
	// Invert the scores: smallest value should now pop first.
	q.Reorder(func(v int) float64 { return -float64(v) })
	got, _, _ := q.Pop()
	if got != 0 {
		t.Errorf("after Reorder, Pop = %d, want 0", got)
	}
}

func TestPrune(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(i, float64(i))
	}
	q.Prune(10)
	if q.Len() != 10 {
		t.Fatalf("Len after Prune = %d, want 10", q.Len())
	}
	// The survivors must be the 10 best (90..99).
	for want := 99; want >= 90; want-- {
		got, _, _ := q.Pop()
		if got != want {
			t.Fatalf("post-prune pop = %d, want %d", got, want)
		}
	}
}

func TestPopRescoredPrefersFreshScores(t *testing.T) {
	var q Queue[string]
	q.Push("stale", 100) // pushed with a high, now-stale score
	q.Push("fresh", 10)
	current := map[string]float64{"stale": 1, "fresh": 10}
	got, score, ok := q.PopRescored(func(v string) float64 { return current[v] })
	if !ok || got != "fresh" || score != 10 {
		t.Errorf("PopRescored = %q score=%v, want fresh/10", got, score)
	}
}

// Property: Pop drains values in non-increasing score order.
func TestPopMonotonic(t *testing.T) {
	f := func(scores []float64) bool {
		var q Queue[int]
		for i, s := range scores {
			q.Push(i, s)
		}
		last := 0.0
		first := true
		for {
			_, s, ok := q.Pop()
			if !ok {
				break
			}
			if !first && s > last {
				return false
			}
			last, first = s, false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Prune keeps exactly the top-k by score.
func TestPruneKeepsTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := rng.Intn(n)
		scores := make([]float64, n)
		var q Queue[int]
		for i := range scores {
			scores[i] = float64(rng.Intn(50))
			q.Push(i, scores[i])
		}
		q.Prune(k)
		var kept []float64
		for {
			_, s, ok := q.Pop()
			if !ok {
				break
			}
			kept = append(kept, s)
		}
		sorted := append([]float64{}, scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		want := sorted[:k]
		if len(kept) != len(want) {
			t.Fatalf("kept %d, want %d", len(kept), len(want))
		}
		for i := range want {
			if kept[i] != want[i] {
				t.Fatalf("trial %d: kept[%d]=%v want %v", trial, i, kept[i], want[i])
			}
		}
	}
}

func TestPeekN(t *testing.T) {
	var q Queue[string]
	q.Push("a", 1)
	q.Push("b", 3)
	q.Push("c", 2)
	var seen []string
	q.PeekN(2, func(v string) { seen = append(seen, v) })
	if len(seen) != 2 {
		t.Fatalf("PeekN(2) visited %d values", len(seen))
	}
	if seen[0] != "b" {
		t.Errorf("PeekN first value = %q, want the maximum \"b\"", seen[0])
	}
	if q.Len() != 3 {
		t.Errorf("PeekN changed the queue length to %d", q.Len())
	}
	seen = nil
	q.PeekN(10, func(v string) { seen = append(seen, v) })
	if len(seen) != 3 {
		t.Errorf("PeekN(10) visited %d values, want all 3", len(seen))
	}
}

// TestReorderWithMatchesReorder pins the bit-identity contract: a
// parallel re-score through ReorderWith must leave the heap in exactly
// the layout a sequential Reorder produces, so every later pop agrees.
func TestReorderWithMatchesReorder(t *testing.T) {
	rescore := func(v int) float64 { return float64(-v % 7) }
	var seq, par Queue[int]
	for i := 0; i < 500; i++ {
		seq.Push(i, float64(i))
		par.Push(i, float64(i))
	}
	seq.Reorder(rescore)
	par.ReorderWith(rescore, func(n int, each func(lo, hi int)) {
		var wg sync.WaitGroup
		const chunks = 4
		for c := 0; c < chunks; c++ {
			lo, hi := c*n/chunks, (c+1)*n/chunks
			wg.Add(1)
			go func() { defer wg.Done(); each(lo, hi) }()
		}
		wg.Wait()
	})
	for {
		a, as, aok := seq.Pop()
		b, bs, bok := par.Pop()
		if aok != bok || a != b || as != bs {
			t.Fatalf("pop sequences diverged: (%d,%v,%v) vs (%d,%v,%v)", a, as, aok, b, bs, bok)
		}
		if !aok {
			break
		}
	}
}
