package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPopOrder(t *testing.T) {
	var q Queue[string]
	q.Push("low", 1)
	q.Push("high", 10)
	q.Push("mid", 5)
	for _, want := range []string{"high", "mid", "low"} {
		got, _, ok := q.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %q, want %q", got, want)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue succeeded")
	}
}

func TestFIFOAmongEqualScores(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(i, 1)
	}
	for i := 0; i < 10; i++ {
		got, _, _ := q.Pop()
		if got != i {
			t.Fatalf("equal-score pop %d = %d, want FIFO", i, got)
		}
	}
}

func TestReorder(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 5; i++ {
		q.Push(i, float64(i))
	}
	// Invert the scores: smallest value should now pop first.
	q.Reorder(func(v int) float64 { return -float64(v) })
	got, _, _ := q.Pop()
	if got != 0 {
		t.Errorf("after Reorder, Pop = %d, want 0", got)
	}
}

func TestPrune(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(i, float64(i))
	}
	q.Prune(10)
	if q.Len() != 10 {
		t.Fatalf("Len after Prune = %d, want 10", q.Len())
	}
	// The survivors must be the 10 best (90..99).
	for want := 99; want >= 90; want-- {
		got, _, _ := q.Pop()
		if got != want {
			t.Fatalf("post-prune pop = %d, want %d", got, want)
		}
	}
}

func TestPopRescoredPrefersFreshScores(t *testing.T) {
	var q Queue[string]
	q.Push("stale", 100) // pushed with a high, now-stale score
	q.Push("fresh", 10)
	current := map[string]float64{"stale": 1, "fresh": 10}
	got, score, ok := q.PopRescored(func(v string) float64 { return current[v] })
	if !ok || got != "fresh" || score != 10 {
		t.Errorf("PopRescored = %q score=%v, want fresh/10", got, score)
	}
}

// Property: Pop drains values in non-increasing score order.
func TestPopMonotonic(t *testing.T) {
	f := func(scores []float64) bool {
		var q Queue[int]
		for i, s := range scores {
			q.Push(i, s)
		}
		last := 0.0
		first := true
		for {
			_, s, ok := q.Pop()
			if !ok {
				break
			}
			if !first && s > last {
				return false
			}
			last, first = s, false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Prune keeps exactly the top-k by score.
func TestPruneKeepsTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := rng.Intn(n)
		scores := make([]float64, n)
		var q Queue[int]
		for i := range scores {
			scores[i] = float64(rng.Intn(50))
			q.Push(i, scores[i])
		}
		q.Prune(k)
		var kept []float64
		for {
			_, s, ok := q.Pop()
			if !ok {
				break
			}
			kept = append(kept, s)
		}
		sorted := append([]float64{}, scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		want := sorted[:k]
		if len(kept) != len(want) {
			t.Fatalf("kept %d, want %d", len(kept), len(want))
		}
		for i := range want {
			if kept[i] != want[i] {
				t.Fatalf("trial %d: kept[%d]=%v want %v", trial, i, kept[i], want[i])
			}
		}
	}
}
