package pqueue

import (
	"sync"
	"sync/atomic"
)

// Sharded is a concurrency-safe priority queue split across N
// independently locked shards. It trades the strict global priority
// order of Queue for parallelism: each shard is an exact max-heap, but
// a pop observes only one shard at a time, so the popped value is the
// best of that shard, not necessarily of the whole queue. With one
// shard it degenerates to a mutex-guarded Queue and the global order
// is exact.
//
// The deployment is one shard per executor: pushes spread round-robin
// so no shard starves, and PopOwn gives each worker an affine home
// shard it drains first, stealing from its neighbours when the home
// runs dry. The paper's search tolerates the relaxed order: scores
// are heuristic and continuously re-evaluated, so "a very good
// candidate from my shard" approximates "the best candidate overall"
// well enough, and per-shard locks keep the queue off the
// scaling-critical path.
type Sharded[T any] struct {
	shards []shard[T]
	pushes atomic.Uint64
}

type shard[T any] struct {
	mu sync.Mutex
	q  Queue[T]
	// size is a lock-free length hint maintained under mu after every
	// mutation. The steal path reads it to skip shards that look
	// empty without taking their lock; it is only ever a *hint* — the
	// authoritative emptiness check is the Pop under the lock (see
	// PopOwn), so a stale hint can cost a wasted lock acquisition or
	// a skipped-but-just-filled shard, never a wrong pop.
	size atomic.Int64
	// Pad the live fields to a 128-byte stride: whatever the slice's
	// base alignment, two shards' live bytes then sit at least 80
	// bytes apart, so they can never share a 64-byte cache line and
	// the per-shard locks do not false-share.
	_ [80]byte
}

// NewSharded returns a queue with n shards (n < 1 is treated as 1).
func NewSharded[T any](n int) *Sharded[T] {
	if n < 1 {
		n = 1
	}
	return &Sharded[T]{shards: make([]shard[T], n)}
}

// NumShards returns the shard count.
func (s *Sharded[T]) NumShards() int { return len(s.shards) }

// Push inserts v with the given score into the next shard in
// round-robin order, spreading load evenly across shards.
func (s *Sharded[T]) Push(v T, score float64) {
	sh := &s.shards[s.pushes.Add(1)%uint64(len(s.shards))]
	sh.mu.Lock()
	sh.q.Push(v, score)
	sh.size.Store(int64(sh.q.Len()))
	sh.mu.Unlock()
}

// popShard pops sh's best value under its lock and refreshes the size
// hint. The emptiness decision is made by Pop while the lock is held —
// the size hint that may have routed the caller here is advisory only,
// so the hint-then-lock window (a classic TOCTOU shape) can never turn
// a concurrent drain into a wrong value, only into ok == false.
func popShard[T any](sh *shard[T]) (T, float64, bool) {
	sh.mu.Lock()
	v, score, ok := sh.q.Pop()
	if ok {
		sh.size.Store(int64(sh.q.Len()))
	}
	sh.mu.Unlock()
	return v, score, ok
}

// PopOwn removes and returns the best value of worker w's home shard;
// when that shard is empty it steals from the other shards in ring
// order. The steal pass consults each victim's size hint first and
// skips shards that look empty without locking them; because the hint
// can be stale in both directions, a shard that passes the hint check
// is re-checked under its lock (popShard), and a full no-hint pass
// runs before giving up so a push that landed between hint reads is
// not missed. ok == false therefore still means every shard was
// observed empty under its own lock, in one pass.
func (s *Sharded[T]) PopOwn(w int) (T, float64, bool) {
	n := len(s.shards)
	// Home shard: always check under the lock; it is this worker's
	// primary queue and the hint would mostly be hot anyway.
	if v, score, ok := popShard(&s.shards[uint(w)%uint(n)]); ok {
		return v, score, true
	}
	// Steal pass: size hints route around observably empty victims.
	for i := 1; i < n; i++ {
		sh := &s.shards[(uint(w)+uint(i))%uint(n)]
		if sh.size.Load() == 0 {
			continue
		}
		if v, score, ok := popShard(sh); ok {
			return v, score, true
		}
	}
	// Confirmation pass without hints: every shard is checked under
	// its lock, so a false "all empty" can only be claimed when it
	// was momentarily true.
	for i := 1; i < n; i++ {
		if v, score, ok := popShard(&s.shards[(uint(w)+uint(i))%uint(n)]); ok {
			return v, score, true
		}
	}
	var zero T
	return zero, 0, false
}

// Pop removes and returns the best value over all shard tops: it peeks
// every shard, then pops from the best one. Under concurrent pops the
// returned value may be second-best; with a single popper and one
// shard the order is exact.
func (s *Sharded[T]) Pop() (T, float64, bool) {
	for {
		best, bestScore := -1, 0.0
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			_, score, ok := sh.q.Peek()
			sh.mu.Unlock()
			if ok && (best < 0 || score > bestScore) {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			var zero T
			return zero, 0, false
		}
		if v, score, ok := popShard(&s.shards[best]); ok {
			return v, score, true
		}
		// The shard was drained between peek and pop; rescan.
	}
}

// Dump returns every shard's queued values in insertion order (see
// Queue.Dump), indexed by shard — the campaign snapshot's view of the
// queue. It must not race with concurrent pushes or pops; the
// snapshot path only runs between engine phases, when no executors
// are live.
func (s *Sharded[T]) Dump() [][]Item[T] {
	out := make([][]Item[T], len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out[i] = sh.q.Dump()
		sh.mu.Unlock()
	}
	return out
}

// LoadShard pushes v directly into shard i, bypassing the round-robin
// spread: the snapshot-restore path rebuilds a saved queue with its
// shard layout intact.
func (s *Sharded[T]) LoadShard(i int, v T, score float64) {
	sh := &s.shards[uint(i)%uint(len(s.shards))]
	sh.mu.Lock()
	sh.q.Push(v, score)
	sh.size.Store(int64(sh.q.Len()))
	sh.mu.Unlock()
}

// Len returns the total number of queued values across all shards.
func (s *Sharded[T]) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.q.Len()
		sh.mu.Unlock()
	}
	return total
}

// Reorder recomputes every score with rescore and restores each
// shard's heap property. This is the batched re-scoring pass the
// scheduler runs once per generation after merging new coverage,
// instead of the serial engine's re-score per valid input.
func (s *Sharded[T]) Reorder(rescore func(T) float64) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.q.Reorder(rescore)
		sh.mu.Unlock()
	}
}

// Prune bounds the queue to at most max values by discarding the
// lowest-scored entries of each shard beyond its quota. Quotas are
// exact: max/N per shard with the remainder spread over the first
// max%N shards, and quota a shard cannot fill (it holds fewer
// entries) is redistributed to fuller shards — so when the queue held
// at least max values, exactly max survive. The value selection stays
// approximate (each shard keeps its own best), but the bound itself
// no longer silently tightens by up to N-1 entries the way a plain
// max/N split does. Concurrent pushes during the prune can leave the
// total off by the in-flight values; the campaign scheduler is the
// only pruner, so in practice the count is exact.
func (s *Sharded[T]) Prune(max int) {
	if max < 0 {
		return
	}
	n := len(s.shards)
	lens := make([]int, n)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		lens[i] = sh.q.Len()
		sh.mu.Unlock()
	}
	quota := make([]int, n)
	for i := range quota {
		quota[i] = max / n
		if i < max%n {
			quota[i]++
		}
	}
	// Hand quota that underfull shards cannot use to shards with room,
	// until nothing moves.
	for {
		slack := 0
		for i := range quota {
			if lens[i] < quota[i] {
				slack += quota[i] - lens[i]
				quota[i] = lens[i]
			}
		}
		if slack == 0 {
			break
		}
		moved := false
		for i := range quota {
			if slack == 0 {
				break
			}
			if room := lens[i] - quota[i]; room > 0 {
				take := room
				if take > slack {
					take = slack
				}
				quota[i] += take
				slack -= take
				moved = true
			}
		}
		if !moved {
			break // every shard is at its length; total < max
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.q.Prune(quota[i])
		sh.size.Store(int64(sh.q.Len()))
		sh.mu.Unlock()
	}
}
