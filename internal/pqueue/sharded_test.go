package pqueue

import (
	"math/rand"
	"sync"
	"testing"
)

// TestShardedSingleShardIsExact checks that one shard degenerates to
// the exact global priority order of Queue.
func TestShardedSingleShardIsExact(t *testing.T) {
	s := NewSharded[int](1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		s.Push(i, rng.Float64()*100)
	}
	prev := 1e18
	for {
		_, score, ok := s.Pop()
		if !ok {
			break
		}
		if score > prev {
			t.Fatalf("pop order not descending: %v after %v", score, prev)
		}
		prev = score
	}
}

// TestShardedDeliversEverything pushes values across shards and
// checks every value comes back exactly once, via both Pop and PopOwn.
func TestShardedDeliversEverything(t *testing.T) {
	for _, pop := range []struct {
		name string
		fn   func(s *Sharded[int]) (int, bool)
	}{
		{"Pop", func(s *Sharded[int]) (int, bool) { v, _, ok := s.Pop(); return v, ok }},
		{"PopOwn", func(s *Sharded[int]) (int, bool) { v, _, ok := s.PopOwn(2); return v, ok }},
	} {
		s := NewSharded[int](4)
		const n = 500
		for i := 0; i < n; i++ {
			s.Push(i, float64(i%7))
		}
		if s.Len() != n {
			t.Fatalf("%s: Len = %d, want %d", pop.name, s.Len(), n)
		}
		got := map[int]bool{}
		for {
			v, ok := pop.fn(s)
			if !ok {
				break
			}
			if got[v] {
				t.Fatalf("%s: value %d popped twice", pop.name, v)
			}
			got[v] = true
		}
		if len(got) != n {
			t.Fatalf("%s: popped %d values, want %d", pop.name, len(got), n)
		}
	}
}

// TestShardedPopOwnStealsFromNeighbours verifies a worker whose home
// shard is empty still finds work placed on another shard. The single
// round-robin push lands on shard 1, so worker 0's pop must steal.
func TestShardedPopOwnStealsFromNeighbours(t *testing.T) {
	s := NewSharded[string](4)
	s.Push("remote", 1)
	v, _, ok := s.PopOwn(0)
	if !ok || v != "remote" {
		t.Fatalf("PopOwn(0) = %q, %v; want steal of \"remote\"", v, ok)
	}
	if _, _, ok := s.PopOwn(0); ok {
		t.Fatal("queue should be empty after the steal")
	}
}

// TestShardedReorder re-scores every queued value and checks the new
// order is respected per shard.
func TestShardedReorder(t *testing.T) {
	s := NewSharded[int](1)
	for i := 0; i < 10; i++ {
		s.Push(i, float64(10-i)) // descending scores
	}
	s.Reorder(func(v int) float64 { return float64(v) }) // invert
	v, _, ok := s.Pop()
	if !ok || v != 9 {
		t.Fatalf("after reorder Pop = %d, want 9", v)
	}
}

// TestShardedPrune bounds the queue and keeps each shard's best.
func TestShardedPrune(t *testing.T) {
	s := NewSharded[int](4)
	for i := 0; i < 400; i++ {
		s.Push(i, float64(i))
	}
	s.Prune(100)
	if got := s.Len(); got != 100 {
		t.Fatalf("Len after Prune(100) = %d, want exactly 100", got)
	}
	// The globally best value must survive in whatever shard holds it.
	best := -1
	for {
		v, _, ok := s.Pop()
		if !ok {
			break
		}
		if v > best {
			best = v
		}
	}
	if best != 399 {
		t.Fatalf("best survivor = %d, want 399", best)
	}
}

// TestShardedPruneExactTotal is the regression test for the dropped
// remainder: per := max/N silently tightened the bound by up to N-1
// entries (and pruned to N instead of max when max < N). The
// post-prune total must be exactly min(max, Len) for bounds that do
// not divide the shard count.
func TestShardedPruneExactTotal(t *testing.T) {
	for _, tc := range []struct {
		shards, pushes, max, want int
	}{
		{4, 400, 101, 101}, // remainder 1: first shard keeps one extra
		{4, 400, 103, 103}, // remainder 3
		{4, 400, 3, 3},     // max < shards: old code kept 4
		{4, 400, 1, 1},     // max < shards, minimal
		{4, 400, 0, 0},     // drain entirely
		{3, 100, 100, 100}, // max == Len: nothing pruned
		{3, 10, 50, 10},    // max > Len: nothing pruned
		{5, 7, 6, 6},       // shard lengths differ (round-robin leaves 2,1,1,1,2... per shard)
	} {
		s := NewSharded[int](tc.shards)
		for i := 0; i < tc.pushes; i++ {
			s.Push(i, float64(i%13))
		}
		s.Prune(tc.max)
		if got := s.Len(); got != tc.want {
			t.Errorf("shards=%d pushes=%d: Len after Prune(%d) = %d, want %d",
				tc.shards, tc.pushes, tc.max, got, tc.want)
		}
	}
}

// TestShardedPruneRedistributesSlack skews the load so a naive equal
// split cannot reach the bound: three shards are drained empty, so
// the surviving shard's quota must absorb the quota the empty shards
// cannot use.
func TestShardedPruneRedistributesSlack(t *testing.T) {
	s := NewSharded[int](4)
	for i := 0; i < 40; i++ {
		s.Push(i, float64(i)) // 10 values per shard, round-robin
	}
	// PopOwn pops the home shard first while it has entries, so 10
	// targeted pops drain exactly that shard.
	for _, w := range []int{0, 2, 3} {
		for i := 0; i < 10; i++ {
			if _, _, ok := s.PopOwn(w); !ok {
				t.Fatalf("drain of shard %d ran dry early", w)
			}
		}
	}
	if got := s.Len(); got != 10 {
		t.Fatalf("Len after draining three shards = %d, want 10", got)
	}
	s.Prune(7) // naive 7/4 per shard would keep only 1
	if got := s.Len(); got != 7 {
		t.Fatalf("Len after Prune(7) = %d, want 7", got)
	}
}

// TestShardedConcurrentStress hammers pushes and pops from many
// goroutines; run with -race it doubles as the locking proof.
func TestShardedConcurrentStress(t *testing.T) {
	s := NewSharded[int](8)
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	popped := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				s.Push(w*perW+i, rng.Float64())
				if i%3 == 0 {
					if _, _, ok := s.PopOwn(w); ok {
						popped[w]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, p := range popped {
		total += p
	}
	if got := s.Len(); got != workers*perW-total {
		t.Fatalf("Len = %d, want %d pushed - %d popped", got, workers*perW, total)
	}
}

// TestShardedStealRecheckUnderLock targets the steal path's
// size-hint/lock window: pushers fill remote shards while stealers
// whose home shard stays empty drain everything through PopOwn. Every
// pushed value must be popped exactly once — a steal that trusted a
// stale hint instead of re-checking under the lock would lose values,
// and a double-pop would duplicate them. Run with -race this is the
// targeted proof for the hint's TOCTOU window.
func TestShardedStealRecheckUnderLock(t *testing.T) {
	const (
		shards  = 8
		pushers = 4
		perP    = 5000
	)
	s := NewSharded[int](shards)
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				s.Push(p*perP+i, float64(i%17))
			}
		}(p)
	}
	var mu sync.Mutex
	got := make(map[int]int, pushers*perP)
	var sg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		sg.Add(1)
		go func(w int) {
			defer sg.Done()
			mine := make([]int, 0, perP)
			for {
				v, _, ok := s.PopOwn(w)
				if !ok {
					select {
					case <-done:
						// Pushers finished and the queue read empty
						// under every shard lock: drain truly over.
						if v, _, ok := s.PopOwn(w); ok {
							mine = append(mine, v)
							continue
						}
						mu.Lock()
						for _, v := range mine {
							got[v]++
						}
						mu.Unlock()
						return
					default:
						continue
					}
				}
				mine = append(mine, v)
			}
		}(w)
	}
	wg.Wait()
	close(done)
	sg.Wait()
	if len(got) != pushers*perP {
		t.Fatalf("popped %d distinct values, want %d", len(got), pushers*perP)
	}
	for v, n := range got {
		if n != 1 {
			t.Fatalf("value %d popped %d times", v, n)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after full drain", s.Len())
	}
}

// TestShardedPopOwnObservesLatePush pins the confirmation pass: a
// value pushed into any shard before PopOwn starts must be found even
// though every size hint could read stale, because the final pass
// checks every shard under its lock.
func TestShardedPopOwnObservesLatePush(t *testing.T) {
	s := NewSharded[string](4)
	for i := 0; i < 4; i++ {
		s.Push("v", 1)
		// Pop from a worker whose home shard is someone else's: the
		// value must be reachable from every home.
		if _, _, ok := s.PopOwn(3 - i); !ok {
			t.Fatalf("PopOwn(%d) missed the only value", 3-i)
		}
	}
	if _, _, ok := s.PopOwn(0); ok {
		t.Fatalf("PopOwn on an empty queue returned a value")
	}
}
