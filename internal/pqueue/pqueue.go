// Package pqueue provides the priority queue at the heart of
// pFuzzer's search (paper §3.1). Inputs are primarily sorted by a
// heuristic score; ties fall back to insertion order so the search is
// deterministic under a fixed seed. The queue supports the global
// re-scoring pass the paper performs whenever a new valid input
// arrives ("all remaining inputs in the queue have to be re-evaluated
// in terms of coverage", §3.2) and a size bound that discards the
// worst entries.
package pqueue

import (
	"container/heap"
	"sort"
)

// Queue is a max-priority queue of values of type T. The zero value is
// ready to use.
type Queue[T any] struct {
	h   inner[T]
	seq uint64
}

type entry[T any] struct {
	score float64
	seq   uint64
	value T
}

type inner[T any] []entry[T]

func (h inner[T]) Len() int { return len(h) }

func (h inner[T]) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	return h[i].seq < h[j].seq // FIFO among equals
}

func (h inner[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *inner[T]) Push(x any) { *h = append(*h, x.(entry[T])) }

func (h *inner[T]) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Len returns the number of queued values.
func (q *Queue[T]) Len() int { return len(q.h) }

// Push inserts v with the given score.
func (q *Queue[T]) Push(v T, score float64) {
	q.seq++
	heap.Push(&q.h, entry[T]{score: score, seq: q.seq, value: v})
}

// Pop removes and returns the highest-scored value. Among equal scores
// the earliest-pushed value wins.
func (q *Queue[T]) Pop() (T, float64, bool) {
	if len(q.h) == 0 {
		var zero T
		return zero, 0, false
	}
	e := heap.Pop(&q.h).(entry[T])
	return e.value, e.score, true
}

// Peek returns the highest-scored value without removing it.
func (q *Queue[T]) Peek() (T, float64, bool) {
	if len(q.h) == 0 {
		var zero T
		return zero, 0, false
	}
	// The heap property places the maximum at index 0.
	return q.h[0].value, q.h[0].score, true
}

// PopRescored pops the value with the highest *current* score, where
// rescore gives the up-to-date score of a queued value. It relies on
// scores only decreasing over time (coverage and path penalties only
// grow), the classic lazy-deletion max-heap: the stale top is popped,
// re-scored, and re-inserted if something else now beats it.
func (q *Queue[T]) PopRescored(rescore func(T) float64) (T, float64, bool) {
	for i := 0; i < 64; i++ {
		v, _, ok := q.Pop()
		if !ok {
			var zero T
			return zero, 0, false
		}
		fresh := rescore(v)
		_, nextScore, more := q.Peek()
		if !more || fresh >= nextScore {
			return v, fresh, true
		}
		q.Push(v, fresh)
	}
	// Pathological staleness: fall back to a full re-score.
	q.Reorder(rescore)
	return q.Pop()
}

// Reorder recomputes every score with rescore and restores the heap
// property. Insertion order is preserved for tie-breaking.
func (q *Queue[T]) Reorder(rescore func(T) float64) {
	for i := range q.h {
		q.h[i].score = rescore(q.h[i].value)
	}
	heap.Init(&q.h)
}

// ReorderWith is Reorder with the re-scoring pass handed to pfor, a
// caller-supplied parallel-for that must invoke each over a partition
// of [0, n) and return only when every partition completed. The final
// heapify stays sequential and runs the same algorithm as Reorder, so
// the resulting heap layout — and therefore every later pop — is
// bit-identical to a sequential Reorder: parallelism only touches the
// score computation, which must be a pure function per element for
// this to hold (the engine's score memoisation uses atomics to keep
// racing recomputations of the same memo benign). A nil pfor falls
// back to Reorder.
func (q *Queue[T]) ReorderWith(rescore func(T) float64, pfor func(n int, each func(lo, hi int))) {
	if pfor == nil {
		q.Reorder(rescore)
		return
	}
	pfor(len(q.h), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			q.h[i].score = rescore(q.h[i].value)
		}
	})
	heap.Init(&q.h)
}

// PeekN calls visit on up to n queued values without removing them,
// drawn from the front of the heap's backing array. The heap property
// only guarantees the first element is the maximum; the rest of the
// prefix is a top-biased sample, not a sorted order — exactly what a
// prefetching consumer wants: a cheap, allocation-free guess at which
// values the next few pops will return.
func (q *Queue[T]) PeekN(n int, visit func(T)) {
	if n > len(q.h) {
		n = len(q.h)
	}
	for i := 0; i < n; i++ {
		visit(q.h[i].value)
	}
}

// Item is one queued value with its current heap score, as exported
// by Dump for campaign snapshots.
type Item[T any] struct {
	Value T
	Score float64
}

// Dump returns every queued value with its current score, ordered by
// insertion sequence (oldest first). Restoring a queue by Pushing the
// dumped items back in this order reproduces the original pop order
// exactly: scores are preserved, and the re-assigned sequence numbers
// keep the same relative FIFO tie-break. The queue is not modified.
func (q *Queue[T]) Dump() []Item[T] {
	entries := make([]entry[T], len(q.h))
	copy(entries, q.h)
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]Item[T], len(entries))
	for i, e := range entries {
		out[i] = Item[T]{Value: e.value, Score: e.score}
	}
	return out
}

// Prune discards the lowest-scored entries until at most max remain.
func (q *Queue[T]) Prune(max int) {
	if max < 0 || len(q.h) <= max {
		return
	}
	// Extract the best max entries; O(max log n).
	kept := make(inner[T], 0, max)
	for i := 0; i < max; i++ {
		kept = append(kept, heap.Pop(&q.h).(entry[T]))
	}
	q.h = kept
	heap.Init(&q.h)
}
