// Package pqueue provides the priority queue at the heart of
// pFuzzer's search (paper §3.1). Inputs are primarily sorted by a
// heuristic score; ties fall back to insertion order so the search is
// deterministic under a fixed seed. The queue supports the global
// re-scoring pass the paper performs whenever a new valid input
// arrives ("all remaining inputs in the queue have to be re-evaluated
// in terms of coverage", §3.2) and a size bound that discards the
// worst entries.
//
// The heap is hand-rolled rather than built on container/heap: the
// standard interface moves entries through `any`, which boxes every
// Push/Pop value — two heap allocations per queue operation on the
// campaign trajectory's hot loop. The sift routines below work on the
// typed slice directly and allocate nothing. Because the ordering
// (score descending, insertion sequence ascending) is a strict total
// order — sequence numbers are unique — the pop sequence is a pure
// function of the queued (score, seq) pairs, independent of internal
// array layout, so replacing the heap implementation cannot change
// any campaign's observable behaviour.
package pqueue

import "sort"

// Queue is a max-priority queue of values of type T. The zero value is
// ready to use.
type Queue[T any] struct {
	h   []entry[T]
	seq uint64
}

type entry[T any] struct {
	score float64
	seq   uint64
	value T
}

// less orders the heap: higher score first, FIFO among equals.
func (q *Queue[T]) less(i, j int) bool {
	if q.h[i].score != q.h[j].score {
		return q.h[i].score > q.h[j].score
	}
	return q.h[i].seq < q.h[j].seq
}

// up restores the heap property from index i toward the root.
func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// down restores the heap property from index i toward the leaves.
func (q *Queue[T]) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && q.less(r, l) {
			best = r
		}
		if !q.less(best, i) {
			return
		}
		q.h[i], q.h[best] = q.h[best], q.h[i]
		i = best
	}
}

// heapify rebuilds the heap property over the whole slice.
func (q *Queue[T]) heapify() {
	for i := len(q.h)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

// Len returns the number of queued values.
func (q *Queue[T]) Len() int { return len(q.h) }

// Push inserts v with the given score.
func (q *Queue[T]) Push(v T, score float64) {
	q.seq++
	q.h = append(q.h, entry[T]{score: score, seq: q.seq, value: v})
	q.up(len(q.h) - 1)
}

// Pop removes and returns the highest-scored value. Among equal scores
// the earliest-pushed value wins.
func (q *Queue[T]) Pop() (T, float64, bool) {
	if len(q.h) == 0 {
		var zero T
		return zero, 0, false
	}
	e := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = entry[T]{} // release the value for GC
	q.h = q.h[:n]
	q.down(0)
	return e.value, e.score, true
}

// Peek returns the highest-scored value without removing it.
func (q *Queue[T]) Peek() (T, float64, bool) {
	if len(q.h) == 0 {
		var zero T
		return zero, 0, false
	}
	// The heap property places the maximum at index 0.
	return q.h[0].value, q.h[0].score, true
}

// PopRescored pops the value with the highest *current* score, where
// rescore gives the up-to-date score of a queued value. It relies on
// scores only decreasing over time (coverage and path penalties only
// grow), the classic lazy-deletion max-heap: the stale top is popped,
// re-scored, and re-inserted if something else now beats it.
func (q *Queue[T]) PopRescored(rescore func(T) float64) (T, float64, bool) {
	for i := 0; i < 64; i++ {
		v, _, ok := q.Pop()
		if !ok {
			var zero T
			return zero, 0, false
		}
		fresh := rescore(v)
		_, nextScore, more := q.Peek()
		if !more || fresh >= nextScore {
			return v, fresh, true
		}
		q.Push(v, fresh)
	}
	// Pathological staleness: fall back to a full re-score.
	q.Reorder(rescore)
	return q.Pop()
}

// Reorder recomputes every score with rescore and restores the heap
// property. Insertion order is preserved for tie-breaking.
func (q *Queue[T]) Reorder(rescore func(T) float64) {
	for i := range q.h {
		q.h[i].score = rescore(q.h[i].value)
	}
	q.heapify()
}

// ReorderWith is Reorder with the re-scoring pass handed to pfor, a
// caller-supplied parallel-for that must invoke each over a partition
// of [0, n) and return only when every partition completed. The final
// heapify stays sequential and runs the same algorithm as Reorder, so
// the resulting heap layout — and therefore every later pop — is
// bit-identical to a sequential Reorder: parallelism only touches the
// score computation, which must be a pure function per element for
// this to hold (the engine's score memoisation uses atomics to keep
// racing recomputations of the same memo benign). A nil pfor falls
// back to Reorder.
func (q *Queue[T]) ReorderWith(rescore func(T) float64, pfor func(n int, each func(lo, hi int))) {
	if pfor == nil {
		q.Reorder(rescore)
		return
	}
	pfor(len(q.h), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			q.h[i].score = rescore(q.h[i].value)
		}
	})
	q.heapify()
}

// PeekN calls visit on up to n queued values without removing them,
// drawn from the front of the heap's backing array. The heap property
// only guarantees the first element is the maximum; the rest of the
// prefix is a top-biased sample, not a sorted order — exactly what a
// prefetching consumer wants: a cheap, allocation-free guess at which
// values the next few pops will return.
func (q *Queue[T]) PeekN(n int, visit func(T)) {
	if n > len(q.h) {
		n = len(q.h)
	}
	for i := 0; i < n; i++ {
		visit(q.h[i].value)
	}
}

// PeekNScored is PeekN with each value's current heap score — the
// shadow-trajectory simulator's queue snapshot (core/shadow.go), which
// needs the scores to predict future pop order without touching the
// engine's scoring state.
func (q *Queue[T]) PeekNScored(n int, visit func(T, float64)) {
	if n > len(q.h) {
		n = len(q.h)
	}
	for i := 0; i < n; i++ {
		visit(q.h[i].value, q.h[i].score)
	}
}

// Item is one queued value with its current heap score, as exported
// by Dump for campaign snapshots.
type Item[T any] struct {
	Value T
	Score float64
}

// Dump returns every queued value with its current score, ordered by
// insertion sequence (oldest first). Restoring a queue by Pushing the
// dumped items back in this order reproduces the original pop order
// exactly: scores are preserved, and the re-assigned sequence numbers
// keep the same relative FIFO tie-break. The queue is not modified.
func (q *Queue[T]) Dump() []Item[T] {
	entries := make([]entry[T], len(q.h))
	copy(entries, q.h)
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]Item[T], len(entries))
	for i, e := range entries {
		out[i] = Item[T]{Value: e.value, Score: e.score}
	}
	return out
}

// Prune discards the lowest-scored entries until at most max remain.
func (q *Queue[T]) Prune(max int) {
	if max < 0 || len(q.h) <= max {
		return
	}
	// Extract the best max entries; O(max log n).
	kept := make([]entry[T], 0, max)
	for i := 0; i < max; i++ {
		kept = append(kept, q.h[0])
		n := len(q.h) - 1
		q.h[0] = q.h[n]
		q.h[n] = entry[T]{}
		q.h = q.h[:n]
		q.down(0)
	}
	q.h = kept
	q.heapify()
}
