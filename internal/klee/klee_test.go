package klee

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/subjects/mjs"
	"pfuzzer/internal/trace"
)

func TestFindsValidExpressions(t *testing.T) {
	res := New(expr.New(), Config{MaxExecs: 5000}).Run()
	if len(res.Valids) == 0 {
		t.Fatal("no valid inputs on expr in 5000 execs")
	}
	for _, v := range res.Valids {
		rec := subject.Execute(expr.New(), v.Input, trace.Options{})
		if !rec.Accepted() {
			t.Errorf("emitted input %q is rejected", v.Input)
		}
	}
}

// TestSolvesJSONKeywords reproduces the paper's key KLEE observation:
// path-level search solves the json keywords (it misses at most a
// token or two), because the constraints are shallow.
func TestSolvesJSONKeywords(t *testing.T) {
	res := New(cjson.New(), Config{MaxExecs: 30000}).Run()
	found := map[string]bool{}
	for _, v := range res.Valids {
		for tok := range cjson.Tokenize(v.Input) {
			found[tok] = true
		}
	}
	for _, kw := range []string{"true", "false", "null"} {
		if !found[kw] {
			t.Errorf("KLEE-style search did not solve keyword %q; found %v", kw, found)
		}
	}
}

// TestPathExplosionOnMJS reproduces the paper's other key KLEE
// observation: on mjs the frontier explodes and almost nothing valid
// is found (§5.2: "KLEE, suffering from the path explosion problem,
// finds almost no valid inputs for mjs").
func TestPathExplosionOnMJS(t *testing.T) {
	res := New(mjs.New(), Config{MaxExecs: 10000, MaxStates: 50000}).Run()
	if res.Dropped == 0 && !res.Exhausted && res.States < 40000 {
		t.Errorf("expected frontier pressure on mjs; states=%d dropped=%d", res.States, res.Dropped)
	}
	// The defining result: far fewer valid inputs than on json at the
	// same budget.
	js := New(cjson.New(), Config{MaxExecs: 10000}).Run()
	if len(res.Valids) > len(js.Valids) {
		t.Errorf("mjs valids (%d) should not exceed cjson valids (%d)", len(res.Valids), len(js.Valids))
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (int, int) {
		res := New(cjson.New(), Config{MaxExecs: 3000}).Run()
		return len(res.Valids), res.States
	}
	v1, s1 := run()
	v2, s2 := run()
	if v1 != v2 || s1 != s2 {
		t.Errorf("deterministic search diverged: (%d,%d) vs (%d,%d)", v1, s1, v2, s2)
	}
}

func TestRespectsBudgets(t *testing.T) {
	res := New(cjson.New(), Config{MaxExecs: 100, MaxStates: 50}).Run()
	if res.Execs > 101 {
		t.Errorf("Execs = %d, want <= 101", res.Execs)
	}
}
