// Package klee implements the KLEE-style baseline the paper compares
// against (§5): a whitebox test generator that treats every recorded
// comparison of an input byte as a symbolic branch decision and
// explores the decision tree breadth-first, one flipped decision per
// child state (the generational search of whitebox fuzzers).
//
// String comparisons are handled at byte granularity, as a real
// symbolic executor sees strcmp: matching an n-byte keyword needs n
// consecutive correct flips, one generation each. This is what makes
// the baseline solve shallow magic-byte constraints easily (the json
// keywords) while drowning in path explosion on subjects whose lexers
// branch dozens of ways per character (mjs) — exactly the behaviour
// the paper reports (§5.2, §5.3).
//
// Like the paper's KLEE configuration, the explorer emits only inputs
// that cover new code (§5.1).
package klee

import (
	"time"

	"pfuzzer/internal/stepclock"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

// Config controls a campaign.
type Config struct {
	// MaxExecs bounds subject executions (0 = 100000).
	MaxExecs int
	// MaxStates bounds the frontier size; children beyond the bound
	// are dropped, modelling KLEE's memory cap (0 = 200000).
	MaxStates int
	// MaxLen bounds input length (0 = 64; KLEE fixes the size of its
	// symbolic stdin).
	MaxLen int
	// Deadline bounds active campaign time — time inside Run/Step,
	// not fleet wait between Steps (0 = none).
	Deadline time.Duration
	// OnValid, if non-nil, observes each emitted valid input.
	OnValid func(input []byte, execs int)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxExecs == 0 {
		out.MaxExecs = 100000
	}
	if out.MaxStates == 0 {
		out.MaxStates = 200000
	}
	if out.MaxLen == 0 {
		out.MaxLen = 64
	}
	return out
}

// Valid is one emitted valid input.
type Valid struct {
	Input []byte
	Exec  int
}

// Result summarizes a campaign.
type Result struct {
	Valids    []Valid
	Execs     int
	States    int // states ever enqueued
	Dropped   int // children dropped at the frontier bound
	Coverage  map[uint32]bool
	Elapsed   time.Duration
	Exhausted bool // frontier ran dry before the budget did
}

// ValidInputs returns the raw emitted inputs.
func (r *Result) ValidInputs() [][]byte {
	out := make([][]byte, len(r.Valids))
	for i := range r.Valids {
		out[i] = r.Valids[i].Input
	}
	return out
}

// Explorer is one symbolic-execution-style campaign.
type Explorer struct {
	cfg  Config
	prog subject.Program

	frontier [][]byte
	seen     map[string]struct{}
	vBr      map[uint32]bool
	res      Result
	clock    stepclock.Clock // active stepping time (Result.Elapsed, Deadline)
	began    bool
	execCap  int // current step's execution bound
}

// New prepares an explorer for prog.
func New(prog subject.Program, cfg Config) *Explorer {
	return &Explorer{
		cfg:  cfg.withDefaults(),
		prog: prog,
		seen: make(map[string]struct{}),
		vBr:  make(map[uint32]bool),
	}
}

// Run executes the campaign.
func (e *Explorer) Run() *Result {
	for {
		if _, more := e.Step(e.cfg.MaxExecs); !more {
			break
		}
	}
	return e.Result()
}

// Step advances the exploration by up to n executions and reports how
// many were spent and whether the frontier and budget allow more —
// the resumable-campaign surface the fleet orchestrator
// (internal/campaign) multiplexes. The search is breadth-first with
// no randomness, so stepping in any slicing visits the same states as
// one blocking Run.
func (e *Explorer) Step(n int) (spent int, more bool) {
	e.clock.StepBegin()
	if !e.began {
		e.began = true
		e.res.Coverage = make(map[uint32]bool)
		e.push([]byte{})
	}
	before := e.res.Execs
	e.execCap = e.res.Execs + n
	if e.execCap > e.cfg.MaxExecs {
		e.execCap = e.cfg.MaxExecs
	}
	for len(e.frontier) > 0 && !e.done() {
		// Breadth-first: oldest state first.
		input := e.frontier[0]
		e.frontier = e.frontier[1:]
		e.expand(input)
	}
	e.res.Exhausted = len(e.frontier) == 0
	e.res.Elapsed = e.clock.StepEnd()
	return e.res.Execs - before, !e.over()
}

// Result returns the campaign's live result (final once over).
func (e *Explorer) Result() *Result { return &e.res }

// over reports whether the whole campaign is finished: frontier dry,
// budget spent, or deadline hit.
func (e *Explorer) over() bool {
	if e.began && e.res.Exhausted {
		return true
	}
	if e.res.Execs >= e.cfg.MaxExecs {
		return true
	}
	return e.deadlineHit()
}

// deadlineHit compares the Deadline against active stepping time —
// completed Steps plus the running one — so fleet queue wait between
// Steps does not cut the campaign short.
func (e *Explorer) deadlineHit() bool {
	return e.clock.Exceeded(e.cfg.Deadline)
}

// done bounds the current step (see over for the campaign bound).
func (e *Explorer) done() bool {
	if e.res.Execs >= e.execCap {
		return true
	}
	return e.deadlineHit()
}

func (e *Explorer) push(input []byte) {
	if len(input) > e.cfg.MaxLen {
		return
	}
	key := string(input)
	if _, dup := e.seen[key]; dup {
		return
	}
	e.seen[key] = struct{}{}
	if len(e.frontier) >= e.cfg.MaxStates {
		e.res.Dropped++
		return
	}
	e.res.States++
	e.frontier = append(e.frontier, input)
}

// expand executes one state's input and forks a child per flippable
// decision observed on the path.
func (e *Explorer) expand(input []byte) {
	e.res.Execs++
	rec := subject.Execute(e.prog, input, trace.Full())

	if rec.Accepted() && e.hasNewBlocks(rec) {
		//pdlint:ordered -- set union; every visit order yields the same coverage maps
		for id := range rec.BlockFirst {
			e.vBr[id] = true
			e.res.Coverage[id] = true
		}
		v := Valid{Input: append([]byte{}, input...), Exec: e.res.Execs}
		e.res.Valids = append(e.res.Valids, v)
		if e.cfg.OnValid != nil {
			e.cfg.OnValid(v.Input, v.Exec)
		}
	}

	// An attempted read past the end extends the symbolic input.
	if rec.EOFAtEnd() && len(input) < e.cfg.MaxLen {
		e.push(append(append([]byte{}, input...), 0))
	}

	for i := range rec.Comparisons {
		c := &rec.Comparisons[i]
		for _, child := range e.flip(input, c) {
			e.push(child)
		}
	}
}

func (e *Explorer) hasNewBlocks(rec *trace.Record) bool {
	//pdlint:ordered -- existence test; any visit order finds the same answer
	for id := range rec.BlockFirst {
		if !e.vBr[id] {
			return true
		}
	}
	return false
}

// flip solves the negation of one comparison, producing child inputs
// that differ from the parent in a single byte (or extend it by one).
func (e *Explorer) flip(input []byte, c *trace.Comparison) [][]byte {
	setByte := func(pos int, b byte) []byte {
		if pos < 0 {
			return nil
		}
		out := append([]byte{}, input...)
		for len(out) <= pos {
			out = append(out, 0)
		}
		out[pos] = b
		return out
	}

	switch c.Kind {
	case trace.CmpCharEq:
		if c.Matched {
			// Negate equality: smallest printable byte that differs.
			return [][]byte{setByte(c.Index, other(c.Expected[0]))}
		}
		return [][]byte{setByte(c.Index, c.Expected[0])}

	case trace.CmpCharRange:
		if len(c.Expected) != 2 {
			return nil
		}
		lo, hi := c.Expected[0], c.Expected[1]
		if c.Matched {
			return [][]byte{setByte(c.Index, other(lo))}
		}
		return [][]byte{setByte(c.Index, lo), setByte(c.Index, hi)}

	case trace.CmpCharSet:
		if len(c.Expected) == 0 {
			return nil
		}
		if c.Matched {
			return [][]byte{setByte(c.Index, other(c.Expected[0]))}
		}
		// Fork one child per set member, as a symbolic strchr does.
		out := make([][]byte, 0, len(c.Expected))
		for _, b := range c.Expected {
			out = append(out, setByte(c.Index, b))
		}
		return out

	case trace.CmpStrEq:
		// Byte-granular strcmp: advance or break the match at the
		// first differing byte, one generation at a time.
		lit := c.Expected
		actual := c.Actual
		if c.Matched {
			if len(lit) == 0 {
				return nil
			}
			return [][]byte{setByte(c.Index, other(lit[0]))}
		}
		k := 0
		for k < len(actual) && k < len(lit) && actual[k] == lit[k] {
			k++
		}
		switch {
		case k < len(actual) && k < len(lit):
			// Mismatch inside the overlap: fix that byte.
			return [][]byte{setByte(c.Index+k, lit[k])}
		case k == len(actual) && k < len(lit):
			// Actual is a proper prefix: extend by the next byte.
			return [][]byte{setByte(c.Index+k, lit[k])}
		case k == len(lit) && k < len(actual):
			// Actual is longer: the real strcmp fails on the byte
			// after the literal; nothing solvable byte-wise here.
			return nil
		}
	}
	return nil
}

// other returns a printable byte different from b, the deterministic
// counterexample a solver would produce.
func other(b byte) byte {
	if b == 'A' {
		return 'B'
	}
	return 'A'
}
