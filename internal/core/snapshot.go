package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"pfuzzer/internal/subject"
)

// countedSource wraps the standard PRNG source and counts draws, so a
// Snapshot can record the stream position and Restore can fast-forward
// a fresh source to it. It deliberately does not implement
// rand.Source64: rand.Rand then derives every value (Intn, Float64,
// even Uint64) from Int63 alone, so one counter replays the stream
// exactly — and since the campaign only ever consumes Int63-derived
// values, wrapping changes nothing about the emitted numbers, keeping
// the golden sequences intact.
type countedSource struct {
	src   rand.Source
	draws uint64
}

func (c *countedSource) Int63() int64 { c.draws++; return c.src.Int63() }
func (c *countedSource) Seed(s int64) { c.src.Seed(s) }

// snapshotVersion guards the serialized layout; Restore rejects
// snapshots written by a different version.
const snapshotVersion = 1

// SavedConfig is the serializable subset of Config a Snapshot carries,
// so resuming a campaign needs no re-specification of its knobs. The
// function-valued fields (Events, MineLexer) cannot be serialized and
// are re-supplied by Restore's cfg argument.
type SavedConfig struct {
	Seed          int64    `json:"seed"`
	MaxExecs      int      `json:"max_execs"`
	MaxValids     int      `json:"max_valids,omitempty"`
	MaxLen        int      `json:"max_len"`
	MaxQueue      int      `json:"max_queue"`
	Charset       []byte   `json:"charset"`
	DeadlineNS    int64    `json:"deadline_ns,omitempty"`
	Cache         int      `json:"cache,omitempty"`
	Workers       int      `json:"workers,omitempty"`
	BatchSize     int      `json:"batch_size,omitempty"`
	SpecDepth     int      `json:"spec_depth,omitempty"`
	Shards        int      `json:"shards,omitempty"`
	Generation    int      `json:"generation,omitempty"`
	MinePhase     bool     `json:"mine_phase,omitempty"`
	MineBudget    int      `json:"mine_budget,omitempty"`
	MineMaxTokens int      `json:"mine_max_tokens,omitempty"`
	MineCadence   int      `json:"mine_cadence,omitempty"`
	MineSeeds     [][]byte `json:"mine_seeds,omitempty"`

	NoLengthTerm       bool `json:"no_length_term,omitempty"`
	NoReplacementBonus bool `json:"no_replacement_bonus,omitempty"`
	NoStackTerm        bool `json:"no_stack_term,omitempty"`
	NoParentsTerm      bool `json:"no_parents_term,omitempty"`
	NoPathNovelty      bool `json:"no_path_novelty,omitempty"`
	CoverageOnly       bool `json:"coverage_only,omitempty"`
	BFS                bool `json:"bfs,omitempty"`
}

func savedConfig(c *Config) SavedConfig {
	return SavedConfig{
		Seed: c.Seed, MaxExecs: c.MaxExecs, MaxValids: c.MaxValids,
		MaxLen: c.MaxLen, MaxQueue: c.MaxQueue, Charset: c.Charset,
		DeadlineNS: int64(c.Deadline), Cache: int(c.Cache),
		Workers: c.Workers, BatchSize: c.BatchSize, SpecDepth: c.SpecDepth, Shards: c.Shards,
		Generation: c.Generation, MinePhase: c.MinePhase, MineBudget: c.MineBudget,
		MineMaxTokens: c.MineMaxTokens, MineCadence: c.MineCadence, MineSeeds: c.MineSeeds,
		NoLengthTerm: c.NoLengthTerm, NoReplacementBonus: c.NoReplacementBonus,
		NoStackTerm: c.NoStackTerm, NoParentsTerm: c.NoParentsTerm,
		NoPathNovelty: c.NoPathNovelty, CoverageOnly: c.CoverageOnly, BFS: c.BFS,
	}
}

func (sc *SavedConfig) config() Config {
	return Config{
		Seed: sc.Seed, MaxExecs: sc.MaxExecs, MaxValids: sc.MaxValids,
		MaxLen: sc.MaxLen, MaxQueue: sc.MaxQueue, Charset: sc.Charset,
		Deadline: time.Duration(sc.DeadlineNS), Cache: CacheMode(sc.Cache),
		Workers: sc.Workers, BatchSize: sc.BatchSize, SpecDepth: sc.SpecDepth, Shards: sc.Shards,
		Generation: sc.Generation, MinePhase: sc.MinePhase, MineBudget: sc.MineBudget,
		MineMaxTokens: sc.MineMaxTokens, MineCadence: sc.MineCadence, MineSeeds: sc.MineSeeds,
		NoLengthTerm: sc.NoLengthTerm, NoReplacementBonus: sc.NoReplacementBonus,
		NoStackTerm: sc.NoStackTerm, NoParentsTerm: sc.NoParentsTerm,
		NoPathNovelty: sc.NoPathNovelty, CoverageOnly: sc.CoverageOnly, BFS: sc.BFS,
	}
}

// SnapValid is one emitted valid input in a Snapshot.
type SnapValid struct {
	Input     []byte `json:"input"`
	NewBlocks int    `json:"new_blocks"`
	Exec      int    `json:"exec"`
}

// SnapCandidate is one queued (or popped) search candidate in a
// Snapshot. Shard is always -1 in snapshots this build writes (every
// engine runs the exact queue); legacy snapshots from the retired
// sharded-queue engine carry the shard index that held the candidate,
// which Restore folds back into the exact queue.
type SnapCandidate struct {
	Input       []byte   `json:"input"`
	Replacement []byte   `json:"replacement,omitempty"`
	ParentBlks  []uint32 `json:"parent_blks,omitempty"`
	ParentStack float64  `json:"parent_stack,omitempty"`
	ParentPath  uint64   `json:"parent_path,omitempty"`
	Parents     int      `json:"parents,omitempty"`
	Retries     int      `json:"retries,omitempty"`
	MineGen     int      `json:"mine_gen,omitempty"`
	Score       float64  `json:"score"`
	Shard       int      `json:"shard"`
}

func snapCandidate(cd *candidate, score float64, shard int) SnapCandidate {
	sc := SnapCandidate{
		Input: cd.input, Replacement: cd.replacement,
		Parents: cd.parents, Retries: cd.retries, MineGen: cd.mineGen,
		Score: score, Shard: shard,
	}
	if cd.parent != nil {
		sc.ParentBlks = cd.parent.blks
		sc.ParentStack = cd.parent.stack
		sc.ParentPath = cd.parent.path
	}
	return sc
}

func (sc *SnapCandidate) candidate() *candidate {
	cd := &candidate{
		input: sc.Input, replacement: sc.Replacement,
		parents: sc.Parents, retries: sc.Retries, mineGen: sc.MineGen,
	}
	if len(sc.ParentBlks) > 0 || sc.ParentStack != 0 || sc.ParentPath != 0 {
		// The snapshot flattens the shared parentFacts per candidate;
		// rebuilding them unshared only forfeits memo reuse across
		// former siblings, never a score value.
		cd.parent = &parentFacts{blks: sc.ParentBlks, stack: sc.ParentStack, path: sc.ParentPath}
	}
	return cd
}

// PathCount is one path-frequency entry in a Snapshot.
type PathCount struct {
	Hash  uint64 `json:"hash"`
	Count int    `json:"count"`
}

// SnapHybrid is the hybrid phase driver's between-phase state. The
// grammar itself is not serialized: Restore rebuilds it by replaying
// MineSeeds and the first Fed valids through the incremental miner,
// which reproduces the automaton exactly.
type SnapHybrid struct {
	Fed         int      `json:"fed"`
	ExploreLeft int      `json:"explore_left"`
	MineLeft    int      `json:"mine_left"`
	SliceLeft   int      `json:"slice_left"`
	Stage       int      `json:"stage"`
	PhaseActive bool     `json:"phase_active"`
	PhaseCap    int      `json:"phase_cap"`
	PhaseMining bool     `json:"phase_mining"`
	PhaseKind   int      `json:"phase_kind"`
	PhaseRound  int      `json:"phase_round"`
	Emitted     [][]byte `json:"emitted,omitempty"` // GenerateBatch's hand-out dedup set
}

// Snapshot is a serializable image of a campaign between Steps, and
// it is exact on every engine: a campaign restored from a snapshot
// continues with the same queue, dedup sets, cursor and RNG stream
// position, so the combined run is bit-identical to an uninterrupted
// one. With Workers > 1 the speculative workers hold no campaign
// state between Steps (the memo and board are rebuilt per phase), so
// the trajectory state captured here is the whole campaign.
type Snapshot struct {
	Version int         `json:"version"`
	Config  SavedConfig `json:"config"`

	Execs         int         `json:"execs"`
	CacheHits     int         `json:"cache_hits,omitempty"`
	CacheMisses   int         `json:"cache_misses,omitempty"`
	CacheRetired  bool        `json:"cache_retired,omitempty"`
	CacheCheckAt  int         `json:"cache_check_at,omitempty"`
	ElapsedNS     int64       `json:"elapsed_ns"`
	ExecElapsedNS int64       `json:"exec_elapsed_ns,omitempty"`
	RNGDraws      uint64      `json:"rng_draws"`
	Phases        int         `json:"phases,omitempty"`
	Began         bool        `json:"began"`
	LongestValid  int         `json:"longest_valid,omitempty"`
	MiningActive  bool        `json:"mining_active,omitempty"`
	Valids        []SnapValid `json:"valids,omitempty"`
	Coverage      []uint32    `json:"coverage,omitempty"`
	VBr           []uint32    `json:"vbr,omitempty"`
	Seen          [][]byte    `json:"seen,omitempty"`
	PathSeen      []PathCount `json:"path_seen,omitempty"`

	Queue []SnapCandidate `json:"queue,omitempty"`

	// Serial engine loop cursor.
	SStarted   bool           `json:"s_started"`
	SInput     []byte         `json:"s_input,omitempty"`
	SExt       []byte         `json:"s_ext,omitempty"`
	SCur       *SnapCandidate `json:"s_cur,omitempty"`
	CurParents int            `json:"cur_parents,omitempty"`
	CurMineGen int            `json:"cur_mine_gen,omitempty"`

	Hybrid *SnapHybrid `json:"hybrid,omitempty"`
}

// Marshal encodes the snapshot for persistence (see internal/corpus).
func (s *Snapshot) Marshal() ([]byte, error) { return json.Marshal(s) }

// UnmarshalSnapshot decodes a snapshot written by Marshal.
func UnmarshalSnapshot(b []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return &s, nil
}

func sortedIDs(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot captures the campaign's full state. It must only be called
// between Steps (never concurrently with one); the parallel engine
// has no live executors then, so all state is on the scheduler side.
// Map-backed sets are emitted sorted so snapshot bytes are stable.
func (c *Campaign) Snapshot() *Snapshot {
	f := c.f
	s := &Snapshot{
		Version:       snapshotVersion,
		Config:        savedConfig(&f.cfg),
		Execs:         f.res.Execs,
		CacheHits:     f.res.CacheHits,
		CacheMisses:   f.res.CacheMisses,
		CacheRetired:  f.res.CacheRetired,
		CacheCheckAt:  f.cacheCheckAt,
		ExecElapsedNS: int64(f.res.ExecElapsed),
		ElapsedNS:     int64(f.clock.Active()),
		RNGDraws:      f.cs.draws,
		Phases:        f.phases,
		Began:         f.began,
		LongestValid:  f.longestValid,
		MiningActive:  f.miningActive,
		SStarted:      f.sStarted,
		SInput:        append([]byte(nil), f.sInput...),
		SExt:          append([]byte(nil), f.sExt...),
		CurParents:    f.curParents,
		CurMineGen:    f.curMineGen,
	}
	for i := range f.res.Valids {
		v := &f.res.Valids[i]
		s.Valids = append(s.Valids, SnapValid{Input: v.Input, NewBlocks: v.NewBlocks, Exec: v.Exec})
	}
	if f.res.Coverage != nil {
		s.Coverage = sortedIDs(f.res.Coverage)
	}
	s.VBr = f.vBr.ids()
	sort.Slice(s.VBr, func(i, j int) bool { return s.VBr[i] < s.VBr[j] })
	for k := range f.seen {
		s.Seen = append(s.Seen, []byte(k))
	}
	sort.Slice(s.Seen, func(i, j int) bool { return bytes.Compare(s.Seen[i], s.Seen[j]) < 0 })
	for h, n := range f.pathSeen {
		s.PathSeen = append(s.PathSeen, PathCount{Hash: h, Count: *n})
	}
	sort.Slice(s.PathSeen, func(i, j int) bool { return s.PathSeen[i].Hash < s.PathSeen[j].Hash })
	for _, it := range f.queue.Dump() {
		s.Queue = append(s.Queue, snapCandidate(it.Value, it.Score, -1))
	}
	if f.sCur != nil {
		// The popped score rides along so a restored campaign's shadow
		// simulator re-enqueues the cursor from the same base (it never
		// affects what the campaign computes, only prediction quality).
		sc := snapCandidate(f.sCur, f.sCurScore, -1)
		s.SCur = &sc
	}
	if f.hyb != nil {
		h := f.hyb
		s.Hybrid = &SnapHybrid{
			Fed: h.fed, ExploreLeft: h.exploreLeft, MineLeft: h.mineLeft,
			SliceLeft: h.sliceLeft, Stage: h.stage, PhaseActive: h.phaseActive,
			PhaseCap: h.phaseCap, PhaseMining: h.phaseMining,
			PhaseKind: h.phaseKind, PhaseRound: h.phaseRound,
			Emitted: h.g.Emitted(),
		}
	}
	return s
}

// Restore rebuilds a campaign from a snapshot over prog — which must
// be the same subject the snapshot was taken on. The snapshot
// supplies every serializable knob; cfg supplies what a snapshot
// cannot carry (the Events sink and the MineLexer, which must match
// the original) and may rebudget the campaign: any positive
// cfg.MaxExecs (larger to extend, smaller to stop earlier — even
// immediately, if already passed), cfg.MaxValids, or cfg.Deadline
// overrides the saved value. The Deadline counts active campaign
// time, which the snapshot carries — a resumed campaign continues its
// clock, it does not restart it. Everything else in cfg is ignored.
//
// On the serial engine the restored campaign is exact: its RNG stream
// is fast-forwarded to the saved draw position and its queue, dedup
// sets and loop cursor are rebuilt in order, so stepping it produces
// the same executions an uninterrupted run would from that point.
func Restore(prog subject.Program, cfg Config, s *Snapshot) (*Campaign, error) {
	if s == nil {
		return nil, errors.New("core: nil snapshot")
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, this build writes %d", s.Version, snapshotVersion)
	}
	base := s.Config.config()
	base.Events = cfg.Events
	base.MineLexer = cfg.MineLexer
	if cfg.MaxExecs > 0 {
		base.MaxExecs = cfg.MaxExecs
	}
	if cfg.MaxValids > 0 {
		base.MaxValids = cfg.MaxValids
	}
	if cfg.Deadline > 0 {
		base.Deadline = cfg.Deadline
	}
	if cfg.Cache != CacheAuto {
		// An explicit CacheOn/CacheOff overrides the saved mode — safe
		// either way, since the cache never changes what a campaign
		// emits. The contents are not serialized; a resumed campaign
		// rebuilds them lazily and only the counters carry over.
		base.Cache = cfg.Cache
	}
	f := New(prog, base)
	f.ran = true

	for i := uint64(0); i < s.RNGDraws; i++ {
		//pdlint:ignore enginerand -- fast-forwarding the restored stream to the saved position; the draw counter is set right below
		f.cs.src.Int63()
	}
	f.cs.draws = s.RNGDraws

	f.began = s.Began
	if s.Began {
		f.res.Coverage = make(map[uint32]bool, len(s.Coverage))
		for _, id := range s.Coverage {
			f.res.Coverage[id] = true
		}
	}
	f.clock.Load(time.Duration(s.ElapsedNS))
	f.res.Elapsed = time.Duration(s.ElapsedNS)
	f.res.Execs = s.Execs
	f.res.CacheHits = s.CacheHits
	f.res.CacheMisses = s.CacheMisses
	f.res.CacheRetired = s.CacheRetired
	f.cacheCheckAt = s.CacheCheckAt
	if s.CacheRetired {
		if f.cache != nil && base.Cache == CacheAuto {
			// The adaptive rule had already dropped the cache;
			// resurrect the decision, not the storage, so the retired
			// flag stays truthful and the resumed campaign keeps
			// counting misses the way the interrupted one would have.
			f.cache.Retire()
		} else {
			// An explicit CacheOn/CacheOff override supersedes the old
			// adaptive verdict; the flag describes this campaign's
			// cache, which is live (or absent) again.
			f.res.CacheRetired = false
		}
	}
	f.res.ExecElapsed = time.Duration(s.ExecElapsedNS)
	for i := range s.Valids {
		v := &s.Valids[i]
		f.res.Valids = append(f.res.Valids, Valid{Input: v.Input, NewBlocks: v.NewBlocks, Exec: v.Exec})
		f.validSeen[string(v.Input)] = struct{}{}
	}
	for _, id := range s.VBr {
		f.vBr.add(id)
	}
	for _, k := range s.Seen {
		f.seen[string(k)] = struct{}{}
	}
	for _, pc := range s.PathSeen {
		n := pc.Count
		f.pathSeen[pc.Hash] = &n
	}
	f.phases = s.Phases
	f.longestValid = s.LongestValid
	f.miningActive = s.MiningActive
	f.sStarted = s.SStarted
	f.sInput = s.SInput
	f.sExt = s.SExt
	f.curParents = s.CurParents
	f.curMineGen = s.CurMineGen
	if s.SCur != nil {
		f.sCur = s.SCur.candidate()
		f.sCurScore = s.SCur.Score
	}

	// Every candidate restores into the exact queue in snapshot order.
	// Legacy snapshots from the retired sharded-queue engine carry
	// Shard >= 0 entries; folding them into the one queue preserves
	// their scores and relative order, which is all that engine
	// guaranteed anyway.
	for i := range s.Queue {
		e := &s.Queue[i]
		f.queue.Push(e.candidate(), e.Score)
	}

	if s.Hybrid != nil {
		h := f.ensureHybrid() // seeds MineSeeds, recomputes the budget split
		hb := s.Hybrid
		// Replay the valids the original had folded in, in emission
		// order, reproducing the incremental grammar exactly.
		for i := 0; i < hb.Fed && i < len(f.res.Valids); i++ {
			h.g.Add(f.res.Valids[i].Input)
		}
		h.g.MarkEmitted(hb.Emitted)
		h.fed = hb.Fed
		h.exploreLeft = hb.ExploreLeft
		h.mineLeft = hb.MineLeft
		h.sliceLeft = hb.SliceLeft
		h.stage = hb.Stage
		h.phaseActive = hb.PhaseActive
		h.phaseCap = hb.PhaseCap
		h.phaseMining = hb.PhaseMining
		h.phaseKind = hb.PhaseKind
		h.phaseRound = hb.PhaseRound
		// An extended budget flows into the final exploration sweep —
		// including on a campaign that had already finished, whose
		// terminal stage must reopen or campaignOver would report done
		// before the new budget is touched.
		h.total = base.MaxExecs
		if h.stage == hsDone && !h.phaseActive && f.res.Execs < h.total {
			h.stage = hsFinal
		}
	}
	return &Campaign{f: f}, nil
}
