// Package core implements parser-directed fuzzing: Algorithm 1 of
// "Parser-Directed Fuzzing" (Mathis et al., PLDI 2019).
//
// The fuzzer feeds a candidate input to the instrumented subject and
// observes the comparisons made against each input character. On
// rejection it substitutes the compared characters with the values
// they were compared against; when the parser attempts to read past
// the end of the input, it appends a random character. Candidate
// inputs wait in a priority queue ordered by a heuristic over the
// parent's new branch coverage, the input length, the replacement
// length, the parser stack depth, the number of substitutions on the
// search path, and path novelty (§3.1–3.2). Valid inputs that cover
// new code are emitted; by construction every emitted input is
// accepted by the parser.
package core

import (
	"math"
	"math/rand"
	"time"

	"pfuzzer/internal/pqueue"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

// DefaultCharset is the alphabet used for random extensions: printable
// ASCII plus newline and tab, matching the paper's "random character
// from the set of all ASCII characters".
func DefaultCharset() []byte {
	cs := make([]byte, 0, 98)
	for b := byte(0x20); b < 0x7f; b++ {
		cs = append(cs, b)
	}
	return append(cs, '\n', '\t')
}

// Config controls a fuzzing campaign.
type Config struct {
	// Seed seeds the random number generator.
	Seed int64
	// MaxExecs bounds the number of subject executions (0 = 100000).
	MaxExecs int
	// MaxValids stops the campaign after this many valid inputs
	// (0 = unlimited).
	MaxValids int
	// MaxLen discards candidate inputs longer than this (0 = 512).
	MaxLen int
	// MaxQueue bounds the priority queue (0 = 50000).
	MaxQueue int
	// Charset is the random-extension alphabet (nil = DefaultCharset).
	Charset []byte
	// Deadline bounds wall-clock time (0 = none).
	Deadline time.Duration
	// OnValid, if non-nil, is invoked for every emitted valid input.
	OnValid func(input []byte, execs int)
	// DebugPop, if non-nil, observes every queue pop (diagnostics).
	DebugPop func(input []byte, score float64, execs, queueLen int)

	// Ablation switches; all false reproduces the paper's heuristic.
	// They exist for the ablation benchmarks listed in DESIGN.md.
	NoLengthTerm       bool // drop the -len(input) term
	NoReplacementBonus bool // drop the +2*len(replacement) term
	NoStackTerm        bool // drop the -avgStackSize term
	NoParentsTerm      bool // drop the parent-count term
	NoPathNovelty      bool // drop the path-novelty re-ranking
	CoverageOnly       bool // coverage term only (degenerates to depth-first)
	BFS                bool // breadth-first: shortest inputs first
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxExecs == 0 {
		out.MaxExecs = 100000
	}
	if out.MaxLen == 0 {
		out.MaxLen = 512
	}
	if out.MaxQueue == 0 {
		out.MaxQueue = 50000
	}
	if len(out.Charset) == 0 {
		out.Charset = DefaultCharset()
	}
	return out
}

// Valid is one emitted input: accepted by the parser and covering new
// code at the time it was found.
type Valid struct {
	Input     []byte
	NewBlocks int // blocks this input covered first
	Exec      int // execution index at which it was found
}

// Result summarizes a campaign.
type Result struct {
	Valids   []Valid
	Execs    int
	Coverage map[uint32]bool // union block coverage of the valid inputs
	Elapsed  time.Duration
}

// ValidInputs returns the raw emitted inputs.
func (r *Result) ValidInputs() [][]byte {
	out := make([][]byte, len(r.Valids))
	for i := range r.Valids {
		out[i] = r.Valids[i].Input
	}
	return out
}

// candidate is a queued input together with the parent-run facts the
// heuristic needs, stored so scores can be recomputed without
// re-running the subject (§3.2).
type candidate struct {
	input       []byte
	replacement []byte   // the substituted value ("c" in Algorithm 1)
	parentBlks  []uint32 // parent's trimmed covered blocks
	parentStack float64  // parent's avg stack depth at last two comparisons
	parentPath  uint64   // parent's path hash
	parents     int      // substitutions on the search path so far
	retries     int      // times this input was already extended
}

// Fuzzer is one parser-directed fuzzing campaign over a subject.
type Fuzzer struct {
	cfg  Config
	prog subject.Program
	rng  *rand.Rand

	vBr       map[uint32]bool // blocks covered by valid inputs
	queue     pqueue.Queue[*candidate]
	seen      map[string]struct{} // inputs ever enqueued or run
	pathSeen  map[uint64]int      // executions per path hash
	validSeen map[string]struct{}

	res        Result
	start      time.Time
	curParents int // substitution depth of the input being processed
}

// New prepares a fuzzer for prog.
func New(prog subject.Program, cfg Config) *Fuzzer {
	c := cfg.withDefaults()
	return &Fuzzer{
		cfg:       c,
		prog:      prog,
		rng:       rand.New(rand.NewSource(c.Seed)),
		vBr:       make(map[uint32]bool),
		seen:      make(map[string]struct{}),
		pathSeen:  make(map[uint64]int),
		validSeen: make(map[string]struct{}),
	}
}

// Run executes the campaign and returns its result.
func (f *Fuzzer) Run() *Result {
	f.start = time.Now()
	f.res.Coverage = make(map[uint32]bool)

	// The paper starts from the empty string, whose rejection via an
	// EOF access at index 0 teaches the fuzzer to append (Figure 1).
	input := []byte{}
	eInp := []byte{f.randChar()}

	var cur *candidate
	for !f.done() {
		rec, ok := f.runCheck(input)
		if !ok {
			recE, okE := f.runCheck(eInp)
			if !okE {
				f.addInputs(eInp, recE)
			}
			// Re-enqueue the processed input with a retry decay: the
			// random extension is drawn fresh on every pop, so a
			// prefix whose extension led nowhere (for example a
			// keyword destroyed by appending a letter) gets another
			// chance later. The paper's queue admits duplicate
			// inputs and retries the same way.
			if cur != nil {
				cur.retries++
				f.queue.Push(cur, f.score(cur))
			}
			_ = rec
		}
		next, score, found := f.queue.PopRescored(f.score)
		if !found {
			// Queue exhausted: restart from a fresh random character.
			input = []byte{f.randChar()}
			f.curParents = 0
			cur = nil
		} else {
			input = next.input
			f.curParents = next.parents
			cur = next
			if f.cfg.DebugPop != nil {
				f.cfg.DebugPop(input, score, f.res.Execs, f.queue.Len())
			}
		}
		eInp = append(append([]byte{}, input...), f.randChar())
	}

	f.res.Elapsed = time.Since(f.start)
	return &f.res
}

func (f *Fuzzer) done() bool {
	if f.res.Execs >= f.cfg.MaxExecs {
		return true
	}
	if f.cfg.MaxValids > 0 && len(f.res.Valids) >= f.cfg.MaxValids {
		return true
	}
	if f.cfg.Deadline > 0 && time.Since(f.start) > f.cfg.Deadline {
		return true
	}
	return false
}

func (f *Fuzzer) randChar() byte {
	return f.cfg.Charset[f.rng.Intn(len(f.cfg.Charset))]
}

// runCheck executes input and, if it is valid and covers new code,
// processes it as a new valid input (Algorithm 1, runCheck/validInp).
// It returns the record and whether the input was treated as valid.
func (f *Fuzzer) runCheck(input []byte) (*trace.Record, bool) {
	rec := f.run(input)
	if rec.Accepted() && f.hasNewBlocks(rec) {
		f.validInp(rec)
		return rec, true
	}
	return rec, false
}

func (f *Fuzzer) run(input []byte) *trace.Record {
	f.res.Execs++
	rec := subject.Execute(f.prog, input, trace.Full())
	f.pathSeen[rec.PathHash]++
	return rec
}

func (f *Fuzzer) hasNewBlocks(rec *trace.Record) bool {
	for id := range rec.BlockFirst {
		if !f.vBr[id] {
			return true
		}
	}
	return false
}

// validInp emits the input, merges its coverage into vBr, re-scores
// the queue against the grown vBr, and derives successors from the
// valid run's comparisons (Algorithm 1, validInp).
func (f *Fuzzer) validInp(rec *trace.Record) {
	key := string(rec.Input)
	if _, dup := f.validSeen[key]; !dup {
		f.validSeen[key] = struct{}{}
		newBlocks := 0
		for id := range rec.BlockFirst {
			if !f.res.Coverage[id] {
				f.res.Coverage[id] = true
				newBlocks++
			}
		}
		v := Valid{
			Input:     append([]byte{}, rec.Input...),
			NewBlocks: newBlocks,
			Exec:      f.res.Execs,
		}
		f.res.Valids = append(f.res.Valids, v)
		if f.cfg.OnValid != nil {
			f.cfg.OnValid(v.Input, v.Exec)
		}
	}
	for id := range rec.BlockFirst {
		f.vBr[id] = true
	}
	f.queue.Reorder(f.score)
	f.addInputs(rec.Input, rec)
}

// addInputs derives one successor input per comparison made to the
// last compared character and enqueues it (Algorithm 1, addInputs).
// Substituting only at the failing index is what the paper describes
// throughout: "the fuzzer then corrects the invalid character to pass
// one of the character comparisons that was made at that index" (§1),
// "the mutations always occur at the last index where the comparison
// failed" (§6.2). The replacement is one of the values the character
// was compared against; range and set comparisons pick a random
// member, so repeated executions of the same comparison explore
// different members. For a comparison spanning input[s..e], the
// successor is input[:s] + expected + input[e+1:]; for wrapped strcmp
// comparisons the whole literal is substituted, which is how keywords
// enter the inputs.
func (f *Fuzzer) addInputs(input []byte, rec *trace.Record) {
	parent := f.parentFacts(rec)
	last := rec.LastComparedIndex()
	comps := rec.ComparisonsAt(last)
	for i := range comps {
		c := &comps[i]
		for _, cand := range f.pick(c) {
			if c.Matched && len(cand) == len(c.Actual) && string(cand) == string(c.Actual) {
				continue // no-op substitution
			}
			child := substitute(input, c, cand)
			if len(child) > f.cfg.MaxLen {
				continue
			}
			key := string(child)
			if _, dup := f.seen[key]; dup {
				continue
			}
			f.seen[key] = struct{}{}
			cd := &candidate{
				input:       child,
				replacement: cand,
				parentBlks:  parent.blocks,
				parentStack: parent.stack,
				parentPath:  rec.PathHash,
				parents:     parent.parents + 1,
			}
			f.queue.Push(cd, f.score(cd))
		}
	}
	// Prune with hysteresis: draining the heap is O(max·log n), so do
	// it only when the queue has grown half again past its bound.
	if f.queue.Len() > f.cfg.MaxQueue+f.cfg.MaxQueue/2 {
		f.queue.Prune(f.cfg.MaxQueue)
	}
}

// pick selects the replacement values to try for one comparison:
// the full literal for equality and strcmp comparisons, one random
// member different from the actual value for ranges and sets.
func (f *Fuzzer) pick(c *trace.Comparison) [][]byte {
	switch c.Kind {
	case trace.CmpCharEq, trace.CmpStrEq:
		return [][]byte{c.Expected}
	case trace.CmpCharRange:
		if len(c.Expected) != 2 || c.Expected[0] > c.Expected[1] {
			return nil
		}
		lo, hi := int(c.Expected[0]), int(c.Expected[1])
		b := byte(lo + f.rng.Intn(hi-lo+1))
		if len(c.Actual) == 1 && b == c.Actual[0] && hi > lo {
			b = byte(lo + (int(b)-lo+1)%(hi-lo+1))
		}
		return [][]byte{{b}}
	case trace.CmpCharSet:
		if len(c.Expected) == 0 {
			return nil
		}
		b := c.Expected[f.rng.Intn(len(c.Expected))]
		if len(c.Actual) == 1 && b == c.Actual[0] && len(c.Expected) > 1 {
			// Try once more for a different member.
			b = c.Expected[f.rng.Intn(len(c.Expected))]
		}
		return [][]byte{{b}}
	}
	return nil
}

// substitute replaces the span of comparison c in input with cand.
func substitute(input []byte, c *trace.Comparison, cand []byte) []byte {
	s, e := c.Index, c.Last
	if s < 0 || s > len(input) {
		return append(append([]byte{}, input...), cand...)
	}
	if e >= len(input) {
		e = len(input) - 1
	}
	out := make([]byte, 0, s+len(cand)+len(input)-e-1)
	out = append(out, input[:s]...)
	out = append(out, cand...)
	out = append(out, input[e+1:]...)
	return out
}

// parentFacts extracts from a run the facts the heuristic stores with
// each child: covered blocks trimmed to before the first comparison of
// the last compared character (so error-handling coverage does not
// count, §3.1), the stack average, and the substitution depth.
type facts struct {
	blocks  []uint32
	stack   float64
	parents int
}

func (f *Fuzzer) parentFacts(rec *trace.Record) facts {
	// The paper trims at "the first comparison of the last character"
	// (§3.1). With an interleaved lexer that rule is blind to the
	// blocks that recognize a just-completed keyword, because the
	// lexer's lookahead touches the failing character before the
	// parser acts on the keyword. Trimming at the last comparison
	// keeps those blocks while still excluding error-handling code,
	// which fires after the final failed comparison — the behaviour
	// the trimming exists to produce (see DESIGN.md §4).
	var blks map[uint32]bool
	if n := len(rec.Comparisons); n > 0 {
		blks = rec.BlocksBeforeSeq(rec.Comparisons[n-1].Seq + 1)
	} else {
		blks = rec.CoveredBlocks()
	}
	ids := make([]uint32, 0, len(blks))
	for id := range blks {
		ids = append(ids, id)
	}
	return facts{blocks: ids, stack: rec.AvgStackLastTwo(), parents: f.depthOf(rec)}
}

// depthOf returns the substitution depth of the run's input: the
// number of substitutions on the search path from the initial input
// (the root and queue restarts have depth 0).
func (f *Fuzzer) depthOf(_ *trace.Record) int { return f.curParents }

// score computes the queue priority of a candidate (Algorithm 1,
// heur, with the parent-count sign following the paper's prose: fewer
// parents rank higher).
func (f *Fuzzer) score(c *candidate) float64 {
	if f.cfg.BFS {
		return -float64(len(c.input))
	}
	newBlocks := 0
	for _, id := range c.parentBlks {
		if !f.vBr[id] {
			newBlocks++
		}
	}
	s := float64(newBlocks)
	if f.cfg.CoverageOnly {
		return s
	}
	if !f.cfg.NoLengthTerm {
		s -= float64(len(c.input))
	}
	if !f.cfg.NoReplacementBonus {
		s += 2 * float64(len(c.replacement))
	}
	if !f.cfg.NoStackTerm {
		s -= c.parentStack
	}
	if !f.cfg.NoParentsTerm {
		s -= float64(c.parents)
	}
	if !f.cfg.NoPathNovelty {
		// Rank down inputs from frequently-seen paths (§3.2). The
		// penalty is logarithmic and capped: it breaks ties in favour
		// of novel paths without drowning the replacement bonus that
		// pulls keyword substitutions forward — children of hot paths
		// (every identifier run shares one path) must stay reachable.
		s -= min(math.Log2(1+float64(f.pathSeen[c.parentPath])), 8)
	}
	s -= 2 * float64(c.retries)
	return s
}
