// Package core implements parser-directed fuzzing: Algorithm 1 of
// "Parser-Directed Fuzzing" (Mathis et al., PLDI 2019).
//
// The fuzzer feeds a candidate input to the instrumented subject and
// observes the comparisons made against each input character. On
// rejection it substitutes the compared characters with the values
// they were compared against; when the parser attempts to read past
// the end of the input, it appends a random character. Candidate
// inputs wait in a priority queue ordered by a heuristic over the
// parent's new branch coverage, the input length, the replacement
// length, the parser stack depth, the number of substitutions on the
// search path, and path novelty (§3.1–3.2). Valid inputs that cover
// new code are emitted; by construction every emitted input is
// accepted by the parser.
//
// The package provides two campaign engines behind one Config knob
// (see DESIGN.md §5 and §11 for the architecture):
//
//   - Workers <= 1 runs the serial engine (serial.go), which is
//     bit-for-bit deterministic under a fixed Seed and reproduces the
//     paper's Algorithm 1 exactly.
//   - Workers > 1 runs the speculative pipeline engine: the same
//     serial trajectory on one goroutine, with Workers-1 speculative
//     workers (executor.go) prefetching upcoming executions through a
//     consume-once memo (scheduler.go). Results are bit-identical to
//     the serial engine under the same Seed; only wall-clock changes.
//
// A third knob, Config.MinePhase, layers the paper's §7.4 proposal on
// either engine (hybrid.go, DESIGN.md §7): grammar mining over the
// valid corpus, generation of longer candidates, validation through
// the same engine, and feedback of accepted inputs into the miner.
package core

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"pfuzzer/internal/mine"
	"pfuzzer/internal/pcache"
	"pfuzzer/internal/pqueue"
	"pfuzzer/internal/stepclock"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/trace"
)

// DefaultCharset is the alphabet used for random extensions: printable
// ASCII plus newline and tab, matching the paper's "random character
// from the set of all ASCII characters".
func DefaultCharset() []byte {
	cs := make([]byte, 0, 98)
	for b := byte(0x20); b < 0x7f; b++ {
		cs = append(cs, b)
	}
	return append(cs, '\n', '\t')
}

// Config controls a fuzzing campaign.
type Config struct {
	// Seed seeds the random number generator.
	Seed int64
	// MaxExecs bounds the number of subject executions (0 = 100000).
	MaxExecs int
	// MaxValids stops the campaign after this many valid inputs
	// (0 = unlimited).
	MaxValids int
	// MaxLen discards candidate inputs longer than this (0 = 512).
	MaxLen int
	// MaxQueue bounds the priority queue (0 = 50000).
	MaxQueue int
	// Charset is the random-extension alphabet (nil = DefaultCharset).
	Charset []byte
	// Deadline bounds the campaign's active running time (0 = none):
	// time spent inside Run or Campaign.Step, excluding time parked
	// between Steps — so a campaign multiplexed by the fleet
	// orchestrator is not cut short by queue wait, and a restored
	// campaign resumes its deadline clock where the snapshot left it.
	Deadline time.Duration
	// Events, if non-nil, receives the campaign's typed event stream:
	// every emitted valid input (EventValid), every serial-engine
	// queue pop (EventPop), and every hybrid phase switch
	// (EventPhase). With Workers > 1 events are delivered from the
	// scheduler goroutine only, so the sink needs no synchronization
	// of its own.
	Events func(Event)

	// Cache controls the prefix-decided execution cache
	// (internal/pcache, DESIGN.md §10). An execution whose outcome is
	// already memoised — because the identical input ran before, or a
	// previous run was rejected on a deciding prefix the input shares
	// (trace.Record.DecidedPrefix) — skips subject.ExecuteInto and
	// replays the memoised facts. The cache is semantically
	// transparent: cached executions still count against the budget
	// and fire events, so the emitted corpus is bit-identical with the
	// cache on, off or auto (the conformance kit pins this per
	// subject); the win is wall-clock. Hit/miss counts surface on
	// Result and through EventCache.
	//
	// The default CacheAuto enables the cache adaptively: campaigns
	// whose observed hit rate cannot pay for the lookups retire it at
	// deterministic execution milestones (see maybeRetireCache).
	// CacheOn keeps it for the whole campaign; CacheOff disables it.
	Cache CacheMode

	// Workers sets the engine's total concurrency. 0 or 1 selects the
	// serial engine; N > 1 runs the same trajectory plus N-1
	// speculative workers that prefetch upcoming executions, so the
	// campaign's result — corpus, execution indices, cache counters,
	// fingerprint — is bit-for-bit identical to Workers <= 1 under the
	// same Seed, at lower wall-clock (DESIGN.md §11). The subject's
	// Run method must be safe for concurrent calls (every built-in
	// subject is a stateless value, so it is).
	Workers int
	// BatchSize sets how many top-of-queue candidates each board
	// publish announces to the speculative workers, on top of the
	// always-announced pending extension (0 = auto-tune from the
	// observed execution latency; see batchSize). It shapes wall-clock
	// only — results are bit-identical across every value — and is
	// inert on the serial engine.
	BatchSize int
	// SpecDepth sets how many serial-loop iterations the trajectory's
	// shadow simulator (shadow.go) rolls forward per board publish,
	// announcing the predicted future executions — next pops' random
	// extensions, restarts — to the speculative workers on top of the
	// literal announcements. 0 = default lookahead, negative = off
	// (the plain one-iteration-ahead pipeline), positive = that many
	// iterations. Like BatchSize it shapes wall-clock only — results
	// are bit-identical across every value (a misprediction is an
	// announcement nobody consumes) — and is inert on the serial
	// engine.
	SpecDepth int
	// Shards is retained for snapshot compatibility with the retired
	// sharded-queue engine; the speculative engine runs the exact
	// serial queue and ignores it.
	Shards int
	// Generation is retained for snapshot compatibility with the
	// retired outcome-merging scheduler; the speculative engine
	// re-scores exactly where the serial engine does and ignores it.
	Generation int

	// MinePhase enables the hybrid two-phase campaign (DESIGN.md §7,
	// the paper's §7.4 proposal): after parser-directed exploration —
	// or interleaved with it on the MineCadence — the engine mines a
	// token-bigram grammar from the emitted valid corpus, generates
	// batches of longer candidates, validates them through the same
	// engine (serial loop or executor pool), and feeds accepted
	// inputs back into both the result and the miner. With MinePhase
	// set, accepted inputs strictly longer than any valid so far are
	// emitted even without new block coverage: depth, not coverage
	// novelty, is what the mining phase exists to buy.
	MinePhase bool
	// MineBudget is the number of executions reserved for validating
	// mined candidates (0 = MaxExecs/4). The remainder of MaxExecs
	// drives parser-directed exploration.
	MineBudget int
	// MineMaxTokens bounds the token length of generated candidates
	// (0 = 30).
	MineMaxTokens int
	// MineCadence is the number of exploration executions between
	// mining bursts (0 = a quarter of the exploration budget, i.e.
	// four interleavings). Smaller cadences interleave the phases
	// more finely, growing the grammar — and regenerating from it —
	// as the corpus grows; MineCadence >= the exploration budget
	// degenerates to one mining phase after all exploration.
	MineCadence int
	// MineLexer tokenizes inputs for the miner (nil = a keywordless
	// mine.SimpleLexer). registry.Entry.Lexer supplies a per-subject
	// lexer so every subject can be mined.
	MineLexer mine.Lexer
	// MineSeeds pre-seeds the miner's grammar with an external valid
	// corpus before the campaign's own valids arrive — the §7.4 chain
	// across process restarts: a pFuzzer+Mine run can start from the
	// corpus a previous pFuzzer campaign saved (see internal/corpus).
	// Ignored without MinePhase.
	MineSeeds [][]byte

	// Ablation switches; all false reproduces the paper's heuristic.
	// They exist for the ablation benchmarks listed in DESIGN.md.
	NoLengthTerm       bool // drop the -len(input) term
	NoReplacementBonus bool // drop the +2*len(replacement) term
	NoStackTerm        bool // drop the -avgStackSize term
	NoParentsTerm      bool // drop the parent-count term
	NoPathNovelty      bool // drop the path-novelty re-ranking
	CoverageOnly       bool // coverage term only (degenerates to depth-first)
	BFS                bool // breadth-first: shortest inputs first
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxExecs == 0 {
		out.MaxExecs = 100000
	}
	if out.MaxLen == 0 {
		out.MaxLen = 512
	}
	if out.MaxQueue == 0 {
		out.MaxQueue = 50000
	}
	if len(out.Charset) == 0 {
		out.Charset = DefaultCharset()
	}
	return out
}

// Valid is one emitted input: accepted by the parser and covering new
// code at the time it was found.
type Valid struct {
	Input     []byte
	NewBlocks int // blocks this input covered first
	Exec      int // execution index at which it was found
}

// Result summarizes a campaign.
type Result struct {
	Valids   []Valid
	Execs    int
	Coverage map[uint32]bool // union block coverage of the valid inputs
	Elapsed  time.Duration

	// ExecElapsed is the cumulative wall time spent inside the
	// execution layer: subject runs, fact distillation, and — when
	// enabled — the prefix-decided cache's lookups and inserts. It
	// isolates the layer Config.Cache optimizes from the engine's
	// search bookkeeping (queue, scoring, dedup), which cmd/bench
	// reports as the two throughput levels execs/sec(campaign) and
	// execs/sec(exec layer). With Workers > 1 it sums the per-executor
	// times, so it can exceed Elapsed.
	ExecElapsed time.Duration

	// CacheHits and CacheMisses count executions served from the
	// prefix-decided cache versus actually run (Config.Cache). With
	// the cache enabled every execution is one or the other — an
	// execution after adaptive retirement runs the subject for real,
	// so it counts as a miss — hence CacheHits + CacheMisses == Execs
	// at every point of the campaign; with CacheOff both stay 0. They
	// are diagnostics, not campaign state: Fingerprint ignores them,
	// and a restored campaign resumes the counters while rebuilding
	// the cache contents lazily. CacheRetired records that the
	// CacheAuto rule dropped the cache mid-campaign.
	CacheHits    int
	CacheMisses  int
	CacheRetired bool

	// SpecExecs counts subject executions run by speculative workers
	// (Workers > 1), SpecHits how many of those the trajectory
	// actually consumed; the difference is mispredicted speculation.
	// Pure diagnostics, like the timing fields: they depend on
	// scheduling, so Fingerprint ignores them and they are not
	// carried by snapshots.
	SpecExecs int
	SpecHits  int
}

// CacheHitRate returns the fraction of executions served from the
// cache, or 0 before any execution.
func (r *Result) CacheHitRate() float64 {
	if r.Execs == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.Execs)
}

// ValidInputs returns the raw emitted inputs.
func (r *Result) ValidInputs() [][]byte {
	out := make([][]byte, len(r.Valids))
	for i := range r.Valids {
		out[i] = r.Valids[i].Input
	}
	return out
}

// candidate is a queued input together with the parent-run facts the
// heuristic needs, stored so scores can be recomputed without
// re-running the subject (§3.2).
type candidate struct {
	input       []byte
	replacement []byte       // the substituted value ("c" in Algorithm 1)
	parent      *parentFacts // parent-run facts, shared by all siblings (nil: restart or mined input)
	parents     int          // substitutions on the search path so far
	retries     int          // times this input was already extended
	mineGen     int          // mined lineage: 0 = ordinary, 1 = generated from the grammar, k = repair descendant k-1 substitutions later
}

// parentFacts is the parent-run data every child derived from one
// execution shares, plus two shortcuts for the score terms that
// depend only on the parent: a generation-stamped memo of the
// new-coverage count (constant between emitted valids, stamped with
// vbrGen) and a direct pointer into the path-frequency table, so the
// path-novelty penalty is a pointer dereference instead of a map
// probe. Sharing one struct across siblings turns the engine's
// hottest loop — re-scoring the whole queue, where every candidate
// used to re-probe the coverage set and the path table — into one
// probe pass per parent; the computed values are bit-for-bit the ones
// the per-candidate recomputation produced, so pop order and the
// golden sequences are unchanged.
//
// The memo fields are atomics because the queue re-scoring pass may
// partition across goroutines (pqueue.ReorderWith): siblings sharing
// one parentFacts can land in different partitions, whose racing
// recomputations write byte-identical values — vbrGen, vBr and the
// path table are all frozen during the pass — so the atomics exist to
// make those benign races clean under the race detector, not to
// coordinate anything. covNew is written before covGen, so any
// goroutine observing the fresh generation stamp reads the fresh
// count.
type parentFacts struct {
	blks  []uint32 // parent's trimmed covered blocks
	stack float64  // parent's avg stack depth at last two comparisons
	path  uint64   // parent's path hash

	covGen atomic.Uint64       // vbrGen the coverage memo was computed at
	covNew atomic.Int64        // memo: blocks in blks not yet covered by valids
	cnt    atomic.Pointer[int] // path's live execution counter (lazy; see pathCnt)
}

// Fuzzer is one parser-directed fuzzing campaign over a subject.
type Fuzzer struct {
	cfg          Config
	prog         subject.Program
	rng          *rand.Rand
	cs           *countedSource             // rng's draw-counting source (snapshot/restore)
	sink         trace.Sink                 // serial engine's reusable trace buffers
	cache        *pcache.Cache[cachedFacts] // prefix-decided execution cache (nil = off)
	cacheCheckAt int                        // next adaptive-retirement milestone (maybeRetireCache)
	hint         extHint                    // candidate→extension lookup carry-over (cachedExec)
	rfScratch    runFacts                   // trajectory's reusable distillation struct (cachedExec)

	vBr    blockSet // blocks covered by valid inputs
	vbrGen uint64   // bumped on every emitted valid (parentFacts.covGen)

	queue     pqueue.Queue[*candidate]
	spec      *specPool           // speculation pool, live only inside a Workers>1 phase
	execEWMA  float64             // EWMA of real execution latency in ns (batchSize auto-tune)
	seen      map[string]struct{} // inputs ever enqueued or run
	pathSeen  map[uint64]*int     // executions per path hash (pointer-valued so parentFacts can alias the counters)
	validSeen map[string]struct{}

	res        Result
	clock      stepclock.Clock // active stepping time (Result.Elapsed, Deadline)
	curParents int             // substitution depth of the input being processed
	curMineGen int             // mined lineage of the input being processed (serial engine)

	// Campaign lifecycle. A Fuzzer runs exactly one campaign: Run
	// panics on reuse (ran). Internally a campaign is one or more
	// *phases* — the hybrid engine alternates exploration and mining
	// bursts — so the engines are resumable: began marks one-time
	// initialization, execCap is the current phase's execution bound,
	// and the serial loop's cursor survives between phases.
	ran          bool
	began        bool
	execCap      int
	phases       int          // parallel phases run so far (executor RNG streams)
	longestValid int          // length of the longest emitted valid input
	miningActive bool         // current phase is a mining burst (hybrid only)
	hyb          *hybridState // hybrid phase driver (nil until first hybrid step)

	// Serial engine's resumable loop cursor.
	sStarted  bool
	sInput    []byte     // input to process next
	sExt      []byte     // its random extension, drawn at pop time
	sCur      *candidate // candidate sInput was popped as (nil = restart)
	sCurScore float64    // score sCur was popped at (shadow re-enqueue base)

	// Shadow-trajectory speculation state (shadow.go); trajectory-only,
	// lazily built, never campaign-visible.
	shadow *shadowDraws
}

// New prepares a fuzzer for prog. A Fuzzer is single-campaign: Run
// may be called exactly once; construct a new Fuzzer (they are cheap)
// for every campaign rather than reusing one — a second Run would
// silently continue on the first campaign's dedup sets, coverage and
// execution counts, so it panics instead.
func New(prog subject.Program, cfg Config) *Fuzzer {
	c := cfg.withDefaults()
	cs := &countedSource{src: rand.NewSource(c.Seed)}
	return &Fuzzer{
		cfg:       c,
		prog:      prog,
		rng:       rand.New(cs),
		cs:        cs,
		cache:     newCache(&c),
		vbrGen:    1, // start past the memo zero value
		seen:      make(map[string]struct{}),
		pathSeen:  make(map[uint64]*int),
		validSeen: make(map[string]struct{}),
	}
}

// Run executes the campaign and returns its result. With
// Config.Workers > 1 the concurrent engine runs; otherwise the serial
// engine does. With Config.MinePhase the hybrid phase driver
// (hybrid.go) alternates parser-directed exploration with
// grammar-mining bursts on either engine.
//
// Run is implemented as one maximal Step of the campaign's engine;
// the step-driven surface behind it is the Campaign type
// (campaign.go), which the fleet orchestrator and the persistence
// layer consume. Stepping in smaller slices is execution-equivalent
// for the serial engine, so Run stays bit-identical to the
// pre-refactor engines (golden_test.go).
//
// Run panics if called a second time: a Fuzzer holds one campaign's
// state (dedup sets, coverage, execution counts), and continuing on
// it would double-count executions. Create a new Fuzzer with New.
func (f *Fuzzer) Run() *Result {
	if f.ran {
		panic("core: Fuzzer.Run called twice; a Fuzzer is single-campaign — create a new one with New")
	}
	f.ran = true
	for {
		spent, more := f.step(f.cfg.MaxExecs)
		if !more || spent == 0 {
			break
		}
	}
	return f.finish()
}

// step advances the campaign by up to n executions on the configured
// engine and reports how many were actually spent and whether the
// campaign can still make progress. It is the one engine entry point:
// Run, Campaign.Step and the hybrid phase driver all go through it,
// so the serial, parallel and hybrid engines expose identical
// resumable behaviour.
func (f *Fuzzer) step(n int) (spent int, more bool) {
	if n <= 0 || f.campaignOver() {
		return 0, !f.campaignOver()
	}
	f.clock.StepBegin()
	f.begin()
	before := f.res.Execs
	if f.cfg.MinePhase {
		f.stepHybrid(n)
	} else {
		cap := f.res.Execs + n
		if cap > f.cfg.MaxExecs {
			cap = f.cfg.MaxExecs
		}
		if f.res.Execs < cap {
			f.execCap = cap
			f.runEngine()
		}
	}
	f.res.Elapsed = f.clock.StepEnd()
	if f.cache != nil {
		// One cumulative cache report per step: monotone by
		// construction, and the final report's hits+misses equals the
		// campaign's execution count (cache_test.go pins both).
		f.emit(Event{Kind: EventCache, Execs: f.res.Execs,
			Hits: f.res.CacheHits, Misses: f.res.CacheMisses})
	}
	return f.res.Execs - before, !f.campaignOver()
}

// campaignOver reports whether the campaign has nothing left to do:
// the global budget is spent (stopCampaign), or the hybrid driver has
// run through its final phase.
func (f *Fuzzer) campaignOver() bool {
	if f.stopCampaign() {
		return true
	}
	if f.cfg.MinePhase && f.hyb != nil && f.hyb.stage == hsDone && !f.hyb.phaseActive {
		return true
	}
	return false
}

// runEngine runs one phase on the configured engine up to execCap.
func (f *Fuzzer) runEngine() {
	if f.cfg.Workers > 1 {
		f.runParallel()
	} else {
		f.runSerial()
	}
}

// begin performs the once-per-campaign initialization shared by both
// engines; subsequent phases resume on the same state.
func (f *Fuzzer) begin() {
	if f.began {
		return
	}
	f.began = true
	f.res.Coverage = make(map[uint32]bool)
}

// finish stamps the elapsed time and returns the result. Elapsed is
// active stepping time, not wall clock: a campaign multiplexed by the
// fleet orchestrator spends most of its wall time parked between
// Steps, and counting that would misattribute fleet wait to the
// engine.
func (f *Fuzzer) finish() *Result {
	f.res.Elapsed = f.clock.Active()
	return &f.res
}

// done reports whether the current phase is over. execCap bounds this
// phase's executions; MaxValids and Deadline are campaign-global.
func (f *Fuzzer) done() bool {
	if f.res.Execs >= f.execCap {
		return true
	}
	if f.cfg.MaxValids > 0 && len(f.res.Valids) >= f.cfg.MaxValids {
		return true
	}
	if f.deadlineHit() {
		return true
	}
	return false
}

// stopCampaign reports whether the whole campaign (not just the
// current phase) is out of budget — the hybrid driver's loop guard.
func (f *Fuzzer) stopCampaign() bool {
	if f.res.Execs >= f.cfg.MaxExecs {
		return true
	}
	if f.cfg.MaxValids > 0 && len(f.res.Valids) >= f.cfg.MaxValids {
		return true
	}
	if f.deadlineHit() {
		return true
	}
	return false
}

// deadlineHit reports whether the Deadline's budget of active
// campaign time is spent — completed Steps (which a restored snapshot
// carries over) plus the running Step's share. Time parked between
// Steps — fleet queue wait — does not count, and before the first
// step nothing has accrued, so the deadline never reads as expired on
// a fresh campaign (step consults stopCampaign before begin runs).
func (f *Fuzzer) deadlineHit() bool {
	return f.clock.Exceeded(f.cfg.Deadline)
}

func (f *Fuzzer) randChar() byte {
	return f.cfg.Charset[f.rng.Intn(len(f.cfg.Charset))]
}

// byteLits holds one stable single-byte literal per byte value, so
// replacement picks for range and set comparisons need no allocation;
// the slices are read-only by convention (candidates alias them for
// the life of the campaign).
var byteLits = func() [256][1]byte {
	var t [256][1]byte
	for i := range t {
		t[i][0] = byte(i)
	}
	return t
}()

// pick selects the replacement value to try for one comparison — the
// full literal for equality and strcmp comparisons, one random member
// different from the actual value for ranges and sets — or ok == false
// when the comparison yields no substitution. Every comparison kind
// produces at most one candidate, so the return is a single slice, not
// a list: the old [][]byte wrapper allocated a header array per
// comparison per deriving run.
func (f *Fuzzer) pick(c *trace.Comparison) (_ []byte, ok bool) {
	switch c.Kind {
	case trace.CmpCharEq, trace.CmpStrEq:
		return c.Expected, true
	case trace.CmpCharRange:
		if len(c.Expected) != 2 || c.Expected[0] > c.Expected[1] {
			return nil, false
		}
		lo, hi := int(c.Expected[0]), int(c.Expected[1])
		b := byte(lo + f.rng.Intn(hi-lo+1))
		if len(c.Actual) == 1 && b == c.Actual[0] && hi > lo {
			b = byte(lo + (int(b)-lo+1)%(hi-lo+1))
		}
		return byteLits[b][:], true
	case trace.CmpCharSet:
		if len(c.Expected) == 0 {
			return nil, false
		}
		b := c.Expected[f.rng.Intn(len(c.Expected))]
		if len(c.Actual) == 1 && b == c.Actual[0] && len(c.Expected) > 1 {
			// Try once more for a different member.
			b = c.Expected[f.rng.Intn(len(c.Expected))]
		}
		return byteLits[b][:], true
	}
	return nil, false
}

// substitute replaces the span of comparison c in input with cand.
func substitute(input []byte, c *trace.Comparison, cand []byte) []byte {
	s, e := c.Index, c.Last
	if s < 0 || s > len(input) {
		return append(append([]byte{}, input...), cand...)
	}
	if e >= len(input) {
		e = len(input) - 1
	}
	out := make([]byte, 0, s+len(cand)+len(input)-e-1)
	out = append(out, input[:s]...)
	out = append(out, cand...)
	out = append(out, input[e+1:]...)
	return out
}

// Mined-candidate scoring: a fresh mined candidate beats any
// substitution child (whose scores are small: coverage counts minus
// length-scale penalties). The base halves per lineage generation —
// repair descendants of a mined near-miss stay prioritized over the
// exploration frontier, or the repair loop could never touch the
// long inputs mining produces (their length penalty buries them) —
// and the steep retry decay drops any one candidate back into the
// pack after a few fruitless extensions.
const (
	mineScoreBase  = 4096.0
	mineRetryDecay = 1024.0
)

// mineScore is the queue priority of a candidate with mined lineage.
func mineScore(c *candidate) float64 {
	base := mineScoreBase
	for g := 1; g < c.mineGen && base >= 1; g++ {
		base /= 2
	}
	return base - mineRetryDecay*float64(c.retries) - float64(len(c.input))
}

// pathCnt returns the live execution counter for path hash h,
// creating a zero one on first use. Handing the pointer to
// parentFacts lets score read the current count without a map probe;
// bumps through bumpPath and reads through the pointer always see the
// same counter.
func (f *Fuzzer) pathCnt(h uint64) *int {
	p := f.pathSeen[h]
	if p == nil {
		p = new(int)
		f.pathSeen[h] = p
	}
	return p
}

// bumpPath counts one execution of path hash h.
func (f *Fuzzer) bumpPath(h uint64) { *f.pathCnt(h)++ }

// pathPenaltyTab precomputes min(log2(1+n), 8) for small path counts.
// score calls it once per candidate per re-scoring pass — the single
// hottest arithmetic in the serial engine's Reorder — and the penalty
// saturates at 8 from n = 255 on (log2(256) == 8), so a 255-entry
// table replays math.Log2 bit for bit.
var pathPenaltyTab = func() [255]float64 {
	var t [255]float64
	for n := range t {
		t[n] = min(math.Log2(1+float64(n)), 8)
	}
	return t
}()

// pathPenalty returns min(log2(1+n), 8) via the precomputed table.
func pathPenalty(n int) float64 {
	if n >= 0 && n < len(pathPenaltyTab) {
		return pathPenaltyTab[n]
	}
	return 8
}

// score computes the queue priority of a candidate (Algorithm 1,
// heur, with the parent-count sign following the paper's prose: fewer
// parents rank higher).
func (f *Fuzzer) score(c *candidate) float64 {
	if c.mineGen > 0 && f.miningActive {
		// Phase fence: the mined boost applies only inside a mining
		// burst. During exploration bursts, mined-lineage candidates
		// fall through to the ordinary heuristic below (generated
		// candidates carry no parent facts, so their length penalty
		// buries them) instead of starving the exploration frontier.
		return mineScore(c)
	}
	if f.cfg.BFS {
		return -float64(len(c.input))
	}
	p := c.parent
	newBlocks := 0
	if p != nil {
		if p.covGen.Load() != f.vbrGen {
			n := 0
			for _, id := range p.blks {
				if !f.vBr.has(id) {
					n++
				}
			}
			p.covNew.Store(int64(n))
			p.covGen.Store(f.vbrGen)
		}
		newBlocks = int(p.covNew.Load())
	}
	s := float64(newBlocks)
	if f.cfg.CoverageOnly {
		return s
	}
	if !f.cfg.NoLengthTerm {
		s -= float64(len(c.input))
	}
	if !f.cfg.NoReplacementBonus {
		s += 2 * float64(len(c.replacement))
	}
	if !f.cfg.NoStackTerm && p != nil {
		s -= p.stack
	}
	if !f.cfg.NoParentsTerm {
		s -= float64(c.parents)
	}
	if !f.cfg.NoPathNovelty {
		// Rank down inputs from frequently-seen paths (§3.2). The
		// penalty is logarithmic and capped: it breaks ties in favour
		// of novel paths without drowning the replacement bonus that
		// pulls keyword substitutions forward — children of hot paths
		// (every identifier run shares one path) must stay reachable.
		if p != nil {
			cp := p.cnt.Load()
			if cp == nil {
				// Never a map insert here: a parent's path was always
				// executed (bumpPath), so pathCnt finds the counter —
				// which keeps this read-only under a partitioned
				// re-scoring pass.
				cp = f.pathCnt(p.path)
				p.cnt.Store(cp)
			}
			s -= pathPenalty(*cp)
		} else if pz := f.pathSeen[0]; pz != nil {
			// Restart and mined candidates carry no parent path; the
			// pre-shortcut heuristic looked up hash 0, which no real
			// path produces, so the penalty is the zero-count one.
			s -= pathPenalty(*pz)
		}
	}
	s -= 2 * float64(c.retries)
	return s
}
