package core

import "sort"

// fnv-1a constants for the 64-bit result fingerprint (the trace
// package keeps its own pair for path hashes; the two live in
// different domains, so sharing them would couple unrelated formats).
const (
	fpOffset uint64 = 14695981039346656037
	fpPrime  uint64 = 1099511628211
)

func fpBytes(h uint64, b []byte) uint64 {
	h = fpInt(h, uint64(len(b))) // length prefix keeps the encoding injective
	for _, c := range b {
		h ^= uint64(c)
		h *= fpPrime
	}
	return h
}

func fpInt(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fpPrime
		v >>= 8
	}
	return h
}

// Fingerprint condenses the campaign's observable outcome — execution
// count and the full emission record (inputs, discovery indices,
// new-block counts) plus the sorted union coverage — into one 64-bit
// value. Two campaigns with equal fingerprints produced the same
// corpus in the same order, which is the identity the conformance kit
// (internal/conformance) and the engine-equivalence tests compare;
// hashing sidesteps retaining both corpora when only the comparison
// matters.
func (r *Result) Fingerprint() uint64 {
	h := fpOffset
	h = fpInt(h, uint64(r.Execs))
	h = fpInt(h, uint64(len(r.Valids)))
	for i := range r.Valids {
		v := &r.Valids[i]
		h = fpBytes(h, v.Input)
		h = fpInt(h, uint64(v.Exec))
		h = fpInt(h, uint64(v.NewBlocks))
	}
	ids := make([]uint32, 0, len(r.Coverage))
	for id := range r.Coverage {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h = fpInt(h, uint64(id))
	}
	return h
}

// Fingerprint is the campaign-level alias of Result.Fingerprint, the
// conformance hook on the step-driven API: call it between Steps (or
// after the campaign finishes) to compare two campaigns for
// corpus-identity without copying their results.
func (c *Campaign) Fingerprint() uint64 {
	return c.f.res.Fingerprint()
}
