package core

import (
	"sync"
	"sync/atomic"
	"time"

	"pfuzzer/internal/pqueue"
)

// runParallel executes the campaign with cfg.Workers executor
// goroutines feeding a central scheduler (this goroutine). The
// executors own execution and trace collection; the scheduler owns
// every piece of campaign state — the sharded priority queue, the
// valid-coverage set, the dedup and path-frequency maps, and the
// result — so no state needs locking beyond the queue's own shard
// locks.
//
// Where the serial engine re-scores the whole queue after every valid
// input (the paper's per-execution re-evaluation), the scheduler
// batches: coverage from valids merges into vBr as outcomes arrive,
// but the queue-wide re-scoring pass against the grown coverage runs
// once per generation of cfg.Generation outcomes. Freshly pushed
// children always score against current coverage; only already-queued
// candidates go briefly stale, which the relaxed sharded-queue order
// tolerates by construction.
//
// Execution order, and therefore the emitted sequence, is
// nondeterministic with Workers > 1. The phase's execution bound is
// enforced exactly via a shared token budget; MaxValids and Deadline
// may overshoot by the in-flight outcomes, the same way the serial
// engine can overshoot within one loop iteration.
//
// Like the serial engine, runParallel is a resumable phase: the
// sharded queue and all campaign state live on the Fuzzer, so the
// hybrid driver can run exploration and mined-candidate validation as
// successive phases over the same pool architecture. Each phase spins
// up a fresh set of executor goroutines and drains them before
// returning.
func (f *Fuzzer) runParallel() {
	f.begin()

	nw := f.cfg.Workers
	shards := f.cfg.Shards
	if shards <= 0 {
		shards = nw
	}
	gen := f.cfg.Generation
	if gen <= 0 {
		gen = 4 * nw
	}
	q := f.ensureSharded(shards)

	var budget atomic.Int64
	budget.Store(int64(f.execCap - f.res.Execs))
	stop := make(chan struct{})
	results := make(chan outcome, 4*nw)
	var wg sync.WaitGroup
	// Executors are rebuilt per phase; fold the phase counter into
	// their ids so each phase's private RNG streams differ from the
	// last — replaying them would re-synthesize the same restart
	// inputs and extensions every phase of a hybrid campaign.
	f.phases++
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go newExecutor(i+(f.phases-1)*nw, f.prog, &f.cfg, f.cache).loop(q, results, &budget, stop, &wg, i)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	stopped := false
	halt := func() {
		if !stopped {
			stopped = true
			close(stop)
		}
	}
	pending, dirty := 0, false
	for o := range results {
		f.applyOutcome(&o, q, &dirty)
		if pending++; pending >= gen {
			pending = 0
			if dirty {
				q.Reorder(f.score)
				dirty = false
			}
			f.pruneIfOvergrown(q)
		}
		if f.done() {
			halt()
		}
	}
	halt()
}

// ensureSharded returns the campaign's sharded queue, creating and
// seeding it with the paper's empty initial input on first use.
func (f *Fuzzer) ensureSharded(shards int) *pqueue.Sharded[*candidate] {
	if f.pq == nil {
		f.pq = pqueue.NewSharded[*candidate](shards)
		f.seen[""] = struct{}{}
		f.pq.Push(&candidate{input: []byte{}}, 0)
	}
	return f.pq
}

// applyOutcome folds one executor outcome into the campaign state,
// mirroring the serial engine's per-iteration bookkeeping: count the
// executions, bump path frequencies, emit valids, derive children
// from the run that the serial engine would have derived them from,
// and re-enqueue the candidate with a retry decay.
func (f *Fuzzer) applyOutcome(o *outcome, q *pqueue.Sharded[*candidate], dirty *bool) {
	push := func(cd *candidate) { q.Push(cd, f.score(cd)) }
	f.res.Execs += o.execs
	f.res.CacheHits += o.hits
	f.res.CacheMisses += o.misses
	f.res.ExecElapsed += time.Duration(o.execNS)
	if f.cache != nil {
		f.maybeRetireCache()
	}
	f.bumpPath(o.primary.pathHash)
	if o.ext != nil {
		f.bumpPath(o.ext.pathHash)
	}

	// Mirror the serial engine's case split exactly. Valid with new
	// coverage: emit, derive children from the input's own trace, and
	// retire the candidate (ignoring the speculative extension the
	// executor ran — see executor.loop). Anything else — rejected, or
	// accepted without new coverage — takes the extension path:
	// children come from the extension's trace (emitting it first if
	// it happens to be valid with new coverage itself), and the
	// candidate re-enqueues with a retry decay so a fresh random
	// extension gets drawn on a later pop.
	childDepth := o.depth + 1
	parentGen := 0
	if o.cand != nil {
		parentGen = o.cand.mineGen
	}
	if o.primary.accepted && f.hasNewIDs(o.primary.blocks) {
		f.emitValid(o.primary)
		f.addChildren(o.primary, childDepth, parentGen, push)
		*dirty = true
		return
	}
	f.recordLength(o.primary, parentGen)
	if o.ext != nil {
		if o.ext.accepted && f.hasNewIDs(o.ext.blocks) {
			f.emitValid(o.ext)
			f.addChildren(o.ext, childDepth, parentGen, push)
			*dirty = true
		} else {
			f.recordLength(o.ext, parentGen)
			f.addChildren(o.ext, childDepth, parentGen, push)
		}
	}
	if o.cand != nil {
		o.cand.retries++
		push(o.cand)
	}
}
