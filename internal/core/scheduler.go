package core

// runParallel executes one phase of the campaign with the speculative
// pipeline engine (DESIGN.md §11): this goroutine runs the serial
// trajectory — the exact Algorithm-1 loop, RNG stream, queue
// discipline and bookkeeping of runSerial — while Workers-1 worker
// goroutines (executor.go) prefetch the executions the trajectory is
// about to need. The trajectory announces likely-next inputs on the
// speculation board in batches (publishSpec), consumes finished
// speculative runs from the memo inside the one execute-with-memo
// path (cachedExec), and re-scores the queue through the pool's
// parallel-for.
//
// Because every campaign state transition happens on this goroutine
// in serial order, the result — the emitted corpus, the execution
// indices, the cache counters, the final RNG position — is bit-for-bit
// identical to Workers <= 1 under the same Seed, for any Workers and
// any BatchSize (golden_test.go and parallel_test.go pin this).
// Parallelism buys wall-clock only: primary inputs and their random
// extensions execute concurrently instead of back to back. The
// speedup ceiling is set by how much of the trajectory is
// predictable — extensions are announced one iteration ahead and
// queue tops are a top-biased guess at upcoming pops — not by the
// worker count; see DESIGN.md §11 for the measured curve.
//
// Like the serial engine, runParallel is a resumable phase over state
// that lives entirely on the Fuzzer; the pool is rebuilt per phase
// and drained before returning, so between Steps no goroutines are
// live and a Snapshot is exact — the parallel engine snapshots and
// restores identically to the serial one.
func (f *Fuzzer) runParallel() {
	pool := newSpecPool(f.prog, f.cache, f.cfg.Workers-1)
	f.spec = pool
	f.runSerial()
	f.spec = nil
	pool.close()
	f.res.SpecExecs += int(pool.specExecs.Load())
	f.res.SpecHits += int(pool.specHits.Load())
}

// publishSpec announces the trajectory's likely-next executions on
// the speculation board: the pending random extension (certain to run
// if the current input is rejected — the very next execution) plus up
// to batchSize top-of-queue candidates (a top-biased sample of
// upcoming pops; see pqueue.PeekN), plus — with SpecDepth enabled —
// the shadow simulator's predicted future (shadow.go): the random
// extensions the next SpecDepth pops will draw, which the literal
// announcements cannot see. One publish per loop iteration is the
// batched hand-off: workers claim tasks from the board by atomic
// cursor, so the per-candidate channel send-and-wait of the old
// executor pool disappears entirely. A no-op on the serial engine.
func (f *Fuzzer) publishSpec() {
	p := f.spec
	if p == nil {
		return
	}
	b := f.batchSize()
	depth := f.specDepth()
	tasks := make([][]byte, 0, b+1+2*depth)
	tasks = append(tasks, f.sExt)
	var snap []shadowCand
	if depth > 0 {
		snap = make([]shadowCand, 0, b+1)
	}
	f.queue.PeekNScored(b, func(cd *candidate, score float64) {
		tasks = append(tasks, cd.input)
		if depth > 0 {
			snap = append(snap, shadowCand{
				input: cd.input,
				score: score,
				ord:   len(snap),
				mined: cd.mineGen > 0 && f.miningActive,
			})
		}
	})
	if depth > 0 {
		tasks = f.shadowPredict(tasks, snap, depth)
	}
	p.publish(tasks)
}

// batchSize resolves Config.BatchSize: an explicit value is used as
// is; 0 auto-tunes from the observed execution latency so one board
// covers roughly specTargetPublishNS of worker time — fast subjects
// get wide boards (publishing is overhead), slow subjects narrow
// ones (stale announcements waste worker executions) — clamped to
// [2*(Workers-1), 64]. BatchSize shapes wall-clock only; results are
// bit-identical across every value (TestBatchSizeInvariant).
const specTargetPublishNS = 32768.0

func (f *Fuzzer) batchSize() int {
	if f.cfg.BatchSize > 0 {
		return f.cfg.BatchSize
	}
	lo := 2 * (f.cfg.Workers - 1)
	if lo < 2 {
		lo = 2
	}
	b := 8
	if f.execEWMA > 0 {
		b = int(specTargetPublishNS / f.execEWMA)
	}
	if b < lo {
		b = lo
	}
	if b > 64 {
		b = 64
	}
	return b
}

// reorderQueue re-scores the whole queue against current campaign
// state — the paper's per-valid re-evaluation pass. With a live
// speculation pool the score computation partitions across the
// engine's concurrency; the heapify stays sequential either way, so
// the queue layout (and every later pop) is bit-identical between
// engines (pqueue.ReorderWith).
func (f *Fuzzer) reorderQueue() {
	if f.spec != nil {
		f.queue.ReorderWith(f.score, f.spec.pfor)
	} else {
		f.queue.Reorder(f.score)
	}
}
