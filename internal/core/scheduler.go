package core

import (
	"sync"
	"sync/atomic"
	"time"

	"pfuzzer/internal/pqueue"
)

// runParallel executes the campaign with cfg.Workers executor
// goroutines feeding a central scheduler (this goroutine). The
// executors own execution and trace collection; the scheduler owns
// every piece of campaign state — the sharded priority queue, the
// valid-coverage set, the dedup and path-frequency maps, and the
// result — so no state needs locking beyond the queue's own shard
// locks.
//
// Where the serial engine re-scores the whole queue after every valid
// input (the paper's per-execution re-evaluation), the scheduler
// batches: coverage from valids merges into vBr as outcomes arrive,
// but the queue-wide re-scoring pass against the grown coverage runs
// once per generation of cfg.Generation outcomes. Freshly pushed
// children always score against current coverage; only already-queued
// candidates go briefly stale, which the relaxed sharded-queue order
// tolerates by construction.
//
// Execution order, and therefore the emitted sequence, is
// nondeterministic with Workers > 1. MaxExecs is enforced exactly via
// a shared token budget; MaxValids and Deadline may overshoot by the
// in-flight outcomes, the same way the serial engine can overshoot
// within one loop iteration.
func (f *Fuzzer) runParallel() *Result {
	f.start = time.Now()
	f.res.Coverage = make(map[uint32]bool)

	nw := f.cfg.Workers
	shards := f.cfg.Shards
	if shards <= 0 {
		shards = nw
	}
	gen := f.cfg.Generation
	if gen <= 0 {
		gen = 4 * nw
	}
	q := pqueue.NewSharded[*candidate](shards)

	// Seed the search with the paper's empty initial input.
	f.seen[""] = struct{}{}
	q.Push(&candidate{input: []byte{}}, 0)

	var budget atomic.Int64
	budget.Store(int64(f.cfg.MaxExecs))
	stop := make(chan struct{})
	results := make(chan outcome, 4*nw)
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go newExecutor(i, f.prog, &f.cfg).loop(q, results, &budget, stop, &wg)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	stopped := false
	halt := func() {
		if !stopped {
			stopped = true
			close(stop)
		}
	}
	pending, dirty := 0, false
	for o := range results {
		f.applyOutcome(&o, q, &dirty)
		if pending++; pending >= gen {
			pending = 0
			if dirty {
				q.Reorder(f.score)
				dirty = false
			}
			f.pruneIfOvergrown(q)
		}
		if f.done() {
			halt()
		}
	}
	halt()

	f.res.Elapsed = time.Since(f.start)
	return &f.res
}

// applyOutcome folds one executor outcome into the campaign state,
// mirroring the serial engine's per-iteration bookkeeping: count the
// executions, bump path frequencies, emit valids, derive children
// from the run that the serial engine would have derived them from,
// and re-enqueue the candidate with a retry decay.
func (f *Fuzzer) applyOutcome(o *outcome, q *pqueue.Sharded[*candidate], dirty *bool) {
	push := func(cd *candidate) { q.Push(cd, f.score(cd)) }
	f.res.Execs += o.execs
	f.pathSeen[o.primary.pathHash]++
	if o.ext != nil {
		f.pathSeen[o.ext.pathHash]++
	}

	// Mirror the serial engine's case split exactly. Valid with new
	// coverage: emit, derive children from the input's own trace, and
	// retire the candidate (ignoring the speculative extension the
	// executor ran — see executor.loop). Anything else — rejected, or
	// accepted without new coverage — takes the extension path:
	// children come from the extension's trace (emitting it first if
	// it happens to be valid with new coverage itself), and the
	// candidate re-enqueues with a retry decay so a fresh random
	// extension gets drawn on a later pop.
	childDepth := o.depth + 1
	if o.primary.accepted && f.hasNewIDs(o.primary.blocks) {
		f.emitValid(o.primary)
		f.addChildren(o.primary, childDepth, push)
		*dirty = true
		return
	}
	if o.ext != nil {
		if o.ext.accepted && f.hasNewIDs(o.ext.blocks) {
			f.emitValid(o.ext)
			f.addChildren(o.ext, childDepth, push)
			*dirty = true
		} else {
			f.addChildren(o.ext, childDepth, push)
		}
	}
	if o.cand != nil {
		o.cand.retries++
		push(o.cand)
	}
}
