package core

// EventKind discriminates the campaign events the engines emit
// through Config.Events — the typed stream that replaced the original
// OnValid/DebugPop callback pair.
type EventKind int

const (
	// EventValid reports a new valid input entering the corpus.
	// Input, Execs and NewBlocks are set.
	EventValid EventKind = iota
	// EventPop reports a serial-engine queue pop: Input, Score, Execs
	// and QueueLen are set. The parallel engine pops inside its
	// executors and does not report pops.
	EventPop
	// EventPhase reports a hybrid phase-regime switch: Mining is the
	// new regime, Execs the boundary's execution index.
	EventPhase
	// EventCache reports the prefix-decided execution cache's
	// cumulative counters: Hits, Misses and Execs are set. One report
	// is emitted at the end of every Step of a cache-enabled campaign,
	// so the stream is monotone and the final report's Hits+Misses
	// equals the campaign's execution count. Campaigns with CacheOff
	// emit none.
	EventCache
)

// Event is one typed campaign event. Which fields are meaningful
// depends on Kind; the rest are zero. The Input slice aliases
// campaign-owned memory and is valid for the duration of the callback
// only — copy it to retain it.
type Event struct {
	Kind      EventKind
	Input     []byte
	Execs     int
	NewBlocks int     // EventValid: blocks this input covered first
	Score     float64 // EventPop: the popped candidate's score
	QueueLen  int     // EventPop: queue length after the pop
	Mining    bool    // EventPhase: entering (true) or leaving (false) a mining burst
	Hits      int     // EventCache: cumulative cache hits
	Misses    int     // EventCache: cumulative cache misses
}

// emit delivers ev to the configured event sink, if any. With
// Workers > 1 every emission happens on the scheduler goroutine, so a
// sink needs no synchronization of its own.
func (f *Fuzzer) emit(ev Event) {
	if f.cfg.Events != nil {
		f.cfg.Events(ev)
	}
}
