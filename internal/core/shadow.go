package core

import "math/rand"

// This file is the shadow-trajectory speculation source (DESIGN.md
// §13): a simulator that rolls the Algorithm-1 control flow forward
// SpecDepth loop iterations *without executing subjects*, so each
// board publish announces not just the literal next executions (the
// pending extension and the queue tops, as in the original pipeline)
// but the trajectory's predicted future — the random extensions of
// the next several pops, which no one-iteration-ahead scheme can see.
//
// The simulator runs on the trajectory goroutine against a cheap
// deterministic shadow state:
//
//   - a draw-counting clone of the campaign RNG stream (shadowDraws):
//     the campaign's source is already wrapped by countedSource, so
//     the shadow replays the identical seed into a lookahead buffer
//     and reads the stream at absolute positions the campaign has not
//     consumed yet;
//   - a top-K snapshot of the priority queue (pqueue.PeekNScored) —
//     values and current heap scores, which during a hybrid mining
//     burst includes the mined candidates, since they enter the same
//     queue;
//   - the serial loop's cursor: the input being processed, its popped
//     score, and its pending extension.
//
// Everything the simulator touches is read-only campaign state or
// shadow-private; it writes nothing back. Predictions are announced
// on the same speculation board and flow through the same consume-once
// memo and claim-by-cursor protocol as the literal announcements, so a
// misprediction is merely an entry nobody consumes (swept by
// generation age) — corpus, execution indices, cache counters, retire
// milestones, snapshots and fingerprints stay bit-identical to the
// serial engine for any Workers/BatchSize/SpecDepth (spec_test.go,
// conformance parallel-agreement).
//
// What bounds prediction accuracy — honestly: the simulator assumes
// each simulated iteration is the common case (candidate rejected, no
// new valid, children enqueued without outranking the snapshot) and
// that the trajectory consumes exactly one RNG draw per iteration
// (the extension character). Substitution picks for range and set
// comparisons (fuzzer.pick) also draw, and how often is a property of
// the executed input nobody can know without executing — every such
// draw shifts the stream under later predicted extensions. So
// prediction quality decays with depth on range/set-heavy subjects,
// while pop-order predictions (which consume no draws) stay good; the
// measured value of depth is a bench axis (EXPERIMENTS.md §11), not a
// promise.

// specDepthDefault is the lookahead used when Config.SpecDepth is 0.
const specDepthDefault = 8

// specDepth resolves Config.SpecDepth: 0 = default lookahead,
// negative = shadow simulation off (the PR 6 one-iteration-ahead
// pipeline), positive = that many simulated iterations.
func (f *Fuzzer) specDepth() int {
	switch d := f.cfg.SpecDepth; {
	case d == 0:
		return specDepthDefault
	case d < 0:
		return 0
	default:
		return d
	}
}

// shadowDraws is an incrementally synced clone of the campaign's RNG
// stream. The campaign's countedSource numbers every Int63 draw;
// shadowDraws replays the same seed into a sliding buffer over
// absolute draw positions, so the simulator can read draws the
// campaign has not made yet, any number of times, without touching
// the campaign's stream. Sync cost per publish is O(draws consumed
// since the last publish + lookahead window), a few dozen nanoseconds
// against a subject execution.
type shadowDraws struct {
	src  rand.Source
	next uint64  // draws taken from src so far; buf covers [next-len(buf), next)
	buf  []int64 // lookahead window of raw Int63 values
}

func newShadowDraws(seed int64) *shadowDraws {
	// The clone must replay the campaign stream bit-for-bit, so it is
	// necessarily the same PRNG construction countedSource wraps.
	//pdlint:ignore enginerand -- read-only shadow clone of the campaign stream; never draws on behalf of the campaign (see countedSource)
	return &shadowDraws{src: rand.NewSource(seed)}
}

// at returns the raw Int63 value at absolute draw position i, drawing
// the source forward (into the buffer) as needed.
func (s *shadowDraws) at(i uint64) int64 {
	for s.next <= i {
		//pdlint:ignore enginerand -- shadow clone's own source; the campaign stream and its draw counter are untouched
		s.buf = append(s.buf, s.src.Int63())
		s.next++
	}
	start := s.next - uint64(len(s.buf))
	return s.buf[i-start]
}

// discard drops buffered draws below abs — positions the campaign has
// consumed and can never re-read. Positions not yet drawn are
// fast-forwarded over without buffering (this is how a restored
// campaign's shadow catches up to the replayed stream position).
func (s *shadowDraws) discard(abs uint64) {
	start := s.next - uint64(len(s.buf))
	if abs <= start {
		return
	}
	if abs >= s.next {
		for s.next < abs {
			//pdlint:ignore enginerand -- shadow clone's own source; the campaign stream and its draw counter are untouched
			s.src.Int63()
			s.next++
		}
		s.buf = s.buf[:0]
		return
	}
	s.buf = append(s.buf[:0], s.buf[abs-start:]...)
}

// shadowCursor reads the shadow stream forward from one absolute
// position, replicating exactly the derivations rand.Rand performs on
// the campaign's stream — countedSource implements only rand.Source,
// so every campaign value derives from Int63 alone, and Intn's
// rejection loop below is math/rand's Int31n bit for bit.
type shadowCursor struct {
	s   *shadowDraws
	pos uint64
}

func (c *shadowCursor) int63() int64 { v := c.s.at(c.pos); c.pos++; return v }

func (c *shadowCursor) int31() int32 { return int32(c.int63() >> 32) }

// intn mirrors rand.Rand.Intn for 0 < n < 1<<31 (the only range the
// campaign uses: charset indices and comparison-member picks).
func (c *shadowCursor) intn(n int) int {
	if n&(n-1) == 0 { // n is a power of two
		return int(c.int31() & int32(n-1))
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := c.int31()
	for v > max {
		v = c.int31()
	}
	return int(v % int32(n))
}

// randChar mirrors Fuzzer.randChar on the shadow stream.
func (c *shadowCursor) randChar(charset []byte) byte {
	return charset[c.intn(len(charset))]
}

// shadowCand is one simulated queue entry: enough of candidate to
// predict pop order and retry decay, never aliased back into the
// engine.
type shadowCand struct {
	input []byte
	score float64
	ord   int  // snapshot position, the seq-order stand-in for ties
	mined bool // mined lineage under an active mining burst (retry decay)
}

// shadowPredict simulates depth iterations of the serial loop and
// appends the predicted executions to tasks. Called from publishSpec
// with the board snapshot already holding the literal announcements
// (pending extension + queue tops), so the simulator adds exactly the
// inputs those cannot see: the random extensions of the next depth
// pops, restart inputs when the simulated queue runs dry, and — with
// the execution cache off or retired, where a re-popped input really
// re-executes — the re-popped inputs themselves.
func (f *Fuzzer) shadowPredict(tasks [][]byte, snap []shadowCand, depth int) [][]byte {
	if f.shadow == nil {
		f.shadow = newShadowDraws(f.cfg.Seed)
	}
	f.shadow.discard(f.cs.draws)
	cur := shadowCursor{s: f.shadow, pos: f.cs.draws}

	// The retry decay a re-enqueued candidate's score takes before the
	// next pop re-scores it (score terms other than retries are frozen
	// in the common case the simulator assumes).
	decay := func(mined bool) float64 {
		if mined {
			return mineRetryDecay
		}
		return 2
	}
	cachedRepops := f.cache != nil && !f.cache.Retired()

	// The simulated holding of the loop cursor: the input the
	// trajectory is processing right now re-enqueues with one retry's
	// decay before the first simulated pop.
	sim := snap
	if f.sCur != nil {
		sim = append(sim, shadowCand{
			input: f.sCur.input,
			score: f.sCurScore - decay(f.sCur.mineGen > 0 && f.miningActive),
			ord:   len(snap),
			mined: f.sCur.mineGen > 0 && f.miningActive,
		})
	}

	for d := 0; d < depth; d++ {
		// Pop the simulated maximum by the queue's order: score
		// descending, then snapshot position ascending as the stand-in
		// for insertion sequence.
		best := -1
		for i := range sim {
			if sim[i].input == nil {
				continue
			}
			if best < 0 || sim[i].score > sim[best].score ||
				(sim[i].score == sim[best].score && sim[i].ord < sim[best].ord) {
				best = i
			}
		}
		var input []byte
		if best < 0 {
			// Queue exhausted: the trajectory restarts from one fresh
			// random character (one draw), then draws the extension.
			input = []byte{cur.randChar(f.cfg.Charset)}
			tasks = append(tasks, input)
		} else {
			input = sim[best].input
			if !cachedRepops && d > 0 {
				// Without the cache a re-pop re-executes its input for
				// real; the literal board announced the first round of
				// pops already (d == 0), deeper ones are news.
				tasks = append(tasks, input)
			}
			// Re-enqueue with the retry decay, as the real loop will.
			sim[best].score -= decay(sim[best].mined)
		}
		// The predicted next execution no one-iteration scheme sees:
		// the popped input's random extension (one draw — assuming the
		// intervening addChildren makes no range/set picks; see the
		// file comment for the honest accuracy bound).
		ext := make([]byte, len(input)+1)
		copy(ext, input)
		ext[len(input)] = cur.randChar(f.cfg.Charset)
		tasks = append(tasks, ext)
	}
	return tasks
}
