package core

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/trace"
)

// Allocation benchmarks for the trajectory hot path (ISSUE 8). The
// serial engine's per-exec cost is the campaign's critical path — the
// speculative pipeline can hide subject execution on workers, but every
// allocation the trajectory goroutine performs per execution is serial
// time no amount of speculation recovers. Run with -benchmem; the
// steady-state figures are pinned (with slack) by alloc_pin_test.go.

// BenchmarkSinkExecute measures one sink-backed subject execution —
// the trace-collection layer alone, no distillation. Steady state:
// the sink's buffers (comparisons, blocks, block set, byte arena) are
// warm after the first run, so allocations here are per-exec costs the
// arena exists to kill.
func BenchmarkSinkExecute(b *testing.B) {
	prog := expr.New()
	input := []byte("(1+2)*(3-4)#")
	var sink trace.Sink
	subject.ExecuteInto(prog, input, traceOpts(), &sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subject.ExecuteInto(prog, input, traceOpts(), &sink)
	}
}

// BenchmarkFactsDistill measures factsOf on a deriving run — the full
// distillation (trimmed blocks, final-index comparisons, stack
// average) the engine performs for every input whose comparisons seed
// children.
func BenchmarkFactsDistill(b *testing.B) {
	prog := cjson.New()
	input := []byte(`{"a":[1,2`)
	var sink trace.Sink
	rec := subject.ExecuteInto(prog, input, traceOpts(), &sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		factsOf(rec, true)
	}
}

// BenchmarkCampaignPerExec measures a whole serial campaign and
// reports allocations normalised per execution — the end-to-end
// trajectory figure the ISSUE 8 acceptance bar (≥ 30% fewer
// steady-state allocs/exec than the PR 7 baseline) is judged on.
func BenchmarkCampaignPerExec(b *testing.B) {
	const execs = 4000
	b.ReportAllocs()
	var ran int
	for i := 0; i < b.N; i++ {
		res := New(expr.New(), Config{Seed: 42, MaxExecs: execs}).Run()
		ran = res.Execs
	}
	// allocs/op ÷ execs/op = allocs per execution; report execs/op so
	// the division is mechanical.
	b.ReportMetric(float64(ran), "execs/op")
}
