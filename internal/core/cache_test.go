package core

import (
	"testing"

	"pfuzzer/internal/registry"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/subjects/ini"
	"pfuzzer/internal/subjects/urlp"
)

// collectCacheEvents runs a campaign and returns the EventCache
// stream plus the final result.
func collectCacheEvents(t *testing.T, cfg Config, prog interface {
	Name() string
}) ([]Event, *Result) {
	t.Helper()
	var events []Event
	cfg.Events = func(ev Event) {
		if ev.Kind == EventCache {
			events = append(events, ev)
		}
	}
	e, ok := registry.Get(prog.Name())
	if !ok {
		t.Fatalf("subject %s not registered", prog.Name())
	}
	res := New(e.New(), cfg).Run()
	return events, res
}

// TestCacheEventsMonotoneAndComplete: the EventCache stream's
// counters never decrease, every report accounts for every execution
// so far, and the final report matches the result exactly.
func TestCacheEventsMonotoneAndComplete(t *testing.T) {
	events, res := collectCacheEvents(t,
		Config{Seed: 1, MaxExecs: 6000, Cache: CacheOn}, expr.New())
	if len(events) == 0 {
		t.Fatal("cache-enabled campaign emitted no EventCache")
	}
	prev := Event{}
	for i, ev := range events {
		if ev.Hits < prev.Hits || ev.Misses < prev.Misses || ev.Execs < prev.Execs {
			t.Fatalf("event %d went backwards: %+v after %+v", i, ev, prev)
		}
		if ev.Hits+ev.Misses != ev.Execs {
			t.Fatalf("event %d: %d hits + %d misses != %d execs", i, ev.Hits, ev.Misses, ev.Execs)
		}
		prev = ev
	}
	last := events[len(events)-1]
	if last.Hits != res.CacheHits || last.Misses != res.CacheMisses || last.Execs != res.Execs {
		t.Fatalf("final event %+v does not match result (hits=%d misses=%d execs=%d)",
			last, res.CacheHits, res.CacheMisses, res.Execs)
	}
	if res.CacheHits == 0 {
		t.Fatal("expr campaign with the cache forced on recorded zero hits")
	}
}

// TestCacheOffEmitsNothing: CacheOff means no EventCache reports and
// zero counters.
func TestCacheOffEmitsNothing(t *testing.T) {
	events, res := collectCacheEvents(t,
		Config{Seed: 1, MaxExecs: 3000, Cache: CacheOff}, expr.New())
	if len(events) != 0 {
		t.Fatalf("CacheOff campaign emitted %d EventCache reports", len(events))
	}
	if res.CacheHits != 0 || res.CacheMisses != 0 || res.CacheRetired {
		t.Fatalf("CacheOff campaign reported cache state: %d/%d retired=%v",
			res.CacheHits, res.CacheMisses, res.CacheRetired)
	}
}

// TestCacheCountersSurviveSnapshotResume: counters carry across a
// snapshot/restore cut, the stream invariant holds on the resumed
// half, and the resumed campaign's corpus still matches the
// uninterrupted run's.
func TestCacheCountersSurviveSnapshotResume(t *testing.T) {
	e, _ := registry.Get("expr")
	cfg := Config{Seed: 1, MaxExecs: 6000, Cache: CacheOn}
	want := New(e.New(), cfg).Run()

	first := NewCampaign(e.New(), cfg)
	for first.Result().Execs < 2500 {
		if _, more := first.Step(333); !more {
			t.Fatal("campaign finished before the cut")
		}
	}
	cut := first.Result()
	if cut.CacheHits+cut.CacheMisses != cut.Execs {
		t.Fatalf("pre-cut: %d + %d != %d", cut.CacheHits, cut.CacheMisses, cut.Execs)
	}
	blob, err := first.Snapshot().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := UnmarshalSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if snap.CacheHits != cut.CacheHits || snap.CacheMisses != cut.CacheMisses {
		t.Fatalf("snapshot counters %d/%d, live %d/%d",
			snap.CacheHits, snap.CacheMisses, cut.CacheHits, cut.CacheMisses)
	}

	var events []Event
	resumed, err := Restore(e.New(), Config{Events: func(ev Event) {
		if ev.Kind == EventCache {
			events = append(events, ev)
		}
	}}, snap)
	if err != nil {
		t.Fatal(err)
	}
	got := resumed.Result()
	if got.CacheHits != cut.CacheHits || got.CacheMisses != cut.CacheMisses {
		t.Fatalf("restored counters %d/%d, want %d/%d",
			got.CacheHits, got.CacheMisses, cut.CacheHits, cut.CacheMisses)
	}
	for {
		if spent, more := resumed.Step(500); !more || spent == 0 {
			break
		}
	}
	if got.CacheHits+got.CacheMisses != got.Execs {
		t.Fatalf("post-resume: %d + %d != %d", got.CacheHits, got.CacheMisses, got.Execs)
	}
	for i, ev := range events {
		if ev.Hits+ev.Misses != ev.Execs {
			t.Fatalf("resumed event %d: %d + %d != %d", i, ev.Hits, ev.Misses, ev.Execs)
		}
	}
	// The resumed campaign rebuilds its cache lazily, so its hit/miss
	// split differs from the uninterrupted run's — but the corpus must
	// not.
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("resumed campaign fingerprint %#x, uninterrupted %#x",
			got.Fingerprint(), want.Fingerprint())
	}
}

// TestCacheAutoRetires: the adaptive mode drops the cache on a
// low-hit-rate campaign (urlp's open URL grammar executes mostly
// fresh inputs) and keeps it where it pays (ini saturates to a
// near-total hit rate). Both remain corpus-identical to CacheOff.
func TestCacheAutoRetires(t *testing.T) {
	low := New(urlp.New(), Config{Seed: 1, MaxExecs: 20000}).Run()
	if !low.CacheRetired {
		t.Errorf("urlp auto campaign kept the cache at hit rate %.1f%%", 100*low.CacheHitRate())
	}
	if low.CacheHits+low.CacheMisses != low.Execs {
		t.Errorf("urlp: %d + %d != %d after retirement", low.CacheHits, low.CacheMisses, low.Execs)
	}

	high := New(ini.New(), Config{Seed: 1, MaxExecs: 20000}).Run()
	if high.CacheRetired {
		t.Errorf("ini auto campaign retired the cache at hit rate %.1f%%", 100*high.CacheHitRate())
	}
	if high.CacheHitRate() < 0.9 {
		t.Errorf("ini hit rate %.1f%%, expected a saturating campaign", 100*high.CacheHitRate())
	}

	for _, name := range []string{"urlp", "ini"} {
		e, _ := registry.Get(name)
		auto := New(e.New(), Config{Seed: 1, MaxExecs: 20000}).Run()
		off := New(e.New(), Config{Seed: 1, MaxExecs: 20000, Cache: CacheOff}).Run()
		if auto.Fingerprint() != off.Fingerprint() {
			t.Errorf("%s: CacheAuto campaign diverged from CacheOff", name)
		}
	}
}

// TestCacheParallelCountersComplete: the scheduler folds executor
// hit/miss tallies so the invariant holds on the concurrent engine
// too (the split itself is nondeterministic, the sum is not).
func TestCacheParallelCountersComplete(t *testing.T) {
	res := New(expr.New(), Config{Seed: 1, MaxExecs: 6000, Workers: 4, Cache: CacheOn}).Run()
	if res.CacheHits+res.CacheMisses != res.Execs {
		t.Fatalf("%d hits + %d misses != %d execs", res.CacheHits, res.CacheMisses, res.Execs)
	}
	if res.CacheHits == 0 {
		t.Error("parallel campaign with the cache forced on recorded zero hits")
	}
}
