package core

import (
	"testing"
	"time"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/subjects/tinyc"
)

// resultsEqual compares two campaigns' full emission records:
// inputs, per-valid new-block counts and execution indices, total
// executions and coverage.
func resultsEqual(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if got.Execs != want.Execs {
		t.Errorf("%s: execs = %d, want %d", label, got.Execs, want.Execs)
	}
	if len(got.Valids) != len(want.Valids) {
		t.Fatalf("%s: %d valids, want %d", label, len(got.Valids), len(want.Valids))
	}
	for i := range want.Valids {
		g, w := got.Valids[i], want.Valids[i]
		if string(g.Input) != string(w.Input) || g.Exec != w.Exec || g.NewBlocks != w.NewBlocks {
			t.Errorf("%s: valid[%d] = (%q, exec %d, new %d), want (%q, exec %d, new %d)",
				label, i, g.Input, g.Exec, g.NewBlocks, w.Input, w.Exec, w.NewBlocks)
		}
	}
	if len(got.Coverage) != len(want.Coverage) {
		t.Errorf("%s: coverage = %d blocks, want %d", label, len(got.Coverage), len(want.Coverage))
	}
}

// stepOut drives a campaign to completion in fixed slices.
func stepOut(t *testing.T, c *Campaign, slice int) *Result {
	t.Helper()
	for i := 0; ; i++ {
		spent, more := c.Step(slice)
		if !more {
			break
		}
		if spent == 0 {
			t.Fatalf("Step made no progress at iteration %d", i)
		}
		if i > 1_000_000 {
			t.Fatal("Step loop did not terminate")
		}
	}
	return c.Result()
}

// TestStepSliceInvariantSerial is the unified-API golden property:
// on the serial engine, a campaign driven in arbitrary Step slices
// is bit-identical to a single blocking Run — the invariant that lets
// the fleet orchestrator multiplex deterministic campaigns without
// perturbing them.
func TestStepSliceInvariantSerial(t *testing.T) {
	cases := []struct {
		name string
		prog func() subject.Program
		cfg  Config
	}{
		{"expr", func() subject.Program { return expr.New() }, Config{Seed: 42, MaxExecs: 3000}},
		{"cjson", func() subject.Program { return cjson.New() }, Config{Seed: 42, MaxExecs: 3000}},
		{"tinyc-hybrid", func() subject.Program { return tinyc.New() },
			Config{Seed: 7, MaxExecs: 12000, MinePhase: true, MineLexer: tinycLexer()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := New(tc.prog(), tc.cfg).Run()
			for _, slice := range []int{137, 1000} {
				got := stepOut(t, NewCampaign(tc.prog(), tc.cfg), slice)
				resultsEqual(t, got, want, "slice="+string(rune('0'+slice/137)))
			}
		})
	}
}

// TestSnapshotResumeEquivalence is the persistence acceptance
// property: save at execution N, restore into a fresh campaign, run
// both to the same total budget — the combined valid corpus must be
// identical to the uninterrupted run's, on the plain serial engine
// and on the hybrid driver.
func TestSnapshotResumeEquivalence(t *testing.T) {
	cases := []struct {
		name string
		prog func() subject.Program
		cfg  Config
		cut  int
	}{
		{"expr", func() subject.Program { return expr.New() }, Config{Seed: 42, MaxExecs: 3000}, 1100},
		{"cjson", func() subject.Program { return cjson.New() }, Config{Seed: 1, MaxExecs: 4000}, 2500},
		{"tinyc-hybrid", func() subject.Program { return tinyc.New() },
			Config{Seed: 7, MaxExecs: 12000, MinePhase: true, MineLexer: tinycLexer()}, 7000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := New(tc.prog(), tc.cfg).Run()

			first := NewCampaign(tc.prog(), tc.cfg)
			for first.Result().Execs < tc.cut {
				if _, more := first.Step(500); !more {
					t.Fatalf("campaign finished before the cut at %d execs", first.Result().Execs)
				}
			}
			blob, err := first.Snapshot().Marshal()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			snap, err := UnmarshalSnapshot(blob)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			resumed, err := Restore(tc.prog(), Config{MineLexer: tc.cfg.MineLexer}, snap)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			got := stepOut(t, resumed, 700)
			resultsEqual(t, got, want, "resumed")
		})
	}
}

// TestSnapshotRestoreParallel smoke-tests snapshot/restore across the
// concurrent engine: the resumed campaign must complete its budget
// and keep every restored valid, though emission order past the cut
// is nondeterministic by design.
func TestSnapshotRestoreParallel(t *testing.T) {
	cfg := Config{Seed: 3, MaxExecs: 12000, Workers: 4}
	c := NewCampaign(cjson.New(), cfg)
	c.Step(5000)
	snap := c.Snapshot()
	cut := len(snap.Valids)
	if cut == 0 {
		t.Fatal("no valids before the snapshot cut")
	}
	resumed, err := Restore(cjson.New(), Config{}, snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	res := stepOut(t, resumed, 4000)
	if res.Execs < cfg.MaxExecs {
		t.Errorf("resumed campaign stopped at %d execs, want >= %d", res.Execs, cfg.MaxExecs)
	}
	for i := 0; i < cut; i++ {
		if string(res.Valids[i].Input) != string(snap.Valids[i].Input) {
			t.Fatalf("restored valid[%d] = %q, snapshot had %q", i, res.Valids[i].Input, snap.Valids[i].Input)
		}
	}
	if len(res.Valids) < cut {
		t.Errorf("resumed campaign lost valids: %d < %d", len(res.Valids), cut)
	}
}

// TestRestoreRejectsBadSnapshot pins the version guard.
func TestRestoreRejectsBadSnapshot(t *testing.T) {
	if _, err := Restore(expr.New(), Config{}, nil); err == nil {
		t.Error("Restore(nil) did not fail")
	}
	c := NewCampaign(expr.New(), Config{Seed: 1, MaxExecs: 100})
	c.Step(50)
	s := c.Snapshot()
	s.Version = 99
	if _, err := Restore(expr.New(), Config{}, s); err == nil {
		t.Error("Restore with a wrong version did not fail")
	}
}

// TestRestoreExtendsBudget: resuming with a larger MaxExecs keeps
// fuzzing past the original budget — including a finished hybrid
// campaign, whose terminal driver stage must reopen.
func TestRestoreExtendsBudget(t *testing.T) {
	cases := []struct {
		name string
		prog func() subject.Program
		cfg  Config
	}{
		{"plain", func() subject.Program { return expr.New() }, Config{Seed: 5, MaxExecs: 1000}},
		{"hybrid", func() subject.Program { return tinyc.New() },
			Config{Seed: 5, MaxExecs: 2000, MinePhase: true, MineLexer: tinycLexer()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCampaign(tc.prog(), tc.cfg)
			stepOut(t, c, 1000)
			snap := c.Snapshot()
			extended := tc.cfg.MaxExecs * 2
			resumed, err := Restore(tc.prog(), Config{MaxExecs: extended, MineLexer: tc.cfg.MineLexer}, snap)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			res := stepOut(t, resumed, 1000)
			if res.Execs < extended {
				t.Errorf("extended campaign stopped at %d execs, want >= %d", res.Execs, extended)
			}
		})
	}
}

// TestRestoreShrinksBudget: any positive cfg.MaxExecs overrides the
// saved budget, smaller included — resuming with a tighter budget
// stops earlier instead of silently running out the saved one.
func TestRestoreShrinksBudget(t *testing.T) {
	c := NewCampaign(expr.New(), Config{Seed: 5, MaxExecs: 10000})
	c.Step(1000)
	snap := c.Snapshot()
	resumed, err := Restore(expr.New(), Config{MaxExecs: 2000}, snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	res := stepOut(t, resumed, 1000)
	if res.Execs < 2000 || res.Execs > 2002 {
		t.Errorf("shrunk campaign stopped at %d execs, want ~2000", res.Execs)
	}
	// Shrinking below the snapshot's exec count finishes immediately.
	already, err := Restore(expr.New(), Config{MaxExecs: 500}, snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if spent, more := already.Step(1000); spent != 0 || more {
		t.Errorf("over-budget resume stepped spent=%d more=%v, want 0/false", spent, more)
	}
}

// TestDeadlineCampaignRuns is the regression test for the zero-time
// deadline bug: a campaign with a generous Deadline must actually
// run, not read time.Since(zero) as already expired before the first
// step.
func TestDeadlineCampaignRuns(t *testing.T) {
	res := New(expr.New(), Config{Seed: 1, MaxExecs: 2000, Deadline: time.Hour}).Run()
	if res.Execs < 2000 {
		t.Errorf("campaign with a 1h deadline ran only %d of 2000 execs", res.Execs)
	}
	if len(res.Valids) == 0 {
		t.Error("campaign with a 1h deadline emitted nothing")
	}
}
