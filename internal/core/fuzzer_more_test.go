package core

import (
	"testing"

	"pfuzzer/internal/core/coretest"
	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/subjects/tinyc"
	"pfuzzer/internal/trace"
)

// TestSubstitute checks the span-replacement rule for every
// comparison shape.
func TestSubstitute(t *testing.T) {
	cases := []struct {
		input string
		cmp   trace.Comparison
		cand  string
		want  string
	}{
		// Single char replaced mid-input.
		{"abc", trace.Comparison{Index: 1, Last: 1}, "X", "aXc"},
		// Single char replaced at the end.
		{"abc", trace.Comparison{Index: 2, Last: 2}, "X", "abX"},
		// strcmp span replaced by a longer literal (keyword entry).
		{"whXle", trace.Comparison{Index: 0, Last: 4}, "while", "while"},
		// Partial keyword extended: span covers the whole suffix.
		{"(tr", trace.Comparison{Index: 1, Last: 2}, "true", "(true"},
		// Span end beyond input length is clamped.
		{"ab", trace.Comparison{Index: 1, Last: 5}, "ZZ", "aZZ"},
	}
	for _, c := range cases {
		got := substitute([]byte(c.input), &c.cmp, []byte(c.cand))
		if string(got) != c.want {
			t.Errorf("substitute(%q, [%d..%d], %q) = %q, want %q",
				c.input, c.cmp.Index, c.cmp.Last, c.cand, got, c.want)
		}
	}
}

// TestFindsJSONKeywordsFast: the headline behaviour — keywords arrive
// through strcmp substitution within a few hundred executions.
func TestFindsJSONKeywordsFast(t *testing.T) {
	found := map[string]bool{}
	f := New(cjson.New(), Config{Seed: 1, MaxExecs: 5000,
		Events: func(ev Event) {
			if ev.Kind != EventValid {
				return
			}
			for tok := range cjson.Tokenize(ev.Input) {
				found[tok] = true
			}
		}})
	f.Run()
	for _, kw := range []string{"true", "false", "null"} {
		if !found[kw] {
			t.Errorf("keyword %q not synthesized within 5000 execs", kw)
		}
	}
}

func TestMaxValidsStops(t *testing.T) {
	f := New(expr.New(), Config{Seed: 1, MaxExecs: 100000, MaxValids: 3})
	res := f.Run()
	if len(res.Valids) != 3 {
		t.Errorf("valids = %d, want exactly 3", len(res.Valids))
	}
	if res.Execs >= 100000 {
		t.Error("campaign ran out the exec budget despite MaxValids")
	}
}

func TestMaxLenRespected(t *testing.T) {
	f := New(expr.New(), Config{Seed: 2, MaxExecs: 5000, MaxLen: 6})
	res := f.Run()
	for _, v := range res.Valids {
		// Emitted inputs come from queue entries (<= MaxLen) plus at
		// most one random extension.
		if len(v.Input) > 7 {
			t.Errorf("emitted input %q exceeds MaxLen+1", v.Input)
		}
	}
}

// TestEventsSeeEveryEmission pins the typed event stream's EventValid
// contract: one event per emitted valid, in emission order, carrying
// the new-block count.
func TestEventsSeeEveryEmission(t *testing.T) {
	var seen [][]byte
	pops := 0
	f := New(expr.New(), Config{Seed: 4, MaxExecs: 3000,
		Events: func(ev Event) {
			switch ev.Kind {
			case EventValid:
				if ev.NewBlocks <= 0 {
					t.Errorf("EventValid for %q carries NewBlocks=%d", ev.Input, ev.NewBlocks)
				}
				seen = append(seen, append([]byte(nil), ev.Input...))
			case EventPop:
				pops++
			}
		}})
	res := f.Run()
	if len(seen) != len(res.Valids) {
		t.Errorf("Events saw %d valids, result has %d", len(seen), len(res.Valids))
	}
	for i := range seen {
		if string(seen[i]) != string(res.Valids[i].Input) {
			t.Errorf("EventValid order mismatch at %d", i)
		}
	}
	if pops == 0 {
		t.Error("serial engine reported no EventPop")
	}
}

// TestAblationsRun ensures every heuristic variant is executable and
// still emits only accepted inputs.
func TestAblationsRun(t *testing.T) {
	variants := map[string]Config{
		"NoLengthTerm":       {NoLengthTerm: true},
		"NoReplacementBonus": {NoReplacementBonus: true},
		"NoStackTerm":        {NoStackTerm: true},
		"NoParentsTerm":      {NoParentsTerm: true},
		"NoPathNovelty":      {NoPathNovelty: true},
		"CoverageOnly":       {CoverageOnly: true},
		"BFS":                {BFS: true},
	}
	for name, cfg := range variants {
		cfg.Seed = 1
		cfg.MaxExecs = 2000
		res := New(tinyc.New(), cfg).Run()
		for _, v := range res.Valids {
			rec := coretest.ExecFull(tinyc.New(), v.Input)
			if !rec.Accepted() {
				t.Errorf("%s: emitted invalid input %q", name, v.Input)
			}
		}
	}
}

// TestCoverageMatchesValids: the result's coverage must be exactly
// the union of the valid inputs' block sets.
func TestCoverageMatchesValids(t *testing.T) {
	f := New(expr.New(), Config{Seed: 6, MaxExecs: 4000})
	res := f.Run()
	union := map[uint32]bool{}
	for _, v := range res.Valids {
		rec := coretest.ExecFull(expr.New(), v.Input)
		for id := range rec.BlockFirst {
			union[id] = true
		}
	}
	if len(union) != len(res.Coverage) {
		t.Fatalf("coverage = %d blocks, union of valids = %d", len(res.Coverage), len(union))
	}
	for id := range union {
		if !res.Coverage[id] {
			t.Errorf("block %d in union but not in coverage", id)
		}
	}
}

// TestEveryValidAddedNewCoverage: emissions are gated on new code
// (the paper's runCheck condition).
func TestEveryValidAddedNewCoverage(t *testing.T) {
	f := New(cjson.New(), Config{Seed: 8, MaxExecs: 5000})
	res := f.Run()
	for _, v := range res.Valids {
		if v.NewBlocks == 0 {
			t.Errorf("valid %q emitted without new coverage", v.Input)
		}
	}
}
