package core

import (
	"pfuzzer/internal/mine"
)

// mineRound bounds one generate-validate-refeed round of a mining
// slice: small enough that accepted candidates re-enter the grammar
// quickly, large enough that batch generation amortizes.
const mineRound = 2048

// runHybrid is the two-phase campaign driver behind Config.MinePhase,
// implementing the tool chain the paper proposes as future work
// (§7.4): "rely on parser-directed fuzzing for initial exploration,
// use a tool to mine the grammar from the resulting sequences, and
// use the mined grammar for generating longer and more complex
// sequences".
//
// The driver alternates two kinds of phase on the same engine (serial
// loop or scheduler/executor pool, per Config.Workers):
//
//   - exploration: plain parser-directed fuzzing, in bursts of
//     MineCadence executions (default: the whole exploration budget
//     in one burst);
//   - mining: every valid input emitted so far is folded into an
//     incremental token-bigram grammar (mine.Grammar.Add), a batch of
//     deduplicated candidates is generated from it and enqueued as
//     high-priority mined candidates, and the engine validates them —
//     through the very same executor pool and sharded queue, so
//     generated-candidate validation scales with Workers.
//
// Accepted candidates feed back twice: into the result (via the
// hybrid emission rule, see shouldEmit) and into the miner, so the
// grammar grows as the corpus grows. Rejected candidates stay in the
// queue and fall to the ordinary heuristic, where the last-character
// substitution loop repairs near-misses — the two search modes
// compose rather than merely alternate.
func (f *Fuzzer) runHybrid() *Result {
	lex := f.cfg.MineLexer
	if lex == nil {
		lex = mine.SimpleLexer(nil)
	}
	g := mine.NewGrammar(lex)

	maxTokens := f.cfg.MineMaxTokens
	if maxTokens <= 0 {
		maxTokens = 30
	}
	total := f.cfg.MaxExecs
	mineBudget := f.cfg.MineBudget
	if mineBudget <= 0 {
		mineBudget = total / 4
	}
	if mineBudget > total {
		mineBudget = total
	}
	explore := total - mineBudget
	cadence := f.cfg.MineCadence
	if cadence <= 0 {
		// Default to four interleavings: early bursts mine from a
		// small corpus, but their accepted candidates feed back into
		// the grammar, so later bursts generate from a strictly
		// richer automaton. An all-mining configuration (MineBudget
		// >= MaxExecs) leaves cadence at 0; the explore branch below
		// then spends whatever budget mining returns in one phase.
		cadence = (explore + 3) / 4
	}
	// One mining burst per exploration burst, splitting the mining
	// budget evenly; a final sweep below spends any remainder.
	bursts := 1
	if cadence > 0 {
		bursts = (explore + cadence - 1) / cadence
	}
	mineSlice := mineBudget / bursts
	if mineSlice < 1 {
		mineSlice = mineBudget
	}

	fed := 0 // res.Valids already folded into the grammar
	exploreLeft, mineLeft := explore, mineBudget
	for (exploreLeft > 0 || mineLeft > 0) && !f.stopCampaign() {
		if exploreLeft > 0 {
			slice := cadence
			if slice < 1 || slice > exploreLeft {
				// Tail of the budget, or a zero cadence (all-mining
				// configuration whose unminable slices fell through
				// to exploration): spend what is left in one phase,
				// so the loop always makes progress.
				slice = exploreLeft
			}
			exploreLeft -= slice
			f.runPhase(slice, false)
			fed = f.feedGrammar(g, fed)
		}
		if mineLeft > 0 {
			slice := mineSlice
			if slice > mineLeft {
				slice = mineLeft
			}
			mineLeft -= slice
			// Spend the slice in rounds: generate a batch, validate
			// it, fold the newly accepted inputs back into the
			// grammar, regenerate. The feedback loop lives here, so
			// even a single mining phase (MineCadence >= the
			// exploration budget) grows its grammar as it goes.
			for slice > 0 && !f.stopCampaign() {
				round := mineRound
				if round > slice {
					round = slice
				}
				if f.enqueueMined(g, maxTokens, round) == 0 {
					// Nothing to mine (no valid corpus yet, or the
					// generator is exhausted): return the rest of the
					// slice to exploration so the budget is spent
					// either way.
					exploreLeft += slice
					break
				}
				f.runPhase(round, true)
				fed = f.feedGrammar(g, fed)
				slice -= round
			}
		}
	}
	// Rounding can leave a few executions unspent; run them out as
	// exploration.
	if !f.stopCampaign() {
		f.runPhase(total-f.res.Execs, false)
	}
	f.setMining(false)
	return f.finish()
}

// runPhase resumes the configured engine for up to slice more
// executions, never exceeding the campaign budget. mining selects the
// scoring regime (see the phase fence in score).
func (f *Fuzzer) runPhase(slice int, mining bool) {
	cap := f.res.Execs + slice
	if cap > f.cfg.MaxExecs {
		cap = f.cfg.MaxExecs
	}
	if f.res.Execs >= cap {
		return
	}
	f.setMining(mining)
	f.execCap = cap
	f.runEngine()
}

// setMining toggles the scoring regime and re-scores the queues so no
// stale phase scores survive the boundary (the serial queue's lazy
// re-scoring assumes scores only decrease, which a regime flip
// violates).
func (f *Fuzzer) setMining(active bool) {
	if f.miningActive == active {
		return
	}
	f.miningActive = active
	f.queue.Reorder(f.score)
	if f.pq != nil {
		f.pq.Reorder(f.score)
	}
}

// feedGrammar folds valids emitted since the last call into the
// grammar and returns the new high-water mark.
func (f *Fuzzer) feedGrammar(g *mine.Grammar, from int) int {
	for ; from < len(f.res.Valids); from++ {
		g.Add(f.res.Valids[from].Input)
	}
	return from
}

// enqueueMined generates deduplicated candidates from the mined
// grammar and pushes them onto the engine's queue as mined candidates
// (score: see mineScoreBase). The batch is sized to a fraction of the
// phase's execution slice: validating a candidate costs two
// executions (the input and its random extension), and the rest of
// the slice belongs to the repair loop — the substitution children of
// near-miss candidates. It returns how many were enqueued.
func (f *Fuzzer) enqueueMined(g *mine.Grammar, maxTokens, slice int) int {
	if !g.Ready() {
		return 0
	}
	n := slice / 8
	if n < 16 {
		n = 16
	}
	pushed := 0
	for _, gen := range g.GenerateBatch(f.rng, maxTokens, n) {
		if len(gen) > f.cfg.MaxLen {
			continue
		}
		key := string(gen)
		if _, dup := f.seen[key]; dup {
			continue
		}
		f.seen[key] = struct{}{}
		cd := &candidate{input: gen, mineGen: 1}
		if f.cfg.Workers > 1 {
			shards := f.cfg.Shards
			if shards <= 0 {
				shards = f.cfg.Workers
			}
			f.ensureSharded(shards).Push(cd, f.score(cd))
		} else {
			f.queue.Push(cd, f.score(cd))
		}
		pushed++
	}
	return pushed
}
