package core

import (
	"pfuzzer/internal/mine"
)

// mineRound bounds one generate-validate-refeed round of a mining
// slice: small enough that accepted candidates re-enter the grammar
// quickly, large enough that batch generation amortizes.
const mineRound = 2048

// The hybrid driver is the two-phase campaign behind Config.MinePhase,
// implementing the tool chain the paper proposes as future work
// (§7.4): "rely on parser-directed fuzzing for initial exploration,
// use a tool to mine the grammar from the resulting sequences, and
// use the mined grammar for generating longer and more complex
// sequences".
//
// The driver alternates two kinds of phase on the same engine (serial
// loop or scheduler/executor pool, per Config.Workers):
//
//   - exploration: plain parser-directed fuzzing, in bursts of
//     MineCadence executions (default: the whole exploration budget
//     in one burst);
//   - mining: every valid input emitted so far is folded into an
//     incremental token-bigram grammar (mine.Grammar.Add), a batch of
//     deduplicated candidates is generated from it and enqueued as
//     high-priority mined candidates, and the engine validates them —
//     through the very same executor pool and sharded queue, so
//     generated-candidate validation scales with Workers.
//
// Accepted candidates feed back twice: into the result (via the
// hybrid emission rule, see recordLength) and into the miner, so the
// grammar grows as the corpus grows. Rejected candidates stay in the
// queue and fall to the ordinary heuristic, where the last-character
// substitution loop repairs near-misses — the two search modes
// compose rather than merely alternate.
//
// The driver is an explicit state machine rather than a nested loop
// so campaigns are step-resumable (Campaign.Step) and snapshotable
// (Snapshot/Restore): every piece of between-phase bookkeeping lives
// on hybridState, phase boundaries are derived from execution counts
// alone, and the grammar is reconstructible from the valid corpus —
// so slicing a campaign into arbitrary Steps, or restoring it in a
// fresh process, reproduces the uninterrupted run exactly on the
// serial engine.

// Driver stages. hsLoopTop..hsMineRound mirror the §7.4 alternation
// loop; hsFinal is the rounding-remainder sweep, hsDone terminal.
const (
	hsLoopTop = iota
	hsMineEntry
	hsMineRound
	hsFinal
	hsDone
)

// Phase kinds: the bookkeeping owed when an engine phase completes.
const (
	pkExplore = iota
	pkMine
	pkFinal
)

// hybridState is the hybrid driver's between-phase state. Everything
// here except the grammar is serialized by Snapshot; the grammar is
// rebuilt on Restore by replaying MineSeeds and the first fed valids
// through mine.Grammar.Add, which reproduces the incremental
// automaton exactly.
type hybridState struct {
	g         *mine.Grammar
	maxTokens int
	total     int // the campaign's MaxExecs
	cadence   int // exploration executions per burst
	mineSlice int // mining executions per burst

	fed         int // res.Valids already folded into the grammar
	exploreLeft int
	mineLeft    int
	sliceLeft   int // remainder of the current mining slice
	stage       int

	// The engine phase currently running (phaseActive) or about to.
	phaseActive bool
	phaseCap    int  // absolute execution bound of the phase
	phaseMining bool // scoring regime (see the phase fence in score)
	phaseKind   int  // bookkeeping to run when the phase completes
	phaseRound  int  // pkMine: round size to deduct from sliceLeft
}

// ensureHybrid initializes the driver on first use, splitting the
// budget exactly the way the original nested-loop driver did.
func (f *Fuzzer) ensureHybrid() *hybridState {
	if f.hyb != nil {
		return f.hyb
	}
	lex := f.cfg.MineLexer
	if lex == nil {
		lex = mine.SimpleLexer(nil)
	}
	g := mine.NewGrammar(lex)
	g.Seed(f.cfg.MineSeeds)

	maxTokens := f.cfg.MineMaxTokens
	if maxTokens <= 0 {
		maxTokens = 30
	}
	total := f.cfg.MaxExecs
	mineBudget := f.cfg.MineBudget
	if mineBudget <= 0 {
		mineBudget = total / 4
	}
	if mineBudget > total {
		mineBudget = total
	}
	explore := total - mineBudget
	cadence := f.cfg.MineCadence
	if cadence <= 0 {
		// Default to four interleavings: early bursts mine from a
		// small corpus, but their accepted candidates feed back into
		// the grammar, so later bursts generate from a strictly
		// richer automaton. An all-mining configuration (MineBudget
		// >= MaxExecs) leaves cadence at 0; the explore stage below
		// then spends whatever budget mining returns in one phase.
		cadence = (explore + 3) / 4
	}
	// One mining burst per exploration burst, splitting the mining
	// budget evenly; the final sweep spends any remainder.
	bursts := 1
	if cadence > 0 {
		bursts = (explore + cadence - 1) / cadence
	}
	mineSlice := mineBudget / bursts
	if mineSlice < 1 {
		mineSlice = mineBudget
	}

	f.hyb = &hybridState{
		g:           g,
		maxTokens:   maxTokens,
		total:       total,
		cadence:     cadence,
		mineSlice:   mineSlice,
		exploreLeft: explore,
		mineLeft:    mineBudget,
		stage:       hsLoopTop,
	}
	return f.hyb
}

// stepHybrid advances the hybrid campaign by up to n executions: it
// resumes the active engine phase (or asks the driver for the next
// one), runs it to the step bound or the phase bound, and performs
// the between-phase bookkeeping whenever a phase completes. Phase
// boundaries depend only on execution counts, so any slicing of the
// campaign into steps visits the same phases at the same execution
// indices as an uninterrupted run.
func (f *Fuzzer) stepHybrid(n int) {
	h := f.ensureHybrid()
	stepCap := f.res.Execs + n
	if stepCap > f.cfg.MaxExecs {
		stepCap = f.cfg.MaxExecs
	}
	for {
		if !h.phaseActive {
			if !f.advanceHybrid() {
				return
			}
		}
		if f.res.Execs >= h.phaseCap || f.stopCampaign() {
			// The phase is over — completed, zero-length, or aborted
			// by a campaign-global stop (the original driver also ran
			// the post-phase bookkeeping in that case).
			f.finishHybridPhase()
			continue
		}
		if f.res.Execs >= stepCap {
			return // step budget spent; the phase resumes next Step
		}
		cap := h.phaseCap
		if cap > stepCap {
			cap = stepCap
		}
		before := f.res.Execs
		f.setMining(h.phaseMining)
		f.execCap = cap
		f.runEngine()
		if f.res.Execs == before {
			// No progress despite headroom: defensive guard against a
			// spinning engine. The phase stays active for a retry.
			return
		}
	}
}

// advanceHybrid walks the driver's stages until the next engine phase
// is staged (true) or the campaign is finished (false). It mirrors
// the §7.4 alternation: an exploration burst, then mining rounds that
// generate from the grammar and enqueue candidates for validation,
// looping until both budgets are spent, then one final exploration
// sweep for rounding remainders.
func (f *Fuzzer) advanceHybrid() bool {
	h := f.hyb
	for {
		switch h.stage {
		case hsLoopTop:
			if (h.exploreLeft <= 0 && h.mineLeft <= 0) || f.stopCampaign() {
				h.stage = hsFinal
				continue
			}
			if h.exploreLeft > 0 {
				slice := h.cadence
				if slice < 1 || slice > h.exploreLeft {
					// Tail of the budget, or a zero cadence
					// (all-mining configuration whose unminable
					// slices fell through to exploration): spend what
					// is left in one phase, so the driver always
					// makes progress.
					slice = h.exploreLeft
				}
				h.exploreLeft -= slice
				h.stage = hsMineEntry
				f.beginHybridPhase(slice, false, pkExplore)
				return true
			}
			h.stage = hsMineEntry
		case hsMineEntry:
			if h.mineLeft > 0 {
				h.sliceLeft = h.mineSlice
				if h.sliceLeft > h.mineLeft {
					h.sliceLeft = h.mineLeft
				}
				h.mineLeft -= h.sliceLeft
				h.stage = hsMineRound
			} else {
				h.stage = hsLoopTop
			}
		case hsMineRound:
			// Spend the slice in rounds: generate a batch, validate
			// it, fold the newly accepted inputs back into the
			// grammar, regenerate. The feedback loop lives here, so
			// even a single mining phase (MineCadence >= the
			// exploration budget) grows its grammar as it goes.
			if h.sliceLeft <= 0 || f.stopCampaign() {
				h.stage = hsLoopTop
				continue
			}
			round := mineRound
			if round > h.sliceLeft {
				round = h.sliceLeft
			}
			if f.enqueueMined(h.g, h.maxTokens, round) == 0 {
				// Nothing to mine (no valid corpus yet, or the
				// generator is exhausted): return the rest of the
				// slice to exploration so the budget is spent either
				// way.
				h.exploreLeft += h.sliceLeft
				h.sliceLeft = 0
				h.stage = hsLoopTop
				continue
			}
			h.phaseRound = round
			f.beginHybridPhase(round, true, pkMine)
			return true
		case hsFinal:
			// Rounding can leave a few executions unspent; run them
			// out as exploration.
			rest := h.total - f.res.Execs
			h.stage = hsDone
			if !f.stopCampaign() && rest > 0 {
				f.beginHybridPhase(rest, false, pkFinal)
				return true
			}
		case hsDone:
			f.setMining(false)
			return false
		}
	}
}

// beginHybridPhase stages an engine phase of up to slice executions
// under the given scoring regime, clamped to the campaign budget like
// the original driver's runPhase.
func (f *Fuzzer) beginHybridPhase(slice int, mining bool, kind int) {
	h := f.hyb
	cap := f.res.Execs + slice
	if cap > f.cfg.MaxExecs {
		cap = f.cfg.MaxExecs
	}
	h.phaseActive = true
	h.phaseCap = cap
	h.phaseMining = mining
	h.phaseKind = kind
}

// finishHybridPhase runs the bookkeeping owed when the active phase
// completes: newly emitted valids feed the grammar, and mining rounds
// consume their slice.
func (f *Fuzzer) finishHybridPhase() {
	h := f.hyb
	h.phaseActive = false
	switch h.phaseKind {
	case pkExplore:
		h.fed = f.feedGrammar(h.g, h.fed)
	case pkMine:
		h.fed = f.feedGrammar(h.g, h.fed)
		h.sliceLeft -= h.phaseRound
	case pkFinal:
		// Terminal sweep; nothing owed.
	}
}

// setMining toggles the scoring regime and re-scores the queues so no
// stale phase scores survive the boundary (the serial queue's lazy
// re-scoring assumes scores only decrease, which a regime flip
// violates).
func (f *Fuzzer) setMining(active bool) {
	if f.miningActive == active {
		return
	}
	f.miningActive = active
	f.reorderQueue()
	f.emit(Event{Kind: EventPhase, Mining: active, Execs: f.res.Execs})
}

// feedGrammar folds valids emitted since the last call into the
// grammar and returns the new high-water mark.
func (f *Fuzzer) feedGrammar(g *mine.Grammar, from int) int {
	for ; from < len(f.res.Valids); from++ {
		g.Add(f.res.Valids[from].Input)
	}
	return from
}

// enqueueMined generates deduplicated candidates from the mined
// grammar and pushes them onto the engine's queue as mined candidates
// (score: see mineScoreBase). The batch is sized to a fraction of the
// phase's execution slice: validating a candidate costs two
// executions (the input and its random extension), and the rest of
// the slice belongs to the repair loop — the substitution children of
// near-miss candidates. It returns how many were enqueued.
func (f *Fuzzer) enqueueMined(g *mine.Grammar, maxTokens, slice int) int {
	if !g.Ready() {
		return 0
	}
	n := slice / 8
	if n < 16 {
		n = 16
	}
	pushed := 0
	for _, gen := range g.GenerateBatch(f.rng, maxTokens, n) {
		if len(gen) > f.cfg.MaxLen {
			continue
		}
		key := string(gen)
		if _, dup := f.seen[key]; dup {
			continue
		}
		f.seen[key] = struct{}{}
		cd := &candidate{input: gen, mineGen: 1}
		f.queue.Push(cd, f.score(cd))
		pushed++
	}
	return pushed
}
