package core

import (
	"pfuzzer/internal/subject"
)

// Campaign is the unified resumable-engine API: a fuzzing campaign
// driven in execution slices instead of one blocking Run. The serial,
// parallel and hybrid engines all sit behind the same three-method
// surface —
//
//	Step(n)    advance by up to n executions
//	Result()   the live campaign result
//	Snapshot() a serializable image restorable with Restore
//
// — which is what the fleet orchestrator (internal/campaign)
// multiplexes over a worker pool and the corpus store
// (internal/corpus) persists across process restarts.
//
// Stepping is execution-equivalent on the serial engine (Workers <=
// 1): any slicing of the budget visits the same executions in the
// same order as a single Run, so campaigns inside a fleet — and
// campaigns restored from a snapshot — stay bit-identical to the
// golden standalone sequences. The parallel engine tolerates slicing
// too, but each Step spins its own executor generation, so its
// (already nondeterministic) emission order varies with the slicing.
type Campaign struct {
	f *Fuzzer
}

// NewCampaign prepares a step-driven campaign for prog. The campaign
// owns its engine exclusively; there is no Run to conflict with.
func NewCampaign(prog subject.Program, cfg Config) *Campaign {
	f := New(prog, cfg)
	f.ran = true // the Campaign drives the engine; a stray Fuzzer.Run must not
	return &Campaign{f: f}
}

// Step advances the campaign by up to n executions and returns how
// many were actually spent (the engines may overshoot by an in-flight
// input-plus-extension pair, exactly as Run does at the budget edge)
// and whether the campaign can still make progress. Step never blocks
// beyond the slice: a hybrid campaign pauses and resumes mid-phase,
// the serial engine mid-iteration, with no behavioural difference to
// an uninterrupted run.
func (c *Campaign) Step(n int) (spent int, more bool) {
	return c.f.step(n)
}

// Result returns the campaign's live result. It is owned by the
// engine: read it between Steps, copy what must survive the next one.
// Elapsed is cumulative active stepping time, not wall clock.
func (c *Campaign) Result() *Result {
	return &c.f.res
}

// Finished reports whether the campaign is out of work: budget spent,
// MaxValids or Deadline hit, or the hybrid driver fully drained.
func (c *Campaign) Finished() bool {
	return c.f.campaignOver()
}
