package core

import (
	"hash/fnv"
	"testing"
	"time"

	"pfuzzer/internal/core/coretest"
	"pfuzzer/internal/mine"
	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/mjs"
	"pfuzzer/internal/subjects/tinyc"
)

func tinycLexer() mine.Lexer {
	return mine.SimpleLexer([]string{"if", "else", "while", "do"})
}

func mjsLexer() mine.Lexer {
	var kw []string
	for _, tok := range mjs.Inventory {
		if len(tok.Name) >= 2 && (tok.Name[0] >= 'a' && tok.Name[0] <= 'z' ||
			tok.Name[0] >= 'A' && tok.Name[0] <= 'Z') {
			kw = append(kw, tok.Name)
		}
	}
	return mine.SimpleLexer(kw)
}

func maxValidLen(res *Result) int {
	m := 0
	for _, v := range res.Valids {
		if len(v.Input) > m {
			m = len(v.Input)
		}
	}
	return m
}

// TestRunPanicsOnReuse pins the single-campaign contract: a second
// Run would silently continue on dirty state (seen, vBr, res) and
// double-count executions, so it must panic instead.
func TestRunPanicsOnReuse(t *testing.T) {
	f := New(tinyc.New(), Config{Seed: 1, MaxExecs: 200})
	f.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Run() did not panic")
		}
	}()
	f.Run()
}

// TestHybridDeterministicSerial is the golden test for the hybrid
// campaign: on the serial engine under a fixed seed the phase driver
// — exploration bursts, grammar mining, candidate generation and
// validation — must be fully deterministic, so two fresh fuzzers
// produce bit-identical emission sequences.
func TestHybridDeterministicSerial(t *testing.T) {
	run := func() (*Result, uint64) {
		res := New(tinyc.New(), Config{
			Seed: 7, MaxExecs: 20000, MinePhase: true, MineLexer: tinycLexer(),
		}).Run()
		h := fnv.New64a()
		for _, v := range res.Valids {
			h.Write(v.Input)
			h.Write([]byte{0})
		}
		return res, h.Sum64()
	}
	res1, h1 := run()
	res2, h2 := run()
	if h1 != h2 || len(res1.Valids) != len(res2.Valids) || res1.Execs != res2.Execs {
		t.Fatalf("hybrid serial campaign not deterministic: run1 %d valids execs %d hash %#x, run2 %d valids execs %d hash %#x",
			len(res1.Valids), res1.Execs, h1, len(res2.Valids), res2.Execs, h2)
	}
	if len(res1.Valids) == 0 {
		t.Fatal("hybrid campaign emitted nothing")
	}
	// Every emitted input — coverage valids and mined length records
	// alike — must be accepted by the parser.
	for _, v := range res1.Valids {
		rec := coretest.ExecFull(tinyc.New(), v.Input)
		if !rec.Accepted() {
			t.Errorf("emitted input %q is not accepted", v.Input)
		}
	}
}

// TestHybridRespectsBudgetAndMaxValids checks the phase driver
// honours the campaign-global knobs across phase boundaries.
func TestHybridRespectsBudgetAndMaxValids(t *testing.T) {
	res := New(tinyc.New(), Config{
		Seed: 2, MaxExecs: 8000, MinePhase: true, MineLexer: tinycLexer(),
	}).Run()
	if res.Execs > 8001 { // the serial loop may overshoot by the in-flight pair
		t.Errorf("execs %d exceed the budget of 8000", res.Execs)
	}
	res = New(tinyc.New(), Config{
		Seed: 2, MaxExecs: 50000, MaxValids: 3, MinePhase: true, MineLexer: tinycLexer(),
	}).Run()
	if len(res.Valids) < 3 {
		t.Errorf("stopped with %d valids, want >= 3", len(res.Valids))
	}
	if res.Execs == 50000 {
		t.Error("campaign ran out the full budget despite MaxValids=3")
	}
}

// TestHybridAllMiningBudgetTerminates is the regression test for the
// zero-cadence hang: MineBudget >= MaxExecs leaves no exploration
// budget, so there is no corpus to mine and the unminable slices fall
// through to exploration — which used to run zero-execution phases
// forever. The campaign must instead spend the budget and return.
func TestHybridAllMiningBudgetTerminates(t *testing.T) {
	done := make(chan *Result, 1)
	go func() {
		done <- New(tinyc.New(), Config{
			Seed: 1, MaxExecs: 1000, MinePhase: true, MineBudget: 1000,
			MineLexer: tinycLexer(),
		}).Run()
	}()
	select {
	case res := <-done:
		if res.Execs < 1000 {
			t.Errorf("campaign stopped after %d execs, want the full 1000", res.Execs)
		}
	case <-time.After(30 * time.Second):
		// A 1000-exec tinyc campaign takes milliseconds; 30s is pure
		// hang insurance.
		t.Fatal("all-mining hybrid campaign did not terminate")
	}
}

// TestHybridParallelValidatesMined runs the hybrid campaign through
// the executor pool (Workers=4): generated candidates are validated
// concurrently via the sharded queue, and every emitted input must be
// accepted. Run under -race this doubles as the locking proof for the
// phase driver's queue handoff.
func TestHybridParallelValidatesMined(t *testing.T) {
	res := New(tinyc.New(), Config{
		Seed: 3, MaxExecs: 30000, Workers: 4, MinePhase: true, MineLexer: tinycLexer(),
	}).Run()
	if res.Execs > 30000 {
		t.Errorf("execs %d exceed the budget of 30000", res.Execs)
	}
	if len(res.Valids) == 0 {
		t.Fatal("parallel hybrid campaign emitted nothing")
	}
	seen := map[string]bool{}
	for _, v := range res.Valids {
		if seen[string(v.Input)] {
			t.Errorf("duplicate valid input %q", v.Input)
		}
		seen[string(v.Input)] = true
		rec := coretest.ExecFull(tinyc.New(), v.Input)
		if !rec.Accepted() {
			t.Errorf("emitted input %q is not accepted", v.Input)
		}
	}
}

// TestHybridOutlengthensPure is the §7.4 claim itself, at the default
// execution budget: on tinyc and mjs the hybrid campaign must emit at
// least one valid input strictly longer than any valid input the pure
// parser-directed campaign emits under the same seed — deep,
// recursive inputs that last-character substitution alone does not
// reach.
func TestHybridOutlengthensPure(t *testing.T) {
	if testing.Short() {
		t.Skip("four default-budget campaigns; skipped with -short")
	}
	for _, tc := range []struct {
		name string
		prog func() subject.Program
		lex  mine.Lexer
	}{
		{"tinyc", func() subject.Program { return tinyc.New() }, tinycLexer()},
		{"mjs", func() subject.Program { return mjs.New() }, mjsLexer()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pure := New(tc.prog(), Config{Seed: 1}).Run()
			hyb := New(tc.prog(), Config{Seed: 1, MinePhase: true, MineLexer: tc.lex}).Run()
			pmax, hmax := maxValidLen(pure), maxValidLen(hyb)
			longer := 0
			for _, v := range hyb.Valids {
				if len(v.Input) > pmax {
					longer++
				}
			}
			t.Logf("pure: %d valids, max %d bytes; hybrid: %d valids, max %d bytes, %d longer than pure's max",
				len(pure.Valids), pmax, len(hyb.Valids), hmax, longer)
			if longer == 0 {
				t.Errorf("hybrid campaign emitted no valid input longer than the pure campaign's max of %d bytes", pmax)
			}
		})
	}
}
