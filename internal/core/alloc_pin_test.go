package core

import (
	"testing"

	"pfuzzer/internal/subject"
	"pfuzzer/internal/subjects/cjson"
	"pfuzzer/internal/subjects/expr"
	"pfuzzer/internal/trace"
)

// Pinned steady-state allocation budgets for the trajectory hot path.
// The benchmarks in alloc_bench_test.go measure; these tests enforce,
// so a regression fails `go test` instead of silently drifting until
// someone re-reads a benchmark. Budgets are exact where the design
// says zero and carry headroom of one where the count depends on input
// shape. Skipped under -short: the CI race pass runs -short, and
// instrumentation (race, coverage) adds allocations the budgets do not
// describe.

// TestSinkExecuteAllocFree pins the arena contract: after the first
// (warming) execution, a sink-backed subject run allocates nothing —
// comparisons, block sets and comparison byte payloads all land in the
// sink's reused buffers.
func TestSinkExecuteAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budgets assume an uninstrumented build")
	}
	prog := expr.New()
	input := []byte("(1+2)*(3-4)#")
	var sink trace.Sink
	subject.ExecuteInto(prog, input, traceOpts(), &sink)
	if n := testing.AllocsPerRun(200, func() {
		subject.ExecuteInto(prog, input, traceOpts(), &sink)
	}); n != 0 {
		t.Errorf("sink-backed execution allocates %.1f/op in steady state, want 0", n)
	}
}

// TestFactsDistillAllocBudget pins the deriving-run distillation at
// its designed floor: the three retained slices (trimmed blocks, the
// final-index comparison headers, their packed byte blob) plus one of
// headroom for block-count growth; everything else must come from the
// caller's scratch.
func TestFactsDistillAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budgets assume an uninstrumented build")
	}
	prog := cjson.New()
	input := []byte(`{"a":[1,2`)
	var sink trace.Sink
	rec := subject.ExecuteInto(prog, input, traceOpts(), &sink)
	var rf runFacts
	if n := testing.AllocsPerRun(200, func() {
		factsOfInto(&rf, rec, true)
	}); n > 4 {
		t.Errorf("deriving distillation allocates %.1f/op in steady state, want <= 4", n)
	}
}
